package snorlax

import (
	"net"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/proto"
)

// ServeConfig tunes the diagnosis server's concurrency.
type ServeConfig struct {
	// Workers bounds the per-diagnosis success-trace decode/observe
	// pool; 0 uses runtime.GOMAXPROCS(0), 1 forces the serial path.
	// Any setting produces bit-identical diagnoses.
	Workers int
	// MaxConcurrentDiagnoses bounds simultaneous diagnoses across all
	// client connections; 0 uses runtime.GOMAXPROCS(0). Excess
	// requests queue rather than oversubscribe the host.
	MaxConcurrentDiagnoses int
}

// Serve runs a diagnosis server for prog on the listener with default
// concurrency, blocking until the listener closes. Production clients
// connect with Dial, upload failures and successful traces, and
// request diagnoses — the deployment model of the paper's Figure 2.
func Serve(ln net.Listener, prog *Program) error {
	return ServeConfigured(ln, prog, ServeConfig{})
}

// ServeConfigured is Serve with explicit concurrency knobs.
func ServeConfigured(ln net.Listener, prog *Program, cfg ServeConfig) error {
	cs := core.NewServer(prog.mod)
	cs.Workers = cfg.Workers
	ps := proto.NewServer(cs)
	ps.MaxConcurrent = cfg.MaxConcurrentDiagnoses
	return ps.Serve(ln)
}

// ServerStatus reports a diagnosis server's concurrency and cache
// state, as returned by RemoteDiagnoser.ServerStatus.
type ServerStatus struct {
	// OpenConns counts currently connected clients.
	OpenConns int64
	// ActiveDiagnoses and QueuedDiagnoses describe the diagnosis
	// semaphore right now; CompletedDiagnoses and FailedDiagnoses are
	// cumulative.
	ActiveDiagnoses    int64
	QueuedDiagnoses    int64
	CompletedDiagnoses uint64
	FailedDiagnoses    uint64
	// MaxConcurrent and Workers echo the server's effective knobs.
	MaxConcurrent int
	Workers       int
	// CacheHits and CacheMisses count points-to analysis cache
	// outcomes across all diagnoses.
	CacheHits, CacheMisses uint64
	// DiagnoseTime is cumulative wall time spent diagnosing.
	DiagnoseTime time.Duration
}

// RemoteDiagnoser is a client connection to a diagnosis server.
type RemoteDiagnoser struct {
	prog *Program
	conn *proto.Conn
}

// Dial connects to a diagnosis server for prog.
func Dial(network, addr string, prog *Program) (*RemoteDiagnoser, error) {
	c, err := proto.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &RemoteDiagnoser{prog: prog, conn: c}, nil
}

// Close releases the connection.
func (r *RemoteDiagnoser) Close() error { return r.conn.Close() }

// ReportFailure uploads a failing execution; the returned PC is where
// the server wants successful executions traced.
func (r *RemoteDiagnoser) ReportFailure(failing *Execution) (PC, error) {
	return r.conn.ReportFailure(failing.report.Failure, failing.Snapshot())
}

// SendSuccess uploads one successful triggered execution.
func (r *RemoteDiagnoser) SendSuccess(ok *Execution) error {
	return r.conn.SendSuccess(ok.Snapshot())
}

// Diagnose asks the server for the verdict on what was uploaded.
func (r *RemoteDiagnoser) Diagnose() (*Report, error) {
	d, err := r.conn.RequestDiagnosis()
	if err != nil {
		return nil, err
	}
	return newReport(r.prog, d), nil
}

// ServerStatus asks the server for its concurrency and cache state.
func (r *RemoteDiagnoser) ServerStatus() (ServerStatus, error) {
	st, err := r.conn.Status()
	if err != nil {
		return ServerStatus{}, err
	}
	return ServerStatus{
		OpenConns:          st.OpenConns,
		ActiveDiagnoses:    st.ActiveDiagnoses,
		QueuedDiagnoses:    st.QueuedDiagnoses,
		CompletedDiagnoses: st.CompletedDiagnoses,
		FailedDiagnoses:    st.FailedDiagnoses,
		MaxConcurrent:      st.MaxConcurrent,
		Workers:            st.Workers,
		CacheHits:          st.CacheHits,
		CacheMisses:        st.CacheMisses,
		DiagnoseTime:       st.DiagnoseTime,
	}, nil
}
