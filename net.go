package snorlax

import (
	"context"
	"io"
	"net"
	"net/http"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/obs"
	"snorlax/internal/proto"
	"snorlax/internal/pt"
	"snorlax/internal/store"
)

// SyncPolicy selects when the durable case store fsyncs its
// write-ahead log (see ServeConfig.StateDir).
type SyncPolicy = store.SyncPolicy

const (
	// SyncInterval (the default) syncs from a background flusher every
	// ServeConfig.SyncInterval, keeping appends off the fsync path;
	// loss is bounded to that window, and the fleet protocol's
	// idempotency re-collects a lost tail.
	SyncInterval = store.SyncInterval
	// SyncAlways fsyncs every record before it is acknowledged.
	SyncAlways = store.SyncAlways
	// SyncNever leaves syncing to the OS, and to Shutdown's flush.
	SyncNever = store.SyncNever
)

// StoreStats reports the durable case store's operational counters,
// as returned by Server.Store.
type StoreStats = store.Stats

// ServeConfig tunes the diagnosis server's concurrency and its
// defenses against slow, greedy, or corrupt clients.
type ServeConfig struct {
	// Workers bounds the per-diagnosis success-trace decode/observe
	// pool; 0 uses runtime.GOMAXPROCS(0), 1 forces the serial path.
	// Any setting produces bit-identical diagnoses.
	Workers int
	// MaxConcurrentDiagnoses bounds simultaneous diagnoses across all
	// client connections; 0 uses runtime.GOMAXPROCS(0). Excess
	// requests queue rather than oversubscribe the host.
	MaxConcurrentDiagnoses int
	// IdleTimeout drops connections that send nothing for this long;
	// 0 means no idle deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds each reply write; 0 means no deadline.
	WriteTimeout time.Duration
	// MaxSnapshotBytes caps one uploaded snapshot's total ring bytes.
	// 0 applies a 64 MB default; negative means unlimited.
	MaxSnapshotBytes int64
	// MaxSuccessesPerConn caps success traces spooled for a
	// connection's current diagnosis session; each new failure report
	// starts a fresh spool. 0 applies a default of 1024; negative
	// means unlimited.
	MaxSuccessesPerConn int
	// Programs pre-registers fleet tenants beyond the server's primary
	// program: each becomes a tenant clients can report failures under
	// without uploading the program themselves.
	Programs []*Program
	// SuccessQuota is the per-case success-trace quota in fleet mode;
	// 0 applies the paper's 10× default.
	SuccessQuota int
	// DisableRegistration rejects client-side program registration,
	// restricting fleet mode to the pre-registered Programs.
	DisableRegistration bool
	// StateDir, when set, makes fleet state durable: every state
	// transition (registration, case open, trace accept, quota,
	// published report) is written to a checksummed write-ahead log
	// under this directory before it is acknowledged, and NewServer
	// recovers from it on startup — re-arming directives, restoring
	// per-client dedup ledgers, and re-serving published reports from
	// disk without re-running diagnosis. Empty keeps state in memory
	// only, exactly the pre-durability behaviour.
	StateDir string
	// SyncPolicy selects when the log is fsynced: SyncInterval (the
	// default), SyncAlways, or SyncNever. Shutdown flushes and fsyncs
	// regardless.
	SyncPolicy SyncPolicy
	// SyncInterval is the background flush period under SyncInterval;
	// 0 means 50ms.
	SyncInterval time.Duration
	// CaseBase namespaces this server's case ids above the given base,
	// so a sharded fleet tier can give every shard a disjoint range
	// (shard i conventionally gets i<<32) and case ids stay unique —
	// and routable — fleet-wide. 0 keeps the unsharded numbering.
	CaseBase uint64
}

// Server is a diagnosis server that can be drained gracefully. Zero
// value is not usable; construct with NewServer.
type Server struct {
	ps *proto.Server
}

// NewServer builds a diagnosis server for prog. Additional programs in
// cfg.Programs (and, unless registration is disabled, programs clients
// register at runtime) are served as fleet tenants alongside it. With
// a StateDir configured, NewServer opens (or recovers) the durable
// case store before anything is registered; recovery errors and
// unusable state directories surface here, not mid-serve.
func NewServer(prog *Program, cfg ServeConfig) (*Server, error) {
	cs := core.NewServer(prog.mod)
	cs.Workers = cfg.Workers
	ps := proto.NewServer(cs)
	ps.MaxConcurrent = cfg.MaxConcurrentDiagnoses
	ps.IdleTimeout = cfg.IdleTimeout
	ps.WriteTimeout = cfg.WriteTimeout
	ps.MaxSnapshotBytes = cfg.MaxSnapshotBytes
	ps.MaxSuccessesPerConn = cfg.MaxSuccessesPerConn
	ps.FleetQuota = cfg.SuccessQuota
	ps.DisableRegistration = cfg.DisableRegistration
	ps.CaseBase = cfg.CaseBase
	if cfg.StateDir != "" {
		w, err := store.Open(cfg.StateDir, store.Options{
			SyncPolicy:   cfg.SyncPolicy,
			SyncInterval: cfg.SyncInterval,
			Registry:     ps.Metrics(),
		})
		if err != nil {
			return nil, err
		}
		ps.Store = w
		if err := ps.Restore(w.RecoveredState()); err != nil {
			w.Close()
			return nil, err
		}
	}
	s := &Server{ps: ps}
	progs := append([]*Program{prog}, cfg.Programs...)
	for _, p := range progs {
		if _, err := s.RegisterProgram(p); err != nil {
			if ps.Store != nil {
				ps.Store.Close()
			}
			return nil, err
		}
	}
	return s, nil
}

// RegisterProgram registers prog as a fleet tenant (idempotently, by
// module fingerprint) and returns its tenant id. With a durable store,
// a first-time registration is logged before it is acknowledged; the
// error reports a failed append.
func (s *Server) RegisterProgram(prog *Program) (TenantID, error) {
	return s.ps.RegisterProgram(prog.mod)
}

// Store reports the durable case store's operational counters —
// records and bytes appended, fsyncs, snapshots, compactions,
// truncated-tail recoveries. A server without a StateDir returns zero
// stats.
func (s *Server) Store() StoreStats {
	if s.ps.Store == nil {
		return StoreStats{}
	}
	return s.ps.Store.Stats()
}

// Serve accepts and serves connections until the listener closes or
// Shutdown is called; after Shutdown it returns nil.
func (s *Server) Serve(ln net.Listener) error { return s.ps.Serve(ln) }

// Shutdown stops accepting, lets in-flight requests finish, closes
// idle connections, and returns when everything has drained or the
// context expires (then remaining connections are force-closed and
// the context's error is returned). The durable store, if any, is
// flushed, fsynced and closed before Shutdown returns; store errors
// join the drain error.
func (s *Server) Shutdown(ctx context.Context) error { return s.ps.Shutdown(ctx) }

// Status reports the server's counters directly, without a client
// round trip. It is a view over the same metrics registry the
// /metrics endpoint serves — the two cannot disagree on a quiesced
// server.
func (s *Server) Status() ServerStatus { return publicStatus(s.ps.Status()) }

// MetricsMux returns the server's opt-in operational HTTP surface:
// GET /metrics serves every pipeline, cache and protocol metric in
// Prometheus text exposition format, /debug/pprof/* serves the
// standard profiling endpoints, and /healthz and /readyz serve the
// liveness and readiness probes (ready means: not draining, durable
// state restored, store not poisoned). Nothing serves it by default —
// mount it on a listener the operator chose (the CLI's -metrics-addr
// flag).
func (s *Server) MetricsMux() *http.ServeMux {
	return obs.DebugMux(s.ps.Metrics(), s.ps.Ready)
}

// Ready reports whether the server should receive traffic: nil while
// serving normally, an error naming the condition while draining,
// before durable state is restored, or after the store is poisoned.
// It is the same check /readyz serves — exposed directly for
// supervisors and routers that probe in-process.
func (s *Server) Ready() error { return s.ps.Ready() }

// WriteMetrics renders the server's metrics in Prometheus text
// exposition format without going through HTTP.
func (s *Server) WriteMetrics(w io.Writer) error {
	return s.ps.Metrics().WritePrometheus(w)
}

// Serve runs a diagnosis server for prog on the listener with default
// concurrency, blocking until the listener closes. Production clients
// connect with Dial, upload failures and successful traces, and
// request diagnoses — the deployment model of the paper's Figure 2.
func Serve(ln net.Listener, prog *Program) error {
	return ServeConfigured(ln, prog, ServeConfig{})
}

// ServeConfigured is Serve with explicit concurrency and robustness
// knobs.
func ServeConfigured(ln net.Listener, prog *Program, cfg ServeConfig) error {
	s, err := NewServer(prog, cfg)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// ServerStatus reports a diagnosis server's concurrency, cache, and
// degradation state, as returned by RemoteDiagnoser.ServerStatus.
type ServerStatus struct {
	// OpenConns counts currently connected clients.
	OpenConns int64
	// ActiveDiagnoses and QueuedDiagnoses describe the diagnosis
	// semaphore right now; CompletedDiagnoses and FailedDiagnoses are
	// cumulative.
	ActiveDiagnoses    int64
	QueuedDiagnoses    int64
	CompletedDiagnoses uint64
	FailedDiagnoses    uint64
	// MaxConcurrent and Workers echo the server's effective knobs.
	MaxConcurrent int
	Workers       int
	// CacheHits and CacheMisses count points-to analysis cache
	// outcomes across all diagnoses.
	CacheHits, CacheMisses uint64
	// DiagnoseTime is cumulative wall time spent diagnosing.
	DiagnoseTime time.Duration
	// DroppedSuccesses counts undecodable success traces skipped by
	// degraded-mode diagnosis instead of failing the whole request.
	DroppedSuccesses uint64
	// DeadlineDrops counts connections dropped for blowing an idle or
	// write deadline.
	DeadlineDrops uint64
	// OversizeRejects counts uploads rejected for exceeding the
	// configured byte caps.
	OversizeRejects uint64
	// PanicsRecovered counts panics (from poisoned reports or corrupt
	// traces) caught instead of killing the server.
	PanicsRecovered uint64
}

func publicStatus(st proto.ServerStatus) ServerStatus {
	return ServerStatus{
		OpenConns:          st.OpenConns,
		ActiveDiagnoses:    st.ActiveDiagnoses,
		QueuedDiagnoses:    st.QueuedDiagnoses,
		CompletedDiagnoses: st.CompletedDiagnoses,
		FailedDiagnoses:    st.FailedDiagnoses,
		MaxConcurrent:      st.MaxConcurrent,
		Workers:            st.Workers,
		CacheHits:          st.CacheHits,
		CacheMisses:        st.CacheMisses,
		DiagnoseTime:       st.DiagnoseTime,
		DroppedSuccesses:   st.DroppedSuccesses,
		DeadlineDrops:      st.DeadlineDrops,
		OversizeRejects:    st.OversizeRejects,
		PanicsRecovered:    st.PanicsRecovered,
	}
}

// RetryConfig tunes a retrying remote client (see DialRetrying).
type RetryConfig struct {
	// MaxAttempts bounds how many times one operation (including any
	// reconnect and session replay it needs) is tried; 0 means 8.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms);
	// it doubles per attempt up to MaxDelay (default 2s), with
	// jitter.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// OpTimeout bounds each round trip on the wire, turning a stalled
	// server into a retryable timeout; 0 means no deadline. Leave
	// headroom for the slowest expected diagnosis.
	OpTimeout time.Duration
}

// protoClient is what RemoteDiagnoser needs from a transport; both
// the plain connection and the retrying client satisfy it.
type protoClient interface {
	ReportFailure(f *core.FailureReport, snap *pt.Snapshot) (ir.PC, error)
	SendSuccess(snap *pt.Snapshot) error
	RequestDiagnosis() (*core.Diagnosis, error)
	Status() (proto.ServerStatus, error)
	Close() error
}

// RemoteDiagnoser is a client connection to a diagnosis server.
type RemoteDiagnoser struct {
	prog  *Program
	conn  protoClient
	retry *proto.RetryClient // nil for a plain Dial connection
}

// Dial connects to a diagnosis server for prog over a plain
// connection: any transport failure surfaces as an error. Production
// clients usually want DialRetrying instead.
func Dial(network, addr string, prog *Program) (*RemoteDiagnoser, error) {
	c, err := proto.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &RemoteDiagnoser{prog: prog, conn: c}, nil
}

// DialRetrying returns a fault-tolerant client for a diagnosis
// server: session state is spooled client-side, transport failures
// trigger reconnects with exponential backoff, and the session is
// replayed on the fresh connection, so Diagnose reaches the verdict a
// fault-free conversation would have. The first connection is made
// lazily, so DialRetrying itself never fails; a dead address surfaces
// from the first operation once MaxAttempts is spent.
func DialRetrying(network, addr string, prog *Program, cfg RetryConfig) *RemoteDiagnoser {
	rc := proto.DialRetrying(network, addr, proto.RetryConfig{
		MaxAttempts: cfg.MaxAttempts,
		BaseDelay:   cfg.BaseDelay,
		MaxDelay:    cfg.MaxDelay,
		OpTimeout:   cfg.OpTimeout,
	})
	return &RemoteDiagnoser{prog: prog, conn: rc, retry: rc}
}

// Close releases the connection.
func (r *RemoteDiagnoser) Close() error { return r.conn.Close() }

// Retries reports how many times a retrying client reconnected; it is
// the client-side degradation counter (always 0 for plain Dial).
func (r *RemoteDiagnoser) Retries() uint64 {
	if r.retry == nil {
		return 0
	}
	return r.retry.Retries()
}

// ReportFailure uploads a failing execution; the returned PC is where
// the server wants successful executions traced.
func (r *RemoteDiagnoser) ReportFailure(failing *Execution) (PC, error) {
	return r.conn.ReportFailure(failing.report.Failure, failing.Snapshot())
}

// SendSuccess uploads one successful triggered execution.
func (r *RemoteDiagnoser) SendSuccess(ok *Execution) error {
	return r.conn.SendSuccess(ok.Snapshot())
}

// Diagnose asks the server for the verdict on what was uploaded.
func (r *RemoteDiagnoser) Diagnose() (*Report, error) {
	d, err := r.conn.RequestDiagnosis()
	if err != nil {
		return nil, err
	}
	return newReport(r.prog, d), nil
}

// ServerStatus asks the server for its concurrency and cache state.
func (r *RemoteDiagnoser) ServerStatus() (ServerStatus, error) {
	st, err := r.conn.Status()
	if err != nil {
		return ServerStatus{}, err
	}
	return publicStatus(st), nil
}
