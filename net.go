package snorlax

import (
	"net"

	"snorlax/internal/core"
	"snorlax/internal/proto"
)

// Serve runs a diagnosis server for prog on the listener, blocking
// until the listener closes. Production clients connect with Dial,
// upload failures and successful traces, and request diagnoses — the
// deployment model of the paper's Figure 2.
func Serve(ln net.Listener, prog *Program) error {
	return proto.NewServer(core.NewServer(prog.mod)).Serve(ln)
}

// RemoteDiagnoser is a client connection to a diagnosis server.
type RemoteDiagnoser struct {
	prog *Program
	conn *proto.Conn
}

// Dial connects to a diagnosis server for prog.
func Dial(network, addr string, prog *Program) (*RemoteDiagnoser, error) {
	c, err := proto.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &RemoteDiagnoser{prog: prog, conn: c}, nil
}

// Close releases the connection.
func (r *RemoteDiagnoser) Close() error { return r.conn.Close() }

// ReportFailure uploads a failing execution; the returned PC is where
// the server wants successful executions traced.
func (r *RemoteDiagnoser) ReportFailure(failing *Execution) (PC, error) {
	return r.conn.ReportFailure(failing.report.Failure, failing.Snapshot())
}

// SendSuccess uploads one successful triggered execution.
func (r *RemoteDiagnoser) SendSuccess(ok *Execution) error {
	return r.conn.SendSuccess(ok.Snapshot())
}

// Diagnose asks the server for the verdict on what was uploaded.
func (r *RemoteDiagnoser) Diagnose() (*Report, error) {
	d, err := r.conn.RequestDiagnosis()
	if err != nil {
		return nil, err
	}
	return newReport(r.prog, d), nil
}
