package snorlax

import (
	"context"
	"net"
	"time"

	"snorlax/internal/fleet"
	"snorlax/internal/proto"
	"snorlax/internal/pt"
)

// TenantID identifies a program registered with a fleet-mode server:
// the fingerprint of its canonical IR text. Registering the same
// program from any client yields the same id.
type TenantID = proto.TenantID

// CaseID numbers diagnosis cases within one tenant.
type CaseID = proto.CaseID

// Directive is a server-pushed collection order: snapshot successful
// executions at TriggerPC and upload them until the case has Want
// accepted traces (Have shows progress).
type Directive = proto.Directive

// FleetClient speaks the fleet session protocol: register programs,
// report failures, poll directives, batch-upload triggered snapshots,
// and fetch published reports. Unlike the single-program session
// (RemoteDiagnoser), every fleet operation is idempotent, so a client
// that loses its connection can simply reconnect and repeat the
// operation.
type FleetClient struct {
	conn *proto.Conn
}

// DialFleet connects to a fleet-mode diagnosis server.
func DialFleet(network, addr string) (*FleetClient, error) {
	c, err := proto.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &FleetClient{conn: c}, nil
}

// Close closes the connection.
func (f *FleetClient) Close() error { return f.conn.Close() }

// Register registers prog with the server (idempotently) and returns
// its tenant id.
func (f *FleetClient) Register(prog *Program) (TenantID, error) {
	return f.conn.Register(prog.Text())
}

// ReportFailure reports a failing execution under a tenant. It returns
// the diagnosis case — shared with every client that reported the same
// failure PC — its collection directive, and whether the case's report
// is already published.
func (f *FleetClient) ReportFailure(t TenantID, failing *Execution) (CaseID, Directive, bool, error) {
	return f.conn.ReportFleetFailure(t, failing.report.Failure, failing.Snapshot())
}

// Directives fetches the tenant's armed collection directives.
func (f *FleetClient) Directives(t TenantID) ([]Directive, error) {
	return f.conn.Directives(t)
}

// UploadBatch uploads triggered successful executions toward a case's
// quota. pc is the case's trigger PC (Directive.TriggerPC), which
// routes the upload to the owning shard in a sharded deployment.
// client names this agent and seq is the 1-based sequence number of
// successes[0] in the agent's per-case upload stream; the pair makes
// the upload idempotent across retries. It returns how many traces
// were newly accepted and whether the case's report is now published.
func (f *FleetClient) UploadBatch(t TenantID, id CaseID, pc PC, client string, seq uint64, successes []*Execution) (accepted int, done bool, err error) {
	snaps := make([]*pt.Snapshot, len(successes))
	for i, e := range successes {
		snaps[i] = e.Snapshot()
	}
	return f.conn.UploadBatch(t, id, pc, client, seq, snaps)
}

// FetchReport fetches a case's published report, rendered against
// prog; pc is the case's trigger PC, which routes the fetch to the
// owning shard in a sharded deployment. done is false while the case
// is still collecting (poll again).
func (f *FleetClient) FetchReport(prog *Program, t TenantID, id CaseID, pc PC) (r *Report, done bool, err error) {
	d, done, err := f.conn.FetchReport(t, id, pc)
	if err != nil || d == nil {
		return nil, done, err
	}
	return newReport(prog, d), done, nil
}

// FleetConfig tunes RunFleet's simulated production agents.
type FleetConfig struct {
	// Context, when non-nil, bounds the whole run: agents abandon
	// retries, collection and report polling as soon as it is done.
	// nil means only OpTimeout bounds the run.
	Context context.Context
	// Clients is how many agents run (default 4).
	Clients int
	// BatchSize is how many triggered snapshots an agent buffers per
	// upload (default 2).
	BatchSize int
	// SeedBase offsets every agent's scheduling seeds (default 1).
	SeedBase int64
	// OpTimeout bounds each wire round trip and the final
	// report-polling phase (default 30s).
	OpTimeout time.Duration
}

// FleetResult is a simulated fleet's collective outcome.
type FleetResult struct {
	Tenant TenantID
	Case   CaseID
	// TriggerPC is the case's trigger (and routing) PC — pass it to
	// FetchReport and UploadBatch to reach the owning shard.
	TriggerPC PC
	// Report is the server-published diagnosis.
	Report *Report
	// Uploaded counts agent uploads before server dedupe; Accepted how
	// many the server admitted toward the quota.
	Uploaded, Accepted int
}

// FleetProgram pairs the two builds a load-generated fleet runs: the
// deployed build whose failure agents report, and the successful
// build they trace on the server's directive.
type FleetProgram struct {
	Fail, OK *Program
}

// FleetLoadConfig tunes RunFleetLoad, the fleet-scale load generator.
type FleetLoadConfig struct {
	// Context, when non-nil, aborts the whole run when done.
	Context context.Context
	// Agents is the total number of simulated agents (default 1000);
	// agent i drives program i mod len(programs).
	Agents int
	// Concurrency bounds simultaneously connected agents (default 64).
	Concurrency int
	// BatchSize is snapshots per upload (default 2).
	BatchSize int
	// MaxAttempts bounds transport retries per operation (default 8) —
	// the budget that carries agents across shard failovers.
	MaxAttempts int
	// OpTimeout bounds each round trip and the final report poll
	// (default 30s).
	OpTimeout time.Duration
	// PollInterval is the directive/report re-poll pace (default 2ms).
	PollInterval time.Duration
	// SeedBase offsets the deterministic per-agent randomness
	// (default 1).
	SeedBase int64
	// Stagger delays program p's agents by p*Stagger, opening cases in
	// waves rather than one thundering herd (default 0).
	Stagger time.Duration
	// TailAlpha shapes the heavy-tailed per-agent failure-report count
	// (Pareto; smaller = heavier tail; default 1.5).
	TailAlpha float64
}

// FleetLoadStats is a load run's headline numbers: admission
// throughput, report publication rate, and directive-poll latency
// percentiles.
type FleetLoadStats = fleet.LoadStats

// FleetLoadCase is one program's outcome under load.
type FleetLoadCase struct {
	Tenant    TenantID
	Case      CaseID
	TriggerPC PC
	// Report is the published diagnosis every agent of this program
	// fetched, rendered against the program's failing build.
	Report *Report
	// Uploaded and Accepted count the program's snapshots before and
	// after server-side dedup and quota.
	Uploaded, Accepted int
	// Agents drove this program; FailureReports is their total
	// (heavy-tailed) fleet-failure report count.
	Agents, FailureReports int
}

// FleetLoadResult is the load generator's collective outcome.
type FleetLoadResult struct {
	Stats FleetLoadStats
	Cases []FleetLoadCase
}

// RunFleetLoad drives cfg.Agents simulated agents, spread across the
// given programs, against the fleet tier at addr — a single fleet
// server or a shard router — and blocks until every program's report
// is published and fetched by all of its agents. Each program is one
// tenant with one diagnosis case; per-program trace material is
// reproduced once and replayed over the wire, so the run's cost is
// dominated by protocol traffic, not VM time.
func RunFleetLoad(network, addr string, programs []FleetProgram, cfg FleetLoadConfig) (*FleetLoadResult, error) {
	ps := make([]fleet.Program, len(programs))
	for i, p := range programs {
		ps[i] = fleet.Program{Fail: p.Fail.mod, OK: p.OK.mod}
	}
	res, err := fleet.RunLoad(fleet.LoadConfig{
		Dial:         func() (net.Conn, error) { return net.Dial(network, addr) },
		Context:      cfg.Context,
		Agents:       cfg.Agents,
		Programs:     ps,
		Concurrency:  cfg.Concurrency,
		BatchSize:    cfg.BatchSize,
		MaxAttempts:  cfg.MaxAttempts,
		OpTimeout:    cfg.OpTimeout,
		PollInterval: cfg.PollInterval,
		SeedBase:     cfg.SeedBase,
		Stagger:      cfg.Stagger,
		TailAlpha:    cfg.TailAlpha,
	})
	if err != nil {
		return nil, err
	}
	out := &FleetLoadResult{Stats: res.Stats}
	for i, c := range res.Cases {
		out.Cases = append(out.Cases, FleetLoadCase{
			Tenant:         c.Tenant,
			Case:           c.Case,
			TriggerPC:      c.TriggerPC,
			Report:         newReport(programs[i].Fail, c.Diagnosis),
			Uploaded:       c.Uploaded,
			Accepted:       c.Accepted,
			Agents:         c.Agents,
			FailureReports: c.FailureReports,
		})
	}
	return out, nil
}

// RunFleet simulates a production fleet against a fleet-mode server at
// addr: Clients agents register failing (the deployed build, and the
// program under diagnosis), reproduce its failure, report it — joining
// one shared case — then run ok (the successful build) with the
// directive's trigger armed and batch-upload triggered snapshots until
// the server reaches its quota and publishes the report.
func RunFleet(network, addr string, failing, ok *Program, cfg FleetConfig) (*FleetResult, error) {
	res, err := fleet.Run(
		fleet.Program{Fail: failing.mod, OK: ok.mod},
		fleet.Config{
			Dial:      func() (net.Conn, error) { return net.Dial(network, addr) },
			Context:   cfg.Context,
			Clients:   cfg.Clients,
			BatchSize: cfg.BatchSize,
			SeedBase:  cfg.SeedBase,
			OpTimeout: cfg.OpTimeout,
		})
	if err != nil {
		return nil, err
	}
	out := &FleetResult{
		Tenant:   res.Tenant,
		Case:     res.Case,
		Report:   newReport(failing, res.Diagnosis),
		Uploaded: res.Uploaded,
		Accepted: res.Accepted,
	}
	if res.Failure != nil {
		out.TriggerPC = res.Failure.PC
	}
	return out, nil
}
