package snorlax

import (
	"net"
	"time"

	"snorlax/internal/fleet"
	"snorlax/internal/proto"
	"snorlax/internal/pt"
)

// TenantID identifies a program registered with a fleet-mode server:
// the fingerprint of its canonical IR text. Registering the same
// program from any client yields the same id.
type TenantID = proto.TenantID

// CaseID numbers diagnosis cases within one tenant.
type CaseID = proto.CaseID

// Directive is a server-pushed collection order: snapshot successful
// executions at TriggerPC and upload them until the case has Want
// accepted traces (Have shows progress).
type Directive = proto.Directive

// FleetClient speaks the fleet session protocol: register programs,
// report failures, poll directives, batch-upload triggered snapshots,
// and fetch published reports. Unlike the single-program session
// (RemoteDiagnoser), every fleet operation is idempotent, so a client
// that loses its connection can simply reconnect and repeat the
// operation.
type FleetClient struct {
	conn *proto.Conn
}

// DialFleet connects to a fleet-mode diagnosis server.
func DialFleet(network, addr string) (*FleetClient, error) {
	c, err := proto.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &FleetClient{conn: c}, nil
}

// Close closes the connection.
func (f *FleetClient) Close() error { return f.conn.Close() }

// Register registers prog with the server (idempotently) and returns
// its tenant id.
func (f *FleetClient) Register(prog *Program) (TenantID, error) {
	return f.conn.Register(prog.Text())
}

// ReportFailure reports a failing execution under a tenant. It returns
// the diagnosis case — shared with every client that reported the same
// failure PC — its collection directive, and whether the case's report
// is already published.
func (f *FleetClient) ReportFailure(t TenantID, failing *Execution) (CaseID, Directive, bool, error) {
	return f.conn.ReportFleetFailure(t, failing.report.Failure, failing.Snapshot())
}

// Directives fetches the tenant's armed collection directives.
func (f *FleetClient) Directives(t TenantID) ([]Directive, error) {
	return f.conn.Directives(t)
}

// UploadBatch uploads triggered successful executions toward a case's
// quota. client names this agent and seq is the 1-based sequence
// number of successes[0] in the agent's per-case upload stream; the
// pair makes the upload idempotent across retries. It returns how many
// traces were newly accepted and whether the case's report is now
// published.
func (f *FleetClient) UploadBatch(t TenantID, id CaseID, client string, seq uint64, successes []*Execution) (accepted int, done bool, err error) {
	snaps := make([]*pt.Snapshot, len(successes))
	for i, e := range successes {
		snaps[i] = e.Snapshot()
	}
	return f.conn.UploadBatch(t, id, client, seq, snaps)
}

// FetchReport fetches a case's published report, rendered against
// prog. done is false while the case is still collecting (poll again).
func (f *FleetClient) FetchReport(prog *Program, t TenantID, id CaseID) (r *Report, done bool, err error) {
	d, done, err := f.conn.FetchReport(t, id)
	if err != nil || d == nil {
		return nil, done, err
	}
	return newReport(prog, d), done, nil
}

// FleetConfig tunes RunFleet's simulated production agents.
type FleetConfig struct {
	// Clients is how many agents run (default 4).
	Clients int
	// BatchSize is how many triggered snapshots an agent buffers per
	// upload (default 2).
	BatchSize int
	// SeedBase offsets every agent's scheduling seeds (default 1).
	SeedBase int64
	// OpTimeout bounds each wire round trip and the final
	// report-polling phase (default 30s).
	OpTimeout time.Duration
}

// FleetResult is a simulated fleet's collective outcome.
type FleetResult struct {
	Tenant TenantID
	Case   CaseID
	// Report is the server-published diagnosis.
	Report *Report
	// Uploaded counts agent uploads before server dedupe; Accepted how
	// many the server admitted toward the quota.
	Uploaded, Accepted int
}

// RunFleet simulates a production fleet against a fleet-mode server at
// addr: Clients agents register failing (the deployed build, and the
// program under diagnosis), reproduce its failure, report it — joining
// one shared case — then run ok (the successful build) with the
// directive's trigger armed and batch-upload triggered snapshots until
// the server reaches its quota and publishes the report.
func RunFleet(network, addr string, failing, ok *Program, cfg FleetConfig) (*FleetResult, error) {
	res, err := fleet.Run(
		fleet.Program{Fail: failing.mod, OK: ok.mod},
		fleet.Config{
			Dial:      func() (net.Conn, error) { return net.Dial(network, addr) },
			Clients:   cfg.Clients,
			BatchSize: cfg.BatchSize,
			SeedBase:  cfg.SeedBase,
			OpTimeout: cfg.OpTimeout,
		})
	if err != nil {
		return nil, err
	}
	return &FleetResult{
		Tenant:   res.Tenant,
		Case:     res.Case,
		Report:   newReport(failing, res.Diagnosis),
		Uploaded: res.Uploaded,
		Accepted: res.Accepted,
	}, nil
}
