// Package replay is the record/replay engine the paper's §3.3 argues
// the coarse interleaving hypothesis enables: because the accesses
// whose order decides a concurrency bug are separated by large time
// gaps, recording just the ORDER of shared memory accesses and lock
// acquisitions — no fine-grained timestamps, no memory contents — is
// enough to steer a re-execution back onto the recorded interleaving,
// even in the presence of data races (the case the paper cites Castor
// for).
//
// Recording observes completed operations through the VM's access
// hook: monitored loads and stores, plus every lock acquisition (lock
// order must be reproduced too, or the gate and the mutexes can wait
// on each other). Replaying attaches a gate that defers any thread
// about to perform a logged operation out of turn; the VM backs it
// off and runs the thread whose operation is next.
package replay

import (
	"fmt"

	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

// Event is one recorded operation.
type Event struct {
	Tid int
	PC  ir.PC
}

// Log is a recorded total order of shared accesses and lock
// acquisitions.
type Log struct {
	// PCs is the monitored instruction set: the configured loads and
	// stores plus every lock instruction observed during recording.
	PCs map[ir.PC]bool
	// Events is the operation order.
	Events []Event
}

// DefaultPCs returns the exhaustive monitored set for a module: every
// load and store. Enforcing a total order over all memory accesses is
// sufficient (if far stronger than necessary) to reproduce any
// data-race outcome; use SharedPCs for the production-overhead
// profile the paper argues for.
func DefaultPCs(mod *ir.Module) map[ir.PC]bool {
	out := map[ir.PC]bool{}
	mod.Instrs(func(in ir.Instr) {
		if ir.IsMemAccess(in) {
			out[in.PC()] = true
		}
	})
	return out
}

// SharedPCs returns the accesses that touch module globals directly —
// a cheap static approximation of "the racing accesses" (§3.3: in
// deployment, a race detector's reports would select this set).
// Thread-local loop counters and spilled temporaries stay unmonitored,
// which is where the recording cost disappears.
func SharedPCs(mod *ir.Module) map[ir.PC]bool {
	out := map[ir.PC]bool{}
	mod.Instrs(func(in ir.Instr) {
		if !ir.IsMemAccess(in) {
			return
		}
		if _, ok := ir.AccessedPointer(in).(*ir.GlobalRef); ok {
			out[in.PC()] = true
		}
	})
	return out
}

// Recorder captures the operation order of one execution. It
// implements vm.AccessHook (the semantic log) and vm.InstrHook (the
// per-operation virtual cost); attach it as both Access and Hook.
type Recorder struct {
	log *Log
	// CostNS is the per-logged-operation recording cost (default
	// 30ns: an append to a per-thread buffer; merging happens offline
	// using the coarse timestamps the hypothesis provides).
	CostNS int64
}

// NewRecorder returns a Recorder monitoring pcs (plus all locks).
func NewRecorder(pcs map[ir.PC]bool) *Recorder {
	monitored := make(map[ir.PC]bool, len(pcs))
	for pc := range pcs {
		monitored[pc] = true
	}
	return &Recorder{log: &Log{PCs: monitored}, CostNS: 30}
}

var (
	_ vm.AccessHook = (*Recorder)(nil)
	_ vm.InstrHook  = (*Recorder)(nil)
)

// OnAccess implements vm.AccessHook.
func (r *Recorder) OnAccess(tid int, in ir.Instr, addr int64, write bool, time int64) {
	if !r.log.PCs[in.PC()] {
		return
	}
	r.log.Events = append(r.log.Events, Event{Tid: tid, PC: in.PC()})
}

// OnLock implements vm.AccessHook: completed acquisitions enter the
// log (releases need not — their order is induced).
func (r *Recorder) OnLock(tid int, in ir.Instr, addr int64, acquired bool, time int64) {
	if !acquired {
		return
	}
	r.log.PCs[in.PC()] = true
	r.log.Events = append(r.log.Events, Event{Tid: tid, PC: in.PC()})
}

// Before implements vm.InstrHook: the recording cost of a monitored
// operation.
func (r *Recorder) Before(tid int, in ir.Instr, live int, time int64) int64 {
	if r.log.PCs[in.PC()] || in.Op() == ir.OpLock {
		return r.CostNS
	}
	return 0
}

// Log returns the recorded order.
func (r *Recorder) Log() *Log { return r.log }

// Replayer enforces a recorded order. It implements vm.GateHook and
// vm.AccessHook; attach it as both Gate and Access.
type Replayer struct {
	log    *Log
	cursor int
	// granted remembers a lock acquisition already consumed from the
	// log but not yet completed (the thread may retry the blocked
	// lock instruction many times before it succeeds).
	granted map[int]ir.PC
}

// NewReplayer returns a Replayer for the log.
func NewReplayer(log *Log) *Replayer {
	return &Replayer{log: log, granted: map[int]ir.PC{}}
}

var (
	_ vm.GateHook   = (*Replayer)(nil)
	_ vm.AccessHook = (*Replayer)(nil)
)

// Allow implements vm.GateHook: a logged operation may proceed only
// when it is next in the recorded order.
func (r *Replayer) Allow(tid int, in ir.Instr, time int64) bool {
	pc := in.PC()
	if !r.log.PCs[pc] {
		return true
	}
	if r.granted[tid] == pc {
		return true // retrying an already-granted blocked lock
	}
	if r.cursor >= len(r.log.Events) {
		return true // past the recorded window
	}
	next := r.log.Events[r.cursor]
	if next.Tid == tid && next.PC == pc {
		r.cursor++
		if in.Op() == ir.OpLock {
			r.granted[tid] = pc
		}
		return true
	}
	return false
}

// OnAccess implements vm.AccessHook (no bookkeeping needed for plain
// accesses).
func (r *Replayer) OnAccess(tid int, in ir.Instr, addr int64, write bool, time int64) {}

// OnLock implements vm.AccessHook: a completed acquisition clears the
// thread's grant.
func (r *Replayer) OnLock(tid int, in ir.Instr, addr int64, acquired bool, time int64) {
	if acquired && r.granted[tid] == in.PC() {
		delete(r.granted, tid)
	}
}

// Replayed reports how much of the log was consumed.
func (r *Replayer) Replayed() (consumed, total int) {
	return r.cursor, len(r.log.Events)
}

// Record runs the module once under the recorder and returns the
// result and the log.
func Record(mod *ir.Module, cfg vm.Config, pcs map[ir.PC]bool) (*vm.Result, *Log) {
	if pcs == nil {
		pcs = DefaultPCs(mod)
	}
	rec := NewRecorder(pcs)
	cfg.Access = rec
	cfg.Hook = rec
	res := vm.Run(mod, cfg)
	return res, rec.Log()
}

// Replay re-executes the module under the log's order. The scheduler
// seed may differ from the recording's — that is the point: the gate,
// not the scheduler, decides every racing access. It returns an error
// if the recorded order could not be fully enforced.
func Replay(mod *ir.Module, cfg vm.Config, log *Log) (*vm.Result, error) {
	rep := NewReplayer(log)
	cfg.Gate = rep
	cfg.Access = rep
	res := vm.Run(mod, cfg)
	consumed, total := rep.Replayed()
	// A failing recording legitimately ends mid-log (the crash cuts
	// the execution short at the same point).
	if consumed < total && !res.Failed() {
		return res, fmt.Errorf("replay: enforced only %d/%d recorded operations", consumed, total)
	}
	return res, nil
}
