package replay

import (
	"testing"

	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

// racyCounter builds two threads doing unsynchronized
// read-modify-write increments: the final count depends entirely on
// the interleaving.
func racyCounter(t testing.TB, iters int64) *ir.Module {
	t.Helper()
	b := ir.NewBuilder("racy")
	ctr := b.Global("count", ir.Int)

	inc := b.Func("inc", ir.Void)
	n := inc.Param("n", ir.Int)
	entry := inc.Block("entry")
	loop := inc.Block("loop")
	body := inc.Block("body")
	done := inc.Block("done")
	i := entry.Alloca(ir.Int)
	entry.Store(ir.ConstInt(0), i)
	entry.Br(loop)
	iv := loop.Load(i)
	loop.CondBr(loop.Lt(iv, n), body, done)
	v := body.Load(ctr)
	body.Store(body.Add(v, ir.ConstInt(1)), ctr)
	body.Store(body.Add(body.Load(i), ir.ConstInt(1)), i)
	body.Br(loop)
	done.RetVoid()

	main := b.Func("main", ir.Void)
	me := main.Block("entry")
	t1 := me.Spawn(inc.Ref(), ir.ConstInt(iters))
	t2 := me.Spawn(inc.Ref(), ir.ConstInt(iters))
	me.Join(t1)
	me.Join(t2)
	final := me.Load(ctr)
	me.Print(final)
	me.RetVoid()
	return b.MustBuild()
}

// finalCount extracts the printed final counter value.
func finalCount(res *vm.Result) string {
	if len(res.Output) == 0 {
		return ""
	}
	return res.Output[len(res.Output)-1]
}

func TestRacyOutcomeVariesWithoutReplay(t *testing.T) {
	mod := racyCounter(t, 150)
	base := vm.Config{QuantumMin: 50, QuantumMax: 200}
	outcomes := map[string]bool{}
	for seed := int64(0); seed < 12; seed++ {
		cfg := base
		cfg.Seed = seed
		outcomes[finalCount(vm.Run(mod, cfg))] = true
	}
	if len(outcomes) < 2 {
		t.Skip("scheduler produced one outcome; race not exercised on this config")
	}
}

func TestReplayReproducesRacyOutcome(t *testing.T) {
	mod := racyCounter(t, 150)
	base := vm.Config{QuantumMin: 50, QuantumMax: 200}

	recCfg := base
	recCfg.Seed = 3
	recRes, log := Record(mod, recCfg, nil)
	if recRes.Failed() {
		t.Fatal(recRes.Failure)
	}
	want := finalCount(recRes)
	if len(log.Events) == 0 {
		t.Fatal("empty log")
	}

	// Replay under several different scheduler seeds: the gate, not
	// the scheduler, must decide every racing access.
	for seed := int64(10); seed < 15; seed++ {
		cfg := base
		cfg.Seed = seed
		res, err := Replay(mod, cfg, log)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: replay failed: %v", seed, res.Failure)
		}
		if got := finalCount(res); got != want {
			t.Errorf("seed %d: replayed count %s, recorded %s", seed, got, want)
		}
	}
}

func TestReplayReproducesFailure(t *testing.T) {
	// A corpus crash: replaying its log under different seeds must
	// reproduce the same failure at the same PC.
	inst := corpus.ByID("pbzip2-1").Build(corpus.Variant{Failing: true})
	recCfg := vm.Config{Seed: 1}
	recRes, log := Record(inst.Mod, recCfg, nil)
	if !recRes.Failed() {
		t.Fatal("recording did not fail")
	}
	for seed := int64(7); seed < 10; seed++ {
		res, err := Replay(inst.Mod, vm.Config{Seed: seed}, log)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Failed() {
			t.Fatalf("seed %d: replay did not reproduce the failure", seed)
		}
		if res.Failure.PC != recRes.Failure.PC {
			t.Errorf("seed %d: failure at pc %d, recorded pc %d",
				seed, res.Failure.PC, recRes.Failure.PC)
		}
	}
}

func TestReplayerDivergenceAccounting(t *testing.T) {
	mod := racyCounter(t, 20)
	_, log := Record(mod, vm.Config{Seed: 1}, nil)
	// Truncate the log artificially: replay must still finish (the
	// window simply ends) without error.
	log.Events = log.Events[:len(log.Events)/2]
	res, err := Replay(mod, vm.Config{Seed: 2}, log)
	if err != nil || res.Failed() {
		t.Fatalf("truncated-log replay: err=%v failure=%v", err, res.Failure)
	}
}

func TestRecordOverheadModest(t *testing.T) {
	// Recording only the shared (racing-candidate) accesses must be
	// far cheaper than Gist-style blocking instrumentation (~3%+) —
	// the §3.3 claim that coarse order recording is production-grade.
	mod := corpus.Perf("memcached", 2, 20)
	base := vm.Run(mod, vm.Config{Seed: 1})
	recorded, log := Record(mod, vm.Config{Seed: 1}, SharedPCs(mod))
	if base.Failed() || recorded.Failed() {
		t.Fatal("perf run failed")
	}
	overhead := float64(recorded.Time-base.Time) / float64(base.Time)
	if overhead > 0.02 {
		t.Errorf("record overhead = %.2f%%, want < 2%%", overhead*100)
	}
	if len(log.Events) == 0 {
		t.Error("nothing recorded")
	}
}

func TestReplayWithLocksTerminates(t *testing.T) {
	// The regression behind enforcing lock-acquisition order: a
	// lock-protected workload recorded and replayed under foreign
	// seeds must terminate and fully consume the log (previously the
	// gate and the mutex could wait on each other forever).
	mod := corpus.Perf("memcached", 2, 6)
	res, log := Record(mod, vm.Config{Seed: 2}, SharedPCs(mod))
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	for seed := int64(30); seed < 34; seed++ {
		rep, err := Replay(mod, vm.Config{Seed: seed}, log)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: %v", seed, rep.Failure)
		}
	}
}

func TestSharedPCsReplayStillReproduces(t *testing.T) {
	// The narrow monitored set must still pin the racy outcome: the
	// race is on a global, and its accesses are all in the set.
	mod := racyCounter(t, 120)
	base := vm.Config{QuantumMin: 50, QuantumMax: 200}
	recCfg := base
	recCfg.Seed = 5
	recRes, log := Record(mod, recCfg, SharedPCs(mod))
	if recRes.Failed() {
		t.Fatal(recRes.Failure)
	}
	want := finalCount(recRes)
	for seed := int64(20); seed < 24; seed++ {
		cfg := base
		cfg.Seed = seed
		res, err := Replay(mod, cfg, log)
		if err != nil || res.Failed() {
			t.Fatalf("seed %d: err=%v failure=%v", seed, err, res.Failure)
		}
		if got := finalCount(res); got != want {
			t.Errorf("seed %d: count %s, recorded %s", seed, got, want)
		}
	}
}

func TestDefaultPCsOnlyMemAccesses(t *testing.T) {
	mod := racyCounter(t, 5)
	pcs := DefaultPCs(mod)
	if len(pcs) == 0 {
		t.Fatal("empty monitored set")
	}
	for pc := range pcs {
		if !ir.IsMemAccess(mod.InstrAt(pc)) {
			t.Errorf("pc %d is not a memory access", pc)
		}
	}
}
