// Package statdiag implements statistical diagnosis — step 7 of Lazy
// Diagnosis (§4.5 of the Snorlax paper).
//
// Each candidate pattern is scored by the F1 measure (harmonic mean
// of precision and recall) of "pattern present" as a predictor of
// "execution failed", over the set of collected traces: the failing
// trace(s) plus up to 10× as many traces from successful executions
// collected at the failure PC (step 8). The pattern with the highest
// F1 is reported as the root cause.
package statdiag

import (
	"fmt"
	"sort"

	"snorlax/internal/pattern"
)

// Observation is one execution's view of the candidate patterns.
type Observation struct {
	// Failed reports whether this execution failed.
	Failed bool
	// Present maps pattern keys to whether the pattern occurred.
	Present map[string]bool
}

// Score is the statistical verdict for one pattern.
type Score struct {
	Pattern   *pattern.Pattern
	Precision float64
	Recall    float64
	F1        float64
	// Counts behind the ratios.
	PresentFailed, PresentOK, AbsentFailed int
}

func (s Score) String() string {
	return fmt.Sprintf("%s F1=%.3f (P=%.3f R=%.3f)", s.Pattern.Key(), s.F1, s.Precision, s.Recall)
}

// The ratios behind a Score are exact rationals over its count triple:
//
//	precision = pf / (pf + po)
//	recall    = pf / (pf + af)
//	F1        = 2·pf / (2·pf + po + af)
//
// (the last by substituting P and R into 2PR/(P+R)). Ties must be
// detected on these integers, not on the rounded float64 fields:
// mathematically equal ratios computed from different triples — e.g.
// (pf,po,af) = (1,0,1) and (3,1,2), both F1 = 2/3 — can land on
// different float64 values after the two-division round trip, and a
// spurious strict inequality there flips which pattern is reported as
// the root cause and whether the verdict counts as unique.

// cmpFrac compares the rationals an/ad and bn/bd by integer cross
// product. A zero denominator means the ratio is undefined and scores
// as 0 (the convention the float fields follow).
func cmpFrac(an, ad, bn, bd int64) int {
	if ad == 0 {
		an, ad = 0, 1
	}
	if bd == 0 {
		bn, bd = 0, 1
	}
	switch l, r := an*bd, bn*ad; {
	case l < r:
		return -1
	case l > r:
		return 1
	}
	return 0
}

func (s Score) f1Frac() (num, den int64) {
	pf, po, af := int64(s.PresentFailed), int64(s.PresentOK), int64(s.AbsentFailed)
	return 2 * pf, 2*pf + po + af
}

func (s Score) precisionFrac() (num, den int64) {
	pf, po := int64(s.PresentFailed), int64(s.PresentOK)
	return pf, pf + po
}

func (s Score) recallFrac() (num, den int64) {
	pf, af := int64(s.PresentFailed), int64(s.AbsentFailed)
	return pf, pf + af
}

// CompareF1 orders two scores by their exact F1 ratios: -1, 0 or +1 as
// a's F1 is less than, equal to, or greater than b's. Equal ratios
// compare equal regardless of which count triples produced them.
func CompareF1(a, b Score) int {
	an, ad := a.f1Frac()
	bn, bd := b.f1Frac()
	return cmpFrac(an, ad, bn, bd)
}

// ComparePrecision orders two scores by their exact precision ratios.
func ComparePrecision(a, b Score) int {
	an, ad := a.precisionFrac()
	bn, bd := b.precisionFrac()
	return cmpFrac(an, ad, bn, bd)
}

// CompareRecall orders two scores by their exact recall ratios.
func CompareRecall(a, b Score) int {
	an, ad := a.recallFrac()
	bn, bd := b.recallFrac()
	return cmpFrac(an, ad, bn, bd)
}

// Rank scores every pattern over the observations and returns the
// scores sorted by descending F1 (ties broken by the pattern's type
// rank, then key, for determinism).
func Rank(patterns []*pattern.Pattern, obs []Observation) []Score {
	scores := make([]Score, 0, len(patterns))
	for _, p := range patterns {
		key := p.Key()
		var presentFailed, presentOK, absentFailed int
		for _, o := range obs {
			present := o.Present[key]
			switch {
			case present && o.Failed:
				presentFailed++
			case present && !o.Failed:
				presentOK++
			case !present && o.Failed:
				absentFailed++
			}
		}
		s := Score{
			Pattern:       p,
			PresentFailed: presentFailed,
			PresentOK:     presentOK,
			AbsentFailed:  absentFailed,
		}
		if presentFailed+presentOK > 0 {
			s.Precision = float64(presentFailed) / float64(presentFailed+presentOK)
		}
		if presentFailed+absentFailed > 0 {
			s.Recall = float64(presentFailed) / float64(presentFailed+absentFailed)
		}
		if s.Precision+s.Recall > 0 {
			s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
		}
		scores = append(scores, s)
	}
	sort.Slice(scores, func(i, j int) bool {
		si, sj := scores[i], scores[j]
		if c := CompareF1(si, sj); c != 0 {
			return c > 0
		}
		// Specificity: a pattern constraining more events (an
		// atomicity triple) subsumes a coarser one (the order pair it
		// contains) when both predict the failure equally well.
		if len(si.Pattern.PCs) != len(sj.Pattern.PCs) {
			return len(si.Pattern.PCs) > len(sj.Pattern.PCs)
		}
		if si.Pattern.Rank != sj.Pattern.Rank {
			return si.Pattern.Rank < sj.Pattern.Rank
		}
		return si.Pattern.Key() < sj.Pattern.Key()
	})
	return scores
}

// Best returns the top-scored pattern, plus whether it is uniquely
// best: strictly higher F1 than the runner-up, or equal F1 but
// strictly more specific (more constrained events). The paper notes
// developers must disambiguate manually on exact ties; its evaluation
// — and ours — never hits that case.
func Best(scores []Score) (Score, bool) {
	if len(scores) == 0 {
		return Score{}, false
	}
	if len(scores) == 1 {
		return scores[0], true
	}
	a, b := scores[0], scores[1]
	c := CompareF1(a, b)
	unique := c > 0 || (c == 0 && len(a.Pattern.PCs) > len(b.Pattern.PCs))
	return a, unique
}
