package statdiag

import (
	"math"
	"testing"
	"testing/quick"

	"snorlax/internal/ir"
	"snorlax/internal/pattern"
)

func pat(kind pattern.Kind, sub string, pcs ...ir.PC) *pattern.Pattern {
	return &pattern.Pattern{Kind: kind, Sub: sub, PCs: pcs}
}

func obs(failed bool, present ...string) Observation {
	o := Observation{Failed: failed, Present: map[string]bool{}}
	for _, k := range present {
		o.Present[k] = true
	}
	return o
}

func TestPerfectPredictorScoresOne(t *testing.T) {
	p := pat(pattern.KindOrderViolation, "WR", 1, 2)
	observations := []Observation{
		obs(true, p.Key()),
		obs(false), obs(false), obs(false),
	}
	scores := Rank([]*pattern.Pattern{p}, observations)
	if len(scores) != 1 {
		t.Fatal("missing score")
	}
	s := scores[0]
	if s.F1 != 1 || s.Precision != 1 || s.Recall != 1 {
		t.Errorf("score = %+v", s)
	}
	if s.PresentFailed != 1 || s.PresentOK != 0 || s.AbsentFailed != 0 {
		t.Errorf("counts = %+v", s)
	}
}

func TestAlwaysPresentPatternScoresLow(t *testing.T) {
	root := pat(pattern.KindOrderViolation, "WR", 1, 2)
	noisy := pat(pattern.KindOrderViolation, "WR", 3, 2)
	observations := []Observation{obs(true, root.Key(), noisy.Key())}
	for i := 0; i < 10; i++ {
		observations = append(observations, obs(false, noisy.Key()))
	}
	scores := Rank([]*pattern.Pattern{noisy, root}, observations)
	best, unique := Best(scores)
	if !unique {
		t.Fatal("expected unique best")
	}
	if best.Pattern != root {
		t.Errorf("best = %s", best.Pattern.Key())
	}
	// Noisy pattern: precision 1/11, recall 1 → F1 = 2/12.
	var noisyScore Score
	for _, s := range scores {
		if s.Pattern == noisy {
			noisyScore = s
		}
	}
	want := 2.0 / 12.0
	if math.Abs(noisyScore.F1-want) > 1e-9 {
		t.Errorf("noisy F1 = %f, want %f", noisyScore.F1, want)
	}
}

func TestPatternMissingFromFailureHasZeroRecallF1(t *testing.T) {
	p := pat(pattern.KindAtomicityViolation, "RWR", 1, 2, 3)
	observations := []Observation{
		obs(true), // failed but pattern absent
		obs(false, p.Key()),
	}
	scores := Rank([]*pattern.Pattern{p}, observations)
	if scores[0].F1 != 0 {
		t.Errorf("F1 = %f, want 0", scores[0].F1)
	}
}

func TestTieIsReported(t *testing.T) {
	a := pat(pattern.KindOrderViolation, "WR", 1, 9)
	b := pat(pattern.KindOrderViolation, "WR", 2, 9)
	observations := []Observation{
		obs(true, a.Key(), b.Key()),
		obs(false),
	}
	scores := Rank([]*pattern.Pattern{a, b}, observations)
	if _, unique := Best(scores); unique {
		t.Error("tie not detected")
	}
}

func TestBestEmpty(t *testing.T) {
	if _, ok := Best(nil); ok {
		t.Error("Best(nil) should not be unique")
	}
}

func TestRankDeterministicOrder(t *testing.T) {
	a := pat(pattern.KindOrderViolation, "WR", 5, 9)
	b := pat(pattern.KindOrderViolation, "WR", 2, 9)
	observations := []Observation{obs(true, a.Key(), b.Key()), obs(false)}
	s1 := Rank([]*pattern.Pattern{a, b}, observations)
	s2 := Rank([]*pattern.Pattern{b, a}, observations)
	if s1[0].Pattern.Key() != s2[0].Pattern.Key() || s1[1].Pattern.Key() != s2[1].Pattern.Key() {
		t.Error("Rank order depends on input order")
	}
}

func TestF1Bounds(t *testing.T) {
	// Property: F1, precision, recall always in [0,1] for arbitrary
	// presence bitmaps.
	check := func(bits uint16, failMask uint16) bool {
		p := pat(pattern.KindOrderViolation, "WR", 1, 2)
		var observations []Observation
		for i := 0; i < 16; i++ {
			o := Observation{Failed: failMask&(1<<i) != 0, Present: map[string]bool{}}
			if bits&(1<<i) != 0 {
				o.Present[p.Key()] = true
			}
			observations = append(observations, o)
		}
		s := Rank([]*pattern.Pattern{p}, observations)[0]
		return s.F1 >= 0 && s.F1 <= 1 && s.Precision >= 0 && s.Precision <= 1 &&
			s.Recall >= 0 && s.Recall <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestF1Boundaries tables the degenerate observation sets §4.5's F1
// can see in production: no observations at all, zero successful
// traces (the cold-start case statistical diagnosis exists to get out
// of), and failure-only or success-only pattern occurrence.
func TestF1Boundaries(t *testing.T) {
	p := pat(pattern.KindOrderViolation, "WR", 1, 2)
	cases := []struct {
		name          string
		observations  []Observation
		prec, rec, f1 float64
	}{
		{"no observations", nil, 0, 0, 0},
		{"zero successes, always present",
			[]Observation{obs(true, p.Key()), obs(true, p.Key())}, 1, 1, 1},
		{"zero successes, never present",
			[]Observation{obs(true), obs(true)}, 0, 0, 0},
		{"all failing, present once",
			[]Observation{obs(true, p.Key()), obs(true)}, 1, 0.5, 2.0 / 3},
		{"present only in successes",
			[]Observation{obs(true), obs(false, p.Key())}, 0, 0, 0},
		{"successes only, pattern absent",
			[]Observation{obs(false), obs(false)}, 0, 0, 0},
		{"half precision, full recall",
			[]Observation{obs(true, p.Key()), obs(false, p.Key()), obs(false)}, 0.5, 1, 2.0 / 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scores := Rank([]*pattern.Pattern{p}, tc.observations)
			if len(scores) != 1 {
				t.Fatalf("got %d scores", len(scores))
			}
			s := scores[0]
			if s.Precision != tc.prec || s.Recall != tc.rec || math.Abs(s.F1-tc.f1) > 1e-12 {
				t.Errorf("P/R/F1 = %v/%v/%v, want %v/%v/%v",
					s.Precision, s.Recall, s.F1, tc.prec, tc.rec, tc.f1)
			}
		})
	}
}

// TestExactRatioComparisons tables the integer cross-product
// comparators against count triples whose float ratios round apart
// (or together) misleadingly.
func TestExactRatioComparisons(t *testing.T) {
	sc := func(pf, po, af int) Score {
		return Score{PresentFailed: pf, PresentOK: po, AbsentFailed: af}
	}
	cases := []struct {
		name string
		a, b Score
		cmp  func(a, b Score) int
		want int
	}{
		// The ISSUE's example: precision 30/90 vs 1/3 is the same ratio
		// from different counts.
		{"precision 30/90 == 1/3", sc(30, 60, 0), sc(1, 2, 0), ComparePrecision, 0},
		{"recall 30/90 == 1/3", sc(30, 0, 60), sc(1, 0, 2), CompareRecall, 0},
		{"f1 equal from unequal triples", sc(2, 8, 0), sc(1, 3, 1), CompareF1, 0},
		{"f1 equal, scaled", sc(3, 12, 0), sc(1, 2, 2), CompareF1, 0},
		{"f1 strictly greater", sc(2, 0, 0), sc(1, 1, 1), CompareF1, 1},
		{"f1 strictly smaller", sc(1, 3, 3), sc(1, 1, 1), CompareF1, -1},
		{"undefined precision scores zero", sc(0, 0, 2), sc(1, 99, 0), ComparePrecision, -1},
		{"undefined recall scores zero", sc(0, 2, 0), sc(1, 0, 99), CompareRecall, -1},
		{"both undefined tie at zero", sc(0, 0, 0), sc(0, 0, 0), CompareF1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.cmp(tc.a, tc.b); got != tc.want {
				t.Errorf("cmp = %d, want %d", got, tc.want)
			}
			// Antisymmetry: swapping the arguments must negate.
			if got := tc.cmp(tc.b, tc.a); got != -tc.want {
				t.Errorf("swapped cmp = %d, want %d", got, -tc.want)
			}
		})
	}
}

// TestFloatF1TieNotFlipped is the tie-break regression test: two
// patterns whose F1 ratios are mathematically equal (1/3) but whose
// float64 computations round to different values must be treated as
// tied — ranked by the deterministic key order and reported as
// non-unique — instead of letting ulp noise pick the root cause.
func TestFloatF1TieNotFlipped(t *testing.T) {
	// a: present in both failing runs and 8 successes → (pf,po,af) = (2,8,0).
	// b: present in one failing run and 3 successes  → (pf,po,af) = (1,3,1).
	// Exact F1: 4/12 = 1/3 and 2/6 = 1/3. Float F1: they differ in the
	// last ulp (0.333…37 vs 0.333…31), so float comparison declares a
	// strict winner.
	a := pat(pattern.KindOrderViolation, "WR", 1, 9)
	b := pat(pattern.KindOrderViolation, "WR", 2, 9)
	observations := []Observation{
		obs(true, a.Key(), b.Key()),
		obs(true, a.Key()),
	}
	for i := 0; i < 3; i++ {
		observations = append(observations, obs(false, a.Key(), b.Key()))
	}
	for i := 0; i < 5; i++ {
		observations = append(observations, obs(false, a.Key()))
	}
	observations = append(observations, obs(false), obs(false))

	scores := Rank([]*pattern.Pattern{a, b}, observations)
	sa, sb := scores[0], scores[1]
	if sa.Pattern != a || sb.Pattern != b {
		// Same kind, same PC count, same rank: the key (smaller first
		// PC) must decide the order, not float noise.
		t.Fatalf("order = %s, %s; want the key-ordered a, b",
			scores[0].Pattern.Key(), scores[1].Pattern.Key())
	}
	if sa.F1 == sb.F1 {
		t.Fatal("float F1s rounded equal; the fixture no longer exercises the float-tie bug")
	}
	if CompareF1(sa, sb) != 0 {
		t.Fatalf("exact F1s differ: %+v vs %+v", sa, sb)
	}
	if _, unique := Best(scores); unique {
		t.Error("mathematically tied patterns reported as a unique best")
	}
}

// TestBestSpecificityTieBreak covers Best's uniqueness contract on
// exact F1 ties: more constrained events win; equally constrained
// ties are reported as ambiguous.
func TestBestSpecificityTieBreak(t *testing.T) {
	triple := pat(pattern.KindAtomicityViolation, "RWR", 1, 2, 3)
	pair := pat(pattern.KindOrderViolation, "WR", 1, 2)
	observations := []Observation{obs(true, triple.Key(), pair.Key()), obs(false)}
	best, unique := Best(Rank([]*pattern.Pattern{pair, triple}, observations))
	if !unique || best.Pattern != triple {
		t.Errorf("best = %v (unique=%v), want the atomicity triple uniquely", best.Pattern.Key(), unique)
	}

	other := pat(pattern.KindOrderViolation, "WR", 3, 4)
	observations = []Observation{obs(true, pair.Key(), other.Key()), obs(false)}
	if _, unique := Best(Rank([]*pattern.Pattern{pair, other}, observations)); unique {
		t.Error("equal-specificity exact tie reported as unique")
	}
}
