package experiments

import (
	"fmt"
	"strings"

	"snorlax/internal/corpus"
	"snorlax/internal/gist"
	"snorlax/internal/pattern"
	"snorlax/internal/vm"
)

// LatencyResult is the §6.3 diagnosis-latency comparison.
type LatencyResult struct {
	// PerBugRecurrences maps evaluated bugs to how many failure
	// recurrences Gist's iterative refinement needed.
	PerBugRecurrences map[string]int
	// MeanRecurrences is the average (the paper reports 3.7 for
	// Gist; Snorlax always needs exactly 1 failure).
	MeanRecurrences float64
	// Model extrapolates to many open bugs under space sampling.
	Model []LatencyModelRow
}

// LatencyModelRow is one open-bug-count scenario.
type LatencyModelRow struct {
	OpenBugs        int
	GistFailures    float64
	SimulatedMean   float64
	SpeedupOverGist float64
}

// Latency measures Gist's recurrences-to-diagnosis on the evaluated
// crash bugs and extrapolates the latency model, including the
// paper's Chromium scenario (684 open race reports).
func Latency() LatencyResult {
	res := LatencyResult{PerBugRecurrences: map[string]int{}}
	total, count := 0, 0
	for _, b := range corpus.EvalSet() {
		if b.Kind == pattern.KindDeadlock {
			continue
		}
		inst := b.Build(corpus.Variant{Failing: true})
		run := vm.Run(inst.Mod, vm.Config{Seed: 1})
		if !run.Failed() {
			continue
		}
		out, err := gist.Diagnose(inst.Mod, run.Failure.PC, inst.TruthPCs, 1, 12)
		if err != nil || !out.Captured {
			continue
		}
		res.PerBugRecurrences[b.ID] = out.Recurrences
		total += out.Recurrences
		count++
	}
	if count > 0 {
		res.MeanRecurrences = float64(total) / float64(count)
	}
	for _, bugs := range []int{1, 10, 100, 684} {
		m := gist.LatencyModel{RecurrencesNeeded: res.MeanRecurrences, Bugs: bugs}
		res.Model = append(res.Model, LatencyModelRow{
			OpenBugs:        bugs,
			GistFailures:    m.ExpectedGistFailures(),
			SimulatedMean:   m.SimulateMean(400, 11),
			SpeedupOverGist: m.SpeedupOverGist(),
		})
	}
	return res
}

// FormatLatency renders the comparison.
func FormatLatency(r LatencyResult) string {
	var sb strings.Builder
	sb.WriteString("  Gist recurrences to diagnosis per bug (Snorlax: always 1 failure):\n")
	for _, b := range corpus.EvalSet() {
		if n, ok := r.PerBugRecurrences[b.ID]; ok {
			fmt.Fprintf(&sb, "    %-16s %d\n", b.ID, n)
		}
	}
	fmt.Fprintf(&sb, "  mean recurrences: %.2f (paper: 3.7)\n", r.MeanRecurrences)
	sb.WriteString("  expected failures before diagnosing one target bug under space sampling:\n")
	for _, row := range r.Model {
		fmt.Fprintf(&sb, "    %4d open bugs: gist %8.1f (simulated %8.1f)  snorlax 1.0  → snorlax %7.1fx lower latency\n",
			row.OpenBugs, row.GistFailures, row.SimulatedMean, row.SpeedupOverGist)
	}
	sb.WriteString("  (paper: ≥3.7x, and 2523x for Chromium's 684 open race reports)\n")
	return sb.String()
}
