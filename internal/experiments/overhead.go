package experiments

import (
	"fmt"
	"strings"

	"snorlax/internal/corpus"
	"snorlax/internal/gist"
	"snorlax/internal/pt"
	"snorlax/internal/vm"
)

// Fig8Row is one system's control-flow-tracing overhead (Figure 8).
type Fig8Row struct {
	System string
	// MeanPct and PeakPct are the average and worst overhead across
	// seeds, in percent of untraced virtual time.
	MeanPct, PeakPct float64
}

// Fig8 measures tracing overhead per benchmark system: each system's
// throughput workload runs with and without the tracer under `reps`
// seeds.
func Fig8(threads, ops, reps int) ([]Fig8Row, float64) {
	var rows []Fig8Row
	var sum float64
	for _, sys := range corpus.PerfSystems() {
		mod := corpus.Perf(sys, threads, ops)
		var total, peak float64
		for seed := int64(1); seed <= int64(reps); seed++ {
			base := vm.Run(mod, vm.Config{Seed: seed})
			traced := vm.Run(mod, vm.Config{Seed: seed, Sink: pt.NewEncoder(pt.Config{})})
			oh := 100 * float64(traced.Time-base.Time) / float64(base.Time)
			total += oh
			if oh > peak {
				peak = oh
			}
		}
		mean := total / float64(reps)
		rows = append(rows, Fig8Row{System: sys, MeanPct: mean, PeakPct: peak})
		sum += mean
	}
	return rows, sum / float64(len(rows))
}

// Fig9Row is one thread count's conflated overhead for both tools.
type Fig9Row struct {
	Threads    int
	SnorlaxPct float64
	GistPct    float64
}

// Fig9 sweeps the application thread count, measuring Snorlax's
// tracing overhead against Gist's instrumentation overhead, conflated
// (averaged) across all benchmark systems as in the paper.
func Fig9(threadCounts []int, ops int) []Fig9Row {
	var rows []Fig9Row
	systems := corpus.PerfSystems()
	for _, threads := range threadCounts {
		var snor, gst float64
		for _, sys := range systems {
			mod := corpus.Perf(sys, threads, ops)
			base := vm.Run(mod, vm.Config{Seed: 1})
			traced := vm.Run(mod, vm.Config{Seed: 1, Sink: pt.NewEncoder(pt.Config{})})
			snor += 100 * float64(traced.Time-base.Time) / float64(base.Time)

			mon := gist.NewMonitor(gist.SharedAccessPCs(mod, "op_worker"))
			monitored := vm.Run(mod, vm.Config{Seed: 1, Hook: mon})
			gst += 100 * float64(monitored.Time-base.Time) / float64(base.Time)
		}
		rows = append(rows, Fig9Row{
			Threads:    threads,
			SnorlaxPct: snor / float64(len(systems)),
			GistPct:    gst / float64(len(systems)),
		})
	}
	return rows
}

// FormatFig8 renders the per-system overhead chart.
func FormatFig8(rows []Fig8Row, avg float64) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-14s mean %5.2f%%  peak %5.2f%%  %s\n",
			r.System, r.MeanPct, r.PeakPct, bar(r.MeanPct, 2.5, 40))
	}
	fmt.Fprintf(&sb, "  average %.2f%% (paper: 0.97%%; peak pbzip2 1.91%%)\n", avg)
	return sb.String()
}

// FormatFig9 renders the scalability comparison.
func FormatFig9(rows []Fig9Row) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "  threads %2d  snorlax %5.2f%% %-20s gist %6.2f%% %s\n",
			r.Threads, r.SnorlaxPct, bar(r.SnorlaxPct, 45, 20), r.GistPct, bar(r.GistPct, 45, 20))
	}
	sb.WriteString("  (paper: snorlax 0.87%→1.98%, gist 3.14%→38.9% from 2 to 32 threads)\n")
	return sb.String()
}

func bar(v, max float64, width int) string {
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
