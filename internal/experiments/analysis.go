package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/pointsto"
	"snorlax/internal/pt"
	"snorlax/internal/traceproc"
	"snorlax/internal/vm"
)

// Table4Row compares the hybrid (scope-restricted) server-side
// analysis against a whole-program static analysis for one system.
type Table4Row struct {
	System string
	Bug    string
	// HybridTime is the full server-side analysis per received trace;
	// WholeTime is the pure static points-to analysis on the whole
	// module.
	HybridTime, WholeTime time.Duration
	// Speedup is WholeTime / hybrid points-to time.
	Speedup float64
	// HybridConstraints/WholeConstraints compare analysis work in a
	// wall-clock-independent way.
	HybridConstraints, WholeConstraints int
}

// Table4 picks one evaluated bug per C/C++ system and measures both
// analyses. reps repeats the timed sections to stabilize wall-clock
// numbers on a busy host.
func Table4(reps int) ([]Table4Row, float64) {
	perSystem := map[string]*corpus.Bug{}
	for _, b := range corpus.EvalSet() {
		if _, ok := perSystem[b.System]; !ok {
			perSystem[b.System] = b
		}
	}
	var rows []Table4Row
	var logSum float64
	for _, sys := range corpus.PerfSystems() {
		b := perSystem[sys]
		if b == nil {
			continue
		}
		failInst := b.Build(corpus.Variant{Failing: true})
		client := core.NewClient(failInst.Mod)
		rep := client.Run(1, ir.NoPC)
		if !rep.Failed() {
			continue
		}
		stop := map[int]ir.PC{rep.Failure.Tid: rep.Failure.PC}
		traces, err := pt.DecodeSnapshot(failInst.Mod, rep.Snapshot, pt.Config{}, stop)
		if err != nil {
			continue
		}
		scope, _ := traceproc.Process(traces)

		var hybridPts, whole time.Duration
		var hybridC, wholeC int
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			h := pointsto.NewAndersen(failInst.Mod, scope)
			hybridPts += time.Since(t0)
			t0 = time.Now()
			w := pointsto.NewAndersen(failInst.Mod, nil)
			whole += time.Since(t0)
			hybridC, wholeC = h.Constraints(), w.Constraints()
		}
		hybridPts /= time.Duration(reps)
		whole /= time.Duration(reps)

		// The full hybrid pipeline time for one trace (steps 2–7).
		srv := core.NewServer(failInst.Mod)
		d, err := srv.Diagnose(rep, nil)
		if err != nil {
			continue
		}
		speedup := float64(whole) / math.Max(float64(hybridPts), 1)
		rows = append(rows, Table4Row{
			System:            sys,
			Bug:               b.ID,
			HybridTime:        d.Stats.TotalTime,
			WholeTime:         whole,
			Speedup:           speedup,
			HybridConstraints: hybridC,
			WholeConstraints:  wholeC,
		})
		logSum += math.Log(speedup)
	}
	geo := 0.0
	if len(rows) > 0 {
		geo = math.Exp(logSum / float64(len(rows)))
	}
	return rows, geo
}

// FormatTable4 renders the analysis-time comparison.
func FormatTable4(rows []Table4Row, geo float64) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-14s hybrid %-10v whole-program %-10v speedup %6.1fx  constraints %d vs %d\n",
			r.System, r.HybridTime.Round(time.Microsecond), r.WholeTime.Round(time.Microsecond),
			r.Speedup, r.HybridConstraints, r.WholeConstraints)
	}
	fmt.Fprintf(&sb, "  geometric-mean points-to speedup %.1fx (paper: 24x; larger programs gain more)\n", geo)
	return sb.String()
}

// TraceStatsResult reports what the per-thread 64 KB ring buffers
// capture on a realistic workload (§5/§6: the paper reports ~6764
// control events and ~6695 timing packets per thread, timing ≈49% of
// buffer bytes).
type TraceStatsResult struct {
	System string
	// Threads is the number of traced threads.
	Threads int
	// ControlEventsPerThread and TimingPacketsPerThread average over
	// the captured rings.
	ControlEventsPerThread int64
	TimingPacketsPerThread int64
	// TimingFraction is the share of trace bytes spent on timing.
	TimingFraction float64
	// AnyWrapped reports that at least one ring overwrote history —
	// the normal production state for long-running programs.
	AnyWrapped bool
	// PacketsByKind tallies the captured packets across threads.
	PacketsByKind map[pt.PacketKind]int64
}

// TraceStats runs a system's throughput workload under the tracer and
// inspects what survives in the ring buffers.
func TraceStats(system string) TraceStatsResult {
	mod := corpus.Perf(system, 2, 60)
	enc := pt.NewEncoder(pt.Config{})
	vm.Run(mod, vm.Config{Seed: 1, Sink: enc})
	snap := enc.Snapshot()

	out := TraceStatsResult{
		System:         system,
		Threads:        len(snap.Threads),
		TimingFraction: enc.Stats().TimingFraction(),
		PacketsByKind:  map[pt.PacketKind]int64{},
	}
	var control, timing int64
	for _, tid := range snap.Tids() {
		st := snap.Threads[tid]
		if st.Wrapped {
			out.AnyWrapped = true
		}
		counts, events, err := pt.CountPackets(st)
		if err != nil {
			continue
		}
		control += events
		timing += counts[pt.KindMTC] + counts[pt.KindCYC]
		for k, n := range counts {
			out.PacketsByKind[k] += n
		}
	}
	if out.Threads > 0 {
		out.ControlEventsPerThread = control / int64(out.Threads)
		out.TimingPacketsPerThread = timing / int64(out.Threads)
	}
	return out
}

// FormatTraceStats renders the packet-mix report.
func FormatTraceStats(r TraceStatsResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %s workload, %d traced threads (64 KB rings, wrapped=%v)\n",
		r.System, r.Threads, r.AnyWrapped)
	fmt.Fprintf(&sb, "  captured per thread: %d control events (paper: ~6764), %d timing packets (paper: ~6695)\n",
		r.ControlEventsPerThread, r.TimingPacketsPerThread)
	fmt.Fprintf(&sb, "  timing packets occupy %.0f%% of trace bytes (paper: 49%%)\n", 100*r.TimingFraction)
	for _, k := range []pt.PacketKind{pt.KindPSB, pt.KindTNT, pt.KindTIP, pt.KindMTC, pt.KindCYC} {
		fmt.Fprintf(&sb, "    %-4s %6d\n", k, r.PacketsByKind[k])
	}
	return sb.String()
}
