package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
)

// AccuracyRow is one bug's diagnosis outcome (§6.1).
type AccuracyRow struct {
	Bug            string
	Correct        bool
	Unique         bool
	OrderingAcc    float64
	F1             float64
	FailuresNeeded int
	AnalysisTime   time.Duration
	Stats          core.StageStats
}

// Accuracy diagnoses each bug through the full Session loop and
// scores the result against ground truth.
func Accuracy(bugs []*corpus.Bug) []AccuracyRow {
	var rows []AccuracyRow
	for _, b := range bugs {
		failInst := b.Build(corpus.Variant{Failing: true})
		okInst := b.Build(corpus.Variant{Failing: false})
		sess := core.NewSession(failInst.Mod, okInst.Mod)
		out, err := sess.Run()
		row := AccuracyRow{Bug: b.ID}
		if err == nil {
			truth := core.Truth{Kind: failInst.TruthKind, Sub: failInst.TruthSub,
				PCs: failInst.TruthPCs, Absence: failInst.TruthAbsence}
			row.Correct = core.MatchesTruth(out.Diagnosis.Best.Pattern, truth)
			row.Unique = out.Diagnosis.Unique
			row.OrderingAcc = core.OrderingAccuracy(out.Diagnosis.Best.Pattern, truth)
			row.F1 = out.Diagnosis.Best.F1
			row.FailuresNeeded = out.FailuresNeeded
			row.AnalysisTime = out.Diagnosis.Stats.TotalTime
			row.Stats = out.Diagnosis.Stats
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig7Row decomposes one bug's diagnosis into per-stage reductions of
// the instruction set still under consideration. The contribution of
// a stage is the share of the original instruction set it eliminated
// — the metric behind the paper's Figure 7 (trace processing ≈87.9%,
// type ranking ≈+9.7%).
type Fig7Row struct {
	Bug string
	// Remaining counts instructions after each stage: module, trace
	// processing (2), points-to candidates (4), rank-1 candidates
	// (5), pattern events (6), root-cause events (7).
	Remaining [6]int
	// ContributionPct per stage (5 entries, summing to ~100).
	ContributionPct [5]float64
	// ScopeReduction and RankReduction are the stagewise factors the
	// paper quotes (9x and 4.6x geometric means).
	ScopeReduction float64
	RankReduction  float64
}

// Fig7 measures stage contributions for the given bugs and also
// returns the geometric means of the scope and ranking reductions.
func Fig7(bugs []*corpus.Bug) (rows []Fig7Row, geoScope, geoRank float64) {
	var logScope, logRank float64
	n := 0
	for _, b := range bugs {
		failInst := b.Build(corpus.Variant{Failing: true})
		okInst := b.Build(corpus.Variant{Failing: false})
		sess := core.NewSession(failInst.Mod, okInst.Mod)
		out, err := sess.Run()
		if err != nil {
			continue
		}
		st := out.Diagnosis.Stats
		best := out.Diagnosis.Best.Pattern
		// The anchored failing instruction appears in every pattern
		// but is never a candidate; exclude it so the stage counts
		// measure the same set (candidates still in play).
		anchor := out.Diagnosis.AnchorPC
		patEvents := 0
		if best != nil {
			seen := map[int64]bool{}
			for _, s := range out.Diagnosis.Scores {
				for _, pc := range s.Pattern.PCs {
					if pc != anchor && pc >= 0 {
						seen[int64(pc)] = true
					}
				}
			}
			patEvents = len(seen)
		}
		rootEvents := 0
		if best != nil {
			for _, pc := range best.PCs {
				if pc != anchor && pc >= 0 {
					rootEvents++
				}
			}
		}
		row := Fig7Row{Bug: b.ID}
		row.Remaining = [6]int{st.TotalInstrs, st.ExecutedInstrs, st.Candidates,
			st.Rank1Candidates, patEvents, rootEvents}
		// Later stages can only narrow the set under consideration.
		for i := 1; i < len(row.Remaining); i++ {
			if row.Remaining[i] > row.Remaining[i-1] {
				row.Remaining[i] = row.Remaining[i-1]
			}
		}
		total := float64(st.TotalInstrs)
		for i := 0; i < 5; i++ {
			row.ContributionPct[i] = 100 * float64(row.Remaining[i]-row.Remaining[i+1]) / total
		}
		if st.ExecutedInstrs > 0 {
			row.ScopeReduction = float64(st.TotalInstrs) / float64(st.ExecutedInstrs)
		}
		if st.Rank1Candidates > 0 {
			row.RankReduction = float64(st.Candidates) / float64(st.Rank1Candidates)
		} else if st.Candidates > 0 {
			row.RankReduction = float64(st.Candidates)
		}
		rows = append(rows, row)
		if row.ScopeReduction > 0 && row.RankReduction > 0 {
			logScope += math.Log(row.ScopeReduction)
			logRank += math.Log(row.RankReduction)
			n++
		}
	}
	if n > 0 {
		geoScope = math.Exp(logScope / float64(n))
		geoRank = math.Exp(logRank / float64(n))
	}
	return rows, geoScope, geoRank
}

// FormatAccuracy renders the §6.1 results.
func FormatAccuracy(rows []AccuracyRow) string {
	var sb strings.Builder
	correct, aoSum := 0, 0.0
	for _, r := range rows {
		status := "WRONG"
		if r.Correct {
			status = "ok"
			correct++
		}
		aoSum += r.OrderingAcc
		fmt.Fprintf(&sb, "  %-16s %-5s A_O=%5.1f%% F1=%.2f failures=%d analysis=%v\n",
			r.Bug, status, r.OrderingAcc, r.F1, r.FailuresNeeded, r.AnalysisTime.Round(time.Millisecond))
	}
	fmt.Fprintf(&sb, "  accuracy: %d/%d (%.0f%%), mean A_O %.1f%%\n",
		correct, len(rows), 100*float64(correct)/float64(len(rows)), aoSum/float64(len(rows)))
	return sb.String()
}

// FormatFig7 renders the stage-contribution figure.
func FormatFig7(rows []Fig7Row, geoScope, geoRank float64) string {
	stages := []string{"trace processing", "hybrid points-to", "type ranking",
		"pattern computation", "statistical diagnosis"}
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-16s instrs %6d→%5d→%4d→%3d→%3d→%d  scope %5.1fx rank %4.1fx\n",
			r.Bug, r.Remaining[0], r.Remaining[1], r.Remaining[2],
			r.Remaining[3], r.Remaining[4], r.Remaining[5],
			r.ScopeReduction, r.RankReduction)
	}
	var avg [5]float64
	for _, r := range rows {
		for i := range avg {
			avg[i] += r.ContributionPct[i] / float64(len(rows))
		}
	}
	sb.WriteString("  mean contribution to instruction-set reduction:\n")
	for i, s := range stages {
		fmt.Fprintf(&sb, "    %-24s %6.2f%%\n", s, avg[i])
	}
	fmt.Fprintf(&sb, "  geometric means: scope restriction %.1fx (paper: 9x), type ranking %.1fx (paper: 4.6x)\n",
		geoScope, geoRank)
	return sb.String()
}
