package experiments

import (
	"strings"
	"testing"

	"snorlax/internal/corpus"
	"snorlax/internal/pattern"
)

func TestHypothesisTablesCoverCorpus(t *testing.T) {
	t1 := HypothesisTable(pattern.KindDeadlock, 3)
	t2 := HypothesisTable(pattern.KindOrderViolation, 3)
	t3 := HypothesisTable(pattern.KindAtomicityViolation, 3)
	if len(t1) != 14 || len(t2) != 18 || len(t3) != 22 {
		t.Fatalf("table sizes = %d/%d/%d, want 14/18/22", len(t1), len(t2), len(t3))
	}
	for _, r := range t3 {
		if len(r.MeanUS) < 2 {
			t.Errorf("%s: atomicity row needs ΔT1 and ΔT2, got %v", r.Bug, r.MeanUS)
		}
	}
	for _, r := range t2 {
		if len(r.MeanUS) < 1 || r.MeanUS[0] <= 0 {
			t.Errorf("%s: bad order-violation ΔT %v", r.Bug, r.MeanUS)
		}
	}
	text := FormatHypothesisTable("Table 2", t2)
	if !strings.Contains(text, "ΔT1=") || !strings.Contains(text, "µs") {
		t.Errorf("table format: %q", text)
	}
}

func TestHypothesisSummaryShape(t *testing.T) {
	sum := Hypothesis(3)
	if sum.Bugs != 54 {
		t.Fatalf("bugs = %d, want 54", sum.Bugs)
	}
	// The coarse interleaving hypothesis: every gap far above the
	// ~1ns granularity of fine-grained recording. Paper: min 91µs,
	// averages 154–3505µs, ratio ~5 orders of magnitude.
	if sum.MinUS < 60 {
		t.Errorf("min gap = %.1fµs, want >= ~91µs scale", sum.MinUS)
	}
	if sum.MinAvgUS < 80 || sum.MaxAvgUS > 5000 {
		t.Errorf("avg range = [%.0f, %.0f]µs, want within the paper's 154–3505µs scale",
			sum.MinAvgUS, sum.MaxAvgUS)
	}
	if sum.GranularityOrders < 4.5 {
		t.Errorf("granularity ratio = %.1f orders, want ~5", sum.GranularityOrders)
	}
}

func TestAccuracyEvalSet(t *testing.T) {
	rows := Accuracy(corpus.EvalSet())
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Correct || !r.Unique {
			t.Errorf("%s: correct=%v unique=%v", r.Bug, r.Correct, r.Unique)
		}
		if r.OrderingAcc != 100 {
			t.Errorf("%s: A_O = %.1f", r.Bug, r.OrderingAcc)
		}
		if r.FailuresNeeded != 1 {
			t.Errorf("%s: failures = %d", r.Bug, r.FailuresNeeded)
		}
	}
	text := FormatAccuracy(rows)
	if !strings.Contains(text, "accuracy: 11/11 (100%)") {
		t.Errorf("summary: %q", text)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, geoScope, geoRank := Fig7(corpus.EvalSet())
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The remaining set must shrink monotonically.
		for i := 1; i < len(r.Remaining); i++ {
			if r.Remaining[i] > r.Remaining[i-1] {
				t.Errorf("%s: stage %d grew the set: %v", r.Bug, i, r.Remaining)
			}
		}
		var total float64
		for _, c := range r.ContributionPct {
			if c < 0 {
				t.Errorf("%s: negative contribution %v", r.Bug, r.ContributionPct)
			}
			total += c
		}
		if total < 90 || total > 100.5 {
			t.Errorf("%s: contributions sum to %.1f%%", r.Bug, total)
		}
		// Trace processing must dominate (the paper's 87.9%).
		if r.ContributionPct[0] < 50 {
			t.Errorf("%s: trace processing contributes only %.1f%%", r.Bug, r.ContributionPct[0])
		}
	}
	if geoScope < 3 {
		t.Errorf("geo scope reduction = %.1fx, want substantial (paper: 9x)", geoScope)
	}
	if geoRank < 1 {
		t.Errorf("geo rank reduction = %.2fx", geoRank)
	}
	out := FormatFig7(rows, geoScope, geoRank)
	if !strings.Contains(out, "trace processing") {
		t.Errorf("format: %q", out)
	}
}

func TestFig8Shape(t *testing.T) {
	rows, avg := Fig8(2, 14, 2)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	var maxSys string
	var maxPct float64
	for _, r := range rows {
		if r.MeanPct <= 0 || r.MeanPct > 5 {
			t.Errorf("%s: overhead %.2f%% outside sane range", r.System, r.MeanPct)
		}
		if r.PeakPct < r.MeanPct {
			t.Errorf("%s: peak < mean", r.System)
		}
		if r.MeanPct > maxPct {
			maxPct, maxSys = r.MeanPct, r.System
		}
	}
	if avg < 0.3 || avg > 2.0 {
		t.Errorf("average overhead %.2f%%, want ~1%% (paper: 0.97%%)", avg)
	}
	if maxSys != "pbzip2" {
		t.Errorf("highest overhead = %s, want pbzip2 (compute-bound, branch-dense)", maxSys)
	}
	if !strings.Contains(FormatFig8(rows, avg), "average") {
		t.Error("format broken")
	}
}

func TestFig9Shape(t *testing.T) {
	rows := Fig9([]int{2, 8, 32}, 6)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	// Gist starts higher than Snorlax and degrades much faster.
	if first.GistPct <= first.SnorlaxPct {
		t.Errorf("at 2 threads gist %.2f%% <= snorlax %.2f%%", first.GistPct, first.SnorlaxPct)
	}
	if last.GistPct < 4*last.SnorlaxPct {
		t.Errorf("at 32 threads gist %.2f%% not ≫ snorlax %.2f%%", last.GistPct, last.SnorlaxPct)
	}
	if last.GistPct <= first.GistPct {
		t.Error("gist overhead did not grow with threads")
	}
	if last.SnorlaxPct > 6 {
		t.Errorf("snorlax overhead at 32 threads = %.2f%%, want small", last.SnorlaxPct)
	}
	if !strings.Contains(FormatFig9(rows), "threads") {
		t.Error("format broken")
	}
}

func TestTable4Shape(t *testing.T) {
	rows, geo := Table4(3)
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 systems", len(rows))
	}
	var mysqlSpeedup, agetSpeedup float64
	for _, r := range rows {
		if r.Speedup < 1 {
			t.Errorf("%s: hybrid slower than whole-program (%.2fx)", r.System, r.Speedup)
		}
		if r.HybridConstraints >= r.WholeConstraints {
			t.Errorf("%s: hybrid constraints %d not < whole %d",
				r.System, r.HybridConstraints, r.WholeConstraints)
		}
		switch r.System {
		case "mysql":
			mysqlSpeedup = r.Speedup
		case "aget":
			agetSpeedup = r.Speedup
		}
	}
	if geo < 2 {
		t.Errorf("geometric-mean speedup %.1fx, want > 2x (paper: 24x)", geo)
	}
	// The paper: bigger programs gain more from scope restriction.
	if mysqlSpeedup <= agetSpeedup {
		t.Errorf("mysql speedup %.1fx <= aget %.1fx; larger programs must gain more",
			mysqlSpeedup, agetSpeedup)
	}
	if !strings.Contains(FormatTable4(rows, geo), "geometric-mean") {
		t.Error("format broken")
	}
}

func TestLatencyShape(t *testing.T) {
	r := Latency()
	if len(r.PerBugRecurrences) == 0 {
		t.Fatal("no bugs measured")
	}
	if r.MeanRecurrences <= 1 {
		t.Errorf("mean recurrences = %.2f, Gist must need > 1", r.MeanRecurrences)
	}
	var chromium LatencyModelRow
	for _, row := range r.Model {
		if row.OpenBugs == 684 {
			chromium = row
		}
		if row.SpeedupOverGist < 1 {
			t.Errorf("speedup < 1 at %d bugs", row.OpenBugs)
		}
	}
	if chromium.OpenBugs != 684 {
		t.Fatal("no Chromium scenario")
	}
	if chromium.SpeedupOverGist < 500 {
		t.Errorf("chromium speedup = %.0fx, want hundreds-to-thousands (paper: 2523x)", chromium.SpeedupOverGist)
	}
	if !strings.Contains(FormatLatency(r), "Chromium") {
		t.Error("format broken")
	}
}

func TestTraceStatsShape(t *testing.T) {
	r := TraceStats("mysql")
	if r.Threads < 2 {
		t.Fatalf("threads = %d", r.Threads)
	}
	if r.ControlEventsPerThread < 1000 {
		t.Errorf("captured control events per thread = %d, want thousands (paper: ~6764)",
			r.ControlEventsPerThread)
	}
	if r.TimingPacketsPerThread == 0 {
		t.Fatal("no timing packets captured")
	}
	// Timing packets occupy a substantial share of the buffer (paper:
	// 49%).
	if r.TimingFraction < 0.15 || r.TimingFraction > 0.85 {
		t.Errorf("timing fraction = %.2f", r.TimingFraction)
	}
	if !strings.Contains(FormatTraceStats(r), "timing packets occupy") {
		t.Error("format broken")
	}
}
