// Package experiments regenerates every table and figure of the
// Snorlax paper's evaluation (§3 Tables 1–3; §6 Figures 7–9, Table 4,
// and the accuracy, latency and trace-statistics results). The
// cmd/experiments binary prints them; bench_test.go at the repository
// root exposes each as a testing.B benchmark.
//
// Absolute numbers differ from the paper's Skylake testbed — the
// substrate here is a simulator — but each experiment's *shape* (who
// wins, by what factor, how trends move) reproduces the paper;
// EXPERIMENTS.md records the comparison.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"snorlax/internal/corpus"
	"snorlax/internal/pattern"
)

// HypothesisRow is one bug's ΔT measurement (Tables 1–3).
type HypothesisRow struct {
	Bug    string
	System string
	Lang   string
	// MeanUS and StdUS are per gap: one entry for deadlocks and
	// order violations (ΔT), two for atomicity violations (ΔT1, ΔT2).
	MeanUS []float64
	StdUS  []float64
	MinNS  int64
}

// HypothesisTable measures the time elapsed between target events for
// every corpus bug of one kind, averaged over `runs` reproductions
// with per-run jitter (the paper uses 10 runs).
func HypothesisTable(kind pattern.Kind, runs int) []HypothesisRow {
	var rows []HypothesisRow
	for _, b := range corpus.ByKind(kind) {
		st := corpus.MeasureBug(b, runs)
		row := HypothesisRow{Bug: b.ID, System: b.System, Lang: b.Lang.String(), MinNS: st.Min}
		for i := range st.Mean {
			row.MeanUS = append(row.MeanUS, st.Mean[i]/1000)
			row.StdUS = append(row.StdUS, st.Std[i]/1000)
		}
		rows = append(rows, row)
	}
	return rows
}

// HypothesisSummary aggregates the full 54-bug study into the §3.3
// headline numbers.
type HypothesisSummary struct {
	Bugs int
	// MinUS is the shortest single inter-event gap observed (the
	// paper: 91 µs).
	MinUS float64
	// MinAvgUS/MaxAvgUS bound the per-bug averages (the paper:
	// 154–3505 µs).
	MinAvgUS, MaxAvgUS float64
	// GranularityOrders is log10(min gap / 1ns) — the "5 orders of
	// magnitude" coarser than fine-grained recording.
	GranularityOrders float64
}

// Hypothesis runs the full coarse-interleaving study.
func Hypothesis(runs int) HypothesisSummary {
	sum := HypothesisSummary{MinUS: math.Inf(1), MinAvgUS: math.Inf(1)}
	for _, kind := range []pattern.Kind{
		pattern.KindDeadlock, pattern.KindOrderViolation, pattern.KindAtomicityViolation,
	} {
		for _, row := range HypothesisTable(kind, runs) {
			sum.Bugs++
			if m := float64(row.MinNS) / 1000; m < sum.MinUS {
				sum.MinUS = m
			}
			for _, mean := range row.MeanUS {
				if mean < sum.MinAvgUS {
					sum.MinAvgUS = mean
				}
				if mean > sum.MaxAvgUS {
					sum.MaxAvgUS = mean
				}
			}
		}
	}
	// An L1 hit is ~1ns (4 cycles on Skylake): the ratio of the
	// shortest observed gap to that recording granularity.
	sum.GranularityOrders = math.Log10(sum.MinUS * 1000 / 1.0)
	return sum
}

// FormatHypothesisTable renders one table in the paper's layout: one
// row of averages and standard deviations per bug.
func FormatHypothesisTable(title string, rows []HypothesisRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-16s %-6s", r.Bug, r.Lang)
		for i := range r.MeanUS {
			fmt.Fprintf(&sb, "  ΔT%d=%8.1fµs σ=%7.1f", i+1, r.MeanUS[i], r.StdUS[i])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
