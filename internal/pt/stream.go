package pt

import (
	"bytes"
	"fmt"
)

// maxStreamPacket is the largest possible encoded packet: a PSB's
// 6-byte preamble plus two maximal uvarints. While more bytes than
// this remain unscanned, a truncated parse can only mean "the rest of
// the packet is in the next chunk", never "malformed".
const maxStreamPacket = len("\x02\x82\x02\x82\x02\x82") + 10 + 10

// StreamScanner incrementally walks a thread's packet stream while its
// ring bytes are still arriving, mirroring Decode's entry contract
// exactly: a wrapped ring is scanned forward to its first PSB sync
// point (no sync point in the whole ring is an error), and the first
// parsed packet must be a PSB.
//
// The scanner is informational: it counts packets and records the
// first malformed-stream error, but it never gates ingest — admission
// semantics must stay bit-identical to the legacy gob path, which
// accepts any byte blob and leaves malformed rings to the diagnosis
// stage. Callers re-Scan the same growing buffer after each chunk; the
// scanner resumes from its saved offset, so streaming adds no copies.
type StreamScanner struct {
	wrapped bool
	synced  bool
	first   bool
	pos     int
	packets int
	err     error
}

// Reset re-arms the scanner for a new thread stream.
func (s *StreamScanner) Reset(wrapped bool) {
	*s = StreamScanner{wrapped: wrapped, synced: !wrapped, first: true}
}

// Packets returns how many packets have been parsed so far.
func (s *StreamScanner) Packets() int { return s.packets }

// Err returns the first malformed-stream error, if any. A stream with
// an error stops being scanned but remains perfectly ingestible.
func (s *StreamScanner) Err() error { return s.err }

// Scan advances over data, the thread's full byte prefix received so
// far (each call passes a superset of the last). final marks that data
// is the complete ring: only then are trailing truncated packets and a
// missing sync point reportable as errors.
//
// The loop is a boundary walk, not a decode: ingest only needs packet
// counts and structural validation, so it skips payloads instead of
// materializing packets (the full parse in packetReader costs ~6x as
// much and is what Decode uses when the ring is actually diagnosed).
func (s *StreamScanner) Scan(data []byte, final bool) {
	if s.err != nil {
		return
	}
	if !s.synced {
		idx := bytes.Index(data[s.pos:], psbMagic)
		if idx < 0 {
			if final {
				s.err = fmt.Errorf("pt: wrapped trace has no sync point")
				return
			}
			// The magic may straddle the chunk boundary: keep its last
			// possible prefix in the unscanned window.
			if keep := len(data) - (len(psbMagic) - 1); keep > s.pos {
				s.pos = keep
			}
			return
		}
		s.pos += idx
		s.synced = true
	}
	pos, n := s.pos, len(data)
	// While pos < stop a whole packet is guaranteed decidable: either
	// it parses, or — with maxStreamPacket bytes on hand (or the final
	// ring end) — a truncated parse is genuinely malformed.
	stop := n
	if !final {
		stop = n - maxStreamPacket + 1
		if stop < 0 {
			stop = 0
		}
	}
	packets, first := s.packets, s.first
	for pos < stop {
		kind := PacketKind(data[pos])
		if first && kind != KindPSB {
			s.err = fmt.Errorf("pt: trace does not start with PSB (got %s)", kind)
			break
		}
		switch kind {
		case KindTNT:
			// TNT runs dominate real rings; consume the run in place.
			for {
				if pos+2 > n {
					s.err = errTruncated
				} else if data[pos+1] == 0 {
					s.err = fmt.Errorf("pt: empty TNT payload")
				}
				if s.err != nil {
					break
				}
				pos += 2
				packets++
				if pos >= stop || data[pos] != byte(KindTNT) {
					break
				}
			}
		case KindPSB:
			if pos+len(psbMagic) > n || !hasPrefix(data[pos:], psbMagic) {
				s.err = fmt.Errorf("pt: bad PSB preamble at %d", pos)
				break
			}
			next := skipUvarint(data, pos+len(psbMagic))
			if next >= 0 {
				next = skipUvarint(data, next)
			}
			if next < 0 {
				s.err = errTruncated
				break
			}
			pos = next
			packets++
		case KindTIP, KindCYC:
			// Single-byte argument fast path (small IP deltas and cycle
			// counts dominate); the general skip handles the rest.
			if pos+2 <= n && data[pos+1] < 0x80 {
				pos += 2
				packets++
				break
			}
			next := skipUvarint(data, pos+1)
			if next < 0 {
				s.err = errTruncated
				break
			}
			pos = next
			packets++
		case KindMTC:
			if pos+3 > n {
				s.err = errTruncated
				break
			}
			pos += 3
			packets++
		default:
			s.err = fmt.Errorf("pt: unknown packet 0x%02x at offset %d", byte(kind), pos)
		}
		if s.err != nil {
			break
		}
		first = false
	}
	s.pos, s.packets, s.first = pos, packets, first
}

// skipUvarint returns the index just past the uvarint starting at
// data[p], or -1 when it is truncated or overflows 64 bits — the same
// inputs binary.Uvarint rejects, without decoding the value.
func skipUvarint(data []byte, p int) int {
	n := len(data)
	for i := 0; i < 10; i++ {
		if p+i >= n {
			return -1
		}
		if b := data[p+i]; b < 0x80 {
			if i == 9 && b > 1 {
				return -1
			}
			return p + i + 1
		}
	}
	return -1
}

// SnapshotAssembler is the streaming ingest entry point for a
// snapshot arriving as declared thread sections and bounded chunks:
// the receiver announces each thread (tid, wrapped flag, exact byte
// size) and feeds ring bytes as they arrive off the wire. Bytes are
// appended straight into the thread's final Data slice — allocated
// once, at the declared size — and a StreamScanner walks the packets
// behind the append cursor, so the server is decoding pt packets
// while the snapshot is still in flight.
//
// Structural violations (bytes beyond the declared size, duplicate or
// unfinished threads) are protocol errors and fail assembly; malformed
// packet contents are not — they are counted via ScanErrors and left
// for the diagnosis stage, keeping admission bit-identical to the
// legacy codec.
type SnapshotAssembler struct {
	snap     *Snapshot
	sc       StreamScanner
	noScan   bool
	tid      int
	wrapped  bool
	data     []byte
	arena    []byte
	need     int
	inThread bool
	packets  int
	scanErrs int
}

// NewSnapshotAssembler starts assembling a snapshot captured at the
// given time, scanning packets inline as chunks are fed.
func NewSnapshotAssembler(time int64) *SnapshotAssembler {
	return &SnapshotAssembler{snap: &Snapshot{Threads: map[int]SnapshotThread{}, Time: time}}
}

// NewSnapshotAssemblerUnscanned assembles like NewSnapshotAssembler
// but skips the informational packet scan: declared sizes, thread
// structure and byte accounting are still enforced, only the pt walk
// behind the append cursor is elided. This is the lazy path for
// corroboration rings — snapshots that are hashed and deduplicated on
// arrival and only pt-decoded if their case actually diagnoses —
// where an eager scan of every upload would be redundant work. In
// this mode Packets and ScanErrors stay zero.
func NewSnapshotAssemblerUnscanned(time int64) *SnapshotAssembler {
	a := NewSnapshotAssembler(time)
	a.noScan = true
	return a
}

// UseArena supplies a shared backing buffer for the threads declared
// from here on: each thread's ring is carved out of buf until it runs
// out, after which threads allocate individually. A receiver that
// knows the message's total declared ring bytes up front turns
// hundreds of small per-thread allocations into one. The trade is
// lifetime coupling — any retained ring pins the whole arena — which
// is acceptable for fleet ingest, where a message's snapshots are
// either retained together (a case corroborating) or dropped together
// (duplicates, post-quota uploads).
func (a *SnapshotAssembler) UseArena(buf []byte) { a.arena = buf }

// StartThread declares the next thread section. The previous thread,
// if any, must have received exactly its declared bytes.
func (a *SnapshotAssembler) StartThread(tid int, wrapped bool, size int) error {
	if a.inThread {
		return fmt.Errorf("pt: thread %d declared before thread %d completed (%d bytes short)",
			tid, a.tid, a.need)
	}
	if _, dup := a.snap.Threads[tid]; dup {
		return fmt.Errorf("pt: thread %d declared twice", tid)
	}
	if size < 0 {
		return fmt.Errorf("pt: thread %d declares negative size", tid)
	}
	a.tid, a.wrapped = tid, wrapped
	if size <= len(a.arena) {
		// Carve the thread's ring out of the shared arena. The capped
		// capacity means a section can never grow into its neighbor.
		a.data = a.arena[:0:size]
		a.arena = a.arena[size:]
	} else {
		a.data = make([]byte, 0, size)
	}
	a.need = size
	a.sc.Reset(wrapped)
	a.inThread = true
	if size == 0 {
		a.finishThread()
	}
	return nil
}

// Feed appends one chunk of the current thread's ring bytes and scans
// the newly available packets.
func (a *SnapshotAssembler) Feed(p []byte) error {
	if !a.inThread {
		return fmt.Errorf("pt: %d ring bytes with no thread declared", len(p))
	}
	if len(p) > a.need {
		return fmt.Errorf("pt: thread %d received %d bytes beyond its declared size", a.tid, len(p)-a.need)
	}
	a.data = append(a.data, p...)
	a.need -= len(p)
	if !a.noScan {
		a.sc.Scan(a.data, a.need == 0)
	}
	if a.need == 0 {
		a.finishThread()
	}
	return nil
}

func (a *SnapshotAssembler) finishThread() {
	if a.need == 0 && len(a.data) == 0 {
		// Zero-size threads still get their entry (gob round-trips
		// empty Data as nil; match that for bit-identical reports).
		// They are never scanned — in either mode.
		a.snap.Threads[a.tid] = SnapshotThread{Wrapped: a.wrapped}
	} else {
		a.snap.Threads[a.tid] = SnapshotThread{Data: a.data, Wrapped: a.wrapped}
	}
	if !a.noScan {
		a.packets += a.sc.Packets()
		if a.sc.Err() != nil {
			a.scanErrs++
		}
	}
	a.data = nil
	a.inThread = false
}

// Packets returns how many pt packets streamed decoding has parsed.
func (a *SnapshotAssembler) Packets() int { return a.packets }

// ScanErrors returns how many thread streams were malformed. Purely
// observability: assembly still succeeds.
func (a *SnapshotAssembler) ScanErrors() int { return a.scanErrs }

// Finish returns the assembled snapshot; every declared thread must
// have received its full byte count.
func (a *SnapshotAssembler) Finish() (*Snapshot, error) {
	if a.inThread {
		return nil, fmt.Errorf("pt: thread %d incomplete: %d bytes short", a.tid, a.need)
	}
	return a.snap, nil
}
