package pt

import (
	"testing"

	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

// seedModule is the IR program whose genuine trace streams seed
// FuzzDecode, both here and in the checked-in corpus under
// testdata/fuzz (see corpus_test.go).
func seedModule(tb testing.TB) *ir.Module {
	tb.Helper()
	mod, err := ir.Parse(`
module seedprog
global total: int
func work(n: int) {
entry:
  %i = alloca int
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = lt %iv, %n
  condbr %c, body, done
body:
  %t = load @total
  store %t, @total
  %iv2 = add %iv, 1
  store %iv2, %i
  br loop
done:
  ret
}
func main() {
entry:
  %t1 = spawn work(10)
  call work(7)
  join %t1
  ret
}
`)
	if err != nil {
		tb.Fatal(err)
	}
	return mod
}

// seedSnapshot runs the seed program deterministically under the
// encoder and returns the captured snapshot.
func seedSnapshot(tb testing.TB) (*ir.Module, *Snapshot) {
	tb.Helper()
	mod := seedModule(tb)
	enc := NewEncoder(Config{})
	res := vm.Run(mod, vm.Config{Seed: 1, Sink: enc})
	if res.Failed() {
		tb.Fatal(res.Failure)
	}
	return mod, enc.Snapshot()
}

// FuzzDecode checks the decoder's total robustness: arbitrary bytes —
// including corrupted tails of genuine traces — must produce an error
// or a valid trace, never a panic or an out-of-range PC.
func FuzzDecode(f *testing.F) {
	// Seed with a genuine captured stream.
	mod, snap := seedSnapshot(f)
	for _, tid := range snap.Tids() {
		f.Add(snap.Threads[tid].Data, false)
	}
	f.Add([]byte{}, false)
	f.Add([]byte{0x02, 0x82, 0x02, 0x82, 0x02, 0x82, 0x01, 0x00}, true)
	f.Add(psbMagic, false)

	f.Fuzz(func(t *testing.T, data []byte, wrapped bool) {
		tt, err := Decode(mod, 0, SnapshotThread{Data: data, Wrapped: wrapped},
			Config{}, ir.NoPC, 0)
		if err != nil {
			return
		}
		for _, di := range tt.Instrs {
			if int(di.PC) < 0 || int(di.PC) >= mod.NumInstrs() {
				t.Fatalf("decoded PC %d out of module range", di.PC)
			}
			if di.Uncert < 0 {
				t.Fatalf("negative uncertainty %d", di.Uncert)
			}
		}
	})
}

// FuzzRing checks that arbitrary write sequences keep the ring's
// tail-of-stream invariant.
func FuzzRing(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(8))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, chunk []byte, capSeed uint8) {
		capacity := int(capSeed%64) + 1
		r := newRing(capacity)
		var all []byte
		// Split the chunk into a few writes.
		for i := 0; i < len(chunk); i += 5 {
			end := i + 5
			if end > len(chunk) {
				end = len(chunk)
			}
			r.write(chunk[i:end])
			all = append(all, chunk[i:end]...)
		}
		data, _ := r.snapshot()
		want := all
		if len(all) > capacity {
			want = all[len(all)-capacity:]
		}
		if string(data) != string(want) {
			t.Fatalf("ring tail mismatch: got %v want %v", data, want)
		}
	})
}
