package pt

import (
	"bytes"
	"fmt"

	"snorlax/internal/ir"
)

// DynInstr is one replayed dynamic instruction instance: a static PC
// plus a reconstructed coarse timestamp.
//
// Time is the decoder's best lower bound for when the instruction
// executed; Uncert is the width of the uncertainty window
// [Time, Time+Uncert]. The window spans from the last timing packet
// before the instruction to the first timing packet after it, so two
// dynamic instructions are only orderable when their windows do not
// overlap — this is exactly the partial order of §4.1 (step 3).
type DynInstr struct {
	PC     ir.PC
	Time   int64
	Uncert int64
}

// ThreadTrace is the decoded execution of one thread.
type ThreadTrace struct {
	Tid int
	// Instrs is every replayed instruction in execution order.
	Instrs []DynInstr
	// Wrapped reports that the ring buffer overwrote older history,
	// so Instrs covers only the tail of the thread's execution.
	Wrapped bool
	// StartTime is the timestamp of the sync point decoding began at.
	StartTime int64
}

// decodeSlackNS widens every timestamp's uncertainty window to absorb
// sub-resolution skew. It is far below the ≥91 µs inter-event gaps
// the coarse interleaving hypothesis establishes.
const decodeSlackNS = 1000

// Decode replays one thread's captured packet stream against the
// module's control-flow graph and returns the reconstructed dynamic
// instruction trace.
//
// If the ring wrapped, decoding starts at the first sync point in the
// surviving bytes. stopPC, when not NoPC, truncates the final
// straight-line walk at that instruction (the failure PC). endTime,
// when positive, is the capture time of the snapshot: instructions
// recorded after the stream's last timing packet have their windows
// extended to it.
func Decode(mod *ir.Module, tid int, snap SnapshotThread, cfg Config, stopPC ir.PC, endTime int64) (*ThreadTrace, error) {
	cfg = cfg.withDefaults()
	data := snap.Data
	if snap.Wrapped {
		idx := bytes.Index(data, psbMagic)
		if idx < 0 {
			return nil, fmt.Errorf("pt: wrapped trace for thread %d has no sync point", tid)
		}
		data = data[idx:]
	}
	r := &packetReader{data: data}
	first, ok, err := r.next()
	if err != nil {
		return nil, err
	}
	if !ok {
		return &ThreadTrace{Tid: tid, Wrapped: snap.Wrapped}, nil
	}
	if first.kind != KindPSB {
		return nil, fmt.Errorf("pt: trace for thread %d does not start with PSB (got %s)", tid, first.kind)
	}

	d := &decoder{
		mod:     mod,
		r:       r,
		cfg:     cfg,
		curTime: first.time,
		uncert:  decodeSlackNS,
		mtcBase: first.time,
		out:     &ThreadTrace{Tid: tid, Wrapped: snap.Wrapped, StartTime: first.time},
	}
	if err := d.replay(first.pc, stopPC); err != nil {
		return nil, err
	}
	if endTime > d.curTime {
		d.seal(endTime)
	}
	return d.out, nil
}

// DecodeSnapshot decodes every thread of a snapshot. stopPCs maps
// thread id to that thread's stop PC (typically only the failing
// thread has one).
func DecodeSnapshot(mod *ir.Module, snap *Snapshot, cfg Config, stopPCs map[int]ir.PC) ([]*ThreadTrace, error) {
	traces := make([]*ThreadTrace, 0, len(snap.Threads))
	for _, tid := range snap.Tids() {
		stop := ir.NoPC
		if pc, ok := stopPCs[tid]; ok {
			stop = pc
		}
		tt, err := Decode(mod, tid, snap.Threads[tid], cfg, stop, snap.Time)
		if err != nil {
			return nil, fmt.Errorf("thread %d: %w", tid, err)
		}
		traces = append(traces, tt)
	}
	return traces, nil
}

type decoder struct {
	mod *ir.Module
	r   *packetReader
	cfg Config

	curTime int64
	uncert  int64
	mtcBase int64

	tntBits  byte
	tntCount int

	// segStart is the index in out.Instrs of the first instruction
	// recorded since the last timing update; seal() closes their
	// windows when the clock next advances.
	segStart int

	out *ThreadTrace
}

// seal extends the uncertainty windows of the instructions recorded
// since the last timing update so they span to newTime: without a
// timing packet in between, all that is known is that they executed
// between the two clock readings.
func (d *decoder) seal(newTime int64) {
	for i := d.segStart; i < len(d.out.Instrs); i++ {
		if w := newTime - d.out.Instrs[i].Time + decodeSlackNS; w > d.out.Instrs[i].Uncert {
			d.out.Instrs[i].Uncert = w
		}
	}
	d.segStart = len(d.out.Instrs)
}

// advance moves the reconstructed clock to t (never backwards) and
// seals the open segment.
func (d *decoder) advance(t int64, uncert int64) {
	if t > d.curTime {
		d.seal(t)
		d.curTime = t
	}
	d.uncert = uncert
}

// applyTiming folds a timing packet into the reconstructed clock.
func (d *decoder) applyTiming(p packet) {
	switch p.kind {
	case KindMTC:
		gran := d.cfg.MTCGranularityNS
		curTicks := d.mtcBase / gran
		delta := int64(uint16(int64(p.coarse)-curTicks) & 0xffff)
		t := (curTicks + delta) * gran
		d.mtcBase = t
		d.advance(t, gran+decodeSlackNS)
	case KindCYC:
		d.advance(d.curTime+int64(p.units)*d.cfg.CYCResolutionNS,
			d.cfg.CYCResolutionNS+decodeSlackNS)
	case KindPSB:
		d.mtcBase = p.time
		d.advance(p.time, decodeSlackNS)
	}
}

// nextControl reads packets until a control packet (TNT or TIP)
// arrives, applying timing packets and sync points on the way. ok is
// false at end of stream.
func (d *decoder) nextControl() (packet, bool, error) {
	for {
		p, ok, err := d.r.next()
		if err != nil || !ok {
			return packet{}, false, err
		}
		switch p.kind {
		case KindMTC, KindCYC, KindPSB:
			d.applyTiming(p)
		case KindTNT, KindTIP:
			return p, true, nil
		}
	}
}

// syncAt eagerly consumes sync packets whose resume PC matches the
// current walk position (context-switch PGE syncs land mid-block,
// between control packets). Within a straight-line run between
// control packets each PC occurs at most once, so a matching sync can
// only belong to this instruction. Timing packets that precede a
// control packet are left for nextControl: applying them early would
// stamp pre-branch instructions with the branch's later time.
func (d *decoder) syncAt(pc ir.PC) {
	for {
		save := d.r.pos
		p, ok, err := d.r.next()
		if err != nil || !ok || p.kind != KindPSB || ir.PC(p.pc) != pc {
			d.r.pos = save
			return
		}
		d.applyTiming(p)
	}
}

// needBit returns the next TNT bit.
func (d *decoder) needBit() (bool, bool, error) {
	if d.tntCount == 0 {
		p, ok, err := d.nextControl()
		if err != nil || !ok {
			return false, false, err
		}
		if p.kind != KindTNT {
			return false, false, fmt.Errorf("pt: wanted TNT, got %s", p.kind)
		}
		d.tntBits, d.tntCount = p.bits, p.n
	}
	bit := d.tntBits&1 == 1
	d.tntBits >>= 1
	d.tntCount--
	return bit, true, nil
}

// needTIP returns the next TIP target.
func (d *decoder) needTIP() (ir.PC, bool, error) {
	if d.tntCount != 0 {
		return ir.NoPC, false, fmt.Errorf("pt: pending TNT bits at TIP boundary")
	}
	p, ok, err := d.nextControl()
	if err != nil || !ok {
		return ir.NoPC, false, err
	}
	if p.kind != KindTIP {
		return ir.NoPC, false, fmt.Errorf("pt: wanted TIP, got %s", p.kind)
	}
	return ir.PC(p.pc), true, nil
}

// exhausted reports whether no control packets or pending bits
// remain; trailing timing/sync packets do not count, since they drive
// no further control flow.
func (d *decoder) exhausted() bool {
	if d.tntCount != 0 {
		return false
	}
	peek := packetReader{data: d.r.data, pos: d.r.pos}
	for {
		p, ok, err := peek.next()
		if err != nil || !ok {
			return true
		}
		if p.kind == KindTNT || p.kind == KindTIP {
			return false
		}
	}
}

// locate converts a PC into its (block, index) position.
func (d *decoder) locate(pc ir.PC) (*ir.Block, int, error) {
	if int(pc) < 0 || int(pc) >= d.mod.NumInstrs() {
		return nil, 0, fmt.Errorf("pt: decoded PC %d out of range", pc)
	}
	in := d.mod.InstrAt(pc)
	b := in.Block()
	return b, int(pc - b.FirstPC()), nil
}

// replay walks the CFG from startPC, consuming control packets at
// data-dependent transfers and recording every instruction executed.
func (d *decoder) replay(startPC int64, stopPC ir.PC) error {
	block, idx, err := d.locate(ir.PC(startPC))
	if err != nil {
		return err
	}
	for {
		in := block.Instrs[idx]
		pc := in.PC()
		d.syncAt(pc)
		d.out.Instrs = append(d.out.Instrs, DynInstr{PC: pc, Time: d.curTime, Uncert: d.uncert})
		if pc == stopPC && d.exhausted() {
			return nil
		}
		switch i := in.(type) {
		case *ir.CondBrInstr:
			taken, ok, err := d.needBit()
			if err != nil || !ok {
				return err
			}
			target := i.Else
			if taken {
				target = i.Then
			}
			block, idx = target, 0
		case *ir.BrInstr:
			block, idx = i.Target, 0
		case *ir.CallInstr:
			if callee := i.StaticCallee(); callee != nil {
				block, idx = callee.Entry(), 0
			} else {
				to, ok, err := d.needTIP()
				if err != nil || !ok {
					return err
				}
				block, idx, err = d.locate(to)
				if err != nil {
					return err
				}
			}
		case *ir.RetInstr:
			to, ok, err := d.needTIP()
			if err != nil || !ok {
				// Thread exit (or truncated stream): done.
				return err
			}
			block, idx, err = d.locate(to)
			if err != nil {
				return err
			}
		default:
			idx++
			if idx >= len(block.Instrs) {
				return fmt.Errorf("pt: walked past end of block %s", block)
			}
		}
	}
}
