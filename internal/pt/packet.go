// Package pt simulates a hardware control-flow tracer with timing
// information — the Intel Processor Trace analogue the Snorlax paper
// relies on (§5).
//
// The simulation is faithful to the properties Lazy Diagnosis
// depends on:
//
//   - per-thread packet streams held in bounded overwriting ring
//     buffers (64 KB by default), so history is limited and decoding
//     must recover from a wrapped buffer;
//   - control flow is recorded compactly: conditional branches cost
//     one TNT bit, unconditional direct transfers cost nothing (the
//     decoder re-derives them from the program), indirect transfers
//     and returns cost a TIP packet carrying the target PC;
//   - timing is coarse: MTC packets carry a wrapping coarse clock and
//     CYC packets carry bounded-resolution deltas, so decoded
//     timestamps have an uncertainty window and yield only a partial
//     order of instructions (§4.1, step 3);
//   - periodic PSB sync packets carry a full PC and timestamp so the
//     decoder can start from the middle of a stream.
//
// Tracing overhead emerges from a bandwidth cost model (picoseconds
// per trace byte plus per-thread buffer-switch costs) rather than
// being asserted, which is what the Figure 8/9 experiments measure.
package pt

import (
	"encoding/binary"
	"fmt"
)

// PacketKind identifies a trace packet type.
type PacketKind byte

// The packet kinds. Values double as the on-wire header byte.
const (
	// KindTNT packs up to 7 taken/not-taken bits.
	KindTNT PacketKind = 0x01
	// KindPSB is a synchronization point with a full PC and time.
	KindPSB PacketKind = 0x02
	// KindTIP carries the target PC of an indirect transfer.
	KindTIP PacketKind = 0x03
	// KindMTC carries the low 16 bits of the coarse wall clock.
	KindMTC PacketKind = 0x04
	// KindCYC carries a time delta in CYC resolution units.
	KindCYC PacketKind = 0x05
)

func (k PacketKind) String() string {
	switch k {
	case KindTNT:
		return "TNT"
	case KindPSB:
		return "PSB"
	case KindTIP:
		return "TIP"
	case KindMTC:
		return "MTC"
	case KindCYC:
		return "CYC"
	}
	return fmt.Sprintf("packet(0x%02x)", byte(k))
}

// psbMagic is the PSB preamble the decoder scans for when a ring
// buffer has wrapped; it is long enough that false positives inside
// other packets' payloads are negligible.
var psbMagic = []byte{byte(KindPSB), 0x82, byte(KindPSB), 0x82, byte(KindPSB), 0x82}

// appendTNT encodes n (1..7) branch bits. The payload byte is
// (1<<n)|bits: the leading one marks how many bits are valid, exactly
// like Intel PT's short TNT.
func appendTNT(buf []byte, bits byte, n int) []byte {
	if n < 1 || n > 7 {
		panic(fmt.Sprintf("pt: TNT with %d bits", n))
	}
	payload := byte(1<<uint(n)) | (bits & (1<<uint(n) - 1))
	return append(buf, byte(KindTNT), payload)
}

// appendPSB encodes a sync packet with a full PC and timestamp.
func appendPSB(buf []byte, pc int64, time int64) []byte {
	buf = append(buf, psbMagic...)
	buf = binary.AppendUvarint(buf, uint64(pc+1)) // +1 so NoPC (-1) encodes
	buf = binary.AppendUvarint(buf, uint64(time))
	return buf
}

// appendTIP encodes an indirect-transfer target.
func appendTIP(buf []byte, pc int64) []byte {
	buf = append(buf, byte(KindTIP))
	return binary.AppendUvarint(buf, uint64(pc+1))
}

// appendMTC encodes the low 16 bits of the coarse clock.
func appendMTC(buf []byte, coarse uint16) []byte {
	return append(buf, byte(KindMTC), byte(coarse), byte(coarse>>8))
}

// appendCYC encodes a delta in resolution units.
func appendCYC(buf []byte, units uint64) []byte {
	buf = append(buf, byte(KindCYC))
	return binary.AppendUvarint(buf, units)
}

// packetReader iterates packets in a linear byte stream.
type packetReader struct {
	data []byte
	pos  int
}

// packet is one decoded packet.
type packet struct {
	kind PacketKind
	// TNT fields.
	bits byte
	n    int
	// PSB/TIP fields.
	pc int64
	// PSB/MTC/CYC fields.
	time   int64 // PSB full time
	coarse uint16
	units  uint64
}

var errTruncated = fmt.Errorf("pt: truncated packet")

// next returns the next packet. ok is false at end of stream; err is
// non-nil for malformed/truncated data.
func (r *packetReader) next() (p packet, ok bool, err error) {
	if r.pos >= len(r.data) {
		return packet{}, false, nil
	}
	kind := PacketKind(r.data[r.pos])
	switch kind {
	case KindTNT:
		if r.pos+2 > len(r.data) {
			return packet{}, false, errTruncated
		}
		payload := r.data[r.pos+1]
		if payload == 0 {
			return packet{}, false, fmt.Errorf("pt: empty TNT payload")
		}
		n := 7
		for payload>>uint(n) == 0 {
			n--
		}
		r.pos += 2
		return packet{kind: KindTNT, bits: payload & (1<<uint(n) - 1), n: n}, true, nil
	case KindPSB:
		if r.pos+len(psbMagic) > len(r.data) || !hasPrefix(r.data[r.pos:], psbMagic) {
			return packet{}, false, fmt.Errorf("pt: bad PSB preamble at %d", r.pos)
		}
		r.pos += len(psbMagic)
		pc, n := binary.Uvarint(r.data[r.pos:])
		if n <= 0 {
			return packet{}, false, errTruncated
		}
		r.pos += n
		t, n := binary.Uvarint(r.data[r.pos:])
		if n <= 0 {
			return packet{}, false, errTruncated
		}
		r.pos += n
		return packet{kind: KindPSB, pc: int64(pc) - 1, time: int64(t)}, true, nil
	case KindTIP:
		r.pos++
		pc, n := binary.Uvarint(r.data[r.pos:])
		if n <= 0 {
			return packet{}, false, errTruncated
		}
		r.pos += n
		return packet{kind: KindTIP, pc: int64(pc) - 1}, true, nil
	case KindMTC:
		if r.pos+3 > len(r.data) {
			return packet{}, false, errTruncated
		}
		c := uint16(r.data[r.pos+1]) | uint16(r.data[r.pos+2])<<8
		r.pos += 3
		return packet{kind: KindMTC, coarse: c}, true, nil
	case KindCYC:
		r.pos++
		u, n := binary.Uvarint(r.data[r.pos:])
		if n <= 0 {
			return packet{}, false, errTruncated
		}
		r.pos += n
		return packet{kind: KindCYC, units: u}, true, nil
	default:
		return packet{}, false, fmt.Errorf("pt: unknown packet 0x%02x at offset %d", byte(kind), r.pos)
	}
}

func hasPrefix(b, prefix []byte) bool {
	if len(b) < len(prefix) {
		return false
	}
	for i := range prefix {
		if b[i] != prefix[i] {
			return false
		}
	}
	return true
}
