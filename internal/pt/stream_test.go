package pt

import (
	"bytes"
	"reflect"
	"testing"

	"snorlax/internal/vm"
)

// refScanPackets is the non-streaming reference: the scanner's entry
// contract applied to a complete ring in one pass.
func refScanPackets(t *testing.T, data []byte, wrapped bool) int {
	t.Helper()
	pos := 0
	if wrapped {
		idx := bytes.Index(data, psbMagic)
		if idx < 0 {
			t.Fatalf("reference scan: wrapped ring has no sync point")
		}
		pos = idx
	}
	r := packetReader{data: data, pos: pos}
	n := 0
	for {
		p, ok, err := r.next()
		if err != nil {
			t.Fatalf("reference scan: %v", err)
		}
		if !ok {
			return n
		}
		if n == 0 && p.kind != KindPSB {
			t.Fatalf("reference scan: first packet is %s", p.kind)
		}
		n++
	}
}

// feedInChunks drives a StreamScanner over data the way the streaming
// ingest path does: a growing prefix, re-scanned after each chunk.
func feedInChunks(sc *StreamScanner, data []byte, chunk int) {
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		sc.Scan(data[:end], end == len(data))
	}
	if len(data) == 0 {
		sc.Scan(data, true)
	}
}

// realRings captures ring streams from actual traced executions, both
// unwrapped (default buffer) and wrapped (tiny buffer).
func realRings(t *testing.T) map[string]SnapshotThread {
	t.Helper()
	m := buildBusyModule(t)
	rings := map[string]SnapshotThread{}
	for _, cfg := range []Config{{}, {BufBytes: 256}} {
		enc := NewEncoder(cfg)
		res := vm.Run(m, vm.Config{Seed: 3, Sink: enc})
		if res.Failed() {
			t.Fatal(res.Failure)
		}
		for tid, st := range enc.Snapshot().Threads {
			key := "plain"
			if st.Wrapped {
				key = "wrapped"
			}
			rings[key+string(rune('0'+tid))] = st
		}
	}
	return rings
}

// TestStreamScannerMatchesFullScan holds the incremental scanner to
// the reference single-pass scan at every chunking granularity,
// including byte-at-a-time delivery across packet boundaries.
func TestStreamScannerMatchesFullScan(t *testing.T) {
	for name, st := range realRings(t) {
		want := refScanPackets(t, st.Data, st.Wrapped)
		for _, chunk := range []int{1, 7, maxStreamPacket, 64, 1024, 1 << 20} {
			var sc StreamScanner
			sc.Reset(st.Wrapped)
			feedInChunks(&sc, st.Data, chunk)
			if sc.Err() != nil {
				t.Fatalf("%s chunk=%d: scan error on a well-formed ring: %v", name, chunk, sc.Err())
			}
			if sc.Packets() != want {
				t.Fatalf("%s chunk=%d: scanned %d packets, reference %d", name, chunk, sc.Packets(), want)
			}
		}
	}
}

func TestStreamScannerMalformed(t *testing.T) {
	var sc StreamScanner
	// First packet must be a PSB on an unwrapped stream.
	sc.Reset(false)
	sc.Scan([]byte{0x00, 0x00, 0x00}, true)
	if sc.Err() == nil {
		t.Fatalf("non-PSB start accepted")
	}
	// A wrapped ring with no sync point anywhere is only reportable
	// once the ring is complete.
	sc.Reset(true)
	junk := bytes.Repeat([]byte{0xEE}, 500)
	sc.Scan(junk[:100], false)
	if sc.Err() != nil {
		t.Fatalf("missing sync point reported before the ring completed: %v", sc.Err())
	}
	sc.Scan(junk, true)
	if sc.Err() == nil {
		t.Fatalf("wrapped ring without a sync point accepted")
	}
	// A sync point straddling a chunk boundary must still be found.
	ring := append(bytes.Repeat([]byte{0xEE}, 37), appendPSB(nil, 7, 1000)...)
	for cut := 1; cut < len(ring); cut++ {
		sc.Reset(true)
		sc.Scan(ring[:cut], false)
		sc.Scan(ring, true)
		if sc.Err() != nil {
			t.Fatalf("cut=%d: straddled sync point missed: %v", cut, sc.Err())
		}
		if sc.Packets() != 1 {
			t.Fatalf("cut=%d: %d packets after sync, want 1 (the PSB)", cut, sc.Packets())
		}
	}
}

// TestSnapshotAssembler rebuilds real snapshots chunk by chunk and
// requires the result to be deep-equal to the encoder's original —
// the property that makes streamed ingest invisible to diagnosis.
func TestSnapshotAssembler(t *testing.T) {
	m := buildBusyModule(t)
	for _, cfg := range []Config{{}, {BufBytes: 256}} {
		enc := NewEncoder(cfg)
		res := vm.Run(m, vm.Config{Seed: 5, Sink: enc})
		if res.Failed() {
			t.Fatal(res.Failure)
		}
		want := enc.Snapshot()
		for _, chunk := range []int{1, 64, 4096} {
			a := NewSnapshotAssembler(want.Time)
			for _, tid := range want.Tids() {
				st := want.Threads[tid]
				if err := a.StartThread(tid, st.Wrapped, len(st.Data)); err != nil {
					t.Fatal(err)
				}
				for off := 0; off < len(st.Data); off += chunk {
					end := off + chunk
					if end > len(st.Data) {
						end = len(st.Data)
					}
					if err := a.Feed(st.Data[off:end]); err != nil {
						t.Fatal(err)
					}
				}
			}
			got, err := a.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("chunk=%d: assembled snapshot differs from the original", chunk)
			}
			if a.ScanErrors() != 0 {
				t.Fatalf("chunk=%d: %d scan errors on well-formed rings", chunk, a.ScanErrors())
			}
			if a.Packets() == 0 {
				t.Fatalf("chunk=%d: streamed decode parsed no packets", chunk)
			}
		}
	}
}

func TestSnapshotAssemblerZeroSizeThread(t *testing.T) {
	a := NewSnapshotAssembler(42)
	if err := a.StartThread(0, true, 0); err != nil {
		t.Fatal(err)
	}
	snap, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	st, ok := snap.Threads[0]
	if !ok || st.Data != nil || !st.Wrapped {
		t.Fatalf("zero-size thread = %+v, ok=%v; want nil Data, Wrapped, present", st, ok)
	}
}

func TestSnapshotAssemblerProtocolErrors(t *testing.T) {
	a := NewSnapshotAssembler(0)
	if err := a.Feed([]byte{1}); err == nil {
		t.Fatalf("bytes before any thread accepted")
	}
	if err := a.StartThread(1, false, 4); err != nil {
		t.Fatal(err)
	}
	if err := a.StartThread(2, false, 4); err == nil {
		t.Fatalf("thread declared while the previous one was incomplete")
	}
	if err := a.Feed(make([]byte, 5)); err == nil {
		t.Fatalf("bytes beyond the declared size accepted")
	}
	if _, err := a.Finish(); err == nil {
		t.Fatalf("Finish with an incomplete thread succeeded")
	}
	if err := a.Feed(make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if err := a.StartThread(1, false, 1); err == nil {
		t.Fatalf("duplicate thread accepted")
	}
	b := NewSnapshotAssembler(0)
	if err := b.StartThread(3, false, -1); err == nil {
		t.Fatalf("negative declared size accepted")
	}
}

// TestSnapshotAssemblerArenaAndUnscanned pins the two ingest
// variants against the plain assembler: an arena-backed assembly must
// produce a deep-equal snapshot whose thread sections cannot alias
// (capped capacities), and the unscanned mode must produce the same
// snapshot while doing no packet accounting yet still enforcing the
// structural protocol.
func TestSnapshotAssemblerArenaAndUnscanned(t *testing.T) {
	m := buildBusyModule(t)
	enc := NewEncoder(Config{})
	res := vm.Run(m, vm.Config{Seed: 5, Sink: enc})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	want := enc.Snapshot()
	var total int
	for _, st := range want.Threads {
		total += len(st.Data)
	}

	assemble := func(a *SnapshotAssembler) *Snapshot {
		t.Helper()
		for _, tid := range want.Tids() {
			st := want.Threads[tid]
			if err := a.StartThread(tid, st.Wrapped, len(st.Data)); err != nil {
				t.Fatal(err)
			}
			if err := a.Feed(st.Data); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}

	arena := make([]byte, total)
	a := NewSnapshotAssembler(want.Time)
	a.UseArena(arena)
	got := assemble(a)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("arena-backed snapshot differs from the original")
	}
	if a.Packets() == 0 || a.ScanErrors() != 0 {
		t.Fatalf("arena assembly: packets=%d scanErrs=%d", a.Packets(), a.ScanErrors())
	}
	// Carved sections must have capped capacity: growing one thread's
	// ring cannot reach into its neighbor's bytes.
	for tid, st := range got.Threads {
		if len(st.Data) > 0 && cap(st.Data) != len(st.Data) {
			t.Fatalf("thread %d: cap %d != len %d (section can grow into the arena)",
				tid, cap(st.Data), len(st.Data))
		}
	}

	// An arena smaller than the declared bytes falls back to
	// per-thread allocation past the point it runs out.
	short := NewSnapshotAssembler(want.Time)
	short.UseArena(make([]byte, 1))
	if got := assemble(short); !reflect.DeepEqual(got, want) {
		t.Fatalf("short-arena snapshot differs from the original")
	}

	u := NewSnapshotAssemblerUnscanned(want.Time)
	got = assemble(u)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unscanned snapshot differs from the original")
	}
	if u.Packets() != 0 || u.ScanErrors() != 0 {
		t.Fatalf("unscanned assembly did packet accounting: packets=%d scanErrs=%d",
			u.Packets(), u.ScanErrors())
	}
	// Structure is still enforced without the scan.
	v := NewSnapshotAssemblerUnscanned(0)
	if err := v.StartThread(1, false, 2); err != nil {
		t.Fatal(err)
	}
	if err := v.Feed(make([]byte, 3)); err == nil {
		t.Fatalf("unscanned mode accepted bytes beyond the declared size")
	}
}
