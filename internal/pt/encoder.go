package pt

import (
	"sort"

	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

// Config controls the simulated tracer.
type Config struct {
	// BufBytes is the per-thread ring capacity (default 64 KB, the
	// paper's configuration).
	BufBytes int
	// MTCGranularityNS is the coarse clock quantum carried by MTC
	// packets (default 1024 ns).
	MTCGranularityNS int64
	// EnableCYC enables fine-grained CYC delta packets before each
	// control packet (the paper's "highest possible frequency"
	// configuration). Default on; set DisableCYC to turn off.
	DisableCYC bool
	// CYCResolutionNS is the resolution of CYC deltas (default 64 ns):
	// decoded timestamps carry this uncertainty.
	CYCResolutionNS int64
	// PSBPeriodBytes is the number of trace bytes between PSB sync
	// points (default 4096). A wrapped ring buffer smaller than this
	// period may retain no sync point and become undecodable, so
	// keep it at most a quarter of BufBytes.
	PSBPeriodBytes int
	// CostPerBytePS is the virtual cost of writing one trace byte, in
	// picoseconds (default 720). This models the memory bandwidth the
	// hardware tracer consumes and is the source of the ~1% overhead
	// of Figure 8.
	CostPerBytePS int64
	// SwitchPerThreadPS is the extra per-context-switch cost in
	// picoseconds per live thread (default 8000), modeling per-thread
	// buffer management in the driver — the source of the mild
	// overhead growth of Figure 9.
	SwitchPerThreadPS int64
}

func (c Config) withDefaults() Config {
	if c.BufBytes == 0 {
		c.BufBytes = 64 * 1024
	}
	if c.MTCGranularityNS == 0 {
		c.MTCGranularityNS = 1024
	}
	if c.CYCResolutionNS == 0 {
		c.CYCResolutionNS = 64
	}
	if c.PSBPeriodBytes == 0 {
		c.PSBPeriodBytes = 4096
	}
	if c.PSBPeriodBytes > c.BufBytes/4 && c.BufBytes >= 64 {
		c.PSBPeriodBytes = c.BufBytes / 4
	}
	if c.CostPerBytePS == 0 {
		c.CostPerBytePS = 720
	}
	if c.SwitchPerThreadPS == 0 {
		c.SwitchPerThreadPS = 8000
	}
	return c
}

// Stats aggregates what the tracer wrote; the §5 trace statistics
// experiment reports these.
type Stats struct {
	Packets       map[PacketKind]int64
	Bytes         int64
	TimingBytes   int64
	ControlEvents int64
}

// TimingFraction returns the share of buffer bytes used by timing
// packets (the paper reports ≈49%).
func (s Stats) TimingFraction() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(s.TimingBytes) / float64(s.Bytes)
}

// Encoder is the simulated tracer. It implements vm.TraceSink; attach
// it to a vm.Config to trace an execution.
type Encoder struct {
	cfg     Config
	threads map[int]*threadEnc
	stats   Stats
	// costAccumPS accumulates sub-nanosecond costs.
	costAccumPS int64
	scratch     []byte
}

type threadEnc struct {
	ring        *ring
	tntBits     byte
	tntCount    int
	lastCoarse  uint16
	haveCoarse  bool
	lastCycTime int64
	bytesSince  int
	lastPC      ir.PC
	lastTime    int64
}

// NewEncoder returns an Encoder with the given configuration.
func NewEncoder(cfg Config) *Encoder {
	return &Encoder{
		cfg:     cfg.withDefaults(),
		threads: make(map[int]*threadEnc),
		stats:   Stats{Packets: make(map[PacketKind]int64)},
	}
}

func (e *Encoder) thread(tid int) *threadEnc {
	t, ok := e.threads[tid]
	if !ok {
		t = &threadEnc{ring: newRing(e.cfg.BufBytes)}
		e.threads[tid] = t
	}
	return t
}

// Event implements vm.TraceSink.
func (e *Encoder) Event(ev vm.TraceEvent) int64 {
	switch ev.Kind {
	case vm.EvThreadStart:
		t := e.thread(ev.Tid)
		e.emitPSB(t, int64(ev.To), ev.Time)
	case vm.EvCondBranch:
		t := e.thread(ev.Tid)
		e.control(t, ev)
		bit := byte(0)
		if ev.Taken {
			bit = 1
		}
		t.tntBits |= bit << uint(t.tntCount)
		t.tntCount++
		if t.tntCount == 7 {
			e.flushTNT(t)
		}
	case vm.EvUncondBranch, vm.EvCall:
		// Statically inferable: hardware emits nothing.
		e.thread(ev.Tid).lastPC = ev.From
		e.stats.ControlEvents++
	case vm.EvIndirectCall, vm.EvRet:
		t := e.thread(ev.Tid)
		e.control(t, ev)
		e.flushTNT(t)
		e.write(t, KindTIP, appendTIP(e.scratch[:0], int64(ev.To)))
	case vm.EvThreadEnd:
		// Close the thread's final timing window: the tracer observes
		// the exit (PGD), so instructions after the last control
		// packet are bounded by the exit time, not the snapshot time.
		t := e.thread(ev.Tid)
		e.flushTNT(t)
		e.emitPSB(t, int64(ev.From), ev.Time)
	case vm.EvContextSwitch, vm.EvPause:
		// Resume and pause points: sync the thread's stream with a
		// full PC + timestamp (the PGE/PGD analogues) so the decoder
		// can re-anchor its clock across packet-free straight-line
		// code and close the window of trailing instructions.
		// Per-thread buffer management cost grows with the number of
		// live threads.
		t := e.thread(ev.Tid)
		e.flushTNT(t)
		e.emitPSB(t, int64(ev.To), ev.Time)
		if ev.Kind == vm.EvContextSwitch && ev.Switched {
			return e.chargePS(e.cfg.SwitchPerThreadPS * int64(ev.Live))
		}
	}
	return e.chargePS(0)
}

// control emits timing packets for a control event and accounts for
// PSB periodicity.
func (e *Encoder) control(t *threadEnc, ev vm.TraceEvent) {
	e.stats.ControlEvents++
	t.lastPC = ev.From
	t.lastTime = ev.Time
	coarse := uint16(uint64(ev.Time/e.cfg.MTCGranularityNS) & 0xffff)
	if !t.haveCoarse || coarse != t.lastCoarse {
		e.write(t, KindMTC, appendMTC(e.scratch[:0], coarse))
		t.lastCoarse = coarse
		t.haveCoarse = true
	}
	if !e.cfg.DisableCYC {
		delta := (ev.Time - t.lastCycTime) / e.cfg.CYCResolutionNS
		if delta > 0 {
			e.write(t, KindCYC, appendCYC(e.scratch[:0], uint64(delta)))
			t.lastCycTime += delta * e.cfg.CYCResolutionNS
		}
	}
	if t.bytesSince >= e.cfg.PSBPeriodBytes {
		e.flushTNT(t)
		e.emitPSB(t, int64(ev.From), ev.Time)
	}
}

func (e *Encoder) emitPSB(t *threadEnc, pc int64, time int64) {
	e.write(t, KindPSB, appendPSB(e.scratch[:0], pc, time))
	t.bytesSince = 0
	t.lastCycTime = time
	t.haveCoarse = false
}

func (e *Encoder) flushTNT(t *threadEnc) {
	if t.tntCount == 0 {
		return
	}
	e.write(t, KindTNT, appendTNT(e.scratch[:0], t.tntBits, t.tntCount))
	t.tntBits, t.tntCount = 0, 0
}

func (e *Encoder) write(t *threadEnc, kind PacketKind, buf []byte) {
	t.ring.write(buf)
	t.bytesSince += len(buf)
	e.scratch = buf[:0]
	e.stats.Packets[kind]++
	e.stats.Bytes += int64(len(buf))
	if kind == KindMTC || kind == KindCYC {
		e.stats.TimingBytes += int64(len(buf))
	}
	e.costAccumPS += int64(len(buf)) * e.cfg.CostPerBytePS
}

// chargePS converts accumulated picosecond costs into whole
// nanoseconds to charge the VM.
func (e *Encoder) chargePS(extra int64) int64 {
	e.costAccumPS += extra
	ns := e.costAccumPS / 1000
	e.costAccumPS -= ns * 1000
	return ns
}

// Stats returns encoding statistics so far.
func (e *Encoder) Stats() Stats { return e.stats }

// Snapshot captures the current ring contents of every traced thread,
// oldest-first — what the driver saves when a failure occurs or a
// trigger PC executes.
type Snapshot struct {
	// Threads maps thread id to its linearized trace bytes.
	Threads map[int]SnapshotThread
	// Time is the virtual time at which the snapshot was taken, if
	// recorded by the driver.
	Time int64
}

// SnapshotThread is one thread's captured trace.
type SnapshotThread struct {
	Data    []byte
	Wrapped bool
}

// Tids returns the snapshot's thread ids in ascending order.
func (s *Snapshot) Tids() []int {
	tids := make([]int, 0, len(s.Threads))
	for tid := range s.Threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	return tids
}

// Snapshot captures all per-thread rings. Pending TNT bits are
// flushed first so the captured streams are self-contained.
func (e *Encoder) Snapshot() *Snapshot {
	out := &Snapshot{Threads: make(map[int]SnapshotThread, len(e.threads))}
	for tid, t := range e.threads {
		e.flushTNT(t)
		data, wrapped := t.ring.snapshot()
		out.Threads[tid] = SnapshotThread{Data: data, Wrapped: wrapped}
	}
	return out
}
