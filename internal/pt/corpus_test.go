package pt

// Checked-in seed corpus for the fuzz targets. The files under
// testdata/fuzz/<Target>/ run on every plain `go test` (the fuzzing
// engine replays seed corpora even without -fuzz), so the decoder's
// historical crashers and the genuine encoder streams are pinned as
// regressions. TestFuzzCorpusReplay additionally pushes every entry
// through the full encoder→ring→decoder path.
//
// Regenerate after an intentional encoder format change with:
//
//	go test ./internal/pt/ -run TestSeedCorpus -regen-corpus

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"snorlax/internal/ir"
)

var regenCorpus = flag.Bool("regen-corpus", false,
	"rewrite the checked-in fuzz seed corpus under testdata/fuzz")

const corpusHeader = "go test fuzz v1"

// decodeCorpusEntry is one FuzzDecode seed: a candidate thread stream
// plus the ring-wrapped flag.
type decodeCorpusEntry struct {
	name    string
	data    []byte
	wrapped bool
}

// decodeCorpusEntries builds the canonical seed set: every genuine
// thread stream from the deterministic seed program, plus the
// handcrafted edge inputs FuzzDecode started from.
func decodeCorpusEntries(tb testing.TB) []decodeCorpusEntry {
	_, snap := seedSnapshot(tb)
	var entries []decodeCorpusEntry
	for _, tid := range snap.Tids() {
		th := snap.Threads[tid]
		entries = append(entries, decodeCorpusEntry{
			name: fmt.Sprintf("seed-thread-%d", tid), data: th.Data, wrapped: th.Wrapped})
	}
	entries = append(entries,
		decodeCorpusEntry{name: "seed-empty"},
		decodeCorpusEntry{name: "seed-truncated-psb-wrapped",
			data: []byte{0x02, 0x82, 0x02, 0x82, 0x02, 0x82, 0x01, 0x00}, wrapped: true},
		decodeCorpusEntry{name: "seed-psb-only", data: psbMagic},
	)
	return entries
}

func corpusDir(target string) string {
	return filepath.Join("testdata", "fuzz", target)
}

func writeCorpusFile(tb testing.TB, path string, lines ...string) {
	tb.Helper()
	body := corpusHeader + "\n" + strings.Join(lines, "\n") + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		tb.Fatal(err)
	}
}

// readDecodeCorpusFile parses one FuzzDecode corpus file back into
// its ([]byte, bool) arguments.
func readDecodeCorpusFile(tb testing.TB, path string) (data []byte, wrapped bool) {
	tb.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 || lines[0] != corpusHeader {
		tb.Fatalf("%s: not a 2-argument corpus file", path)
	}
	quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
	s, err := strconv.Unquote(quoted)
	if err != nil {
		tb.Fatalf("%s: bad []byte line %q: %v", path, lines[1], err)
	}
	switch lines[2] {
	case "bool(true)":
		wrapped = true
	case "bool(false)":
	default:
		tb.Fatalf("%s: bad bool line %q", path, lines[2])
	}
	return []byte(s), wrapped
}

// TestSeedCorpusIsFresh pins the checked-in FuzzDecode corpus to the
// canonical entries. Because the seed program, the VM schedule, and
// the encoder are all deterministic, a mismatch means the trace
// format changed without regenerating the corpus (run with
// -regen-corpus), which would silently rot the fuzz seeds.
func TestSeedCorpusIsFresh(t *testing.T) {
	dir := corpusDir("FuzzDecode")
	entries := decodeCorpusEntries(t)
	if *regenCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			writeCorpusFile(t, filepath.Join(dir, e.name),
				fmt.Sprintf("[]byte(%q)", e.data), fmt.Sprintf("bool(%v)", e.wrapped))
		}
	}
	for _, e := range entries {
		data, wrapped := readDecodeCorpusFile(t, filepath.Join(dir, e.name))
		if !bytes.Equal(data, e.data) || wrapped != e.wrapped {
			t.Errorf("corpus file %s is stale (run go test -run TestSeedCorpus -regen-corpus)", e.name)
		}
	}
}

// TestFuzzCorpusReplay replays every checked-in FuzzDecode entry
// through the path a production trace takes — bytes written into a
// ring in driver-sized chunks, snapshotted, decoded — and holds the
// decoder to its total-robustness contract: an error or a valid
// trace, never a panic, an out-of-range PC, or negative timing
// uncertainty.
func TestFuzzCorpusReplay(t *testing.T) {
	mod := seedModule(t)
	files, err := filepath.Glob(filepath.Join(corpusDir("FuzzDecode"), "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("found %d corpus files, expected the checked-in seed set", len(files))
	}
	check := func(t *testing.T, tt *ThreadTrace, err error) {
		t.Helper()
		if err != nil {
			return
		}
		for _, di := range tt.Instrs {
			if int(di.PC) < 0 || int(di.PC) >= mod.NumInstrs() {
				t.Fatalf("decoded PC %d out of module range", di.PC)
			}
			if di.Uncert < 0 {
				t.Fatalf("negative uncertainty %d", di.Uncert)
			}
		}
	}
	fill := func(r *ring, data []byte) {
		for i := 0; i < len(data); i += 7 {
			end := i + 7
			if end > len(data) {
				end = len(data)
			}
			r.write(data[i:end])
		}
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, wrapped := readDecodeCorpusFile(t, path)

			// The corpus bytes exactly as checked in.
			tt, err := Decode(mod, 0, SnapshotThread{Data: data, Wrapped: wrapped},
				Config{}, ir.NoPC, 0)
			check(t, tt, err)

			// Through a lossless ring: the snapshot must be
			// byte-identical and decode the same way.
			r := newRing(len(data) + 1)
			fill(r, data)
			snapData, snapWrapped := r.snapshot()
			if !bytes.Equal(snapData, data) {
				t.Fatalf("lossless ring altered the stream")
			}
			tt, err = Decode(mod, 0, SnapshotThread{Data: snapData, Wrapped: snapWrapped || wrapped},
				Config{}, ir.NoPC, 0)
			check(t, tt, err)

			// Through a small ring that forces overwrite: the decoder
			// sees only the (possibly mid-packet) tail, as after a
			// long in-production run.
			small := newRing(32)
			fill(small, data)
			tail, tailWrapped := small.snapshot()
			tt, err = Decode(mod, 0, SnapshotThread{Data: tail, Wrapped: tailWrapped},
				Config{}, ir.NoPC, 0)
			check(t, tt, err)
		})
	}
}

// TestEncoderRingDecoderRoundTrip is the constructive counterpart of
// the corpus replay: a genuine capture of the seed program decodes
// through DecodeSnapshot with every PC in range, proving the corpus
// seeds describe real, decodable traffic rather than junk the decoder
// happens to reject.
func TestEncoderRingDecoderRoundTrip(t *testing.T) {
	mod, snap := seedSnapshot(t)
	traces, err := DecodeSnapshot(mod, snap, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) < 2 {
		t.Fatalf("decoded %d threads, want the spawner and the worker", len(traces))
	}
	total := 0
	for _, tt := range traces {
		total += len(tt.Instrs)
		for _, di := range tt.Instrs {
			if int(di.PC) < 0 || int(di.PC) >= mod.NumInstrs() {
				t.Fatalf("decoded PC %d out of module range", di.PC)
			}
		}
	}
	if total == 0 {
		t.Fatal("round trip decoded zero instructions")
	}
}
