package pt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

func TestRingUnwrapped(t *testing.T) {
	r := newRing(16)
	r.write([]byte{1, 2, 3})
	r.write([]byte{4, 5})
	data, wrapped := r.snapshot()
	if wrapped {
		t.Fatal("should not be wrapped")
	}
	if !bytes.Equal(data, []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("data = %v", data)
	}
}

func TestRingWrap(t *testing.T) {
	r := newRing(8)
	for i := byte(0); i < 20; i++ {
		r.write([]byte{i})
	}
	data, wrapped := r.snapshot()
	if !wrapped {
		t.Fatal("should be wrapped")
	}
	if !bytes.Equal(data, []byte{12, 13, 14, 15, 16, 17, 18, 19}) {
		t.Fatalf("data = %v", data)
	}
	if r.total != 20 {
		t.Fatalf("total = %d", r.total)
	}
}

func TestRingOversizedWrite(t *testing.T) {
	r := newRing(4)
	r.write([]byte{1, 2, 3, 4, 5, 6, 7})
	data, wrapped := r.snapshot()
	if !wrapped || !bytes.Equal(data, []byte{4, 5, 6, 7}) {
		t.Fatalf("data = %v wrapped = %v", data, wrapped)
	}
}

// TestRingExactFillNotWrapped is the false-wrap regression test: a
// write sequence that exactly fills the ring overwrites nothing, so
// the snapshot must keep every byte AND report wrapped=false — a true
// report would make the decoder treat a clean stream's prefix as
// possibly mid-packet and scan forward to the next sync point.
func TestRingExactFillNotWrapped(t *testing.T) {
	t.Run("single exact-cap write", func(t *testing.T) {
		r := newRing(8)
		r.write([]byte{1, 2, 3, 4, 5, 6, 7, 8})
		data, wrapped := r.snapshot()
		if wrapped {
			t.Error("exact-fill write reported wrapped=true, but no byte was overwritten")
		}
		if !bytes.Equal(data, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
			t.Errorf("data = %v, want all 8 written bytes", data)
		}
	})
	t.Run("incremental exact fill", func(t *testing.T) {
		r := newRing(8)
		r.write([]byte{1, 2, 3})
		r.write([]byte{4, 5, 6, 7, 8})
		data, wrapped := r.snapshot()
		if wrapped {
			t.Error("incremental exact fill reported wrapped=true, but no byte was overwritten")
		}
		if !bytes.Equal(data, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
			t.Errorf("data = %v, want all 8 written bytes", data)
		}
	})
	t.Run("one byte past exact fill wraps", func(t *testing.T) {
		r := newRing(8)
		r.write([]byte{1, 2, 3, 4, 5, 6, 7, 8})
		r.write([]byte{9})
		data, wrapped := r.snapshot()
		if !wrapped {
			t.Error("overwriting write reported wrapped=false")
		}
		if !bytes.Equal(data, []byte{2, 3, 4, 5, 6, 7, 8, 9}) {
			t.Errorf("data = %v", data)
		}
	})
	t.Run("oversized first write wraps", func(t *testing.T) {
		// len(p) > cap on an empty ring drops a prefix of p itself:
		// history was lost, so wrapped must be true.
		r := newRing(4)
		r.write([]byte{1, 2, 3, 4, 5})
		data, wrapped := r.snapshot()
		if !wrapped || !bytes.Equal(data, []byte{2, 3, 4, 5}) {
			t.Errorf("data = %v wrapped = %v, want [2 3 4 5] true", data, wrapped)
		}
	})
}

func TestRingMatchesTailProperty(t *testing.T) {
	// Property: for any write sequence, the snapshot equals the tail
	// of the concatenated writes.
	check := func(chunks [][]byte, capSeed uint8) bool {
		capacity := int(capSeed%64) + 1
		r := newRing(capacity)
		var all []byte
		for _, c := range chunks {
			r.write(c)
			all = append(all, c...)
		}
		data, wrapped := r.snapshot()
		want := all
		if len(all) > capacity {
			want = all[len(all)-capacity:]
		}
		// wrapped means "bytes were overwritten": exactly when the
		// total written exceeds capacity.
		return bytes.Equal(data, want) && wrapped == (len(all) > capacity)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	var buf []byte
	buf = appendPSB(buf, 12345, 999_999)
	buf = appendTNT(buf, 0b0101, 4)
	buf = appendMTC(buf, 0xBEEF)
	buf = appendCYC(buf, 77)
	buf = appendTIP(buf, 4242)
	buf = appendTNT(buf, 1, 1)

	r := &packetReader{data: buf}
	expect := []PacketKind{KindPSB, KindTNT, KindMTC, KindCYC, KindTIP, KindTNT}
	var got []packet
	for {
		p, ok, err := r.next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, p)
	}
	if len(got) != len(expect) {
		t.Fatalf("decoded %d packets, want %d", len(got), len(expect))
	}
	for i, k := range expect {
		if got[i].kind != k {
			t.Fatalf("packet %d kind = %s, want %s", i, got[i].kind, k)
		}
	}
	if got[0].pc != 12345 || got[0].time != 999_999 {
		t.Errorf("PSB = %+v", got[0])
	}
	if got[1].bits != 0b0101 || got[1].n != 4 {
		t.Errorf("TNT = %+v", got[1])
	}
	if got[2].coarse != 0xBEEF {
		t.Errorf("MTC = %+v", got[2])
	}
	if got[3].units != 77 {
		t.Errorf("CYC = %+v", got[3])
	}
	if got[4].pc != 4242 {
		t.Errorf("TIP = %+v", got[4])
	}
}

func TestPacketTruncated(t *testing.T) {
	full := appendTIP(nil, 1<<40)
	for cut := 1; cut < len(full); cut++ {
		r := &packetReader{data: full[:cut]}
		if _, _, err := r.next(); err == nil {
			t.Errorf("cut at %d: expected error", cut)
		}
	}
}

// recordingHook captures the executed instruction stream per thread.
type recordingHook struct {
	byThread map[int][]record
}

type record struct {
	pc   ir.PC
	time int64
}

func (h *recordingHook) Before(tid int, in ir.Instr, live int, time int64) int64 {
	if h.byThread == nil {
		h.byThread = map[int][]record{}
	}
	h.byThread[tid] = append(h.byThread[tid], record{in.PC(), time})
	return 0
}

// dedupeConsecutive collapses repeated entries for the same PC, which
// arise when a blocked lock/join instruction retries: hardware traces
// carry no event for a retried blocked instruction.
func dedupeConsecutive(recs []record) []record {
	out := recs[:0:0]
	for i, r := range recs {
		if i > 0 && recs[i-1].pc == r.pc {
			continue
		}
		out = append(out, r)
	}
	return out
}

// buildBusyModule returns a module with branches, calls, indirect
// calls and two threads, to exercise the encoder and decoder.
func buildBusyModule(t testing.TB) *ir.Module {
	t.Helper()
	src := `
module busy
global fp: func(int) int
global total: int
global mu: mutex

func square(x: int) int {
entry:
  %r = mul %x, %x
  ret %r
}

func work(n: int) {
entry:
  %i = alloca int
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = lt %iv, %n
  condbr %c, body, done
body:
  %f = load @fp
  %sq = call %f(%iv)
  lock @mu
  %tv = load @total
  %tv2 = add %tv, %sq
  store %tv2, @total
  unlock @mu
  %odd = rem %iv, 2
  %isodd = eq %odd, 1
  condbr %isodd, oddcase, next
oddcase:
  %dummy = call square(%iv)
  br next
next:
  %iv2 = add %iv, 1
  store %iv2, %i
  br loop
done:
  ret
}

func main() {
entry:
  store square, @fp
  %t1 = spawn work(30)
  %t2 = spawn work(25)
  join %t1
  join %t2
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := buildBusyModule(t)
	for seed := int64(0); seed < 3; seed++ {
		enc := NewEncoder(Config{})
		hook := &recordingHook{}
		res := vm.Run(m, vm.Config{Seed: seed, Sink: enc, Hook: hook})
		if res.Failed() {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
		snap := enc.Snapshot()
		if len(snap.Threads) != 3 {
			t.Fatalf("seed %d: %d thread streams, want 3", seed, len(snap.Threads))
		}
		for tid, st := range snap.Threads {
			if st.Wrapped {
				t.Fatalf("seed %d: thread %d wrapped with default 64KB buffer", seed, tid)
			}
			tt, err := Decode(m, tid, st, Config{}, ir.NoPC, res.Time)
			if err != nil {
				t.Fatalf("seed %d thread %d: decode: %v", seed, tid, err)
			}
			want := dedupeConsecutive(hook.byThread[tid])
			if len(tt.Instrs) != len(want) {
				t.Fatalf("seed %d thread %d: decoded %d instrs, executed %d",
					seed, tid, len(tt.Instrs), len(want))
			}
			for i := range want {
				if tt.Instrs[i].PC != want[i].pc {
					t.Fatalf("seed %d thread %d: instr %d decoded PC %d, executed %d",
						seed, tid, i, tt.Instrs[i].PC, want[i].pc)
				}
			}
		}
	}
}

func TestDecodedTimestampsTrackReality(t *testing.T) {
	m := buildBusyModule(t)
	enc := NewEncoder(Config{})
	hook := &recordingHook{}
	res := vm.Run(m, vm.Config{Seed: 7, Sink: enc, Hook: hook})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	snap := enc.Snapshot()
	for tid, st := range snap.Threads {
		tt, err := Decode(m, tid, st, Config{}, ir.NoPC, res.Time)
		if err != nil {
			t.Fatal(err)
		}
		want := dedupeConsecutive(hook.byThread[tid])
		prev := int64(0)
		for i, di := range tt.Instrs {
			if di.Time < prev {
				t.Fatalf("thread %d: time went backwards at %d: %d < %d", tid, i, di.Time, prev)
			}
			prev = di.Time
			// Reconstructed time must be within the uncertainty
			// window (plus scheduling slack) of the true time.
			diff := want[i].time - di.Time
			if diff < 0 {
				diff = -diff
			}
			if diff > di.Uncert+200_000 {
				t.Fatalf("thread %d instr %d (pc %d): decoded %d true %d uncert %d",
					tid, i, di.PC, di.Time, want[i].time, di.Uncert)
			}
		}
	}
}

func TestDecodeWrappedRing(t *testing.T) {
	m := buildBusyModule(t)
	enc := NewEncoder(Config{BufBytes: 256})
	hook := &recordingHook{}
	res := vm.Run(m, vm.Config{Seed: 1, Sink: enc, Hook: hook})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	snap := enc.Snapshot()
	anyWrapped := false
	for tid, st := range snap.Threads {
		if !st.Wrapped {
			continue
		}
		anyWrapped = true
		tt, err := Decode(m, tid, st, Config{BufBytes: 256}, ir.NoPC, res.Time)
		if err != nil {
			t.Fatalf("thread %d: %v", tid, err)
		}
		if !tt.Wrapped {
			t.Error("decode should report wrap")
		}
		if len(tt.Instrs) == 0 {
			t.Fatalf("thread %d: wrapped decode produced nothing", tid)
		}
		// The decoded tail must match the tail of the true stream.
		want := dedupeConsecutive(hook.byThread[tid])
		got := tt.Instrs
		if len(got) > len(want) {
			t.Fatalf("thread %d: decoded more than executed", tid)
		}
		tail := want[len(want)-len(got):]
		for i := range got {
			if got[i].PC != tail[i].pc {
				t.Fatalf("thread %d: tail mismatch at %d: decoded %d executed %d",
					tid, i, got[i].PC, tail[i].pc)
			}
		}
	}
	if !anyWrapped {
		t.Skip("no ring wrapped; enlarge workload")
	}
}

func TestDriverTrigger(t *testing.T) {
	m := buildBusyModule(t)
	// Trigger at the unlock in work().
	var unlockPC ir.PC = ir.NoPC
	m.Instrs(func(in ir.Instr) {
		if in.Op() == ir.OpUnlock && unlockPC == ir.NoPC {
			unlockPC = in.PC()
		}
	})
	d := NewDriver(Config{})
	d.TriggerPC = unlockPC
	d.TriggerSkip = 3
	res := vm.Run(m, vm.Config{Seed: 2, Sink: d, Hook: d})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	if !d.Triggered() {
		t.Fatal("trigger did not fire")
	}
	snap := d.TriggerSnapshot()
	if snap == nil || len(snap.Threads) == 0 {
		t.Fatal("no snapshot at trigger")
	}
	full := d.FailureSnapshot(res.Time)
	var snapBytes, fullBytes int
	for _, st := range snap.Threads {
		snapBytes += len(st.Data)
	}
	for _, st := range full.Threads {
		fullBytes += len(st.Data)
	}
	if snapBytes >= fullBytes {
		t.Errorf("trigger snapshot (%d bytes) not smaller than final (%d bytes)", snapBytes, fullBytes)
	}
}

func TestEncoderStats(t *testing.T) {
	m := buildBusyModule(t)
	enc := NewEncoder(Config{})
	res := vm.Run(m, vm.Config{Seed: 0, Sink: enc})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	st := enc.Stats()
	if st.Packets[KindTNT] == 0 || st.Packets[KindTIP] == 0 || st.Packets[KindPSB] == 0 {
		t.Errorf("packet mix incomplete: %+v", st.Packets)
	}
	if st.Packets[KindMTC] == 0 && st.Packets[KindCYC] == 0 {
		t.Error("no timing packets")
	}
	frac := st.TimingFraction()
	if frac <= 0.1 || frac >= 0.9 {
		t.Errorf("timing fraction = %.2f, want a substantial share", frac)
	}
}

func TestTracingOverheadIsSmall(t *testing.T) {
	m := buildBusyModule(t)
	base := vm.Run(m, vm.Config{Seed: 5})
	traced := vm.Run(m, vm.Config{Seed: 5, Sink: NewEncoder(Config{})})
	if base.Failed() || traced.Failed() {
		t.Fatal("unexpected failure")
	}
	overhead := float64(traced.Time-base.Time) / float64(base.Time)
	if overhead < 0 {
		t.Fatalf("negative overhead %.4f", overhead)
	}
	if overhead > 0.05 {
		t.Errorf("tracing overhead = %.2f%%, want < 5%%", overhead*100)
	}
}

func TestDecodeStopPC(t *testing.T) {
	// StopPC truncates the final straight-line walk.
	src := `
module stop
global g: int
func main() {
entry:
  store 1, @g
  store 2, @g
  store 3, @g
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(Config{})
	res := vm.Run(m, vm.Config{Sink: enc})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	var secondStore ir.PC
	count := 0
	m.Instrs(func(in ir.Instr) {
		if in.Op() == ir.OpStore {
			count++
			if count == 2 {
				secondStore = in.PC()
			}
		}
	})
	snap := enc.Snapshot()
	tt, err := Decode(m, 0, snap.Threads[0], Config{}, secondStore, res.Time)
	if err != nil {
		t.Fatal(err)
	}
	last := tt.Instrs[len(tt.Instrs)-1]
	if last.PC != secondStore {
		t.Errorf("last decoded PC = %d, want stop PC %d", last.PC, secondStore)
	}
}

func TestSnapshotTidsSorted(t *testing.T) {
	s := &Snapshot{Threads: map[int]SnapshotThread{3: {}, 0: {}, 7: {}}}
	tids := s.Tids()
	if len(tids) != 3 || tids[0] != 0 || tids[1] != 3 || tids[2] != 7 {
		t.Errorf("tids = %v", tids)
	}
}

func TestRandomizedEncodeDecode(t *testing.T) {
	// Fuzz-ish: random seeds and buffer sizes must never produce a
	// decode error or a PC outside the module.
	m := buildBusyModule(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		cfg := Config{BufBytes: 128 << uint(rng.Intn(6))}
		enc := NewEncoder(cfg)
		res := vm.Run(m, vm.Config{Seed: rng.Int63n(1000), Sink: enc})
		if res.Failed() {
			t.Fatal(res.Failure)
		}
		snap := enc.Snapshot()
		for tid, st := range snap.Threads {
			tt, err := Decode(m, tid, st, cfg, ir.NoPC, res.Time)
			if err != nil {
				t.Fatalf("trial %d thread %d: %v", trial, tid, err)
			}
			for _, di := range tt.Instrs {
				if int(di.PC) < 0 || int(di.PC) >= m.NumInstrs() {
					t.Fatalf("decoded PC %d out of range", di.PC)
				}
			}
		}
	}
}
