package pt

// ring is a byte ring buffer that overwrites its oldest contents when
// full, like the in-memory trace buffer of the paper's Intel PT
// driver (§5). It never allocates after construction.
type ring struct {
	buf     []byte
	w       int   // next write index
	wrapped bool  // true once the buffer has overwritten old data
	total   int64 // total bytes ever written
}

func newRing(capacity int) *ring {
	if capacity <= 0 {
		capacity = 64 * 1024
	}
	return &ring{buf: make([]byte, capacity)}
}

// write appends p, overwriting the oldest bytes on wrap.
func (r *ring) write(p []byte) {
	r.total += int64(len(p))
	if len(p) >= len(r.buf) {
		copy(r.buf, p[len(p)-len(r.buf):])
		r.w = 0
		r.wrapped = true
		return
	}
	n := copy(r.buf[r.w:], p)
	if n < len(p) {
		copy(r.buf, p[n:])
		r.w = len(p) - n
		r.wrapped = true
	} else {
		r.w += n
		if r.w == len(r.buf) {
			r.w = 0
			r.wrapped = true
		}
	}
}

// snapshot returns the buffered bytes oldest-first, plus whether the
// ring has wrapped (meaning the prefix may start mid-packet).
func (r *ring) snapshot() (data []byte, wrapped bool) {
	if !r.wrapped {
		out := make([]byte, r.w)
		copy(out, r.buf[:r.w])
		return out, false
	}
	out := make([]byte, len(r.buf))
	n := copy(out, r.buf[r.w:])
	copy(out[n:], r.buf[:r.w])
	return out, true
}
