package pt

// ring is a byte ring buffer that overwrites its oldest contents when
// full, like the in-memory trace buffer of the paper's Intel PT
// driver (§5). It never allocates after construction.
type ring struct {
	buf   []byte
	w     int   // next write index
	total int64 // total bytes ever written
}

func newRing(capacity int) *ring {
	if capacity <= 0 {
		capacity = 64 * 1024
	}
	return &ring{buf: make([]byte, capacity)}
}

// write appends p, overwriting the oldest bytes on wrap.
func (r *ring) write(p []byte) {
	r.total += int64(len(p))
	if len(p) >= len(r.buf) {
		copy(r.buf, p[len(p)-len(r.buf):])
		r.w = 0
		return
	}
	n := copy(r.buf[r.w:], p)
	if n < len(p) {
		copy(r.buf, p[n:])
		r.w = len(p) - n
	} else {
		r.w += n
		if r.w == len(r.buf) {
			r.w = 0
		}
	}
}

// wrapped reports whether any byte has been overwritten. A write that
// exactly fills the ring (total == capacity) still holds every byte
// ever written, so the snapshot's prefix is a packet boundary, not a
// mid-packet cut; only total > capacity loses history.
func (r *ring) wrapped() bool { return r.total > int64(len(r.buf)) }

// snapshot returns the buffered bytes oldest-first, plus whether the
// ring has wrapped (meaning the prefix may start mid-packet).
func (r *ring) snapshot() (data []byte, wrapped bool) {
	if r.total < int64(len(r.buf)) {
		out := make([]byte, r.w)
		copy(out, r.buf[:r.w])
		return out, false
	}
	// The buffer is full: the oldest byte lives at the write index
	// (which is 0 when the fill was exact and nothing was overwritten).
	out := make([]byte, len(r.buf))
	n := copy(out, r.buf[r.w:])
	copy(out[n:], r.buf[:r.w])
	return out, r.wrapped()
}
