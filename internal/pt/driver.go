package pt

import (
	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

// Driver is the client-side trace driver of the paper's §5: it owns
// the encoder and can be armed to snapshot the trace rings when the
// program executes a specific instruction (the hardware-breakpoint
// ioctl of the real driver). Snorlax uses this to collect traces from
// successful executions at the PC where a failure previously occurred
// (step 8 in Figure 2).
//
// Attach the Driver to a vm.Config as both Sink and Hook.
type Driver struct {
	Enc *Encoder
	// TriggerPC, when not NoPC, arms a one-shot snapshot taken just
	// before the instruction at that PC executes.
	TriggerPC ir.PC
	// TriggerSkip executes the trigger that many times before
	// snapshotting (0 = first execution).
	TriggerSkip int

	triggered bool
	snap      *Snapshot
	seen      int
}

// NewDriver returns a Driver tracing with cfg.
func NewDriver(cfg Config) *Driver {
	return &Driver{Enc: NewEncoder(cfg), TriggerPC: ir.NoPC}
}

// Event implements vm.TraceSink by delegating to the encoder.
func (d *Driver) Event(ev vm.TraceEvent) int64 { return d.Enc.Event(ev) }

// Before implements vm.InstrHook: it fires the armed trigger. It adds
// no cost — the hardware watchpoint is free until it fires.
func (d *Driver) Before(tid int, in ir.Instr, live int, time int64) int64 {
	if d.triggered || d.TriggerPC == ir.NoPC || in.PC() != d.TriggerPC {
		return 0
	}
	if d.seen < d.TriggerSkip {
		d.seen++
		return 0
	}
	d.triggered = true
	d.snap = d.Enc.Snapshot()
	d.snap.Time = time
	return 0
}

// Triggered reports whether the armed trigger fired.
func (d *Driver) Triggered() bool { return d.triggered }

// TriggerSnapshot returns the snapshot captured at the trigger, or
// nil if the trigger never fired.
func (d *Driver) TriggerSnapshot() *Snapshot { return d.snap }

// FailureSnapshot captures the rings as they stand now — what the
// driver saves when a fail-stop event occurs.
func (d *Driver) FailureSnapshot(time int64) *Snapshot {
	s := d.Enc.Snapshot()
	s.Time = time
	return s
}
