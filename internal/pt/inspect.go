package pt

import "bytes"

// CountPackets scans one captured thread stream and tallies its
// packets by kind, plus the control events they represent (each TNT
// bit is one conditional branch; each TIP one indirect transfer).
// Wrapped streams are scanned from their first sync point.
func CountPackets(st SnapshotThread) (counts map[PacketKind]int64, controlEvents int64, err error) {
	data := st.Data
	if st.Wrapped {
		if idx := bytes.Index(data, psbMagic); idx >= 0 {
			data = data[idx:]
		} else {
			return map[PacketKind]int64{}, 0, nil
		}
	}
	counts = make(map[PacketKind]int64)
	r := &packetReader{data: data}
	for {
		p, ok, perr := r.next()
		if perr != nil {
			return counts, controlEvents, perr
		}
		if !ok {
			return counts, controlEvents, nil
		}
		counts[p.kind]++
		switch p.kind {
		case KindTNT:
			controlEvents += int64(p.n)
		case KindTIP:
			controlEvents++
		}
	}
}
