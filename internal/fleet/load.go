package fleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/proto"
	"snorlax/internal/pt"
)

// LoadConfig tunes RunLoad, the fleet-scale load generator: hundreds
// to tens of thousands of simulated agents spread across a handful of
// registered programs, driving the full on-demand collection loop
// against a fleet server or shard router.
//
// The generator is built for scale on one machine: every program's
// failing trace and triggered success snapshots are reproduced ONCE
// up front (the VM runs per program, not per agent), agents replay
// from that pool over the wire, and a concurrency bound keeps the
// open-connection count under the file-descriptor limit.
type LoadConfig struct {
	// Dial opens one connection to the server or router under load;
	// each active agent dials its own.
	Dial func() (net.Conn, error)
	// Context, when non-nil, aborts the whole run when done.
	Context context.Context
	// Agents is the total number of simulated agents (default 1000).
	Agents int
	// Programs are the module pairs the agents run; agent i drives
	// Programs[i%len(Programs)]. Each program is one tenant with one
	// diagnosis case, so len(Programs) cases spread across shards.
	Programs []Program
	// Concurrency bounds simultaneously active (connected) agents,
	// keeping file descriptors and goroutine wakeups sane (default 64).
	Concurrency int
	// BatchSize is snapshots per upload (default 2).
	BatchSize int
	// MaxAttempts bounds transport retries per operation (default 8).
	MaxAttempts int
	// OpTimeout bounds each round trip and the final report poll
	// (default 30s).
	OpTimeout time.Duration
	// PollInterval is the directive/report re-poll pace (default 2ms).
	PollInterval time.Duration
	// SeedBase offsets the deterministic per-agent randomness
	// (default 1).
	SeedBase int64
	// Stagger delays program p's agents by p*Stagger, so cases open
	// and publish in waves instead of one thundering herd — and so a
	// chaos test can catch some cases published and others
	// mid-collection at a chosen instant (default 0: no stagger).
	Stagger time.Duration
	// TailAlpha shapes the heavy-tailed per-agent failure rate: each
	// agent re-reports its program's failure 1+⌊Pareto(alpha)⌋ times
	// (idempotently joining the same case), modeling the production
	// reality that a few replicas hit a bug constantly while most see
	// it once. Smaller alpha = heavier tail (default 1.5); samples are
	// capped at 16 reports per agent.
	TailAlpha float64
	// Wire selects the agents' connection codec (default: binary).
	Wire proto.WireVersion
}

func (c LoadConfig) agents() int {
	if c.Agents <= 0 {
		return 1000
	}
	return c.Agents
}

func (c LoadConfig) concurrency() int {
	if c.Concurrency <= 0 {
		return 64
	}
	return c.Concurrency
}

func (c LoadConfig) tailAlpha() float64 {
	if c.TailAlpha <= 0 {
		return 1.5
	}
	return c.TailAlpha
}

func (c LoadConfig) fleetConfig() Config {
	return Config{
		Dial:         c.Dial,
		Context:      c.Context,
		BatchSize:    c.BatchSize,
		MaxAttempts:  c.MaxAttempts,
		OpTimeout:    c.OpTimeout,
		PollInterval: c.PollInterval,
		SeedBase:     c.SeedBase,
		Wire:         c.Wire,
	}
}

// LoadCase is one program's outcome under load.
type LoadCase struct {
	Tenant    proto.TenantID
	Case      proto.CaseID
	TriggerPC ir.PC
	// Diagnosis is the published report every agent of this program
	// eventually fetched.
	Diagnosis *core.Diagnosis
	// Uploaded and Accepted count this program's snapshots before and
	// after server-side dedup/quota.
	Uploaded, Accepted int
	// Agents is how many agents drove this program; FailureReports is
	// how many fleet-failure requests they sent in total (heavy-tailed).
	Agents, FailureReports int
}

// LoadStats is the run's headline numbers — the BENCH_fleet.json row.
type LoadStats struct {
	Agents   int
	Programs int
	// Duration is wall time from first agent start to last report.
	Duration time.Duration
	// Uploaded and Accepted count snapshots fleet-wide; AcceptedPerSec
	// is the server-side admission throughput.
	Uploaded, Accepted int
	AcceptedPerSec     float64
	// Reports counts published case reports; ReportsPerMin is the
	// diagnosis publication rate.
	Reports       int
	ReportsPerMin float64
	// DirectiveP50 and DirectiveP99 are round-trip latencies of the
	// directive-poll RPC — the request every agent spins on, and the
	// first thing that collapses when the tier is overloaded.
	DirectiveP50, DirectiveP99 time.Duration
	// Retried counts agent-side transport retries absorbed by the
	// idempotent protocol.
	Retried int
}

// LoadResult is the load generator's collective outcome.
type LoadResult struct {
	Stats LoadStats
	Cases []LoadCase
}

// loadPool is one program's precomputed wire material: the failing
// report every agent re-reports and a stock of triggered success
// snapshots agents upload from. Reproducing these once per program —
// instead of once per agent — is what lets one machine simulate
// thousands of agents: the simulated-hardware VM runs O(programs)
// times, the wire runs O(agents).
type loadPool struct {
	program   Program
	moduleTx  string
	failing   *core.RunReport
	snapshots []*pt.Snapshot
}

func buildPool(p Program, want int) (*loadPool, error) {
	if p.Fail == nil || p.OK == nil {
		return nil, fmt.Errorf("fleet: load Program needs both variants")
	}
	rep := reproduceFailure(p.Fail)
	if rep == nil {
		return nil, fmt.Errorf("fleet: could not reproduce the failure of %s", p.Fail.Name)
	}
	okClient := core.NewClient(p.OK)
	var snaps []*pt.Snapshot
	for seed := int64(1); len(snaps) < want && seed < 4096; seed++ {
		r := okClient.Run(seed, rep.Failure.PC)
		if !r.Failed() && r.Triggered && r.Snapshot != nil {
			snaps = append(snaps, r.Snapshot)
		}
	}
	if len(snaps) < want {
		return nil, fmt.Errorf("fleet: gathered %d/%d triggered snapshots for %s",
			len(snaps), want, p.Fail.Name)
	}
	return &loadPool{program: p, moduleTx: ir.Print(p.Fail), failing: rep, snapshots: snaps}, nil
}

// loadCollector accumulates fleet-wide counters and latency samples
// under one mutex; agents touch it a handful of times each, so it is
// nowhere near the contention path.
type loadCollector struct {
	mu         sync.Mutex
	directives []time.Duration
	uploaded   int
	accepted   int
	retried    int
}

func (lc *loadCollector) observeDirective(d time.Duration) {
	lc.mu.Lock()
	lc.directives = append(lc.directives, d)
	lc.mu.Unlock()
}

func (lc *loadCollector) add(uploaded, accepted, retried int) {
	lc.mu.Lock()
	lc.uploaded += uploaded
	lc.accepted += accepted
	lc.retried += retried
	lc.mu.Unlock()
}

func (lc *loadCollector) percentile(q float64) time.Duration {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if len(lc.directives) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lc.directives...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// pareto draws from a Pareto(alpha) distribution with minimum 1.
func pareto(rng *rand.Rand, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return math.Pow(u, -1/alpha)
}

// RunLoad drives cfg.Agents simulated agents against the fleet tier
// and blocks until every program's report is published and fetched by
// every one of its agents (or the context dies). Each agent registers
// its program, re-reports the failure a heavy-tailed number of times
// (joining the shared case), polls directives, uploads triggered
// snapshots from the precomputed pool until the quota disarms the
// directive, and fetches the published report.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("fleet: LoadConfig.Dial is required")
	}
	if len(cfg.Programs) == 0 {
		return nil, fmt.Errorf("fleet: LoadConfig needs at least one Program")
	}
	ctx := cfg.fleetConfig().context()

	// Phase 1: per-program pools, built once. Enough snapshots to fill
	// the default quota with headroom; agents re-upload pool entries
	// under their own (client, seq) ledger, so the pool need not scale
	// with the agent count.
	poolWant := proto.DefaultFleetQuota + 2
	pools := make([]*loadPool, len(cfg.Programs))
	for i, p := range cfg.Programs {
		pool, err := buildPool(p, poolWant)
		if err != nil {
			return nil, err
		}
		pools[i] = pool
	}

	nAgents := cfg.agents()
	aggs := make([]*caseAgg, len(pools))
	for i := range aggs {
		aggs[i] = &caseAgg{}
	}
	col := &loadCollector{}

	seedBase := cfg.SeedBase
	if seedBase == 0 {
		seedBase = 1
	}
	sem := make(chan struct{}, cfg.concurrency())
	errs := make([]error, nAgents)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < nAgents; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			pi := idx % len(pools)
			// Program waves: program p's agents hold back p*Stagger, plus
			// a small deterministic per-agent jitter inside the wave.
			rng := rand.New(rand.NewSource(seedBase + int64(idx)))
			delay := time.Duration(pi) * cfg.Stagger
			if cfg.Stagger > 0 {
				delay += time.Duration(rng.Int63n(int64(cfg.Stagger)/2 + 1))
			}
			if delay > 0 {
				select {
				case <-ctx.Done():
					errs[idx] = ctx.Err()
					return
				case <-time.After(delay):
				}
			}
			// The concurrency gate bounds *connected* agents; waiting
			// agents hold no socket.
			select {
			case <-ctx.Done():
				errs[idx] = ctx.Err()
				return
			case sem <- struct{}{}:
			}
			defer func() { <-sem }()
			errs[idx] = runLoadAgent(cfg, pools[pi], idx, rng, col, func(fn func(*caseAgg)) {
				aggs[pi].mu.Lock()
				fn(aggs[pi])
				aggs[pi].mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &LoadResult{
		Stats: LoadStats{
			Agents:   nAgents,
			Programs: len(pools),
			Duration: elapsed,
		},
	}
	for i, agg := range aggs {
		res.Cases = append(res.Cases, LoadCase{
			Tenant:         agg.tenant,
			Case:           agg.caseID,
			TriggerPC:      pools[i].failing.Failure.PC,
			Diagnosis:      agg.diag,
			Uploaded:       agg.uploaded,
			Accepted:       agg.accepted,
			Agents:         agg.agents,
			FailureReports: agg.failureReports,
		})
		if agg.diag != nil {
			res.Stats.Reports++
		}
	}
	col.mu.Lock()
	res.Stats.Uploaded = col.uploaded
	res.Stats.Accepted = col.accepted
	res.Stats.Retried = col.retried
	col.mu.Unlock()
	res.Stats.DirectiveP50 = col.percentile(0.50)
	res.Stats.DirectiveP99 = col.percentile(0.99)
	if s := elapsed.Seconds(); s > 0 {
		res.Stats.AcceptedPerSec = float64(res.Stats.Accepted) / s
		res.Stats.ReportsPerMin = float64(res.Stats.Reports) / (s / 60)
	}
	return res, nil
}

// caseAgg accumulates one program's per-case outcome across all of
// its agents; guarded by its own mutex via withAgg.
type caseAgg struct {
	mu             sync.Mutex
	tenant         proto.TenantID
	caseID         proto.CaseID
	diag           *core.Diagnosis
	uploaded       int
	accepted       int
	agents         int
	failureReports int
}

// runLoadAgent is one simulated agent's lifecycle against its
// program's precomputed pool.
func runLoadAgent(cfg LoadConfig, pool *loadPool, idx int, rng *rand.Rand,
	col *loadCollector, withAgg func(func(*caseAgg))) error {
	fc := cfg.fleetConfig()
	a := &agentConn{ctx: fc.context(), dial: cfg.Dial,
		attempts: fc.maxAttempts(), opTimeout: fc.opTimeout(), wire: fc.Wire}
	defer a.close()
	clientID := fmt.Sprintf("load-agent-%d", idx)

	var tenant proto.TenantID
	if err := a.do(func(c *proto.Conn) error {
		var err error
		tenant, err = c.Register(pool.moduleTx)
		return err
	}); err != nil {
		return fmt.Errorf("%s: register: %w", clientID, err)
	}

	// Heavy-tailed failure rate: most agents report once, a few report
	// many times. Every report idempotently joins the same case.
	reports := int(pareto(rng, cfg.tailAlpha()))
	if reports < 1 {
		reports = 1
	}
	if reports > 16 {
		reports = 16
	}
	var (
		caseID    proto.CaseID
		directive proto.Directive
		done      bool
	)
	for r := 0; r < reports; r++ {
		if err := a.do(func(c *proto.Conn) error {
			var err error
			caseID, directive, done, err = c.ReportFleetFailure(tenant, pool.failing.Failure, pool.failing.Snapshot)
			return err
		}); err != nil {
			return fmt.Errorf("%s: report failure: %w", clientID, err)
		}
	}
	withAgg(func(g *caseAgg) {
		g.tenant, g.caseID = tenant, caseID
		g.agents++
		g.failureReports += reports
	})

	// Collection: poll directives (the latency we benchmark), upload
	// pool snapshots while our case's directive stays armed.
	batchSize := fc.batchSize()
	seq := uint64(1)
	var credited uint64                   // server ledger mark already counted into accepted
	next := rng.Intn(len(pool.snapshots)) // start point in the shared pool
	uploaded, accepted := 0, 0
	for rounds := 0; !done && rounds < 64; rounds++ {
		pollStart := time.Now()
		var ds []proto.Directive
		if err := a.do(func(c *proto.Conn) error {
			var err error
			ds, err = c.Directives(tenant)
			return err
		}); err != nil {
			return fmt.Errorf("%s: directives: %w", clientID, err)
		}
		col.observeDirective(time.Since(pollStart))
		armed := false
		for _, d := range ds {
			if d.TriggerPC == directive.TriggerPC {
				armed, directive = true, d
			}
		}
		if !armed {
			break
		}
		batch := make([]*pt.Snapshot, 0, batchSize)
		for len(batch) < batchSize {
			batch = append(batch, pool.snapshots[next%len(pool.snapshots)])
			next++
		}
		var acc int
		var ledger uint64
		if err := a.do(func(c *proto.Conn) error {
			var err error
			acc, ledger, done, err = c.UploadBatchLedger(tenant, caseID, directive.TriggerPC, clientID, seq, batch)
			return err
		}); err != nil {
			return fmt.Errorf("%s: upload: %w", clientID, err)
		}
		seq += uint64(len(batch))
		uploaded += len(batch)
		// Count against the replay-stable ledger mark when the server
		// still has one; a deduplicated retry after a lost reply says
		// Accepted 0 and would otherwise under-count (see fleet.go).
		if ledger > credited {
			accepted += int(ledger - credited)
			credited = ledger
		} else if ledger == 0 {
			accepted += acc
		}
	}

	// Fetch the published report (poll: other agents may hold the last
	// uploads, or the owning shard may be mid-failover).
	deadline := time.Now().Add(fc.opTimeout())
	ctx := fc.context()
	var diag *core.Diagnosis
	for {
		var reported bool
		if err := a.do(func(c *proto.Conn) error {
			var err error
			diag, reported, err = c.FetchReport(tenant, caseID, directive.TriggerPC)
			return err
		}); err != nil {
			return fmt.Errorf("%s: fetch report: %w", clientID, err)
		}
		if reported {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s: case %d never published", clientID, caseID)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%s: fetch report: %w", clientID, ctx.Err())
		case <-time.After(fc.pollInterval()):
		}
	}
	withAgg(func(g *caseAgg) {
		g.diag = diag
		g.uploaded += uploaded
		g.accepted += accepted
	})
	col.add(uploaded, accepted, a.retried)
	return nil
}
