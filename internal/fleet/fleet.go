// Package fleet simulates the production side of the deployed system
// at fleet scale (Figure 2, §4.5): many client agents run the same
// registered program under the always-on tracer, report failures to
// the central analysis server, receive on-demand collection directives
// ("arm a trace trigger at PC X"), and batch-upload triggered success
// snapshots until the server has its 10× quota and publishes the
// diagnosis.
//
// Every agent action is idempotent on the wire — registration is
// keyed by module fingerprint, failure reports join the existing case
// for their PC, and batch uploads carry (client id, sequence number)
// so replays are deduplicated — which lets agents survive transport
// faults with a plain reconnect-and-retry loop, no session replay
// needed.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/proto"
	"snorlax/internal/pt"
)

// Program is the pair of module variants a fleet runs: Fail is the
// deployed build whose interleaving loses the race (and the module the
// server diagnoses); OK is the build whose executions succeed and
// produce the triggered success traces. The two must be layout
// identical, like the corpus variants.
type Program struct {
	Fail *ir.Module
	OK   *ir.Module
}

// Config tunes a simulated fleet.
type Config struct {
	// Dial opens one connection to the analysis server; each agent
	// dials its own.
	Dial func() (net.Conn, error)
	// Context, when non-nil, bounds the whole run: agents abandon
	// retries, collection loops and report polling as soon as it is
	// done, and Run returns the context's error. nil means
	// context.Background() — only OpTimeout bounds the run.
	Context context.Context
	// Clients is how many agents run (default 4).
	Clients int
	// BatchSize is how many triggered snapshots an agent buffers
	// before uploading (default 2).
	BatchSize int
	// SeedBase offsets every agent's scheduling seeds, so distinct
	// fleets exercise distinct interleavings (default 1).
	SeedBase int64
	// MaxAttempts bounds transport retries per operation (default 8).
	MaxAttempts int
	// MaxRuns bounds each agent's successful-execution budget
	// (default 256).
	MaxRuns int
	// OpTimeout bounds each round trip (default 30s).
	OpTimeout time.Duration
	// PollInterval is how often agents re-poll directives and pending
	// reports (default 2ms).
	PollInterval time.Duration
	// Wire selects the agents' connection codec (default: binary; the
	// chaos matrix runs each codec to hold them bit-identical).
	Wire proto.WireVersion
}

func (c Config) clients() int {
	if c.Clients <= 0 {
		return 4
	}
	return c.Clients
}

func (c Config) batchSize() int {
	if c.BatchSize <= 0 {
		return 2
	}
	return c.BatchSize
}

func (c Config) seedBase() int64 {
	if c.SeedBase == 0 {
		return 1
	}
	return c.SeedBase
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 8
	}
	return c.MaxAttempts
}

func (c Config) maxRuns() int {
	if c.MaxRuns <= 0 {
		return 256
	}
	return c.MaxRuns
}

func (c Config) opTimeout() time.Duration {
	if c.OpTimeout <= 0 {
		return 30 * time.Second
	}
	return c.OpTimeout
}

func (c Config) pollInterval() time.Duration {
	if c.PollInterval <= 0 {
		return 2 * time.Millisecond
	}
	return c.PollInterval
}

func (c Config) context() context.Context {
	if c.Context == nil {
		return context.Background()
	}
	return c.Context
}

// Result is the fleet's collective outcome.
type Result struct {
	Tenant proto.TenantID
	Case   proto.CaseID
	// Diagnosis is the server-published report for the case.
	Diagnosis *core.Diagnosis
	// Failure is the failure the fleet reported.
	Failure *core.FailureReport
	// Uploaded counts snapshots the agents uploaded (before server
	// dedupe), Accepted how many the server admitted toward the quota.
	Uploaded, Accepted int
}

// agentConn is one agent's reconnecting connection: transport faults
// drop the connection and the operation is retried on a fresh dial,
// which is safe because every fleet operation is idempotent. Server
// "error" replies are deterministic rejections and are returned.
type agentConn struct {
	ctx       context.Context
	dial      func() (net.Conn, error)
	attempts  int
	opTimeout time.Duration
	wire      proto.WireVersion
	conn      *proto.Conn
	// retried counts attempts beyond the first across all operations —
	// the transport retries the idempotent protocol absorbed.
	retried int
}

func (a *agentConn) close() {
	if a.conn != nil {
		a.conn.Close()
		a.conn = nil
	}
}

func (a *agentConn) do(fn func(c *proto.Conn) error) error {
	var lastErr error
	for i := 0; i < a.attempts; i++ {
		if err := a.ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("fleet: %w (last attempt: %v)", err, lastErr)
			}
			return err
		}
		if i > 0 {
			a.retried++
			select {
			case <-a.ctx.Done():
				return a.ctx.Err()
			case <-time.After(time.Duration(i) * 5 * time.Millisecond):
			}
		}
		if a.conn == nil {
			nc, err := a.dial()
			if err != nil {
				lastErr = err
				continue
			}
			a.conn = proto.NewConnWire(nc, a.wire)
		}
		c := a.conn
		c.SetDeadline(time.Now().Add(a.opTimeout))
		err := fn(c)
		c.SetDeadline(time.Time{})
		if err == nil {
			return nil
		}
		var se *proto.ServerError
		if errors.As(err, &se) {
			return err
		}
		lastErr = err
		a.close()
	}
	return fmt.Errorf("fleet: giving up after %d attempts: %w", a.attempts, lastErr)
}

// Run drives a simulated fleet against an analysis server until the
// failure's case is diagnosed, and returns the published report.
//
// Each agent independently registers the program (idempotent),
// reproduces the failure locally, reports it (joining the shared
// case), then runs the OK variant with the directive's trigger armed
// and batch-uploads triggered snapshots until the server publishes.
func Run(p Program, cfg Config) (*Result, error) {
	if p.Fail == nil || p.OK == nil {
		return nil, fmt.Errorf("fleet: Program needs both variants")
	}
	if cfg.Dial == nil {
		return nil, fmt.Errorf("fleet: Config.Dial is required")
	}
	n := cfg.clients()
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			results[idx], errs[idx] = runAgent(p, cfg, idx)
		}(i)
	}
	wg.Wait()
	var res *Result
	for _, r := range results {
		if r == nil {
			continue
		}
		if res == nil {
			res = &Result{Tenant: r.Tenant, Case: r.Case,
				Diagnosis: r.Diagnosis, Failure: r.Failure}
		}
		res.Uploaded += r.Uploaded
		res.Accepted += r.Accepted
	}
	if res == nil {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return nil, fmt.Errorf("fleet: no agent produced a result")
	}
	return res, nil
}

// reproduceFailure finds the failing interleaving the way every
// replica would: deterministic seeds from 1 up, so the whole fleet
// reports the same failure PC and joins one case.
func reproduceFailure(mod *ir.Module) *core.RunReport {
	client := core.NewClient(mod)
	for seed := int64(1); seed <= 64; seed++ {
		if rep := client.Run(seed, ir.NoPC); rep.Failed() {
			return rep
		}
	}
	return nil
}

func runAgent(p Program, cfg Config, idx int) (*Result, error) {
	ctx := cfg.context()
	a := &agentConn{ctx: ctx, dial: cfg.Dial, attempts: cfg.maxAttempts(),
		opTimeout: cfg.opTimeout(), wire: cfg.Wire}
	defer a.close()
	clientID := fmt.Sprintf("agent-%d", idx)

	var tenant proto.TenantID
	if err := a.do(func(c *proto.Conn) error {
		var err error
		tenant, err = c.Register(ir.Print(p.Fail))
		return err
	}); err != nil {
		return nil, fmt.Errorf("%s: register: %w", clientID, err)
	}

	rep := reproduceFailure(p.Fail)
	if rep == nil {
		return nil, fmt.Errorf("%s: could not reproduce the failure", clientID)
	}
	var (
		caseID    proto.CaseID
		directive proto.Directive
		done      bool
	)
	if err := a.do(func(c *proto.Conn) error {
		var err error
		caseID, directive, done, err = c.ReportFleetFailure(tenant, rep.Failure, rep.Snapshot)
		return err
	}); err != nil {
		return nil, fmt.Errorf("%s: report failure: %w", clientID, err)
	}

	res := &Result{Tenant: tenant, Case: caseID, Failure: rep.Failure}
	okClient := core.NewClient(p.OK)
	var (
		batch    []*pt.Snapshot
		seq      uint64 = 1 // sequence number of batch[0]
		credited uint64     // server ledger mark already counted into res.Accepted
	)
	upload := func() error {
		if len(batch) == 0 {
			return nil
		}
		var accepted int
		var ledger uint64
		err := a.do(func(c *proto.Conn) error {
			var err error
			accepted, ledger, done, err = c.UploadBatchLedger(tenant, caseID, directive.TriggerPC, clientID, seq, batch)
			return err
		})
		if err != nil {
			return err
		}
		res.Uploaded += len(batch)
		// A reply can be lost after the server admitted the batch; the
		// transport retry is then deduplicated server-side and reports
		// Accepted 0, which would under-count. The ledger mark is
		// replay-stable, so count against it whenever the server still
		// has one and trust Accepted only when the ledger is gone
		// (case closed and pruned).
		if ledger > credited {
			res.Accepted += int(ledger - credited)
			credited = ledger
		} else if ledger == 0 {
			res.Accepted += accepted
		}
		seq += uint64(len(batch))
		batch = batch[:0]
		return nil
	}
	seed := cfg.seedBase() + int64(idx)*100_000
	for runs := 0; !done && runs < cfg.maxRuns(); runs++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%s: collection: %w", clientID, err)
		}
		seed++
		okRep := okClient.Run(seed, directive.TriggerPC)
		if okRep.Failed() || !okRep.Triggered || okRep.Snapshot == nil {
			continue
		}
		batch = append(batch, okRep.Snapshot)
		if len(batch) >= cfg.batchSize() {
			if err := upload(); err != nil {
				return nil, fmt.Errorf("%s: upload: %w", clientID, err)
			}
		}
		if done {
			break
		}
		// Another agent may have filled the quota: when the directive is
		// gone, stop producing and go fetch the report.
		var ds []proto.Directive
		if err := a.do(func(c *proto.Conn) error {
			var err error
			ds, err = c.Directives(tenant)
			return err
		}); err != nil {
			return nil, fmt.Errorf("%s: directives: %w", clientID, err)
		}
		armed := false
		for _, d := range ds {
			// Match on the trigger PC, not the case id: in a sharded
			// deployment the directive listing is a fan-out merge, and
			// the PC is the routing key that is stable across shards.
			if d.TriggerPC == directive.TriggerPC {
				armed, directive = true, d
			}
		}
		if !armed {
			break
		}
	}
	if !done {
		// Flush the tail batch; harmless if the case just closed (the
		// server ignores excess) and necessary if quota still wants it.
		if err := upload(); err != nil {
			return nil, fmt.Errorf("%s: upload: %w", clientID, err)
		}
	}

	// Fetch the published report, polling while the case is still
	// collecting (other agents may hold the last uploads). The poll
	// loop is doubly bounded: by the operation timeout and by the
	// run's context, whichever ends first.
	deadline := time.Now().Add(cfg.opTimeout())
	for {
		var (
			diag     *core.Diagnosis
			reported bool
		)
		if err := a.do(func(c *proto.Conn) error {
			var err error
			diag, reported, err = c.FetchReport(tenant, caseID, directive.TriggerPC)
			return err
		}); err != nil {
			return nil, fmt.Errorf("%s: fetch report: %w", clientID, err)
		}
		if reported {
			res.Diagnosis = diag
			return res, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%s: case %d never published (quota starved?)", clientID, caseID)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%s: fetch report: %w", clientID, ctx.Err())
		case <-time.After(cfg.pollInterval()):
		}
	}
}
