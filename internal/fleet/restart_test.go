package fleet_test

// Restart-mid-collection e2e: a WAL-backed fleet server is killed
// after k traces have been accepted — before the fleet even registers
// (k=0), mid-collection (k=5), and one trace short of the quota (k=9)
// — and a recovered server takes over on the same address. The agents
// never learn a restart happened: their idempotent retry loops carry
// them across the gap, the recovered directive asks only for the
// missing traces, the server stops at exactly the 10× quota, and the
// published report is bit-identical to a direct diagnosis of the
// accepted traces. The whole flow runs through seeded network chaos on
// top of the restart.

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/faultnet"
	"snorlax/internal/fleet"
	"snorlax/internal/ir"
	"snorlax/internal/proto"
	"snorlax/internal/store"
)

func startDurableFleetServer(t *testing.T, mod *ir.Module, stateDir string,
	ln net.Listener, inj *faultnet.Injector) *proto.Server {
	t.Helper()
	w, err := store.Open(stateDir, store.Options{SyncPolicy: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv := proto.NewServer(core.NewServer(mod))
	srv.IdleTimeout = 10 * time.Second
	srv.WriteTimeout = 10 * time.Second
	srv.Store = w
	if err := srv.Restore(w.RecoveredState()); err != nil {
		t.Fatal(err)
	}
	go srv.Serve(inj.Listener(ln))
	return srv
}

func shutdownFleetServer(t *testing.T, srv *proto.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// acceptedTraces polls the server for how many successes the bug's
// case has accepted so far; 0 while the case does not exist yet.
func acceptedTraces(srv *proto.Server, tenant proto.TenantID) int {
	_, successes, ok := srv.FleetCaseTraces(tenant, 1)
	if !ok {
		return 0
	}
	return len(successes)
}

func restartFleetAt(t *testing.T, k int) {
	bug := corpus.ByID("httpd-4")
	failInst := bug.Build(corpus.Variant{Failing: true})
	okInst := bug.Build(corpus.Variant{Failing: false})
	tenant := proto.ModuleFingerprint(failInst.Mod)
	stateDir := t.TempDir()

	inj := faultnet.New(faultnet.Config{
		Seed: 1, FaultEvery: 3, MaxFaults: 8, Stall: 2 * time.Millisecond})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv1 := startDurableFleetServer(t, failInst.Mod, stateDir, ln, inj)

	// The fleet runs in the background while the test plays fate: wait
	// for k accepted traces, then kill the server under it. MaxAttempts
	// is generous because every agent must retry across the restart gap
	// on top of the injected chaos.
	resCh := make(chan *fleet.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := fleet.Run(
			fleet.Program{Fail: failInst.Mod, OK: okInst.Mod},
			fleet.Config{
				Dial:        inj.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) }),
				Clients:     4,
				MaxAttempts: 40,
			})
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	deadline := time.Now().Add(60 * time.Second)
	for acceptedTraces(srv1, tenant) < k {
		if time.Now().After(deadline) {
			t.Fatalf("server never reached %d accepted traces", k)
		}
		select {
		case err := <-errCh:
			t.Fatalf("fleet failed before the restart: %v", err)
		default:
		}
		time.Sleep(time.Millisecond)
	}
	shutdownFleetServer(t, srv1)

	// Rebind the same address and recover from the WAL. The recovered
	// directive must resume at exactly the logged count — never
	// re-requesting (or double-counting) an accepted trace.
	// The serve goroutine may still be releasing the socket (an early
	// shutdown can beat Serve to its own listener registration), so the
	// rebind retries briefly — as a restarting process would.
	var ln2 net.Listener
	for rebind := time.Now().Add(10 * time.Second); ; {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(rebind) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	w2, err := store.Open(stateDir, store.Options{SyncPolicy: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	logged := 0
	collecting := false
	if p := w2.RecoveredState().Program(string(tenant)); p != nil && p.Cases[1] != nil {
		logged = len(p.Cases[1].Successes)
		collecting = p.Cases[1].Collecting
	}
	if logged < k {
		t.Errorf("WAL recovered %d accepted traces, but the live server had at least %d", logged, k)
	}
	srv2 := proto.NewServer(core.NewServer(failInst.Mod))
	srv2.IdleTimeout = 10 * time.Second
	srv2.WriteTimeout = 10 * time.Second
	srv2.Store = w2
	if err := srv2.Restore(w2.RecoveredState()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownFleetServer(t, srv2) })
	reg := srv2.Metrics()
	if collecting {
		if v := reg.Find(proto.MetricFleetQuotaHave).Gauge.Value(); v != int64(logged) {
			t.Errorf("recovered quota-have gauge = %d, want the logged %d", v, logged)
		}
		if v := reg.Find(proto.MetricFleetQuotaWant).Gauge.Value(); v != proto.DefaultFleetQuota {
			t.Errorf("recovered quota-want gauge = %d, want %d", v, proto.DefaultFleetQuota)
		}
		if v := reg.Find(proto.MetricFleetArmedDirectives).Gauge.Value(); v != 1 {
			t.Errorf("recovered armed-directives gauge = %d, want 1", v)
		}
	}
	go srv2.Serve(inj.Listener(ln2))

	var res *fleet.Result
	select {
	case res = <-resCh:
	case err := <-errCh:
		t.Fatalf("fleet failed across the restart: %v", err)
	case <-time.After(120 * time.Second):
		t.Fatal("fleet never finished after the restart")
	}
	if res.Diagnosis == nil {
		t.Fatal("fleet returned no diagnosis")
	}

	// Exact quota stop, server-side: the recovered collection plus the
	// replayed batches landed on precisely 10 accepted traces. The
	// client-side count can only undercount (an ack lost to chaos or
	// the restart is retried and deduplicated to zero), never exceed.
	failing, successes, ok := srv2.FleetCaseTraces(res.Tenant, res.Case)
	if !ok {
		t.Fatalf("recovered server has no case %d for tenant %s", res.Case, res.Tenant)
	}
	if len(successes) != proto.DefaultFleetQuota {
		t.Fatalf("server accepted %d success traces across the restart, want exactly %d",
			len(successes), proto.DefaultFleetQuota)
	}
	if res.Accepted > proto.DefaultFleetQuota {
		t.Errorf("agents saw %d accepted uploads, cannot exceed the %d quota",
			res.Accepted, proto.DefaultFleetQuota)
	}

	// Bit-identity with a direct diagnosis of the exact accepted traces.
	want, err := core.NewServer(failInst.Mod).Diagnose(failing, successes)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Diagnosis
	if !reflect.DeepEqual(got.Scores, want.Scores) {
		t.Errorf("restarted fleet scores diverge from direct diagnosis:\n got %v\nwant %v",
			got.Scores, want.Scores)
	}
	if !reflect.DeepEqual(got.Best, want.Best) || got.Unique != want.Unique {
		t.Errorf("fleet best = %v (unique=%v), direct = %v (unique=%v)",
			got.Best, got.Unique, want.Best, want.Unique)
	}
	if got.AnchorPC != want.AnchorPC {
		t.Errorf("fleet anchor = %d, direct = %d", got.AnchorPC, want.AnchorPC)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("fleet diagnosis fingerprint diverges from the direct diagnosis")
	}
	truth := core.Truth{Kind: failInst.TruthKind, Sub: failInst.TruthSub,
		PCs: failInst.TruthPCs, Absence: failInst.TruthAbsence}
	if !core.MatchesTruth(got.Best.Pattern, truth) {
		t.Errorf("restarted fleet diagnosis %v does not match ground truth", got.Best.Pattern.Key())
	}
	if v := reg.Find(proto.MetricFleetReports).Counter.Value(); v != 1 {
		t.Errorf("published reports counter = %d, want 1", v)
	}
	if v := reg.Find(proto.MetricFleetArmedDirectives).Gauge.Value(); v != 0 {
		t.Errorf("armed directives gauge = %d after publication, want 0", v)
	}
}

func TestFleetRestartMidCollection(t *testing.T) {
	for _, k := range []int{0, 5, 9} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			restartFleetAt(t, k)
		})
	}
}
