package fleet_test

import (
	"net"
	"reflect"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/fleet"
	"snorlax/internal/proto"
)

// loadPrograms builds the corpus-bug program matrix for load tests.
func loadPrograms(t *testing.T, ids ...string) []fleet.Program {
	t.Helper()
	ps := make([]fleet.Program, 0, len(ids))
	for _, id := range ids {
		bug := corpus.ByID(id)
		if bug == nil {
			t.Fatalf("unknown corpus bug %q", id)
		}
		ps = append(ps, fleet.Program{
			Fail: bug.Build(corpus.Variant{Failing: true}).Mod,
			OK:   bug.Build(corpus.Variant{Failing: false}).Mod,
		})
	}
	return ps
}

// assertSameDiagnosis checks verdict bit-identity (scores, ranking,
// anchor, trace accounting — timing stats excluded).
func assertSameDiagnosis(t *testing.T, got, want *core.Diagnosis) {
	t.Helper()
	if !reflect.DeepEqual(got.Scores, want.Scores) {
		t.Errorf("scores diverge from direct diagnosis:\n got %v\nwant %v", got.Scores, want.Scores)
	}
	if !reflect.DeepEqual(got.Best, want.Best) || got.Unique != want.Unique {
		t.Errorf("best = %v (unique=%v), direct = %v (unique=%v)",
			got.Best, got.Unique, want.Best, want.Unique)
	}
	if got.AnchorPC != want.AnchorPC {
		t.Errorf("anchor = %d, direct = %d", got.AnchorPC, want.AnchorPC)
	}
	if got.Stats.SuccessTraces != want.Stats.SuccessTraces ||
		got.Stats.DroppedSuccesses != want.Stats.DroppedSuccesses {
		t.Errorf("used %d traces (%d dropped), direct %d (%d dropped)",
			got.Stats.SuccessTraces, got.Stats.DroppedSuccesses,
			want.Stats.SuccessTraces, want.Stats.DroppedSuccesses)
	}
}

// TestRunLoadSmoke drives a mid-size agent swarm (far above the
// per-case quota, well below the headline chaos scale) against one
// in-process fleet server and checks the load generator's contract:
// every program's case publishes exactly once at exactly the quota,
// every agent fetches the report, and the stats are self-consistent.
func TestRunLoadSmoke(t *testing.T) {
	programs := loadPrograms(t, "dbcp-1", "httpd-4")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := proto.NewServer(core.NewServer(programs[0].Fail))
	srv.IdleTimeout = 10 * time.Second
	srv.WriteTimeout = 10 * time.Second
	go srv.Serve(ln)

	const agents = 120
	res, err := fleet.RunLoad(fleet.LoadConfig{
		Dial:         func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) },
		Agents:       agents,
		Programs:     programs,
		Concurrency:  32,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.Stats.Agents != agents || res.Stats.Programs != len(programs) {
		t.Errorf("stats say %d agents / %d programs, want %d / %d",
			res.Stats.Agents, res.Stats.Programs, agents, len(programs))
	}
	if res.Stats.Reports != len(programs) {
		t.Errorf("published %d reports, want %d", res.Stats.Reports, len(programs))
	}
	if len(res.Cases) != len(programs) {
		t.Fatalf("got %d cases, want %d", len(res.Cases), len(programs))
	}
	totalAgents, totalAccepted := 0, 0
	for i, c := range res.Cases {
		if c.Diagnosis == nil {
			t.Fatalf("case %d (tenant %s) has no diagnosis", i, c.Tenant)
		}
		// The quota is exact: the server stops accepting at 10× and
		// every accepted snapshot is acked to exactly one agent.
		if c.Accepted != proto.DefaultFleetQuota {
			t.Errorf("case %d accepted %d snapshots, want exactly %d",
				i, c.Accepted, proto.DefaultFleetQuota)
		}
		if c.Uploaded < c.Accepted {
			t.Errorf("case %d uploaded %d < accepted %d", i, c.Uploaded, c.Accepted)
		}
		// Heavy-tailed reporting: at least as many failure reports as
		// agents, and with 60 agents/program the Pareto tail all but
		// surely produced a multi-reporter.
		if c.FailureReports < c.Agents {
			t.Errorf("case %d: %d failure reports < %d agents", i, c.FailureReports, c.Agents)
		}
		totalAgents += c.Agents
		totalAccepted += c.Accepted

		// Bit-identity: the published report matches a direct Diagnose
		// over the exact traces the server accepted for this case.
		failing, successes, ok := srv.FleetCaseTraces(c.Tenant, c.Case)
		if !ok {
			t.Fatalf("case %d: server has no trace record", i)
		}
		want, err := core.NewServer(programs[i].Fail).Diagnose(failing, successes)
		if err != nil {
			t.Fatalf("direct diagnose: %v", err)
		}
		assertSameDiagnosis(t, c.Diagnosis, want)
	}
	if totalAgents != agents {
		t.Errorf("case agent counts sum to %d, want %d", totalAgents, agents)
	}
	if res.Stats.Accepted != totalAccepted {
		t.Errorf("Stats.Accepted = %d, cases sum to %d", res.Stats.Accepted, totalAccepted)
	}
	if res.Stats.Uploaded < res.Stats.Accepted {
		t.Errorf("Stats.Uploaded = %d < Accepted = %d", res.Stats.Uploaded, res.Stats.Accepted)
	}
	if res.Stats.DirectiveP99 < res.Stats.DirectiveP50 || res.Stats.DirectiveP99 <= 0 {
		t.Errorf("directive latency p50=%v p99=%v not sane",
			res.Stats.DirectiveP50, res.Stats.DirectiveP99)
	}
	if res.Stats.AcceptedPerSec <= 0 || res.Stats.ReportsPerMin <= 0 {
		t.Errorf("rates not positive: %+v", res.Stats)
	}
}

// TestRunLoadStagger checks that program waves actually stagger: with
// a coarse Stagger the second program's case cannot publish before
// the first wave has had its head start.
func TestRunLoadStagger(t *testing.T) {
	programs := loadPrograms(t, "dbcp-1", "httpd-4")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := proto.NewServer(core.NewServer(programs[0].Fail))
	srv.IdleTimeout = 10 * time.Second
	srv.WriteTimeout = 10 * time.Second
	go srv.Serve(ln)

	stagger := 150 * time.Millisecond
	start := time.Now()
	res, err := fleet.RunLoad(fleet.LoadConfig{
		Dial:         func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) },
		Agents:       24,
		Programs:     programs,
		Concurrency:  16,
		PollInterval: time.Millisecond,
		Stagger:      stagger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < stagger {
		t.Errorf("run finished in %v, before the second wave's %v stagger", got, stagger)
	}
	for i, c := range res.Cases {
		if c.Diagnosis == nil {
			t.Fatalf("staggered case %d has no diagnosis", i)
		}
	}
}
