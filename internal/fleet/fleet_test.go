package fleet_test

import (
	"fmt"
	"net"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/faultnet"
	"snorlax/internal/fleet"
	"snorlax/internal/proto"
)

// fleetBugs is the e2e matrix: one deadlock and one atomicity
// violation, per the acceptance criteria.
var fleetBugs = []string{"dbcp-1", "httpd-4"}

// runFleet drives a ≥4-client fleet for one corpus bug and verifies
// the acceptance criteria: the case reaches the 10× quota through
// on-demand directives, and the published report is bit-identical to
// a direct Diagnose call on the exact traces the server accepted.
func runFleet(t *testing.T, bugID string, wrap func(net.Listener) net.Listener, dial func(addr string) func() (net.Conn, error)) {
	t.Helper()
	bug := corpus.ByID(bugID)
	if bug == nil {
		t.Fatalf("unknown corpus bug %q", bugID)
	}
	failInst := bug.Build(corpus.Variant{Failing: true})
	okInst := bug.Build(corpus.Variant{Failing: false})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	serveLn := ln
	if wrap != nil {
		serveLn = wrap(ln)
	}
	srv := proto.NewServer(core.NewServer(failInst.Mod))
	srv.IdleTimeout = 10 * time.Second
	srv.WriteTimeout = 10 * time.Second
	go srv.Serve(serveLn)

	res, err := fleet.Run(
		fleet.Program{Fail: failInst.Mod, OK: okInst.Mod},
		// Wire honors SNORLAX_WIRE so the CI fleet matrix drives the
		// same e2e once per codec (binary production path, gob oracle).
		fleet.Config{Dial: dial(ln.Addr().String()), Clients: 4, Wire: proto.WireFromEnv()})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Diagnosis
	if got == nil {
		t.Fatal("fleet returned no diagnosis")
	}

	// Quota: the server must have stopped at exactly 10× (§4.5), fed by
	// more than one agent's uploads.
	failing, successes, ok := srv.FleetCaseTraces(res.Tenant, res.Case)
	if !ok {
		t.Fatalf("server has no case %d for tenant %s", res.Case, res.Tenant)
	}
	if len(successes) != proto.DefaultFleetQuota {
		t.Fatalf("server accepted %d success traces, want the %d× quota",
			len(successes), proto.DefaultFleetQuota)
	}
	if res.Accepted != proto.DefaultFleetQuota {
		t.Errorf("agents saw %d accepted uploads, want %d", res.Accepted, proto.DefaultFleetQuota)
	}

	// Bit-identity: a direct Diagnose on the same traces must produce
	// the same verdict, scores included (timing stats excluded).
	want, err := core.NewServer(failInst.Mod).Diagnose(failing, successes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Scores, want.Scores) {
		t.Errorf("fleet scores diverge from direct diagnosis:\n got %v\nwant %v", got.Scores, want.Scores)
	}
	if !reflect.DeepEqual(got.Best, want.Best) || got.Unique != want.Unique {
		t.Errorf("fleet best = %v (unique=%v), direct = %v (unique=%v)",
			got.Best, got.Unique, want.Best, want.Unique)
	}
	if got.AnchorPC != want.AnchorPC {
		t.Errorf("fleet anchor = %d, direct = %d", got.AnchorPC, want.AnchorPC)
	}
	if got.Stats.SuccessTraces != want.Stats.SuccessTraces ||
		got.Stats.DroppedSuccesses != want.Stats.DroppedSuccesses {
		t.Errorf("fleet used %d traces (%d dropped), direct %d (%d dropped)",
			got.Stats.SuccessTraces, got.Stats.DroppedSuccesses,
			want.Stats.SuccessTraces, want.Stats.DroppedSuccesses)
	}

	// The fleet path must still find the developer's root cause.
	truth := core.Truth{Kind: failInst.TruthKind, Sub: failInst.TruthSub,
		PCs: failInst.TruthPCs, Absence: failInst.TruthAbsence}
	if !core.MatchesTruth(got.Best.Pattern, truth) {
		t.Errorf("fleet diagnosis %v does not match ground truth", got.Best.Pattern.Key())
	}

	// Registry gauges: the one case is published, nothing left armed.
	reg := srv.Metrics()
	if v := reg.Find(proto.MetricFleetTenants).Gauge.Value(); v != 1 {
		t.Errorf("fleet tenants gauge = %d, want 1", v)
	}
	if v := reg.Find(proto.MetricFleetArmedDirectives).Gauge.Value(); v != 0 {
		t.Errorf("armed directives gauge = %d, want 0", v)
	}
	if v := reg.Find(proto.MetricFleetReports).Counter.Value(); v != 1 {
		t.Errorf("published reports counter = %d, want 1", v)
	}
}

func plainDial(addr string) func() (net.Conn, error) {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

func TestFleetEndToEnd(t *testing.T) {
	for _, bugID := range fleetBugs {
		t.Run(bugID, func(t *testing.T) {
			runFleet(t, bugID, nil, plainDial)
		})
	}
}

// chaosSeeds returns the fault seed matrix: SNORLAX_FAULT_SEED pins a
// single seed (the CI fleet job sets it), otherwise {1}.
func chaosSeeds(t *testing.T) []int64 {
	if s := os.Getenv("SNORLAX_FAULT_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SNORLAX_FAULT_SEED=%q: %v", s, err)
		}
		return []int64{v}
	}
	return []int64{1}
}

// TestFleetChaos reruns the e2e flow through a faulty network: the
// idempotent fleet protocol (fingerprint registration, per-PC case
// join, sequence-deduplicated batches) must absorb dropped, stalled,
// truncated and corrupted writes and still publish a report
// bit-identical to the direct diagnosis of the accepted traces.
func TestFleetChaos(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := faultnet.New(faultnet.Config{
				Seed: seed, FaultEvery: 3, MaxFaults: 8, Stall: 2 * time.Millisecond})
			wrap := func(ln net.Listener) net.Listener { return inj.Listener(ln) }
			dial := func(addr string) func() (net.Conn, error) {
				return inj.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) })
			}
			runFleet(t, "httpd-4", wrap, dial)
			if inj.Stats().Total() == 0 {
				t.Error("chaos run fired no faults; the schedule is miswired")
			}
		})
	}
}
