package traceproc

import (
	"math/rand"
	"testing"

	"snorlax/internal/ir"
	"snorlax/internal/pt"
)

func ev(tid, seq int, pc ir.PC, time, uncert int64) DynEvent {
	return DynEvent{Tid: tid, Seq: seq, PC: pc, Time: time, Uncert: uncert}
}

func TestBeforeSameThreadUsesSequence(t *testing.T) {
	a := ev(1, 0, 10, 100, 1000)
	b := ev(1, 1, 11, 100, 1000) // identical times, later seq
	if !Before(a, b) || Before(b, a) {
		t.Error("same-thread order must follow sequence numbers")
	}
}

func TestBeforeCrossThreadNeedsDisjointWindows(t *testing.T) {
	a := ev(1, 0, 10, 100, 50)
	b := ev(2, 0, 11, 200, 50)
	if !Before(a, b) {
		t.Error("disjoint windows must order")
	}
	// Overlapping windows: unordered.
	c := ev(2, 0, 11, 120, 50)
	if Before(a, c) || Before(c, a) {
		t.Error("overlapping windows must be unordered")
	}
	if Ordered(a, c) {
		t.Error("Ordered must be false for overlap")
	}
	if !Ordered(a, b) {
		t.Error("Ordered must be true for disjoint")
	}
}

func TestBeforeBoundary(t *testing.T) {
	// Window [100,150] vs time 150: touching → unordered (conservative).
	a := ev(1, 0, 10, 100, 50)
	b := ev(2, 0, 11, 150, 50)
	if Before(a, b) {
		t.Error("touching windows must not order")
	}
	b2 := ev(2, 0, 11, 151, 50)
	if !Before(a, b2) {
		t.Error("just-disjoint windows must order")
	}
}

func TestProcessMergesAndSorts(t *testing.T) {
	t1 := &pt.ThreadTrace{Tid: 0, Instrs: []pt.DynInstr{
		{PC: 5, Time: 100, Uncert: 10},
		{PC: 6, Time: 300, Uncert: 10},
	}}
	t2 := &pt.ThreadTrace{Tid: 1, Instrs: []pt.DynInstr{
		{PC: 7, Time: 200, Uncert: 10},
	}}
	scope, tr := Process([]*pt.ThreadTrace{t1, t2})
	if len(scope) != 3 {
		t.Fatalf("scope size = %d", len(scope))
	}
	if !scope[5] || !scope[6] || !scope[7] {
		t.Error("scope missing PCs")
	}
	if len(tr.Events) != 3 {
		t.Fatalf("events = %d", len(tr.Events))
	}
	wantOrder := []ir.PC{5, 7, 6}
	for i, want := range wantOrder {
		if tr.Events[i].PC != want {
			t.Errorf("event %d PC = %d, want %d", i, tr.Events[i].PC, want)
		}
	}
}

func TestInstancesQueries(t *testing.T) {
	t1 := &pt.ThreadTrace{Tid: 0, Instrs: []pt.DynInstr{
		{PC: 5, Time: 100}, {PC: 5, Time: 200}, {PC: 9, Time: 300},
	}}
	t2 := &pt.ThreadTrace{Tid: 1, Instrs: []pt.DynInstr{
		{PC: 5, Time: 250},
	}}
	_, tr := Process([]*pt.ThreadTrace{t1, t2})
	if got := len(tr.InstancesOf(5)); got != 3 {
		t.Errorf("InstancesOf(5) = %d, want 3", got)
	}
	last, ok := tr.LastInstanceOf(5)
	if !ok || last.Time != 250 || last.Tid != 1 {
		t.Errorf("LastInstanceOf(5) = %+v", last)
	}
	lastIn, ok := tr.LastInstanceOfIn(5, 0)
	if !ok || lastIn.Time != 200 {
		t.Errorf("LastInstanceOfIn(5, 0) = %+v", lastIn)
	}
	if _, ok := tr.LastInstanceOf(99); ok {
		t.Error("LastInstanceOf(99) should miss")
	}
	threads := tr.Threads()
	if len(threads) != 2 || threads[0] != 0 || threads[1] != 1 {
		t.Errorf("Threads() = %v", threads)
	}
	mem := tr.Filter(func(e DynEvent) bool { return e.PC == 9 })
	if len(mem) != 1 {
		t.Errorf("Filter = %v", mem)
	}
}

func TestSeqAssignedPerThread(t *testing.T) {
	t1 := &pt.ThreadTrace{Tid: 4, Instrs: []pt.DynInstr{
		{PC: 1, Time: 100}, {PC: 2, Time: 50}, // decoder order wins per thread
	}}
	_, tr := Process([]*pt.ThreadTrace{t1})
	// Event sorted by time puts PC2 first, but Seq keeps program order.
	a := tr.Events[0]
	b := tr.Events[1]
	if a.PC != 2 || b.PC != 1 {
		t.Fatalf("sort order wrong: %v %v", a, b)
	}
	if !Before(b, a) {
		// b has Seq 0, a has Seq 1 → b before a despite timestamps.
		t.Error("same-thread sequence must dominate timestamps")
	}
}

func TestBeforeIsStrictPartialOrder(t *testing.T) {
	// Property: Before is irreflexive and asymmetric over arbitrary
	// events (the partial order's soundness requirements).
	rng := rand.New(rand.NewSource(42))
	events := make([]DynEvent, 60)
	for i := range events {
		events[i] = DynEvent{
			Tid:    rng.Intn(4),
			Seq:    rng.Intn(20),
			PC:     ir.PC(rng.Intn(10)),
			Time:   int64(rng.Intn(1000)),
			Uncert: int64(rng.Intn(200)),
		}
	}
	for _, a := range events {
		if a.Tid >= 0 && Before(a, a) {
			t.Fatalf("Before reflexive for %+v", a)
		}
		for _, b := range events {
			if a == b {
				continue
			}
			if Before(a, b) && Before(b, a) {
				t.Fatalf("Before symmetric for %+v / %+v", a, b)
			}
		}
	}
}

func TestBeforeTransitiveCrossThread(t *testing.T) {
	// Cross-thread Before is transitive when uncertainty windows are
	// nonnegative: disjointness chains.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		mk := func(tid int) DynEvent {
			return DynEvent{Tid: tid, Time: int64(rng.Intn(500)), Uncert: int64(rng.Intn(100))}
		}
		a, b, c := mk(0), mk(1), mk(2)
		if Before(a, b) && Before(b, c) && !Before(a, c) {
			t.Fatalf("cross-thread transitivity broken: %+v %+v %+v", a, b, c)
		}
	}
}
