// Package traceproc implements trace processing — steps 2 and 3 of
// Lazy Diagnosis (Figure 2 of the Snorlax paper).
//
// Step 2 turns decoded control-flow traces into the set of executed
// static instructions, which scope-restricts the hybrid points-to
// analysis (§4.2). Step 3 turns the same traces plus their coarse
// timing into a partially-ordered dynamic instruction trace: dynamic
// instruction instances across threads are ordered only when their
// timestamp uncertainty windows do not overlap. Per the coarse
// interleaving hypothesis, that partial order is enough to order the
// target events of real concurrency bugs.
package traceproc

import (
	"sort"

	"snorlax/internal/ir"
	"snorlax/internal/pointsto"
	"snorlax/internal/pt"
)

// DynEvent is one dynamic instruction instance in the merged trace.
type DynEvent struct {
	// Tid is the executing thread.
	Tid int
	// Seq is the instance's position within its thread's decoded
	// stream (program order).
	Seq int
	// PC identifies the static instruction.
	PC ir.PC
	// Time and Uncert are the reconstructed timestamp window
	// [Time, Time+Uncert].
	Time   int64
	Uncert int64
}

// Trace is the partially-ordered dynamic instruction trace.
type Trace struct {
	// Events holds all threads' events sorted by Time (ties broken
	// by thread then sequence, for determinism).
	Events []DynEvent
}

// Process runs steps 2 and 3 on decoded thread traces, returning the
// executed-instruction scope and the merged dynamic trace.
func Process(traces []*pt.ThreadTrace) (pointsto.Scope, *Trace) {
	scope := make(pointsto.Scope)
	total := 0
	for _, tt := range traces {
		total += len(tt.Instrs)
	}
	events := make([]DynEvent, 0, total)
	for _, tt := range traces {
		for seq, di := range tt.Instrs {
			scope[di.PC] = true
			events = append(events, DynEvent{
				Tid:    tt.Tid,
				Seq:    seq,
				PC:     di.PC,
				Time:   di.Time,
				Uncert: di.Uncert,
			})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Seq < b.Seq
	})
	return scope, &Trace{Events: events}
}

// Before reports whether a is ordered before b in the partial order:
// within a thread, decoded program order; across threads, only when
// a's uncertainty window ends before b's begins. This conservative
// cross-thread rule is what makes the order partial — and per the
// coarse interleaving hypothesis, target events of real bugs are
// separated by far more than the window width.
func Before(a, b DynEvent) bool {
	if a.Tid == b.Tid {
		return a.Seq < b.Seq
	}
	return a.Time+a.Uncert < b.Time
}

// Ordered reports whether a and b are comparable in the partial order.
func Ordered(a, b DynEvent) bool {
	return Before(a, b) || Before(b, a)
}

// InstancesOf returns the dynamic instances of the given static
// instruction, in merged-trace order.
func (t *Trace) InstancesOf(pc ir.PC) []DynEvent {
	var out []DynEvent
	for _, ev := range t.Events {
		if ev.PC == pc {
			out = append(out, ev)
		}
	}
	return out
}

// LastInstanceOf returns the latest dynamic instance of pc, or false.
func (t *Trace) LastInstanceOf(pc ir.PC) (DynEvent, bool) {
	for i := len(t.Events) - 1; i >= 0; i-- {
		if t.Events[i].PC == pc {
			return t.Events[i], true
		}
	}
	return DynEvent{}, false
}

// LastInstanceOfIn returns the latest instance of pc executed by tid.
func (t *Trace) LastInstanceOfIn(pc ir.PC, tid int) (DynEvent, bool) {
	for i := len(t.Events) - 1; i >= 0; i-- {
		if t.Events[i].PC == pc && t.Events[i].Tid == tid {
			return t.Events[i], true
		}
	}
	return DynEvent{}, false
}

// Filter returns the events satisfying keep, preserving order.
func (t *Trace) Filter(keep func(DynEvent) bool) []DynEvent {
	var out []DynEvent
	for _, ev := range t.Events {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// Threads returns the distinct thread ids present, ascending.
func (t *Trace) Threads() []int {
	seen := map[int]bool{}
	for _, ev := range t.Events {
		seen[ev.Tid] = true
	}
	out := make([]int, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}
