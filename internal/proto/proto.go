// Package proto implements the client↔server protocol of the deployed
// system (Figure 2): production clients stream failure reports and
// trace snapshots to an analysis server; the server arms trace
// triggers for successful executions and returns diagnoses.
//
// Messages travel over any net.Conn in the length-prefixed binary
// wire format (internal/wire): CRC32C-checksummed frames, explicit
// per-field encoding, and streaming snapshot upload — a request's
// ring bytes follow its envelope as bounded chunk frames, which the
// server feeds through the pt packet scanner while the snapshot is
// still arriving. A connection declares the binary codec with a
// 5-byte preamble; connections that send none are served by the
// legacy gob codec (deprecated — kept this PR as the
// differential-testing oracle, deleted once the chaos matrix proves
// the codecs bit-identical). Protocol state lives in the connection —
// one failure, its successful traces, one diagnosis request — while
// the shared core.Server carries the cross-connection analysis cache.
// Each connection runs in its own goroutine; diagnoses are bounded by
// a server-wide semaphore so a burst of clients queues instead of
// oversubscribing the host.
//
// The server is built to survive a production fleet: per-message read
// and write deadlines, per-message and per-snapshot byte caps enforced
// before a request is even decoded, per-connection success-trace caps,
// panic recovery around every handler, backoff on transient accept
// errors, and a graceful Shutdown that drains in-flight diagnoses.
// Recoverable protocol errors ("unknown request", an oversize
// snapshot) get an "error" reply and the connection keeps serving;
// only transport and decode failures disconnect, because a gob stream
// cannot be resynchronized mid-message.
package proto

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/obs"
	"snorlax/internal/pt"
	"snorlax/internal/store"
	"snorlax/internal/wire"
)

// Request is a client→server message.
type Request struct {
	// Kind is "failure", "success", "diagnose" or "status" for the
	// single-program session protocol, or "register", "fleet-failure",
	// "directives", "batch" or "report" for fleet mode (see fleet.go).
	Kind string
	// Failure accompanies "failure" and "fleet-failure" requests.
	Failure *core.FailureReport
	// Snapshot accompanies "failure", "success" and "fleet-failure"
	// requests.
	Snapshot *pt.Snapshot
	// ModuleText is the canonical IR text of the program being
	// registered ("register" requests).
	ModuleText string
	// Tenant scopes fleet requests to a registered program.
	Tenant TenantID
	// Case identifies the diagnosis case ("batch", "report").
	Case CaseID
	// Client names the uploading agent and Seq is the 1-based sequence
	// number of Snapshots[0] in that agent's per-case upload stream;
	// together they deduplicate replayed batches ("batch" requests).
	Client string
	Seq    uint64
	// Snapshots carries a batch of triggered success snapshots
	// ("batch" requests).
	Snapshots []*pt.Snapshot
	// RoutePC is the routing hint for sharded deployments: the case's
	// trigger (failure) PC, which together with Tenant forms the
	// consistent-hash routing key. Routed distinguishes an explicit
	// PC 0 from an unset hint. The server itself ignores both; the
	// shard router routes "batch" and "report" requests by them.
	RoutePC ir.PC
	Routed  bool
}

// Response is a server→client message.
type Response struct {
	// Kind is "armed", "ack", "diagnosis", "status" or "error" for the
	// session protocol, or "registered", "case", "directives", "batch"
	// or "report" for fleet mode.
	Kind string
	// TriggerPC tells the client where to snapshot successful
	// executions ("armed" responses).
	TriggerPC ir.PC
	// Diagnosis accompanies "diagnosis" and "report" responses (nil on
	// a "report" response whose case is still collecting).
	Diagnosis *core.Diagnosis
	// Status accompanies "status" responses.
	Status *ServerStatus
	// Err describes "error" responses; Code, when set, classifies
	// them machine-readably (see the Code* constants) so a router can
	// distinguish "this shard does not own that case" from a real
	// rejection without parsing prose.
	Err  string
	Code string
	// Tenant and Case echo the fleet scope ("registered", "case",
	// "directives", "batch", "report" responses).
	Tenant TenantID
	Case   CaseID
	// Directives carries the armed collection directives ("case" and
	// "directives" responses).
	Directives []Directive
	// Accepted counts batch snapshots newly admitted toward the quota;
	// Done reports whether the case's diagnosis is published ("case",
	// "batch" and "report" responses).
	Accepted int
	Done     bool
	// Seq, on "batch" responses, is the uploading client's ledger
	// high-water mark after this batch — the highest sequence number
	// credited toward the quota for this (client, case). Replays
	// return the same mark as the original, so an agent whose reply
	// was lost in transit reconciles its accepted count against Seq
	// instead of double- or under-counting. 0 means no mark is
	// available (the case closed and its ledger was pruned).
	Seq uint64
}

// Machine-readable error codes on "error" responses.
const (
	// CodeUnknownTenant rejects a fleet request naming a tenant this
	// server has not registered.
	CodeUnknownTenant = "unknown-tenant"
	// CodeUnknownCase rejects a fleet request naming a case this
	// server has not opened. On a sharded deployment it also means
	// "not my shard" — the router's fallback scan keys off it.
	CodeUnknownCase = "unknown-case"
)

// ServerError is an "error" reply from the server: a deterministic
// protocol-level rejection (unknown request, oversize snapshot,
// failed diagnosis), not a transport failure. Retrying clients do not
// retry these — resending the same request would be rejected again.
type ServerError struct {
	Msg string
	// Code classifies the rejection when the server set one (the
	// Code* constants); "" otherwise.
	Code string
}

func (e *ServerError) Error() string { return "proto: server: " + e.Msg }

// ServerStatus is the server's concurrency and pipeline state — the
// operational counters behind the queue-depth, cache and degradation
// questions an operator asks of a loaded diagnosis server.
type ServerStatus struct {
	// OpenConns counts currently connected clients.
	OpenConns int64
	// ActiveDiagnoses counts diagnoses running right now.
	ActiveDiagnoses int64
	// QueuedDiagnoses counts diagnoses waiting on the semaphore.
	QueuedDiagnoses int64
	// CompletedDiagnoses and FailedDiagnoses are cumulative.
	CompletedDiagnoses uint64
	FailedDiagnoses    uint64
	// MaxConcurrent is the effective diagnosis semaphore width.
	MaxConcurrent int
	// Workers is the core server's success-trace pool size.
	Workers int
	// CacheHits and CacheMisses are the core server's cumulative
	// points-to cache counters.
	CacheHits, CacheMisses uint64
	// DiagnoseTime is cumulative wall time spent inside Diagnose.
	DiagnoseTime time.Duration
	// DroppedSuccesses counts success traces the core server skipped
	// as undecodable during degraded-mode diagnosis.
	DroppedSuccesses uint64
	// DeadlineDrops counts connections dropped for blowing a read or
	// write deadline.
	DeadlineDrops uint64
	// OversizeRejects counts messages and snapshots rejected for
	// exceeding the configured byte caps.
	OversizeRejects uint64
	// PanicsRecovered counts panics caught in connection handlers and
	// diagnoses — poisoned traces that would otherwise have killed
	// the server.
	PanicsRecovered uint64
}

// Byte-cap defaults. A 64 KB-per-thread ring snapshot from a program
// with a few dozen threads is a few MB; the default leaves an order
// of magnitude of headroom while still stopping a runaway client long
// before the server's memory is at stake.
const (
	// DefaultMaxSnapshotBytes caps the total ring bytes of one
	// uploaded snapshot. The rule itself — both its tiers — lives in
	// wire.Limits, shared with the shard router.
	DefaultMaxSnapshotBytes = wire.DefaultMaxSnapshotBytes
	// DefaultMaxSuccessesPerConn caps success traces spooled by one
	// connection.
	DefaultMaxSuccessesPerConn = 1024
)

// Server serves diagnosis requests for one module.
type Server struct {
	Core *core.Server
	// MaxConcurrent bounds simultaneous Diagnose calls across all
	// connections; 0 means runtime.GOMAXPROCS(0). Further requests
	// queue (and are counted as queued in the status response).
	MaxConcurrent int
	// IdleTimeout bounds how long the server waits for the next
	// request on an open connection; 0 means wait forever.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write; 0 means no deadline.
	WriteTimeout time.Duration
	// MaxSnapshotBytes caps the total ring bytes of one uploaded
	// snapshot; 0 means DefaultMaxSnapshotBytes, negative means
	// unlimited. A snapshot over the cap (but within the decode-layer
	// frame limit) gets an "error" reply and the connection keeps
	// serving; a message so large it trips the frame limit closes the
	// connection, since a half-read gob stream cannot be resumed.
	MaxSnapshotBytes int64
	// MaxSuccessesPerConn caps success traces spooled for a
	// connection's current diagnosis session; each new failure report
	// starts a fresh spool, so it bounds live memory, not the
	// connection's lifetime total. 0 means DefaultMaxSuccessesPerConn,
	// negative means unlimited. Excess uploads get an "error" reply and
	// are not spooled.
	MaxSuccessesPerConn int
	// FleetQuota is the per-case success-trace quota in fleet mode;
	// 0 means DefaultFleetQuota (the paper's 10×).
	FleetQuota int
	// CaseBase offsets this server's case numbering: the first case
	// opened gets CaseBase+1. In a sharded deployment each shard gets
	// a disjoint base (say shard i << 32), so case ids are unique
	// fleet-wide and a merged directive listing is unambiguous.
	CaseBase uint64
	// DisableRegistration rejects client "register" requests, limiting
	// fleet mode to programs pre-registered with RegisterProgram.
	DisableRegistration bool
	// Store, when non-nil, is the durable case store: every fleet
	// state transition (registration, case open, trace accept, quota,
	// publish, close) is logged to it before being acknowledged to a
	// client, and Shutdown flushes and closes it before returning. nil
	// keeps fleet state in memory only. Set it — and Restore the
	// recovered state — before serving.
	Store store.Store

	once sync.Once
	sem  chan struct{}

	// fleetMu guards the tenant registry and every case inside it
	// (see fleet.go).
	fleetMu sync.Mutex
	tenants map[TenantID]*tenant

	// om holds the registry handles every operational counter lives
	// in; the registry itself belongs to Core, so protocol, pipeline
	// and cache metrics scrape as one surface (see obs.go). Status()
	// is a read-only view over these handles.
	om *protoMetrics

	// shutdown flips once Shutdown begins; handlers exit between
	// requests and Serve loops return instead of re-accepting.
	shutdown atomic.Bool
	// restored flips when Restore completes; Ready gates on it for
	// servers with a durable store.
	restored atomic.Bool
	// mu guards the listener and connection registries Shutdown
	// drains.
	mu         sync.Mutex
	listeners  map[net.Listener]struct{}
	connStates map[*connState]struct{}
}

// connState tracks one live connection for Shutdown: busy is set
// while a request is being served, so draining closes only
// between-request (idle) connections and lets in-flight diagnoses
// finish.
type connState struct {
	conn net.Conn
	busy atomic.Bool
}

// NewServer wraps a core analysis server.
func NewServer(c *core.Server) *Server { return &Server{Core: c} }

func (s *Server) init() {
	s.once.Do(func() {
		n := s.MaxConcurrent
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.MaxConcurrent = n
		s.sem = make(chan struct{}, n)
		s.om = newProtoMetrics(s.Core.Metrics())
		s.om.maxConcurrent.Set(int64(n))
		workers := s.Core.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		s.om.workers.Set(int64(workers))
	})
}

// Metrics returns the registry behind the server's counters — the
// same one core.Server.Metrics() yields — after ensuring the protocol
// metrics are registered on it.
func (s *Server) Metrics() *obs.Registry {
	s.init()
	return s.Core.Metrics()
}

func (s *Server) maxSnapshotBytes() int64 {
	return wire.Limits{MaxSnapshotBytes: s.MaxSnapshotBytes}.SnapshotCap()
}

func (s *Server) maxSuccesses() int {
	switch {
	case s.MaxSuccessesPerConn < 0:
		return 0 // unlimited
	case s.MaxSuccessesPerConn == 0:
		return DefaultMaxSuccessesPerConn
	}
	return s.MaxSuccessesPerConn
}

// frameLimit is the decode-layer cap on one message: past this, the
// connection dies rather than the server's heap. The two-tier rule is
// wire.Limits, shared verbatim with the shard router.
func (s *Server) frameLimit() int64 {
	return wire.Limits{MaxSnapshotBytes: s.MaxSnapshotBytes}.FrameLimit()
}

// snapshotBytes totals a snapshot's ring payload.
func snapshotBytes(snap *pt.Snapshot) int64 {
	if snap == nil {
		return 0
	}
	var n int64
	for _, th := range snap.Threads {
		n += int64(len(th.Data))
	}
	return n
}

// diagnose runs one bounded diagnosis on the given analysis server
// (s.Core for the session protocol, a tenant's core in fleet mode),
// maintaining the queue/active counters the status response reports.
// A panicking diagnosis — a poisoned failing trace driving the
// analysis somewhere impossible — is recovered into an error so the
// connection (and server) survive.
func (s *Server) diagnose(cs *core.Server, failing *core.RunReport, successes []*core.RunReport) (d *core.Diagnosis, err error) {
	s.init()
	s.om.queued.Inc()
	s.sem <- struct{}{}
	s.om.queued.Dec()
	s.om.active.Inc()
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			s.om.panicsRecovered.Inc()
			d, err = nil, fmt.Errorf("diagnosis panicked: %v", p)
		}
		s.om.diagnoseSeconds.ObserveDuration(time.Since(start))
		s.om.active.Dec()
		<-s.sem
		if err != nil {
			s.om.failed.Inc()
		} else {
			s.om.completed.Inc()
		}
	}()
	return cs.Diagnose(failing, successes)
}

// Status snapshots the server's counters. Every field is read from
// the metrics registry (directly, or through the core server's
// registry-backed accessors), so a status reply and a /metrics scrape
// of a quiesced server always agree — the consistency the obs test
// suite asserts.
func (s *Server) Status() ServerStatus {
	s.init()
	hits, misses := s.Core.CacheStats()
	return ServerStatus{
		OpenConns:          s.om.openConns.Value(),
		ActiveDiagnoses:    s.om.active.Value(),
		QueuedDiagnoses:    s.om.queued.Value(),
		CompletedDiagnoses: s.om.completed.Value(),
		FailedDiagnoses:    s.om.failed.Value(),
		MaxConcurrent:      int(s.om.maxConcurrent.Value()),
		Workers:            int(s.om.workers.Value()),
		CacheHits:          hits,
		CacheMisses:        misses,
		DiagnoseTime:       s.om.diagnoseSeconds.SumDuration(),
		DroppedSuccesses:   s.Core.DroppedSuccessCount(),
		DeadlineDrops:      s.om.deadlineDrops.Value(),
		OversizeRejects:    s.om.oversizeRejects.Value(),
		PanicsRecovered:    s.om.panicsRecovered.Value(),
	}
}

// Ready reports whether the server can usefully accept traffic: it
// is not draining, recovery (Restore) has completed when a durable
// store is configured, and the store has not been poisoned by a
// write error. The error says which condition failed — the payload
// of the /readyz endpoint and the router's health checks.
func (s *Server) Ready() error {
	if s.shutdown.Load() {
		return errors.New("proto: server is draining")
	}
	if s.Store != nil {
		if !s.restored.Load() {
			return errors.New("proto: durable state not yet restored")
		}
		if err := s.Store.Err(); err != nil {
			return fmt.Errorf("proto: durable store poisoned: %w", err)
		}
	}
	return nil
}

// Serve accepts connections until the listener closes or Shutdown is
// called. Transient accept errors (in the net.Error Temporary sense —
// EMFILE, ECONNABORTED) back off with capped exponential delay and
// retry, mirroring net/http; only persistent errors return.
func (s *Server) Serve(ln net.Listener) error {
	s.init()
	if !s.trackListener(ln) {
		ln.Close()
		return nil
	}
	defer s.untrackListener(ln)
	var delay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.shutdown.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() {
				s.om.acceptRetries.Inc()
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else {
					delay *= 2
				}
				if delay > time.Second {
					delay = time.Second
				}
				time.Sleep(delay)
				continue
			}
			return err
		}
		delay = 0
		go s.handle(conn)
	}
}

// Shutdown stops accepting new connections and drains the server:
// idle connections are closed immediately, connections serving a
// request (a running diagnosis) are allowed to finish it, after which
// their handlers exit. Once drained — or once ctx expires and the
// stragglers are force-closed — the durable store (if any) is flushed,
// fsynced and closed, so every transition the server acknowledged is
// on disk before Shutdown returns. Shutdown returns nil after a clean
// drain with a clean flush; otherwise the drain and store errors are
// joined.
func (s *Server) Shutdown(ctx context.Context) error {
	s.init()
	s.shutdown.Store(true)
	s.mu.Lock()
	for ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()

	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		if s.closeIdleConns() == 0 {
			return s.syncStore(nil)
		}
		select {
		case <-ctx.Done():
			s.mu.Lock()
			for st := range s.connStates {
				st.conn.Close()
			}
			s.mu.Unlock()
			return s.syncStore(ctx.Err())
		case <-ticker.C:
		}
	}
}

// syncStore ends a drain by flushing and closing the durable store.
// Store errors — including a sticky error from an earlier append or
// background flush nobody was positioned to see — join the drain
// error rather than being masked by it.
func (s *Server) syncStore(drainErr error) error {
	if s.Store == nil {
		return drainErr
	}
	return errors.Join(drainErr, s.Store.Flush(), s.Store.Close())
}

// closeIdleConns closes every tracked connection not currently serving
// a request and returns how many connections remain tracked.
func (s *Server) closeIdleConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for st := range s.connStates {
		if !st.busy.Load() {
			st.conn.Close()
		}
	}
	return len(s.connStates)
}

func (s *Server) trackListener(ln net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown.Load() {
		return false
	}
	if s.listeners == nil {
		s.listeners = make(map[net.Listener]struct{})
	}
	s.listeners[ln] = struct{}{}
	return true
}

func (s *Server) untrackListener(ln net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, ln)
}

func (s *Server) trackConn(st *connState) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown.Load() {
		return false
	}
	if s.connStates == nil {
		s.connStates = make(map[*connState]struct{})
	}
	s.connStates[st] = struct{}{}
	return true
}

func (s *Server) untrackConn(st *connState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.connStates, st)
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handle negotiates the wire codec — a binary preamble selects the
// frame protocol, its absence the legacy gob stream — and runs the
// matching serve loop. Both loops share serveRequest, so admission
// semantics cannot diverge between codecs.
func (s *Server) handle(conn net.Conn) {
	s.init() // handle is also an entry point (pipe transports in tests)
	st := &connState{conn: conn}
	if !s.trackConn(st) {
		conn.Close()
		return
	}
	defer s.untrackConn(st)
	s.om.openConns.Inc()
	defer s.om.openConns.Dec()
	defer conn.Close()
	cr := &countingReader{r: conn, c: s.om.rxBytes}
	cw := &countingWriter{w: conn, c: s.om.txBytes}
	br := bufio.NewReaderSize(cr, 32<<10)
	if s.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
	}
	version, binaryMode, err := wire.ReadPreamble(br)
	if err != nil {
		if isTimeout(err) {
			s.om.deadlineDrops.Inc()
		}
		return
	}
	if binaryMode {
		s.handleBinary(conn, st, br, cr, cw, version)
	} else {
		s.handleGob(conn, st, br, cr, cw)
	}
}

// handleGob serves a legacy gob connection. Deprecated along with the
// codec itself: this loop is the differential-testing oracle and goes
// away when gob does.
func (s *Server) handleGob(conn net.Conn, st *connState, br *bufio.Reader, cr *countingReader, cw *countingWriter) {
	cr.codec = s.om.wireRx[codecGob]
	cw.codec = s.om.wireTx[codecGob]
	s.om.wireConns[codecGob].Inc()
	lim := &wire.LimitedReader{R: br, Limit: s.frameLimit()}
	dec := gob.NewDecoder(lim)
	enc := gob.NewEncoder(cw)

	var failing *core.RunReport
	var successes []*core.RunReport

	reply := func(r Response) bool {
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		err := enc.Encode(r)
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Time{})
		}
		if isTimeout(err) {
			s.om.deadlineDrops.Inc()
		}
		return err == nil
	}
	// Last-resort panic recovery: a request that drives the handler
	// somewhere impossible costs its own connection, never the server.
	defer func() {
		if p := recover(); p != nil {
			s.om.panicsRecovered.Inc()
			reply(Response{Kind: "error", Err: fmt.Sprintf("internal error: %v", p)})
		}
	}()
	for {
		if s.shutdown.Load() {
			return
		}
		if s.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		lim.Reset()
		var req Request
		if err := dec.Decode(&req); err != nil {
			switch {
			case lim.Tripped():
				// The stream is poisoned mid-message; say why, then
				// disconnect.
				s.om.oversizeRejects.Inc()
				s.om.frameErrors[frameErrLimit].Inc()
				reply(Response{Kind: "error", Err: "message exceeds frame limit"})
			case isTimeout(err):
				s.om.deadlineDrops.Inc()
			}
			return // transport/decode failure: the stream is unusable
		}
		st.busy.Store(true)
		reqStart := time.Now()
		keep := s.serveRequest(req, &failing, &successes, reply)
		s.om.observeRequest(req.Kind, time.Since(reqStart))
		st.busy.Store(false)
		if !keep {
			return
		}
	}
}

// handleBinary serves a binary-framed connection: requests stream in
// as an envelope plus chunk frames (pt packets scanned as they
// arrive), responses go out as single frames through a pooled,
// coalescing writer — the near-zero-alloc accept path.
func (s *Server) handleBinary(conn net.Conn, st *connState, br *bufio.Reader, cr *countingReader, cw *countingWriter, version byte) {
	cr.codec = s.om.wireRx[codecBinary]
	cw.codec = s.om.wireTx[codecBinary]
	s.om.wireConns[codecBinary].Inc()
	r := wire.NewReader(br, s.frameLimit())
	defer r.Release()
	w := wire.NewWriter(cw)
	defer w.Release()

	var failing *core.RunReport
	var successes []*core.RunReport

	reply := func(resp Response) bool {
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		err := writeBinaryResponse(w, &resp)
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Time{})
		}
		if isTimeout(err) {
			s.om.deadlineDrops.Inc()
		}
		return err == nil
	}
	if version != wire.Version1 {
		reply(Response{Kind: "error", Err: fmt.Sprintf("unsupported wire version 0x%02x", version)})
		return
	}
	defer func() {
		if p := recover(); p != nil {
			s.om.panicsRecovered.Inc()
			reply(Response{Kind: "error", Err: fmt.Sprintf("internal error: %v", p)})
		}
	}()
	for {
		if s.shutdown.Load() {
			return
		}
		if s.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		req, packets, scanErrs, err := readBinaryRequest(r, s.frameLimit())
		if err != nil {
			switch {
			case errors.Is(err, wire.ErrFrameTooLarge):
				// Same two-tier rule as the gob path: a message past
				// the frame limit earns the reply, then the close.
				s.om.oversizeRejects.Inc()
				s.om.frameErrors[frameErrLimit].Inc()
				reply(Response{Kind: "error", Err: "message exceeds frame limit"})
			case errors.Is(err, wire.ErrPayloadCorrupt):
				s.om.frameErrors[frameErrPayload].Inc()
			case errors.Is(err, wire.ErrHeaderCorrupt):
				s.om.frameErrors[frameErrHeader].Inc()
			case errors.Is(err, wire.ErrDecode):
				s.om.frameErrors[frameErrDecode].Inc()
			case isTimeout(err):
				s.om.deadlineDrops.Inc()
			case errors.Is(err, io.ErrUnexpectedEOF):
				s.om.frameErrors[frameErrTruncated].Inc()
			}
			return // transport/decode failure: the stream is unusable
		}
		if packets > 0 {
			s.om.streamedPackets.Add(uint64(packets))
		}
		if scanErrs > 0 {
			s.om.frameErrors[frameErrScan].Add(uint64(scanErrs))
		}
		st.busy.Store(true)
		reqStart := time.Now()
		keep := s.serveRequest(req, &failing, &successes, reply)
		s.om.observeRequest(req.Kind, time.Since(reqStart))
		st.busy.Store(false)
		if !keep {
			return
		}
	}
}

// serveRequest handles one decoded request. It returns false only when
// the connection must close (reply failure); protocol-level rejections
// reply "error" and keep the conversation going.
func (s *Server) serveRequest(req Request, failing **core.RunReport, successes *[]*core.RunReport, reply func(Response) bool) bool {
	switch req.Kind {
	case "failure":
		if req.Failure == nil || req.Snapshot == nil {
			return reply(Response{Kind: "error", Err: "failure request missing report or snapshot"})
		}
		if cap := s.maxSnapshotBytes(); cap > 0 && snapshotBytes(req.Snapshot) > cap {
			s.om.oversizeRejects.Inc()
			return reply(Response{Kind: "error", Err: fmt.Sprintf("failure snapshot exceeds %d-byte cap", cap)})
		}
		*failing = &core.RunReport{Failure: req.Failure, Snapshot: req.Snapshot}
		*successes = nil
		return reply(Response{Kind: "armed", TriggerPC: req.Failure.PC})
	case "success":
		if cap := s.maxSnapshotBytes(); cap > 0 && snapshotBytes(req.Snapshot) > cap {
			s.om.oversizeRejects.Inc()
			return reply(Response{Kind: "error", Err: fmt.Sprintf("success snapshot exceeds %d-byte cap", cap)})
		}
		if cap := s.maxSuccesses(); cap > 0 && len(*successes) >= cap {
			return reply(Response{Kind: "error", Err: fmt.Sprintf("success trace cap (%d) reached for this connection", cap)})
		}
		if req.Snapshot != nil {
			*successes = append(*successes, &core.RunReport{Snapshot: req.Snapshot})
		}
		return reply(Response{Kind: "ack"})
	case "diagnose":
		if *failing == nil {
			return reply(Response{Kind: "error", Err: "diagnose before failure report"})
		}
		d, err := s.diagnose(s.Core, *failing, *successes)
		if err != nil {
			return reply(Response{Kind: "error", Err: err.Error()})
		}
		return reply(Response{Kind: "diagnosis", Diagnosis: d})
	case "status":
		st := s.Status()
		return reply(Response{Kind: "status", Status: &st})
	default:
		// Fleet kinds (and the unknown-request rejection) route through
		// the multi-tenant layer; none of them touch the connection's
		// single-program session state.
		return s.serveFleetRequest(req, reply)
	}
}

// Conn is the client side of one diagnosis conversation. The codec is
// fixed at construction: binary (the default) sends the wire preamble
// before its first frame; gob (legacy, deprecated) sends none.
type Conn struct {
	conn net.Conn
	// gob codec.
	enc *gob.Encoder
	dec *gob.Decoder
	// binary codec.
	w            *wire.Writer
	r            *wire.Reader
	preambleSent bool
}

// Dial connects to a diagnosis server with the default codec.
func Dial(network, addr string) (*Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// NewConn wraps an established connection (e.g. one side of
// net.Pipe in tests) with the default codec.
func NewConn(c net.Conn) *Conn { return NewConnWire(c, WireAuto) }

// NewConnWire wraps an established connection with an explicit codec
// — WireGob keeps the legacy oracle talking during the differential
// window.
func NewConnWire(c net.Conn, v WireVersion) *Conn {
	if v.resolve() == WireGob {
		return &Conn{conn: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
	}
	return &Conn{
		conn: c,
		w:    wire.NewWriter(c),
		// No read limit client-side: the server is the trusted peer.
		r: wire.NewReader(bufio.NewReaderSize(c, 32<<10), 0),
	}
}

// Wire reports the connection's codec.
func (c *Conn) Wire() WireVersion {
	if c.enc != nil {
		return WireGob
	}
	return WireBinary
}

// Close closes the underlying connection and returns the codec's
// pooled buffers.
func (c *Conn) Close() error {
	if c.w != nil {
		c.w.Release()
		c.r.Release()
		c.w, c.r = nil, nil
	}
	return c.conn.Close()
}

// SetDeadline bounds the next reads and writes on the underlying
// connection; retrying clients use it to turn a stalled peer into a
// retryable timeout.
func (c *Conn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// send frames (or gob-encodes) one request and flushes it.
func (c *Conn) send(req *Request) error {
	if c.enc != nil {
		return c.enc.Encode(*req)
	}
	if !c.preambleSent {
		if err := c.w.Preamble(wire.Version1); err != nil {
			return err
		}
		c.preambleSent = true
	}
	if err := writeBinaryRequest(c.w, req); err != nil {
		return err
	}
	return c.w.Flush()
}

// recv reads one response.
func (c *Conn) recv() (Response, error) {
	if c.dec != nil {
		var resp Response
		err := c.dec.Decode(&resp)
		return resp, err
	}
	return readBinaryResponse(c.r)
}

func (c *Conn) roundTrip(req Request) (Response, error) {
	if err := c.send(&req); err != nil {
		return Response{}, err
	}
	resp, err := c.recv()
	if err != nil {
		return Response{}, err
	}
	if resp.Kind == "error" {
		return resp, &ServerError{Msg: resp.Err, Code: resp.Code}
	}
	return resp, nil
}

// RoundTrip sends one raw request and decodes one response — the
// forwarding primitive the shard router is built on. Unlike the typed
// client methods, a server "error" reply is returned as the Response
// with a nil error, so a forwarder can relay it to its own client
// verbatim; a non-nil error always means the transport or the codec
// stream failed and the connection is unusable.
func (c *Conn) RoundTrip(req Request) (Response, error) {
	if err := c.send(&req); err != nil {
		return Response{}, err
	}
	return c.recv()
}

// RelayRaw sends a pre-framed binary-codec request — envelope and
// chunk frames captured verbatim by a Reader's NextRaw on another
// connection — and reads one response. It is the shard router's
// zero-copy forwarding primitive: the message is neither decoded nor
// re-framed at the hop, and the sender's checksums cross untouched.
// Like RoundTrip, a server "error" reply comes back as the Response
// with a nil error. The raw response payload is returned alongside
// (valid until the next read on this connection) so the reply can be
// relayed byte-identically too. The connection must speak the binary
// codec.
func (c *Conn) RelayRaw(raw []byte) (Response, []byte, error) {
	if c.enc != nil {
		return Response{}, nil, errors.New("proto: RelayRaw on a gob connection")
	}
	if !c.preambleSent {
		if err := c.w.Preamble(wire.Version1); err != nil {
			return Response{}, nil, err
		}
		c.preambleSent = true
	}
	if err := c.w.Raw(raw); err != nil {
		return Response{}, nil, err
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, nil, err
	}
	return ReadRawResponse(c.r)
}

// ReportFailure uploads a failure and returns the trigger PC the
// server wants successful executions traced at.
func (c *Conn) ReportFailure(f *core.FailureReport, snap *pt.Snapshot) (ir.PC, error) {
	resp, err := c.roundTrip(Request{Kind: "failure", Failure: f, Snapshot: snap})
	if err != nil {
		return ir.NoPC, err
	}
	if resp.Kind != "armed" {
		return ir.NoPC, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return resp.TriggerPC, nil
}

// SendSuccess uploads one successful execution's trace.
func (c *Conn) SendSuccess(snap *pt.Snapshot) error {
	resp, err := c.roundTrip(Request{Kind: "success", Snapshot: snap})
	if err != nil {
		return err
	}
	if resp.Kind != "ack" {
		return fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return nil
}

// RequestDiagnosis asks the server to run Lazy Diagnosis on what it
// has received.
func (c *Conn) RequestDiagnosis() (*core.Diagnosis, error) {
	resp, err := c.roundTrip(Request{Kind: "diagnose"})
	if err != nil {
		return nil, err
	}
	if resp.Kind != "diagnosis" || resp.Diagnosis == nil {
		return nil, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return resp.Diagnosis, nil
}

// Status asks the server for its concurrency and cache counters.
func (c *Conn) Status() (ServerStatus, error) {
	resp, err := c.roundTrip(Request{Kind: "status"})
	if err != nil {
		return ServerStatus{}, err
	}
	if resp.Kind != "status" || resp.Status == nil {
		return ServerStatus{}, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return *resp.Status, nil
}
