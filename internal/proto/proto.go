// Package proto implements the client↔server protocol of the deployed
// system (Figure 2): production clients stream failure reports and
// trace snapshots to an analysis server; the server arms trace
// triggers for successful executions and returns diagnoses.
//
// Messages are gob-encoded over any net.Conn. The server is
// stateless across connections but stateful within one: a connection
// carries one failure, its successful traces, and one diagnosis
// request.
package proto

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/pt"
)

// Request is a client→server message.
type Request struct {
	// Kind is "failure", "success" or "diagnose".
	Kind string
	// Failure accompanies "failure" requests.
	Failure *core.FailureReport
	// Snapshot accompanies "failure" and "success" requests.
	Snapshot *pt.Snapshot
}

// Response is a server→client message.
type Response struct {
	// Kind is "armed", "ack", "diagnosis" or "error".
	Kind string
	// TriggerPC tells the client where to snapshot successful
	// executions ("armed" responses).
	TriggerPC ir.PC
	// Diagnosis accompanies "diagnosis" responses.
	Diagnosis *core.Diagnosis
	// Err describes "error" responses.
	Err string
}

// Server serves diagnosis requests for one module.
type Server struct {
	Core *core.Server
}

// NewServer wraps a core analysis server.
func NewServer(c *core.Server) *Server { return &Server{Core: c} }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var failing *core.RunReport
	var successes []*core.RunReport

	reply := func(r Response) bool { return enc.Encode(r) == nil }
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // client went away
		}
		switch req.Kind {
		case "failure":
			if req.Failure == nil || req.Snapshot == nil {
				reply(Response{Kind: "error", Err: "failure request missing report or snapshot"})
				return
			}
			failing = &core.RunReport{Failure: req.Failure, Snapshot: req.Snapshot}
			if !reply(Response{Kind: "armed", TriggerPC: req.Failure.PC}) {
				return
			}
		case "success":
			if req.Snapshot != nil {
				successes = append(successes, &core.RunReport{Snapshot: req.Snapshot})
			}
			if !reply(Response{Kind: "ack"}) {
				return
			}
		case "diagnose":
			if failing == nil {
				reply(Response{Kind: "error", Err: "diagnose before failure report"})
				return
			}
			d, err := s.Core.Diagnose(failing, successes)
			if err != nil {
				reply(Response{Kind: "error", Err: err.Error()})
				return
			}
			if !reply(Response{Kind: "diagnosis", Diagnosis: d}) {
				return
			}
		default:
			reply(Response{Kind: "error", Err: fmt.Sprintf("unknown request %q", req.Kind)})
			return
		}
	}
}

// Conn is the client side of one diagnosis conversation.
type Conn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a diagnosis server.
func Dial(network, addr string) (*Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// NewConn wraps an established connection (e.g. one side of
// net.Pipe in tests).
func NewConn(c net.Conn) *Conn {
	return &Conn{conn: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

func (c *Conn) roundTrip(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	if resp.Kind == "error" {
		return resp, fmt.Errorf("proto: server: %s", resp.Err)
	}
	return resp, nil
}

// ReportFailure uploads a failure and returns the trigger PC the
// server wants successful executions traced at.
func (c *Conn) ReportFailure(f *core.FailureReport, snap *pt.Snapshot) (ir.PC, error) {
	resp, err := c.roundTrip(Request{Kind: "failure", Failure: f, Snapshot: snap})
	if err != nil {
		return ir.NoPC, err
	}
	if resp.Kind != "armed" {
		return ir.NoPC, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return resp.TriggerPC, nil
}

// SendSuccess uploads one successful execution's trace.
func (c *Conn) SendSuccess(snap *pt.Snapshot) error {
	resp, err := c.roundTrip(Request{Kind: "success", Snapshot: snap})
	if err != nil {
		return err
	}
	if resp.Kind != "ack" {
		return fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return nil
}

// RequestDiagnosis asks the server to run Lazy Diagnosis on what it
// has received.
func (c *Conn) RequestDiagnosis() (*core.Diagnosis, error) {
	resp, err := c.roundTrip(Request{Kind: "diagnose"})
	if err != nil {
		return nil, err
	}
	if resp.Kind != "diagnosis" || resp.Diagnosis == nil {
		return nil, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return resp.Diagnosis, nil
}
