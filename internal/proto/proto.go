// Package proto implements the client↔server protocol of the deployed
// system (Figure 2): production clients stream failure reports and
// trace snapshots to an analysis server; the server arms trace
// triggers for successful executions and returns diagnoses.
//
// Messages are gob-encoded over any net.Conn. Protocol state lives in
// the connection — one failure, its successful traces, one diagnosis
// request — while the shared core.Server carries the cross-connection
// analysis cache. Each connection runs in its own goroutine; diagnoses
// are bounded by a server-wide semaphore so a burst of clients queues
// instead of oversubscribing the host.
package proto

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/pt"
)

// Request is a client→server message.
type Request struct {
	// Kind is "failure", "success", "diagnose" or "status".
	Kind string
	// Failure accompanies "failure" requests.
	Failure *core.FailureReport
	// Snapshot accompanies "failure" and "success" requests.
	Snapshot *pt.Snapshot
}

// Response is a server→client message.
type Response struct {
	// Kind is "armed", "ack", "diagnosis", "status" or "error".
	Kind string
	// TriggerPC tells the client where to snapshot successful
	// executions ("armed" responses).
	TriggerPC ir.PC
	// Diagnosis accompanies "diagnosis" responses.
	Diagnosis *core.Diagnosis
	// Status accompanies "status" responses.
	Status *ServerStatus
	// Err describes "error" responses.
	Err string
}

// ServerStatus is the server's concurrency and pipeline state — the
// operational counters behind the queue-depth and cache questions an
// operator asks of a loaded diagnosis server.
type ServerStatus struct {
	// OpenConns counts currently connected clients.
	OpenConns int64
	// ActiveDiagnoses counts diagnoses running right now.
	ActiveDiagnoses int64
	// QueuedDiagnoses counts diagnoses waiting on the semaphore.
	QueuedDiagnoses int64
	// CompletedDiagnoses and FailedDiagnoses are cumulative.
	CompletedDiagnoses uint64
	FailedDiagnoses    uint64
	// MaxConcurrent is the effective diagnosis semaphore width.
	MaxConcurrent int
	// Workers is the core server's success-trace pool size.
	Workers int
	// CacheHits and CacheMisses are the core server's cumulative
	// points-to cache counters.
	CacheHits, CacheMisses uint64
	// DiagnoseTime is cumulative wall time spent inside Diagnose.
	DiagnoseTime time.Duration
}

// Server serves diagnosis requests for one module.
type Server struct {
	Core *core.Server
	// MaxConcurrent bounds simultaneous Diagnose calls across all
	// connections; 0 means runtime.GOMAXPROCS(0). Further requests
	// queue (and are counted as queued in the status response).
	MaxConcurrent int

	once sync.Once
	sem  chan struct{}

	conns     atomic.Int64
	active    atomic.Int64
	queued    atomic.Int64
	completed atomic.Uint64
	failed    atomic.Uint64
	// diagnoseNS accumulates wall time spent inside core Diagnose.
	diagnoseNS atomic.Int64
}

// NewServer wraps a core analysis server.
func NewServer(c *core.Server) *Server { return &Server{Core: c} }

func (s *Server) init() {
	s.once.Do(func() {
		n := s.MaxConcurrent
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.MaxConcurrent = n
		s.sem = make(chan struct{}, n)
	})
}

// diagnose runs one bounded diagnosis, maintaining the queue/active
// counters the status response reports.
func (s *Server) diagnose(failing *core.RunReport, successes []*core.RunReport) (*core.Diagnosis, error) {
	s.init()
	s.queued.Add(1)
	s.sem <- struct{}{}
	s.queued.Add(-1)
	s.active.Add(1)
	start := time.Now()
	d, err := s.Core.Diagnose(failing, successes)
	s.diagnoseNS.Add(int64(time.Since(start)))
	s.active.Add(-1)
	<-s.sem
	if err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	return d, err
}

// Status snapshots the server's counters.
func (s *Server) Status() ServerStatus {
	s.init()
	hits, misses := s.Core.CacheStats()
	workers := s.Core.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return ServerStatus{
		OpenConns:          s.conns.Load(),
		ActiveDiagnoses:    s.active.Load(),
		QueuedDiagnoses:    s.queued.Load(),
		CompletedDiagnoses: s.completed.Load(),
		FailedDiagnoses:    s.failed.Load(),
		MaxConcurrent:      s.MaxConcurrent,
		Workers:            workers,
		CacheHits:          hits,
		CacheMisses:        misses,
		DiagnoseTime:       time.Duration(s.diagnoseNS.Load()),
	}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.init()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	s.conns.Add(1)
	defer s.conns.Add(-1)
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var failing *core.RunReport
	var successes []*core.RunReport

	reply := func(r Response) bool { return enc.Encode(r) == nil }
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // client went away
		}
		switch req.Kind {
		case "failure":
			if req.Failure == nil || req.Snapshot == nil {
				reply(Response{Kind: "error", Err: "failure request missing report or snapshot"})
				return
			}
			failing = &core.RunReport{Failure: req.Failure, Snapshot: req.Snapshot}
			if !reply(Response{Kind: "armed", TriggerPC: req.Failure.PC}) {
				return
			}
		case "success":
			if req.Snapshot != nil {
				successes = append(successes, &core.RunReport{Snapshot: req.Snapshot})
			}
			if !reply(Response{Kind: "ack"}) {
				return
			}
		case "diagnose":
			if failing == nil {
				reply(Response{Kind: "error", Err: "diagnose before failure report"})
				return
			}
			d, err := s.diagnose(failing, successes)
			if err != nil {
				reply(Response{Kind: "error", Err: err.Error()})
				return
			}
			if !reply(Response{Kind: "diagnosis", Diagnosis: d}) {
				return
			}
		case "status":
			st := s.Status()
			if !reply(Response{Kind: "status", Status: &st}) {
				return
			}
		default:
			reply(Response{Kind: "error", Err: fmt.Sprintf("unknown request %q", req.Kind)})
			return
		}
	}
}

// Conn is the client side of one diagnosis conversation.
type Conn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a diagnosis server.
func Dial(network, addr string) (*Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// NewConn wraps an established connection (e.g. one side of
// net.Pipe in tests).
func NewConn(c net.Conn) *Conn {
	return &Conn{conn: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

func (c *Conn) roundTrip(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	if resp.Kind == "error" {
		return resp, fmt.Errorf("proto: server: %s", resp.Err)
	}
	return resp, nil
}

// ReportFailure uploads a failure and returns the trigger PC the
// server wants successful executions traced at.
func (c *Conn) ReportFailure(f *core.FailureReport, snap *pt.Snapshot) (ir.PC, error) {
	resp, err := c.roundTrip(Request{Kind: "failure", Failure: f, Snapshot: snap})
	if err != nil {
		return ir.NoPC, err
	}
	if resp.Kind != "armed" {
		return ir.NoPC, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return resp.TriggerPC, nil
}

// SendSuccess uploads one successful execution's trace.
func (c *Conn) SendSuccess(snap *pt.Snapshot) error {
	resp, err := c.roundTrip(Request{Kind: "success", Snapshot: snap})
	if err != nil {
		return err
	}
	if resp.Kind != "ack" {
		return fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return nil
}

// RequestDiagnosis asks the server to run Lazy Diagnosis on what it
// has received.
func (c *Conn) RequestDiagnosis() (*core.Diagnosis, error) {
	resp, err := c.roundTrip(Request{Kind: "diagnose"})
	if err != nil {
		return nil, err
	}
	if resp.Kind != "diagnosis" || resp.Diagnosis == nil {
		return nil, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return resp.Diagnosis, nil
}

// Status asks the server for its concurrency and cache counters.
func (c *Conn) Status() (ServerStatus, error) {
	resp, err := c.roundTrip(Request{Kind: "status"})
	if err != nil {
		return ServerStatus{}, err
	}
	if resp.Kind != "status" || resp.Status == nil {
		return ServerStatus{}, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return *resp.Status, nil
}
