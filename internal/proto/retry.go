package proto

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/pt"
)

// RetryConfig tunes the reconnecting client.
type RetryConfig struct {
	// MaxAttempts bounds how many times one operation (including the
	// reconnect and session replay it needs) is tried; 0 means 8.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms);
	// it doubles per attempt up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// OpTimeout bounds each round trip on the wire, turning a stalled
	// peer into a retryable timeout; 0 means no deadline. Diagnosis
	// requests wait out the server's analysis, so leave headroom for
	// the slowest expected diagnosis.
	OpTimeout time.Duration
	// JitterSeed seeds the deterministic jitter source so backoff
	// schedules are reproducible in tests; 0 derives per-client
	// entropy, so a fleet of default-configured clients never backs
	// off in lockstep (the reconnect thundering herd this jitter
	// exists to break).
	JitterSeed int64
	// Wire selects the connection codec (default: the binary wire
	// format; WireGob keeps the legacy oracle during the differential
	// window).
	Wire WireVersion
}

func (c RetryConfig) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 8
	}
	return c.MaxAttempts
}

func (c RetryConfig) baseDelay() time.Duration {
	if c.BaseDelay <= 0 {
		return 10 * time.Millisecond
	}
	return c.BaseDelay
}

func (c RetryConfig) maxDelay() time.Duration {
	if c.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return c.MaxDelay
}

// RetryClient is a Conn that survives the network: it spools the
// per-connection session state (the failure report and every success
// trace) client-side, reconnects on transport failures with
// exponential backoff and jitter, and replays the spool on the fresh
// connection — so Diagnose converges to the same verdict a fault-free
// conversation would have reached. Server "error" replies are
// deterministic rejections and are returned, not retried.
//
// A RetryClient is safe for use by one goroutine at a time (the same
// contract as Conn).
type RetryClient struct {
	dial func() (net.Conn, error)
	cfg  RetryConfig

	mu        sync.Mutex
	conn      *Conn
	rng       *rand.Rand
	failure   *core.FailureReport
	failSnap  *pt.Snapshot
	trigger   ir.PC
	successes []*pt.Snapshot
	// dialed flips on the first dial attempt; every dial after it is a
	// retry (a reconnect or a re-dial after a failed connect).
	dialed  bool
	retries uint64
}

// NewRetryClient wraps a dial function (called on every connect and
// reconnect) in a retrying session client.
func NewRetryClient(dial func() (net.Conn, error), cfg RetryConfig) *RetryClient {
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = DeriveJitterSeed()
	}
	return &RetryClient{dial: dial, cfg: cfg, rng: rand.New(rand.NewSource(seed)), trigger: ir.NoPC}
}

// jitterCounter makes every derived seed process-unique even when the
// clock is coarse.
var jitterCounter atomic.Uint64

// DeriveJitterSeed returns fresh per-client backoff entropy — what an
// unset JitterSeed uses. Every call yields a distinct, well-mixed
// seed (an atomic counter xor wall clock, diffused through
// splitmix64), so a fleet of default-configured clients spreads its
// reconnects instead of hammering a recovering server in lockstep.
// Explicitly-seeded configs are untouched and stay deterministic.
func DeriveJitterSeed() int64 {
	x := jitterCounter.Add(1) ^ uint64(time.Now().UnixNano())
	// splitmix64 finalizer: full-avalanche mixing, so consecutive
	// counter values land on unrelated schedules.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return int64(x)
}

// DialRetrying returns a retrying client for a network address. The
// first connection is made lazily, so this never fails; a wrong
// address surfaces from the first operation after MaxAttempts tries.
func DialRetrying(network, addr string, cfg RetryConfig) *RetryClient {
	return NewRetryClient(func() (net.Conn, error) { return net.Dial(network, addr) }, cfg)
}

// Close drops the live connection, if any. The spooled session state
// is kept, so a later operation transparently reconnects.
func (r *RetryClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropConn()
}

// Retries counts every dial after the first — reconnects after a
// dropped transport and re-dials after failed connects. It is the
// client-side degradation counter: zero means the session never saw a
// fault.
func (r *RetryClient) Retries() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

func (r *RetryClient) dropConn() error {
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}

// session returns a live connection with the full session state
// replayed: the spooled failure report first, then every spooled
// success trace, exactly as a fault-free conversation would have sent
// them.
func (r *RetryClient) session() (*Conn, error) {
	if r.conn != nil {
		return r.conn, nil
	}
	if r.dialed {
		r.retries++
	}
	r.dialed = true
	nc, err := r.dial()
	if err != nil {
		return nil, err
	}
	c := NewConnWire(nc, r.cfg.Wire)
	if r.failure != nil {
		if err := r.op(c, func() error {
			pc, err := c.ReportFailure(r.failure, r.failSnap)
			if err == nil {
				r.trigger = pc
			}
			return err
		}); err != nil {
			c.Close()
			return nil, err
		}
		for _, snap := range r.successes {
			if err := r.op(c, func() error { return c.SendSuccess(snap) }); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	r.conn = c
	return c, nil
}

// op runs one round trip under the configured deadline.
func (r *RetryClient) op(c *Conn, fn func() error) error {
	if r.cfg.OpTimeout > 0 {
		c.SetDeadline(time.Now().Add(r.cfg.OpTimeout))
		defer c.SetDeadline(time.Time{})
	}
	return fn()
}

// do retries fn across reconnects until it succeeds, the server
// rejects it deterministically, or the attempt budget is spent.
func (r *RetryClient) do(fn func(c *Conn) error) error {
	var lastErr error
	attempts := r.cfg.maxAttempts()
	for a := 0; a < attempts; a++ {
		if a > 0 {
			r.backoff(a)
		}
		c, err := r.session()
		if err != nil {
			var se *ServerError
			if errors.As(err, &se) {
				return err // replay was rejected; retrying cannot help
			}
			lastErr = err
			r.dropConn()
			continue
		}
		if err := r.op(c, func() error { return fn(c) }); err != nil {
			var se *ServerError
			if errors.As(err, &se) {
				return err
			}
			lastErr = err
			r.dropConn()
			continue
		}
		return nil
	}
	return fmt.Errorf("proto: giving up after %d attempts: %w", attempts, lastErr)
}

// backoff sleeps the a-th retry's exponential delay with ±50% jitter.
func (r *RetryClient) backoff(a int) {
	time.Sleep(r.backoffDelay(a))
}

// backoffDelay computes (without sleeping) the a-th retry's jittered
// delay — split out so tests can compare whole schedules.
func (r *RetryClient) backoffDelay(a int) time.Duration {
	d := r.cfg.baseDelay() << uint(a-1)
	if max := r.cfg.maxDelay(); d > max || d <= 0 {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + r.rng.Float64()))
}

// ReportFailure spools the failure report (replacing any previous
// session) and uploads it, reconnecting as needed. The returned PC is
// where the server wants successful executions traced.
func (r *RetryClient) ReportFailure(f *core.FailureReport, snap *pt.Snapshot) (ir.PC, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failure, r.failSnap = f, snap
	r.successes = nil
	r.trigger = ir.NoPC
	r.dropConn()                                    // a new failure starts a new server-side session
	err := r.do(func(c *Conn) error { return nil }) // session() replays the failure
	return r.trigger, err
}

// SendSuccess spools one success trace and uploads it best-effort: on
// a transport failure the trace stays spooled — buffered client-side
// while disconnected — and is replayed on the next reconnect, so the
// call succeeds unless the server deterministically rejects it.
func (r *RetryClient) SendSuccess(snap *pt.Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.successes = append(r.successes, snap)
	if r.conn == nil {
		return nil // disconnected: spooled for replay
	}
	c := r.conn
	if err := r.op(c, func() error { return c.SendSuccess(snap) }); err != nil {
		var se *ServerError
		if errors.As(err, &se) {
			// Deterministic rejection (oversize, cap): unspool so the
			// replay won't be rejected too, and surface it.
			r.successes = r.successes[:len(r.successes)-1]
			return err
		}
		r.dropConn() // spooled; the next operation replays it
	}
	return nil
}

// RequestDiagnosis asks for the verdict over the spooled session,
// reconnecting and replaying until the server answers.
func (r *RetryClient) RequestDiagnosis() (*core.Diagnosis, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var d *core.Diagnosis
	err := r.do(func(c *Conn) error {
		var err error
		d, err = c.RequestDiagnosis()
		return err
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Status fetches the server's counters, reconnecting as needed.
func (r *RetryClient) Status() (ServerStatus, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var st ServerStatus
	err := r.do(func(c *Conn) error {
		var err error
		st, err = c.Status()
		return err
	})
	return st, err
}

// TriggerPC returns the trigger the server armed for the current
// session (NoPC before ReportFailure succeeds).
func (r *RetryClient) TriggerPC() ir.PC {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trigger
}
