package proto

import (
	"errors"
	"testing"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/pt"
)

// fleetFixture reproduces one corpus failure and a stock of triggered
// success snapshots for driving the fleet wire protocol by hand.
type fleetFixture struct {
	mod      *ir.Module
	failing  *core.RunReport
	okSnaps  []*pt.Snapshot
	moduleTx string
}

func newFleetFixture(t *testing.T, want int) *fleetFixture {
	t.Helper()
	bug := corpus.ByID("pbzip2-1")
	failInst := bug.Build(corpus.Variant{Failing: true})
	rep := core.NewClient(failInst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatal("expected failure")
	}
	okInst := bug.Build(corpus.Variant{Failing: false})
	okClient := core.NewClient(okInst.Mod)
	var snaps []*pt.Snapshot
	for seed := int64(1); len(snaps) < want && seed < 256; seed++ {
		r := okClient.Run(seed, rep.Failure.PC)
		if !r.Failed() && r.Triggered {
			snaps = append(snaps, r.Snapshot)
		}
	}
	if len(snaps) < want {
		t.Fatalf("gathered %d/%d success snapshots", len(snaps), want)
	}
	return &fleetFixture{mod: failInst.Mod, failing: rep,
		okSnaps: snaps, moduleTx: ir.Print(failInst.Mod)}
}

func dialFleet(t *testing.T, addr string) *Conn {
	t.Helper()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestFleetRegistrationIdempotent(t *testing.T) {
	fx := newFleetFixture(t, 0)
	addr, srv := startServerHandle(t, fx.mod)
	c1 := dialFleet(t, addr)
	c2 := dialFleet(t, addr)

	id1, err := c1.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c2.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Errorf("same program registered as two tenants: %s vs %s", id1, id2)
	}
	if id1 != ModuleFingerprint(fx.mod) {
		t.Errorf("tenant id %s is not the module fingerprint", id1)
	}
	if v := srv.Metrics().Find(MetricFleetTenants).Gauge.Value(); v != 1 {
		t.Errorf("tenants gauge = %d after duplicate registration, want 1", v)
	}

	// Server-side pre-registration lands on the same tenant too: the
	// fingerprint, not the registration path, is the identity.
	id, err := srv.RegisterProgram(fx.mod)
	if err != nil {
		t.Fatal(err)
	}
	if id != id1 {
		t.Errorf("RegisterProgram = %s, want %s", id, id1)
	}
}

func TestFleetDisableRegistration(t *testing.T) {
	fx := newFleetFixture(t, 0)
	addr, srv := startServerHandle(t, fx.mod)
	srv.DisableRegistration = true
	c := dialFleet(t, addr)
	if _, err := c.Register(fx.moduleTx); err == nil {
		t.Fatal("registration succeeded on a registration-disabled server")
	} else {
		var se *ServerError
		if !errors.As(err, &se) {
			t.Fatalf("err = %v, want a deterministic ServerError", err)
		}
	}
	// Pre-registered tenants still serve.
	id, err := srv.RegisterProgram(fx.mod)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Directives(id); err != nil {
		t.Fatalf("pre-registered tenant unusable: %v", err)
	}
}

func TestFleetCaseJoinsByFailurePC(t *testing.T) {
	fx := newFleetFixture(t, 0)
	addr, srv := startServerHandle(t, fx.mod)
	c1 := dialFleet(t, addr)
	c2 := dialFleet(t, addr)
	id, err := c1.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}

	case1, d1, done, err := c1.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("fresh case reported as done")
	}
	if d1.TriggerPC != fx.failing.Failure.PC {
		t.Errorf("directive trigger = %d, want failure PC %d", d1.TriggerPC, fx.failing.Failure.PC)
	}
	if d1.Want != DefaultFleetQuota || d1.Have != 0 {
		t.Errorf("fresh directive quota = %d/%d, want 0/%d", d1.Have, d1.Want, DefaultFleetQuota)
	}
	case2, _, _, err := c2.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if case1 != case2 {
		t.Errorf("same failure PC opened two cases: %d and %d", case1, case2)
	}
	if v := srv.Metrics().Find(MetricFleetArmedDirectives).Gauge.Value(); v != 1 {
		t.Errorf("armed directives gauge = %d, want 1", v)
	}
	ds, err := c2.Directives(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Case != case1 {
		t.Errorf("directives = %+v, want the one armed case", ds)
	}
}

func TestFleetBatchDedupe(t *testing.T) {
	fx := newFleetFixture(t, 4)
	addr, srv := startServerHandle(t, fx.mod)
	c := dialFleet(t, addr)
	id, err := c.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}
	caseID, _, _, err := c.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}

	batch := fx.okSnaps[:2]
	accepted, done, err := c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 2 || done {
		t.Fatalf("first upload accepted %d (done=%v), want 2", accepted, done)
	}
	// The reply was "lost"; the agent replays the identical batch. The
	// sequence ledger must not double-count it.
	accepted, _, err = c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 0 {
		t.Fatalf("replayed batch accepted %d snapshots, want 0", accepted)
	}
	// A partially replayed batch (one old, one new) admits only the new.
	accepted, _, err = c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", 2, fx.okSnaps[1:3])
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 1 {
		t.Fatalf("overlapping batch accepted %d snapshots, want 1", accepted)
	}
	// A different agent's sequence numbers are an independent stream.
	accepted, _, err = c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-1", 1, fx.okSnaps[3:4])
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 1 {
		t.Fatalf("second agent's batch accepted %d snapshots, want 1", accepted)
	}
	if v := srv.Metrics().Find(MetricFleetQuotaHave).Gauge.Value(); v != 4 {
		t.Errorf("quota-have gauge = %d, want 4", v)
	}
	_, successes, ok := srv.FleetCaseTraces(id, caseID)
	if !ok || len(successes) != 4 {
		t.Fatalf("server holds %d accepted traces, want 4", len(successes))
	}
}

func TestFleetReportPendingUntilQuota(t *testing.T) {
	fx := newFleetFixture(t, DefaultFleetQuota)
	addr, srv := startServerHandle(t, fx.mod)
	c := dialFleet(t, addr)
	id, err := c.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}
	caseID, _, _, err := c.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	diag, done, err := c.FetchReport(id, caseID, fx.failing.Failure.PC)
	if err != nil {
		t.Fatal(err)
	}
	if done || diag != nil {
		t.Fatal("report published before any successes arrived")
	}

	accepted, done, err := c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", 1, fx.okSnaps)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != DefaultFleetQuota || !done {
		t.Fatalf("quota-filling batch accepted %d (done=%v), want %d (true)",
			accepted, done, DefaultFleetQuota)
	}
	diag, done, err = c.FetchReport(id, caseID, fx.failing.Failure.PC)
	if err != nil {
		t.Fatal(err)
	}
	if !done || diag == nil {
		t.Fatal("report not published after the quota was met")
	}
	if diag.Best.Pattern == nil {
		t.Fatalf("published diagnosis is empty: %+v", diag)
	}
	// Quota met: the directive disarms and further uploads are ignored.
	ds, err := c.Directives(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("directives after quota = %+v, want none", ds)
	}
	accepted, done, err = c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-1", 1, fx.okSnaps[:1])
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 0 || !done {
		t.Errorf("post-quota upload accepted %d (done=%v), want 0 (true)", accepted, done)
	}
	if v := srv.Metrics().Find(MetricFleetReports).Counter.Value(); v != 1 {
		t.Errorf("reports counter = %d, want 1", v)
	}
	if v := srv.Metrics().Find(MetricFleetQuotaWant).Gauge.Value(); v != 0 {
		t.Errorf("quota-want gauge = %d after disarm, want 0", v)
	}
	// A late failure report for the same PC joins the finished case and
	// signals the report is ready.
	caseAgain, _, done, err := c.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if caseAgain != caseID || !done {
		t.Errorf("late report joined case %d (done=%v), want %d (true)", caseAgain, done, caseID)
	}
}

func TestFleetUnknownTenantAndCase(t *testing.T) {
	fx := newFleetFixture(t, 0)
	addr, _ := startServerHandle(t, fx.mod)
	c := dialFleet(t, addr)
	var se *ServerError
	if _, err := c.Directives("nope"); !errors.As(err, &se) {
		t.Errorf("unknown tenant: err = %v, want ServerError", err)
	}
	id, err := c.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchReport(id, 42, 0); !errors.As(err, &se) {
		t.Errorf("unknown case: err = %v, want ServerError", err)
	}
	if _, err := c.Register("not a module"); !errors.As(err, &se) {
		t.Errorf("bad module text: err = %v, want ServerError", err)
	}
	// The connection survived every rejection.
	if _, err := c.Status(); err != nil {
		t.Fatalf("connection dead after protocol rejections: %v", err)
	}
}
