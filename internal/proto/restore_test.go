package proto

// Regression tests for the durable-store integration: recovery re-arms
// directives without re-requesting accepted traces, published reports
// are re-served from disk without re-diagnosis, Shutdown surfaces store
// errors, and Restore refuses state whose module text does not match
// its tenant fingerprint.

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/store"
)

// fakeStore lets tests poison any store operation.
type fakeStore struct {
	appendErr error
	flushErr  error
	closeErr  error
	stickyErr error
	appended  int
}

func (f *fakeStore) Append(*store.Record) error { f.appended++; return f.appendErr }
func (f *fakeStore) Flush() error               { return f.flushErr }
func (f *fakeStore) Close() error               { return f.closeErr }
func (f *fakeStore) Stats() store.Stats         { return store.Stats{} }
func (f *fakeStore) Err() error                 { return f.stickyErr }

// TestReadyGating pins the readiness contract the /readyz probe and
// the shard router's health checks build on: a durable server is not
// ready until Restore completes, turns unready when its store is
// poisoned, and a store-less server is ready immediately.
func TestReadyGating(t *testing.T) {
	mod := newFleetFixture(t, 0).mod

	memSrv := NewServer(core.NewServer(mod))
	if err := memSrv.Ready(); err != nil {
		t.Errorf("store-less server not ready: %v", err)
	}

	fs := &fakeStore{}
	srv := NewServer(core.NewServer(mod))
	srv.Store = fs
	if err := srv.Ready(); err == nil || !strings.Contains(err.Error(), "not yet restored") {
		t.Errorf("pre-Restore Ready() = %v, want a not-restored error", err)
	}
	if err := srv.Restore(nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Ready(); err != nil {
		t.Errorf("post-Restore Ready() = %v, want nil", err)
	}
	fs.stickyErr = errors.New("wal: disk full")
	if err := srv.Ready(); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Errorf("poisoned-store Ready() = %v, want a poisoned error", err)
	}
	fs.stickyErr = nil
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if err := srv.Ready(); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Errorf("draining Ready() = %v, want a draining error", err)
	}
}

// startDurableServer opens (or reopens) a WAL in dir and serves a
// fleet server restored from it.
func startDurableServer(t *testing.T, mod *ir.Module, dir string, quota int) (string, *Server, *store.WAL) {
	t.Helper()
	w, err := store.Open(dir, store.Options{SyncPolicy: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(core.NewServer(mod))
	srv.FleetQuota = quota
	srv.Store = w
	if err := srv.Restore(w.RecoveredState()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String(), srv, w
}

func shutdownServer(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryRearmsWithoutReRequesting(t *testing.T) {
	const quota = 6
	fx := newFleetFixture(t, quota)
	dir := t.TempDir()
	addr, srv, _ := startDurableServer(t, fx.mod, dir, quota)

	c := dialFleet(t, addr)
	id, err := c.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}
	caseID, _, _, err := c.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if accepted, _, err := c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", 1, fx.okSnaps[:3]); err != nil || accepted != 3 {
		t.Fatalf("pre-crash upload accepted %d (%v), want 3", accepted, err)
	}
	shutdownServer(t, srv)

	// The restarted server must resume the half-filled collection at
	// exactly 3/6 — the directive asks only for what is still missing,
	// and the gauges agree with the pre-crash values.
	addr2, srv2, _ := startDurableServer(t, fx.mod, dir, quota)
	reg := srv2.Metrics()
	if v := gaugeVal(t, reg, MetricFleetArmedDirectives); v != 1 {
		t.Errorf("armed directives after recovery = %d, want 1", v)
	}
	if v := gaugeVal(t, reg, MetricFleetQuotaWant); v != quota {
		t.Errorf("quota-want after recovery = %d, want %d", v, quota)
	}
	if v := gaugeVal(t, reg, MetricFleetQuotaHave); v != 3 {
		t.Errorf("quota-have after recovery = %d, want 3", v)
	}
	c2 := dialFleet(t, addr2)
	ds, err := c2.Directives(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Have != 3 || ds[0].Want != quota {
		t.Fatalf("recovered directives = %+v, want one at 3/%d", ds, quota)
	}

	// The agent replays its full upload stream (it never saw the acks).
	// The recovered dedup ledger must admit only the three new traces.
	if accepted, _, err := c2.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", 1, fx.okSnaps[:3]); err != nil || accepted != 0 {
		t.Fatalf("replayed batch accepted %d (%v), want 0", accepted, err)
	}
	accepted, done, err := c2.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", 4, fx.okSnaps[3:6])
	if err != nil || accepted != 3 || !done {
		t.Fatalf("fresh batch accepted %d (done=%v, %v), want 3 (true)", accepted, done, err)
	}
	_, successes, ok := srv2.FleetCaseTraces(id, caseID)
	if !ok || len(successes) != quota {
		t.Fatalf("case holds %d accepted traces, want exactly %d", len(successes), quota)
	}
	if v := counterVal(t, reg, MetricFleetReports); v != 1 {
		t.Errorf("reports counter = %d, want 1", v)
	}
	if v := gaugeVal(t, reg, MetricFleetArmedDirectives); v != 0 {
		t.Errorf("armed directives after quota = %d, want 0", v)
	}
}

func TestRecoveredReportReServedWithoutRediagnosis(t *testing.T) {
	const quota = 4
	fx := newFleetFixture(t, quota)
	dir := t.TempDir()
	addr, srv, _ := startDurableServer(t, fx.mod, dir, quota)

	c := dialFleet(t, addr)
	id, err := c.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}
	caseID, _, _, err := c.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", 1, fx.okSnaps[:quota]); err != nil || !done {
		t.Fatalf("quota-filling upload: done=%v, err=%v", done, err)
	}
	diag, done, err := c.FetchReport(id, caseID, fx.failing.Failure.PC)
	if err != nil || !done || diag == nil {
		t.Fatalf("live report: done=%v, diag=%v, err=%v", done, diag, err)
	}
	shutdownServer(t, srv)

	addr2, srv2, _ := startDurableServer(t, fx.mod, dir, quota)
	c2 := dialFleet(t, addr2)
	diag2, done, err := c2.FetchReport(id, caseID, fx.failing.Failure.PC)
	if err != nil || !done || diag2 == nil {
		t.Fatalf("recovered report: done=%v, diag=%v, err=%v", done, diag2, err)
	}
	if diag2.Fingerprint() != diag.Fingerprint() {
		t.Error("recovered report differs from the one published live")
	}
	if n := srv2.Status().CompletedDiagnoses; n != 0 {
		t.Errorf("recovered server ran %d diagnoses to re-serve a stored report", n)
	}
	if v := counterVal(t, srv2.Metrics(), MetricFleetReports); v != 1 {
		t.Errorf("reports counter after recovery = %d, want 1", v)
	}
	// A late failure report for the same PC joins the recovered case.
	caseAgain, _, done, err := c2.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil || caseAgain != caseID || !done {
		t.Errorf("late report joined case %d (done=%v, %v), want %d (true)", caseAgain, done, err, caseID)
	}
}

func TestShutdownSurfacesStoreErrors(t *testing.T) {
	fx := newFleetFixture(t, 0)
	for _, tc := range []struct {
		name string
		fs   *fakeStore
		want string
	}{
		{"flush error", &fakeStore{flushErr: errors.New("flush: disk full")}, "disk full"},
		{"close error", &fakeStore{closeErr: errors.New("close: stale handle")}, "stale handle"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := NewServer(core.NewServer(fx.mod))
			srv.Store = tc.fs
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			err := srv.Shutdown(ctx)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Shutdown = %v, want an error containing %q", err, tc.want)
			}
		})
	}
}

func TestAppendFailureRejectsTransition(t *testing.T) {
	// A transition whose WAL append fails must not be acknowledged or
	// applied: the client sees a server error and the case stays as it
	// was, so a retry against a healed store converges.
	fx := newFleetFixture(t, 2)
	fs := &fakeStore{}
	srv := NewServer(core.NewServer(fx.mod))
	srv.FleetQuota = 2
	srv.Store = fs
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	c := dialFleet(t, ln.Addr().String())

	fs.appendErr = errors.New("append: no space")
	if _, err := c.Register(fx.moduleTx); err == nil {
		t.Fatal("registration acknowledged despite a failed WAL append")
	}
	fs.appendErr = nil
	id, err := c.Register(fx.moduleTx)
	if err != nil {
		t.Fatalf("retry after append failure: %v", err)
	}
	caseID, _, _, err := c.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	fs.appendErr = errors.New("append: no space")
	if accepted, _, _ := c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", 1, fx.okSnaps[:1]); accepted != 0 {
		t.Fatalf("upload accepted %d traces despite a failed WAL append", accepted)
	}
	_, successes, ok := srv.FleetCaseTraces(id, caseID)
	if !ok || len(successes) != 0 {
		t.Fatalf("case holds %d traces after a rejected upload, want 0", len(successes))
	}
	fs.appendErr = nil
	if accepted, _, err := c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", 1, fx.okSnaps[:1]); err != nil || accepted != 1 {
		t.Fatalf("retried upload accepted %d (%v), want 1", accepted, err)
	}
}

func TestRestoreRejectsTamperedState(t *testing.T) {
	fx := newFleetFixture(t, 0)
	t.Run("fingerprint mismatch", func(t *testing.T) {
		srv := NewServer(core.NewServer(fx.mod))
		st := &store.State{Programs: []*store.ProgramState{{
			Tenant: "0000000000000000", ModuleText: fx.moduleTx,
		}}}
		if err := srv.Restore(st); err == nil {
			t.Error("Restore accepted a tenant whose module text does not match its fingerprint")
		}
	})
	t.Run("unparsable module", func(t *testing.T) {
		srv := NewServer(core.NewServer(fx.mod))
		st := &store.State{Programs: []*store.ProgramState{{
			Tenant: string(ModuleFingerprint(fx.mod)), ModuleText: "not a module",
		}}}
		if err := srv.Restore(st); err == nil {
			t.Error("Restore accepted unparsable module text")
		}
	})
}
