package proto

import (
	"fmt"
	"os"
	"sync"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/pattern"
	"snorlax/internal/pt"
	"snorlax/internal/statdiag"
	"snorlax/internal/wire"
)

// This file is the binary codec for the protocol's messages: explicit
// per-field encoding (zigzag varints, length-prefixed strings, fixed
// 8-byte float bits) over the wire package's CRC32C frames, replacing
// gob on the hot upload path. A request travels as one envelope frame
// — every field except snapshot ring bytes, plus a declared size table
// per snapshot — followed by bounded chunk frames carrying the rings,
// so a receiver can stream-decode pt packets (and a router can relay)
// while the snapshot is still arriving. Responses are always a single
// frame.
//
// The legacy gob codec remains selectable (WireGob) as the
// differential-testing oracle for this PR: both codecs must produce
// bit-identical fleet reports under the chaos matrix before gob is
// deleted. Gob is deprecated pending that removal.

// WireVersion selects a connection's codec.
type WireVersion int

const (
	// WireAuto is the zero value: the binary codec (the default since
	// this PR; gob is the legacy oracle).
	WireAuto WireVersion = iota
	// WireBinary is the length-prefixed binary codec.
	WireBinary
	// WireGob is the legacy gob codec. Deprecated: it exists as the
	// differential-testing oracle and will be removed in a later PR.
	WireGob
)

// resolve folds WireAuto onto the default codec.
func (v WireVersion) resolve() WireVersion {
	if v == WireGob {
		return WireGob
	}
	return WireBinary
}

func (v WireVersion) String() string {
	if v.resolve() == WireGob {
		return "gob"
	}
	return "binary"
}

// ParseWireVersion parses a codec name: "binary", "gob", or "" (the
// default codec).
func ParseWireVersion(s string) (WireVersion, error) {
	switch s {
	case "", "binary":
		return WireBinary, nil
	case "gob":
		return WireGob, nil
	}
	return WireAuto, fmt.Errorf("proto: unknown wire codec %q (want binary or gob)", s)
}

// WireFromEnv reads the SNORLAX_WIRE environment variable — the knob
// the differential CI matrix turns to run the e2e suites once per
// codec. Unset or unrecognized values mean the default codec.
func WireFromEnv() WireVersion {
	v, err := ParseWireVersion(os.Getenv("SNORLAX_WIRE"))
	if err != nil {
		return WireAuto
	}
	return v
}

// Request/Response kind codes. Unknown kinds (client-controlled
// strings) travel as kindOther plus the literal string, so the
// server's "unknown request" rejection matches gob byte for byte.
const kindOther = 0xFF

var reqKindCodes = map[string]uint64{
	"failure": 1, "success": 2, "diagnose": 3, "status": 4,
	"register": 5, "fleet-failure": 6, "directives": 7, "batch": 8, "report": 9,
}

var respKindCodes = map[string]uint64{
	"armed": 1, "ack": 2, "diagnosis": 3, "status": 4, "error": 5,
	"registered": 6, "case": 7, "directives": 8, "batch": 9, "report": 10,
}

var reqKindNames = invertKinds(reqKindCodes)
var respKindNames = invertKinds(respKindCodes)

func invertKinds(codes map[string]uint64) map[uint64]string {
	names := make(map[uint64]string, len(codes))
	for name, code := range codes {
		names[code] = name
	}
	return names
}

func appendKind(b []byte, codes map[string]uint64, kind string) []byte {
	if code, ok := codes[kind]; ok {
		return wire.AppendUvarint(b, code)
	}
	b = wire.AppendUvarint(b, kindOther)
	return wire.AppendString(b, kind)
}

func parseKind(d *wire.Dec, names map[uint64]string) string {
	code := d.Uvarint()
	if code == kindOther {
		return d.String()
	}
	return names[code]
}

// Slice length convention: 0 encodes nil, n+1 encodes length n — the
// nil/empty distinction survives the round trip, keeping decoded
// messages DeepEqual to what gob would have delivered.

func appendSliceLen(b []byte, n int, isNil bool) []byte {
	if isNil {
		return wire.AppendUvarint(b, 0)
	}
	return wire.AppendUvarint(b, uint64(n)+1)
}

// parseSliceLen returns (length, isNil). Lengths are sanity-capped by
// the remaining payload (every element costs at least one byte).
func parseSliceLen(d *wire.Dec) (int, bool) {
	v := d.Uvarint()
	if v == 0 {
		return 0, true
	}
	n := v - 1
	if n > uint64(d.Len()) {
		d.Fail("slice length past end of payload")
		return 0, true
	}
	return int(n), false
}

func appendPCs(b []byte, pcs []ir.PC) []byte {
	b = appendSliceLen(b, len(pcs), pcs == nil)
	for _, pc := range pcs {
		b = wire.AppendVarint(b, int64(pc))
	}
	return b
}

func parsePCs(d *wire.Dec) []ir.PC {
	n, isNil := parseSliceLen(d)
	if isNil {
		return nil
	}
	pcs := make([]ir.PC, n)
	for i := range pcs {
		pcs[i] = ir.PC(d.Varint())
	}
	return pcs
}

func appendInts(b []byte, vs []int) []byte {
	b = appendSliceLen(b, len(vs), vs == nil)
	for _, v := range vs {
		b = wire.AppendVarint(b, int64(v))
	}
	return b
}

func parseInts(d *wire.Dec) []int {
	n, isNil := parseSliceLen(d)
	if isNil {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = int(d.Varint())
	}
	return vs
}

// --- sub-message codecs ---

func appendFailure(b []byte, f *core.FailureReport) []byte {
	b = wire.AppendBool(b, f != nil)
	if f == nil {
		return b
	}
	b = wire.AppendBool(b, f.Deadlock)
	b = wire.AppendVarint(b, int64(f.PC))
	b = wire.AppendVarint(b, int64(f.Tid))
	b = wire.AppendVarint(b, f.Time)
	b = wire.AppendString(b, f.Msg)
	b = appendPCs(b, f.DeadlockPCs)
	return appendInts(b, f.DeadlockTids)
}

func parseFailure(d *wire.Dec) *core.FailureReport {
	if !d.Bool() {
		return nil
	}
	return &core.FailureReport{
		Deadlock:     d.Bool(),
		PC:           ir.PC(d.Varint()),
		Tid:          int(d.Varint()),
		Time:         d.Varint(),
		Msg:          d.String(),
		DeadlockPCs:  parsePCs(d),
		DeadlockTids: parseInts(d),
	}
}

func appendPattern(b []byte, p *pattern.Pattern) []byte {
	b = wire.AppendBool(b, p != nil)
	if p == nil {
		return b
	}
	b = wire.AppendVarint(b, int64(p.Kind))
	b = wire.AppendString(b, p.Sub)
	b = appendPCs(b, p.PCs)
	b = appendSliceLen(b, len(p.Events), p.Events == nil)
	for _, e := range p.Events {
		b = wire.AppendVarint(b, int64(e.PC))
		b = wire.AppendVarint(b, int64(e.Tid))
		b = wire.AppendVarint(b, e.Time)
	}
	b = wire.AppendVarint(b, int64(p.Rank))
	return wire.AppendBool(b, p.Absence)
}

func parsePattern(d *wire.Dec) *pattern.Pattern {
	if !d.Bool() {
		return nil
	}
	p := &pattern.Pattern{
		Kind: pattern.Kind(d.Varint()),
		Sub:  d.String(),
		PCs:  parsePCs(d),
	}
	if n, isNil := parseSliceLen(d); !isNil {
		p.Events = make([]pattern.Event, n)
		for i := range p.Events {
			p.Events[i] = pattern.Event{PC: ir.PC(d.Varint()), Tid: int(d.Varint()), Time: d.Varint()}
		}
	}
	p.Rank = int(d.Varint())
	p.Absence = d.Bool()
	return p
}

func appendScore(b []byte, s *statdiag.Score) []byte {
	b = appendPattern(b, s.Pattern)
	b = wire.AppendFloat64(b, s.Precision)
	b = wire.AppendFloat64(b, s.Recall)
	b = wire.AppendFloat64(b, s.F1)
	b = wire.AppendVarint(b, int64(s.PresentFailed))
	b = wire.AppendVarint(b, int64(s.PresentOK))
	return wire.AppendVarint(b, int64(s.AbsentFailed))
}

func parseScore(d *wire.Dec) statdiag.Score {
	return statdiag.Score{
		Pattern:       parsePattern(d),
		Precision:     d.Float64(),
		Recall:        d.Float64(),
		F1:            d.Float64(),
		PresentFailed: int(d.Varint()),
		PresentOK:     int(d.Varint()),
		AbsentFailed:  int(d.Varint()),
	}
}

func appendDiagnosis(b []byte, diag *core.Diagnosis) []byte {
	b = wire.AppendBool(b, diag != nil)
	if diag == nil {
		return b
	}
	b = appendScore(b, &diag.Best)
	b = wire.AppendBool(b, diag.Unique)
	b = appendSliceLen(b, len(diag.Scores), diag.Scores == nil)
	for i := range diag.Scores {
		b = appendScore(b, &diag.Scores[i])
	}
	b = wire.AppendVarint(b, int64(diag.AnchorPC))
	st := &diag.Stats
	b = wire.AppendVarint(b, int64(st.TotalInstrs))
	b = wire.AppendVarint(b, int64(st.ExecutedInstrs))
	b = wire.AppendVarint(b, int64(st.Candidates))
	b = wire.AppendVarint(b, int64(st.Rank1Candidates))
	b = wire.AppendVarint(b, int64(st.Patterns))
	b = wire.AppendVarint(b, int64(st.DynEvents))
	b = wire.AppendVarint(b, int64(st.SuccessTraces))
	b = wire.AppendVarint(b, int64(st.DroppedSuccesses))
	b = wire.AppendVarint(b, int64(st.PointsToTime))
	b = wire.AppendVarint(b, int64(st.DecodeTime))
	b = wire.AppendVarint(b, int64(st.RankTime))
	b = wire.AppendVarint(b, int64(st.PatternTime))
	b = wire.AppendVarint(b, int64(st.ObserveTime))
	b = wire.AppendVarint(b, int64(st.TotalTime))
	b = wire.AppendBool(b, st.PointsToCacheHit)
	b = wire.AppendUvarint(b, st.PointsToCacheHits)
	b = wire.AppendUvarint(b, st.PointsToCacheMisses)
	return wire.AppendVarint(b, int64(st.Workers))
}

func parseDiagnosis(d *wire.Dec) *core.Diagnosis {
	if !d.Bool() {
		return nil
	}
	diag := &core.Diagnosis{
		Best:   parseScore(d),
		Unique: d.Bool(),
	}
	if n, isNil := parseSliceLen(d); !isNil {
		diag.Scores = make([]statdiag.Score, n)
		for i := range diag.Scores {
			diag.Scores[i] = parseScore(d)
		}
	}
	diag.AnchorPC = ir.PC(d.Varint())
	st := &diag.Stats
	st.TotalInstrs = int(d.Varint())
	st.ExecutedInstrs = int(d.Varint())
	st.Candidates = int(d.Varint())
	st.Rank1Candidates = int(d.Varint())
	st.Patterns = int(d.Varint())
	st.DynEvents = int(d.Varint())
	st.SuccessTraces = int(d.Varint())
	st.DroppedSuccesses = int(d.Varint())
	st.PointsToTime = time.Duration(d.Varint())
	st.DecodeTime = time.Duration(d.Varint())
	st.RankTime = time.Duration(d.Varint())
	st.PatternTime = time.Duration(d.Varint())
	st.ObserveTime = time.Duration(d.Varint())
	st.TotalTime = time.Duration(d.Varint())
	st.PointsToCacheHit = d.Bool()
	st.PointsToCacheHits = d.Uvarint()
	st.PointsToCacheMisses = d.Uvarint()
	st.Workers = int(d.Varint())
	return diag
}

func appendStatus(b []byte, s *ServerStatus) []byte {
	b = wire.AppendBool(b, s != nil)
	if s == nil {
		return b
	}
	b = wire.AppendVarint(b, s.OpenConns)
	b = wire.AppendVarint(b, s.ActiveDiagnoses)
	b = wire.AppendVarint(b, s.QueuedDiagnoses)
	b = wire.AppendUvarint(b, s.CompletedDiagnoses)
	b = wire.AppendUvarint(b, s.FailedDiagnoses)
	b = wire.AppendVarint(b, int64(s.MaxConcurrent))
	b = wire.AppendVarint(b, int64(s.Workers))
	b = wire.AppendUvarint(b, s.CacheHits)
	b = wire.AppendUvarint(b, s.CacheMisses)
	b = wire.AppendVarint(b, int64(s.DiagnoseTime))
	b = wire.AppendUvarint(b, s.DroppedSuccesses)
	b = wire.AppendUvarint(b, s.DeadlineDrops)
	b = wire.AppendUvarint(b, s.OversizeRejects)
	return wire.AppendUvarint(b, s.PanicsRecovered)
}

func parseStatus(d *wire.Dec) *ServerStatus {
	if !d.Bool() {
		return nil
	}
	return &ServerStatus{
		OpenConns:          d.Varint(),
		ActiveDiagnoses:    d.Varint(),
		QueuedDiagnoses:    d.Varint(),
		CompletedDiagnoses: d.Uvarint(),
		FailedDiagnoses:    d.Uvarint(),
		MaxConcurrent:      int(d.Varint()),
		Workers:            int(d.Varint()),
		CacheHits:          d.Uvarint(),
		CacheMisses:        d.Uvarint(),
		DiagnoseTime:       time.Duration(d.Varint()),
		DroppedSuccesses:   d.Uvarint(),
		DeadlineDrops:      d.Uvarint(),
		OversizeRejects:    d.Uvarint(),
		PanicsRecovered:    d.Uvarint(),
	}
}

func appendDirective(b []byte, dir *Directive) []byte {
	b = wire.AppendString(b, string(dir.Tenant))
	b = wire.AppendUvarint(b, uint64(dir.Case))
	b = wire.AppendVarint(b, int64(dir.TriggerPC))
	b = wire.AppendVarint(b, int64(dir.Want))
	return wire.AppendVarint(b, int64(dir.Have))
}

func parseDirective(d *wire.Dec) Directive {
	return Directive{
		Tenant:    TenantID(d.String()),
		Case:      CaseID(d.Uvarint()),
		TriggerPC: ir.PC(d.Varint()),
		Want:      int(d.Varint()),
		Have:      int(d.Varint()),
	}
}

// --- snapshot size tables ---

// threadMeta is one thread's declared section in a request envelope.
type threadMeta struct {
	tid     int
	wrapped bool
	size    int64
}

// snapMeta is one snapshot's declared shape: the envelope carries it
// so a receiver knows every chunk's destination (and every snapshot's
// total size) before any ring byte arrives.
type snapMeta struct {
	present bool
	time    int64
	threads []threadMeta
}

// bytes totals the declared ring payload.
func (m snapMeta) bytes() int64 {
	var n int64
	for _, th := range m.threads {
		n += th.size
	}
	return n
}

// appendSnapMeta writes one snapshot's size table. tids is the
// snapshot's ascending-tid order, computed once per snapshot by
// writeBinaryRequest and shared with the chunk emitter — sorting it
// twice showed up in the upload profile.
func appendSnapMeta(b []byte, snap *pt.Snapshot, tids []int) []byte {
	b = wire.AppendBool(b, snap != nil)
	if snap == nil {
		return b
	}
	b = wire.AppendVarint(b, snap.Time)
	b = wire.AppendUvarint(b, uint64(len(tids)))
	for _, tid := range tids {
		th := snap.Threads[tid]
		b = wire.AppendVarint(b, int64(tid))
		b = wire.AppendBool(b, th.Wrapped)
		b = wire.AppendUvarint(b, uint64(len(th.Data)))
	}
	return b
}

// maxDeclaredThreads bounds a snapshot's declared thread count; far
// above any real program, low enough that a hostile envelope cannot
// make the parser allocate much.
const maxDeclaredThreads = 1 << 20

func parseSnapMeta(d *wire.Dec) snapMeta {
	if !d.Bool() {
		return snapMeta{}
	}
	m := snapMeta{present: true, time: d.Varint()}
	n := d.Uvarint()
	if n > maxDeclaredThreads {
		d.Fail("implausible declared thread count")
		return snapMeta{}
	}
	m.threads = make([]threadMeta, 0, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		m.threads = append(m.threads, threadMeta{
			tid:     int(d.Varint()),
			wrapped: d.Bool(),
			size:    int64(d.Uvarint()),
		})
	}
	return m
}

// --- request envelope + chunks ---

// payloadPool recycles envelope/response build buffers.
var payloadPool = sync.Pool{New: func() any { return make([]byte, 0, 2048) }}

// appendRequestPayload builds the envelope payload. tids holds each
// snapshot's ascending-tid order, indexed [Snapshot, Snapshots...].
func appendRequestPayload(b []byte, req *Request, tids [][]int) []byte {
	b = appendKind(b, reqKindCodes, req.Kind)
	b = appendFailure(b, req.Failure)
	b = wire.AppendString(b, req.ModuleText)
	b = wire.AppendString(b, string(req.Tenant))
	b = wire.AppendUvarint(b, uint64(req.Case))
	b = wire.AppendString(b, req.Client)
	b = wire.AppendUvarint(b, req.Seq)
	b = wire.AppendVarint(b, int64(req.RoutePC))
	b = wire.AppendBool(b, req.Routed)
	b = appendSnapMeta(b, req.Snapshot, tids[0])
	b = appendSliceLen(b, len(req.Snapshots), req.Snapshots == nil)
	for i, snap := range req.Snapshots {
		b = appendSnapMeta(b, snap, tids[i+1])
	}
	return b
}

// partsPool recycles the chunker's gather list across messages.
var partsPool = sync.Pool{New: func() any { return new([][]byte) }}

// chunker coalesces ring slices into chunk frames: a message's ring
// bytes form one logical stream (threads in declared order, snapshots
// in envelope order) that is cut into MaxChunkBytes frames wherever it
// happens to fall — crossing thread and snapshot boundaries freely.
// One frame per ~128 KB instead of one per thread is where the binary
// codec's encode throughput comes from on fleet batches of many small
// snapshots: each frame costs a header, two checksum passes and a
// reader round trip, so tiny threads must not each pay it. Slices are
// handed to the writer as a vector (FrameParts), never gathered into
// an intermediate buffer.
type chunker struct {
	w     *wire.Writer
	parts [][]byte
	size  int
	err   error
}

func (c *chunker) add(data []byte) {
	for c.err == nil && len(data) > 0 {
		n := wire.MaxChunkBytes - c.size
		if n > len(data) {
			n = len(data)
		}
		c.parts = append(c.parts, data[:n])
		c.size += n
		data = data[n:]
		if c.size == wire.MaxChunkBytes {
			c.flush()
		}
	}
}

func (c *chunker) flush() {
	if c.err == nil && c.size > 0 {
		c.err = c.w.FrameParts(wire.FrameChunk, c.parts...)
	}
	c.parts = c.parts[:0]
	c.size = 0
}

// writeBinaryRequest frames one request (envelope, then coalesced
// chunk frames). The caller flushes.
func writeBinaryRequest(w *wire.Writer, req *Request) error {
	snaps := make([]*pt.Snapshot, 1, 1+len(req.Snapshots))
	snaps[0] = req.Snapshot
	snaps = append(snaps, req.Snapshots...)
	tids := make([][]int, len(snaps))
	for i, snap := range snaps {
		if snap != nil {
			tids[i] = snap.Tids()
		}
	}
	b := payloadPool.Get().([]byte)[:0]
	b = appendRequestPayload(b, req, tids)
	err := w.Frame(wire.FrameRequest, b)
	payloadPool.Put(b[:0])
	if err != nil {
		return err
	}
	parts := partsPool.Get().(*[][]byte)
	ch := chunker{w: w, parts: (*parts)[:0]}
	for i, snap := range snaps {
		if snap == nil {
			continue
		}
		for _, tid := range tids[i] {
			ch.add(snap.Threads[tid].Data)
		}
	}
	ch.flush()
	*parts = ch.parts[:0]
	partsPool.Put(parts)
	return ch.err
}

// RequestEnvelope is a request's first frame, decoded: every field
// except the snapshot ring bytes, which are still on the wire as
// Chunks() chunk frames. It is the shard router's streaming primitive
// — enough to route (Kind, Tenant, RoutePC, the failure PC) without
// buffering a single ring byte.
type RequestEnvelope struct {
	// Req has every scalar field populated; Snapshot/Snapshots are nil
	// until Assemble consumes the chunk frames.
	Req      Request
	payload  []byte
	metas    []snapMeta
	snapsNil bool
}

// ParseRequestEnvelope decodes an envelope payload — the body of a
// FrameRequest frame, without its type byte. It is the entry the
// shard router's relay path uses on frames captured raw (NextRaw):
// parse to route, forward the bytes untouched.
func ParseRequestEnvelope(payload []byte) (*RequestEnvelope, error) {
	return parseRequestEnvelope(payload)
}

// parseRequestEnvelope decodes an envelope payload.
func parseRequestEnvelope(payload []byte) (*RequestEnvelope, error) {
	d := wire.NewDec(payload)
	env := &RequestEnvelope{payload: payload}
	req := &env.Req
	req.Kind = parseKind(d, reqKindNames)
	req.Failure = parseFailure(d)
	req.ModuleText = d.String()
	req.Tenant = TenantID(d.String())
	req.Case = CaseID(d.Uvarint())
	req.Client = d.String()
	req.Seq = d.Uvarint()
	req.RoutePC = ir.PC(d.Varint())
	req.Routed = d.Bool()
	env.metas = append(env.metas, parseSnapMeta(d))
	n, isNil := parseSliceLen(d)
	env.snapsNil = isNil
	for i := 0; i < n && d.Err() == nil; i++ {
		env.metas = append(env.metas, parseSnapMeta(d))
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return env, nil
}

// ReadRequestEnvelope reads and decodes one request envelope frame.
func ReadRequestEnvelope(r *wire.Reader) (*RequestEnvelope, error) {
	typ, payload, err := r.Next()
	if err != nil {
		return nil, err
	}
	if typ != wire.FrameRequest {
		return nil, fmt.Errorf("%w: frame type 0x%02x where a request was expected", wire.ErrDecode, typ)
	}
	return parseRequestEnvelope(payload)
}

// Payload returns the raw envelope payload — what a relay forwards
// verbatim. The view aliases the reader's frame buffer: it is valid
// only until the next read on that reader (relay it before pumping
// chunks; the writer copies on Frame).
func (e *RequestEnvelope) Payload() []byte { return e.payload }

// DeclaredBytes totals the ring bytes the envelope declares across
// all its snapshots.
func (e *RequestEnvelope) DeclaredBytes() int64 {
	var n int64
	for _, m := range e.metas {
		n += m.bytes()
	}
	return n
}

// Assemble consumes the envelope's chunk frames from r, streaming
// each thread's bytes through the pt packet scanner as they arrive,
// and fills in Req.Snapshot/Req.Snapshots. It returns the number of
// pt packets stream-decoded and how many thread streams were
// malformed (informational — malformed rings are admitted, exactly as
// the gob codec admits them, and dealt with by degraded-mode
// diagnosis).
//
// Corroboration batches ("batch" requests) skip the packet scan: their
// snapshots are hashed and deduplicated on arrival — most are
// discarded as duplicates or post-quota — and any ring that a case
// actually uses is fully pt-decoded at diagnosis time. Scanning every
// upload eagerly would redo that work per arrival on the fleet's
// hottest path (the legacy gob codec never scanned at all). Structural
// enforcement — declared sizes, thread accounting, frame checksums —
// is identical in both modes.
func (e *RequestEnvelope) Assemble(r *wire.Reader) (packets, scanErrs int, err error) {
	snaps := make([]*pt.Snapshot, len(e.metas))
	scan := e.Req.Kind != "batch"
	// The chunk frames are one logical byte stream for the whole
	// message: bytes fill the declared thread sections in order,
	// crossing thread and snapshot boundaries wherever the encoder's
	// coalescing happened to cut a frame. chunk is the unconsumed tail
	// of the current frame (a view into the reader's buffer — fully
	// consumed before the next read overwrites it).
	//
	// All ring bytes land in one arena sized by the (already
	// budget-checked) declared total, carved per snapshot — one
	// allocation per message instead of one per thread.
	var arena []byte
	if total := e.DeclaredBytes(); total > 0 {
		arena = make([]byte, total)
	}
	var chunk []byte
	for i, m := range e.metas {
		if !m.present {
			continue
		}
		a := pt.NewSnapshotAssemblerUnscanned(m.time)
		if scan {
			a = pt.NewSnapshotAssembler(m.time)
		}
		if n := m.bytes(); n > 0 {
			a.UseArena(arena[:n])
			arena = arena[n:]
		}
		for _, th := range m.threads {
			if err := a.StartThread(th.tid, th.wrapped, int(th.size)); err != nil {
				return packets, scanErrs, fmt.Errorf("%w: %v", wire.ErrDecode, err)
			}
			for remaining := th.size; remaining > 0; {
				if len(chunk) == 0 {
					typ, p, err := r.Next()
					if err != nil {
						return packets, scanErrs, err
					}
					if typ != wire.FrameChunk {
						return packets, scanErrs, fmt.Errorf("%w: frame type 0x%02x where a chunk was expected", wire.ErrDecode, typ)
					}
					if len(p) == 0 {
						return packets, scanErrs, fmt.Errorf("%w: empty chunk frame", wire.ErrDecode)
					}
					chunk = p
				}
				n := int64(len(chunk))
				if n > remaining {
					n = remaining
				}
				if err := a.Feed(chunk[:n]); err != nil {
					return packets, scanErrs, fmt.Errorf("%w: %v", wire.ErrDecode, err)
				}
				chunk = chunk[n:]
				remaining -= n
			}
		}
		snap, err := a.Finish()
		if err != nil {
			return packets, scanErrs, fmt.Errorf("%w: %v", wire.ErrDecode, err)
		}
		packets += a.Packets()
		scanErrs += a.ScanErrors()
		snaps[i] = snap
	}
	if len(chunk) > 0 {
		return packets, scanErrs, fmt.Errorf("%w: %d ring bytes past the declared sizes", wire.ErrDecode, len(chunk))
	}
	e.Req.Snapshot = snaps[0]
	if !e.snapsNil {
		e.Req.Snapshots = snaps[1:]
	}
	return packets, scanErrs, nil
}

// readBinaryRequest reads one complete request: envelope frame plus
// chunk frames, stream-decoding pt packets on the way. limit (0 =
// unlimited) is the per-message byte budget — the same budget the gob
// path meters with its limited reader — checked against the declared
// sizes before a single ring byte is buffered, so an oversize message
// costs the wire time, never the heap. A breach returns
// wire.ErrFrameTooLarge: reply "message exceeds frame limit", then
// close, exactly like a tripped gob limit.
func readBinaryRequest(r *wire.Reader, limit int64) (Request, int, int, error) {
	env, err := ReadRequestEnvelope(r)
	if err != nil {
		return Request{}, 0, 0, err
	}
	if limit > 0 && int64(len(env.payload))+env.DeclaredBytes() > limit {
		return Request{}, 0, 0, wire.ErrFrameTooLarge
	}
	packets, scanErrs, err := env.Assemble(r)
	if err != nil {
		return Request{}, packets, scanErrs, err
	}
	return env.Req, packets, scanErrs, nil
}

// ReadBinaryRequest reads one complete binary-codec request — the
// envelope frame plus its streamed chunk frames — under limit as the
// per-message byte budget (0 = unlimited). It is the shard router's
// decode entry, shared with the server's accept loop so both ends
// enforce identical oversize semantics: a budget breach returns
// wire.ErrFrameTooLarge and the caller replies "message exceeds frame
// limit" before closing.
func ReadBinaryRequest(r *wire.Reader, limit int64) (Request, int, int, error) {
	return readBinaryRequest(r, limit)
}

// WriteBinaryResponse frames and flushes one response — the reply
// half of ReadBinaryRequest, for relays that speak the binary codec
// to clients.
func WriteBinaryResponse(w *wire.Writer, resp *Response) error {
	return writeBinaryResponse(w, resp)
}

// --- responses ---

func appendResponsePayload(b []byte, resp *Response) []byte {
	b = appendKind(b, respKindCodes, resp.Kind)
	b = wire.AppendVarint(b, int64(resp.TriggerPC))
	b = appendDiagnosis(b, resp.Diagnosis)
	b = appendStatus(b, resp.Status)
	b = wire.AppendString(b, resp.Err)
	b = wire.AppendString(b, resp.Code)
	b = wire.AppendString(b, string(resp.Tenant))
	b = wire.AppendUvarint(b, uint64(resp.Case))
	b = appendSliceLen(b, len(resp.Directives), resp.Directives == nil)
	for i := range resp.Directives {
		b = appendDirective(b, &resp.Directives[i])
	}
	b = wire.AppendVarint(b, int64(resp.Accepted))
	b = wire.AppendBool(b, resp.Done)
	return wire.AppendUvarint(b, resp.Seq)
}

func parseResponsePayload(payload []byte) (Response, error) {
	d := wire.NewDec(payload)
	var resp Response
	resp.Kind = parseKind(d, respKindNames)
	resp.TriggerPC = ir.PC(d.Varint())
	resp.Diagnosis = parseDiagnosis(d)
	resp.Status = parseStatus(d)
	resp.Err = d.String()
	resp.Code = d.String()
	resp.Tenant = TenantID(d.String())
	resp.Case = CaseID(d.Uvarint())
	if n, isNil := parseSliceLen(d); !isNil {
		resp.Directives = make([]Directive, n)
		for i := range resp.Directives {
			resp.Directives[i] = parseDirective(d)
		}
	}
	resp.Accepted = int(d.Varint())
	resp.Done = d.Bool()
	resp.Seq = d.Uvarint()
	if err := d.Err(); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// writeBinaryResponse frames and flushes one response (responses are
// always a single frame).
func writeBinaryResponse(w *wire.Writer, resp *Response) error {
	b := payloadPool.Get().([]byte)[:0]
	b = appendResponsePayload(b, resp)
	err := w.Frame(wire.FrameResponse, b)
	payloadPool.Put(b[:0])
	if err != nil {
		return err
	}
	return w.Flush()
}

// readBinaryResponse reads and decodes one response frame.
func readBinaryResponse(r *wire.Reader) (Response, error) {
	typ, payload, err := r.Next()
	if err != nil {
		return Response{}, err
	}
	if typ != wire.FrameResponse {
		return Response{}, fmt.Errorf("%w: frame type 0x%02x where a response was expected", wire.ErrDecode, typ)
	}
	return parseResponsePayload(payload)
}

// ReadRawResponse reads one response frame and returns both the
// decoded response and the raw payload view (valid until the next
// read) — the relay primitive: a router decodes to inspect, then
// forwards the payload verbatim so replies stay byte-identical across
// a hop.
func ReadRawResponse(r *wire.Reader) (Response, []byte, error) {
	typ, payload, err := r.Next()
	if err != nil {
		return Response{}, nil, err
	}
	if typ != wire.FrameResponse {
		return Response{}, nil, fmt.Errorf("%w: frame type 0x%02x where a response was expected", wire.ErrDecode, typ)
	}
	resp, err := parseResponsePayload(payload)
	return resp, payload, err
}
