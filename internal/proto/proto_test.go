package proto

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/ir"
)

// startServer runs a protocol server on a loopback listener.
func startServer(t *testing.T, mod *ir.Module) string {
	addr, _ := startServerHandle(t, mod)
	return addr
}

func startServerHandle(t *testing.T, mod *ir.Module) (string, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(core.NewServer(mod))
	go srv.Serve(ln)
	return ln.Addr().String(), srv
}

func TestEndToEndOverTCP(t *testing.T) {
	bug := corpus.ByID("pbzip2-1")
	failInst := bug.Build(corpus.Variant{Failing: true})
	okInst := bug.Build(corpus.Variant{Failing: false})
	addr := startServer(t, failInst.Mod)

	conn, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Client side: reproduce the failure under trace.
	failClient := core.NewClient(failInst.Mod)
	rep := failClient.Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatal("expected failure")
	}
	trigger, err := conn.ReportFailure(rep.Failure, rep.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if trigger != rep.Failure.PC {
		t.Errorf("trigger = %d, want failure PC %d", trigger, rep.Failure.PC)
	}

	// Ten successful executions traced at the trigger.
	okClient := core.NewClient(okInst.Mod)
	sent := 0
	for seed := int64(1); sent < 10 && seed < 40; seed++ {
		okRep := okClient.Run(seed, trigger)
		if okRep.Failed() || !okRep.Triggered {
			continue
		}
		if err := conn.SendSuccess(okRep.Snapshot); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	if sent != 10 {
		t.Fatalf("sent %d successful traces", sent)
	}

	d, err := conn.RequestDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if d.Best.Pattern == nil || d.Best.F1 != 1.0 {
		t.Fatalf("diagnosis over the wire = %+v", d.Best)
	}
	truth := core.Truth{Kind: failInst.TruthKind, Sub: failInst.TruthSub,
		PCs: failInst.TruthPCs, Absence: failInst.TruthAbsence}
	if !core.MatchesTruth(d.Best.Pattern, truth) {
		t.Errorf("wire diagnosis %s does not match truth", d.Best.Pattern.Key())
	}
}

func TestDiagnoseBeforeFailureErrors(t *testing.T) {
	inst := corpus.ByID("aget-1").Build(corpus.Variant{Failing: true})
	addr := startServer(t, inst.Mod)
	conn, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = conn.RequestDiagnosis()
	if err == nil || !strings.Contains(err.Error(), "before failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestMalformedFailureRejected(t *testing.T) {
	inst := corpus.ByID("aget-1").Build(corpus.Variant{Failing: true})
	addr := startServer(t, inst.Mod)
	conn, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = conn.ReportFailure(nil, nil)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownRequestRejected(t *testing.T) {
	inst := corpus.ByID("aget-1").Build(corpus.Variant{Failing: true})
	addr := startServer(t, inst.Mod)
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.roundTrip(Request{Kind: "frobnicate"}); err == nil ||
		!strings.Contains(err.Error(), "unknown request") {
		t.Fatalf("err = %v", err)
	}
}

func TestPipeTransport(t *testing.T) {
	// The protocol must also work over an in-memory pipe (no TCP).
	bug := corpus.ByID("memcached-2")
	failInst := bug.Build(corpus.Variant{Failing: true})
	srv := NewServer(core.NewServer(failInst.Mod))
	a, b := net.Pipe()
	defer a.Close()
	go srv.handle(b)

	conn := NewConn(a)
	rep := core.NewClient(failInst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatal("expected failure")
	}
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	d, err := conn.RequestDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	// With zero successful traces the diagnosis still ranks patterns
	// (statistics are just weaker).
	if len(d.Scores) == 0 {
		t.Error("no scores without success traces")
	}
}

// TestConcurrentClientsFullFlow drives N simultaneous clients through
// the complete protocol — failure upload, success uploads, diagnosis —
// against one shared server. Every client ships the same reproduction,
// so every diagnosis must agree; run under -race this covers the
// semaphore, the counters and the shared analysis cache.
func TestConcurrentClientsFullFlow(t *testing.T) {
	bug := corpus.ByID("pbzip2-1")
	failInst := bug.Build(corpus.Variant{Failing: true})
	okInst := bug.Build(corpus.Variant{Failing: false})
	addr, srv := startServerHandle(t, failInst.Mod)

	// Reproduce once; all clients upload identical reports so the
	// diagnoses must be identical too.
	rep := core.NewClient(failInst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatal("expected failure")
	}
	okClient := core.NewClient(okInst.Mod)
	var oks []*core.RunReport
	for seed := int64(1); len(oks) < 5 && seed < 40; seed++ {
		okRep := okClient.Run(seed, rep.Failure.PC)
		if !okRep.Failed() && okRep.Triggered {
			oks = append(oks, okRep)
		}
	}
	if len(oks) < 5 {
		t.Fatalf("gathered %d/5 successful traces", len(oks))
	}

	const clients = 6
	keys := make(chan string, clients)
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func() {
			conn, err := Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
				errs <- err
				return
			}
			for _, ok := range oks {
				if err := conn.SendSuccess(ok.Snapshot); err != nil {
					errs <- err
					return
				}
			}
			d, err := conn.RequestDiagnosis()
			if err != nil {
				errs <- err
				return
			}
			if d.Best.Pattern == nil {
				errs <- fmt.Errorf("empty diagnosis")
				return
			}
			keys <- d.Best.Pattern.Key()
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	first := <-keys
	for c := 1; c < clients; c++ {
		if k := <-keys; k != first {
			t.Errorf("client diagnoses disagree: %s vs %s", k, first)
		}
	}

	st := srv.Status()
	if st.CompletedDiagnoses != clients {
		t.Errorf("completed = %d, want %d", st.CompletedDiagnoses, clients)
	}
	if st.ActiveDiagnoses != 0 || st.QueuedDiagnoses != 0 {
		t.Errorf("active/queued = %d/%d after drain, want 0/0",
			st.ActiveDiagnoses, st.QueuedDiagnoses)
	}
	if st.CacheHits+st.CacheMisses != clients {
		t.Errorf("cache hits+misses = %d, want %d", st.CacheHits+st.CacheMisses, clients)
	}
	if st.CacheHits == 0 {
		t.Error("identical uploads produced no cache hits")
	}
	if st.DiagnoseTime <= 0 {
		t.Error("no diagnosis wall time recorded")
	}
}

// TestStatusOverWire exercises the "status" request end to end.
func TestStatusOverWire(t *testing.T) {
	inst := corpus.ByID("aget-1").Build(corpus.Variant{Failing: true})
	addr, _ := startServerHandle(t, inst.Mod)
	conn, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	st, err := conn.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.OpenConns != 1 {
		t.Errorf("open conns = %d, want 1", st.OpenConns)
	}
	if st.MaxConcurrent < 1 || st.Workers < 1 {
		t.Errorf("effective knobs = %d/%d, want >= 1", st.MaxConcurrent, st.Workers)
	}
	if st.CompletedDiagnoses != 0 {
		t.Errorf("completed = %d before any diagnosis", st.CompletedDiagnoses)
	}

	// Status is valid mid-conversation too (after a failure upload).
	rep := core.NewClient(inst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatal("expected failure")
	}
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.RequestDiagnosis(); err != nil {
		t.Fatal(err)
	}
	st, err = conn.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.CompletedDiagnoses != 1 {
		t.Errorf("completed = %d, want 1", st.CompletedDiagnoses)
	}
}

func TestConcurrentClients(t *testing.T) {
	bug := corpus.ByID("aget-1")
	failInst := bug.Build(corpus.Variant{Failing: true})
	addr := startServer(t, failInst.Mod)

	const clients = 4
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			conn, err := Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			rep := core.NewClient(failInst.Mod).Run(int64(c)+1, ir.NoPC)
			if !rep.Failed() {
				errs <- fmt.Errorf("client %d: no failure", c)
				return
			}
			if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
				errs <- err
				return
			}
			d, err := conn.RequestDiagnosis()
			if err != nil {
				errs <- err
				return
			}
			if len(d.Scores) == 0 {
				errs <- fmt.Errorf("client %d: empty diagnosis", c)
				return
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
