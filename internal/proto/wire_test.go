package proto

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/pt"
	"snorlax/internal/wire"
)

// dialWire opens a client connection pinned to one codec.
func dialWire(t *testing.T, addr string, v WireVersion) *Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConnWire(nc, v)
	t.Cleanup(func() { c.Close() })
	return c
}

var bothCodecs = []WireVersion{WireBinary, WireGob}

// TestBinaryRequestRoundTrip pushes every request kind — including
// multi-snapshot batches with real ring bytes — through the binary
// envelope+chunks encoding and requires the decode to be deep-equal.
func TestBinaryRequestRoundTrip(t *testing.T) {
	_, rep := reproduce(t, "aget-1")
	fx := newFleetFixture(t, 2)
	reqs := []Request{
		{Kind: "failure", Failure: rep.Failure, Snapshot: rep.Snapshot},
		{Kind: "success", Snapshot: rep.Snapshot},
		{Kind: "success", Snapshot: bigSnapshot(300 << 10)}, // > MaxChunkBytes: multi-chunk
		{Kind: "success", Snapshot: &pt.Snapshot{Threads: map[int]pt.SnapshotThread{
			3: {Wrapped: true}, 9: {Data: []byte{1}}}, Time: 77}}, // zero-size wrapped thread
		{Kind: "diagnose"},
		{Kind: "status"},
		{Kind: "register", ModuleText: fx.moduleTx},
		{Kind: "fleet-failure", Tenant: "t", Failure: fx.failing.Failure, Snapshot: fx.failing.Snapshot},
		{Kind: "directives", Tenant: "t"},
		{Kind: "batch", Tenant: "t", Case: 7, Client: "agent-3", Seq: 41,
			Snapshots: fx.okSnaps[:2], RoutePC: fx.failing.Failure.PC, Routed: true},
		{Kind: "batch", Tenant: "t", Case: 7, Client: "agent-3", Seq: 1,
			Snapshots: []*pt.Snapshot{nil, fx.okSnaps[0]}}, // nil slot survives
		{Kind: "report", Tenant: "t", Case: 7, RoutePC: 0, Routed: true},
	}
	for i, req := range reqs {
		var buf bytes.Buffer
		w := wire.NewWriter(&buf)
		if err := writeBinaryRequest(w, &req); err != nil {
			t.Fatalf("req %d (%s): write: %v", i, req.Kind, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := wire.NewReader(bytes.NewReader(buf.Bytes()), 0)
		got, _, _, err := readBinaryRequest(r, 0)
		if err != nil {
			t.Fatalf("req %d (%s): read: %v", i, req.Kind, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("req %d (%s): decode differs from the original", i, req.Kind)
		}
	}
}

// TestBinaryResponseRoundTrip covers every response field, pinning in
// particular that the batch ledger mark (Seq) survives the wire — the
// field the lost-reply reconciliation depends on.
func TestBinaryResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Kind: "ok"},
		{Kind: "error", Err: "message exceeds frame limit", Code: CodeUnknownTenant},
		{Kind: "failure-ack", TriggerPC: 42},
		{Kind: "directives", Directives: []Directive{
			{Tenant: "t", Case: 3, TriggerPC: 9, Want: 10, Have: 4}}},
		{Kind: "directives", Directives: []Directive{}},
		{Kind: "batch", Tenant: "t", Case: 3, Accepted: 2, Done: true, Seq: 12345},
		{Kind: "status", Status: &ServerStatus{OpenConns: 3, CompletedDiagnoses: 9,
			CacheHits: 1, DiagnoseTime: 3 * time.Second, OversizeRejects: 2}},
	}
	for i, resp := range resps {
		b := appendResponsePayload(nil, &resp)
		got, err := parseResponsePayload(b)
		if err != nil {
			t.Fatalf("resp %d (%s): parse: %v", i, resp.Kind, err)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Fatalf("resp %d (%s): decode differs from the original", i, resp.Kind)
		}
	}
}

// TestCodecsProduceIdenticalDiagnoses is the differential oracle: the
// same prepared session replayed over a binary and a gob connection
// must publish bit-identical diagnoses.
func TestCodecsProduceIdenticalDiagnoses(t *testing.T) {
	inst, rep, uploads := diagnosisSession(t, "aget-1", 6)
	addr := startServer(t, inst.Mod)
	diags := make(map[WireVersion]*core.Diagnosis)
	for _, v := range bothCodecs {
		diags[v] = runSession(t, dialWire(t, addr, v), rep, uploads)
	}
	bin, gob := diags[WireBinary], diags[WireGob]
	// Stats carry wall-clock timings and cache counters that naturally
	// differ run to run; every analytic field must match exactly.
	if !reflect.DeepEqual(bin.Scores, gob.Scores) || !reflect.DeepEqual(bin.Best, gob.Best) ||
		bin.Unique != gob.Unique || bin.AnchorPC != gob.AnchorPC {
		t.Fatalf("binary and gob sessions published different diagnoses:\nbinary: %+v\ngob: %+v", bin, gob)
	}
	if bin.Stats.SuccessTraces != gob.Stats.SuccessTraces ||
		bin.Stats.DroppedSuccesses != gob.Stats.DroppedSuccesses ||
		bin.Stats.DynEvents != gob.Stats.DynEvents {
		t.Fatalf("codecs fed the diagnosis different trace material:\nbinary: %+v\ngob: %+v",
			bin.Stats, gob.Stats)
	}
}

// TestOversizeSemanticsPerCodec is the cross-codec oversize table: at
// the cap, one byte over the cap, a frame-limit breach, and a torn
// frame must behave identically on both codecs — same reply strings,
// same counters, same connection fate.
func TestOversizeSemanticsPerCodec(t *testing.T) {
	const cap = 8 << 10
	for _, v := range bothCodecs {
		t.Run(v.String(), func(t *testing.T) {
			addr, srv, rep := startCappedServerAddr(t, "aget-1", cap)
			conn := dialWire(t, addr, v)

			if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
				t.Fatal(err)
			}
			// At the cap: admitted.
			if err := conn.SendSuccess(bigSnapshot(cap)); err != nil {
				t.Fatalf("at-cap snapshot rejected: %v", err)
			}
			// One byte over: deterministic rejection, connection survives.
			var se *ServerError
			if err := conn.SendSuccess(bigSnapshot(cap + 1)); !errors.As(err, &se) ||
				!strings.Contains(err.Error(), "cap") {
				t.Fatalf("cap+1 snapshot: err = %v, want a cap ServerError", err)
			}
			if err := conn.SendSuccess(bigSnapshot(16)); err != nil {
				t.Fatalf("connection did not survive a semantic oversize reject: %v", err)
			}
			if n := srv.Status().OversizeRejects; n != 1 {
				t.Errorf("OversizeRejects = %d after cap+1, want 1", n)
			}

			// Frame-limit breach: reply (racing the close) and the
			// connection dies.
			if err := conn.SendSuccess(bigSnapshot(1 << 20)); err == nil {
				t.Fatal("frame-limit breach accepted")
			}
			if _, err := conn.Status(); err == nil {
				t.Fatal("connection survived a frame-limit breach")
			}
			if n := srv.Status().OversizeRejects; n != 2 {
				t.Errorf("OversizeRejects = %d after frame breach, want 2", n)
			}

			// Torn frame: a partial message followed by close is a
			// transport failure — no reply, and the server keeps serving.
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			if v == WireBinary {
				var torn bytes.Buffer
				w := wire.NewWriter(&torn)
				w.Preamble(wire.Version1)
				w.Frame(wire.FrameRequest, make([]byte, 100))
				w.Flush()
				nc.Write(torn.Bytes()[:torn.Len()-40])
			} else {
				nc.Write([]byte{0x2c, 0xff}) // a truncated gob type descriptor
			}
			nc.(*net.TCPConn).CloseWrite()
			if got, _ := io.ReadAll(nc); len(got) != 0 {
				t.Fatalf("torn frame drew a %d-byte reply, want silence", len(got))
			}
			nc.Close()
			fresh := dialWire(t, addr, v)
			if _, err := fresh.Status(); err != nil {
				t.Fatalf("server unusable after a torn frame: %v", err)
			}
		})
	}
}

// startCappedServerAddr starts a snapshot-capped TCP server and
// returns its address, for tests that dial with an explicit codec.
func startCappedServerAddr(t *testing.T, bugID string, snapCap int64) (string, *Server, *core.RunReport) {
	t.Helper()
	inst, rep := reproduce(t, bugID)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(core.NewServer(inst.Mod))
	srv.MaxSnapshotBytes = snapCap
	go srv.Serve(ln)
	return ln.Addr().String(), srv, rep
}

// TestUploadBatchLedgerReplayCarriesMark is the lost-reply regression:
// a replayed batch must return the same ledger high-water mark as the
// original, so an agent that never saw the first reply can reconcile
// its accepted count instead of under-counting from the dedup's
// Accepted 0.
func TestUploadBatchLedgerReplayCarriesMark(t *testing.T) {
	for _, v := range bothCodecs {
		t.Run(v.String(), func(t *testing.T) {
			fx := newFleetFixture(t, 3)
			addr, _ := startServerHandle(t, fx.mod)
			c := dialWire(t, addr, v)
			id, err := c.Register(fx.moduleTx)
			if err != nil {
				t.Fatal(err)
			}
			caseID, _, _, err := c.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
			if err != nil {
				t.Fatal(err)
			}
			pc := fx.failing.Failure.PC
			accepted, ledger, _, err := c.UploadBatchLedger(id, caseID, pc, "agent-0", 1, fx.okSnaps[:2])
			if err != nil || accepted != 2 || ledger != 2 {
				t.Fatalf("first batch = (%d, %d, %v), want (2, 2, nil)", accepted, ledger, err)
			}
			// The reply was "lost"; the replay dedupes to Accepted 0 but
			// must carry the original mark.
			accepted, ledger, _, err = c.UploadBatchLedger(id, caseID, pc, "agent-0", 1, fx.okSnaps[:2])
			if err != nil || accepted != 0 || ledger != 2 {
				t.Fatalf("replayed batch = (%d, %d, %v), want (0, 2, nil)", accepted, ledger, err)
			}
			// A fresh batch advances the mark by exactly its admissions.
			accepted, ledger, _, err = c.UploadBatchLedger(id, caseID, pc, "agent-0", 3, fx.okSnaps[2:3])
			if err != nil || accepted != 1 || ledger != 3 {
				t.Fatalf("next batch = (%d, %d, %v), want (1, 3, nil)", accepted, ledger, err)
			}
		})
	}
}

// TestFleetLedgerGaugeReturnsToBaseline is the ledger-leak regression:
// closing (publishing) a case must prune every per-client sequence
// entry, returning the ledger gauge to its pre-case baseline, and a
// post-close replay must not resurrect any of it.
func TestFleetLedgerGaugeReturnsToBaseline(t *testing.T) {
	fx := newFleetFixture(t, DefaultFleetQuota)
	addr, srv := startServerHandle(t, fx.mod)
	reg := srv.Metrics()
	if v := gaugeVal(t, reg, MetricFleetLedgerEntries); v != 0 {
		t.Fatalf("ledger gauge baseline = %d, want 0", v)
	}
	c := dialFleet(t, addr)
	id, err := c.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}
	caseID, _, _, err := c.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	pc := fx.failing.Failure.PC
	half := DefaultFleetQuota / 2
	if _, _, err := c.UploadBatch(id, caseID, pc, "agent-0", 1, fx.okSnaps[:half]); err != nil {
		t.Fatal(err)
	}
	if v := gaugeVal(t, reg, MetricFleetLedgerEntries); v != 1 {
		t.Fatalf("ledger gauge after one client = %d, want 1", v)
	}
	_, done, err := c.UploadBatch(id, caseID, pc, "agent-1", 1, fx.okSnaps[half:])
	if err != nil || !done {
		t.Fatalf("quota-crossing batch: done=%v, err=%v", done, err)
	}
	if v := gaugeVal(t, reg, MetricFleetLedgerEntries); v != 0 {
		t.Fatalf("ledger gauge after publish = %d, want 0 (entries leaked)", v)
	}
	// A late replay neither resurrects ledger entries nor reports a
	// mark it no longer holds.
	accepted, ledger, done, err := c.UploadBatchLedger(id, caseID, pc, "agent-0", 1, fx.okSnaps[:1])
	if err != nil || accepted != 0 || ledger != 0 || !done {
		t.Fatalf("post-close replay = (%d, %d, done=%v, %v), want (0, 0, true, nil)", accepted, ledger, done, err)
	}
	if v := gaugeVal(t, reg, MetricFleetLedgerEntries); v != 0 {
		t.Fatalf("ledger gauge after post-close replay = %d, want 0", v)
	}
}

// TestRestoreRebuildsPrunedLedger holds crash recovery to the same
// shape as the live server: an open case's ledger is rebuilt entry for
// entry, a closed case's ledger stays pruned, and the gauge agrees.
func TestRestoreRebuildsPrunedLedger(t *testing.T) {
	const quota = 6
	fx := newFleetFixture(t, quota)
	dir := t.TempDir()
	addr, srv, _ := startDurableServer(t, fx.mod, dir, quota)
	c := dialFleet(t, addr)
	id, err := c.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}
	caseID, _, _, err := c.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	pc := fx.failing.Failure.PC
	if _, _, err := c.UploadBatch(id, caseID, pc, "agent-0", 1, fx.okSnaps[:3]); err != nil {
		t.Fatal(err)
	}
	shutdownServer(t, srv)

	// Open case: recovery rebuilds the one ledger entry and a replay
	// returns the pre-crash mark.
	addr2, srv2, _ := startDurableServer(t, fx.mod, dir, quota)
	if v := gaugeVal(t, srv2.Metrics(), MetricFleetLedgerEntries); v != 1 {
		t.Fatalf("ledger gauge after recovery = %d, want 1", v)
	}
	c2 := dialFleet(t, addr2)
	accepted, ledger, _, err := c2.UploadBatchLedger(id, caseID, pc, "agent-0", 1, fx.okSnaps[:3])
	if err != nil || accepted != 0 || ledger != 3 {
		t.Fatalf("recovered replay = (%d, %d, %v), want (0, 3, nil)", accepted, ledger, err)
	}
	// Fill the quota so the case publishes and prunes, then crash again.
	if _, done, err := c2.UploadBatch(id, caseID, pc, "agent-0", 4, fx.okSnaps[3:6]); err != nil || !done {
		t.Fatalf("quota fill: done=%v, err=%v", done, err)
	}
	if v := gaugeVal(t, srv2.Metrics(), MetricFleetLedgerEntries); v != 0 {
		t.Fatalf("ledger gauge after publish = %d, want 0", v)
	}
	shutdownServer(t, srv2)

	// Closed case: recovery must land on the pruned shape.
	addr3, srv3, _ := startDurableServer(t, fx.mod, dir, quota)
	if v := gaugeVal(t, srv3.Metrics(), MetricFleetLedgerEntries); v != 0 {
		t.Fatalf("ledger gauge after recovering a closed case = %d, want 0", v)
	}
	c3 := dialFleet(t, addr3)
	accepted, ledger, done, err := c3.UploadBatchLedger(id, caseID, pc, "agent-0", 1, fx.okSnaps[:1])
	if err != nil || accepted != 0 || ledger != 0 || !done {
		t.Fatalf("post-recovery replay = (%d, %d, done=%v, %v), want (0, 0, true, nil)", accepted, ledger, done, err)
	}
}

// TestDefaultJitterSeedsDiverge is the thundering-herd regression: two
// clients with zero-value retry configs must not share a backoff
// schedule, while explicit seeds stay deterministic.
func TestDefaultJitterSeedsDiverge(t *testing.T) {
	schedule := func(cfg RetryConfig) []time.Duration {
		r := DialRetrying("tcp", "127.0.0.1:1", cfg)
		defer r.Close()
		var ds []time.Duration
		for a := 1; a <= 6; a++ {
			ds = append(ds, r.backoffDelay(a))
		}
		return ds
	}
	a := schedule(RetryConfig{})
	b := schedule(RetryConfig{})
	if reflect.DeepEqual(a, b) {
		t.Fatalf("two default-config clients share the backoff schedule %v — the herd reconnects in lockstep", a)
	}
	if x, y := schedule(RetryConfig{JitterSeed: 99}), schedule(RetryConfig{JitterSeed: 99}); !reflect.DeepEqual(x, y) {
		t.Fatalf("explicit equal seeds produced different schedules:\n%v\n%v", x, y)
	}
	if DeriveJitterSeed() == DeriveJitterSeed() {
		t.Fatal("DeriveJitterSeed returned the same seed twice in a row")
	}
}

// TestLazyScanPolicy pins which requests pay the informational pt
// scan at ingest: diagnosis-bound snapshots (failure reports) are
// scanned while they arrive; corroboration batches are only validated
// structurally — their rings get a full pt.Decode at diagnosis time,
// so an eager scan per upload would be redundant work on the fleet's
// hottest path.
func TestLazyScanPolicy(t *testing.T) {
	_, rep := reproduce(t, "aget-1")
	fx := newFleetFixture(t, 2)
	cases := []struct {
		req     Request
		scanned bool
	}{
		{Request{Kind: "failure", Failure: rep.Failure, Snapshot: rep.Snapshot}, true},
		{Request{Kind: "fleet-failure", Tenant: "t", Failure: fx.failing.Failure, Snapshot: fx.failing.Snapshot}, true},
		{Request{Kind: "batch", Tenant: "t", Case: 7, Client: "a", Seq: 1,
			Snapshots: fx.okSnaps[:2], RoutePC: fx.failing.Failure.PC, Routed: true}, false},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		w := wire.NewWriter(&buf)
		if err := writeBinaryRequest(w, &tc.req); err != nil {
			t.Fatalf("%s: write: %v", tc.req.Kind, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := wire.NewReader(bytes.NewReader(buf.Bytes()), 0)
		_, packets, scanErrs, err := readBinaryRequest(r, 0)
		if err != nil {
			t.Fatalf("%s: read: %v", tc.req.Kind, err)
		}
		if tc.scanned && packets == 0 {
			t.Errorf("%s: no packets scanned on a diagnosis-bound snapshot", tc.req.Kind)
		}
		if !tc.scanned && (packets != 0 || scanErrs != 0) {
			t.Errorf("%s: batch ingest scanned (packets=%d scanErrs=%d), want lazy",
				tc.req.Kind, packets, scanErrs)
		}
	}
}
