package proto

// Metrics-consistency suite: the server's observable surfaces — the
// ServerStatus reply, the metrics registry, and the Prometheus text
// rendering — must agree with each other and with what actually
// happened on the wire. Each test drives a real session (diagnoses,
// injected transport faults, corrupt and oversize uploads) and then
// cross-checks every counter against its registry counterpart.

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/faultnet"
	"snorlax/internal/ir"
	"snorlax/internal/obs"
	"snorlax/internal/pt"
	"snorlax/internal/store"
)

// sessionConn is the client surface both the plain and the retrying
// transport expose; the consistency flows run over either.
type sessionConn interface {
	ReportFailure(f *core.FailureReport, snap *pt.Snapshot) (ir.PC, error)
	SendSuccess(snap *pt.Snapshot) error
	RequestDiagnosis() (*core.Diagnosis, error)
}

// diagnosisSession gathers one failing run and n successful triggered
// runs of bug, ready to replay against a server.
func diagnosisSession(t *testing.T, bugID string, n int) (*corpus.Instance, *core.RunReport, []*pt.Snapshot) {
	t.Helper()
	bug := corpus.ByID(bugID)
	failInst := bug.Build(corpus.Variant{Failing: true})
	rep := core.NewClient(failInst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatal("expected failure")
	}
	okClient := core.NewClient(bug.Build(corpus.Variant{Failing: false}).Mod)
	var uploads []*pt.Snapshot
	for seed := int64(1); len(uploads) < n && seed < 100; seed++ {
		r := okClient.Run(seed, rep.Failure.PC)
		if !r.Failed() && r.Triggered {
			uploads = append(uploads, r.Snapshot)
		}
	}
	if len(uploads) < n {
		t.Fatalf("gathered %d/%d success traces", len(uploads), n)
	}
	return failInst, rep, uploads
}

// runSession replays a prepared session over conn.
func runSession(t *testing.T, conn sessionConn, rep *core.RunReport, uploads []*pt.Snapshot) *core.Diagnosis {
	t.Helper()
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	for i, snap := range uploads {
		if err := conn.SendSuccess(snap); err != nil {
			t.Fatalf("SendSuccess %d: %v", i, err)
		}
	}
	d, err := conn.RequestDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// corruptRing fills every thread ring with 0xFF: a perfectly valid
// wire message that no packet decoder accepts, so degraded-mode
// diagnosis must drop (and count) it.
func corruptRing(snap *pt.Snapshot) *pt.Snapshot {
	out := &pt.Snapshot{Threads: make(map[int]pt.SnapshotThread, len(snap.Threads)), Time: snap.Time}
	for tid, th := range snap.Threads {
		data := make([]byte, len(th.Data))
		for i := range data {
			data[i] = 0xFF
		}
		out.Threads[tid] = pt.SnapshotThread{Data: data, Wrapped: th.Wrapped}
	}
	return out
}

func findMetric(t *testing.T, reg *obs.Registry, name string, labels ...obs.Label) *obs.Metric {
	t.Helper()
	m := reg.Find(name, labels...)
	if m == nil {
		t.Fatalf("metric %s%v not registered", name, labels)
	}
	return m
}

func counterVal(t *testing.T, reg *obs.Registry, name string, labels ...obs.Label) uint64 {
	t.Helper()
	return findMetric(t, reg, name, labels...).Counter.Value()
}

func gaugeVal(t *testing.T, reg *obs.Registry, name string, labels ...obs.Label) int64 {
	t.Helper()
	return findMetric(t, reg, name, labels...).Gauge.Value()
}

// assertStatusMatchesRegistry is the single-source-of-truth check:
// every ServerStatus field must equal the registry series it claims to
// be a view of. Call it only on a quiesced server (no in-flight
// requests), since the two reads are not atomic.
func assertStatusMatchesRegistry(t *testing.T, srv *Server) {
	t.Helper()
	st := srv.Status()
	reg := srv.Metrics()
	checks := []struct {
		field     string
		got, want interface{}
	}{
		{"OpenConns", st.OpenConns, gaugeVal(t, reg, MetricOpenConns)},
		{"ActiveDiagnoses", st.ActiveDiagnoses, gaugeVal(t, reg, MetricActiveDiagnoses)},
		{"QueuedDiagnoses", st.QueuedDiagnoses, gaugeVal(t, reg, MetricQueuedDiagnoses)},
		{"CompletedDiagnoses", st.CompletedDiagnoses, counterVal(t, reg, MetricDiagnosesCompleted)},
		{"FailedDiagnoses", st.FailedDiagnoses, counterVal(t, reg, MetricDiagnosesFailed)},
		{"MaxConcurrent", int64(st.MaxConcurrent), gaugeVal(t, reg, MetricMaxConcurrent)},
		{"Workers", int64(st.Workers), gaugeVal(t, reg, MetricWorkers)},
		{"CacheHits", st.CacheHits, counterVal(t, reg, core.MetricCacheHits)},
		{"CacheMisses", st.CacheMisses, counterVal(t, reg, core.MetricCacheMisses)},
		{"DroppedSuccesses", st.DroppedSuccesses, counterVal(t, reg, core.MetricDroppedSuccesses)},
		{"DeadlineDrops", st.DeadlineDrops, counterVal(t, reg, MetricDeadlineDrops)},
		{"OversizeRejects", st.OversizeRejects, counterVal(t, reg, MetricOversizeRejects)},
		{"PanicsRecovered", st.PanicsRecovered, counterVal(t, reg, MetricPanicsRecovered)},
		{"DiagnoseTime", st.DiagnoseTime,
			findMetric(t, reg, MetricDiagnoseSeconds).Histogram.SumDuration()},
	}
	for _, c := range checks {
		if fmt.Sprint(c.got) != fmt.Sprint(c.want) {
			t.Errorf("ServerStatus.%s = %v, but the registry says %v", c.field, c.got, c.want)
		}
	}
}

// stageCounts returns every pipeline stage histogram's sample count.
func stageCounts(t *testing.T, reg *obs.Registry) map[string]uint64 {
	t.Helper()
	counts := make(map[string]uint64, len(obs.StageNames))
	for _, name := range obs.StageNames {
		counts[name] = findMetric(t, reg, obs.StageSecondsName, obs.L("stage", name)).Histogram.Count()
	}
	return counts
}

// TestMetricsConsistencyEndToEnd drives a full diagnosis — including
// one corrupt success upload — over TCP and cross-checks every
// observable surface: status-vs-registry equality, stage histogram
// counts in lockstep with the diagnosis count, and nonzero byte
// accounting.
func TestMetricsConsistencyEndToEnd(t *testing.T) {
	failInst, rep, uploads := diagnosisSession(t, "pbzip2-1", 4)
	uploads[2] = corruptRing(uploads[2])
	addr, srv := startServerHandle(t, failInst.Mod)

	conn, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	d := runSession(t, conn, rep, uploads)
	if d.Stats.DroppedSuccesses != 1 {
		t.Fatalf("DroppedSuccesses = %d, want 1", d.Stats.DroppedSuccesses)
	}
	if _, err := conn.Status(); err != nil { // exercise the "status" request kind too
		t.Fatal(err)
	}

	reg := srv.Metrics()
	if got := counterVal(t, reg, core.MetricDiagnoses); got != 1 {
		t.Errorf("%s = %d, want 1", core.MetricDiagnoses, got)
	}
	for name, count := range stageCounts(t, reg) {
		if count != 1 {
			t.Errorf("stage %q histogram count = %d, want 1 (stages must move in lockstep with diagnoses)",
				name, count)
		}
	}
	if got := counterVal(t, reg, core.MetricSuccessTraces); got != 3 {
		t.Errorf("%s = %d, want 3 (4 uploads, 1 corrupt)", core.MetricSuccessTraces, got)
	}
	if got := counterVal(t, reg, core.MetricDroppedSuccesses); got != 1 {
		t.Errorf("%s = %d, want 1", core.MetricDroppedSuccesses, got)
	}
	for _, kind := range []struct {
		kind string
		want uint64
	}{{"failure", 1}, {"success", 4}, {"diagnose", 1}, {"status", 1}} {
		if got := counterVal(t, reg, MetricRequests, obs.L("kind", kind.kind)); got != kind.want {
			t.Errorf("requests{kind=%q} = %d, want %d", kind.kind, got, kind.want)
		}
	}
	if rx := counterVal(t, reg, MetricRxBytes); rx == 0 {
		t.Error("rx_bytes = 0 after a full session")
	}
	if tx := counterVal(t, reg, MetricTxBytes); tx == 0 {
		t.Error("tx_bytes = 0 after a full session")
	}
	// Queue-depth gauges must return to zero once quiescent.
	if q := gaugeVal(t, reg, core.MetricObserveQueueDepth); q != 0 {
		t.Errorf("observe queue depth = %d after quiesce, want 0", q)
	}
	if q := gaugeVal(t, reg, core.MetricObserveInflight); q != 0 {
		t.Errorf("observe inflight = %d after quiesce, want 0", q)
	}
	assertStatusMatchesRegistry(t, srv)
}

// TestMetricsConsistencyUnderFaults replays the session through a
// seeded fault injector with a retrying client: after convergence the
// status/registry invariant must still hold, and the protocol-error
// counters must reflect exactly one completed diagnosis regardless of
// how many transport retries it took.
func TestMetricsConsistencyUnderFaults(t *testing.T) {
	failInst, rep, uploads := diagnosisSession(t, "pbzip2-1", 3)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	inj := faultnet.New(faultnet.Config{
		Seed: 1, FaultEvery: 2, MaxFaults: 6, Stall: time.Millisecond})
	srv := NewServer(core.NewServer(failInst.Mod))
	srv.IdleTimeout = 5 * time.Second
	srv.WriteTimeout = 5 * time.Second
	go srv.Serve(inj.Listener(ln))

	addr := ln.Addr().String()
	rc := NewRetryClient(
		inj.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) }),
		RetryConfig{MaxAttempts: 16, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond})
	defer rc.Close()
	runSession(t, rc, rep, uploads)

	if inj.Stats().Total() == 0 {
		t.Error("the fault schedule never fired; the test proved nothing")
	}
	reg := srv.Metrics()
	if got := counterVal(t, reg, MetricDiagnosesCompleted); got != 1 {
		t.Errorf("completed diagnoses = %d through chaos, want exactly 1", got)
	}
	for name, count := range stageCounts(t, reg) {
		if count != 1 {
			t.Errorf("stage %q histogram count = %d under faults, want 1", name, count)
		}
	}
	assertStatusMatchesRegistry(t, srv)
}

// TestOversizeRejectCounted uploads a snapshot past a tiny byte cap
// and checks the rejection lands in the registry and in ServerStatus
// as the same count.
func TestOversizeRejectCounted(t *testing.T) {
	inst := corpus.ByID("aget-1").Build(corpus.Variant{Failing: true})
	rep := core.NewClient(inst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatal("expected failure")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(core.NewServer(inst.Mod))
	srv.MaxSnapshotBytes = 16
	go srv.Serve(ln)
	conn, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversize upload error = %v", err)
	}
	if got := counterVal(t, srv.Metrics(), MetricOversizeRejects); got != 1 {
		t.Errorf("oversize rejects = %d, want 1", got)
	}
	if st := srv.Status(); st.OversizeRejects != 1 {
		t.Errorf("ServerStatus.OversizeRejects = %d, want 1", st.OversizeRejects)
	}
	assertStatusMatchesRegistry(t, srv)
}

// TestStageHistogramsTrackRepeatedDiagnoses re-runs the diagnosis on
// one connection: all eight stage histograms and the diagnosis
// counters must advance together, and cumulative diagnose time must
// be monotone.
func TestStageHistogramsTrackRepeatedDiagnoses(t *testing.T) {
	inst := corpus.ByID("aget-1").Build(corpus.Variant{Failing: true})
	rep := core.NewClient(inst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatal("expected failure")
	}
	addr, srv := startServerHandle(t, inst.Mod)
	conn, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	var lastTime time.Duration
	for i := 1; i <= rounds; i++ {
		if _, err := conn.RequestDiagnosis(); err != nil {
			t.Fatal(err)
		}
		st := srv.Status()
		if st.CompletedDiagnoses != uint64(i) {
			t.Fatalf("round %d: completed = %d", i, st.CompletedDiagnoses)
		}
		if st.DiagnoseTime < lastTime {
			t.Errorf("round %d: DiagnoseTime went backwards (%v -> %v)", i, lastTime, st.DiagnoseTime)
		}
		lastTime = st.DiagnoseTime
	}
	reg := srv.Metrics()
	for name, count := range stageCounts(t, reg) {
		if count != rounds {
			t.Errorf("stage %q histogram count = %d, want %d", name, count, rounds)
		}
	}
	if got := counterVal(t, reg, core.MetricDiagnoses); got != rounds {
		t.Errorf("core diagnoses counter = %d, want %d", got, rounds)
	}
	if got := findMetric(t, reg, MetricDiagnoseSeconds).Histogram.Count(); got != rounds {
		t.Errorf("diagnose_seconds count = %d, want %d", got, rounds)
	}
	// After the first round the points-to analysis is cached.
	if st := srv.Status(); st.CacheMisses != 1 || st.CacheHits != rounds-1 {
		t.Errorf("cache hits/misses = %d/%d, want %d/1", st.CacheHits, st.CacheMisses, rounds-1)
	}
	assertStatusMatchesRegistry(t, srv)
}

// seriesRE matches one exposition sample line: name, optional labels,
// value.
var seriesRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)

// histKey canonicalizes a bucket series' identity: family plus all
// labels except le.
func histKey(family, labels string) string {
	var keep []string
	for _, kv := range strings.Split(labels, ",") {
		if kv != "" && !strings.HasPrefix(kv, `le="`) {
			keep = append(keep, kv)
		}
	}
	return family + "{" + strings.Join(keep, ",") + "}"
}

// validateExposition parses a Prometheus text page and enforces the
// format invariants every scraper relies on: HELP/TYPE exactly once
// per family, every sample line well-formed with a TYPE, bucket
// series cumulative with ascending le ending at +Inf, and the +Inf
// bucket equal to the _count series.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	helpSeen := map[string]int{}
	typeOf := map[string]string{}
	type histState struct {
		les, cum         []float64
		count, sum       float64
		hasCount, hasSum bool
	}
	hists := map[string]*histState{}
	histOf := func(fam, labels string) *histState {
		k := histKey(fam, labels)
		if hists[k] == nil {
			hists[k] = &histState{}
		}
		return hists[k]
	}

	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			helpSeen[parts[0]]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			if _, dup := typeOf[parts[0]]; dup {
				t.Errorf("family %s has more than one TYPE line", parts[0])
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("family %s has unknown type %q", parts[0], parts[1])
			}
			typeOf[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unknown comment line: %q", line)
			continue
		}
		m := seriesRE.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name, labels, valStr := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Errorf("sample %s has unparseable value %q", name, valStr)
			continue
		}
		family := name
		switch {
		case strings.HasSuffix(name, "_bucket") && typeOf[strings.TrimSuffix(name, "_bucket")] == "histogram":
			family = strings.TrimSuffix(name, "_bucket")
			le := ""
			for _, kv := range strings.Split(labels, ",") {
				if strings.HasPrefix(kv, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(kv, `le="`), `"`)
				}
			}
			leV, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Errorf("bucket %q has unparseable le %q", line, le)
				continue
			}
			h := histOf(family, labels)
			h.les = append(h.les, leV)
			h.cum = append(h.cum, val)
		case strings.HasSuffix(name, "_count") && typeOf[strings.TrimSuffix(name, "_count")] == "histogram":
			family = strings.TrimSuffix(name, "_count")
			h := histOf(family, labels)
			h.count, h.hasCount = val, true
		case strings.HasSuffix(name, "_sum") && typeOf[strings.TrimSuffix(name, "_sum")] == "histogram":
			family = strings.TrimSuffix(name, "_sum")
			h := histOf(family, labels)
			h.sum, h.hasSum = val, true
		}
		if _, ok := typeOf[family]; !ok {
			t.Errorf("sample %s appears before/without a TYPE for family %s", name, family)
		}
	}

	for fam, n := range helpSeen {
		if n != 1 {
			t.Errorf("family %s has %d HELP lines, want 1", fam, n)
		}
		if _, ok := typeOf[fam]; !ok {
			t.Errorf("family %s has HELP but no TYPE", fam)
		}
	}
	if len(hists) == 0 {
		t.Error("no histogram series found on the page")
	}
	for key, h := range hists {
		if !h.hasCount || !h.hasSum {
			t.Errorf("histogram %s is missing _count or _sum", key)
			continue
		}
		if len(h.les) == 0 || !isInf(h.les[len(h.les)-1]) {
			t.Errorf("histogram %s does not end with a +Inf bucket", key)
			continue
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				t.Errorf("histogram %s: le bounds not ascending at %d", key, i)
			}
			if h.cum[i] < h.cum[i-1] {
				t.Errorf("histogram %s: buckets not cumulative at %d", key, i)
			}
		}
		if h.cum[len(h.cum)-1] != h.count {
			t.Errorf("histogram %s: +Inf bucket %v != count %v", key, h.cum[len(h.cum)-1], h.count)
		}
		if h.count > 0 && h.sum < 0 {
			t.Errorf("histogram %s: negative sum %v for duration metric", key, h.sum)
		}
	}
}

func isInf(v float64) bool { return v > 1e308 }

// TestMetricsEndpointServesValidExposition scrapes a populated server
// the way Prometheus would and validates the whole page, plus the
// pprof side of the debug mux.
func TestMetricsEndpointServesValidExposition(t *testing.T) {
	failInst, rep, uploads := diagnosisSession(t, "pbzip2-1", 2)
	addr, srv := startServerHandle(t, failInst.Mod)
	conn, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	runSession(t, conn, rep, uploads)

	mux := obs.DebugMux(srv.Metrics())
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rr.Body.String()
	validateExposition(t, body)

	// Every pipeline stage must be present on the page.
	for _, name := range obs.StageNames {
		series := fmt.Sprintf(`%s_count{stage=%q}`, obs.StageSecondsName, name)
		if !strings.Contains(body, series) {
			t.Errorf("exposition is missing stage series %s", series)
		}
	}

	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rr.Code != 200 {
		t.Errorf("GET /debug/pprof/ = %d", rr.Code)
	}
}

// TestStoreMetricsConsistency puts the WAL on the fleet server's
// shared registry, drives a full case over the wire, and cross-checks
// every store counter three ways: the WAL's Stats view, the registry,
// and the rendered /metrics page a deployment scrapes.
func TestStoreMetricsConsistency(t *testing.T) {
	const quota = 4
	fx := newFleetFixture(t, quota)
	srv := NewServer(core.NewServer(fx.mod))
	srv.FleetQuota = quota
	w, err := store.Open(t.TempDir(), store.Options{
		SyncPolicy: store.SyncAlways,
		Registry:   srv.Metrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Store = w
	if err := srv.Restore(w.RecoveredState()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	c := dialFleet(t, ln.Addr().String())
	id, err := c.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}
	caseID, _, _, err := c.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", 1, fx.okSnaps[:quota]); err != nil || !done {
		t.Fatalf("quota-filling upload: done=%v, err=%v", done, err)
	}
	if _, done, err := c.FetchReport(id, caseID, fx.failing.Failure.PC); err != nil || !done {
		t.Fatalf("report not published: done=%v, err=%v", done, err)
	}

	// register + open + quota accepts + quota-reached + publish + close.
	st := w.Stats()
	if want := uint64(quota + 5); st.AppendedRecords != want {
		t.Errorf("AppendedRecords = %d, want %d", st.AppendedRecords, want)
	}
	reg := srv.Metrics()
	for name, want := range map[string]uint64{
		store.MetricStoreAppendedRecords:     st.AppendedRecords,
		store.MetricStoreAppendedBytes:       st.AppendedBytes,
		store.MetricStoreFsyncs:              st.Fsyncs,
		store.MetricStoreSnapshots:           st.Snapshots,
		store.MetricStoreCompactions:         st.Compactions,
		store.MetricStoreTruncatedRecoveries: st.TruncatedRecoveries,
	} {
		if got := counterVal(t, reg, name); got != want {
			t.Errorf("%s = %d, Stats says %d", name, got, want)
		}
	}
	if got := gaugeVal(t, reg, store.MetricStoreSegments); got != st.Segments {
		t.Errorf("%s = %d, Stats says %d", store.MetricStoreSegments, got, st.Segments)
	}
	if got := gaugeVal(t, reg, store.MetricStoreLastLSN); got != int64(st.LastLSN) {
		t.Errorf("%s = %d, Stats says %d", store.MetricStoreLastLSN, got, st.LastLSN)
	}
	if m := findMetric(t, reg, store.MetricStoreRecordBytes); m.Histogram.Count() != st.AppendedRecords {
		t.Errorf("%s count = %d, want %d observations",
			store.MetricStoreRecordBytes, m.Histogram.Count(), st.AppendedRecords)
	}

	// The scraped page includes the store families and stays a valid
	// exposition with them on it.
	mux := obs.DebugMux(reg)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	body := rr.Body.String()
	validateExposition(t, body)
	for _, want := range []string{
		fmt.Sprintf("%s %d", store.MetricStoreAppendedRecords, st.AppendedRecords),
		fmt.Sprintf("%s %d", store.MetricStoreLastLSN, st.LastLSN),
		"# TYPE " + store.MetricStoreRecordBytes + " histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics page is missing %q", want)
		}
	}
}
