// Fleet mode: one analysis server, many programs, many production
// clients (§4.5, Figure 2 scaled out).
//
// A tenant is a registered program, identified by the fingerprint of
// its canonical IR text; registrations of byte-identical programs land
// on the same tenant, whose core.Server — and therefore whose
// points-to analysis cache — is shared across every client running
// that program. A failure report opens a diagnosis case (idempotently:
// concurrent reports of the same failure PC join one case) and arms a
// collection directive, "snapshot successful executions at PC X".
// Agents poll directives, run with the trigger armed, and batch-upload
// triggered snapshots; each upload carries a client id and a sequence
// number so replays after a lost reply are deduplicated instead of
// double-counted toward the quota. When a case reaches its success
// quota (the paper's 10×), the directive disarms, the server runs Lazy
// Diagnosis on exactly the accepted traces, and the report is
// published for any client of the tenant to fetch.
package proto

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/pt"
	"snorlax/internal/store"
)

// TenantID identifies a registered program: the hex SHA-256 of its
// canonical (printed) IR text. Two registrations of the same program —
// from different clients, or the same client reconnecting — always
// map to the same tenant.
type TenantID string

// CaseID numbers diagnosis cases within one tenant.
type CaseID uint64

// DefaultFleetQuota is the per-case success-trace quota: the paper's
// empirically-determined 10× successful traces per failing trace.
const DefaultFleetQuota = 10

// ModuleFingerprint computes a module's tenant id from its canonical
// printed form, so layout-identical programs fingerprint equal no
// matter which textual variant they were parsed from.
func ModuleFingerprint(mod *ir.Module) TenantID {
	sum := sha256.Sum256([]byte(ir.Print(mod)))
	return TenantID(hex.EncodeToString(sum[:]))
}

// Directive is a server-pushed collection order: run with a trace
// trigger armed at TriggerPC and upload triggered success snapshots
// until the case has Want of them. Have lets agents (and operators)
// see quota progress; a directive disappears from the "directives"
// reply once the quota is met.
type Directive struct {
	Tenant    TenantID
	Case      CaseID
	TriggerPC ir.PC
	// Want and Have are the case's success-trace quota and how many
	// uploads have been accepted toward it.
	Want, Have int
}

// tenant is one registered program and its open cases.
type tenant struct {
	id   TenantID
	core *core.Server

	nextCase CaseID
	cases    map[CaseID]*fleetCase
	// byPC maps a failure PC to its case, making case-opening
	// idempotent: a fleet reporting the same crash from every replica
	// yields one case, not one per replica.
	byPC map[ir.PC]CaseID
}

// fleetCase is one failure under diagnosis.
type fleetCase struct {
	id        CaseID
	triggerPC ir.PC
	failing   *core.RunReport
	successes []*core.RunReport
	want      int
	// seen tracks, per reporting client, the highest snapshot sequence
	// number accepted — the dedupe ledger that makes batch upload
	// idempotent across retries.
	seen map[string]uint64
	// collecting is true while the directive is armed; done flips when
	// the diagnosis (or its error) is published.
	collecting bool
	done       bool
	diag       *core.Diagnosis
	diagErr    string
}

func (c *fleetCase) directive(t TenantID) Directive {
	return Directive{Tenant: t, Case: c.id, TriggerPC: c.triggerPC,
		Want: c.want, Have: len(c.successes)}
}

func (s *Server) fleetQuota() int {
	if s.FleetQuota > 0 {
		return s.FleetQuota
	}
	return DefaultFleetQuota
}

// logFleet appends one record to the durable store, when configured.
// Every caller holds fleetMu across the append and the state mutation
// it describes, so log order always equals state-transition order —
// the invariant recovery replay depends on. An append error means the
// transition must not happen (the client sees an "error" reply and
// retries; every fleet operation is idempotent).
func (s *Server) logFleet(rec *store.Record) error {
	if s.Store == nil {
		return nil
	}
	return s.Store.Append(rec)
}

// RegisterProgram registers mod as a tenant (idempotently) and returns
// its id. The tenant's analysis server shares the module-identity
// points-to cache across every connection diagnosing this program, and
// registers its pipeline metrics on the server's one registry, so
// fleet-wide counters aggregate across tenants.
func (s *Server) RegisterProgram(mod *ir.Module) (TenantID, error) {
	s.init()
	id := ModuleFingerprint(mod)
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	if s.tenants[id] != nil {
		return id, nil
	}
	if err := s.logFleet(&store.Record{Type: store.RecProgramRegistered,
		Tenant: string(id), ModuleText: ir.Print(mod)}); err != nil {
		return "", err
	}
	s.addTenantLocked(id, mod)
	return id, nil
}

// addTenantLocked creates (or finds) the tenant's in-memory state
// without logging — registration and recovery share it, the former
// after logging the record, the latter while replaying one.
func (s *Server) addTenantLocked(id TenantID, mod *ir.Module) *tenant {
	if s.tenants == nil {
		s.tenants = make(map[TenantID]*tenant)
	}
	if t, ok := s.tenants[id]; ok {
		return t
	}
	cs := core.NewServer(mod)
	cs.Workers = s.Core.Workers
	cs.PT = s.Core.PT
	cs.MaxSuccessTraces = s.Core.MaxSuccessTraces
	cs.UseRegistry(s.Core.Metrics())
	t := &tenant{
		id:   id,
		core: cs,
		// Case numbering starts above the shard's base, so ids from
		// different shards never collide.
		nextCase: CaseID(s.CaseBase),
		cases:    make(map[CaseID]*fleetCase),
		byPC:     make(map[ir.PC]CaseID),
	}
	s.tenants[id] = t
	s.om.fleetTenants.Inc()
	return t
}

// registerText parses and registers a client-uploaded program.
func (s *Server) registerText(text string) (TenantID, error) {
	mod, err := ir.Parse(text)
	if err != nil {
		return "", fmt.Errorf("parsing module: %w", err)
	}
	return s.RegisterProgram(mod)
}

func (s *Server) tenantByID(id TenantID) *tenant {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	return s.tenants[id]
}

// openCase opens (or joins) the case for a failure. Reports of a PC
// whose case already exists — collecting or already diagnosed — join
// it; the first report's snapshot is the failing trace of record.
// Opening a new case is logged before the case exists, so a crash on
// either side of the append leaves log and state agreeing.
func (s *Server) openCase(t *tenant, failure *core.FailureReport, snap *pt.Snapshot) (*fleetCase, error) {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	if id, ok := t.byPC[failure.PC]; ok {
		return t.cases[id], nil
	}
	id := t.nextCase + 1
	want := s.fleetQuota()
	if err := s.logFleet(&store.Record{Type: store.RecCaseOpened, Tenant: string(t.id),
		Case: uint64(id), TriggerPC: failure.PC, Want: want,
		Failure: failure, Snapshot: snap}); err != nil {
		return nil, err
	}
	t.nextCase = id
	c := &fleetCase{
		id:         id,
		triggerPC:  failure.PC,
		failing:    &core.RunReport{Failure: failure, Snapshot: snap},
		want:       want,
		seen:       make(map[string]uint64),
		collecting: true,
	}
	t.cases[c.id] = c
	t.byPC[failure.PC] = c.id
	s.om.fleetArmed.Inc()
	s.om.fleetQuotaWant.Add(int64(c.want))
	return c, nil
}

// directives lists the tenant's armed directives, in case order.
// (Iterating the map and sorting — rather than counting up from 1 —
// keeps this correct under a nonzero CaseBase, where ids start far
// above zero.)
func (s *Server) directives(t *tenant) []Directive {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	var out []Directive
	for _, c := range t.cases {
		if c.collecting {
			out = append(out, c.directive(t.id))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Case < out[j].Case })
	return out
}

// acceptBatch admits a batch of success snapshots into a case,
// deduplicating against each client's sequence ledger, and reports
// whether this batch crossed the quota (making the caller run the
// diagnosis). Snapshots are accepted in sequence order; a sequence
// number at or below the client's ledger is a replay and is skipped
// without consuming quota.
// Each admitted snapshot is logged (with its ledger entry) before it
// joins the case; an append failure stops the batch there, and the
// unacknowledged tail is simply re-offered by the client's retry and
// deduplicated against the ledger.
// The returned ledger value is the client's post-batch high-water
// mark; it rides the reply so agents whose reply was lost can
// reconcile their accepted counts against it.
func (s *Server) acceptBatch(t *tenant, c *fleetCase, client string, seq uint64, snaps []*pt.Snapshot) (accepted int, ledger uint64, crossed bool, err error) {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	if c.seen == nil {
		// The case is closed and its ledger pruned: nothing to dedupe
		// against and nothing left to accept. The reply mirrors a
		// quota-met case (zero accepted, done), so late uploaders and
		// replays see the same shape they always did — without
		// resurrecting ledger entries for a dead case.
		return 0, 0, false, nil
	}
	seen, tracked := c.seen[client]
	for i, snap := range snaps {
		sq := seq + uint64(i)
		if sq <= seen {
			continue // replayed after a lost reply: already counted
		}
		if !c.collecting || len(c.successes) >= c.want {
			break // quota met: leave the ledger so a retry re-offers nothing
		}
		if snap == nil {
			seen = sq
			continue
		}
		if err = s.logFleet(&store.Record{Type: store.RecTraceAccepted, Tenant: string(t.id),
			Case: uint64(c.id), Client: client, Seq: sq, Snapshot: snap}); err != nil {
			break
		}
		c.successes = append(c.successes, &core.RunReport{Snapshot: snap})
		seen = sq
		accepted++
	}
	c.seen[client] = seen
	if !tracked {
		s.om.fleetLedger.Inc()
	}
	if accepted > 0 {
		s.om.fleetQuotaHave.Add(int64(accepted))
	}
	if err == nil && c.collecting && len(c.successes) >= c.want {
		// The disarm is logged before it happens; if the append fails,
		// the accepted traces above stay good and the next batch (or
		// recovery) re-detects the full quota and retries the disarm.
		if err = s.logFleet(&store.Record{Type: store.RecQuotaReached,
			Tenant: string(t.id), Case: uint64(c.id)}); err != nil {
			return accepted, seen, false, err
		}
		c.collecting = false
		crossed = true
		s.om.fleetArmed.Dec()
		s.om.fleetQuotaWant.Add(-int64(c.want))
		s.om.fleetQuotaHave.Add(-int64(len(c.successes)))
	}
	return accepted, seen, crossed, err
}

// publishCase runs Lazy Diagnosis on the case's accepted traces and
// publishes the verdict. It runs in whichever connection handler
// crossed the quota — synchronously, so Shutdown's drain covers it —
// and must be called exactly once per case, without the fleet lock.
func (s *Server) publishCase(t *tenant, c *fleetCase) {
	d, err := s.diagnose(t.core, c.failing, c.successes)
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	rec := &store.Record{Type: store.RecReportPublished, Tenant: string(t.id), Case: uint64(c.id)}
	if err != nil {
		rec.DiagErr = err.Error()
	} else {
		rec.Diagnosis = d
	}
	// An append failure here does not block the publish: the diagnosis
	// is deterministic, so a recovery that never saw these records
	// re-runs it and lands on the identical verdict. The store's
	// sticky error still surfaces at Shutdown.
	if s.logFleet(rec) == nil {
		s.logFleet(&store.Record{Type: store.RecCaseClosed,
			Tenant: string(t.id), Case: uint64(c.id)})
	}
	c.done = true
	// The case is closed, so its dedup ledger can never admit another
	// trace — prune it, or a long-lived server leaks one entry per
	// (client, case) forever. The close record above is the logged
	// transition: replaying it prunes the persisted ledger too, so
	// Restore rebuilds exactly this post-prune state.
	if n := len(c.seen); n > 0 {
		s.om.fleetLedger.Add(-int64(n))
	}
	c.seen = nil
	if err != nil {
		c.diagErr = err.Error()
		return
	}
	c.diag = d
	s.om.fleetReports.Inc()
}

// caseByID resolves a case within a tenant.
func (s *Server) caseByID(t *tenant, id CaseID) *fleetCase {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	return t.cases[id]
}

// FleetCaseTraces exposes a case's failing trace and accepted success
// traces, in acceptance order — the exact inputs the published report
// was diagnosed from. Tests use it to assert the fleet path is
// bit-identical to a direct Diagnose call on the same traces.
func (s *Server) FleetCaseTraces(tenant TenantID, id CaseID) (failing *core.RunReport, successes []*core.RunReport, ok bool) {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	t := s.tenants[tenant]
	if t == nil {
		return nil, nil, false
	}
	c := t.cases[id]
	if c == nil {
		return nil, nil, false
	}
	return c.failing, append([]*core.RunReport(nil), c.successes...), true
}

// serveFleetRequest routes the fleet request kinds. Shapes mirror the
// single-program kinds: deterministic rejections reply "error" and
// keep the connection; only reply failures close it.
func (s *Server) serveFleetRequest(req Request, reply func(Response) bool) bool {
	switch req.Kind {
	case "register":
		if s.DisableRegistration {
			return reply(Response{Kind: "error", Err: "program registration is disabled on this server"})
		}
		if req.ModuleText == "" {
			return reply(Response{Kind: "error", Err: "register request missing module text"})
		}
		id, err := s.registerText(req.ModuleText)
		if err != nil {
			return reply(Response{Kind: "error", Err: err.Error()})
		}
		return reply(Response{Kind: "registered", Tenant: id})
	case "fleet-failure":
		t := s.tenantByID(req.Tenant)
		if t == nil {
			return reply(Response{Kind: "error", Code: CodeUnknownTenant, Err: fmt.Sprintf("unknown tenant %q", req.Tenant)})
		}
		if req.Failure == nil || req.Snapshot == nil {
			return reply(Response{Kind: "error", Err: "fleet-failure request missing report or snapshot"})
		}
		if cap := s.maxSnapshotBytes(); cap > 0 && snapshotBytes(req.Snapshot) > cap {
			s.om.oversizeRejects.Inc()
			return reply(Response{Kind: "error", Err: fmt.Sprintf("failure snapshot exceeds %d-byte cap", cap)})
		}
		c, err := s.openCase(t, req.Failure, req.Snapshot)
		if err != nil {
			return reply(Response{Kind: "error", Err: err.Error()})
		}
		s.fleetMu.Lock()
		resp := Response{Kind: "case", Tenant: t.id, Case: c.id,
			Directives: []Directive{c.directive(t.id)}, Done: c.done}
		s.fleetMu.Unlock()
		return reply(resp)
	case "directives":
		t := s.tenantByID(req.Tenant)
		if t == nil {
			return reply(Response{Kind: "error", Code: CodeUnknownTenant, Err: fmt.Sprintf("unknown tenant %q", req.Tenant)})
		}
		return reply(Response{Kind: "directives", Tenant: t.id, Directives: s.directives(t)})
	case "batch":
		t := s.tenantByID(req.Tenant)
		if t == nil {
			return reply(Response{Kind: "error", Code: CodeUnknownTenant, Err: fmt.Sprintf("unknown tenant %q", req.Tenant)})
		}
		c := s.caseByID(t, req.Case)
		if c == nil {
			return reply(Response{Kind: "error", Code: CodeUnknownCase, Err: fmt.Sprintf("unknown case %d", req.Case)})
		}
		if req.Client == "" || req.Seq == 0 {
			return reply(Response{Kind: "error", Err: "batch request missing client id or sequence number"})
		}
		if cap := s.maxSnapshotBytes(); cap > 0 {
			for _, snap := range req.Snapshots {
				if snapshotBytes(snap) > cap {
					s.om.oversizeRejects.Inc()
					return reply(Response{Kind: "error", Err: fmt.Sprintf("batch snapshot exceeds %d-byte cap", cap)})
				}
			}
		}
		accepted, ledger, crossed, err := s.acceptBatch(t, c, req.Client, req.Seq, req.Snapshots)
		if err != nil {
			return reply(Response{Kind: "error", Err: err.Error()})
		}
		if crossed {
			s.publishCase(t, c)
		}
		s.fleetMu.Lock()
		resp := Response{Kind: "batch", Tenant: t.id, Case: c.id,
			Accepted: accepted, Done: c.done, Seq: ledger}
		s.fleetMu.Unlock()
		return reply(resp)
	case "report":
		t := s.tenantByID(req.Tenant)
		if t == nil {
			return reply(Response{Kind: "error", Code: CodeUnknownTenant, Err: fmt.Sprintf("unknown tenant %q", req.Tenant)})
		}
		c := s.caseByID(t, req.Case)
		if c == nil {
			return reply(Response{Kind: "error", Code: CodeUnknownCase, Err: fmt.Sprintf("unknown case %d", req.Case)})
		}
		s.fleetMu.Lock()
		defer s.fleetMu.Unlock()
		if c.diagErr != "" {
			return reply(Response{Kind: "error", Err: c.diagErr})
		}
		// Diagnosis == nil with Done == false means "still collecting or
		// diagnosing; poll again" — not an error, so retrying clients
		// don't treat an in-progress case as a rejection.
		return reply(Response{Kind: "report", Tenant: t.id, Case: c.id,
			Diagnosis: c.diag, Done: c.done})
	}
	return reply(Response{Kind: "error", Err: fmt.Sprintf("unknown request %q", req.Kind)})
}

// --- client side ---

// Register uploads a program's canonical text and returns its tenant
// id. Registering the same program twice (from any client) returns the
// same id.
func (c *Conn) Register(moduleText string) (TenantID, error) {
	resp, err := c.roundTrip(Request{Kind: "register", ModuleText: moduleText})
	if err != nil {
		return "", err
	}
	if resp.Kind != "registered" || resp.Tenant == "" {
		return "", fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return resp.Tenant, nil
}

// ReportFleetFailure reports a failure under a registered tenant and
// returns the (possibly pre-existing) case and its collection
// directive. done reports whether the case has already been diagnosed,
// in which case the report can be fetched immediately.
func (c *Conn) ReportFleetFailure(t TenantID, f *core.FailureReport, snap *pt.Snapshot) (id CaseID, d Directive, done bool, err error) {
	resp, err := c.roundTrip(Request{Kind: "fleet-failure", Tenant: t, Failure: f, Snapshot: snap})
	if err != nil {
		return 0, Directive{}, false, err
	}
	if resp.Kind != "case" || len(resp.Directives) != 1 {
		return 0, Directive{}, false, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return resp.Case, resp.Directives[0], resp.Done, nil
}

// Directives fetches the tenant's armed collection directives.
func (c *Conn) Directives(t TenantID) ([]Directive, error) {
	resp, err := c.roundTrip(Request{Kind: "directives", Tenant: t})
	if err != nil {
		return nil, err
	}
	if resp.Kind != "directives" {
		return nil, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return resp.Directives, nil
}

// UploadBatch uploads triggered success snapshots for a case. pc is
// the case's trigger PC (from the directive), which routes the request
// to the owning shard in a sharded deployment. client names the
// uploading agent and seq is the 1-based sequence number of snaps[0]
// in that agent's per-case upload stream; together they make the
// upload idempotent — a batch replayed after a lost reply is
// recognized and not double-counted toward the quota. It returns how
// many snapshots were newly accepted and whether the case's report is
// now published.
func (c *Conn) UploadBatch(t TenantID, id CaseID, pc ir.PC, client string, seq uint64, snaps []*pt.Snapshot) (accepted int, done bool, err error) {
	accepted, _, done, err = c.UploadBatchLedger(t, id, pc, client, seq, snaps)
	return accepted, done, err
}

// UploadBatchLedger is UploadBatch plus the server's view of this
// client's sequence ledger after the batch: the highest sequence
// number ever credited toward the quota for this (client, case). A
// replayed batch returns the same ledger mark as the original, so an
// agent whose reply was lost in transit can reconcile its accepted
// count against the mark instead of trusting the replay's Accepted
// (which is 0 by design — replays never consume quota twice). ledger
// is 0 when the server has no mark, i.e. the case closed and its
// ledger was pruned; callers then fall back to accepted.
func (c *Conn) UploadBatchLedger(t TenantID, id CaseID, pc ir.PC, client string, seq uint64, snaps []*pt.Snapshot) (accepted int, ledger uint64, done bool, err error) {
	resp, err := c.roundTrip(Request{Kind: "batch", Tenant: t, Case: id,
		RoutePC: pc, Routed: true,
		Client: client, Seq: seq, Snapshots: snaps})
	if err != nil {
		return 0, 0, false, err
	}
	if resp.Kind != "batch" {
		return 0, 0, false, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return resp.Accepted, resp.Seq, resp.Done, nil
}

// FetchReport fetches a case's published diagnosis; pc is the case's
// trigger PC, which routes the request to the owning shard in a
// sharded deployment. done is false while the case is still collecting
// or diagnosing (poll again); a diagnosis that failed surfaces as a
// *ServerError.
func (c *Conn) FetchReport(t TenantID, id CaseID, pc ir.PC) (d *core.Diagnosis, done bool, err error) {
	resp, err := c.roundTrip(Request{Kind: "report", Tenant: t, Case: id,
		RoutePC: pc, Routed: true})
	if err != nil {
		return nil, false, err
	}
	if resp.Kind != "report" {
		return nil, false, fmt.Errorf("proto: unexpected response %q", resp.Kind)
	}
	return resp.Diagnosis, resp.Done, nil
}
