package proto

import (
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/ir"
)

// gatherOKs collects n successful triggered traces for the bug.
func gatherOKs(t *testing.T, bugID string, trigger ir.PC, n int) []*core.RunReport {
	t.Helper()
	okInst := corpus.ByID(bugID).Build(corpus.Variant{Failing: false})
	okClient := core.NewClient(okInst.Mod)
	var oks []*core.RunReport
	for seed := int64(1); len(oks) < n && seed < int64(n*8); seed++ {
		r := okClient.Run(seed, trigger)
		if !r.Failed() && r.Triggered {
			oks = append(oks, r)
		}
	}
	if len(oks) < n {
		t.Fatalf("gathered %d/%d successful traces", len(oks), n)
	}
	return oks
}

// TestRetryClientReplaysSessionAfterConnectionLoss kills the transport
// mid-session and checks the client reconnects, replays the failure
// and every spooled success trace, and reaches the clean-run verdict.
func TestRetryClientReplaysSessionAfterConnectionLoss(t *testing.T) {
	inst, rep := reproduce(t, "pbzip2-1")
	oks := gatherOKs(t, "pbzip2-1", rep.Failure.PC, 5)
	addr, _ := startServerHandle(t, inst.Mod)

	// Clean baseline over one untouched connection.
	clean, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	if _, err := clean.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	for _, ok := range oks {
		if err := clean.SendSuccess(ok.Snapshot); err != nil {
			t.Fatal(err)
		}
	}
	want, err := clean.RequestDiagnosis()
	if err != nil {
		t.Fatal(err)
	}

	// Retrying client whose transport is murdered twice mid-session.
	var mu sync.Mutex
	var conns []net.Conn
	dial := func() (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
		return c, err
	}
	kill := func() {
		mu.Lock()
		conns[len(conns)-1].Close()
		mu.Unlock()
	}
	rc := NewRetryClient(dial, RetryConfig{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	defer rc.Close()

	if _, err := rc.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	for i, ok := range oks {
		if i == 2 {
			kill() // drop the transport under the client mid-stream
		}
		if err := rc.SendSuccess(ok.Snapshot); err != nil {
			t.Fatalf("success %d: %v", i, err)
		}
	}
	kill() // and again right before the diagnosis request
	got, err := rc.RequestDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Retries() == 0 {
		t.Error("no retries recorded despite two killed connections")
	}
	if got.Stats.SuccessTraces != want.Stats.SuccessTraces {
		t.Errorf("replayed session used %d success traces, clean run %d",
			got.Stats.SuccessTraces, want.Stats.SuccessTraces)
	}
	if !reflect.DeepEqual(got.Scores, want.Scores) || !reflect.DeepEqual(got.Best, want.Best) {
		t.Error("diagnosis after reconnect+replay diverged from the clean run")
	}
}

// TestRetryClientGivesUpEventually: a dead address exhausts the
// attempt budget instead of hanging forever.
func TestRetryClientGivesUpEventually(t *testing.T) {
	rc := DialRetrying("tcp", "127.0.0.1:1", RetryConfig{ // port 1: nothing listens
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	defer rc.Close()
	start := time.Now()
	if _, err := rc.Status(); err == nil {
		t.Fatal("Status succeeded against a dead address")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("give-up took implausibly long")
	}
	if rc.Retries() != 2 {
		t.Errorf("Retries = %d, want 2 (3 attempts = 2 retries)", rc.Retries())
	}
}

// TestRetryClientDoesNotRetryServerRejections: a deterministic server
// "error" reply must surface immediately, not burn the retry budget.
func TestRetryClientDoesNotRetryServerRejections(t *testing.T) {
	inst, _ := reproduce(t, "aget-1")
	addr, _ := startServerHandle(t, inst.Mod)
	rc := DialRetrying("tcp", addr, RetryConfig{MaxAttempts: 8, BaseDelay: time.Millisecond})
	defer rc.Close()

	var se *ServerError
	if _, err := rc.RequestDiagnosis(); !errors.As(err, &se) {
		t.Fatalf("diagnose-before-failure err = %v, want ServerError", err)
	}
	if rc.Retries() != 0 {
		t.Errorf("Retries = %d after a deterministic rejection, want 0", rc.Retries())
	}
}
