package proto

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/pt"
)

// reproduce builds the bug's failing variant and reproduces one
// failure under trace.
func reproduce(t *testing.T, bugID string) (*corpus.Instance, *core.RunReport) {
	t.Helper()
	inst := corpus.ByID(bugID).Build(corpus.Variant{Failing: true})
	rep := core.NewClient(inst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatal("expected failure")
	}
	return inst, rep
}

// TestRecoverableErrorsKeepConnection: protocol-level rejections must
// not cost the connection — the same conn completes a full diagnosis
// afterwards.
func TestRecoverableErrorsKeepConnection(t *testing.T) {
	inst, rep := reproduce(t, "aget-1")
	addr := startServer(t, inst.Mod)
	conn, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Three recoverable rejections in a row.
	if _, err := conn.roundTrip(Request{Kind: "frobnicate"}); err == nil {
		t.Fatal("unknown request accepted")
	}
	if _, err := conn.RequestDiagnosis(); err == nil || !strings.Contains(err.Error(), "before failure") {
		t.Fatalf("premature diagnose err = %v", err)
	}
	if _, err := conn.ReportFailure(nil, nil); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("malformed failure err = %v", err)
	}

	// The same connection still serves a complete conversation.
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatalf("conn did not survive recoverable errors: %v", err)
	}
	d, err := conn.RequestDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Scores) == 0 {
		t.Error("no scores after recoverable errors")
	}
}

// bigSnapshot fabricates a snapshot with the given payload size.
func bigSnapshot(bytes int) *pt.Snapshot {
	return &pt.Snapshot{Threads: map[int]pt.SnapshotThread{0: {Data: make([]byte, bytes)}}}
}

func TestOversizeSnapshotRejectedConnSurvives(t *testing.T) {
	inst, rep := reproduce(t, "aget-1")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(core.NewServer(inst.Mod))
	srv.MaxSnapshotBytes = 16 << 10
	go srv.Serve(ln)

	conn, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// 20 KB snapshot: over the 16 KB cap, well under the frame limit.
	var se *ServerError
	if _, err := conn.ReportFailure(rep.Failure, bigSnapshot(20<<10)); !errors.As(err, &se) ||
		!strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversize failure err = %v", err)
	}
	if err := conn.SendSuccess(bigSnapshot(20 << 10)); !errors.As(err, &se) {
		t.Fatalf("oversize success err = %v", err)
	}

	// Connection still alive and fully functional.
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatalf("conn did not survive oversize rejects: %v", err)
	}
	st, err := conn.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.OversizeRejects != 2 {
		t.Errorf("OversizeRejects = %d, want 2", st.OversizeRejects)
	}
}

func TestFrameLimitKillsConnection(t *testing.T) {
	inst, _ := reproduce(t, "aget-1")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(core.NewServer(inst.Mod))
	srv.MaxSnapshotBytes = 4 << 10 // frame limit ≈ 72 KB
	go srv.Serve(ln)

	conn, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A 1 MB message blows the decode-layer frame limit: the server
	// replies why and disconnects (the gob stream is unrecoverable).
	err = conn.SendSuccess(bigSnapshot(1 << 20))
	if err == nil {
		t.Fatal("oversize frame accepted")
	}
	// The reply races the close; either the explanation or a transport
	// error is acceptable, but the next call must fail: the conn is dead.
	if _, err := conn.Status(); err == nil {
		t.Fatal("connection survived a frame-limit violation")
	}
	if n := srv.Status().OversizeRejects; n != 1 {
		t.Errorf("OversizeRejects = %d, want 1", n)
	}
}

func TestSuccessCapPerConnection(t *testing.T) {
	inst, rep := reproduce(t, "aget-1")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(core.NewServer(inst.Mod))
	srv.MaxSuccessesPerConn = 2
	go srv.Serve(ln)

	conn, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := conn.SendSuccess(rep.Snapshot); err != nil {
			t.Fatalf("success %d: %v", i, err)
		}
	}
	var se *ServerError
	if err := conn.SendSuccess(rep.Snapshot); !errors.As(err, &se) || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("third success err = %v", err)
	}
	// Still serving: the session diagnoses over the two accepted traces.
	if _, err := conn.RequestDiagnosis(); err != nil {
		t.Fatalf("conn did not survive the success cap: %v", err)
	}
}

func TestIdleTimeoutDropsConnection(t *testing.T) {
	inst, _ := reproduce(t, "aget-1")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(core.NewServer(inst.Mod))
	srv.IdleTimeout = 50 * time.Millisecond
	go srv.Serve(ln)

	conn, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Status().DeadlineDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection was never deadline-dropped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := conn.Status(); err == nil {
		t.Error("request succeeded on a deadline-dropped connection")
	}
}

// TestPanicRecovery sends a failure report whose PC is outside the
// module — the analysis panics in InstrAt — and checks the server
// recovers, replies, and keeps accepting work.
func TestPanicRecovery(t *testing.T) {
	inst, rep := reproduce(t, "aget-1")
	addr, srv := startServerHandle(t, inst.Mod)
	conn, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	poisoned := *rep.Failure
	poisoned.PC = ir.PC(1 << 30)
	if _, err := conn.ReportFailure(&poisoned, rep.Snapshot); err != nil {
		t.Fatal(err) // the failure upload itself is fine; the PC detonates later
	}
	var se *ServerError
	if _, err := conn.RequestDiagnosis(); !errors.As(err, &se) || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("poisoned diagnosis err = %v", err)
	}
	st := srv.Status()
	if st.PanicsRecovered == 0 {
		t.Error("no panic recorded")
	}
	if st.FailedDiagnoses != 1 {
		t.Errorf("FailedDiagnoses = %d, want 1", st.FailedDiagnoses)
	}

	// The same connection — and server — still work.
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.RequestDiagnosis(); err != nil {
		t.Fatalf("server did not survive the panic: %v", err)
	}
}

// flakyListener fails the first accepts with a temporary error, then
// delegates.
type flakyListener struct {
	net.Listener
	failures atomic.Int32
}

type tempErr struct{}

func (tempErr) Error() string   { return "temporary accept failure" }
func (tempErr) Temporary() bool { return true }
func (tempErr) Timeout() bool   { return false }

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.failures.Add(-1) >= 0 {
		return nil, tempErr{}
	}
	return l.Listener.Accept()
}

func TestServeRetriesTemporaryAcceptErrors(t *testing.T) {
	inst, rep := reproduce(t, "aget-1")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	fl := &flakyListener{Listener: ln}
	fl.failures.Store(3)
	srv := NewServer(core.NewServer(inst.Mod))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(fl) }()

	conn, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatalf("server died on temporary accept errors: %v", err)
	}
	select {
	case err := <-done:
		t.Fatalf("Serve returned early: %v", err)
	default:
	}
	if fl.failures.Load() >= 0 {
		t.Error("flaky listener never exercised its failures")
	}
}

func TestShutdownDrains(t *testing.T) {
	inst, rep := reproduce(t, "aget-1")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(core.NewServer(inst.Mod))
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	// One client completes a diagnosis, then idles.
	conn, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.RequestDiagnosis(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if err := <-served; err != nil {
		t.Errorf("Serve returned %v after Shutdown, want nil", err)
	}
	// The drained server refuses new work.
	if _, err := Dial("tcp", ln.Addr().String()); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
	if n := srv.Status().OpenConns; n != 0 {
		t.Errorf("OpenConns = %d after Shutdown, want 0", n)
	}
}
