package proto

import (
	"errors"
	"net"
	"strings"
	"testing"

	"snorlax/internal/core"
	"snorlax/internal/wire"
)

// TestCapResolution pins the documented boundary semantics of the two
// upload caps and the derived frame limit: zero applies the documented
// default, negative disables the cap, positive passes through.
func TestCapResolution(t *testing.T) {
	tests := []struct {
		name           string
		snapCfg        int64
		succCfg        int
		wantSnap       int64
		wantSucc       int
		wantFrameLimit int64
	}{
		{"zero-applies-defaults", 0, 0,
			DefaultMaxSnapshotBytes, DefaultMaxSuccessesPerConn,
			2*DefaultMaxSnapshotBytes + wire.FrameSlackBytes},
		{"negative-means-unlimited", -1, -1, 0, 0, 0},
		{"very-negative-means-unlimited", -1 << 40, -1 << 30, 0, 0, 0},
		{"positive-passes-through", 4096, 7, 4096, 7, 2*4096 + wire.FrameSlackBytes},
		{"one-byte-cap", 1, 1, 1, 1, 2 + wire.FrameSlackBytes},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := &Server{MaxSnapshotBytes: tt.snapCfg, MaxSuccessesPerConn: tt.succCfg}
			if got := s.maxSnapshotBytes(); got != tt.wantSnap {
				t.Errorf("maxSnapshotBytes() = %d, want %d", got, tt.wantSnap)
			}
			if got := s.maxSuccesses(); got != tt.wantSucc {
				t.Errorf("maxSuccesses() = %d, want %d", got, tt.wantSucc)
			}
			if got := s.frameLimit(); got != tt.wantFrameLimit {
				t.Errorf("frameLimit() = %d, want %d", got, tt.wantFrameLimit)
			}
		})
	}
}

// startCappedServer starts a TCP server with explicit cap settings and
// returns a connected client.
func startCappedServer(t *testing.T, bugID string, snapCap int64, succCap int) (*Conn, *Server, *core.RunReport) {
	t.Helper()
	inst, rep := reproduce(t, bugID)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(core.NewServer(inst.Mod))
	srv.MaxSnapshotBytes = snapCap
	srv.MaxSuccessesPerConn = succCap
	go srv.Serve(ln)
	conn, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, srv, rep
}

// TestSnapshotCapBoundary: a snapshot whose payload is exactly the cap
// is accepted; one byte more is rejected, counted, and costs nothing
// but the request.
func TestSnapshotCapBoundary(t *testing.T) {
	const cap = 8 << 10
	conn, srv, rep := startCappedServer(t, "aget-1", cap, 0)

	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	if err := conn.SendSuccess(bigSnapshot(cap)); err != nil {
		t.Fatalf("snapshot exactly at the %d-byte cap rejected: %v", cap, err)
	}
	var se *ServerError
	if err := conn.SendSuccess(bigSnapshot(cap + 1)); !errors.As(err, &se) ||
		!strings.Contains(err.Error(), "cap") {
		t.Fatalf("snapshot one byte over the cap: err = %v, want a cap ServerError", err)
	}
	if n := srv.Status().OversizeRejects; n != 1 {
		t.Errorf("OversizeRejects = %d, want 1", n)
	}
	// The at-cap boundary holds for failure uploads too.
	if _, err := conn.ReportFailure(rep.Failure, bigSnapshot(cap)); err != nil {
		t.Fatalf("at-cap failure snapshot rejected: %v", err)
	}
	if _, err := conn.ReportFailure(rep.Failure, bigSnapshot(cap+1)); !errors.As(err, &se) {
		t.Fatalf("over-cap failure snapshot: err = %v, want ServerError", err)
	}
}

// TestSuccessCapIsPerSpool: the success cap bounds the spool of the
// current diagnosis session, and a new failure report starts a fresh
// spool — so a long-lived connection can serve many diagnoses, each
// individually capped.
func TestSuccessCapIsPerSpool(t *testing.T) {
	conn, _, rep := startCappedServer(t, "aget-1", 0, 2)

	var se *ServerError
	for round := 0; round < 2; round++ {
		if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
			t.Fatalf("round %d failure: %v", round, err)
		}
		for i := 0; i < 2; i++ {
			if err := conn.SendSuccess(rep.Snapshot); err != nil {
				t.Fatalf("round %d success %d rejected under the cap: %v", round, i, err)
			}
		}
		if err := conn.SendSuccess(rep.Snapshot); !errors.As(err, &se) ||
			!strings.Contains(err.Error(), "cap") {
			t.Fatalf("round %d over-cap success: err = %v, want a cap ServerError", round, err)
		}
	}
}

// TestSuccessCapDefaultBoundary drives the documented default (1024)
// on the wire: the 1024th trace is spooled, the 1025th is rejected.
func TestSuccessCapDefaultBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("1025 round trips")
	}
	conn, _, rep := startCappedServer(t, "aget-1", 0, 0)
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	small := bigSnapshot(8)
	for i := 0; i < DefaultMaxSuccessesPerConn; i++ {
		if err := conn.SendSuccess(small); err != nil {
			t.Fatalf("success %d rejected under the default cap: %v", i, err)
		}
	}
	var se *ServerError
	if err := conn.SendSuccess(small); !errors.As(err, &se) {
		t.Fatalf("success %d: err = %v, want the default cap ServerError",
			DefaultMaxSuccessesPerConn, err)
	}
}

// TestNegativeCapsUnlimited: negative settings disable both caps — the
// spool grows past the default limit and oversize accounting stays
// untouched.
func TestNegativeCapsUnlimited(t *testing.T) {
	if testing.Short() {
		t.Skip("1025 round trips")
	}
	conn, srv, rep := startCappedServer(t, "aget-1", -1, -1)
	if _, err := conn.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	small := bigSnapshot(8)
	for i := 0; i <= DefaultMaxSuccessesPerConn; i++ {
		if err := conn.SendSuccess(small); err != nil {
			t.Fatalf("success %d rejected with a negative (unlimited) cap: %v", i, err)
		}
	}
	if n := srv.Status().OversizeRejects; n != 0 {
		t.Errorf("OversizeRejects = %d with caps disabled, want 0", n)
	}
	// With the byte cap off the frame limit is off too: this connection
	// accepts what a default-capped one kills (see
	// TestFrameLimitKillsConnection).
	if err := conn.SendSuccess(bigSnapshot(1 << 20)); err != nil {
		t.Fatalf("1 MB snapshot rejected with caps disabled: %v", err)
	}
	if _, err := conn.RequestDiagnosis(); err != nil {
		t.Fatalf("diagnosis failed over the unlimited spool: %v", err)
	}
}
