package proto

import (
	"fmt"
	"sort"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/store"
)

// Restore rebuilds the fleet server's in-memory state from the state
// a durable store replayed at open: tenants are re-registered (their
// module text re-parsed and fingerprint-verified), cases re-armed with
// their accepted traces and per-client dedup ledgers intact, and
// published reports re-served from disk without re-running diagnosis.
// Call it once, after setting Store and before serving.
//
// Two crash windows need repair on the way in, and both are closed by
// determinism rather than by guessing: a case whose quota was met but
// whose disarm or verdict never reached the log is disarmed and
// diagnosed now — on exactly the logged traces, in logged order — so
// the published report is bit-identical to what the uninterrupted
// server would have produced; a case whose verdict was logged but not
// its close record is closed now.
func (s *Server) Restore(st *store.State) error {
	if st == nil {
		s.restored.Store(true)
		return nil
	}
	s.init()
	type deferredPublish struct {
		t *tenant
		c *fleetCase
	}
	var publish []deferredPublish
	s.fleetMu.Lock()
	for _, p := range st.Programs {
		mod, err := ir.Parse(p.ModuleText)
		if err != nil {
			s.fleetMu.Unlock()
			return fmt.Errorf("proto: restoring tenant %.12s…: %w", p.Tenant, err)
		}
		id := TenantID(p.Tenant)
		if ModuleFingerprint(mod) != id {
			s.fleetMu.Unlock()
			return fmt.Errorf("proto: restoring tenant %.12s…: module text does not match fingerprint", p.Tenant)
		}
		t := s.addTenantLocked(id, mod)
		if n := CaseID(p.NextCase); n > t.nextCase {
			t.nextCase = n
		}
		// Case numbers are strictly increasing but not contiguous
		// (shards namespace theirs under CaseBase), so walk the case
		// map in sorted order rather than counting from 1.
		cids := make([]uint64, 0, len(p.Cases))
		for cid := range p.Cases {
			cids = append(cids, cid)
		}
		sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
		for _, cid := range cids {
			cs := p.Cases[cid]
			c := &fleetCase{
				id:         CaseID(cs.ID),
				triggerPC:  cs.TriggerPC,
				failing:    &core.RunReport{Failure: cs.Failure, Snapshot: cs.FailSnapshot},
				want:       cs.Want,
				collecting: cs.Collecting,
				done:       cs.Done,
				diag:       cs.Diagnosis,
				diagErr:    cs.DiagErr,
			}
			// A closed case's ledger was pruned when the close record was
			// replayed; keep it nil here so restored state is identical to
			// the live server's post-publish state.
			if !cs.Done {
				c.seen = make(map[string]uint64, len(cs.Clients))
				for client, seq := range cs.Clients {
					c.seen[client] = seq
				}
			}
			for _, snap := range cs.Successes {
				c.successes = append(c.successes, &core.RunReport{Snapshot: snap})
			}
			published := c.diag != nil || c.diagErr != ""
			if c.collecting && len(c.successes) >= c.want {
				// Crashed between the last accept and the disarm
				// record: log the disarm this run.
				if err := s.logFleet(&store.Record{Type: store.RecQuotaReached,
					Tenant: p.Tenant, Case: cs.ID}); err != nil {
					s.fleetMu.Unlock()
					return err
				}
				c.collecting = false
			}
			if published && !c.done {
				// Crashed between the verdict and its close record.
				if err := s.logFleet(&store.Record{Type: store.RecCaseClosed,
					Tenant: p.Tenant, Case: cs.ID}); err != nil {
					s.fleetMu.Unlock()
					return err
				}
				c.done = true
				// The close record prunes the ledger on replay; match it
				// for the record logged this run.
				c.seen = nil
			}
			s.om.fleetLedger.Add(int64(len(c.seen)))
			t.cases[c.id] = c
			t.byPC[c.triggerPC] = c.id
			if c.collecting {
				// Re-arm exactly as pre-crash: the gauges resume at the
				// logged counts, so the directive's remaining quota
				// never re-requests traces already accepted.
				s.om.fleetArmed.Inc()
				s.om.fleetQuotaWant.Add(int64(c.want))
				s.om.fleetQuotaHave.Add(int64(len(c.successes)))
			}
			if c.diag != nil {
				s.om.fleetReports.Inc()
			}
			if !c.collecting && !published {
				publish = append(publish, deferredPublish{t, c})
			}
		}
	}
	s.fleetMu.Unlock()
	// Quota met before the crash but no verdict in the log: diagnose
	// now, outside the lock, exactly like the batch handler that would
	// have crossed the quota.
	for _, d := range publish {
		s.publishCase(d.t, d.c)
	}
	s.restored.Store(true)
	return nil
}
