package proto

import (
	"time"

	"snorlax/internal/obs"
)

// Protocol metric names, registered on the core server's registry so
// the whole pipeline — analysis stages, cache, wire protocol — scrapes
// as one surface and the "status" reply is a view over it.
const (
	MetricOpenConns       = "snorlax_open_conns"
	MetricActiveDiagnoses = "snorlax_active_diagnoses"
	MetricQueuedDiagnoses = "snorlax_queued_diagnoses"
	MetricMaxConcurrent   = "snorlax_max_concurrent_diagnoses"
	MetricWorkers         = "snorlax_observe_workers"

	MetricDiagnosesCompleted = "snorlax_diagnoses_completed_total"
	MetricDiagnosesFailed    = "snorlax_diagnoses_failed_total"
	MetricDeadlineDrops      = "snorlax_deadline_drops_total"
	MetricOversizeRejects    = "snorlax_oversize_rejects_total"
	MetricPanicsRecovered    = "snorlax_panics_recovered_total"
	MetricAcceptRetries      = "snorlax_accept_retries_total"
	MetricRxBytes            = "snorlax_rx_bytes_total"
	MetricTxBytes            = "snorlax_tx_bytes_total"

	MetricDiagnoseSeconds = "snorlax_diagnose_seconds"
	MetricRequests        = "snorlax_requests_total"
	MetricRequestSeconds  = "snorlax_request_seconds"

	// Fleet-mode registry gauges (see fleet.go).
	MetricFleetTenants         = "snorlax_fleet_tenants"
	MetricFleetArmedDirectives = "snorlax_fleet_armed_directives"
	MetricFleetQuotaHave       = "snorlax_fleet_quota_have"
	MetricFleetQuotaWant       = "snorlax_fleet_quota_want"
	MetricFleetReports         = "snorlax_fleet_reports_published_total"
	// MetricFleetLedgerEntries gauges live (client, case) entries in
	// the batch-dedup sequence ledgers; it returns to baseline when
	// cases close and their ledgers are pruned.
	MetricFleetLedgerEntries = "snorlax_fleet_ledger_entries"

	// Per-codec wire metrics (labelled by codec: "binary" or "gob").
	MetricWireConns = "snorlax_wire_conns_total"
	MetricWireRx    = "snorlax_wire_rx_bytes_total"
	MetricWireTx    = "snorlax_wire_tx_bytes_total"
	// MetricWireFrameErrors counts rejected/failed frames by failure
	// kind ("header", "payload", "truncated", "frame-limit", "decode",
	// "pt-scan").
	MetricWireFrameErrors = "snorlax_wire_frame_errors_total"
	// MetricWireStreamedPackets counts pt packets decoded while their
	// snapshot was still arriving (binary codec's streaming ingest).
	// Corroboration-batch rings are not counted: they are validated
	// structurally on arrival and pt-decoded lazily at diagnosis.
	MetricWireStreamedPackets = "snorlax_wire_streamed_packets_total"
)

// Codec label values.
const (
	codecBinary = "binary"
	codecGob    = "gob"
)

// Frame-error label values.
const (
	frameErrHeader    = "header"
	frameErrPayload   = "payload"
	frameErrTruncated = "truncated"
	frameErrLimit     = "frame-limit"
	frameErrDecode    = "decode"
	frameErrScan      = "pt-scan"
)

var codecLabels = []string{codecBinary, codecGob}
var frameErrorKinds = []string{frameErrHeader, frameErrPayload,
	frameErrTruncated, frameErrLimit, frameErrDecode, frameErrScan}

// requestKinds are the label values per-request metrics are keyed by.
// Request.Kind is client-controlled, so anything unrecognized is
// bucketed under "other" rather than minting unbounded label values.
var requestKinds = []string{"failure", "success", "diagnose", "status",
	"register", "fleet-failure", "directives", "batch", "report", "other"}

type requestMetrics struct {
	total   *obs.Counter
	seconds *obs.Histogram
}

// protoMetrics bundles the protocol server's registry handles. Every
// ServerStatus field with a counter semantic reads one of these — the
// status reply holds no state of its own.
type protoMetrics struct {
	openConns     *obs.Gauge
	active        *obs.Gauge
	queued        *obs.Gauge
	maxConcurrent *obs.Gauge
	workers       *obs.Gauge

	completed       *obs.Counter
	failed          *obs.Counter
	deadlineDrops   *obs.Counter
	oversizeRejects *obs.Counter
	panicsRecovered *obs.Counter
	acceptRetries   *obs.Counter
	rxBytes         *obs.Counter
	txBytes         *obs.Counter

	diagnoseSeconds *obs.Histogram
	requests        map[string]requestMetrics

	fleetTenants   *obs.Gauge
	fleetArmed     *obs.Gauge
	fleetQuotaHave *obs.Gauge
	fleetQuotaWant *obs.Gauge
	fleetReports   *obs.Counter
	fleetLedger    *obs.Gauge

	wireConns       map[string]*obs.Counter
	wireRx          map[string]*obs.Counter
	wireTx          map[string]*obs.Counter
	frameErrors     map[string]*obs.Counter
	streamedPackets *obs.Counter
}

func newProtoMetrics(reg *obs.Registry) *protoMetrics {
	m := &protoMetrics{
		openConns: reg.Gauge(MetricOpenConns, "Currently connected clients."),
		active:    reg.Gauge(MetricActiveDiagnoses, "Diagnoses running right now."),
		queued:    reg.Gauge(MetricQueuedDiagnoses, "Diagnoses waiting on the concurrency semaphore."),
		maxConcurrent: reg.Gauge(MetricMaxConcurrent,
			"Effective diagnosis semaphore width (configuration echo)."),
		workers: reg.Gauge(MetricWorkers,
			"Effective success-trace worker pool size (configuration echo)."),
		completed: reg.Counter(MetricDiagnosesCompleted, "Diagnose requests answered with a diagnosis."),
		failed:    reg.Counter(MetricDiagnosesFailed, "Diagnose requests answered with an error."),
		deadlineDrops: reg.Counter(MetricDeadlineDrops,
			"Connections dropped for blowing a read or write deadline."),
		oversizeRejects: reg.Counter(MetricOversizeRejects,
			"Messages and snapshots rejected for exceeding the byte caps."),
		panicsRecovered: reg.Counter(MetricPanicsRecovered,
			"Panics caught in connection handlers and diagnoses."),
		acceptRetries: reg.Counter(MetricAcceptRetries,
			"Transient listener Accept errors retried with backoff."),
		rxBytes: reg.Counter(MetricRxBytes, "Bytes read from client connections."),
		txBytes: reg.Counter(MetricTxBytes, "Bytes written to client connections."),
		diagnoseSeconds: reg.Histogram(MetricDiagnoseSeconds,
			"Wall-clock seconds per diagnosis, semaphore wait excluded.", nil),
		requests: make(map[string]requestMetrics, len(requestKinds)),
		fleetTenants: reg.Gauge(MetricFleetTenants,
			"Programs registered as fleet tenants."),
		fleetArmed: reg.Gauge(MetricFleetArmedDirectives,
			"Collection directives currently armed (cases still collecting)."),
		fleetQuotaHave: reg.Gauge(MetricFleetQuotaHave,
			"Success snapshots accepted toward armed directives' quotas."),
		fleetQuotaWant: reg.Gauge(MetricFleetQuotaWant,
			"Success snapshots wanted by armed directives in total."),
		fleetReports: reg.Counter(MetricFleetReports,
			"Fleet diagnosis reports published."),
		fleetLedger: reg.Gauge(MetricFleetLedgerEntries,
			"Live (client, case) batch-dedup ledger entries."),
		wireConns:   make(map[string]*obs.Counter, len(codecLabels)),
		wireRx:      make(map[string]*obs.Counter, len(codecLabels)),
		wireTx:      make(map[string]*obs.Counter, len(codecLabels)),
		frameErrors: make(map[string]*obs.Counter, len(frameErrorKinds)),
		streamedPackets: reg.Counter(MetricWireStreamedPackets,
			"pt packets decoded while their snapshot was still arriving."),
	}
	for _, codec := range codecLabels {
		m.wireConns[codec] = reg.Counter(MetricWireConns,
			"Connections served, by negotiated wire codec.", obs.L("codec", codec))
		m.wireRx[codec] = reg.Counter(MetricWireRx,
			"Bytes read from client connections, by wire codec.", obs.L("codec", codec))
		m.wireTx[codec] = reg.Counter(MetricWireTx,
			"Bytes written to client connections, by wire codec.", obs.L("codec", codec))
	}
	for _, kind := range frameErrorKinds {
		m.frameErrors[kind] = reg.Counter(MetricWireFrameErrors,
			"Frames rejected or failed, by failure kind.", obs.L("kind", kind))
	}
	for _, kind := range requestKinds {
		m.requests[kind] = requestMetrics{
			total: reg.Counter(MetricRequests,
				"Requests served, by request kind.", obs.L("kind", kind)),
			seconds: reg.Histogram(MetricRequestSeconds,
				"Wall-clock seconds serving each request, by kind.", nil, obs.L("kind", kind)),
		}
	}
	return m
}

// observeRequest records one served request's latency under its kind.
func (m *protoMetrics) observeRequest(kind string, d time.Duration) {
	rm, ok := m.requests[kind]
	if !ok {
		rm = m.requests["other"]
	}
	rm.total.Inc()
	rm.seconds.ObserveDuration(d)
}

// countingReader counts bytes pulled off a connection into rxBytes
// and, once the codec is negotiated, into that codec's labelled
// counter as well.
type countingReader struct {
	r     interface{ Read([]byte) (int, error) }
	c     *obs.Counter
	codec *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(uint64(n))
		if cr.codec != nil {
			cr.codec.Add(uint64(n))
		}
	}
	return n, err
}

// countingWriter counts bytes pushed onto a connection into txBytes
// and the negotiated codec's labelled counter.
type countingWriter struct {
	w     interface{ Write([]byte) (int, error) }
	c     *obs.Counter
	codec *obs.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.c.Add(uint64(n))
		if cw.codec != nil {
			cw.codec.Add(uint64(n))
		}
	}
	return n, err
}
