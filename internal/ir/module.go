package ir

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Global is a module-level variable. Its storage is allocated by the
// VM before main starts and zero initialized (Init, when non-nil,
// overrides the first word).
type Global struct {
	Name string
	Typ  Type
	Init *Const // optional scalar initializer
}

// Func is a function: an ordered list of basic blocks plus the
// function's registers. Params are the first len(Params) registers.
type Func struct {
	Name   string
	Sig    *FuncType
	Params []*Reg
	Blocks []*Block
	// Regs is every register of the function, indexed by Reg.Index.
	Regs []*Reg
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// BlockByName returns the named block, or nil.
func (f *Func) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// NumInstrs returns the number of static instructions in the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

func (f *Func) String() string { return f.Name }

// Block is a basic block: a maximal straight-line instruction sequence
// ending in a terminator.
type Block struct {
	Name   string
	Parent *Func
	Instrs []Instr
	// Index is the block's position within Parent.Blocks.
	Index int
}

// Terminator returns the block's final instruction, or nil when the
// block is empty or not yet terminated.
func (b *Block) Terminator() Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !IsTerminator(t) {
		return nil
	}
	return t
}

// Succs returns the control-flow successor blocks.
func (b *Block) Succs() []*Block {
	switch t := b.Terminator().(type) {
	case *BrInstr:
		return []*Block{t.Target}
	case *CondBrInstr:
		return []*Block{t.Then, t.Else}
	}
	return nil
}

// FirstPC returns the PC of the block's first instruction, or NoPC for
// an empty block.
func (b *Block) FirstPC() PC {
	if len(b.Instrs) == 0 {
		return NoPC
	}
	return b.Instrs[0].PC()
}

func (b *Block) String() string { return b.Parent.Name + ":" + b.Name }

// Module is a complete IR program: named struct types, globals, and
// functions. After construction, Finalize must be called to assign
// PCs before the module is executed or analyzed.
type Module struct {
	Name    string
	Structs []*StructType
	Globals []*Global
	Funcs   []*Func

	finalized bool
	// pcTable maps every PC to its instruction; built by Finalize.
	pcTable []Instr
	// funcIndex maps each function to its position in Funcs; built by
	// Finalize so engines can resolve function values without a scan.
	funcIndex map[*Func]int
	// version counts Finalize calls. Any PC-keyed artifact derived
	// from the module (e.g. a compiled bytecode program) is valid only
	// for the version it was built against.
	version uint64
	// compiled caches one engine-compiled artifact per module (see
	// SetCompiled). It holds a compiledEntry.
	compiled atomic.Value
}

// compiledEntry pairs a cached artifact with the module version it
// was derived from.
type compiledEntry struct {
	version uint64
	data    any
}

// NewModule returns an empty module with the given name.
func NewModule(name string) *Module { return &Module{Name: name} }

// FuncByName returns the named function, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// GlobalByName returns the named global, or nil.
func (m *Module) GlobalByName(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// StructByName returns the named struct type, or nil.
func (m *Module) StructByName(name string) *StructType {
	for _, s := range m.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Finalize assigns dense PCs to every instruction in layout order,
// records block parents and indices, and builds the PC lookup table.
// Finalize is idempotent, but each call bumps the module version,
// invalidating any compiled artifact cached with SetCompiled.
func (m *Module) Finalize() {
	m.pcTable = m.pcTable[:0]
	m.funcIndex = make(map[*Func]int, len(m.Funcs))
	var pc PC
	for fi, f := range m.Funcs {
		m.funcIndex[f] = fi
		for bi, b := range f.Blocks {
			b.Parent = f
			b.Index = bi
			for _, in := range b.Instrs {
				in.setPos(pc, b)
				m.pcTable = append(m.pcTable, in)
				pc++
			}
		}
	}
	m.finalized = true
	m.version++
}

// Finalized reports whether Finalize has run.
func (m *Module) Finalized() bool { return m.finalized }

// Version identifies the current PC assignment: it increments on
// every Finalize. Artifacts keyed by PCs (bytecode programs, pattern
// keys persisted across edits) must be rebuilt when it changes.
func (m *Module) Version() uint64 { return m.version }

// FuncIndex returns the position of f in Funcs, or -1 when f does not
// belong to the module. The module must be finalized. Engines use the
// index to encode function values densely.
func (m *Module) FuncIndex(f *Func) int {
	if idx, ok := m.funcIndex[f]; ok {
		return idx
	}
	return -1
}

// Compiled returns the artifact cached by SetCompiled for the given
// module version, or nil when none is cached or the module has been
// re-finalized since. It is safe for concurrent use.
func (m *Module) Compiled(version uint64) any {
	if e, ok := m.compiled.Load().(compiledEntry); ok && e.version == version {
		return e.data
	}
	return nil
}

// SetCompiled caches one engine-compiled artifact (e.g. the bytecode
// program built by internal/vm/bytecode) against a module version.
// Storing the cache on the module — rather than in a global map —
// lets the artifact be garbage collected with the module. It is safe
// for concurrent use; on a race the last writer wins, which is
// harmless because compilation is deterministic.
func (m *Module) SetCompiled(version uint64, data any) {
	m.compiled.Store(compiledEntry{version: version, data: data})
}

// NumInstrs returns the number of static instructions in the module.
// The module must be finalized.
func (m *Module) NumInstrs() int { return len(m.pcTable) }

// InstrAt returns the instruction at the given PC. The module must be
// finalized and the PC valid.
func (m *Module) InstrAt(pc PC) Instr {
	if int(pc) < 0 || int(pc) >= len(m.pcTable) {
		panic(fmt.Sprintf("ir: PC %d out of range [0,%d)", pc, len(m.pcTable)))
	}
	return m.pcTable[pc]
}

// Instrs calls fn for every instruction in the module in layout order.
func (m *Module) Instrs(fn func(Instr)) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				fn(in)
			}
		}
	}
}

// FuncOf returns the function containing the given PC, or nil. The
// module must be finalized.
func (m *Module) FuncOf(pc PC) *Func {
	if int(pc) < 0 || int(pc) >= len(m.pcTable) {
		return nil
	}
	return m.pcTable[pc].Block().Parent
}

// SortedFuncNames returns the function names in sorted order; useful
// for deterministic reports.
func (m *Module) SortedFuncNames() []string {
	names := make([]string, len(m.Funcs))
	for i, f := range m.Funcs {
		names[i] = f.Name
	}
	sort.Strings(names)
	return names
}
