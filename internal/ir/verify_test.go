package ir

import (
	"strings"
	"testing"
)

// rawModule builds an unchecked module by hand so the verifier can be
// exercised on malformed input the Builder would reject.
func rawModule(f func(m *Module)) *Module {
	m := NewModule("raw")
	f(m)
	m.Finalize()
	return m
}

func mainWith(m *Module, instrs ...Instr) *Func {
	f := &Func{Name: "main", Sig: &FuncType{Ret: Void}}
	b := &Block{Name: "entry", Parent: f, Instrs: instrs}
	f.Blocks = []*Block{b}
	m.Funcs = append(m.Funcs, f)
	return f
}

func wantVerifyError(t *testing.T, m *Module, substr string) {
	t.Helper()
	err := Verify(m)
	if err == nil {
		t.Fatalf("Verify passed, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Verify error = %v, want substring %q", err, substr)
	}
}

func TestVerifyMissingMain(t *testing.T) {
	m := rawModule(func(m *Module) {})
	wantVerifyError(t, m, "no main")
}

func TestVerifyMainWithParams(t *testing.T) {
	m := rawModule(func(m *Module) {
		f := mainWith(m, &RetInstr{anInstr: newAnInstr()})
		p := &Reg{Name: "x", Typ: Int}
		f.Params = append(f.Params, p)
		f.Sig.Params = append(f.Sig.Params, Int)
	})
	wantVerifyError(t, m, "main must take no parameters")
}

func TestVerifyEmptyBlock(t *testing.T) {
	m := rawModule(func(m *Module) {
		mainWith(m)
	})
	wantVerifyError(t, m, "empty block")
}

func TestVerifyMissingTerminator(t *testing.T) {
	m := rawModule(func(m *Module) {
		dst := &Reg{Name: "x", Typ: PtrTo(Int)}
		mainWith(m, &AllocaInstr{anInstr: newAnInstr(), Dst: dst, Elem: Int})
	})
	wantVerifyError(t, m, "does not end in a terminator")
}

func TestVerifyTerminatorMidBlock(t *testing.T) {
	m := rawModule(func(m *Module) {
		mainWith(m,
			&RetInstr{anInstr: newAnInstr()},
			&RetInstr{anInstr: newAnInstr()})
	})
	wantVerifyError(t, m, "middle of block")
}

func TestVerifyLoadNonPointer(t *testing.T) {
	m := rawModule(func(m *Module) {
		dst := &Reg{Name: "v", Typ: Int}
		mainWith(m,
			&LoadInstr{anInstr: newAnInstr(), Dst: dst, Addr: ConstInt(1)},
			&RetInstr{anInstr: newAnInstr()})
	})
	wantVerifyError(t, m, "load through non-pointer")
}

func TestVerifyStoreTypeMismatch(t *testing.T) {
	m := rawModule(func(m *Module) {
		addr := &Reg{Name: "p", Typ: PtrTo(Int)}
		mainWith(m,
			&StoreInstr{anInstr: newAnInstr(), Val: ConstBool(true), Addr: addr},
			&RetInstr{anInstr: newAnInstr()})
	})
	wantVerifyError(t, m, "store type mismatch")
}

func TestVerifyLockNonMutex(t *testing.T) {
	m := rawModule(func(m *Module) {
		addr := &Reg{Name: "p", Typ: PtrTo(Int)}
		mainWith(m,
			&LockInstr{anInstr: newAnInstr(), Addr: addr},
			&RetInstr{anInstr: newAnInstr()})
	})
	wantVerifyError(t, m, "lock on non-mutex-pointer")
}

func TestVerifyCallArity(t *testing.T) {
	m := rawModule(func(m *Module) {
		callee := &Func{Name: "f", Sig: &FuncType{Params: []Type{Int}, Ret: Void}}
		callee.Blocks = []*Block{{Name: "entry", Parent: callee,
			Instrs: []Instr{&RetInstr{anInstr: newAnInstr()}}}}
		m.Funcs = append(m.Funcs, callee)
		mainWith(m,
			&CallInstr{anInstr: newAnInstr(), Callee: &FuncRef{Func: callee}},
			&RetInstr{anInstr: newAnInstr()})
	})
	wantVerifyError(t, m, "0 args, want 1")
}

func TestVerifyCallArgType(t *testing.T) {
	m := rawModule(func(m *Module) {
		callee := &Func{Name: "f", Sig: &FuncType{Params: []Type{Int}, Ret: Void}}
		callee.Blocks = []*Block{{Name: "entry", Parent: callee,
			Instrs: []Instr{&RetInstr{anInstr: newAnInstr()}}}}
		m.Funcs = append(m.Funcs, callee)
		mainWith(m,
			&CallInstr{anInstr: newAnInstr(), Callee: &FuncRef{Func: callee},
				Args: []Value{ConstBool(true)}},
			&RetInstr{anInstr: newAnInstr()})
	})
	wantVerifyError(t, m, "arg 0 has type bool")
}

func TestVerifyRetMismatch(t *testing.T) {
	m := rawModule(func(m *Module) {
		f := mainWith(m, &RetInstr{anInstr: newAnInstr(), Val: ConstInt(1)})
		f.Sig.Ret = Void
	})
	wantVerifyError(t, m, "ret with value in void function")
}

func TestVerifyRetMissingValue(t *testing.T) {
	m := rawModule(func(m *Module) {
		f := &Func{Name: "f", Sig: &FuncType{Ret: Int}}
		f.Blocks = []*Block{{Name: "entry", Parent: f,
			Instrs: []Instr{&RetInstr{anInstr: newAnInstr()}}}}
		m.Funcs = append(m.Funcs, f)
		mainWith(m, &RetInstr{anInstr: newAnInstr()})
	})
	wantVerifyError(t, m, "ret without value")
}

func TestVerifyBranchToOtherFunction(t *testing.T) {
	m := rawModule(func(m *Module) {
		other := &Func{Name: "g", Sig: &FuncType{Ret: Void}}
		ob := &Block{Name: "oentry", Parent: other,
			Instrs: []Instr{&RetInstr{anInstr: newAnInstr()}}}
		other.Blocks = []*Block{ob}
		m.Funcs = append(m.Funcs, other)
		mainWith(m, &BrInstr{anInstr: newAnInstr(), Target: ob})
	})
	wantVerifyError(t, m, "another function")
}

func TestVerifyCondBrNonBool(t *testing.T) {
	m := rawModule(func(m *Module) {
		f := mainWith(m, &RetInstr{anInstr: newAnInstr()})
		b2 := &Block{Name: "b2", Parent: f,
			Instrs: []Instr{&RetInstr{anInstr: newAnInstr()}}}
		b3 := &Block{Name: "b3", Parent: f, Instrs: []Instr{
			&CondBrInstr{anInstr: newAnInstr(), Cond: ConstInt(1), Then: b2, Else: b2}}}
		f.Blocks = append(f.Blocks, b2, b3)
	})
	wantVerifyError(t, m, "condbr on non-bool")
}

func TestVerifyFieldAddrOutOfRange(t *testing.T) {
	m := rawModule(func(m *Module) {
		st := &StructType{Name: "S", Fields: []Field{{"x", Int}}}
		m.Structs = append(m.Structs, st)
		base := &Reg{Name: "p", Typ: PtrTo(st)}
		dst := &Reg{Name: "f", Typ: PtrTo(Int)}
		mainWith(m,
			&FieldAddrInstr{anInstr: newAnInstr(), Dst: dst, Base: base, Field: 5},
			&RetInstr{anInstr: newAnInstr()})
	})
	wantVerifyError(t, m, "out of range")
}

func TestVerifyReportsMultipleErrors(t *testing.T) {
	m := rawModule(func(m *Module) {
		dst := &Reg{Name: "v", Typ: Int}
		addr := &Reg{Name: "p", Typ: PtrTo(Int)}
		mainWith(m,
			&LoadInstr{anInstr: newAnInstr(), Dst: dst, Addr: ConstInt(1)},
			&LockInstr{anInstr: newAnInstr(), Addr: addr},
			&RetInstr{anInstr: newAnInstr()})
	})
	err := Verify(m)
	if err == nil {
		t.Fatal("want errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "load through non-pointer") || !strings.Contains(msg, "lock on non-mutex") {
		t.Fatalf("expected both errors, got: %v", msg)
	}
}

func TestVerifyAcceptsValidModule(t *testing.T) {
	m := mustParse(t, sampleSrc)
	if err := Verify(m); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
}
