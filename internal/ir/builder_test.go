package ir

import (
	"strings"
	"testing"
)

// buildCounterModule builds a small module exercising most opcodes:
// a global counter incremented in a loop with a lock held.
func buildCounterModule(t *testing.T) *Module {
	t.Helper()
	b := NewBuilder("counter")
	mu := b.Global("mu", Mutex)
	ctr := b.GlobalInit("count", Int, 0)

	inc := b.Func("inc", Void)
	n := inc.Param("n", Int)
	entry := inc.Block("entry")
	loop := inc.Block("loop")
	body := inc.Block("body")
	done := inc.Block("done")

	iAddr := entry.Alloca(Int)
	entry.Store(ConstInt(0), iAddr)
	entry.Br(loop)

	i := loop.Load(iAddr)
	cond := loop.Lt(i, n)
	loop.CondBr(cond, body, done)

	body.Lock(mu)
	c := body.Load(ctr)
	c2 := body.Add(c, ConstInt(1))
	body.Store(c2, ctr)
	body.Unlock(mu)
	i2 := body.Add(body.Load(iAddr), ConstInt(1))
	body.Store(i2, iAddr)
	body.Br(loop)

	done.RetVoid()

	main := b.Func("main", Void)
	me := main.Block("entry")
	tid := me.Spawn(inc.Ref(), ConstInt(10))
	me.Call(inc.Ref(), ConstInt(5))
	me.Join(tid)
	me.RetVoid()

	return b.MustBuild()
}

func TestBuilderProducesVerifiedModule(t *testing.T) {
	m := buildCounterModule(t)
	if !m.Finalized() {
		t.Fatal("module not finalized")
	}
	if m.NumInstrs() == 0 {
		t.Fatal("no instructions")
	}
	if m.FuncByName("inc") == nil || m.FuncByName("main") == nil {
		t.Fatal("missing functions")
	}
}

func TestBuilderPCAssignment(t *testing.T) {
	m := buildCounterModule(t)
	// PCs must be dense and InstrAt must invert them.
	want := PC(0)
	m.Instrs(func(in Instr) {
		if in.PC() != want {
			t.Fatalf("PC = %d, want %d for %s", in.PC(), want, in)
		}
		if m.InstrAt(want) != in {
			t.Fatalf("InstrAt(%d) mismatch", want)
		}
		want++
	})
	if int(want) != m.NumInstrs() {
		t.Fatalf("iterated %d instrs, NumInstrs = %d", want, m.NumInstrs())
	}
}

func TestBuilderBlockStructure(t *testing.T) {
	m := buildCounterModule(t)
	inc := m.FuncByName("inc")
	if len(inc.Blocks) != 4 {
		t.Fatalf("inc has %d blocks, want 4", len(inc.Blocks))
	}
	entry := inc.Entry()
	if entry.Name != "entry" {
		t.Fatalf("entry block = %s", entry.Name)
	}
	succs := entry.Succs()
	if len(succs) != 1 || succs[0].Name != "loop" {
		t.Fatalf("entry succs = %v", succs)
	}
	loop := inc.BlockByName("loop")
	succs = loop.Succs()
	if len(succs) != 2 || succs[0].Name != "body" || succs[1].Name != "done" {
		t.Fatalf("loop succs = %v", succs)
	}
	if got := inc.NumInstrs(); got != 16 {
		t.Fatalf("inc NumInstrs = %d, want 16", got)
	}
}

func TestBuilderFuncOf(t *testing.T) {
	m := buildCounterModule(t)
	inc := m.FuncByName("inc")
	pc := inc.Entry().FirstPC()
	if m.FuncOf(pc) != inc {
		t.Fatalf("FuncOf(%d) != inc", pc)
	}
	if m.FuncOf(NoPC) != nil {
		t.Fatal("FuncOf(NoPC) should be nil")
	}
	if m.FuncOf(PC(m.NumInstrs())) != nil {
		t.Fatal("FuncOf(out of range) should be nil")
	}
}

func TestBuilderPanicsOnDuplicateFunc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate function")
		}
	}()
	b := NewBuilder("dup")
	b.Func("f", Void)
	b.Func("f", Void)
}

func TestBuilderPanicsOnDuplicateGlobal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate global")
		}
	}()
	b := NewBuilder("dup")
	b.Global("g", Int)
	b.Global("g", Int)
}

func TestBuilderPanicsOnEmitAfterTerminator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on emit after terminator")
		}
	}()
	b := NewBuilder("term")
	f := b.Func("main", Void)
	e := f.Block("entry")
	e.RetVoid()
	e.RetVoid()
}

func TestBuilderPanicsOnUnknownField(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown field")
		}
	}()
	b := NewBuilder("fields")
	st := b.Struct("S", Field{"x", Int})
	f := b.Func("main", Void)
	e := f.Block("entry")
	p := e.New(st)
	e.FieldAddr(p, "nope")
}

func TestBuilderFieldAddrTypes(t *testing.T) {
	b := NewBuilder("fields")
	st := b.Struct("S", Field{"x", Int}, Field{"p", PtrTo(Int)})
	f := b.Func("main", Void)
	e := f.Block("entry")
	p := e.New(st)
	xa := e.FieldAddr(p, "x")
	if xa.Typ.String() != "*int" {
		t.Errorf("fieldaddr x type = %s, want *int", xa.Typ)
	}
	pa := e.FieldAddr(p, "p")
	if pa.Typ.String() != "**int" {
		t.Errorf("fieldaddr p type = %s, want **int", pa.Typ)
	}
	e.RetVoid()
}

func TestBuilderAutoNamesAreUnique(t *testing.T) {
	b := NewBuilder("names")
	f := b.Func("main", Void)
	e := f.Block("entry")
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		r := e.Alloca(Int)
		if seen[r.Name] {
			t.Fatalf("duplicate auto register name %s", r.Name)
		}
		seen[r.Name] = true
	}
	e.RetVoid()
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestInstrStringForms(t *testing.T) {
	m := buildCounterModule(t)
	var all []string
	m.Instrs(func(in Instr) { all = append(all, in.String()) })
	joined := strings.Join(all, "\n")
	for _, want := range []string{"alloca int", "lock @mu", "unlock @mu",
		"= spawn inc(10)", "join", "ret", "condbr", "br loop", "= add"} {
		if !strings.Contains(joined, want) {
			t.Errorf("instruction dump missing %q:\n%s", want, joined)
		}
	}
}

func TestAccessedPointerAndClassifiers(t *testing.T) {
	m := buildCounterModule(t)
	var loads, stores, locks, unlocks, terms int
	m.Instrs(func(in Instr) {
		switch in.Op() {
		case OpLoad:
			loads++
			if AccessedPointer(in) == nil {
				t.Error("load has no accessed pointer")
			}
			if !IsMemAccess(in) || IsSyncOp(in) {
				t.Error("load misclassified")
			}
		case OpStore:
			stores++
			if AccessedPointer(in) == nil {
				t.Error("store has no accessed pointer")
			}
		case OpLock:
			locks++
			if !IsSyncOp(in) || IsMemAccess(in) {
				t.Error("lock misclassified")
			}
			if AccessedPointer(in) == nil {
				t.Error("lock has no accessed pointer")
			}
		case OpUnlock:
			unlocks++
		case OpBin:
			if AccessedPointer(in) != nil {
				t.Error("bin should have no accessed pointer")
			}
		}
		if IsTerminator(in) {
			terms++
		}
	})
	if loads == 0 || stores == 0 || locks != 1 || unlocks != 1 {
		t.Errorf("loads=%d stores=%d locks=%d unlocks=%d", loads, stores, locks, unlocks)
	}
	// One terminator per block.
	if terms != 5 {
		t.Errorf("terminators = %d, want 5", terms)
	}
}
