package ir

import "fmt"

// Value is an operand of an instruction: a constant, a virtual
// register, a reference to a global, or a reference to a function.
type Value interface {
	Type() Type
	String() string
	value() // sealed
}

// Const is an integer or boolean literal. The null pointer is a Const
// with a pointer type and Val 0.
type Const struct {
	Val int64
	Typ Type
}

// ConstInt returns an integer constant.
func ConstInt(v int64) *Const { return &Const{Val: v, Typ: Int} }

// ConstBool returns a boolean constant.
func ConstBool(v bool) *Const {
	n := int64(0)
	if v {
		n = 1
	}
	return &Const{Val: n, Typ: Bool}
}

// Null returns the null pointer of the given pointer type.
func Null(t *PtrType) *Const { return &Const{Val: 0, Typ: t} }

// Type implements Value.
func (c *Const) Type() Type { return c.Typ }

func (c *Const) String() string {
	switch c.Typ.Kind() {
	case KindBool:
		if c.Val != 0 {
			return "true"
		}
		return "false"
	case KindPtr:
		if c.Val == 0 {
			return "null"
		}
		return fmt.Sprintf("ptr:%d", c.Val)
	default:
		return fmt.Sprintf("%d", c.Val)
	}
}

func (*Const) value() {}

// Reg is a virtual register local to a function. Registers are created
// by the function builder; Index is the register's slot in the
// function's frame.
type Reg struct {
	Name  string
	Index int
	Typ   Type
}

// Type implements Value.
func (r *Reg) Type() Type { return r.Typ }

func (r *Reg) String() string { return "%" + r.Name }

func (*Reg) value() {}

// GlobalRef is a reference to a module-level global variable. Its
// value is the address of the global, so its type is a pointer to the
// global's declared type.
type GlobalRef struct {
	Global *Global
}

// Type implements Value.
func (g *GlobalRef) Type() Type { return PtrTo(g.Global.Typ) }

func (g *GlobalRef) String() string { return "@" + g.Global.Name }

func (*GlobalRef) value() {}

// FuncRef is a reference to a module function, used as a call target
// or stored for indirect calls.
type FuncRef struct {
	Func *Func
}

// Type implements Value.
func (f *FuncRef) Type() Type { return f.Func.Sig }

func (f *FuncRef) String() string { return f.Func.Name }

func (*FuncRef) value() {}
