package ir

// CFG holds per-function control-flow-graph derivations: predecessor
// lists and a reverse postorder. Analyses that walk backwards (the
// Gist baseline's slicer, the diagnosis server's predecessor-trigger
// fallback) build one per function instead of rescanning blocks.
type CFG struct {
	fn *Func
	// preds maps each block to its predecessors, in layout order.
	preds map[*Block][]*Block
	// rpo is the blocks in reverse postorder from the entry.
	rpo []*Block
	// reachable marks blocks reachable from the entry.
	reachable map[*Block]bool
}

// NewCFG computes the CFG of fn.
func NewCFG(fn *Func) *CFG {
	c := &CFG{
		fn:        fn,
		preds:     make(map[*Block][]*Block, len(fn.Blocks)),
		reachable: make(map[*Block]bool, len(fn.Blocks)),
	}
	for _, b := range fn.Blocks {
		for _, s := range b.Succs() {
			c.preds[s] = append(c.preds[s], b)
		}
	}
	// Postorder DFS from the entry, then reverse.
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if c.reachable[b] {
			return
		}
		c.reachable[b] = true
		for _, s := range b.Succs() {
			dfs(s)
		}
		post = append(post, b)
	}
	if entry := fn.Entry(); entry != nil {
		dfs(entry)
	}
	c.rpo = make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		c.rpo = append(c.rpo, post[i])
	}
	return c
}

// Preds returns b's predecessor blocks.
func (c *CFG) Preds(b *Block) []*Block { return c.preds[b] }

// ReversePostorder returns the reachable blocks, entry first.
func (c *CFG) ReversePostorder() []*Block { return c.rpo }

// Reachable reports whether b is reachable from the entry.
func (c *CFG) Reachable(b *Block) bool { return c.reachable[b] }

// Dominates reports whether a dominates b: every path from the entry
// to b passes through a. Computed by reachability with a removed —
// O(V+E) per query, fine for the block counts involved here.
func (c *CFG) Dominates(a, b *Block) bool {
	if !c.reachable[b] || !c.reachable[a] {
		return false
	}
	if a == b {
		return true
	}
	entry := c.fn.Entry()
	if a == entry {
		return true
	}
	seen := map[*Block]bool{a: true} // a blocks the walk
	var dfs func(x *Block) bool
	dfs = func(x *Block) bool {
		if x == b {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, s := range x.Succs() {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	// If b is still reachable with a removed, a does not dominate it.
	return !dfs(entry)
}
