package ir

import "fmt"

// Builder constructs a Module programmatically. It is the API the bug
// corpus uses to define its synthetic systems. All Builder methods
// panic on misuse (duplicate names, unknown fields); corpus programs
// are static data, so construction errors are programmer errors.
type Builder struct {
	m *Module
}

// NewBuilder returns a Builder for a new module with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{m: NewModule(name)}
}

// Struct declares a named struct type.
func (b *Builder) Struct(name string, fields ...Field) *StructType {
	if b.m.StructByName(name) != nil {
		panic("ir: duplicate struct " + name)
	}
	st := &StructType{Name: name, Fields: fields}
	b.m.Structs = append(b.m.Structs, st)
	return st
}

// Global declares a module-level variable and returns a reference to
// it (whose value is the global's address).
func (b *Builder) Global(name string, typ Type) *GlobalRef {
	if b.m.GlobalByName(name) != nil {
		panic("ir: duplicate global " + name)
	}
	g := &Global{Name: name, Typ: typ}
	b.m.Globals = append(b.m.Globals, g)
	return &GlobalRef{Global: g}
}

// GlobalInit declares a module-level variable with a scalar initial
// value for its first word.
func (b *Builder) GlobalInit(name string, typ Type, init int64) *GlobalRef {
	ref := b.Global(name, typ)
	ref.Global.Init = &Const{Val: init, Typ: typ}
	return ref
}

// Func starts a new function with the given name and return type and
// returns its FuncBuilder. Parameters are added with FuncBuilder.Param
// before any block is created.
func (b *Builder) Func(name string, ret Type) *FuncBuilder {
	if b.m.FuncByName(name) != nil {
		panic("ir: duplicate function " + name)
	}
	f := &Func{Name: name, Sig: &FuncType{Ret: ret}}
	b.m.Funcs = append(b.m.Funcs, f)
	return &FuncBuilder{b: b, f: f}
}

// Build verifies, finalizes and returns the module.
func (b *Builder) Build() (*Module, error) {
	b.m.Finalize()
	if err := Verify(b.m); err != nil {
		return nil, err
	}
	return b.m, nil
}

// MustBuild is Build that panics on verification failure. Corpus
// programs are static, so a failure is a bug in the corpus itself.
func (b *Builder) MustBuild() *Module {
	m, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("ir: module %s does not verify: %v", b.m.Name, err))
	}
	return m
}

// Module returns the module under construction without finalizing it.
func (b *Builder) Module() *Module { return b.m }

// FuncBuilder constructs one function.
type FuncBuilder struct {
	b      *Builder
	f      *Func
	nextT  int // auto-named temporaries %t0, %t1, ...
	sealed bool
}

// Ref returns a reference to the function, usable as a call target or
// a stored function value.
func (fb *FuncBuilder) Ref() *FuncRef { return &FuncRef{Func: fb.f} }

// Func returns the function under construction.
func (fb *FuncBuilder) Func() *Func { return fb.f }

// Param appends a parameter register. All parameters must be declared
// before the first block is created.
func (fb *FuncBuilder) Param(name string, typ Type) *Reg {
	if len(fb.f.Blocks) > 0 {
		panic("ir: Param after first block in " + fb.f.Name)
	}
	r := fb.newReg(name, typ)
	fb.f.Params = append(fb.f.Params, r)
	fb.f.Sig.Params = append(fb.f.Sig.Params, typ)
	return r
}

// Block creates a new basic block. The first block created is the
// function's entry block.
func (fb *FuncBuilder) Block(name string) *BlockBuilder {
	if fb.f.BlockByName(name) != nil {
		panic("ir: duplicate block " + name + " in " + fb.f.Name)
	}
	blk := &Block{Name: name, Parent: fb.f}
	fb.f.Blocks = append(fb.f.Blocks, blk)
	return &BlockBuilder{fb: fb, blk: blk}
}

// Reg creates a named register without defining it; useful when a
// value must be assigned on multiple paths.
func (fb *FuncBuilder) Reg(name string, typ Type) *Reg {
	return fb.newReg(name, typ)
}

func (fb *FuncBuilder) newReg(name string, typ Type) *Reg {
	if name == "" {
		name = fmt.Sprintf("t%d", fb.nextT)
		fb.nextT++
	}
	for _, r := range fb.f.Regs {
		if r.Name == name {
			panic("ir: duplicate register %" + name + " in " + fb.f.Name)
		}
	}
	r := &Reg{Name: name, Index: len(fb.f.Regs), Typ: typ}
	fb.f.Regs = append(fb.f.Regs, r)
	return r
}

// BlockBuilder appends instructions to one basic block.
type BlockBuilder struct {
	fb  *FuncBuilder
	blk *Block
}

// Block returns the block under construction.
func (bb *BlockBuilder) Block() *Block { return bb.blk }

func (bb *BlockBuilder) emit(in Instr) {
	if t := bb.blk.Terminator(); t != nil {
		panic(fmt.Sprintf("ir: emit after terminator in %s", bb.blk))
	}
	bb.blk.Instrs = append(bb.blk.Instrs, in)
}

// Alloca allocates frame storage for one elem and returns its address.
func (bb *BlockBuilder) Alloca(elem Type) *Reg {
	dst := bb.fb.newReg("", PtrTo(elem))
	in := &AllocaInstr{anInstr: newAnInstr(), Dst: dst, Elem: elem}
	bb.emit(in)
	return dst
}

// New allocates heap storage for one elem and returns its address.
func (bb *BlockBuilder) New(elem Type) *Reg {
	dst := bb.fb.newReg("", PtrTo(elem))
	in := &NewInstr{anInstr: newAnInstr(), Dst: dst, Elem: elem}
	bb.emit(in)
	return dst
}

// Load reads the value at addr.
func (bb *BlockBuilder) Load(addr Value) *Reg {
	elem := Deref(addr.Type())
	if elem == nil {
		panic(fmt.Sprintf("ir: load of non-pointer %s in %s", addr, bb.blk))
	}
	dst := bb.fb.newReg("", elem)
	bb.emit(&LoadInstr{anInstr: newAnInstr(), Dst: dst, Addr: addr})
	return dst
}

// Store writes val to addr.
func (bb *BlockBuilder) Store(val, addr Value) {
	bb.emit(&StoreInstr{anInstr: newAnInstr(), Val: val, Addr: addr})
}

// FieldAddr returns the address of the named field of the struct that
// base points to.
func (bb *BlockBuilder) FieldAddr(base Value, field string) *Reg {
	st, ok := Deref(base.Type()).(*StructType)
	if !ok {
		panic(fmt.Sprintf("ir: fieldaddr on non-struct-pointer %s in %s", base, bb.blk))
	}
	idx := st.FieldIndex(field)
	if idx < 0 {
		panic(fmt.Sprintf("ir: struct %s has no field %q", st.Name, field))
	}
	dst := bb.fb.newReg("", PtrTo(st.Fields[idx].Type))
	bb.emit(&FieldAddrInstr{anInstr: newAnInstr(), Dst: dst, Base: base, Field: idx})
	return dst
}

// IndexAddr returns the address of element index of the array that
// base points to.
func (bb *BlockBuilder) IndexAddr(base, index Value) *Reg {
	at, ok := Deref(base.Type()).(*ArrayType)
	if !ok {
		panic(fmt.Sprintf("ir: indexaddr on non-array-pointer %s in %s", base, bb.blk))
	}
	dst := bb.fb.newReg("", PtrTo(at.Elem))
	bb.emit(&IndexAddrInstr{anInstr: newAnInstr(), Dst: dst, Base: base, Index: index})
	return dst
}

// Bin computes x op y.
func (bb *BlockBuilder) Bin(op BinOp, x, y Value) *Reg {
	var t Type = Int
	if op.IsComparison() {
		t = Bool
	}
	dst := bb.fb.newReg("", t)
	bb.emit(&BinInstr{anInstr: newAnInstr(), Dst: dst, BOp: op, X: x, Y: y})
	return dst
}

// Add computes x + y.
func (bb *BlockBuilder) Add(x, y Value) *Reg { return bb.Bin(Add, x, y) }

// Sub computes x - y.
func (bb *BlockBuilder) Sub(x, y Value) *Reg { return bb.Bin(Sub, x, y) }

// Mul computes x * y.
func (bb *BlockBuilder) Mul(x, y Value) *Reg { return bb.Bin(Mul, x, y) }

// Eq computes x == y.
func (bb *BlockBuilder) Eq(x, y Value) *Reg { return bb.Bin(Eq, x, y) }

// Ne computes x != y.
func (bb *BlockBuilder) Ne(x, y Value) *Reg { return bb.Bin(Ne, x, y) }

// Lt computes x < y.
func (bb *BlockBuilder) Lt(x, y Value) *Reg { return bb.Bin(Lt, x, y) }

// Cast reinterprets val as type to.
func (bb *BlockBuilder) Cast(val Value, to Type) *Reg {
	dst := bb.fb.newReg("", to)
	bb.emit(&CastInstr{anInstr: newAnInstr(), Dst: dst, Val: val, To: to})
	return dst
}

// Br emits an unconditional branch to target.
func (bb *BlockBuilder) Br(target *BlockBuilder) {
	bb.emit(&BrInstr{anInstr: newAnInstr(), Target: target.blk})
}

// CondBr branches to then when cond is true, else to els.
func (bb *BlockBuilder) CondBr(cond Value, then, els *BlockBuilder) {
	bb.emit(&CondBrInstr{anInstr: newAnInstr(), Cond: cond, Then: then.blk, Else: els.blk})
}

// Call emits a call; dst is nil for void callees.
func (bb *BlockBuilder) Call(callee Value, args ...Value) *Reg {
	var dst *Reg
	if ft, ok := calleeSig(callee); ok && ft.Ret != nil && ft.Ret.Kind() != KindVoid {
		dst = bb.fb.newReg("", ft.Ret)
	}
	bb.emit(&CallInstr{anInstr: newAnInstr(), Dst: dst, Callee: callee, Args: args})
	return dst
}

func calleeSig(callee Value) (*FuncType, bool) {
	ft, ok := callee.Type().(*FuncType)
	return ft, ok
}

// Ret returns val from the function.
func (bb *BlockBuilder) Ret(val Value) {
	bb.emit(&RetInstr{anInstr: newAnInstr(), Val: val})
}

// RetVoid returns from a void function.
func (bb *BlockBuilder) RetVoid() {
	bb.emit(&RetInstr{anInstr: newAnInstr()})
}

// Spawn starts callee(args...) on a new thread and returns the thread id.
func (bb *BlockBuilder) Spawn(callee Value, args ...Value) *Reg {
	dst := bb.fb.newReg("", Int)
	bb.emit(&SpawnInstr{anInstr: newAnInstr(), Dst: dst, Callee: callee, Args: args})
	return dst
}

// Join waits for the thread identified by tid to exit.
func (bb *BlockBuilder) Join(tid Value) {
	bb.emit(&JoinInstr{anInstr: newAnInstr(), Tid: tid})
}

// Lock acquires the mutex at addr.
func (bb *BlockBuilder) Lock(addr Value) {
	bb.emit(&LockInstr{anInstr: newAnInstr(), Addr: addr})
}

// Unlock releases the mutex at addr.
func (bb *BlockBuilder) Unlock(addr Value) {
	bb.emit(&UnlockInstr{anInstr: newAnInstr(), Addr: addr})
}

// Wait releases the mutex at mu, blocks until cv is notified, then
// reacquires mu.
func (bb *BlockBuilder) Wait(mu, cv Value) {
	bb.emit(&WaitInstr{anInstr: newAnInstr(), Mu: mu, Cv: cv})
}

// Notify wakes every waiter on the condition variable at cv.
func (bb *BlockBuilder) Notify(cv Value) {
	bb.emit(&NotifyInstr{anInstr: newAnInstr(), Cv: cv})
}

// Sleep advances virtual time by dur nanoseconds.
func (bb *BlockBuilder) Sleep(dur Value) {
	bb.emit(&SleepInstr{anInstr: newAnInstr(), Dur: dur})
}

// SleepNS advances virtual time by a constant number of nanoseconds.
func (bb *BlockBuilder) SleepNS(ns int64) { bb.Sleep(ConstInt(ns)) }

// Assert crashes with msg when cond is false.
func (bb *BlockBuilder) Assert(cond Value, msg string) {
	bb.emit(&AssertInstr{anInstr: newAnInstr(), Cond: cond, Msg: msg})
}

// Print appends args to the VM output log.
func (bb *BlockBuilder) Print(args ...Value) {
	bb.emit(&PrintInstr{anInstr: newAnInstr(), Args: args})
}
