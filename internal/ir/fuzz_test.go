package ir

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser's total robustness: any input either
// fails with a ParseError-shaped error or produces a verified module
// whose printed form is a parse/print fixpoint.
func FuzzParse(f *testing.F) {
	f.Add(sampleSrc)
	f.Add(cfgSrc)
	f.Add(`
module cv
global mu: mutex
global c: cond
func main() {
entry:
  lock @mu
  wait @mu, @c
  notify @c
  unlock @mu
  ret
}
`)
	f.Add("module m\nfunc main() {\nentry:\n  ret\n}\n")
	f.Add("not a module at all")
	f.Add("module x\nstruct S {\n a: [3]*int\n}\nglobal g: *S\nfunc main() {\nentry:\n  %p = load @g\n  ret\n}\n")
	f.Add("module y\nfunc main() {\nentry:\n  %x = add 1, 9223372036854775807\n  print %x\n  ret\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := Print(m)
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed module does not reparse: %v\n%s", err, text)
		}
		if Print(m2) != text {
			t.Fatal("print/parse not a fixpoint")
		}
		if m2.NumInstrs() != m.NumInstrs() {
			t.Fatalf("instruction count changed: %d -> %d", m.NumInstrs(), m2.NumInstrs())
		}
	})
}

func TestCondRoundTrip(t *testing.T) {
	src := `
module cvrt
global mu: mutex
global c: cond
global n: int

func waiter() {
entry:
  lock @mu
  wait @mu, @c
  unlock @mu
  ret
}

func main() {
entry:
  %t = spawn waiter()
  sleep 100000
  lock @mu
  store 1, @n
  notify @c
  unlock @mu
  join %t
  ret
}
`
	m := mustParse(t, src)
	var waits, notifies int
	m.Instrs(func(in Instr) {
		switch in.Op() {
		case OpWait:
			waits++
			w := in.(*WaitInstr)
			if Deref(w.Mu.Type()).Kind() != KindMutex || Deref(w.Cv.Type()).Kind() != KindCond {
				t.Error("wait operand types wrong")
			}
			if AccessedPointer(in) != w.Cv {
				t.Error("wait accessed pointer must be the cond")
			}
			if !IsSyncOp(in) {
				t.Error("wait not a sync op")
			}
		case OpNotify:
			notifies++
		}
	})
	if waits != 1 || notifies != 1 {
		t.Fatalf("waits=%d notifies=%d", waits, notifies)
	}
	text := Print(m)
	if !strings.Contains(text, "wait @mu, @c") || !strings.Contains(text, "notify @c") {
		t.Errorf("printed form: %s", text)
	}
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if Print(m2) != text {
		t.Error("round trip not a fixpoint")
	}
}

func TestVerifyWaitTypeErrors(t *testing.T) {
	cases := []string{
		// cond where mutex expected
		"module m\nglobal c: cond\nglobal d: cond\nfunc main() {\nentry:\n  wait @c, @d\n  ret\n}\n",
		// mutex where cond expected
		"module m\nglobal mu: mutex\nglobal mv: mutex\nfunc main() {\nentry:\n  wait @mu, @mv\n  ret\n}\n",
		// notify on int
		"module m\nglobal n: int\nfunc main() {\nentry:\n  notify @n\n  ret\n}\n",
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: type-confused wait/notify accepted", i)
		}
	}
}
