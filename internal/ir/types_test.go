package ir

import (
	"testing"
	"testing/quick"
)

func TestScalarTypeProperties(t *testing.T) {
	cases := []struct {
		t    Type
		kind Kind
		str  string
		size int64
	}{
		{Void, KindVoid, "void", 0},
		{Int, KindInt, "int", 8},
		{Bool, KindBool, "bool", 8},
		{Mutex, KindMutex, "mutex", 8},
	}
	for _, c := range cases {
		if c.t.Kind() != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.str, c.t.Kind(), c.kind)
		}
		if c.t.String() != c.str {
			t.Errorf("String() = %q, want %q", c.t.String(), c.str)
		}
		if c.t.Size() != c.size {
			t.Errorf("%s: size = %d, want %d", c.str, c.t.Size(), c.size)
		}
	}
}

func TestPtrType(t *testing.T) {
	p := PtrTo(Int)
	if p.Kind() != KindPtr {
		t.Fatalf("kind = %v", p.Kind())
	}
	if p.String() != "*int" {
		t.Fatalf("String() = %q", p.String())
	}
	if p.Size() != 8 {
		t.Fatalf("size = %d", p.Size())
	}
	pp := PtrTo(p)
	if pp.String() != "**int" {
		t.Fatalf("String() = %q", pp.String())
	}
	if Deref(pp) != Type(p) {
		t.Fatalf("Deref(**int) != *int")
	}
	if Deref(Int) != nil {
		t.Fatalf("Deref(int) should be nil")
	}
}

func TestStructType(t *testing.T) {
	st := &StructType{Name: "Queue", Fields: []Field{
		{Name: "head", Type: Int},
		{Name: "tail", Type: Int},
		{Name: "buf", Type: PtrTo(Int)},
	}}
	if st.Size() != 24 {
		t.Errorf("size = %d, want 24", st.Size())
	}
	if got := st.FieldIndex("tail"); got != 1 {
		t.Errorf("FieldIndex(tail) = %d, want 1", got)
	}
	if got := st.FieldIndex("missing"); got != -1 {
		t.Errorf("FieldIndex(missing) = %d, want -1", got)
	}
	if got := st.FieldOffset(2); got != 2 {
		t.Errorf("FieldOffset(2) = %d, want 2 words", got)
	}
	if st.String() != "Queue" {
		t.Errorf("String() = %q", st.String())
	}
}

func TestStructFieldOffsetsMonotonic(t *testing.T) {
	// Property: field offsets are strictly increasing and bounded by
	// the struct word size, for arbitrary field counts.
	check := func(nFields uint8) bool {
		n := int(nFields%16) + 1
		fields := make([]Field, n)
		for i := range fields {
			if i%2 == 0 {
				fields[i] = Field{Name: "f", Type: Int}
			} else {
				fields[i] = Field{Name: "g", Type: PtrTo(Int)}
			}
		}
		st := &StructType{Name: "S", Fields: fields}
		prev := int64(-1)
		for i := range fields {
			off := st.FieldOffset(i)
			if off <= prev || off >= st.Size()/8+1 {
				return false
			}
			prev = off
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestArrayType(t *testing.T) {
	a := ArrayOf(Int, 10)
	if a.String() != "[10]int" {
		t.Errorf("String() = %q", a.String())
	}
	if a.Size() != 80 {
		t.Errorf("size = %d, want 80", a.Size())
	}
	nested := ArrayOf(a, 3)
	if nested.Size() != 240 {
		t.Errorf("nested size = %d, want 240", nested.Size())
	}
}

func TestFuncTypeString(t *testing.T) {
	ft := &FuncType{Params: []Type{Int, PtrTo(Bool)}, Ret: Int}
	if got := ft.String(); got != "func(int, *bool) int" {
		t.Errorf("String() = %q", got)
	}
	vf := &FuncType{Ret: Void}
	if got := vf.String(); got != "func()" {
		t.Errorf("void String() = %q", got)
	}
}

func TestTypesEqual(t *testing.T) {
	q1 := &StructType{Name: "Q", Fields: []Field{{"x", Int}}}
	q2 := &StructType{Name: "Q", Fields: []Field{{"x", Int}}}
	cases := []struct {
		a, b Type
		want bool
	}{
		{Int, Int, true},
		{Int, Bool, false},
		{PtrTo(Int), PtrTo(Int), true},
		{PtrTo(Int), PtrTo(Bool), false},
		{q1, q1, true},
		{q1, q2, false}, // nominal: same name but distinct objects differ
		{ArrayOf(Int, 3), ArrayOf(Int, 3), true},
		{ArrayOf(Int, 3), ArrayOf(Int, 4), false},
		{&FuncType{Params: []Type{Int}, Ret: Void}, &FuncType{Params: []Type{Int}, Ret: Void}, true},
		{&FuncType{Params: []Type{Int}, Ret: Void}, &FuncType{Params: []Type{Bool}, Ret: Void}, false},
		{&FuncType{Params: []Type{Int}, Ret: Int}, &FuncType{Params: []Type{Int}, Ret: Void}, false},
		{nil, nil, true},
		{Int, nil, false},
	}
	for _, c := range cases {
		if got := TypesEqual(c.a, c.b); got != c.want {
			t.Errorf("TypesEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTypesEqualSymmetric(t *testing.T) {
	pool := []Type{Int, Bool, Mutex, PtrTo(Int), PtrTo(PtrTo(Bool)),
		ArrayOf(Int, 2), &StructType{Name: "S", Fields: []Field{{"a", Int}}},
		&FuncType{Params: []Type{Int}, Ret: Bool}}
	for _, a := range pool {
		for _, b := range pool {
			if TypesEqual(a, b) != TypesEqual(b, a) {
				t.Errorf("TypesEqual not symmetric for %v, %v", a, b)
			}
		}
		if !TypesEqual(a, a) {
			t.Errorf("TypesEqual not reflexive for %v", a)
		}
	}
}

func TestConstValues(t *testing.T) {
	if c := ConstInt(42); c.Val != 42 || c.Typ != Int || c.String() != "42" {
		t.Errorf("ConstInt broken: %+v", c)
	}
	if c := ConstBool(true); c.Val != 1 || c.String() != "true" {
		t.Errorf("ConstBool(true) broken: %+v", c)
	}
	if c := ConstBool(false); c.Val != 0 || c.String() != "false" {
		t.Errorf("ConstBool(false) broken: %+v", c)
	}
	n := Null(PtrTo(Int))
	if n.Val != 0 || n.String() != "null" {
		t.Errorf("Null broken: %+v", n)
	}
}
