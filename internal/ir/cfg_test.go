package ir

import "testing"

const cfgSrc = `
module cfg
func main() {
entry:
  %x = add 1, 2
  %c = lt %x, 10
  condbr %c, loop, exit
loop:
  %c2 = lt %x, 5
  condbr %c2, body, exit
body:
  br loop
exit:
  ret
}
func orphan() {
entry:
  br next
next:
  ret
}
`

func TestCFGPreds(t *testing.T) {
	m := mustParse(t, cfgSrc)
	fn := m.FuncByName("main")
	c := NewCFG(fn)
	loop := fn.BlockByName("loop")
	exit := fn.BlockByName("exit")
	body := fn.BlockByName("body")
	entry := fn.Entry()

	if got := c.Preds(entry); len(got) != 0 {
		t.Errorf("entry preds = %v", got)
	}
	if got := c.Preds(loop); len(got) != 2 {
		t.Errorf("loop preds = %d, want 2 (entry, body)", len(got))
	}
	if got := c.Preds(exit); len(got) != 2 {
		t.Errorf("exit preds = %d, want 2", len(got))
	}
	if got := c.Preds(body); len(got) != 1 || got[0] != loop {
		t.Errorf("body preds = %v", got)
	}
}

func TestCFGReversePostorder(t *testing.T) {
	m := mustParse(t, cfgSrc)
	fn := m.FuncByName("main")
	c := NewCFG(fn)
	rpo := c.ReversePostorder()
	if len(rpo) != 4 {
		t.Fatalf("rpo covers %d blocks, want 4", len(rpo))
	}
	if rpo[0] != fn.Entry() {
		t.Error("rpo must start at the entry")
	}
	// Every block appears before its dominated successors: entry
	// before loop before body.
	pos := map[string]int{}
	for i, b := range rpo {
		pos[b.Name] = i
	}
	if pos["entry"] > pos["loop"] || pos["loop"] > pos["body"] {
		t.Errorf("rpo order wrong: %v", pos)
	}
}

func TestCFGReachability(t *testing.T) {
	src := `
module unreach
func main() {
entry:
  ret
dead:
  ret
}
`
	m := mustParse(t, src)
	fn := m.FuncByName("main")
	c := NewCFG(fn)
	if !c.Reachable(fn.Entry()) {
		t.Error("entry unreachable")
	}
	if c.Reachable(fn.BlockByName("dead")) {
		t.Error("dead block marked reachable")
	}
	if len(c.ReversePostorder()) != 1 {
		t.Error("rpo includes unreachable blocks")
	}
}

func TestCFGDominates(t *testing.T) {
	m := mustParse(t, cfgSrc)
	fn := m.FuncByName("main")
	c := NewCFG(fn)
	entry := fn.Entry()
	loop := fn.BlockByName("loop")
	body := fn.BlockByName("body")
	exit := fn.BlockByName("exit")

	cases := []struct {
		a, b *Block
		want bool
	}{
		{entry, loop, true},
		{entry, exit, true},
		{loop, body, true},
		{body, loop, false}, // loop reachable from entry directly
		{loop, exit, false}, // exit reachable from entry directly
		{body, body, true},
	}
	for _, tc := range cases {
		if got := c.Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("Dominates(%s, %s) = %v, want %v", tc.a.Name, tc.b.Name, got, tc.want)
		}
	}
}

func TestVerifyRejectsAggregateLoad(t *testing.T) {
	src := `
module agg
struct Big {
  a: int
  b: int
}
global g: Big
func main() {
entry:
  %v = load @g
  ret
}
`
	_, err := Parse(src)
	if err == nil {
		t.Fatal("aggregate load accepted")
	}
}
