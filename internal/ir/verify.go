package ir

import (
	"errors"
	"fmt"
)

// Verify checks the structural and type invariants of a module:
//
//   - every block is non-empty and ends in exactly one terminator;
//   - branch targets belong to the same function;
//   - loads, stores, locks, unlocks and field/index address
//     computations operate on operands of pointer type;
//   - lock/unlock pointers point at mutexes;
//   - direct calls and spawns match the callee's signature;
//   - return values match the function's return type;
//   - struct field indices are in range;
//   - a function named main with no parameters exists.
//
// Verify returns an error joining every violation found.
func Verify(m *Module) error {
	var errs []error
	report := func(f *Func, b *Block, format string, args ...any) {
		where := ""
		if f != nil {
			where = f.Name
			if b != nil {
				where += ":" + b.Name
			}
			where += ": "
		}
		errs = append(errs, fmt.Errorf("%s%s", where, fmt.Sprintf(format, args...)))
	}

	main := m.FuncByName("main")
	if main == nil {
		report(nil, nil, "module %s has no main function", m.Name)
	} else if len(main.Params) != 0 {
		report(main, nil, "main must take no parameters")
	}

	for _, st := range m.Structs {
		if len(st.Fields) == 0 {
			report(nil, nil, "struct %s has no fields (declared but never defined?)", st.Name)
		}
	}

	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			report(f, nil, "function has no blocks")
			continue
		}
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				report(f, b, "empty block")
				continue
			}
			if b.Terminator() == nil {
				report(f, b, "block does not end in a terminator")
			}
			for idx, in := range b.Instrs {
				if IsTerminator(in) && idx != len(b.Instrs)-1 {
					report(f, b, "terminator %q in middle of block", in)
				}
				verifyInstr(f, b, in, report)
			}
		}
	}
	return errors.Join(errs...)
}

func verifyInstr(f *Func, b *Block, in Instr, report func(*Func, *Block, string, ...any)) {
	switch i := in.(type) {
	case *LoadInstr:
		elem := Deref(i.Addr.Type())
		if elem == nil {
			report(f, b, "load through non-pointer %s", i.Addr)
		} else if !isScalar(elem) {
			report(f, b, "load of aggregate type %s (loads move one word)", elem)
		} else if !TypesEqual(elem, i.Dst.Typ) {
			report(f, b, "load type mismatch: %s into %%%s of type %s", elem, i.Dst.Name, i.Dst.Typ)
		}
	case *StoreInstr:
		elem := Deref(i.Addr.Type())
		if elem == nil {
			report(f, b, "store through non-pointer %s", i.Addr)
		} else if !isScalar(elem) {
			report(f, b, "store of aggregate type %s (stores move one word)", elem)
		} else if !TypesEqual(elem, i.Val.Type()) {
			report(f, b, "store type mismatch: %s into *%s", i.Val.Type(), elem)
		}
	case *FieldAddrInstr:
		st := i.StructType()
		if st == nil {
			report(f, b, "fieldaddr on non-struct-pointer %s", i.Base)
		} else if i.Field < 0 || i.Field >= len(st.Fields) {
			report(f, b, "fieldaddr index %d out of range for %s", i.Field, st.Name)
		}
	case *IndexAddrInstr:
		if _, ok := Deref(i.Base.Type()).(*ArrayType); !ok {
			report(f, b, "indexaddr on non-array-pointer %s", i.Base)
		}
		if i.Index.Type().Kind() != KindInt {
			report(f, b, "indexaddr with non-int index %s", i.Index)
		}
	case *BinInstr:
		if i.BOp.IsComparison() {
			if i.Dst.Typ.Kind() != KindBool {
				report(f, b, "comparison %s must define a bool register", i.BOp)
			}
		} else if i.Dst.Typ.Kind() != KindInt {
			report(f, b, "arithmetic %s must define an int register", i.BOp)
		}
	case *CondBrInstr:
		if i.Cond.Type().Kind() != KindBool {
			report(f, b, "condbr on non-bool %s", i.Cond)
		}
		verifyTarget(f, b, i.Then, report)
		verifyTarget(f, b, i.Else, report)
	case *BrInstr:
		verifyTarget(f, b, i.Target, report)
	case *CallInstr:
		verifyCall(f, b, i.Callee, i.Args, i.Dst, report)
	case *SpawnInstr:
		verifyCall(f, b, i.Callee, i.Args, nil, report)
	case *RetInstr:
		want := f.Sig.Ret
		if want == nil || want.Kind() == KindVoid {
			if i.Val != nil {
				report(f, b, "ret with value in void function")
			}
		} else {
			if i.Val == nil {
				report(f, b, "ret without value in %s function", want)
			} else if !TypesEqual(i.Val.Type(), want) {
				report(f, b, "ret type %s, want %s", i.Val.Type(), want)
			}
		}
	case *LockInstr:
		verifyMutexPtr(f, b, i.Addr, "lock", report)
	case *UnlockInstr:
		verifyMutexPtr(f, b, i.Addr, "unlock", report)
	case *WaitInstr:
		verifyMutexPtr(f, b, i.Mu, "wait", report)
		verifyCondPtr(f, b, i.Cv, "wait", report)
	case *NotifyInstr:
		verifyCondPtr(f, b, i.Cv, "notify", report)
	case *JoinInstr:
		if i.Tid.Type().Kind() != KindInt {
			report(f, b, "join on non-int %s", i.Tid)
		}
	case *SleepInstr:
		if i.Dur.Type().Kind() != KindInt {
			report(f, b, "sleep with non-int duration %s", i.Dur)
		}
	case *AssertInstr:
		if i.Cond.Type().Kind() != KindBool {
			report(f, b, "assert on non-bool %s", i.Cond)
		}
	}
}

// isScalar reports whether a type occupies one word and may be moved
// by a single load or store.
func isScalar(t Type) bool {
	switch t.Kind() {
	case KindInt, KindBool, KindPtr, KindMutex, KindFunc:
		return true
	}
	return false
}

func verifyTarget(f *Func, b *Block, target *Block, report func(*Func, *Block, string, ...any)) {
	if target == nil {
		report(f, b, "branch to nil block")
		return
	}
	for _, blk := range f.Blocks {
		if blk == target {
			return
		}
	}
	report(f, b, "branch to block %s of another function", target.Name)
}

func verifyMutexPtr(f *Func, b *Block, addr Value, op string, report func(*Func, *Block, string, ...any)) {
	elem := Deref(addr.Type())
	if elem == nil || elem.Kind() != KindMutex {
		report(f, b, "%s on non-mutex-pointer %s (type %s)", op, addr, addr.Type())
	}
}

func verifyCondPtr(f *Func, b *Block, addr Value, op string, report func(*Func, *Block, string, ...any)) {
	elem := Deref(addr.Type())
	if elem == nil || elem.Kind() != KindCond {
		report(f, b, "%s on non-cond-pointer %s (type %s)", op, addr, addr.Type())
	}
}

func verifyCall(f *Func, b *Block, callee Value, args []Value, dst *Reg, report func(*Func, *Block, string, ...any)) {
	ft, ok := callee.Type().(*FuncType)
	if !ok {
		report(f, b, "call of non-function %s", callee)
		return
	}
	if len(args) != len(ft.Params) {
		report(f, b, "call %s with %d args, want %d", callee, len(args), len(ft.Params))
		return
	}
	for i, a := range args {
		if !TypesEqual(a.Type(), ft.Params[i]) {
			report(f, b, "call %s arg %d has type %s, want %s", callee, i, a.Type(), ft.Params[i])
		}
	}
	if dst != nil && (ft.Ret == nil || ft.Ret.Kind() == KindVoid) {
		report(f, b, "call %s assigns result of void function", callee)
	}
}
