package ir

import (
	"fmt"
	"strings"
)

// Op identifies the operation performed by an instruction.
type Op int

// The instruction opcodes of the IR.
const (
	OpAlloca Op = iota // frame allocation
	OpNew              // heap allocation
	OpLoad
	OpStore
	OpFieldAddr
	OpIndexAddr
	OpBin
	OpCast
	OpBr
	OpCondBr
	OpCall
	OpRet
	OpSpawn
	OpJoin
	OpLock
	OpUnlock
	OpSleep
	OpAssert
	OpPrint
	OpWait
	OpNotify
)

var opNames = [...]string{
	OpAlloca:    "alloca",
	OpNew:       "new",
	OpLoad:      "load",
	OpStore:     "store",
	OpFieldAddr: "fieldaddr",
	OpIndexAddr: "indexaddr",
	OpBin:       "bin",
	OpCast:      "cast",
	OpBr:        "br",
	OpCondBr:    "condbr",
	OpCall:      "call",
	OpRet:       "ret",
	OpSpawn:     "spawn",
	OpJoin:      "join",
	OpLock:      "lock",
	OpUnlock:    "unlock",
	OpSleep:     "sleep",
	OpAssert:    "assert",
	OpPrint:     "print",
	OpWait:      "wait",
	OpNotify:    "notify",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is the interface implemented by all instructions.
type Instr interface {
	Op() Op
	// Def returns the register the instruction assigns, or nil.
	Def() *Reg
	// Uses returns the values the instruction reads.
	Uses() []Value
	String() string

	// PC returns the module-wide program counter of the instruction,
	// assigned by Module.Finalize.
	PC() PC
	// Block returns the basic block containing the instruction.
	Block() *Block
	setPos(pc PC, b *Block)
}

// PC is a module-wide program counter identifying one static
// instruction. PCs are dense: they are assigned 0..N-1 in layout order
// by Module.Finalize, which makes them usable as slice indices.
type PC int32

// NoPC marks an instruction that has not been finalized.
const NoPC PC = -1

// anInstr carries position metadata shared by all instructions.
type anInstr struct {
	pc    PC
	block *Block
}

func (a *anInstr) PC() PC                 { return a.pc }
func (a *anInstr) Block() *Block          { return a.block }
func (a *anInstr) setPos(pc PC, b *Block) { a.pc, a.block = pc, b }
func newAnInstr() anInstr                 { return anInstr{pc: NoPC} }

// AllocaInstr allocates frame storage for one value of type Elem and
// assigns its address to Dst. Frame storage lives until the function
// returns.
type AllocaInstr struct {
	anInstr
	Dst  *Reg
	Elem Type
}

// Op implements Instr.
func (*AllocaInstr) Op() Op { return OpAlloca }

// Def implements Instr.
func (i *AllocaInstr) Def() *Reg { return i.Dst }

// Uses implements Instr.
func (*AllocaInstr) Uses() []Value { return nil }

func (i *AllocaInstr) String() string {
	return fmt.Sprintf("%s = alloca %s", i.Dst, i.Elem)
}

// NewInstr allocates heap storage for one value of type Elem and
// assigns its address to Dst. Heap storage lives for the rest of the
// execution.
type NewInstr struct {
	anInstr
	Dst  *Reg
	Elem Type
}

// Op implements Instr.
func (*NewInstr) Op() Op { return OpNew }

// Def implements Instr.
func (i *NewInstr) Def() *Reg { return i.Dst }

// Uses implements Instr.
func (*NewInstr) Uses() []Value { return nil }

func (i *NewInstr) String() string {
	return fmt.Sprintf("%s = new %s", i.Dst, i.Elem)
}

// LoadInstr reads the value at address Addr into Dst.
type LoadInstr struct {
	anInstr
	Dst  *Reg
	Addr Value
}

// Op implements Instr.
func (*LoadInstr) Op() Op { return OpLoad }

// Def implements Instr.
func (i *LoadInstr) Def() *Reg { return i.Dst }

// Uses implements Instr.
func (i *LoadInstr) Uses() []Value { return []Value{i.Addr} }

func (i *LoadInstr) String() string {
	return fmt.Sprintf("%s = load %s", i.Dst, i.Addr)
}

// StoreInstr writes Val to the address Addr.
type StoreInstr struct {
	anInstr
	Val  Value
	Addr Value
}

// Op implements Instr.
func (*StoreInstr) Op() Op { return OpStore }

// Def implements Instr.
func (*StoreInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (i *StoreInstr) Uses() []Value { return []Value{i.Val, i.Addr} }

func (i *StoreInstr) String() string {
	return fmt.Sprintf("store %s, %s", i.Val, i.Addr)
}

// FieldAddrInstr computes the address of field Field of the struct
// pointed to by Base and assigns it to Dst (the GEP analogue).
type FieldAddrInstr struct {
	anInstr
	Dst   *Reg
	Base  Value
	Field int
}

// Op implements Instr.
func (*FieldAddrInstr) Op() Op { return OpFieldAddr }

// Def implements Instr.
func (i *FieldAddrInstr) Def() *Reg { return i.Dst }

// Uses implements Instr.
func (i *FieldAddrInstr) Uses() []Value { return []Value{i.Base} }

// StructType returns the struct type Base points to, or nil when Base
// is not a pointer-to-struct (a verifier error).
func (i *FieldAddrInstr) StructType() *StructType {
	if st, ok := Deref(i.Base.Type()).(*StructType); ok {
		return st
	}
	return nil
}

func (i *FieldAddrInstr) String() string {
	name := fmt.Sprintf("#%d", i.Field)
	if st := i.StructType(); st != nil && i.Field < len(st.Fields) {
		name = st.Fields[i.Field].Name
	}
	return fmt.Sprintf("%s = fieldaddr %s, %s", i.Dst, i.Base, name)
}

// IndexAddrInstr computes the address of element Index of the array
// pointed to by Base and assigns it to Dst.
type IndexAddrInstr struct {
	anInstr
	Dst   *Reg
	Base  Value
	Index Value
}

// Op implements Instr.
func (*IndexAddrInstr) Op() Op { return OpIndexAddr }

// Def implements Instr.
func (i *IndexAddrInstr) Def() *Reg { return i.Dst }

// Uses implements Instr.
func (i *IndexAddrInstr) Uses() []Value { return []Value{i.Base, i.Index} }

func (i *IndexAddrInstr) String() string {
	return fmt.Sprintf("%s = indexaddr %s, %s", i.Dst, i.Base, i.Index)
}

// BinOp identifies a binary operation.
type BinOp int

// The binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
)

var binNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
}

func (b BinOp) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("binop(%d)", int(b))
}

// IsComparison reports whether the operator yields a bool.
func (b BinOp) IsComparison() bool { return b >= Eq }

// BinInstr computes X op Y into Dst.
type BinInstr struct {
	anInstr
	Dst  *Reg
	BOp  BinOp
	X, Y Value
}

// Op implements Instr.
func (*BinInstr) Op() Op { return OpBin }

// Def implements Instr.
func (i *BinInstr) Def() *Reg { return i.Dst }

// Uses implements Instr.
func (i *BinInstr) Uses() []Value { return []Value{i.X, i.Y} }

func (i *BinInstr) String() string {
	return fmt.Sprintf("%s = %s %s, %s", i.Dst, i.BOp, i.X, i.Y)
}

// CastInstr reinterprets Val as type To and assigns it to Dst. Casts
// between pointer types model the C-style type punning that makes
// type-based ranking a heuristic rather than an exact filter (§4.3 of
// the paper).
type CastInstr struct {
	anInstr
	Dst *Reg
	Val Value
	To  Type
}

// Op implements Instr.
func (*CastInstr) Op() Op { return OpCast }

// Def implements Instr.
func (i *CastInstr) Def() *Reg { return i.Dst }

// Uses implements Instr.
func (i *CastInstr) Uses() []Value { return []Value{i.Val} }

func (i *CastInstr) String() string {
	return fmt.Sprintf("%s = cast %s to %s", i.Dst, i.Val, i.To)
}

// BrInstr is an unconditional branch.
type BrInstr struct {
	anInstr
	Target *Block
}

// Op implements Instr.
func (*BrInstr) Op() Op { return OpBr }

// Def implements Instr.
func (*BrInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (*BrInstr) Uses() []Value { return nil }

func (i *BrInstr) String() string { return "br " + i.Target.Name }

// CondBrInstr branches to Then when Cond is true, else to Else.
type CondBrInstr struct {
	anInstr
	Cond Value
	Then *Block
	Else *Block
}

// Op implements Instr.
func (*CondBrInstr) Op() Op { return OpCondBr }

// Def implements Instr.
func (*CondBrInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (i *CondBrInstr) Uses() []Value { return []Value{i.Cond} }

func (i *CondBrInstr) String() string {
	return fmt.Sprintf("condbr %s, %s, %s", i.Cond, i.Then.Name, i.Else.Name)
}

// CallInstr calls Callee with Args; when the callee returns a value
// and Dst is non-nil the result is assigned to Dst. Callee is either a
// *FuncRef (direct call) or a register holding a function value
// (indirect call).
type CallInstr struct {
	anInstr
	Dst    *Reg
	Callee Value
	Args   []Value
}

// Op implements Instr.
func (*CallInstr) Op() Op { return OpCall }

// Def implements Instr.
func (i *CallInstr) Def() *Reg { return i.Dst }

// Uses implements Instr.
func (i *CallInstr) Uses() []Value {
	return append([]Value{i.Callee}, i.Args...)
}

// StaticCallee returns the directly-called function, or nil for an
// indirect call.
func (i *CallInstr) StaticCallee() *Func {
	if fr, ok := i.Callee.(*FuncRef); ok {
		return fr.Func
	}
	return nil
}

func (i *CallInstr) String() string {
	args := make([]string, len(i.Args))
	for j, a := range i.Args {
		args[j] = a.String()
	}
	call := fmt.Sprintf("call %s(%s)", i.Callee, strings.Join(args, ", "))
	if i.Dst != nil {
		return i.Dst.String() + " = " + call
	}
	return call
}

// RetInstr returns from the current function with optional value Val.
type RetInstr struct {
	anInstr
	Val Value // nil for void returns
}

// Op implements Instr.
func (*RetInstr) Op() Op { return OpRet }

// Def implements Instr.
func (*RetInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (i *RetInstr) Uses() []Value {
	if i.Val == nil {
		return nil
	}
	return []Value{i.Val}
}

func (i *RetInstr) String() string {
	if i.Val == nil {
		return "ret"
	}
	return "ret " + i.Val.String()
}

// SpawnInstr starts a new thread running Callee(Args...) and assigns
// the new thread's id to Dst.
type SpawnInstr struct {
	anInstr
	Dst    *Reg
	Callee Value
	Args   []Value
}

// Op implements Instr.
func (*SpawnInstr) Op() Op { return OpSpawn }

// Def implements Instr.
func (i *SpawnInstr) Def() *Reg { return i.Dst }

// Uses implements Instr.
func (i *SpawnInstr) Uses() []Value {
	return append([]Value{i.Callee}, i.Args...)
}

// StaticCallee returns the directly-spawned function, or nil.
func (i *SpawnInstr) StaticCallee() *Func {
	if fr, ok := i.Callee.(*FuncRef); ok {
		return fr.Func
	}
	return nil
}

func (i *SpawnInstr) String() string {
	args := make([]string, len(i.Args))
	for j, a := range i.Args {
		args[j] = a.String()
	}
	return fmt.Sprintf("%s = spawn %s(%s)", i.Dst, i.Callee, strings.Join(args, ", "))
}

// JoinInstr blocks until the thread identified by Tid exits.
type JoinInstr struct {
	anInstr
	Tid Value
}

// Op implements Instr.
func (*JoinInstr) Op() Op { return OpJoin }

// Def implements Instr.
func (*JoinInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (i *JoinInstr) Uses() []Value { return []Value{i.Tid} }

func (i *JoinInstr) String() string { return "join " + i.Tid.String() }

// LockInstr acquires the mutex at address Addr, blocking until it is
// available.
type LockInstr struct {
	anInstr
	Addr Value
}

// Op implements Instr.
func (*LockInstr) Op() Op { return OpLock }

// Def implements Instr.
func (*LockInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (i *LockInstr) Uses() []Value { return []Value{i.Addr} }

func (i *LockInstr) String() string { return "lock " + i.Addr.String() }

// UnlockInstr releases the mutex at address Addr.
type UnlockInstr struct {
	anInstr
	Addr Value
}

// Op implements Instr.
func (*UnlockInstr) Op() Op { return OpUnlock }

// Def implements Instr.
func (*UnlockInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (i *UnlockInstr) Uses() []Value { return []Value{i.Addr} }

func (i *UnlockInstr) String() string { return "unlock " + i.Addr.String() }

// SleepInstr advances the executing thread's virtual time by Dur
// nanoseconds. Sleep models everything that makes real systems
// coarsely interleaved — I/O, network round trips, request parsing,
// computation between synchronization points.
type SleepInstr struct {
	anInstr
	Dur Value
}

// Op implements Instr.
func (*SleepInstr) Op() Op { return OpSleep }

// Def implements Instr.
func (*SleepInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (i *SleepInstr) Uses() []Value { return []Value{i.Dur} }

func (i *SleepInstr) String() string { return "sleep " + i.Dur.String() }

// AssertInstr crashes the program with Msg when Cond is false. It is
// the custom-failure hook the paper describes for non fail-stop bugs.
type AssertInstr struct {
	anInstr
	Cond Value
	Msg  string
}

// Op implements Instr.
func (*AssertInstr) Op() Op { return OpAssert }

// Def implements Instr.
func (*AssertInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (i *AssertInstr) Uses() []Value { return []Value{i.Cond} }

func (i *AssertInstr) String() string {
	return fmt.Sprintf("assert %s, %q", i.Cond, i.Msg)
}

// PrintInstr appends the values of Args to the VM's output log. It
// exists for examples and debugging and has no analysis significance.
type PrintInstr struct {
	anInstr
	Args []Value
}

// Op implements Instr.
func (*PrintInstr) Op() Op { return OpPrint }

// Def implements Instr.
func (*PrintInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (i *PrintInstr) Uses() []Value { return i.Args }

func (i *PrintInstr) String() string {
	args := make([]string, len(i.Args))
	for j, a := range i.Args {
		args[j] = a.String()
	}
	return "print " + strings.Join(args, ", ")
}

// WaitInstr atomically releases the mutex at Mu, blocks until the
// condition variable at Cv is notified, then reacquires Mu before
// continuing. The calling thread must hold Mu. Like POSIX
// pthread_cond_wait, a notify that arrives while no thread waits is
// lost — the bug class behind lost-wakeup hangs.
type WaitInstr struct {
	anInstr
	Mu Value
	Cv Value
}

// Op implements Instr.
func (*WaitInstr) Op() Op { return OpWait }

// Def implements Instr.
func (*WaitInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (i *WaitInstr) Uses() []Value { return []Value{i.Mu, i.Cv} }

func (i *WaitInstr) String() string {
	return fmt.Sprintf("wait %s, %s", i.Mu, i.Cv)
}

// NotifyInstr wakes every thread waiting on the condition variable at
// Cv (broadcast semantics). Notifies with no waiter are lost.
type NotifyInstr struct {
	anInstr
	Cv Value
}

// Op implements Instr.
func (*NotifyInstr) Op() Op { return OpNotify }

// Def implements Instr.
func (*NotifyInstr) Def() *Reg { return nil }

// Uses implements Instr.
func (i *NotifyInstr) Uses() []Value { return []Value{i.Cv} }

func (i *NotifyInstr) String() string { return "notify " + i.Cv.String() }

// IsTerminator reports whether the instruction ends a basic block.
func IsTerminator(in Instr) bool {
	switch in.Op() {
	case OpBr, OpCondBr, OpRet:
		return true
	}
	return false
}

// IsMemAccess reports whether the instruction reads or writes memory
// through a pointer operand (the accesses that can participate in
// order and atomicity violations).
func IsMemAccess(in Instr) bool {
	op := in.Op()
	return op == OpLoad || op == OpStore
}

// IsSyncOp reports whether the instruction is a synchronization
// operation (the accesses that can participate in deadlocks and
// lost-wakeup hangs).
func IsSyncOp(in Instr) bool {
	switch in.Op() {
	case OpLock, OpUnlock, OpWait, OpNotify:
		return true
	}
	return false
}

// AccessedPointer returns the pointer operand of a memory access or
// synchronization instruction, or nil for other instructions. This is
// the operand whose points-to set drives Lazy Diagnosis.
func AccessedPointer(in Instr) Value {
	switch i := in.(type) {
	case *LoadInstr:
		return i.Addr
	case *StoreInstr:
		return i.Addr
	case *LockInstr:
		return i.Addr
	case *UnlockInstr:
		return i.Addr
	case *WaitInstr:
		// The raced-on synchronization object is the condition
		// variable, not the guarding mutex.
		return i.Cv
	case *NotifyInstr:
		return i.Cv
	}
	return nil
}
