package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in the textual IR format accepted by Parse.
func Print(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, st := range m.Structs {
		sb.WriteString("\n")
		fmt.Fprintf(&sb, "struct %s {\n", st.Name)
		for _, f := range st.Fields {
			fmt.Fprintf(&sb, "  %s: %s\n", f.Name, f.Type)
		}
		sb.WriteString("}\n")
	}
	if len(m.Globals) > 0 {
		sb.WriteString("\n")
	}
	for _, g := range m.Globals {
		if g.Init != nil {
			fmt.Fprintf(&sb, "global %s: %s = %d\n", g.Name, g.Typ, g.Init.Val)
		} else {
			fmt.Fprintf(&sb, "global %s: %s\n", g.Name, g.Typ)
		}
	}
	for _, f := range m.Funcs {
		sb.WriteString("\n")
		sb.WriteString(printFuncHeader(f))
		sb.WriteString(" {\n")
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "%s:\n", b.Name)
			for _, in := range b.Instrs {
				fmt.Fprintf(&sb, "  %s\n", printInstr(in))
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

func printFuncHeader(f *Func) string {
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s: %s", p.Name, p.Typ)
	}
	h := fmt.Sprintf("func %s(%s)", f.Name, strings.Join(params, ", "))
	if f.Sig.Ret != nil && f.Sig.Ret.Kind() != KindVoid {
		h += " " + f.Sig.Ret.String()
	}
	return h
}

// printInstr renders one instruction in parseable syntax. It matches
// Instr.String for most opcodes but uses parse-friendly forms for
// typed nulls.
func printInstr(in Instr) string {
	// The String methods already emit the parseable grammar; nulls are
	// the one exception, handled by operand rendering below.
	switch i := in.(type) {
	case *StoreInstr:
		return fmt.Sprintf("store %s, %s", operand(i.Val), operand(i.Addr))
	case *LoadInstr:
		return fmt.Sprintf("%s = load %s", i.Dst, operand(i.Addr))
	case *BinInstr:
		return fmt.Sprintf("%s = %s %s, %s", i.Dst, i.BOp, operand(i.X), operand(i.Y))
	case *CallInstr:
		s := fmt.Sprintf("call %s(%s)", calleeName(i.Callee), operands(i.Args))
		if i.Dst != nil {
			s = i.Dst.String() + " = " + s
		}
		return s
	case *SpawnInstr:
		return fmt.Sprintf("%s = spawn %s(%s)", i.Dst, calleeName(i.Callee), operands(i.Args))
	case *RetInstr:
		if i.Val == nil {
			return "ret"
		}
		return "ret " + operand(i.Val)
	case *CondBrInstr:
		return fmt.Sprintf("condbr %s, %s, %s", operand(i.Cond), i.Then.Name, i.Else.Name)
	case *AssertInstr:
		return fmt.Sprintf("assert %s, %q", operand(i.Cond), i.Msg)
	case *PrintInstr:
		return "print " + operands(i.Args)
	case *SleepInstr:
		return "sleep " + operand(i.Dur)
	case *JoinInstr:
		return "join " + operand(i.Tid)
	case *LockInstr:
		return "lock " + operand(i.Addr)
	case *UnlockInstr:
		return "unlock " + operand(i.Addr)
	case *WaitInstr:
		return fmt.Sprintf("wait %s, %s", operand(i.Mu), operand(i.Cv))
	case *NotifyInstr:
		return "notify " + operand(i.Cv)
	default:
		return in.String()
	}
}

func operands(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = operand(v)
	}
	return strings.Join(parts, ", ")
}

// operand renders a value in parseable syntax: typed nulls are written
// "null:T" so the parser can recover their pointer type.
func operand(v Value) string {
	if c, ok := v.(*Const); ok && c.Typ.Kind() == KindPtr && c.Val == 0 {
		return "null:" + c.Typ.String()
	}
	return v.String()
}

func calleeName(v Value) string {
	if fr, ok := v.(*FuncRef); ok {
		return fr.Func.Name
	}
	return v.String()
}
