package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses the textual IR format produced by Print and returns a
// finalized, verified module.
//
// The format is line oriented:
//
//	module NAME
//
//	struct Queue {
//	  head: int
//	  buf: *int
//	}
//
//	global fifo: *Queue
//	global hits: int = 0
//
//	func worker(id: int) int {
//	entry:
//	  %p = load @fifo
//	  %h = fieldaddr %p, head
//	  %v = load %h
//	  %c = eq %v, 0
//	  condbr %c, done, more
//	more:
//	  %v2 = add %v, 1
//	  store %v2, %h
//	  br done
//	done:
//	  ret %v
//	}
//
// Comments start with // or # and run to end of line. A register's
// first occurrence must be its definition. Struct types may be
// referenced before their definition. Typed null pointers are written
// "null:*T".
func Parse(src string) (*Module, error) {
	p := &parser{structs: map[string]*StructType{}}
	if err := p.run(src); err != nil {
		return nil, err
	}
	p.m.Finalize()
	if err := Verify(p.m); err != nil {
		return nil, fmt.Errorf("ir: parsed module does not verify: %w", err)
	}
	return p.m, nil
}

// ParseError describes a parse failure with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ir: line %d: %s", e.Line, e.Msg)
}

type parser struct {
	m       *Module
	lines   []string
	lineNo  int // 1-based index of the line being parsed
	structs map[string]*StructType
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.lineNo, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) run(src string) error {
	p.lines = strings.Split(src, "\n")
	// Pass 1: module name, struct defs, globals, function headers.
	if err := p.scanDecls(); err != nil {
		return err
	}
	// Referenced-but-undefined structs are placeholders with no
	// fields; surface them as module errors via the verifier by
	// recording them on the module.
	for _, st := range p.structs {
		if p.m.StructByName(st.Name) == nil {
			p.m.Structs = append(p.m.Structs, st)
		}
	}
	// Pass 2: function bodies.
	return p.parseBodies()
}

func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func (p *parser) scanDecls() error {
	for i := 0; i < len(p.lines); i++ {
		p.lineNo = i + 1
		line := stripComment(p.lines[i])
		switch {
		case line == "":
		case strings.HasPrefix(line, "module "):
			if p.m != nil {
				return p.errf("duplicate module declaration")
			}
			p.m = NewModule(strings.TrimSpace(strings.TrimPrefix(line, "module ")))
		case strings.HasPrefix(line, "struct "):
			var err error
			i, err = p.scanStruct(i)
			if err != nil {
				return err
			}
		case strings.HasPrefix(line, "global "):
			if err := p.scanGlobal(line); err != nil {
				return err
			}
		case strings.HasPrefix(line, "func "):
			var err error
			i, err = p.scanFuncHeader(i)
			if err != nil {
				return err
			}
		default:
			return p.errf("unexpected top-level line %q", line)
		}
	}
	if p.m == nil {
		return &ParseError{Line: 1, Msg: "missing module declaration"}
	}
	return nil
}

// structByName returns the named struct, creating a placeholder for
// forward references.
func (p *parser) structByName(name string) *StructType {
	if st, ok := p.structs[name]; ok {
		return st
	}
	st := &StructType{Name: name}
	p.structs[name] = st
	return st
}

func (p *parser) scanStruct(start int) (end int, err error) {
	p.lineNo = start + 1
	if p.m == nil {
		return start, p.errf("struct before module declaration")
	}
	head := stripComment(p.lines[start])
	name := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(head, "struct "), "{"))
	if name == "" || strings.ContainsAny(name, " \t") || !strings.HasSuffix(head, "{") {
		return start, p.errf("malformed struct header %q", head)
	}
	st := p.structByName(name)
	if len(st.Fields) > 0 {
		return start, p.errf("duplicate struct %s", name)
	}
	for i := start + 1; i < len(p.lines); i++ {
		p.lineNo = i + 1
		line := stripComment(p.lines[i])
		if line == "" {
			continue
		}
		if line == "}" {
			if p.m.StructByName(name) == nil {
				p.m.Structs = append(p.m.Structs, st)
			}
			return i, nil
		}
		fname, ftype, ok := strings.Cut(line, ":")
		if !ok {
			return i, p.errf("malformed field %q", line)
		}
		t, err := p.parseType(strings.TrimSpace(ftype))
		if err != nil {
			return i, err
		}
		st.Fields = append(st.Fields, Field{Name: strings.TrimSpace(fname), Type: t})
	}
	return len(p.lines), p.errf("unterminated struct %s", name)
}

func (p *parser) scanGlobal(line string) error {
	if p.m == nil {
		return p.errf("global before module declaration")
	}
	rest := strings.TrimPrefix(line, "global ")
	var initVal *int64
	if name, val, ok := strings.Cut(rest, "="); ok {
		rest = strings.TrimSpace(name)
		n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return p.errf("malformed global initializer %q", val)
		}
		initVal = &n
	}
	name, typStr, ok := strings.Cut(rest, ":")
	if !ok {
		return p.errf("malformed global %q", line)
	}
	t, err := p.parseType(strings.TrimSpace(typStr))
	if err != nil {
		return err
	}
	g := &Global{Name: strings.TrimSpace(name), Typ: t}
	if initVal != nil {
		g.Init = &Const{Val: *initVal, Typ: t}
	}
	if p.m.GlobalByName(g.Name) != nil {
		return p.errf("duplicate global %s", g.Name)
	}
	p.m.Globals = append(p.m.Globals, g)
	return nil
}

// scanFuncHeader parses a "func name(params) [ret] {" line, creates
// the Func with its signature, and skips past the body to its closing
// brace.
func (p *parser) scanFuncHeader(start int) (end int, err error) {
	p.lineNo = start + 1
	if p.m == nil {
		return start, p.errf("func before module declaration")
	}
	head := stripComment(p.lines[start])
	if !strings.HasSuffix(head, "{") {
		return start, p.errf("func header must end in '{': %q", head)
	}
	head = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(head, "func "), "{"))
	open := strings.IndexByte(head, '(')
	closeIdx := strings.LastIndexByte(head, ')')
	if open < 0 || closeIdx < open {
		return start, p.errf("malformed func header %q", head)
	}
	name := strings.TrimSpace(head[:open])
	paramsStr := head[open+1 : closeIdx]
	retStr := strings.TrimSpace(head[closeIdx+1:])

	f := &Func{Name: name, Sig: &FuncType{Ret: Void}}
	if retStr != "" {
		ret, err := p.parseType(retStr)
		if err != nil {
			return start, err
		}
		f.Sig.Ret = ret
	}
	if strings.TrimSpace(paramsStr) != "" {
		for _, ps := range strings.Split(paramsStr, ",") {
			pname, ptype, ok := strings.Cut(ps, ":")
			if !ok {
				return start, p.errf("malformed parameter %q", ps)
			}
			t, err := p.parseType(strings.TrimSpace(ptype))
			if err != nil {
				return start, err
			}
			r := &Reg{Name: strings.TrimSpace(pname), Index: len(f.Regs), Typ: t}
			f.Regs = append(f.Regs, r)
			f.Params = append(f.Params, r)
			f.Sig.Params = append(f.Sig.Params, t)
		}
	}
	if p.m.FuncByName(name) != nil {
		return start, p.errf("duplicate function %s", name)
	}
	p.m.Funcs = append(p.m.Funcs, f)

	// Skip the body; parsed in pass 2.
	for i := start + 1; i < len(p.lines); i++ {
		if stripComment(p.lines[i]) == "}" {
			return i, nil
		}
	}
	p.lineNo = start + 1
	return len(p.lines), p.errf("unterminated function %s", name)
}

func (p *parser) parseType(s string) (Type, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "int":
		return Int, nil
	case s == "bool":
		return Bool, nil
	case s == "mutex":
		return Mutex, nil
	case s == "cond":
		return Cond, nil
	case s == "void":
		return Void, nil
	case strings.HasPrefix(s, "*"):
		elem, err := p.parseType(s[1:])
		if err != nil {
			return nil, err
		}
		return PtrTo(elem), nil
	case strings.HasPrefix(s, "func("):
		close := strings.LastIndexByte(s, ')')
		if close < 0 {
			return nil, p.errf("malformed func type %q", s)
		}
		ft := &FuncType{Ret: Void}
		if params := strings.TrimSpace(s[len("func("):close]); params != "" {
			for _, ps := range strings.Split(params, ",") {
				pt, err := p.parseType(ps)
				if err != nil {
					return nil, err
				}
				ft.Params = append(ft.Params, pt)
			}
		}
		if ret := strings.TrimSpace(s[close+1:]); ret != "" {
			rt, err := p.parseType(ret)
			if err != nil {
				return nil, err
			}
			ft.Ret = rt
		}
		return ft, nil
	case strings.HasPrefix(s, "["):
		close := strings.IndexByte(s, ']')
		if close < 0 {
			return nil, p.errf("malformed array type %q", s)
		}
		n, err := strconv.ParseInt(s[1:close], 10, 64)
		if err != nil {
			return nil, p.errf("malformed array length in %q", s)
		}
		elem, err := p.parseType(s[close+1:])
		if err != nil {
			return nil, err
		}
		return ArrayOf(elem, n), nil
	case s != "" && !strings.ContainsAny(s, " \t(),"):
		return p.structByName(s), nil
	}
	return nil, p.errf("malformed type %q", s)
}

func (p *parser) parseBodies() error {
	fi := 0
	for i := 0; i < len(p.lines); i++ {
		p.lineNo = i + 1
		line := stripComment(p.lines[i])
		if !strings.HasPrefix(line, "func ") {
			continue
		}
		if fi >= len(p.m.Funcs) {
			return p.errf("internal: more func bodies than headers")
		}
		end, err := p.parseBody(p.m.Funcs[fi], i)
		if err != nil {
			return err
		}
		fi++
		i = end
	}
	return nil
}

// funcParser holds per-function parsing state.
type funcParser struct {
	p      *parser
	f      *Func
	regs   map[string]*Reg
	blocks map[string]*Block
}

func (p *parser) parseBody(f *Func, start int) (end int, err error) {
	fp := &funcParser{p: p, f: f, regs: map[string]*Reg{}, blocks: map[string]*Block{}}
	for _, r := range f.Params {
		fp.regs[r.Name] = r
	}
	// Pre-scan for block labels so forward branches resolve.
	bodyEnd := start
	for i := start + 1; i < len(p.lines); i++ {
		line := stripComment(p.lines[i])
		if line == "}" {
			bodyEnd = i
			break
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") && line != ":" {
			name := strings.TrimSuffix(line, ":")
			if _, dup := fp.blocks[name]; dup {
				p.lineNo = i + 1
				return i, p.errf("duplicate block %s", name)
			}
			b := &Block{Name: name, Parent: f}
			fp.blocks[name] = b
			f.Blocks = append(f.Blocks, b)
		}
	}
	var cur *Block
	for i := start + 1; i < bodyEnd; i++ {
		p.lineNo = i + 1
		line := stripComment(p.lines[i])
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			cur = fp.blocks[strings.TrimSuffix(line, ":")]
			continue
		}
		if cur == nil {
			return i, p.errf("instruction before first block label")
		}
		in, err := fp.parseInstr(line)
		if err != nil {
			return i, err
		}
		cur.Instrs = append(cur.Instrs, in)
	}
	return bodyEnd, nil
}

func (fp *funcParser) defReg(name string, typ Type) (*Reg, error) {
	if r, ok := fp.regs[name]; ok {
		if !TypesEqual(r.Typ, typ) {
			return nil, fp.p.errf("register %%%s redefined with type %s (was %s)", name, typ, r.Typ)
		}
		return r, nil
	}
	r := &Reg{Name: name, Index: len(fp.f.Regs), Typ: typ}
	fp.f.Regs = append(fp.f.Regs, r)
	fp.regs[name] = r
	return r, nil
}

func (fp *funcParser) block(name string) (*Block, error) {
	b, ok := fp.blocks[name]
	if !ok {
		return nil, fp.p.errf("unknown block %q", name)
	}
	return b, nil
}

// parseValue parses one operand.
func (fp *funcParser) parseValue(s string) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, fp.p.errf("empty operand")
	case strings.HasPrefix(s, "%"):
		r, ok := fp.regs[s[1:]]
		if !ok {
			return nil, fp.p.errf("use of undefined register %s", s)
		}
		return r, nil
	case strings.HasPrefix(s, "@"):
		g := fp.p.m.GlobalByName(s[1:])
		if g == nil {
			return nil, fp.p.errf("unknown global %s", s)
		}
		return &GlobalRef{Global: g}, nil
	case s == "true":
		return ConstBool(true), nil
	case s == "false":
		return ConstBool(false), nil
	case strings.HasPrefix(s, "null:"):
		t, err := fp.p.parseType(s[len("null:"):])
		if err != nil {
			return nil, err
		}
		pt, ok := t.(*PtrType)
		if !ok {
			return nil, fp.p.errf("null of non-pointer type %s", t)
		}
		return Null(pt), nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ConstInt(n), nil
	}
	if f := fp.p.m.FuncByName(s); f != nil {
		return &FuncRef{Func: f}, nil
	}
	return nil, fp.p.errf("malformed operand %q", s)
}

func (fp *funcParser) parseValues(s string) ([]Value, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	vals := make([]Value, len(parts))
	for i, part := range parts {
		v, err := fp.parseValue(part)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

var binOpsByName = map[string]BinOp{
	"add": Add, "sub": Sub, "mul": Mul, "div": Div, "rem": Rem,
	"and": And, "or": Or, "xor": Xor, "shl": Shl, "shr": Shr,
	"eq": Eq, "ne": Ne, "lt": Lt, "le": Le, "gt": Gt, "ge": Ge,
}

func (fp *funcParser) parseInstr(line string) (Instr, error) {
	// Split "%dst = rhs" from plain "rhs".
	var dstName string
	rhs := line
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fp.p.errf("malformed instruction %q", line)
		}
		dstName = strings.TrimSpace(line[:eq])
		if !strings.HasPrefix(dstName, "%") {
			return nil, fp.p.errf("malformed destination %q", dstName)
		}
		dstName = dstName[1:]
		rhs = strings.TrimSpace(line[eq+1:])
	}
	kw, rest, _ := strings.Cut(rhs, " ")
	rest = strings.TrimSpace(rest)

	switch {
	case kw == "alloca" || kw == "new":
		t, err := fp.p.parseType(rest)
		if err != nil {
			return nil, err
		}
		dst, err := fp.defReg(dstName, PtrTo(t))
		if err != nil {
			return nil, err
		}
		if kw == "alloca" {
			return &AllocaInstr{anInstr: newAnInstr(), Dst: dst, Elem: t}, nil
		}
		return &NewInstr{anInstr: newAnInstr(), Dst: dst, Elem: t}, nil

	case kw == "load":
		addr, err := fp.parseValue(rest)
		if err != nil {
			return nil, err
		}
		elem := Deref(addr.Type())
		if elem == nil {
			return nil, fp.p.errf("load through non-pointer %q", rest)
		}
		dst, err := fp.defReg(dstName, elem)
		if err != nil {
			return nil, err
		}
		return &LoadInstr{anInstr: newAnInstr(), Dst: dst, Addr: addr}, nil

	case kw == "store":
		vals, err := fp.parseValues(rest)
		if err != nil {
			return nil, err
		}
		if len(vals) != 2 {
			return nil, fp.p.errf("store wants 2 operands, got %d", len(vals))
		}
		return &StoreInstr{anInstr: newAnInstr(), Val: vals[0], Addr: vals[1]}, nil

	case kw == "fieldaddr":
		baseStr, fieldName, ok := strings.Cut(rest, ",")
		if !ok {
			return nil, fp.p.errf("fieldaddr wants base, field")
		}
		base, err := fp.parseValue(baseStr)
		if err != nil {
			return nil, err
		}
		st, ok := Deref(base.Type()).(*StructType)
		if !ok {
			return nil, fp.p.errf("fieldaddr on non-struct-pointer %q", baseStr)
		}
		fieldName = strings.TrimSpace(fieldName)
		idx := st.FieldIndex(fieldName)
		if idx < 0 {
			return nil, fp.p.errf("struct %s has no field %q", st.Name, fieldName)
		}
		dst, err := fp.defReg(dstName, PtrTo(st.Fields[idx].Type))
		if err != nil {
			return nil, err
		}
		return &FieldAddrInstr{anInstr: newAnInstr(), Dst: dst, Base: base, Field: idx}, nil

	case kw == "indexaddr":
		vals, err := fp.parseValues(rest)
		if err != nil {
			return nil, err
		}
		if len(vals) != 2 {
			return nil, fp.p.errf("indexaddr wants base, index")
		}
		at, ok := Deref(vals[0].Type()).(*ArrayType)
		if !ok {
			return nil, fp.p.errf("indexaddr on non-array-pointer")
		}
		dst, err := fp.defReg(dstName, PtrTo(at.Elem))
		if err != nil {
			return nil, err
		}
		return &IndexAddrInstr{anInstr: newAnInstr(), Dst: dst, Base: vals[0], Index: vals[1]}, nil

	case kw == "cast":
		valStr, toStr, ok := strings.Cut(rest, " to ")
		if !ok {
			return nil, fp.p.errf("cast wants 'cast VAL to TYPE'")
		}
		val, err := fp.parseValue(valStr)
		if err != nil {
			return nil, err
		}
		to, err := fp.p.parseType(toStr)
		if err != nil {
			return nil, err
		}
		dst, err := fp.defReg(dstName, to)
		if err != nil {
			return nil, err
		}
		return &CastInstr{anInstr: newAnInstr(), Dst: dst, Val: val, To: to}, nil

	case kw == "br":
		target, err := fp.block(rest)
		if err != nil {
			return nil, err
		}
		return &BrInstr{anInstr: newAnInstr(), Target: target}, nil

	case kw == "condbr":
		parts := strings.Split(rest, ",")
		if len(parts) != 3 {
			return nil, fp.p.errf("condbr wants cond, then, else")
		}
		cond, err := fp.parseValue(parts[0])
		if err != nil {
			return nil, err
		}
		then, err := fp.block(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, err
		}
		els, err := fp.block(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, err
		}
		return &CondBrInstr{anInstr: newAnInstr(), Cond: cond, Then: then, Else: els}, nil

	case kw == "call" || kw == "spawn":
		callee, args, err := fp.parseCallExpr(rest)
		if err != nil {
			return nil, err
		}
		if kw == "spawn" {
			dst, err := fp.defReg(dstName, Int)
			if err != nil {
				return nil, err
			}
			return &SpawnInstr{anInstr: newAnInstr(), Dst: dst, Callee: callee, Args: args}, nil
		}
		var dst *Reg
		if dstName != "" {
			ft, ok := callee.Type().(*FuncType)
			if !ok {
				return nil, fp.p.errf("call of non-function")
			}
			dst, err = fp.defReg(dstName, ft.Ret)
			if err != nil {
				return nil, err
			}
		}
		return &CallInstr{anInstr: newAnInstr(), Dst: dst, Callee: callee, Args: args}, nil

	case kw == "ret":
		if rest == "" {
			return &RetInstr{anInstr: newAnInstr()}, nil
		}
		val, err := fp.parseValue(rest)
		if err != nil {
			return nil, err
		}
		return &RetInstr{anInstr: newAnInstr(), Val: val}, nil

	case kw == "join":
		tid, err := fp.parseValue(rest)
		if err != nil {
			return nil, err
		}
		return &JoinInstr{anInstr: newAnInstr(), Tid: tid}, nil

	case kw == "lock" || kw == "unlock":
		addr, err := fp.parseValue(rest)
		if err != nil {
			return nil, err
		}
		if kw == "lock" {
			return &LockInstr{anInstr: newAnInstr(), Addr: addr}, nil
		}
		return &UnlockInstr{anInstr: newAnInstr(), Addr: addr}, nil

	case kw == "wait":
		vals, err := fp.parseValues(rest)
		if err != nil {
			return nil, err
		}
		if len(vals) != 2 {
			return nil, fp.p.errf("wait wants mutex, cond")
		}
		return &WaitInstr{anInstr: newAnInstr(), Mu: vals[0], Cv: vals[1]}, nil

	case kw == "notify":
		cv, err := fp.parseValue(rest)
		if err != nil {
			return nil, err
		}
		return &NotifyInstr{anInstr: newAnInstr(), Cv: cv}, nil

	case kw == "sleep":
		dur, err := fp.parseValue(rest)
		if err != nil {
			return nil, err
		}
		return &SleepInstr{anInstr: newAnInstr(), Dur: dur}, nil

	case kw == "assert":
		condStr, msgStr, ok := strings.Cut(rest, ",")
		if !ok {
			return nil, fp.p.errf("assert wants cond, \"msg\"")
		}
		cond, err := fp.parseValue(condStr)
		if err != nil {
			return nil, err
		}
		msg, err := strconv.Unquote(strings.TrimSpace(msgStr))
		if err != nil {
			return nil, fp.p.errf("malformed assert message %q", msgStr)
		}
		return &AssertInstr{anInstr: newAnInstr(), Cond: cond, Msg: msg}, nil

	case kw == "print":
		args, err := fp.parseValues(rest)
		if err != nil {
			return nil, err
		}
		return &PrintInstr{anInstr: newAnInstr(), Args: args}, nil

	default:
		if op, ok := binOpsByName[kw]; ok {
			vals, err := fp.parseValues(rest)
			if err != nil {
				return nil, err
			}
			if len(vals) != 2 {
				return nil, fp.p.errf("%s wants 2 operands", kw)
			}
			var t Type = Int
			if op.IsComparison() {
				t = Bool
			}
			dst, err := fp.defReg(dstName, t)
			if err != nil {
				return nil, err
			}
			return &BinInstr{anInstr: newAnInstr(), Dst: dst, BOp: op, X: vals[0], Y: vals[1]}, nil
		}
	}
	return nil, fp.p.errf("unknown instruction %q", kw)
}

// parseCallExpr parses "callee(arg, arg, ...)".
func (fp *funcParser) parseCallExpr(s string) (callee Value, args []Value, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, nil, fp.p.errf("malformed call %q", s)
	}
	callee, err = fp.parseValue(s[:open])
	if err != nil {
		return nil, nil, err
	}
	args, err = fp.parseValues(s[open+1 : len(s)-1])
	if err != nil {
		return nil, nil, err
	}
	return callee, args, nil
}
