// Package ir defines the typed intermediate representation consumed by
// every analysis in this repository.
//
// The IR plays the role LLVM bitcode plays in the Snorlax paper (SOSP
// 2017): it is the common substrate shared by the virtual machine that
// executes programs (internal/vm), the simulated processor-trace
// encoder/decoder (internal/pt), and the static analyses of Lazy
// Diagnosis (points-to analysis, type-based ranking, bug-pattern
// computation).
//
// The IR is register based (not SSA): each function owns a set of
// virtual registers that instructions may assign to repeatedly. This
// keeps the interpreter and the textual format simple while preserving
// everything Lazy Diagnosis needs — opcodes, pointer operands, static
// types, the control-flow graph, and a stable program-counter mapping.
package ir

import (
	"fmt"
	"strings"
)

// Kind discriminates the classes of IR types.
type Kind int

// The type kinds of the IR.
const (
	KindVoid Kind = iota
	KindInt
	KindBool
	KindPtr
	KindStruct
	KindArray
	KindFunc
	KindMutex
	KindCond
)

// Type is the interface implemented by all IR types.
type Type interface {
	Kind() Kind
	String() string
	// Size reports the abstract size of the type in bytes. Every
	// scalar slot (int, bool, pointer, mutex) occupies one 8-byte
	// word; aggregates are the sum of their parts. The VM's memory
	// model is word addressed, so Size/8 is the number of slots.
	Size() int64
}

type (
	voidType  struct{}
	intType   struct{}
	boolType  struct{}
	mutexType struct{}
	condType  struct{}
)

// Singleton instances of the scalar types.
var (
	Void  Type = voidType{}
	Int   Type = intType{}
	Bool  Type = boolType{}
	Mutex Type = mutexType{}
	// Cond is a condition variable usable with wait/notify.
	Cond Type = condType{}
)

func (voidType) Kind() Kind     { return KindVoid }
func (voidType) String() string { return "void" }
func (voidType) Size() int64    { return 0 }

func (intType) Kind() Kind     { return KindInt }
func (intType) String() string { return "int" }
func (intType) Size() int64    { return 8 }

func (boolType) Kind() Kind     { return KindBool }
func (boolType) String() string { return "bool" }
func (boolType) Size() int64    { return 8 }

func (mutexType) Kind() Kind     { return KindMutex }
func (mutexType) String() string { return "mutex" }
func (mutexType) Size() int64    { return 8 }

func (condType) Kind() Kind     { return KindCond }
func (condType) String() string { return "cond" }
func (condType) Size() int64    { return 8 }

// PtrType is a typed pointer.
type PtrType struct {
	Elem Type
}

// PtrTo returns the pointer type with element type elem.
func PtrTo(elem Type) *PtrType { return &PtrType{Elem: elem} }

// Kind implements Type.
func (*PtrType) Kind() Kind { return KindPtr }

func (p *PtrType) String() string { return "*" + p.Elem.String() }

// Size implements Type; pointers are one word.
func (*PtrType) Size() int64 { return 8 }

// Field is a named member of a StructType.
type Field struct {
	Name string
	Type Type
}

// StructType is a named aggregate with ordered fields. Struct types
// are nominal: two structs are the same type only if they are the same
// *StructType object (obtained from the module's type table).
type StructType struct {
	Name   string
	Fields []Field
}

// Kind implements Type.
func (*StructType) Kind() Kind { return KindStruct }

func (s *StructType) String() string { return s.Name }

// Size implements Type.
func (s *StructType) Size() int64 {
	var n int64
	for _, f := range s.Fields {
		n += f.Type.Size()
	}
	return n
}

// FieldIndex returns the index of the field with the given name, or -1.
func (s *StructType) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FieldOffset returns the word offset of field i within the struct.
func (s *StructType) FieldOffset(i int) int64 {
	var off int64
	for j := 0; j < i; j++ {
		off += s.Fields[j].Type.Size() / 8
	}
	return off
}

// ArrayType is a fixed-length homogeneous aggregate.
type ArrayType struct {
	Elem Type
	Len  int64
}

// ArrayOf returns the array type [n]elem.
func ArrayOf(elem Type, n int64) *ArrayType { return &ArrayType{Elem: elem, Len: n} }

// Kind implements Type.
func (*ArrayType) Kind() Kind { return KindArray }

func (a *ArrayType) String() string { return fmt.Sprintf("[%d]%s", a.Len, a.Elem) }

// Size implements Type.
func (a *ArrayType) Size() int64 { return a.Len * a.Elem.Size() }

// FuncType describes a function signature.
type FuncType struct {
	Params []Type
	Ret    Type
}

// Kind implements Type.
func (*FuncType) Kind() Kind { return KindFunc }

func (f *FuncType) String() string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = p.String()
	}
	s := "func(" + strings.Join(parts, ", ") + ")"
	if f.Ret != nil && f.Ret.Kind() != KindVoid {
		s += " " + f.Ret.String()
	}
	return s
}

// Size implements Type; function values are one word (a code address).
func (*FuncType) Size() int64 { return 8 }

// TypesEqual reports structural equality for scalar, pointer, array
// and function types and nominal identity for struct types. It is the
// equality used by the verifier and by type-based ranking.
func TypesEqual(a, b Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch at := a.(type) {
	case voidType, intType, boolType, mutexType, condType:
		return true
	case *PtrType:
		return TypesEqual(at.Elem, b.(*PtrType).Elem)
	case *StructType:
		return at == b.(*StructType)
	case *ArrayType:
		bt := b.(*ArrayType)
		return at.Len == bt.Len && TypesEqual(at.Elem, bt.Elem)
	case *FuncType:
		bt := b.(*FuncType)
		if len(at.Params) != len(bt.Params) || !TypesEqual(at.Ret, bt.Ret) {
			return false
		}
		for i := range at.Params {
			if !TypesEqual(at.Params[i], bt.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Deref returns the element type of a pointer type, or nil if t is not
// a pointer.
func Deref(t Type) Type {
	if p, ok := t.(*PtrType); ok {
		return p.Elem
	}
	return nil
}
