package ir

import (
	"strings"
	"testing"
)

const sampleSrc = `
module sample

// A queue shared between producer and consumer.
struct Queue {
  head: int
  tail: int
  buf: *int
}

global fifo: *Queue
global mu: mutex
global hits: int = 7

func main() {
entry:
  %q = new Queue
  store %q, @fifo
  %t = spawn consumer(3)
  call producer(%q)
  join %t
  ret
}

func producer(arg: *Queue) {
entry:
  lock @mu
  %h = fieldaddr %arg, head
  %v = load %h
  %v2 = add %v, 1
  store %v2, %h
  unlock @mu
  sleep 1000
  ret
}

func consumer(n: int) int {
entry:
  %i = alloca int
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = lt %iv, %n
  condbr %c, body, done
body:
  %p = load @fifo
  %isnull = eq %p, 0
  assert %isnull, "unexpected queue"
  %iv2 = add %iv, 1
  store %iv2, %i
  br loop
done:
  %r = load %i
  ret %r
}
`

func mustParse(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return m
}

func TestParseSample(t *testing.T) {
	m := mustParse(t, sampleSrc)
	if m.Name != "sample" {
		t.Errorf("module name = %q", m.Name)
	}
	if len(m.Funcs) != 3 || len(m.Globals) != 3 || len(m.Structs) != 1 {
		t.Fatalf("funcs=%d globals=%d structs=%d", len(m.Funcs), len(m.Globals), len(m.Structs))
	}
	q := m.StructByName("Queue")
	if q == nil || len(q.Fields) != 3 {
		t.Fatalf("Queue struct wrong: %+v", q)
	}
	hits := m.GlobalByName("hits")
	if hits == nil || hits.Init == nil || hits.Init.Val != 7 {
		t.Fatalf("hits init wrong: %+v", hits)
	}
	cons := m.FuncByName("consumer")
	if cons.Sig.Ret != Int || len(cons.Params) != 1 || cons.Params[0].Typ != Int {
		t.Fatalf("consumer signature wrong: %v", cons.Sig)
	}
	if len(cons.Blocks) != 4 {
		t.Fatalf("consumer blocks = %d", len(cons.Blocks))
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	m1 := mustParse(t, sampleSrc)
	text1 := Print(m1)
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse: %v\ntext:\n%s", err, text1)
	}
	text2 := Print(m2)
	if text1 != text2 {
		t.Errorf("print/parse not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
	if m1.NumInstrs() != m2.NumInstrs() {
		t.Errorf("instr count changed: %d -> %d", m1.NumInstrs(), m2.NumInstrs())
	}
}

func TestBuilderPrintParseRoundTrip(t *testing.T) {
	m1 := buildCounterModule(t)
	text := Print(m1)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("parse of printed builder module: %v\n%s", err, text)
	}
	if m1.NumInstrs() != m2.NumInstrs() {
		t.Errorf("instr count %d -> %d", m1.NumInstrs(), m2.NumInstrs())
	}
	if Print(m2) != text {
		t.Error("round trip not a fixpoint")
	}
}

func TestParseTypedNull(t *testing.T) {
	src := `
module nulls
struct S {
  x: int
}
global g: *S
func main() {
entry:
  store null:*S, @g
  %p = load @g
  %isnull = eq %p, 0
  ret
}
`
	m := mustParse(t, src)
	var store *StoreInstr
	m.Instrs(func(in Instr) {
		if s, ok := in.(*StoreInstr); ok {
			store = s
		}
	})
	c, ok := store.Val.(*Const)
	if !ok || c.Val != 0 {
		t.Fatalf("store value = %v", store.Val)
	}
	if c.Typ.String() != "*S" {
		t.Fatalf("null type = %s", c.Typ)
	}
}

func TestParseForwardStructReference(t *testing.T) {
	src := `
module fwd
global g: *Late
struct Late {
  x: int
}
func main() {
entry:
  %p = load @g
  %xa = fieldaddr %p, x
  store 1, %xa
  ret
}
`
	m := mustParse(t, src)
	late := m.StructByName("Late")
	if late == nil || len(late.Fields) != 1 {
		t.Fatalf("forward struct not resolved: %+v", late)
	}
	// The global's type must be the same struct object.
	g := m.GlobalByName("g")
	if Deref(g.Typ) != Type(late) {
		t.Fatal("global type not identical to struct definition")
	}
}

func TestParseIndirectCall(t *testing.T) {
	src := `
module indirect
global fp: func(int) int
func double(x: int) int {
entry:
  %r = mul %x, 2
  ret %r
}
func main() {
entry:
  store double, @fp
  %f = load @fp
  %r = call %f(21)
  ret
}
`
	m := mustParse(t, src)
	var calls []*CallInstr
	m.Instrs(func(in Instr) {
		if c, ok := in.(*CallInstr); ok {
			calls = append(calls, c)
		}
	})
	if len(calls) != 1 {
		t.Fatalf("calls = %d", len(calls))
	}
	if calls[0].StaticCallee() != nil {
		t.Error("indirect call should have no static callee")
	}
}

func TestParseArrays(t *testing.T) {
	src := `
module arr
global table: [4]int
func main() {
entry:
  %e = indexaddr @table, 2
  store 9, %e
  %v = load %e
  ret
}
`
	m := mustParse(t, src)
	g := m.GlobalByName("table")
	at, ok := g.Typ.(*ArrayType)
	if !ok || at.Len != 4 || at.Elem != Int {
		t.Fatalf("table type = %v", g.Typ)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no module", "func main() {\nentry:\n  ret\n}\n", "module"},
		{"undefined register", "module m\nfunc main() {\nentry:\n  %x = add %y, 1\n  ret\n}\n", "undefined register"},
		{"unknown global", "module m\nfunc main() {\nentry:\n  %x = load @nope\n  ret\n}\n", "unknown global"},
		{"unknown block", "module m\nfunc main() {\nentry:\n  br nowhere\n}\n", "unknown block"},
		{"unknown instruction", "module m\nfunc main() {\nentry:\n  frobnicate %x\n}\n", "unknown instruction"},
		{"unknown field", "module m\nstruct S {\n x: int\n}\nfunc main() {\nentry:\n  %p = new S\n  %f = fieldaddr %p, y\n  ret\n}\n", "no field"},
		{"unterminated func", "module m\nfunc main() {\nentry:\n  ret\n", "unterminated"},
		{"duplicate func", "module m\nfunc f() {\nentry:\n  ret\n}\nfunc f() {\nentry:\n  ret\n}\n", "duplicate function"},
		{"register type clash", "module m\nfunc main() {\nentry:\n  %x = add 1, 2\n  %x = eq 1, 2\n  ret\n}\n", "redefined"},
		{"missing main", "module m\nfunc f() {\nentry:\n  ret\n}\n", "no main"},
		{"store arity", "module m\nfunc main() {\nentry:\n  store 1\n  ret\n}\n", "store wants 2"},
		{"undefined struct use", "module m\nglobal g: *Ghost\nfunc main() {\nentry:\n  ret\n}\n", "no fields"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	src := "module m\nfunc main() {\nentry:\n  %x = add %nope, 1\n  ret\n}\n"
	_, err := Parse(src)
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("error type = %T (%v)", err, err)
	}
	if pe.Line != 4 {
		t.Errorf("error line = %d, want 4", pe.Line)
	}
}

func asParseError(err error, out **ParseError) bool {
	for err != nil {
		if pe, ok := err.(*ParseError); ok {
			*out = pe
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestParseComments(t *testing.T) {
	src := `
module m
# hash comment
// slash comment
func main() { // trailing
entry:
  ret // done
}
`
	m := mustParse(t, src)
	if m.FuncByName("main").NumInstrs() != 1 {
		t.Fatal("comments not stripped")
	}
}
