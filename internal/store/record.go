// Package store is the fleet server's durable case store: an
// append-only, segmented write-ahead log whose records narrate the
// fleet lifecycle — a program registers, a failure opens a case,
// triggered success traces are accepted one by one, the quota is
// reached, the diagnosis is published, the case closes. Replaying the
// log reconstructs the fleet state deterministically, so a restarted
// server resumes half-filled collections (with every dedup ledger
// intact) and re-serves published reports without re-running
// diagnosis.
//
// The on-disk format is deliberately boring: each record is a frame of
// a little-endian uint32 payload length, a little-endian uint32 CRC32C
// (Castagnoli) of the payload, and a self-contained gob payload.
// Segments are cut at a size threshold; a periodic snapshot of the
// replayed state, written at a segment boundary, lets compaction
// delete every earlier segment. Recovery tolerates torn writes,
// truncated tails and corrupt records by truncating the log at the
// first bad frame — everything before it is kept, everything after it
// (necessarily unacknowledged) is dropped and counted in metrics.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/pt"
)

// RecordType discriminates the fleet lifecycle events the log records.
type RecordType uint8

const (
	// RecProgramRegistered creates a tenant: Tenant is the module
	// fingerprint, ModuleText the canonical IR the fingerprint is of.
	RecProgramRegistered RecordType = iota + 1
	// RecCaseOpened opens a diagnosis case under Tenant: Case is the
	// tenant-scoped case number, TriggerPC the failure PC the
	// collection directive arms, Want the success-trace quota, and
	// Failure/Snapshot the failing trace of record.
	RecCaseOpened
	// RecTraceAccepted admits one success snapshot toward the case's
	// quota. Client and Seq are the uploader's dedup-ledger entry: on
	// replay the ledger is restored to each client's highest accepted
	// sequence number, so batches replayed across a server restart
	// still deduplicate instead of double-counting.
	RecTraceAccepted
	// RecQuotaReached disarms the case's collection directive.
	RecQuotaReached
	// RecReportPublished stores the diagnosis verdict (or, in DiagErr,
	// why diagnosing failed), so a restarted server re-serves the
	// report from disk without re-running the analysis.
	RecReportPublished
	// RecCaseClosed marks the case fully done.
	RecCaseClosed
)

func (t RecordType) String() string {
	switch t {
	case RecProgramRegistered:
		return "program-registered"
	case RecCaseOpened:
		return "case-opened"
	case RecTraceAccepted:
		return "trace-accepted"
	case RecQuotaReached:
		return "quota-reached"
	case RecReportPublished:
		return "report-published"
	case RecCaseClosed:
		return "case-closed"
	}
	return fmt.Sprintf("record-type-%d", uint8(t))
}

// Record is one logged state transition. Which fields are meaningful
// depends on Type (see the RecordType constants); unused fields stay
// zero and cost nothing on the wire beyond gob's field skipping.
type Record struct {
	Type   RecordType
	Tenant string
	Case   uint64

	// RecProgramRegistered.
	ModuleText string

	// RecCaseOpened.
	TriggerPC ir.PC
	Want      int
	Failure   *core.FailureReport

	// RecCaseOpened (the failing trace) and RecTraceAccepted (the
	// accepted success trace).
	Snapshot *pt.Snapshot

	// RecTraceAccepted.
	Client string
	Seq    uint64

	// RecReportPublished: exactly one of Diagnosis and DiagErr is set.
	Diagnosis *core.Diagnosis
	DiagErr   string
}

// Frame layout: uint32 LE payload length, uint32 LE CRC32C of the
// payload, then the payload — a self-contained gob stream per record,
// so any record decodes without the ones before it.
const frameHeaderBytes = 8

// maxRecordBytes is a sanity cap on one record's payload: anything
// larger is treated as a torn length prefix, not a real record. It is
// far above any legitimate record (a snapshot is bounded by the
// protocol's upload caps) and far below what a corrupt 4-byte length
// could ask the decoder to chew on.
const maxRecordBytes = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord renders one record as a framed byte slice ready to be
// appended to a segment.
func encodeRecord(rec *Record) ([]byte, error) {
	var payload bytes.Buffer
	payload.Write(make([]byte, frameHeaderBytes)) // header placeholder
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return nil, fmt.Errorf("store: encoding %s record: %w", rec.Type, err)
	}
	frame := payload.Bytes()
	body := frame[frameHeaderBytes:]
	if len(body) > maxRecordBytes {
		return nil, fmt.Errorf("store: %s record payload is %d bytes (cap %d)", rec.Type, len(body), maxRecordBytes)
	}
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
	return frame, nil
}

// ScannedRecord is one decoded record plus the offset just past its
// frame, so callers can map records to byte positions — recovery
// truncates there, and the crash harness cuts there.
type ScannedRecord struct {
	Record *Record
	// End is the offset of the first byte after this record's frame.
	End int
}

// ScanSegment parses the record frames in data, stopping at the first
// torn or corrupt frame: a short header, a length past the buffer or
// the sanity cap, a CRC mismatch, or an undecodable payload. It
// returns every complete record before the bad point and the clean
// length — the offset the segment should be truncated to. A fully
// clean segment returns clean == len(data).
func ScanSegment(data []byte) (recs []ScannedRecord, clean int) {
	off := 0
	for {
		if len(data)-off < frameHeaderBytes {
			return recs, off // torn or absent header
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes || n > len(data)-off-frameHeaderBytes {
			return recs, off // torn payload or garbage length
		}
		body := data[off+frameHeaderBytes : off+frameHeaderBytes+n]
		if crc32.Checksum(body, crcTable) != sum {
			return recs, off // bit rot or a torn interior write
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			// The checksum matched but the payload is not a record —
			// possible only if the corruption happened before the CRC
			// was computed. Same remedy: cut here.
			return recs, off
		}
		off += frameHeaderBytes + n
		recs = append(recs, ScannedRecord{Record: &rec, End: off})
	}
}
