package store

// Checked-in seed corpus for FuzzWALReplay. The files under
// testdata/fuzz/FuzzWALReplay/ run on every plain `go test` (the
// fuzzing engine replays seed corpora even without -fuzz), pinning the
// recovery edge cases — torn headers, torn payloads, flipped bits,
// checksum-valid non-records — as permanent regressions. Because
// record encoding is deterministic, the freshness test catches a
// format change that would silently rot the seeds.
//
// Regenerate after an intentional record format change with:
//
//	go test ./internal/store/ -run TestWALSeedCorpus -regen-corpus

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var regenCorpus = flag.Bool("regen-corpus", false,
	"rewrite the checked-in fuzz seed corpus under testdata/fuzz")

const corpusHeader = "go test fuzz v1"

type walCorpusEntry struct {
	name string
	data []byte
}

// walCorpusEntries builds the canonical seed set: a genuine complete
// lifecycle segment plus every recovery edge the scanner and the
// replay distinguish.
func walCorpusEntries(tb testing.TB) []walCorpusEntry {
	tb.Helper()
	recs := lifecycle(testTenant, 2)
	var clean []byte
	var ends []int
	for _, rec := range recs {
		frame, err := encodeRecord(rec)
		if err != nil {
			tb.Fatal(err)
		}
		clean = append(clean, frame...)
		ends = append(ends, len(clean))
	}
	cut := func(n int) []byte { return append([]byte(nil), clean[:n]...) }
	flipped := cut(len(clean))
	flipped[ends[2]-1] ^= 0xFF // corrupt record 3's payload

	unapplied := func() []byte {
		reg, err := encodeRecord(recs[0])
		if err != nil {
			tb.Fatal(err)
		}
		orphan, err := encodeRecord(&Record{Type: RecTraceAccepted, Tenant: testTenant,
			Case: 42, Client: "agent-0", Seq: 1, Snapshot: testSnap(1)})
		if err != nil {
			tb.Fatal(err)
		}
		return append(reg, orphan...)
	}()

	return []walCorpusEntry{
		{name: "seed-lifecycle", data: clean},
		{name: "seed-truncated-header", data: cut(ends[1] + 3)},
		{name: "seed-truncated-payload", data: cut(ends[3] - 2)},
		{name: "seed-crc-flip", data: flipped},
		{name: "seed-unapplied-suffix", data: unapplied},
		{name: "seed-empty"},
		{name: "seed-garbage", data: []byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3}},
	}
}

func corpusDir() string {
	return filepath.Join("testdata", "fuzz", "FuzzWALReplay")
}

func writeCorpusFile(tb testing.TB, path string, data []byte) {
	tb.Helper()
	body := fmt.Sprintf("%s\n[]byte(%q)\n", corpusHeader, data)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		tb.Fatal(err)
	}
}

// readWALCorpusFile parses one FuzzWALReplay corpus file back into its
// []byte argument.
func readWALCorpusFile(tb testing.TB, path string) []byte {
	tb.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 || lines[0] != corpusHeader {
		tb.Fatalf("%s: not a 1-argument corpus file", path)
	}
	quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
	s, err := strconv.Unquote(quoted)
	if err != nil {
		tb.Fatalf("%s: bad []byte line %q: %v", path, lines[1], err)
	}
	return []byte(s)
}

// TestWALSeedCorpusIsFresh pins the checked-in FuzzWALReplay corpus to
// the canonical entries. Record encoding is deterministic, so a
// mismatch means the on-disk format changed without regenerating the
// corpus (run go test -run TestWALSeedCorpus -regen-corpus) — which
// would silently rot the fuzz seeds and, far worse, silently break
// recovery of logs written by the previous build.
func TestWALSeedCorpusIsFresh(t *testing.T) {
	dir := corpusDir()
	entries := walCorpusEntries(t)
	if *regenCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			writeCorpusFile(t, filepath.Join(dir, e.name), e.data)
		}
	}
	for _, e := range entries {
		data := readWALCorpusFile(t, filepath.Join(dir, e.name))
		if !bytes.Equal(data, e.data) {
			t.Errorf("corpus file %s is stale (run go test -run TestWALSeedCorpus -regen-corpus)", e.name)
		}
	}
}
