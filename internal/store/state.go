package store

import (
	"fmt"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/pt"
)

// State is the fleet state a log replay reconstructs: every registered
// program, every case with its accepted traces in acceptance order,
// every client's dedup ledger, and every published verdict. The WAL
// maintains one internally (the same apply used during recovery runs
// on every append) so snapshots are always self-consistent with the
// log; the proto server rebuilds its in-memory structures from it on
// startup.
type State struct {
	// Programs lists tenants in registration order, which is also
	// replay order — recovery re-registers them in the same sequence a
	// live server did.
	Programs []*ProgramState

	// byTenant indexes Programs; rebuilt after gob decode, which skips
	// unexported fields.
	byTenant map[string]*ProgramState
}

// ProgramState is one tenant's durable state.
type ProgramState struct {
	// Tenant is the module fingerprint, ModuleText the canonical IR
	// text it fingerprints — enough to rebuild the tenant's analysis
	// server from scratch.
	Tenant     string
	ModuleText string
	// NextCase is the highest case number assigned so far.
	NextCase uint64
	Cases    map[uint64]*CaseState
}

// CaseState is one diagnosis case's durable state.
type CaseState struct {
	ID        uint64
	TriggerPC ir.PC
	Want      int
	// Failure and FailSnapshot are the failing trace of record.
	Failure      *core.FailureReport
	FailSnapshot *pt.Snapshot
	// Successes holds the accepted snapshots in acceptance order — the
	// exact diagnosis inputs, in the exact order, of the live run.
	Successes []*pt.Snapshot
	// Clients is the per-client dedup ledger: highest accepted
	// sequence number per uploader.
	Clients map[string]uint64
	// Collecting is true while the directive is armed; Done flips with
	// the case-closed record.
	Collecting bool
	Done       bool
	// Diagnosis or DiagErr carry the published verdict, if the case
	// got that far before the log ended.
	Diagnosis *core.Diagnosis
	DiagErr   string
}

// NewState returns an empty fleet state.
func NewState() *State {
	return &State{byTenant: make(map[string]*ProgramState)}
}

// reindex rebuilds the tenant index after a gob decode.
func (st *State) reindex() {
	st.byTenant = make(map[string]*ProgramState, len(st.Programs))
	for _, p := range st.Programs {
		st.byTenant[p.Tenant] = p
	}
}

// Program returns the tenant's state, or nil.
func (st *State) Program(tenant string) *ProgramState {
	return st.byTenant[tenant]
}

// program and fleetCase resolve a record's target, erroring the way
// apply needs: a record referencing something the log never created
// is corruption, and recovery truncates at it.
func (st *State) program(rec *Record) (*ProgramState, error) {
	p := st.byTenant[rec.Tenant]
	if p == nil {
		return nil, fmt.Errorf("%s record for unregistered tenant %.12q", rec.Type, rec.Tenant)
	}
	return p, nil
}

func (st *State) fleetCase(rec *Record) (*CaseState, error) {
	p, err := st.program(rec)
	if err != nil {
		return nil, err
	}
	c := p.Cases[rec.Case]
	if c == nil {
		return nil, fmt.Errorf("%s record for unopened case %d of tenant %.12q", rec.Type, rec.Case, rec.Tenant)
	}
	return c, nil
}

// apply folds one record into the state. A record that does not apply
// cleanly — unknown type, unknown tenant or case, an out-of-sequence
// case number — is treated exactly like a failed checksum: the log is
// corrupt from here on, and the caller truncates.
func (st *State) apply(rec *Record) error {
	switch rec.Type {
	case RecProgramRegistered:
		if rec.Tenant == "" || rec.ModuleText == "" {
			return fmt.Errorf("%s record missing tenant or module text", rec.Type)
		}
		if st.byTenant[rec.Tenant] != nil {
			return fmt.Errorf("%s record re-registers tenant %.12q", rec.Type, rec.Tenant)
		}
		p := &ProgramState{
			Tenant:     rec.Tenant,
			ModuleText: rec.ModuleText,
			Cases:      make(map[uint64]*CaseState),
		}
		st.Programs = append(st.Programs, p)
		st.byTenant[p.Tenant] = p
	case RecCaseOpened:
		p, err := st.program(rec)
		if err != nil {
			return err
		}
		// Case numbers must be strictly increasing, but need not be
		// contiguous: a sharded deployment namespaces each shard's
		// cases under a per-shard base (ServeConfig.CaseBase), so the
		// first case a shard opens can sit far above zero.
		if rec.Case <= p.NextCase {
			return fmt.Errorf("%s record opens case %d, but case numbers already reached %d", rec.Type, rec.Case, p.NextCase)
		}
		if rec.Want <= 0 {
			return fmt.Errorf("%s record wants %d traces", rec.Type, rec.Want)
		}
		p.NextCase = rec.Case
		p.Cases[rec.Case] = &CaseState{
			ID:           rec.Case,
			TriggerPC:    rec.TriggerPC,
			Want:         rec.Want,
			Failure:      rec.Failure,
			FailSnapshot: rec.Snapshot,
			Clients:      make(map[string]uint64),
			Collecting:   true,
		}
	case RecTraceAccepted:
		c, err := st.fleetCase(rec)
		if err != nil {
			return err
		}
		if rec.Client == "" || rec.Seq == 0 {
			return fmt.Errorf("%s record missing client id or sequence number", rec.Type)
		}
		c.Successes = append(c.Successes, rec.Snapshot)
		if rec.Seq > c.Clients[rec.Client] {
			c.Clients[rec.Client] = rec.Seq
		}
	case RecQuotaReached:
		c, err := st.fleetCase(rec)
		if err != nil {
			return err
		}
		c.Collecting = false
	case RecReportPublished:
		c, err := st.fleetCase(rec)
		if err != nil {
			return err
		}
		if (rec.Diagnosis == nil) == (rec.DiagErr == "") {
			return fmt.Errorf("%s record needs exactly one of diagnosis and error", rec.Type)
		}
		c.Diagnosis = rec.Diagnosis
		c.DiagErr = rec.DiagErr
		c.Collecting = false
	case RecCaseClosed:
		c, err := st.fleetCase(rec)
		if err != nil {
			return err
		}
		c.Done = true
		c.Collecting = false
		// A closed case can never admit another trace, so its dedup
		// ledger is pruned — the live server drops it at publish, and
		// replayed state must land on the same shape.
		c.Clients = nil
	default:
		return fmt.Errorf("unknown record type %d", uint8(rec.Type))
	}
	return nil
}
