package store

import (
	"testing"
)

// benchRecord returns the append workload: one trace-accepted record
// with a realistic snapshot payload, the dominant record type of a
// collecting fleet.
func benchRecord(seq uint64) *Record {
	return &Record{Type: RecTraceAccepted, Tenant: testTenant, Case: 1,
		Client: "agent-0", Seq: seq, Snapshot: testSnap(byte(seq))}
}

// BenchmarkWALAppend measures the append path per sync policy —
// records/s and bytes/s — with snapshots disabled so the numbers are
// pure log cost. SyncAlways pays an fsync per record; SyncInterval and
// SyncNever show what moving durability off the append path buys.
func BenchmarkWALAppend(b *testing.B) {
	frame, err := encodeRecord(benchRecord(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		b.Run(policy.String(), func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{SyncPolicy: policy, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			// Keep the log lifecycle-valid even though validation is off:
			// a register and an open precede the accepts.
			if err := w.Append(&Record{Type: RecProgramRegistered, Tenant: testTenant,
				ModuleText: "module m\n"}); err != nil {
				b.Fatal(err)
			}
			if err := w.Append(&Record{Type: RecCaseOpened, Tenant: testTenant, Case: 1,
				TriggerPC: 7, Want: 1 << 30}); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(frame)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(benchRecord(uint64(i + 1))); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkRecoveryReplay measures cold-start recovery: scanning and
// replaying a multi-thousand-record segment into fleet state, the cost
// a restarted server pays before it can serve.
func BenchmarkRecoveryReplay(b *testing.B) {
	const accepts = 2048
	dir := b.TempDir()
	w, err := Open(dir, Options{SyncPolicy: SyncNever, SnapshotEvery: -1, SegmentBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Append(&Record{Type: RecProgramRegistered, Tenant: testTenant,
		ModuleText: "module m\n"}); err != nil {
		b.Fatal(err)
	}
	if err := w.Append(&Record{Type: RecCaseOpened, Tenant: testTenant, Case: 1,
		TriggerPC: 7, Want: accepts}); err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= accepts; i++ {
		if err := w.Append(benchRecord(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	records := accepts + 2

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := Open(dir, Options{SyncPolicy: SyncNever, SnapshotEvery: -1, SegmentBytes: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		if got := w.Stats().LastLSN; got != uint64(records) {
			b.Fatalf("recovered LSN %d, want %d", got, records)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
