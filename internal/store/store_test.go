package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/obs"
	"snorlax/internal/pt"
)

const testTenant = "deadbeefcafe0123"

func testSnap(b byte) *pt.Snapshot {
	return &pt.Snapshot{
		Threads: map[int]pt.SnapshotThread{0: {Data: []byte{b, b, b}}},
		Time:    int64(b),
	}
}

// lifecycle builds one complete fleet case's record sequence: register,
// open, accepts successes, quota, publish (an error verdict keeps the
// record small and gob-deterministic), close.
func lifecycle(tenant string, accepts int) []*Record {
	recs := []*Record{
		{Type: RecProgramRegistered, Tenant: tenant, ModuleText: "module m\n"},
		{Type: RecCaseOpened, Tenant: tenant, Case: 1, TriggerPC: 7, Want: accepts,
			Failure: &core.FailureReport{PC: 7, Tid: 1, Msg: "boom"}, Snapshot: testSnap(0xF0)},
	}
	for i := 1; i <= accepts; i++ {
		recs = append(recs, &Record{Type: RecTraceAccepted, Tenant: tenant, Case: 1,
			Client: "agent-0", Seq: uint64(i), Snapshot: testSnap(byte(i))})
	}
	recs = append(recs,
		&Record{Type: RecQuotaReached, Tenant: tenant, Case: 1},
		&Record{Type: RecReportPublished, Tenant: tenant, Case: 1, DiagErr: "no verdict"},
		&Record{Type: RecCaseClosed, Tenant: tenant, Case: 1})
	return recs
}

// describeState renders a State into a canonical text so two states can
// be compared across gob roundtrips (where nil-vs-empty map details
// would trip reflect.DeepEqual).
func describeState(st *State) string {
	var b strings.Builder
	for _, p := range st.Programs {
		fmt.Fprintf(&b, "program %s module %q nextcase %d\n", p.Tenant, p.ModuleText, p.NextCase)
		ids := make([]uint64, 0, len(p.Cases))
		for id := range p.Cases {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			c := p.Cases[id]
			fmt.Fprintf(&b, " case %d trigger %d want %d collecting %v done %v diagErr %q hasDiag %v\n",
				c.ID, c.TriggerPC, c.Want, c.Collecting, c.Done, c.DiagErr, c.Diagnosis != nil)
			for i, s := range c.Successes {
				if s == nil {
					fmt.Fprintf(&b, "  succ %d nil\n", i)
					continue
				}
				fmt.Fprintf(&b, "  succ %d time %d data %x\n", i, s.Time, s.Threads[0].Data)
			}
			clients := make([]string, 0, len(c.Clients))
			for cl := range c.Clients {
				clients = append(clients, cl)
			}
			sort.Strings(clients)
			for _, cl := range clients {
				fmt.Fprintf(&b, "  client %s seq %d\n", cl, c.Clients[cl])
			}
		}
	}
	return b.String()
}

// replayState applies recs to a fresh state, failing the test on any
// apply error — the expected-state side of recovery assertions.
func replayState(t *testing.T, recs []*Record) *State {
	t.Helper()
	st := NewState()
	for i, rec := range recs {
		if err := st.apply(rec); err != nil {
			t.Fatalf("record %d (%s) does not apply: %v", i, rec.Type, err)
		}
	}
	return st
}

func openWAL(t *testing.T, dir string, opts Options) *WAL {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func appendAll(t *testing.T, w *WAL, recs []*Record) {
	t.Helper()
	for i, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatalf("appending record %d (%s): %v", i, rec.Type, err)
		}
	}
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, first, segSuffix)
}

func encodeAll(t *testing.T, recs []*Record) []byte {
	t.Helper()
	var data []byte
	for _, rec := range recs {
		frame, err := encodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, frame...)
	}
	return data
}

func TestRecordRoundTrip(t *testing.T) {
	recs := lifecycle(testTenant, 3)
	data := encodeAll(t, recs)
	scanned, clean := ScanSegment(data)
	if clean != len(data) {
		t.Fatalf("clean segment scanned to %d of %d bytes", clean, len(data))
	}
	if len(scanned) != len(recs) {
		t.Fatalf("scanned %d records, wrote %d", len(scanned), len(recs))
	}
	for i, sr := range scanned {
		want := recs[i]
		got := sr.Record
		if got.Type != want.Type || got.Tenant != want.Tenant || got.Case != want.Case ||
			got.Client != want.Client || got.Seq != want.Seq || got.DiagErr != want.DiagErr {
			t.Errorf("record %d decoded as %+v, want %+v", i, got, want)
		}
		if want.Snapshot != nil {
			if got.Snapshot == nil || got.Snapshot.Time != want.Snapshot.Time {
				t.Errorf("record %d lost its snapshot", i)
			}
		}
		if i > 0 && sr.End <= scanned[i-1].End {
			t.Errorf("record %d End %d does not advance past %d", i, sr.End, scanned[i-1].End)
		}
	}
	if scanned[len(scanned)-1].End != len(data) {
		t.Errorf("last record ends at %d, want %d", scanned[len(scanned)-1].End, len(data))
	}

	// Replaying the scan reconstructs the same state as applying the
	// original records.
	st := NewState()
	for _, sr := range scanned {
		if err := st.apply(sr.Record); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := describeState(st), describeState(replayState(t, recs)); got != want {
		t.Errorf("scanned state:\n%s\nwant:\n%s", got, want)
	}
}

func TestScanSegmentStopsAtCorruption(t *testing.T) {
	recs := lifecycle(testTenant, 2)
	data := encodeAll(t, recs)
	scanned, _ := ScanSegment(data)
	twoEnd := scanned[1].End

	corrupt := func(mut func([]byte) []byte) (int, int) {
		buf := mut(append([]byte(nil), data...))
		recs, clean := ScanSegment(buf)
		return len(recs), clean
	}

	t.Run("torn header", func(t *testing.T) {
		n, clean := corrupt(func(b []byte) []byte { return b[:twoEnd+3] })
		if n != 2 || clean != twoEnd {
			t.Errorf("scan = %d records, clean %d; want 2, %d", n, clean, twoEnd)
		}
	})
	t.Run("torn payload", func(t *testing.T) {
		n, clean := corrupt(func(b []byte) []byte { return b[:scanned[2].End-2] })
		if n != 2 || clean != twoEnd {
			t.Errorf("scan = %d records, clean %d; want 2, %d", n, clean, twoEnd)
		}
	})
	t.Run("garbage length", func(t *testing.T) {
		n, clean := corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[twoEnd:twoEnd+4], 0xFFFFFFFF)
			return b
		})
		if n != 2 || clean != twoEnd {
			t.Errorf("scan = %d records, clean %d; want 2, %d", n, clean, twoEnd)
		}
	})
	t.Run("crc flip", func(t *testing.T) {
		n, clean := corrupt(func(b []byte) []byte {
			b[scanned[2].End-1] ^= 0xFF // last payload byte of record 3
			return b
		})
		if n != 2 || clean != twoEnd {
			t.Errorf("scan = %d records, clean %d; want 2, %d", n, clean, twoEnd)
		}
	})
	t.Run("valid crc, not a record", func(t *testing.T) {
		// A frame whose checksum matches garbage that gob cannot decode.
		body := []byte{0x01, 0x02, 0x03, 0x04}
		frame := make([]byte, frameHeaderBytes+len(body))
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
		copy(frame[frameHeaderBytes:], body)
		buf := append(append([]byte(nil), data[:twoEnd]...), frame...)
		recs, clean := ScanSegment(buf)
		if len(recs) != 2 || clean != twoEnd {
			t.Errorf("scan = %d records, clean %d; want 2, %d", len(recs), clean, twoEnd)
		}
	})
	t.Run("empty", func(t *testing.T) {
		recs, clean := ScanSegment(nil)
		if len(recs) != 0 || clean != 0 {
			t.Errorf("scan(nil) = %d records, clean %d", len(recs), clean)
		}
	})
}

func TestWALAppendCloseReopen(t *testing.T) {
	dir := t.TempDir()
	recs := lifecycle(testTenant, 3)

	w := openWAL(t, dir, Options{})
	appendAll(t, w, recs)
	if got := w.Stats().LastLSN; got != uint64(len(recs)) {
		t.Errorf("LastLSN = %d after %d appends", got, len(recs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, dir, Options{})
	if got, want := describeState(w2.RecoveredState()), describeState(replayState(t, recs)); got != want {
		t.Errorf("recovered state:\n%s\nwant:\n%s", got, want)
	}
	st := w2.Stats()
	if st.LastLSN != uint64(len(recs)) {
		t.Errorf("reopened LastLSN = %d, want %d", st.LastLSN, len(recs))
	}
	if st.TruncatedRecoveries != 0 {
		t.Errorf("clean reopen counted %d truncated recoveries", st.TruncatedRecoveries)
	}
	// New appends continue the LSN sequence in a fresh segment.
	if err := w2.Append(&Record{Type: RecCaseOpened, Tenant: testTenant, Case: 2, TriggerPC: 9,
		Want: 1, Failure: &core.FailureReport{PC: 9}}); err != nil {
		t.Fatal(err)
	}
	if got := w2.Stats().LastLSN; got != uint64(len(recs))+1 {
		t.Errorf("LastLSN after post-reopen append = %d, want %d", got, len(recs)+1)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(uint64(len(recs))+1))); err != nil {
		t.Errorf("reopen did not start a fresh segment at LSN %d: %v", len(recs)+1, err)
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	recs := lifecycle(testTenant, 2)
	w := openWAL(t, dir, Options{})
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: garbage at the tail of the (empty) active
	// segment the next incarnation would have appended to.
	tail := filepath.Join(dir, segName(uint64(len(recs))+1))
	if err := os.WriteFile(tail, []byte("torn-half-record"), 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, dir, Options{})
	st := w2.Stats()
	if st.TruncatedRecoveries != 1 {
		t.Errorf("TruncatedRecoveries = %d, want 1", st.TruncatedRecoveries)
	}
	if st.LastLSN != uint64(len(recs)) {
		t.Errorf("LastLSN = %d, want %d (torn tail must not consume LSNs)", st.LastLSN, len(recs))
	}
	if got, want := describeState(w2.RecoveredState()), describeState(replayState(t, recs)); got != want {
		t.Errorf("recovered state diverged after torn-tail truncation:\n%s\nwant:\n%s", got, want)
	}
	if info, err := os.Stat(tail); err == nil && info.Size() != 0 {
		t.Errorf("torn tail not truncated: %d bytes remain", info.Size())
	}
}

func TestCorruptRecordDropsEverythingAfter(t *testing.T) {
	dir := t.TempDir()
	recs := lifecycle(testTenant, 2) // 7 records
	// One record per segment: SegmentBytes 1 rotates after every append.
	w := openWAL(t, dir, Options{SegmentBytes: 1, SnapshotEvery: -1})
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in record 4's segment. Recovery must keep records
	// 1..3, truncate segment 4, and drop segments 5..8 — they are past
	// the corruption and cannot be trusted.
	seg4 := filepath.Join(dir, segName(4))
	data, err := os.ReadFile(seg4)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg4, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, dir, Options{SegmentBytes: 1, SnapshotEvery: -1})
	st := w2.Stats()
	if st.TruncatedRecoveries != 1 {
		t.Errorf("TruncatedRecoveries = %d, want 1", st.TruncatedRecoveries)
	}
	if st.LastLSN != 3 {
		t.Errorf("LastLSN = %d, want 3", st.LastLSN)
	}
	if got, want := describeState(w2.RecoveredState()), describeState(replayState(t, recs[:3])); got != want {
		t.Errorf("recovered state:\n%s\nwant (first 3 records):\n%s", got, want)
	}
	for lsn := uint64(5); lsn <= 8; lsn++ {
		if _, err := os.Stat(filepath.Join(dir, segName(lsn))); !os.IsNotExist(err) {
			t.Errorf("segment %d survived a truncating recovery (err=%v)", lsn, err)
		}
	}
}

func TestSegmentGapDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	recs := lifecycle(testTenant, 2)
	w := openWAL(t, dir, Options{SegmentBytes: 1, SnapshotEvery: -1})
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segName(4))); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, dir, Options{SegmentBytes: 1, SnapshotEvery: -1})
	st := w2.Stats()
	if st.LastLSN != 3 {
		t.Errorf("LastLSN = %d, want 3 (replay must stop at the gap)", st.LastLSN)
	}
	if st.TruncatedRecoveries != 1 {
		t.Errorf("TruncatedRecoveries = %d, want 1", st.TruncatedRecoveries)
	}
	if got, want := describeState(w2.RecoveredState()), describeState(replayState(t, recs[:3])); got != want {
		t.Errorf("recovered state:\n%s\nwant (first 3 records):\n%s", got, want)
	}
	for lsn := uint64(5); lsn <= 8; lsn++ {
		if _, err := os.Stat(filepath.Join(dir, segName(lsn))); !os.IsNotExist(err) {
			t.Errorf("segment %d survived past the gap (err=%v)", lsn, err)
		}
	}
}

func TestUnreplayableRecordTruncates(t *testing.T) {
	// A record with a valid checksum that references a case the log
	// never opened is corruption too: recovery cuts there.
	dir := t.TempDir()
	good := &Record{Type: RecProgramRegistered, Tenant: testTenant, ModuleText: "module m\n"}
	bad := &Record{Type: RecTraceAccepted, Tenant: testTenant, Case: 42,
		Client: "agent-0", Seq: 1, Snapshot: testSnap(1)}
	data := encodeAll(t, []*Record{good, bad})
	goodFrame, err := encodeRecord(good)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(1))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w := openWAL(t, dir, Options{})
	st := w.Stats()
	if st.LastLSN != 1 {
		t.Errorf("LastLSN = %d, want 1", st.LastLSN)
	}
	if st.TruncatedRecoveries != 1 {
		t.Errorf("TruncatedRecoveries = %d, want 1", st.TruncatedRecoveries)
	}
	if p := w.RecoveredState().Program(testTenant); p == nil || len(p.Cases) != 0 {
		t.Errorf("recovered program state = %+v, want registered tenant with no cases", p)
	}
	if info, err := os.Stat(path); err != nil || info.Size() != int64(len(goodFrame)) {
		t.Errorf("segment truncated to %v bytes, want %d", info.Size(), len(goodFrame))
	}
}

func TestSnapshotCompactionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	recs := lifecycle(testTenant, 4) // 9 records; snapshots land at LSN 3, 6, 9
	w := openWAL(t, dir, Options{SnapshotEvery: 3})
	appendAll(t, w, recs)
	st := w.Stats()
	if st.Snapshots != 3 {
		t.Errorf("Snapshots = %d, want 3", st.Snapshots)
	}
	if st.Compactions == 0 {
		t.Error("no compaction pass ran")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Compaction keeps only the newest snapshot and the segments past
	// it: the active (empty) segment at LSN 10.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	want := []string{
		segName(10),
		fmt.Sprintf("%s%016d%s", snapPrefix, 9, snapSuffix),
	}
	sort.Strings(want)
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("dir after compaction = %v, want %v", names, want)
	}

	// Recovery restores the exact state from the snapshot alone.
	w2 := openWAL(t, dir, Options{SnapshotEvery: 3})
	if got, wantSt := describeState(w2.RecoveredState()), describeState(replayState(t, recs)); got != wantSt {
		t.Errorf("snapshot-recovered state:\n%s\nwant:\n%s", got, wantSt)
	}
	if got := w2.Stats().LastLSN; got != 9 {
		t.Errorf("LastLSN = %d, want 9", got)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// A garbage snapshot that sorts newer must fall back to the last
	// readable one, not poison recovery.
	junk := filepath.Join(dir, fmt.Sprintf("%s%016d%s", snapPrefix, 99, snapSuffix))
	if err := os.WriteFile(junk, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	w3 := openWAL(t, dir, Options{SnapshotEvery: 3})
	if got, wantSt := describeState(w3.RecoveredState()), describeState(replayState(t, recs)); got != wantSt {
		t.Errorf("state after garbage-snapshot fallback:\n%s\nwant:\n%s", got, wantSt)
	}
	if got := w3.Stats().LastLSN; got != 9 {
		t.Errorf("LastLSN after fallback = %d, want 9", got)
	}
}

func TestCorruptSnapshotFallsBackToFullReplay(t *testing.T) {
	dir := t.TempDir()
	recs := lifecycle(testTenant, 2)
	w := openWAL(t, dir, Options{SnapshotEvery: -1}) // keep every segment
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(dir, fmt.Sprintf("%s%016d%s", snapPrefix, 7, snapSuffix))
	if err := os.WriteFile(junk, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, dir, Options{SnapshotEvery: -1})
	if got, want := describeState(w2.RecoveredState()), describeState(replayState(t, recs)); got != want {
		t.Errorf("full-replay fallback state:\n%s\nwant:\n%s", got, want)
	}
	if got := w2.Stats().LastLSN; got != uint64(len(recs)) {
		t.Errorf("LastLSN = %d, want %d", got, len(recs))
	}
}

func TestSyncPolicyParseAndString(t *testing.T) {
	for _, p := range []SyncPolicy{SyncInterval, SyncAlways, SyncNever} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted an unknown policy")
	}
}

func TestSyncAlwaysFsyncsEveryAppend(t *testing.T) {
	w := openWAL(t, t.TempDir(), Options{SyncPolicy: SyncAlways})
	recs := lifecycle(testTenant, 1)
	before := w.Stats().Fsyncs
	for i, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		after := w.Stats().Fsyncs
		if after <= before {
			t.Fatalf("append %d did not fsync (count %d -> %d)", i, before, after)
		}
		before = after
	}
}

func TestSyncNeverKeepsAppendsOffTheFsyncPath(t *testing.T) {
	w := openWAL(t, t.TempDir(), Options{SyncPolicy: SyncNever, SnapshotEvery: -1})
	before := w.Stats().Fsyncs
	appendAll(t, w, lifecycle(testTenant, 3))
	if after := w.Stats().Fsyncs; after != before {
		t.Errorf("SyncNever appends issued %d fsyncs", after-before)
	}
	// Flush still forces durability on demand.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if after := w.Stats().Fsyncs; after != before+1 {
		t.Errorf("Flush issued %d fsyncs, want 1", after-before)
	}
}

func TestSyncIntervalFlushesInBackground(t *testing.T) {
	w := openWAL(t, t.TempDir(), Options{SyncPolicy: SyncInterval, SyncInterval: 2 * time.Millisecond})
	before := w.Stats().Fsyncs
	appendAll(t, w, lifecycle(testTenant, 1))
	deadline := time.Now().Add(5 * time.Second)
	for w.Stats().Fsyncs == before {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never fsynced the appended records")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	w := openWAL(t, t.TempDir(), Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	err := w.Append(&Record{Type: RecProgramRegistered, Tenant: testTenant, ModuleText: "module m\n"})
	if err != errClosed {
		t.Errorf("Append after Close = %v, want %v", err, errClosed)
	}
}

func TestAppendRejectsUnreplayableRecord(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, Options{})
	err := w.Append(&Record{Type: RecTraceAccepted, Tenant: "nobody", Case: 1,
		Client: "agent-0", Seq: 1, Snapshot: testSnap(1)})
	if err == nil {
		t.Fatal("WAL accepted a record its own replay would reject")
	}
	st := w.Stats()
	if st.AppendedRecords != 0 || st.LastLSN != 0 {
		t.Errorf("rejected record still counted: %+v", st)
	}
	if info, err := os.Stat(filepath.Join(dir, segName(1))); err != nil || info.Size() != 0 {
		t.Errorf("rejected record reached disk: %v bytes", info.Size())
	}
	// The WAL is not poisoned: a valid record still appends.
	if err := w.Append(&Record{Type: RecProgramRegistered, Tenant: testTenant, ModuleText: "module m\n"}); err != nil {
		t.Errorf("valid append after a rejection failed: %v", err)
	}
}

func TestStatsMatchSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	w := openWAL(t, t.TempDir(), Options{Registry: reg, SnapshotEvery: 3})
	appendAll(t, w, lifecycle(testTenant, 4))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	counters := map[string]uint64{
		MetricStoreAppendedRecords:     st.AppendedRecords,
		MetricStoreAppendedBytes:       st.AppendedBytes,
		MetricStoreFsyncs:              st.Fsyncs,
		MetricStoreSnapshots:           st.Snapshots,
		MetricStoreCompactions:         st.Compactions,
		MetricStoreTruncatedRecoveries: st.TruncatedRecoveries,
	}
	for name, want := range counters {
		m := reg.Find(name)
		if m == nil || m.Counter == nil {
			t.Errorf("metric %s missing from the shared registry", name)
			continue
		}
		if got := m.Counter.Value(); got != want {
			t.Errorf("%s = %d, Stats says %d", name, got, want)
		}
	}
	gauges := map[string]int64{
		MetricStoreSegments: st.Segments,
		MetricStoreLastLSN:  int64(st.LastLSN),
	}
	for name, want := range gauges {
		m := reg.Find(name)
		if m == nil || m.Gauge == nil {
			t.Errorf("metric %s missing from the shared registry", name)
			continue
		}
		if got := m.Gauge.Value(); got != want {
			t.Errorf("%s = %d, Stats says %d", name, got, want)
		}
	}
	if m := reg.Find(MetricStoreRecordBytes); m == nil || m.Histogram == nil {
		t.Errorf("histogram %s missing from the shared registry", MetricStoreRecordBytes)
	} else if got := m.Histogram.Count(); got != st.AppendedRecords {
		t.Errorf("%s count = %d, want %d observations", MetricStoreRecordBytes, got, st.AppendedRecords)
	}
}
