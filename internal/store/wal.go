package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"snorlax/internal/obs"
)

// Store is what the fleet server logs state transitions to. A nil
// Store means in-memory operation — exactly the pre-durability
// behaviour. *WAL is the one real implementation; tests substitute
// fakes to exercise failure paths.
type Store interface {
	// Append logs one record. The record must be durable (to the
	// configured sync policy's standard) before the state transition
	// it describes is acknowledged to a client.
	Append(rec *Record) error
	// Flush forces buffered records to disk with an fsync, regardless
	// of the sync policy.
	Flush() error
	// Close flushes, fsyncs and releases the store. Append after
	// Close fails.
	Close() error
	// Stats reports the store's operational counters.
	Stats() Stats
	// Err reports the store's sticky error: the first append or flush
	// failure, after which the store can no longer promise log order
	// equals state order. Readiness probes surface it without forcing
	// a flush.
	Err() error
}

// SyncPolicy selects when appended records are fsynced. The zero
// value is SyncInterval: a background flusher syncs every
// Options.SyncInterval, bounding loss to that window while keeping
// appends off the fsync path — the right trade for a collection that
// is idempotent end-to-end (a lost tail is simply re-uploaded and
// re-deduplicated by the clients' retry loops).
type SyncPolicy int

const (
	// SyncInterval syncs from a background flusher (default 50ms).
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs every append before it returns.
	SyncAlways
	// SyncNever leaves syncing to the OS (and to Flush/Close).
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("sync-policy-%d", int(p))
}

// ParseSyncPolicy parses "always", "interval" or "never" (the CLI's
// -sync flag values).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown sync policy %q (want always, interval or never)", s)
}

// Options tunes a WAL. The zero value is production-ready: interval
// syncing every 50ms, 4 MB segments, a snapshot every 1024 records,
// metrics on a private registry.
type Options struct {
	SyncPolicy SyncPolicy
	// SyncInterval is the background flush period under SyncInterval;
	// 0 means 50ms.
	SyncInterval time.Duration
	// SegmentBytes is the size past which the active segment is
	// rotated; 0 means 4 MB.
	SegmentBytes int64
	// SnapshotEvery is how many appended records trigger a state
	// snapshot plus compaction of the segments it covers; 0 means
	// 1024, negative disables snapshots (replay then always starts
	// from the oldest retained segment, and the WAL stops maintaining
	// its state mirror after Open — benchmarks use this to measure
	// pure append cost).
	SnapshotEvery int
	// Registry receives the store's metrics; nil uses a private
	// registry. The fleet server passes its shared registry so store
	// counters scrape alongside everything else on /metrics.
	Registry *obs.Registry
}

func (o Options) syncInterval() time.Duration {
	if o.SyncInterval <= 0 {
		return 50 * time.Millisecond
	}
	return o.SyncInterval
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 4 << 20
	}
	return o.SegmentBytes
}

func (o Options) snapshotEvery() int {
	switch {
	case o.SnapshotEvery < 0:
		return 0 // disabled
	case o.SnapshotEvery == 0:
		return 1024
	}
	return o.SnapshotEvery
}

// Stats is a point-in-time view of the store's counters — the same
// numbers the registry exposes on /metrics.
type Stats struct {
	// AppendedRecords and AppendedBytes count what was written since
	// the store's metrics were created (cumulative across reopens when
	// the registry is shared).
	AppendedRecords uint64
	AppendedBytes   uint64
	// Fsyncs counts every fsync issued: per-append under SyncAlways,
	// periodic under SyncInterval, plus rotations, snapshots and
	// directory syncs.
	Fsyncs uint64
	// Snapshots and Compactions count state snapshots written and
	// compaction passes that deleted covered segments.
	Snapshots   uint64
	Compactions uint64
	// TruncatedRecoveries counts recoveries that found a torn or
	// corrupt tail and truncated the log at the first bad record.
	TruncatedRecoveries uint64
	// Segments is the number of on-disk WAL segment files right now.
	Segments int64
	// LastLSN is the sequence number of the newest logged record.
	LastLSN uint64
}

// Store metric names (see Stats for semantics).
const (
	MetricStoreAppendedRecords     = "snorlax_store_appended_records_total"
	MetricStoreAppendedBytes       = "snorlax_store_appended_bytes_total"
	MetricStoreFsyncs              = "snorlax_store_fsyncs_total"
	MetricStoreSnapshots           = "snorlax_store_snapshots_total"
	MetricStoreCompactions         = "snorlax_store_compactions_total"
	MetricStoreTruncatedRecoveries = "snorlax_store_truncated_recoveries_total"
	MetricStoreSegments            = "snorlax_store_segments"
	MetricStoreLastLSN             = "snorlax_store_last_lsn"
	MetricStoreRecordBytes         = "snorlax_store_record_bytes"
)

type storeMetrics struct {
	appendedRecords     *obs.Counter
	appendedBytes       *obs.Counter
	fsyncs              *obs.Counter
	snapshots           *obs.Counter
	compactions         *obs.Counter
	truncatedRecoveries *obs.Counter
	segments            *obs.Gauge
	lastLSN             *obs.Gauge
	recordBytes         *obs.Histogram
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &storeMetrics{
		appendedRecords: reg.Counter(MetricStoreAppendedRecords,
			"WAL records appended."),
		appendedBytes: reg.Counter(MetricStoreAppendedBytes,
			"WAL bytes appended (framed records)."),
		fsyncs: reg.Counter(MetricStoreFsyncs,
			"fsync calls issued by the store (segments, snapshots, directory)."),
		snapshots: reg.Counter(MetricStoreSnapshots,
			"State snapshots written."),
		compactions: reg.Counter(MetricStoreCompactions,
			"Compaction passes that deleted snapshot-covered segments."),
		truncatedRecoveries: reg.Counter(MetricStoreTruncatedRecoveries,
			"Recoveries that truncated a torn or corrupt WAL tail."),
		segments: reg.Gauge(MetricStoreSegments,
			"On-disk WAL segment files."),
		lastLSN: reg.Gauge(MetricStoreLastLSN,
			"Sequence number of the newest logged record."),
		recordBytes: reg.Histogram(MetricStoreRecordBytes,
			"Framed size of appended WAL records, in bytes.", obs.DefByteBuckets),
	}
}

// WAL is the append-only segmented log behind the fleet server's
// durability. All methods are safe for concurrent use; the fleet
// server calls Append under its own state lock, which is what makes
// log order equal state-transition order — the invariant replay
// depends on.
type WAL struct {
	dir  string
	opts Options
	m    *storeMetrics

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	segStart  uint64 // first LSN the active segment can hold
	segBytes  int64
	lsn       uint64 // newest logged record
	state     *State // mirror of the log, kept for snapshots
	sinceSnap int
	dirty     bool // buffered or un-fsynced bytes exist
	err       error
	closed    bool

	stop     chan struct{}
	stopOnce sync.Once
	flusher  sync.WaitGroup
}

// Segment and snapshot file names carry the first LSN they hold
// (segments) or the last LSN they cover (snapshots), zero-padded so
// lexical order is LSN order.
const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "state-"
	snapSuffix = ".snap"
)

func (w *WAL) segPath(first uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%016d%s", segPrefix, first, segSuffix))
}

func (w *WAL) snapPath(last uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%016d%s", snapPrefix, last, snapSuffix))
}

func parseLSN(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listFiles returns the LSNs embedded in the directory's segment (or
// snapshot) file names, ascending.
func (w *WAL) listFiles(prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		if n, ok := parseLSN(e.Name(), prefix, suffix); ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Open opens (creating if needed) the WAL in dir, replays it, and
// starts a fresh segment for new appends. Recovery loads the newest
// readable snapshot, replays the segments past it, and truncates at
// the first torn or corrupt record — everything after a bad record
// was never acknowledged, so dropping it is safe; the truncation is
// counted in the truncated-recoveries metric.
func Open(dir string, opts Options) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, m: newStoreMetrics(opts.Registry), state: NewState()}
	if err := w.recover(); err != nil {
		return nil, fmt.Errorf("store: recovering %s: %w", dir, err)
	}
	if err := w.startSegment(w.lsn + 1); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w.m.lastLSN.Set(int64(w.lsn))
	if w.opts.SyncPolicy == SyncInterval {
		w.stop = make(chan struct{})
		w.flusher.Add(1)
		go w.flushLoop()
	}
	return w, nil
}

// snapshotFile is the on-disk snapshot payload: the replayed state as
// of LSN, framed and checksummed like a record.
type snapshotFile struct {
	LSN   uint64
	State *State
}

func encodeFramed(v any) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHeaderBytes))
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	frame := buf.Bytes()
	body := frame[frameHeaderBytes:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
	return frame, nil
}

func loadSnapshot(path string) (*snapshotFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < frameHeaderBytes {
		return nil, errors.New("snapshot too short")
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	sum := binary.LittleEndian.Uint32(data[4:8])
	body := data[frameHeaderBytes:]
	if n != len(body) {
		return nil, errors.New("snapshot length mismatch")
	}
	if crc32.Checksum(body, crcTable) != sum {
		return nil, errors.New("snapshot checksum mismatch")
	}
	var sf snapshotFile
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&sf); err != nil {
		return nil, err
	}
	if sf.State == nil {
		sf.State = NewState()
	}
	sf.State.reindex()
	return &sf, nil
}

func (w *WAL) recover() error {
	snaps, err := w.listFiles(snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	// Newest readable snapshot wins; a corrupt one falls back to the
	// one before it, and ultimately to a full replay from LSN 1.
	for i := len(snaps) - 1; i >= 0; i-- {
		sf, err := loadSnapshot(w.snapPath(snaps[i]))
		if err != nil {
			continue
		}
		w.state, w.lsn = sf.State, sf.LSN
		break
	}
	segs, err := w.listFiles(segPrefix, segSuffix)
	if err != nil {
		return err
	}
	truncated := false
	for idx, first := range segs {
		if first > w.lsn+1 {
			// A gap: the segment holding the next LSN is missing, so
			// nothing after it can be trusted either.
			truncated = true
			for _, later := range segs[idx:] {
				if err := os.Remove(w.segPath(later)); err != nil {
					return err
				}
			}
			break
		}
		path := w.segPath(first)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		recs, clean := ScanSegment(data)
		// Records at or below the recovery point are already covered
		// by the snapshot; the rest replay through the same apply that
		// built the state live. A record that does not apply is
		// corruption with a valid checksum — cut there too.
		bad := -1
		for i, sr := range recs {
			lsn := first + uint64(i)
			if lsn <= w.lsn {
				continue
			}
			if err := w.state.apply(sr.Record); err != nil {
				bad = i
				break
			}
			w.lsn = lsn
		}
		if bad >= 0 {
			clean = 0
			if bad > 0 {
				clean = recs[bad-1].End
			}
		}
		if clean < len(data) {
			truncated = true
			if err := os.Truncate(path, int64(clean)); err != nil {
				return err
			}
			for _, later := range segs[idx+1:] {
				if err := os.Remove(w.segPath(later)); err != nil {
					return err
				}
			}
			break
		}
	}
	if truncated {
		w.m.truncatedRecoveries.Inc()
		if err := w.syncDir(); err != nil {
			return err
		}
	}
	return nil
}

// RecoveredState returns the fleet state replayed at Open — what the
// server's Restore rebuilds its in-memory structures from. The WAL
// keeps folding appended records into the same state (while snapshots
// are enabled), so callers must consume it before appending.
func (w *WAL) RecoveredState() *State {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

func (w *WAL) syncDir() error {
	d, err := os.Open(w.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return err
	}
	w.m.fsyncs.Inc()
	return nil
}

func (w *WAL) countSegments() {
	if segs, err := w.listFiles(segPrefix, segSuffix); err == nil {
		w.m.segments.Set(int64(len(segs)))
	}
}

func (w *WAL) startSegment(first uint64) error {
	f, err := os.OpenFile(w.segPath(first), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w.f, w.w, w.segStart, w.segBytes = f, bufio.NewWriterSize(f, 1<<16), first, info.Size()
	if err := w.syncDir(); err != nil {
		return err
	}
	w.countSegments()
	return nil
}

// fail records the first I/O error permanently: a store that failed
// mid-write can no longer promise log order equals state order, so
// every later operation reports the original failure.
func (w *WAL) fail(err error) {
	if w.err == nil {
		w.err = fmt.Errorf("store: %w", err)
	}
}

var errClosed = errors.New("store: WAL is closed")

// Err reports the sticky error, nil while the store is healthy. A
// poisoned store keeps serving reads but rejects every append, so a
// readiness probe that checks Err can pull the shard out of rotation
// before clients burn retries on it.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Append logs one record, applying the configured sync policy. The
// record is validated against the WAL's state mirror first (while
// snapshots are enabled), so a record the log could not replay is
// rejected before it hits disk.
func (w *WAL) Append(rec *Record) error {
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errClosed
	}
	if w.err != nil {
		return w.err
	}
	if w.opts.snapshotEvery() > 0 {
		if err := w.state.apply(rec); err != nil {
			return fmt.Errorf("store: record would not replay: %w", err)
		}
	}
	if _, err := w.w.Write(frame); err != nil {
		w.fail(err)
		return w.err
	}
	w.lsn++
	w.segBytes += int64(len(frame))
	w.sinceSnap++
	w.dirty = true
	w.m.appendedRecords.Inc()
	w.m.appendedBytes.Add(uint64(len(frame)))
	w.m.recordBytes.Observe(float64(len(frame)))
	w.m.lastLSN.Set(int64(w.lsn))
	if w.opts.SyncPolicy == SyncAlways {
		if err := w.flushLocked(true); err != nil {
			return err
		}
	}
	if w.segBytes >= w.opts.segmentBytes() {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if n := w.opts.snapshotEvery(); n > 0 && w.sinceSnap >= n {
		if err := w.snapshotLocked(); err != nil {
			return err
		}
	}
	return nil
}

// flushLocked drains the buffered writer and, when sync is set,
// fsyncs the active segment.
func (w *WAL) flushLocked(sync bool) error {
	if err := w.w.Flush(); err != nil {
		w.fail(err)
		return w.err
	}
	if sync && w.dirty {
		if err := w.f.Sync(); err != nil {
			w.fail(err)
			return w.err
		}
		w.m.fsyncs.Inc()
	}
	if sync {
		w.dirty = false
	}
	return nil
}

func (w *WAL) rotateLocked() error {
	// SyncNever promises no fsyncs on the append path, but a segment
	// is sealed exactly once — syncing it here costs one call per
	// rotation and spares recovery a guaranteed-truncated tail.
	if err := w.flushLocked(true); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		w.fail(err)
		return w.err
	}
	if err := w.startSegment(w.lsn + 1); err != nil {
		w.fail(err)
		return w.err
	}
	return nil
}

// snapshotLocked rotates (so the snapshot lands on a segment
// boundary), writes the state mirror atomically, and compacts away
// every segment the snapshot covers plus all older snapshots.
func (w *WAL) snapshotLocked() error {
	if err := w.rotateLocked(); err != nil {
		return err
	}
	frame, err := encodeFramed(&snapshotFile{LSN: w.lsn, State: w.state})
	if err != nil {
		w.fail(err)
		return w.err
	}
	final := w.snapPath(w.lsn)
	tmp := final + ".tmp"
	if err := w.writeFileSynced(tmp, frame); err != nil {
		w.fail(err)
		return w.err
	}
	if err := os.Rename(tmp, final); err != nil {
		w.fail(err)
		return w.err
	}
	if err := w.syncDir(); err != nil {
		w.fail(err)
		return w.err
	}
	w.m.snapshots.Inc()
	w.sinceSnap = 0
	return w.compactLocked(w.lsn)
}

func (w *WAL) writeFileSynced(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	w.m.fsyncs.Inc()
	return f.Close()
}

// compactLocked deletes segments fully covered by the snapshot at
// covered (the active segment is never covered — snapshots rotate
// first) and every snapshot older than it.
func (w *WAL) compactLocked(covered uint64) error {
	segs, err := w.listFiles(segPrefix, segSuffix)
	if err != nil {
		w.fail(err)
		return w.err
	}
	deleted := 0
	for _, first := range segs {
		if first <= covered && first != w.segStart {
			if err := os.Remove(w.segPath(first)); err != nil {
				w.fail(err)
				return w.err
			}
			deleted++
		}
	}
	snaps, err := w.listFiles(snapPrefix, snapSuffix)
	if err != nil {
		w.fail(err)
		return w.err
	}
	for _, last := range snaps {
		if last < covered {
			if err := os.Remove(w.snapPath(last)); err != nil {
				w.fail(err)
				return w.err
			}
		}
	}
	if deleted > 0 {
		w.m.compactions.Inc()
		if err := w.syncDir(); err != nil {
			w.fail(err)
			return w.err
		}
	}
	w.countSegments()
	return nil
}

func (w *WAL) flushLoop() {
	defer w.flusher.Done()
	ticker := time.NewTicker(w.opts.syncInterval())
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			w.mu.Lock()
			if !w.closed && w.err == nil && w.dirty {
				w.flushLocked(true)
			}
			w.mu.Unlock()
		}
	}
}

// Flush forces everything appended so far onto disk with an fsync,
// whatever the sync policy. Shutdown calls it before reporting a
// clean drain.
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	return w.flushLocked(true)
}

// Close flushes, fsyncs and closes the WAL. It returns the store's
// sticky error, so a background flush failure nobody saw still
// surfaces at shutdown.
func (w *WAL) Close() error {
	w.stopFlusher()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	w.flushLocked(true)
	if err := w.f.Close(); err != nil {
		w.fail(err)
	}
	return w.err
}

func (w *WAL) stopFlusher() {
	w.stopOnce.Do(func() {
		if w.stop != nil {
			close(w.stop)
			w.flusher.Wait()
		}
	})
}

// Stats reads the store's counters. With a shared registry the
// counters are cumulative across every store on it (reopens
// included), matching what /metrics scrapes.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	lsn := w.lsn
	w.mu.Unlock()
	return Stats{
		AppendedRecords:     w.m.appendedRecords.Value(),
		AppendedBytes:       w.m.appendedBytes.Value(),
		Fsyncs:              w.m.fsyncs.Value(),
		Snapshots:           w.m.snapshots.Value(),
		Compactions:         w.m.compactions.Value(),
		TruncatedRecoveries: w.m.truncatedRecoveries.Value(),
		Segments:            w.m.segments.Value(),
		LastLSN:             lsn,
	}
}
