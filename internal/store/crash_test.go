package store_test

// Crash-injection harness for the durable case store: run one fleet
// case to completion against a WAL-backed server, then re-run recovery
// from the WAL cut at every byte boundary that matters — before the
// log, at every record boundary, and twice inside every record (a torn
// header and a torn payload). Whatever the cut, a recovered server plus
// the clients' idempotent retries must converge on a report
// bit-identical to the uninterrupted run's: resumed collections accept
// exactly the missing traces (never double-counting a replayed batch),
// and post-publish cuts re-serve the report from disk without running
// diagnosis at all.
//
// SNORLAX_CRASH_SEED varies which success snapshots the fixture
// gathers (CI sweeps a few seeds); the invariants hold for all of them.

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/proto"
	"snorlax/internal/pt"
	"snorlax/internal/store"
)

const crashQuota = 4

type crashFixture struct {
	mod      *ir.Module
	moduleTx string
	failing  *core.RunReport
	okSnaps  []*pt.Snapshot
}

func crashSeed() int64 {
	if s := os.Getenv("SNORLAX_CRASH_SEED"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

func newCrashFixture(t *testing.T) *crashFixture {
	t.Helper()
	bug := corpus.ByID("pbzip2-1")
	failInst := bug.Build(corpus.Variant{Failing: true})
	rep := core.NewClient(failInst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatal("expected failure")
	}
	okInst := bug.Build(corpus.Variant{Failing: false})
	okClient := core.NewClient(okInst.Mod)
	base := crashSeed()
	var snaps []*pt.Snapshot
	for seed := base; len(snaps) < crashQuota && seed < base+512; seed++ {
		r := okClient.Run(seed, rep.Failure.PC)
		if !r.Failed() && r.Triggered {
			snaps = append(snaps, r.Snapshot)
		}
	}
	if len(snaps) < crashQuota {
		t.Fatalf("gathered %d/%d success snapshots from seed base %d", len(snaps), crashQuota, base)
	}
	return &crashFixture{mod: failInst.Mod, moduleTx: ir.Print(failInst.Mod),
		failing: rep, okSnaps: snaps}
}

// crashWALOpts keep the whole run in one segment with every record
// durable the instant it is acknowledged, so cutting the single
// segment file at a byte offset is exactly "the machine died there".
func crashWALOpts() store.Options {
	return store.Options{SyncPolicy: store.SyncAlways, SnapshotEvery: -1, SegmentBytes: 64 << 20}
}

func startCrashServer(t *testing.T, mod *ir.Module, w *store.WAL) (string, *proto.Server) {
	t.Helper()
	srv := proto.NewServer(core.NewServer(mod))
	srv.FleetQuota = crashQuota
	srv.Store = w
	if err := srv.Restore(w.RecoveredState()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String(), srv
}

// driveCase replays the fixture's whole client-side script — register,
// report the failure, upload both batches, fetch the report — exactly
// as a retrying production agent would after losing its connection: the
// protocol is idempotent, so repeating everything is always safe.
func driveCase(t *testing.T, addr string, fx *crashFixture) (proto.TenantID, proto.CaseID, *core.Diagnosis) {
	t.Helper()
	c, err := proto.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Register(fx.moduleTx)
	if err != nil {
		t.Fatal(err)
	}
	caseID, _, _, err := c.ReportFleetFailure(id, fx.failing.Failure, fx.failing.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashQuota; i += 2 {
		if _, _, err := c.UploadBatch(id, caseID, fx.failing.Failure.PC, "agent-0", uint64(i+1), fx.okSnaps[i:i+2]); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		diag, done, err := c.FetchReport(id, caseID, fx.failing.Failure.PC)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if diag == nil {
				t.Fatal("case done with no diagnosis")
			}
			return id, caseID, diag
		}
		if time.Now().After(deadline) {
			t.Fatal("report never published")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCrashRecoveryAtEveryPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~30 diagnosis servers; skipped with -short")
	}
	fx := newCrashFixture(t)

	// Live pass: one uninterrupted run, SyncAlways, single segment.
	liveDir := t.TempDir()
	w, err := store.Open(liveDir, crashWALOpts())
	if err != nil {
		t.Fatal(err)
	}
	addr, srv := startCrashServer(t, fx.mod, w)
	_, _, liveDiag := driveCase(t, addr, fx)
	baseline := liveDiag.Fingerprint()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	segPath := filepath.Join(liveDir, "wal-0000000000000001.log")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, clean := store.ScanSegment(data)
	if clean != len(data) {
		t.Fatalf("live WAL is not clean: %d of %d bytes", clean, len(data))
	}
	// register, open, 4 accepts, quota, publish, close.
	if len(recs) != crashQuota+5 {
		t.Fatalf("live WAL holds %d records, want %d", len(recs), crashQuota+5)
	}
	publishEnd := recs[len(recs)-2].End

	// Cut points: the empty log, every record boundary (a crash between
	// appends), and two interior offsets per record (a torn header and a
	// torn payload).
	boundary := map[int]bool{0: true}
	cuts := []int{0}
	prev := 0
	for _, sr := range recs {
		boundary[sr.End] = true
		cuts = append(cuts, sr.End)
		if sr.End-prev > 5 {
			cuts = append(cuts, prev+3, sr.End-2)
		}
		prev = sr.End
	}

	for _, cut := range cuts {
		cut := cut
		t.Run(strconv.Itoa(cut), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			w2, err := store.Open(dir, crashWALOpts())
			if err != nil {
				t.Fatal(err)
			}
			st := w2.Stats()
			if boundary[cut] {
				if st.TruncatedRecoveries != 0 {
					t.Errorf("boundary cut counted %d truncated recoveries", st.TruncatedRecoveries)
				}
			} else if st.TruncatedRecoveries != 1 {
				t.Errorf("interior cut counted %d truncated recoveries, want 1", st.TruncatedRecoveries)
			}

			addr2, srv2 := startCrashServer(t, fx.mod, w2)
			id, caseID, diag := driveCase(t, addr2, fx)
			if got := diag.Fingerprint(); got != baseline {
				t.Errorf("recovered report diverged from the uninterrupted run\n got %s\nwant %s", got, baseline)
			}
			// Exactly the quota, server-side: replayed batches never
			// double-count, resumed collections never over-collect.
			_, successes, ok := srv2.FleetCaseTraces(id, caseID)
			if !ok {
				t.Fatalf("case %d missing from the recovered server", caseID)
			}
			if len(successes) != crashQuota {
				t.Errorf("recovered case holds %d accepted traces, want exactly %d", len(successes), crashQuota)
			}
			// A cut at or past the publish record means the verdict is on
			// disk: it must be re-served without re-running diagnosis.
			completed := srv2.Status().CompletedDiagnoses
			if cut >= publishEnd {
				if completed != 0 {
					t.Errorf("report was on disk but the server ran %d diagnoses", completed)
				}
			} else if completed != 1 {
				t.Errorf("recovered server ran %d diagnoses, want 1", completed)
			}
		})
	}
}
