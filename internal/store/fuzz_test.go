package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay holds recovery to its total-robustness contract:
// whatever bytes a segment file holds — a genuine log, a torn tail, a
// flipped bit, a checksum-valid frame that is not a record, pure
// garbage — Open must not panic, must recover exactly the state of the
// longest cleanly-applying record prefix, and must never lose a
// complete record that precedes the first bad byte.
func FuzzWALReplay(f *testing.F) {
	for _, e := range walCorpusEntries(f) {
		f.Add(e.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// The reference: scan the bytes and apply records until the
		// first one that does not replay. Recovery must land exactly
		// there, by construction of the same scan + apply.
		recs, _ := ScanSegment(data)
		expect := NewState()
		applied := 0
		for _, sr := range recs {
			if err := expect.apply(sr.Record); err != nil {
				break
			}
			applied++
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, Options{SyncPolicy: SyncNever, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("Open failed on fuzzed segment: %v", err)
		}
		defer w.Close()
		if got := w.Stats().LastLSN; got != uint64(applied) {
			t.Fatalf("recovered LSN %d, want %d (the longest cleanly-applying prefix)", got, applied)
		}
		if got, want := describeState(w.RecoveredState()), describeState(expect); got != want {
			t.Fatalf("recovered state diverges from the applied prefix:\n got:\n%s\nwant:\n%s", got, want)
		}
	})
}
