package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
)

// Fingerprint hashes the diagnosis verdict — the scored patterns, the
// winner, its uniqueness, the anchor — into a stable hex digest. Stage
// timings, cache hit/miss counts and worker counts are excluded: two
// diagnoses of the same failing trace over the same success traces
// fingerprint equal no matter which host ran them, how warm its caches
// were, or whether one of the runs happened after a crash recovery.
// The trace counts stay in, because a diagnosis over different inputs
// is a different diagnosis. The crash-injection tests lean on this to
// assert bit-identical verdicts across every recovery point.
func (d *Diagnosis) Fingerprint() string {
	clean := *d
	clean.Stats = StageStats{
		SuccessTraces:    d.Stats.SuccessTraces,
		DroppedSuccesses: d.Stats.DroppedSuccesses,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&clean); err != nil {
		// Diagnosis is a closed, gob-friendly struct; encoding it can
		// only fail on programmer error (an unencodable field added
		// later), which tests should see immediately.
		panic(fmt.Sprintf("core: fingerprinting diagnosis: %v", err))
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}
