package core

import (
	"sync"

	"snorlax/internal/ir"
	"snorlax/internal/pointsto"
	"snorlax/internal/ranking"
)

// maxCachedAnalyses bounds the per-server analysis cache. Steady-state
// workloads (the Session loop, the network server re-diagnosing the
// same failure site) cycle through a handful of executed scopes, so
// when the cache overflows it is cheaper to drop it wholesale than to
// track recency.
const maxCachedAnalyses = 64

// analysisKey identifies one solved points-to analysis: the module it
// was built for, which analysis flavor ran, and a fingerprint of the
// executed scope that restricted constraint generation.
type analysisKey struct {
	mod         *ir.Module
	unification bool
	scopeHash   uint64
}

// cachedAnalysis pairs the solved analysis with the canonical scope it
// was built from; lookups verify the full PC list so a hash collision
// can never hand back the wrong analysis.
type cachedAnalysis struct {
	scope []ir.PC
	an    *lockedAnalysis
}

// lockedAnalysis serializes queries to a shared points-to analysis.
// Both Andersen and Steensgaard mutate internal state on reads —
// object interning for operands first seen at query time, union-find
// path compression — so an analysis shared across concurrent
// diagnoses must be locked. The ObjSets PointsTo returns are not
// mutated by later queries, so reading them outside the lock is safe.
type lockedAnalysis struct {
	mu sync.Mutex
	an ranking.Analysis
}

func (l *lockedAnalysis) PointsTo(v ir.Value) pointsto.ObjSet {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.an.PointsTo(v)
}

func (l *lockedAnalysis) MayAlias(p, q ir.Value) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.an.MayAlias(p, q)
}

// scopedAnalysis returns the points-to analysis for scope, reusing a
// cached solve when the module, flavor and executed scope all match —
// the steady-state fast path that skips step 4 entirely. The second
// result reports whether the cache served the request.
func (s *Server) scopedAnalysis(scope pointsto.Scope) (ranking.Analysis, bool) {
	if s.DisableCache {
		return s.analysisFor(scope), false
	}
	key := analysisKey{mod: s.Mod, unification: s.UseUnification, scopeHash: scope.Hash()}
	canon := scope.SortedPCs()
	m := s.metrics()

	s.mu.Lock()
	if e, ok := s.analyses[key]; ok && pointsto.EqualPCs(e.scope, canon) {
		s.mu.Unlock()
		m.cacheHits.Inc()
		return e.an, true
	}
	s.mu.Unlock()
	m.cacheMisses.Inc()

	// Solve outside the lock: concurrent misses on the same scope
	// duplicate work but never block each other; last store wins.
	an := &lockedAnalysis{an: s.analysisFor(scope)}
	s.mu.Lock()
	if s.analyses == nil {
		s.analyses = make(map[analysisKey]*cachedAnalysis)
	}
	if len(s.analyses) >= maxCachedAnalyses {
		s.analyses = make(map[analysisKey]*cachedAnalysis)
	}
	s.analyses[key] = &cachedAnalysis{scope: canon, an: an}
	s.mu.Unlock()
	return an, false
}

// CacheStats returns the cumulative points-to cache hit and miss
// counts since the server was created. It reads the same registry
// counters the /metrics endpoint serves.
func (s *Server) CacheStats() (hits, misses uint64) {
	m := s.metrics()
	return m.cacheHits.Value(), m.cacheMisses.Value()
}
