package core

import "snorlax/internal/obs"

// Core metric names. The analysis server's own counters live in the
// same registry the protocol layer and the /metrics endpoint read, so
// "status" replies and Prometheus scrapes can never disagree.
const (
	// MetricDiagnoses counts completed core diagnoses.
	MetricDiagnoses = "snorlax_diagnoses_total"
	// MetricCacheHits / MetricCacheMisses count points-to analysis
	// cache outcomes.
	MetricCacheHits   = "snorlax_pointsto_cache_hits_total"
	MetricCacheMisses = "snorlax_pointsto_cache_misses_total"
	// MetricDroppedSuccesses counts success traces skipped by
	// degraded-mode diagnosis.
	MetricDroppedSuccesses = "snorlax_dropped_successes_total"
	// MetricSuccessTraces counts success traces that survived decoding
	// and fed statistical diagnosis.
	MetricSuccessTraces = "snorlax_success_traces_observed_total"
	// MetricObserveQueueDepth gauges success traces admitted to the
	// current observe wave but not yet picked up by a worker.
	MetricObserveQueueDepth = "snorlax_observe_queue_depth"
	// MetricObserveInflight gauges success traces being decoded and
	// observed right now.
	MetricObserveInflight = "snorlax_observe_inflight"
)

// coreMetrics bundles the analysis server's registry handles.
type coreMetrics struct {
	reg      *obs.Registry
	pipeline *obs.Pipeline

	diagnoses     *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	dropped       *obs.Counter
	successTraces *obs.Counter
	observeQueue  *obs.Gauge
	inflight      *obs.Gauge
}

// metrics lazily builds the server's registry and handles; the
// protocol layer and HTTP endpoint share the same registry via
// Metrics().
func (s *Server) metrics() *coreMetrics {
	s.obsOnce.Do(func() { s.om = newCoreMetrics(obs.NewRegistry()) })
	return s.om
}

// UseRegistry makes the server register its metrics on an existing
// registry instead of lazily creating its own. The multi-tenant
// protocol server points every tenant's analysis server at the one
// registry its /metrics endpoint serves, so fleet-wide pipeline and
// cache counters aggregate across tenants (registration is
// idempotent: equal names yield the same handles). It must be called
// before the first diagnosis or Metrics() call; afterwards it is a
// no-op, because retargeting live counters would fork the source of
// truth.
func (s *Server) UseRegistry(reg *obs.Registry) {
	s.obsOnce.Do(func() { s.om = newCoreMetrics(reg) })
}

func newCoreMetrics(reg *obs.Registry) *coreMetrics {
	return &coreMetrics{
		reg:      reg,
		pipeline: obs.NewPipeline(reg),
		diagnoses: reg.Counter(MetricDiagnoses,
			"Completed diagnoses (failing trace analyzed end to end)."),
		cacheHits: reg.Counter(MetricCacheHits,
			"Points-to analyses served from the scope-keyed cache."),
		cacheMisses: reg.Counter(MetricCacheMisses,
			"Points-to analyses solved from scratch."),
		dropped: reg.Counter(MetricDroppedSuccesses,
			"Success traces skipped as undecodable by degraded-mode diagnosis."),
		successTraces: reg.Counter(MetricSuccessTraces,
			"Success traces decoded and observed for statistical diagnosis."),
		observeQueue: reg.Gauge(MetricObserveQueueDepth,
			"Success traces queued for the observe worker pool."),
		inflight: reg.Gauge(MetricObserveInflight,
			"Success traces being decoded/observed right now."),
	}
}

// Metrics returns the server's metrics registry — the single source
// of truth behind CacheStats, DroppedSuccessCount, the protocol
// status reply, and the Prometheus endpoint.
func (s *Server) Metrics() *obs.Registry { return s.metrics().reg }

// span starts a per-diagnosis pipeline span, or nil (a no-op
// recorder) when observability is disabled.
func (s *Server) span() *obs.Span {
	if s.DisableObs {
		return nil
	}
	return s.metrics().pipeline.Span()
}
