package core_test

import (
	"fmt"
	"testing"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/pattern"
)

// buildErrorPathCrash puts the crash inside error-handling code that
// successful executions never reach: the null check routes to a `bad`
// block whose dereference traps. Successful runs take `good`, so the
// failure PC never executes in them and the session must fall back to
// tracing at a predecessor block (§4.1).
func buildErrorPathCrash(t *testing.T, failing bool) *ir.Module {
	t.Helper()
	consumerDelay, teardownDelay := 300_000, 100_000
	if !failing {
		consumerDelay, teardownDelay = 50_000, 400_000
	}
	src := fmt.Sprintf(`
module errpath
struct Job {
  payload: int
}
global queue: *Job

func consumer() {
entry:
  sleep %d
  %%j = load @queue
  %%isnull = eq %%j, 0
  condbr %%isnull, bad, good
bad:
  %%p = fieldaddr %%j, payload
  %%v = load %%p
  ret
good:
  %%p2 = fieldaddr %%j, payload
  %%v2 = load %%p2
  ret
}

func main() {
entry:
  %%j = new Job
  store %%j, @queue
  %%t = spawn consumer()
  sleep %d
  store null:*Job, @queue
  join %%t
  ret
}
`, consumerDelay, teardownDelay)
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSessionPredecessorTriggerFallback(t *testing.T) {
	failMod := buildErrorPathCrash(t, true)
	okMod := buildErrorPathCrash(t, false)
	sess := core.NewSession(failMod, okMod)
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The failure lives in the `bad` block; successful runs never
	// reach it, so the session must have moved the trigger.
	failBlock := failMod.InstrAt(out.Failure.PC).Block()
	if failBlock.Name != "bad" {
		t.Fatalf("failure in block %s, expected the error path", failBlock.Name)
	}
	if out.TriggerPC == out.Failure.PC {
		t.Error("trigger never fell back from the unreachable failure PC")
	}
	trigBlock := failMod.InstrAt(out.TriggerPC).Block()
	if trigBlock.Name != "entry" {
		t.Errorf("trigger block = %s, want the predecessor (entry)", trigBlock.Name)
	}
	// The true root cause (null store before the consumer's load)
	// must be among the top-scored patterns.
	var nullStore, racyLoad ir.PC = ir.NoPC, ir.NoPC
	failMod.Instrs(func(in ir.Instr) {
		if s, ok := in.(*ir.StoreInstr); ok {
			if c, isConst := s.Val.(*ir.Const); isConst && c.Val == 0 && c.Typ.Kind() == ir.KindPtr {
				nullStore = in.PC()
			}
		}
		if l, ok := in.(*ir.LoadInstr); ok && l.Block().Parent.Name == "consumer" {
			if _, isGlobal := l.Addr.(*ir.GlobalRef); isGlobal && racyLoad == ir.NoPC {
				racyLoad = in.PC()
			}
		}
	})
	truth := core.Truth{Kind: pattern.KindOrderViolation, Sub: "WR",
		PCs: []ir.PC{nullStore, racyLoad}}
	found := false
	for _, s := range out.Diagnosis.Scores {
		if s.F1 == out.Diagnosis.Scores[0].F1 && core.MatchesTruth(s.Pattern, truth) {
			found = true
		}
	}
	if !found {
		t.Errorf("true root cause not among top-scored patterns: %v", out.Diagnosis.Scores)
	}
}

func TestSessionNoFailure(t *testing.T) {
	okMod := buildErrorPathCrash(t, false)
	sess := core.NewSession(okMod, okMod)
	sess.Seeds = []int64{1, 2, 3}
	if _, err := sess.Run(); err == nil {
		t.Error("session must error when no failure reproduces")
	}
}
