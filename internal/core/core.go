// Package core orchestrates Lazy Diagnosis — the paper's primary
// contribution (§4, Figure 2).
//
// A Client runs a program under the simulated hardware tracer and
// produces failure reports with trace snapshots (steps 1 and 8). A
// Server consumes them and runs the analysis pipeline: trace
// processing (2–3), hybrid points-to analysis (4), type-based ranking
// (5), bug-pattern computation (6) and statistical diagnosis (7). A
// Session wires the two together the way the deployed system would:
// one failing execution seeds the analysis, then traces from
// successful executions — captured at the failure PC — sharpen it.
package core

import (
	"fmt"
	"sync"
	"time"

	"snorlax/internal/ir"
	"snorlax/internal/obs"
	"snorlax/internal/pattern"
	"snorlax/internal/pointsto"
	"snorlax/internal/pt"
	"snorlax/internal/ranking"
	"snorlax/internal/statdiag"
	"snorlax/internal/traceproc"
	"snorlax/internal/vm"
)

// FailureReport is the client-side failure description shipped to the
// server — the crash-report analogue (OS error tracker + trace dump).
// It is self-contained and serializable.
type FailureReport struct {
	Deadlock     bool
	PC           ir.PC
	Tid          int
	Time         int64
	Msg          string
	DeadlockPCs  []ir.PC
	DeadlockTids []int
}

// RunReport is the outcome of one traced client execution.
type RunReport struct {
	// Failure is nil for successful executions.
	Failure *FailureReport
	// Snapshot holds the per-thread trace rings captured at the
	// failure (failing runs) or at the trigger PC (successful runs).
	Snapshot *pt.Snapshot
	// Result is the raw VM result (virtual time, steps, …).
	Result *vm.Result
	// Triggered reports whether an armed trigger fired.
	Triggered bool
}

// Failed reports whether the execution failed.
func (r *RunReport) Failed() bool { return r.Failure != nil }

// Client runs executions of one module under the trace driver.
type Client struct {
	Mod *ir.Module
	// PT configures the simulated tracer (64 KB rings by default).
	PT pt.Config
	// VM configures execution; Seed is overridden per run.
	VM vm.Config
}

// NewClient returns a Client with default configurations.
func NewClient(mod *ir.Module) *Client { return &Client{Mod: mod} }

// Run executes once with the given seed. trigger, when not NoPC, arms
// a one-shot trace snapshot at that PC (step 8: collecting traces
// from successful executions at a previous failure's location).
func (c *Client) Run(seed int64, trigger ir.PC) *RunReport {
	drv := pt.NewDriver(c.PT)
	drv.TriggerPC = trigger
	cfg := c.VM
	cfg.Seed = seed
	cfg.Sink = drv
	cfg.Hook = drv
	res := vm.Run(c.Mod, cfg)

	rep := &RunReport{Result: res, Triggered: drv.Triggered()}
	if res.Failed() {
		f := res.Failure
		rep.Failure = &FailureReport{
			Deadlock:     f.Kind == vm.FailDeadlock,
			PC:           f.PC,
			Tid:          f.Thread,
			Time:         f.Time,
			Msg:          f.Msg,
			DeadlockPCs:  f.DeadlockPCs,
			DeadlockTids: f.DeadlockTids,
		}
		rep.Snapshot = drv.FailureSnapshot(res.Time)
		return rep
	}
	if drv.Triggered() {
		rep.Snapshot = drv.TriggerSnapshot()
	}
	return rep
}

// ReportFromResult wraps a raw VM result as a RunReport (no trace
// snapshot); used by untraced execution modes such as record/replay.
func ReportFromResult(res *vm.Result) *RunReport {
	rep := &RunReport{Result: res}
	if res.Failed() {
		f := res.Failure
		rep.Failure = &FailureReport{
			Deadlock:     f.Kind == vm.FailDeadlock,
			PC:           f.PC,
			Tid:          f.Thread,
			Time:         f.Time,
			Msg:          f.Msg,
			DeadlockPCs:  f.DeadlockPCs,
			DeadlockTids: f.DeadlockTids,
		}
	}
	return rep
}

// StageStats quantifies each pipeline stage's effect — the raw data
// behind Figure 7 (per-stage accuracy contribution) and Table 4
// (hybrid analysis times and speedups).
type StageStats struct {
	// TotalInstrs is the module's static instruction count.
	TotalInstrs int
	// ExecutedInstrs is the scope after trace processing (step 2).
	ExecutedInstrs int
	// Candidates is the alias-filtered instruction count after the
	// hybrid points-to analysis (step 4).
	Candidates int
	// Rank1Candidates is the exact-type-match subset (step 5).
	Rank1Candidates int
	// Patterns is the number of candidate patterns (step 6).
	Patterns int
	// DynEvents is the length of the partially-ordered dynamic
	// instruction trace (step 3).
	DynEvents int
	// SuccessTraces is how many successful traces fed statistical
	// diagnosis (step 7).
	SuccessTraces int
	// DroppedSuccesses is how many uploaded success traces were
	// undecodable (corrupt rings, decode panics) and skipped by
	// degraded-mode diagnosis; the statistics cover the survivors.
	DroppedSuccesses int
	// PointsToTime is the wall-clock cost of constraint generation
	// and solving on this host (near zero on a cache hit).
	PointsToTime time.Duration
	// DecodeTime is the wall-clock cost of decoding and processing
	// the failing trace (steps 2–3).
	DecodeTime time.Duration
	// RankTime is the wall-clock cost of type-based ranking (step 5).
	RankTime time.Duration
	// PatternTime is the wall-clock cost of pattern computation,
	// including the deep-anchor and multi-variable extensions (step 6).
	PatternTime time.Duration
	// ObserveTime is the wall-clock cost of statistical diagnosis
	// (step 7): success-trace decode/observe fan-out plus scoring.
	ObserveTime time.Duration
	// TotalTime is the wall-clock cost of the whole server-side
	// analysis for the failing trace.
	TotalTime time.Duration
	// PointsToCacheHit reports that step 4 was served from the
	// server's analysis cache for this diagnosis.
	PointsToCacheHit bool
	// PointsToCacheHits and PointsToCacheMisses are the server's
	// cumulative cache counters as of this diagnosis.
	PointsToCacheHits, PointsToCacheMisses uint64
	// Workers is the success-trace pool size this diagnosis ran with.
	Workers int
}

// Diagnosis is the server's verdict for one failure.
type Diagnosis struct {
	// Best is the top-scored pattern.
	Best statdiag.Score
	// Unique reports whether Best strictly beats the runner-up.
	Unique bool
	// Scores lists every pattern's statistics, best first.
	Scores []statdiag.Score
	// AnchorPC is the instruction the analysis anchored on (the load
	// of the corrupt pointer for crashes; the blocked lock attempt
	// for deadlocks).
	AnchorPC ir.PC
	// Stats carries the per-stage measurements.
	Stats StageStats
}

// Server runs the Lazy Diagnosis analysis for one module.
//
// Diagnose is safe for concurrent use by multiple goroutines (the
// network server calls it from per-connection handlers) as long as
// the configuration fields are not mutated once diagnoses start.
type Server struct {
	Mod *ir.Module
	// PT must match the client's trace configuration.
	PT pt.Config
	// Pattern bounds pattern computation.
	Pattern pattern.Config
	// MaxSuccessTraces caps how many successful traces are used per
	// failing trace (the paper's empirically-determined 10×).
	MaxSuccessTraces int
	// Workers bounds the success-trace decode/observe pool in step 7.
	// 0 uses runtime.GOMAXPROCS(0); 1 forces the serial path. Any
	// setting produces bit-identical diagnoses.
	Workers int
	// UseUnification switches the points-to stage to the
	// Steensgaard baseline (ablation only).
	UseUnification bool
	// DisableRanking turns off type-based ranking (ablation only):
	// every candidate gets rank 1.
	DisableRanking bool
	// DisableCache turns off the points-to analysis cache — for
	// ablations and cold-path timing measurements (Table 4 reports
	// uncached solve times).
	DisableCache bool
	// DisableObs turns off per-stage latency histograms (for ablations
	// and the observability-overhead benchmark). The operational
	// counters — cache, drops, diagnoses — stay live either way,
	// because they are the server's single source of truth, not an
	// optional layer on top of one.
	DisableObs bool

	// mu guards the analysis cache.
	mu       sync.Mutex
	analyses map[analysisKey]*cachedAnalysis

	// obsOnce guards the lazily-built metrics registry (see obs.go).
	obsOnce sync.Once
	om      *coreMetrics
}

// NewServer returns a Server with the paper's defaults.
func NewServer(mod *ir.Module) *Server {
	return &Server{Mod: mod, MaxSuccessTraces: 10}
}

// analysisFor builds the points-to analysis for a scope.
func (s *Server) analysisFor(scope pointsto.Scope) ranking.Analysis {
	if s.UseUnification {
		return pointsto.NewSteensgaard(s.Mod, scope)
	}
	return pointsto.NewAndersen(s.Mod, scope)
}

// Diagnose runs steps 2–7 on one failing run plus traces from
// successful executions and returns the diagnosis.
func (s *Server) Diagnose(failing *RunReport, successes []*RunReport) (*Diagnosis, error) {
	if failing.Failure == nil || failing.Snapshot == nil {
		return nil, fmt.Errorf("core: failing report has no failure or snapshot")
	}
	start := time.Now()
	f := failing.Failure

	// Steps 2–3: trace processing. The two halves are timed apart for
	// the stage histograms; StageStats.DecodeTime keeps covering both.
	stop := map[int]ir.PC{f.Tid: f.PC}
	traces, err := pt.DecodeSnapshot(s.Mod, failing.Snapshot, s.PT, stop)
	if err != nil {
		return nil, fmt.Errorf("core: decoding failing trace: %w", err)
	}
	rawDecodeTime := time.Since(start)
	procStart := time.Now()
	scope, failTrace := traceproc.Process(traces)
	procTime := time.Since(procStart)
	decodeTime := rawDecodeTime + procTime

	// Step 4: hybrid points-to analysis, scope restricted. Repeated
	// diagnoses of the same program and executed scope — the Session
	// loop, the network server's steady state — reuse the cached solve.
	ptStart := time.Now()
	analysis, cacheHit := s.scopedAnalysis(scope)
	ptTime := time.Since(ptStart)

	// Step 5: type-based ranking around the anchored failure.
	rankStart := time.Now()
	failInstr := s.Mod.InstrAt(f.PC)
	class := ranking.MemAccesses
	fi := pattern.FailureInfo{PC: f.PC, Tid: f.Tid, Time: f.Time}
	switch {
	case f.Deadlock && failInstr.Op() == ir.OpWait:
		// A hang at a condition wait is a lost wakeup: an order
		// violation on the condition variable (the notify ran before
		// the wait), not a lock cycle. Candidates are the sync
		// operations aliasing the condition.
		class = ranking.SyncOps
	case f.Deadlock:
		class = ranking.SyncOps
		fi.Deadlock = true
		fi.DeadlockPCs = f.DeadlockPCs
		fi.DeadlockTids = f.DeadlockTids
	default:
		anchor, _ := ranking.Anchor(failInstr)
		fi.PC = anchor.PC()
	}
	cands := ranking.Rank(s.Mod, failInstr, class, analysis, scope)
	if s.DisableRanking {
		for i := range cands {
			cands[i].Rank = 1
		}
	}
	rankTime := time.Since(rankStart)

	// Step 6: bug-pattern computation with partial flow sensitivity.
	patStart := time.Now()
	pats := pattern.Compute(s.Mod, fi, cands, failTrace, s.Pattern)

	// Extension (§7 future work): when the failing instruction is not
	// itself part of the bug pattern, the corrupt value may have
	// propagated through memory (a store into a cache slot, reloaded
	// later). Chase the anchor's value provenance through in-scope
	// may-aliased stores to deeper anchor loads and add their
	// patterns; statistical diagnosis keeps whichever anchor's
	// pattern actually predicts the failure.
	if !fi.Deadlock {
		for _, deep := range s.deepAnchors(fi.PC, analysis, scope, 2) {
			dfi := fi
			dfi.PC = deep.PC()
			dCands := ranking.Rank(s.Mod, deep, ranking.MemAccesses, analysis, scope)
			pats = append(pats, pattern.Compute(s.Mod, dfi, dCands, failTrace, s.Pattern)...)
		}
		pats = dedupePatterns(pats)
	}

	// Extension (§7 future work): a violated invariant over several
	// memory locations anchors at several loads; add multi-variable
	// atomicity patterns for every anchored-read pair.
	if a, isAssert := failInstr.(*ir.AssertInstr); isAssert && !f.Deadlock {
		if loads := ranking.AssertedLoads(a); len(loads) >= 2 {
			var anchors []pattern.MVAnchor
			for _, ld := range loads {
				anchors = append(anchors, pattern.MVAnchor{
					PC:    ld.PC(),
					Cands: ranking.Rank(s.Mod, ld, ranking.MemAccesses, analysis, scope),
				})
			}
			pats = append(pats, pattern.ComputeMultiVar(s.Mod, fi, anchors, failTrace, s.Pattern)...)
		}
	}
	patTime := time.Since(patStart)

	// Step 7: statistical diagnosis over failing + successful traces.
	// Success-trace decode and observation fan out across the worker
	// pool; observations commit in upload order so the scores are
	// bit-identical to the serial path.
	obsStart := time.Now()
	m := s.metrics()
	limit := s.MaxSuccessTraces
	if limit <= 0 {
		limit = 10
	}
	okObs, droppedOK := s.observeSuccesses(pats, successes, limit)
	if droppedOK > 0 {
		m.dropped.Add(uint64(droppedOK))
	}
	observations := append([]statdiag.Observation{s.observe(pats, failTrace, true)}, okObs...)
	observeTime := time.Since(obsStart)
	scoreStart := time.Now()
	scores := statdiag.Rank(pats, observations)
	best, unique := statdiag.Best(scores)
	scoreTime := time.Since(scoreStart)
	obsTime := observeTime + scoreTime

	hits, misses := s.CacheStats()
	rankCount := ranking.CountByRank(cands)
	totalTime := time.Since(start)
	d := &Diagnosis{
		Best:     best,
		Unique:   unique,
		Scores:   scores,
		AnchorPC: fi.PC,
		Stats: StageStats{
			TotalInstrs:         s.Mod.NumInstrs(),
			ExecutedInstrs:      len(scope),
			Candidates:          len(cands),
			Rank1Candidates:     rankCount[1],
			Patterns:            len(pats),
			DynEvents:           len(failTrace.Events),
			SuccessTraces:       len(okObs),
			DroppedSuccesses:    droppedOK,
			PointsToTime:        ptTime,
			DecodeTime:          decodeTime,
			RankTime:            rankTime,
			PatternTime:         patTime,
			ObserveTime:         obsTime,
			TotalTime:           totalTime,
			PointsToCacheHit:    cacheHit,
			PointsToCacheHits:   hits,
			PointsToCacheMisses: misses,
			Workers:             s.workerCount(),
		},
	}

	// Commit the per-stage span in one pass, so every stage histogram's
	// count equals the number of completed diagnoses; a diagnosis that
	// errored out above recorded nothing.
	if sp := s.span(); sp != nil {
		sp.Record(obs.StageDecode, rawDecodeTime)
		sp.Record(obs.StageTraceProc, procTime)
		sp.Record(obs.StagePointsTo, ptTime)
		sp.Record(obs.StageRank, rankTime)
		sp.Record(obs.StagePattern, patTime)
		sp.Record(obs.StageObserve, observeTime)
		sp.Record(obs.StageStatDiag, scoreTime)
		sp.Record(obs.StageTotal, totalTime)
		sp.Commit()
	}
	m.diagnoses.Inc()
	m.successTraces.Add(uint64(len(okObs)))
	return d, nil
}

// DroppedSuccessCount returns the cumulative number of success traces
// skipped by degraded-mode diagnosis since the server was created. It
// reads the same registry counter the /metrics endpoint serves.
func (s *Server) DroppedSuccessCount() uint64 {
	return s.metrics().dropped.Value()
}

// deepAnchors walks corrupt-value provenance through memory: starting
// at the load anchoring the failure, any in-scope store that may
// alias the anchored slot carries the corruption; the loads feeding
// that store's value are the next anchors. Depth bounds the walk.
func (s *Server) deepAnchors(anchorPC ir.PC, analysis ranking.Analysis, scope pointsto.Scope, depth int) []*ir.LoadInstr {
	var out []*ir.LoadInstr
	seen := map[ir.PC]bool{anchorPC: true}
	frontier := []ir.PC{anchorPC}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []ir.PC
		for _, pc := range frontier {
			ld, ok := s.Mod.InstrAt(pc).(*ir.LoadInstr)
			if !ok {
				continue
			}
			s.Mod.Instrs(func(in ir.Instr) {
				st, isStore := in.(*ir.StoreInstr)
				if !isStore || !scope.In(in) || !analysis.MayAlias(st.Addr, ld.Addr) {
					return
				}
				for _, src := range ranking.ValueLoads(in.Block().Parent, st.Val) {
					if !seen[src.PC()] && scope.In(src) {
						seen[src.PC()] = true
						out = append(out, src)
						next = append(next, src.PC())
					}
				}
			})
		}
		frontier = next
	}
	return out
}

// dedupePatterns merges patterns with identical keys, keeping the
// best rank.
func dedupePatterns(pats []*pattern.Pattern) []*pattern.Pattern {
	seen := map[string]*pattern.Pattern{}
	var out []*pattern.Pattern
	for _, p := range pats {
		if prev, ok := seen[p.Key()]; ok {
			if p.Rank < prev.Rank {
				prev.Rank = p.Rank
			}
			continue
		}
		seen[p.Key()] = p
		out = append(out, p)
	}
	return out
}

func (s *Server) observe(pats []*pattern.Pattern, tr *traceproc.Trace, failed bool) statdiag.Observation {
	o := statdiag.Observation{Failed: failed, Present: make(map[string]bool, len(pats))}
	for _, p := range pats {
		o.Present[p.Key()] = pattern.Present(s.Mod, p, tr)
	}
	return o
}

// WholeProgramAnalysisTime runs the points-to analysis without scope
// restriction and reports its wall-clock cost — the Table 4 baseline.
func (s *Server) WholeProgramAnalysisTime() time.Duration {
	start := time.Now()
	if s.UseUnification {
		pointsto.NewSteensgaard(s.Mod, nil)
	} else {
		pointsto.NewAndersen(s.Mod, nil)
	}
	return time.Since(start)
}
