package core_test

import (
	"strings"
	"testing"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/pattern"
)

// diagnoseBug runs the full Session loop on one corpus bug.
func diagnoseBug(t *testing.T, b *corpus.Bug) (*core.Outcome, *corpus.Instance) {
	t.Helper()
	failInst := b.Build(corpus.Variant{Failing: true})
	okInst := b.Build(corpus.Variant{Failing: false})
	sess := core.NewSession(failInst.Mod, okInst.Mod)
	out, err := sess.Run()
	if err != nil {
		t.Fatalf("%s: session: %v", b.ID, err)
	}
	return out, failInst
}

func truthOf(inst *corpus.Instance) core.Truth {
	return core.Truth{
		Kind:    inst.TruthKind,
		Sub:     inst.TruthSub,
		PCs:     inst.TruthPCs,
		Absence: inst.TruthAbsence,
	}
}

// TestEvalSetFullAccuracy reproduces the paper's headline result
// (§6.1): Snorlax diagnoses every evaluated bug with 100% accuracy
// and 100% ordering accuracy, after a single failure.
func TestEvalSetFullAccuracy(t *testing.T) {
	for _, b := range corpus.EvalSet() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			out, inst := diagnoseBug(t, b)
			d := out.Diagnosis
			if d.Best.Pattern == nil {
				t.Fatal("no pattern diagnosed")
			}
			if !d.Unique {
				t.Errorf("diagnosis not unique: %v vs %v", d.Scores[0], d.Scores[1])
			}
			truth := truthOf(inst)
			if !core.MatchesTruth(d.Best.Pattern, truth) {
				t.Fatalf("diagnosed %s, truth %v/%s PCs %v (absence=%v)\nall scores: %v",
					d.Best.Pattern.Key(), truth.Kind, truth.Sub, truth.PCs, truth.Absence, d.Scores)
			}
			if acc := core.OrderingAccuracy(d.Best.Pattern, truth); acc != 100 {
				t.Errorf("ordering accuracy = %.1f, want 100", acc)
			}
			if d.Best.F1 != 1.0 {
				t.Errorf("best F1 = %f, want 1.0", d.Best.F1)
			}
			if out.FailuresNeeded != 1 {
				t.Errorf("failures needed = %d, want 1", out.FailuresNeeded)
			}
		})
	}
}

// TestAllBugsDiagnose extends the accuracy check to the entire
// 54-bug corpus (the paper evaluates 11; our synthetic corpus lets us
// check them all).
func TestAllBugsDiagnose(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus diagnosis is slow; run without -short")
	}
	failures := 0
	for _, b := range corpus.All() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			out, inst := diagnoseBug(t, b)
			d := out.Diagnosis
			truth := truthOf(inst)
			if !core.MatchesTruth(d.Best.Pattern, truth) {
				failures++
				var got string
				if d.Best.Pattern != nil {
					got = d.Best.Pattern.Key()
				}
				t.Errorf("diagnosed %q, truth %v/%s PCs %v", got, truth.Kind, truth.Sub, truth.PCs)
			}
			if acc := core.OrderingAccuracy(d.Best.Pattern, truth); acc != 100 {
				t.Errorf("ordering accuracy = %.1f", acc)
			}
		})
	}
}

func TestScopeRestrictionReduction(t *testing.T) {
	// The mysql module carries heavy cold code: trace processing must
	// shrink the analyzed set substantially (the paper reports 9x
	// geometric mean across its benchmarks).
	out, _ := diagnoseBug(t, corpus.ByID("mysql-3"))
	st := out.Diagnosis.Stats
	if st.ExecutedInstrs == 0 || st.TotalInstrs == 0 {
		t.Fatal("missing stats")
	}
	reduction := float64(st.TotalInstrs) / float64(st.ExecutedInstrs)
	if reduction < 5 {
		t.Errorf("scope reduction = %.1fx, want >= 5x on mysql", reduction)
	}
	if st.Candidates == 0 || st.Patterns == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
}

func TestDiagnoseRequiresFailure(t *testing.T) {
	inst := corpus.ByID("pbzip2-1").Build(corpus.Variant{Failing: false})
	srv := core.NewServer(inst.Mod)
	if _, err := srv.Diagnose(&core.RunReport{}, nil); err == nil {
		t.Error("Diagnose accepted a report without failure")
	}
}

func TestClientSuccessfulRunWithTrigger(t *testing.T) {
	inst := corpus.ByID("aget-1").Build(corpus.Variant{Failing: false})
	client := core.NewClient(inst.Mod)
	// Trigger on the worker's load (truth PC 1).
	rep := client.Run(3, inst.TruthPCs[1])
	if rep.Failed() {
		t.Fatalf("unexpected failure: %+v", rep.Failure)
	}
	if !rep.Triggered || rep.Snapshot == nil {
		t.Error("trigger did not produce a snapshot")
	}
}

func TestFormatReadable(t *testing.T) {
	out, inst := diagnoseBug(t, corpus.ByID("pbzip2-1"))
	text := core.Format(inst.Mod, out.Diagnosis)
	for _, want := range []string{"root cause: order-violation", "WR", "F1=1.00", "event 1", "scope restriction"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted diagnosis missing %q:\n%s", want, text)
		}
	}
}

func TestMatchesTruthDeadlockCanonicalization(t *testing.T) {
	p := &pattern.Pattern{Kind: pattern.KindDeadlock, Sub: "DL2",
		PCs: []ir.PC{30, 40, 10, 20}}
	truth := core.Truth{Kind: pattern.KindDeadlock, Sub: "DL2",
		PCs: []ir.PC{10, 20, 30, 40}}
	if !core.MatchesTruth(p, truth) {
		t.Error("pair rotation should not affect deadlock truth matching")
	}
	wrong := core.Truth{Kind: pattern.KindDeadlock, Sub: "DL2",
		PCs: []ir.PC{10, 20, 30, 41}}
	if core.MatchesTruth(p, wrong) {
		t.Error("different attempt PC must not match")
	}
}

func TestMatchesTruthRejectsKindMismatch(t *testing.T) {
	p := &pattern.Pattern{Kind: pattern.KindOrderViolation, Sub: "WR", PCs: []ir.PC{1, 2}}
	if core.MatchesTruth(p, core.Truth{Kind: pattern.KindAtomicityViolation, Sub: "RWR", PCs: []ir.PC{1, 2, 3}}) {
		t.Error("kind mismatch matched")
	}
	if core.MatchesTruth(nil, core.Truth{}) {
		t.Error("nil pattern matched")
	}
	// Absence flag must be honored.
	abs := &pattern.Pattern{Kind: pattern.KindOrderViolation, Sub: "RW", PCs: []ir.PC{1, 2}, Absence: true}
	if core.MatchesTruth(abs, core.Truth{Kind: pattern.KindOrderViolation, Sub: "RW", PCs: []ir.PC{1, 2}}) {
		t.Error("absence mismatch matched")
	}
}

func TestSessionUsesTenSuccessTraces(t *testing.T) {
	b := corpus.ByID("httpd-4")
	failInst := b.Build(corpus.Variant{Failing: true})
	okInst := b.Build(corpus.Variant{Failing: false})
	sess := core.NewSession(failInst.Mod, okInst.Mod)
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 1 failing + up to 10 successful observations feed the F1; with
	// full accuracy the best score must count 10 clean runs.
	best := out.Diagnosis.Best
	if best.PresentOK != 0 {
		t.Errorf("root-cause pattern present in %d successful runs", best.PresentOK)
	}
	if best.PresentFailed != 1 {
		t.Errorf("root-cause pattern present in %d failing runs, want 1", best.PresentFailed)
	}
}
