package core_test

import (
	"reflect"
	"testing"

	"snorlax/internal/core"
	"snorlax/internal/pt"
)

// corruptSnapshot returns a deep copy of snap with every thread's ring
// bytes overwritten by 0xFF — bytes that decode as no known packet, so
// the trace is guaranteed undecodable.
func corruptSnapshot(snap *pt.Snapshot) *pt.Snapshot {
	out := &pt.Snapshot{Threads: make(map[int]pt.SnapshotThread, len(snap.Threads)), Time: snap.Time}
	for tid, th := range snap.Threads {
		data := make([]byte, len(th.Data))
		for i := range data {
			data[i] = 0xFF
		}
		out.Threads[tid] = pt.SnapshotThread{Data: data, Wrapped: th.Wrapped}
	}
	return out
}

// flipBytes returns a deep copy of snap with one byte flipped in the
// middle of each thread's ring — the subtle corruption case, which may
// either fail decoding or silently perturb one trace.
func flipBytes(snap *pt.Snapshot) *pt.Snapshot {
	out := &pt.Snapshot{Threads: make(map[int]pt.SnapshotThread, len(snap.Threads)), Time: snap.Time}
	for tid, th := range snap.Threads {
		data := append([]byte(nil), th.Data...)
		if len(data) > 0 {
			data[len(data)/2] ^= 0xFF
		}
		out.Threads[tid] = pt.SnapshotThread{Data: data, Wrapped: th.Wrapped}
	}
	return out
}

// TestDiagnoseSkipsCorruptSuccessTraces is the degraded-mode core
// guarantee: corrupt success snapshots are dropped and counted, later
// uploads take their place, and the diagnosis still matches both the
// ground truth and the clean-corpus verdict.
func TestDiagnoseSkipsCorruptSuccessTraces(t *testing.T) {
	for _, bugID := range []string{"pbzip2-1", "aget-1"} {
		t.Run(bugID, func(t *testing.T) {
			failInst, rep, oks := gatherReports(t, bugID, 12)

			clean := core.NewServer(failInst.Mod)
			clean.MaxSuccessTraces = 10
			want, err := clean.Diagnose(rep, oks[:10])
			if err != nil {
				t.Fatal(err)
			}

			// Corrupt uploads 2 and 5; the wave replacement must pull
			// in uploads 10 and 11 so the diagnosis still sees 10
			// clean traces — but a *different* set than the clean run,
			// so compare against a baseline over the same survivors.
			survivors := append(append(append([]*core.RunReport{}, oks[:2]...), oks[3:5]...), oks[6:12]...)
			base := core.NewServer(failInst.Mod)
			base.MaxSuccessTraces = 10
			wantDegraded, err := base.Diagnose(rep, survivors)
			if err != nil {
				t.Fatal(err)
			}

			mixed := append([]*core.RunReport{}, oks...)
			mixed[2] = &core.RunReport{Snapshot: corruptSnapshot(oks[2].Snapshot)}
			mixed[5] = &core.RunReport{Snapshot: corruptSnapshot(oks[5].Snapshot)}
			srv := core.NewServer(failInst.Mod)
			srv.MaxSuccessTraces = 10
			got, err := srv.Diagnose(rep, mixed)
			if err != nil {
				t.Fatalf("degraded diagnosis failed: %v", err)
			}
			if got.Stats.DroppedSuccesses != 2 {
				t.Errorf("DroppedSuccesses = %d, want 2", got.Stats.DroppedSuccesses)
			}
			if got.Stats.SuccessTraces != 10 {
				t.Errorf("SuccessTraces = %d, want 10 (dropped traces replaced by later uploads)", got.Stats.SuccessTraces)
			}
			if srv.DroppedSuccessCount() != 2 {
				t.Errorf("cumulative dropped = %d, want 2", srv.DroppedSuccessCount())
			}
			if !reflect.DeepEqual(verdictOf(got), verdictOf(wantDegraded)) {
				t.Errorf("degraded diagnosis diverged from clean diagnosis over the surviving traces\ngot  %+v\nwant %+v",
					verdictOf(got), verdictOf(wantDegraded))
			}

			truth := core.Truth{Kind: failInst.TruthKind, Sub: failInst.TruthSub,
				PCs: failInst.TruthPCs, Absence: failInst.TruthAbsence}
			if !core.MatchesTruth(got.Best.Pattern, truth) {
				t.Errorf("degraded diagnosis %s does not match ground truth", got.Best.Pattern.Key())
			}
			if !core.MatchesTruth(want.Best.Pattern, truth) {
				t.Errorf("clean diagnosis does not match ground truth")
			}
		})
	}
}

// TestDiagnoseToleratesBitFlips flips single bytes inside every
// success trace: whatever each flip does (decode error, decode panic,
// or a silently perturbed trace), Diagnose must not fail, and dropped
// plus surviving traces must account for every upload.
func TestDiagnoseToleratesBitFlips(t *testing.T) {
	failInst, rep, oks := gatherReports(t, "httpd-4", 8)
	mixed := make([]*core.RunReport, len(oks))
	for i, ok := range oks {
		mixed[i] = &core.RunReport{Snapshot: flipBytes(ok.Snapshot)}
	}
	srv := core.NewServer(failInst.Mod)
	srv.MaxSuccessTraces = 8
	d, err := srv.Diagnose(rep, mixed)
	if err != nil {
		t.Fatalf("bit-flipped successes aborted the diagnosis: %v", err)
	}
	if d.Stats.SuccessTraces+d.Stats.DroppedSuccesses != len(oks) {
		t.Errorf("survivors %d + dropped %d != uploads %d",
			d.Stats.SuccessTraces, d.Stats.DroppedSuccesses, len(oks))
	}
}

// TestDiagnoseStillFailsOnUnusableFailingTrace pins the one case that
// must remain an error: the failing trace itself is corrupt, so there
// is nothing to diagnose.
func TestDiagnoseStillFailsOnUnusableFailingTrace(t *testing.T) {
	failInst, rep, oks := gatherReports(t, "aget-1", 2)
	bad := &core.RunReport{Failure: rep.Failure, Snapshot: corruptSnapshot(rep.Snapshot)}
	srv := core.NewServer(failInst.Mod)
	if _, err := srv.Diagnose(bad, oks); err == nil {
		t.Fatal("corrupt failing trace did not error")
	}
}
