package core_test

import (
	"strings"
	"testing"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/pattern"
	"snorlax/internal/vm"
)

func TestExtensionCorpusCensus(t *testing.T) {
	exts := corpus.Extensions()
	if len(exts) != 4 {
		t.Fatalf("extensions = %d, want 4", len(exts))
	}
	kinds := map[pattern.Kind]int{}
	for _, b := range exts {
		kinds[b.Kind]++
		if corpus.ByID(b.ID) != nil {
			t.Errorf("%s: extension leaked into the 54-bug registry", b.ID)
		}
	}
	if kinds[pattern.KindMultiVarAtomicity] != 2 || kinds[pattern.KindOrderViolation] != 2 {
		t.Errorf("extension kinds = %v", kinds)
	}
	if corpus.ExtensionByID("mysql-mv1") == nil {
		t.Error("ExtensionByID miss")
	}
	if corpus.ExtensionByID("nope") != nil {
		t.Error("ExtensionByID false hit")
	}
}

func TestExtensionBugsReproduce(t *testing.T) {
	for _, b := range corpus.Extensions() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			inst := b.Build(corpus.Variant{Failing: true})
			res := vm.Run(inst.Mod, vm.Config{Seed: 1})
			wantKind := vm.FailCrash
			if b.ID == "log4j-notify1" {
				wantKind = vm.FailDeadlock // lost wakeup manifests as a hang
			}
			if !res.Failed() || res.Failure.Kind != wantKind {
				t.Fatalf("want %v, got %v", wantKind, res.Failure)
			}
			if b.Kind == pattern.KindMultiVarAtomicity &&
				!strings.Contains(res.Failure.Msg, "invariant") {
				t.Errorf("failure msg = %q", res.Failure.Msg)
			}
			ok := b.Build(corpus.Variant{Failing: false})
			if okRes := vm.Run(ok.Mod, vm.Config{Seed: 1}); okRes.Failed() {
				t.Fatalf("success variant failed: %v", okRes.Failure)
			}
		})
	}
}

// TestMultiVarDiagnosis is the §7 future-work headline: Lazy
// Diagnosis extended with multi-anchor pattern computation diagnoses
// invariants torn across two memory locations.
func TestMultiVarDiagnosis(t *testing.T) {
	for _, b := range corpus.Extensions() {
		if b.Kind != pattern.KindMultiVarAtomicity {
			continue
		}
		b := b
		t.Run(b.ID, func(t *testing.T) {
			failInst := b.Build(corpus.Variant{Failing: true})
			okInst := b.Build(corpus.Variant{Failing: false})
			sess := core.NewSession(failInst.Mod, okInst.Mod)
			out, err := sess.Run()
			if err != nil {
				t.Fatal(err)
			}
			d := out.Diagnosis
			if d.Best.Pattern == nil {
				t.Fatal("no pattern")
			}
			if d.Best.Pattern.Kind != pattern.KindMultiVarAtomicity {
				t.Fatalf("best = %s, want multivar-atomicity\nscores: %v",
					d.Best.Pattern.Key(), d.Scores)
			}
			if d.Best.F1 != 1.0 || !d.Unique {
				t.Errorf("F1 = %f unique = %v", d.Best.F1, d.Unique)
			}
			truth := core.Truth{Kind: failInst.TruthKind, Sub: failInst.TruthSub,
				PCs: failInst.TruthPCs}
			if !core.MatchesTruth(d.Best.Pattern, truth) {
				t.Errorf("diagnosed %s, truth PCs %v", d.Best.Pattern.Key(), truth.PCs)
			}
			if acc := core.OrderingAccuracy(d.Best.Pattern, truth); acc != 100 {
				t.Errorf("A_O = %.1f", acc)
			}
			// The formatted report must name the torn-read structure.
			text := core.Format(failInst.Mod, d)
			if !strings.Contains(text, "multivar-atomicity") {
				t.Errorf("format: %s", text)
			}
		})
	}
}

func TestExtensionGapCalibration(t *testing.T) {
	for _, b := range corpus.Extensions() {
		inst := b.Build(corpus.Variant{Failing: true})
		gaps, res := corpus.Gaps(inst, 1)
		if gaps == nil {
			t.Fatalf("%s: incomplete watch events (%v)", b.ID, res.Failure)
		}
		targets := []int64{b.GapNS}
		if b.GapNS2 > 0 {
			targets = append(targets, b.GapNS2)
		}
		for i, want := range targets {
			lo, hi := want*6/10, want*14/10
			if gaps[i] < lo || gaps[i] > hi {
				t.Errorf("%s: gap %d = %d, want ≈%d", b.ID, i, gaps[i], want)
			}
		}
	}
}

// TestPropagationDiagnosis is the other §7 future-work case: the
// failing instruction (and even its direct anchor) is not part of the
// bug pattern; deep anchoring through the cache store recovers the
// racy read and diagnoses the true order violation.
func TestPropagationDiagnosis(t *testing.T) {
	b := corpus.ExtensionByID("httpd-prop1")
	failInst := b.Build(corpus.Variant{Failing: true})
	okInst := b.Build(corpus.Variant{Failing: false})
	sess := core.NewSession(failInst.Mod, okInst.Mod)
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	d := out.Diagnosis
	if d.Best.Pattern == nil {
		t.Fatal("no pattern")
	}
	truth := core.Truth{Kind: failInst.TruthKind, Sub: failInst.TruthSub,
		PCs: failInst.TruthPCs}
	if !core.MatchesTruth(d.Best.Pattern, truth) {
		t.Fatalf("diagnosed %s (F1=%.2f), truth WR %v; all: %v",
			d.Best.Pattern.Key(), d.Best.F1, truth.PCs, d.Scores)
	}
	if d.Best.F1 != 1.0 || !d.Unique {
		t.Errorf("F1 = %f unique = %v; scores: %v", d.Best.F1, d.Unique, d.Scores)
	}
	// The diagnosed racy read must differ from both the faulting
	// instruction and its direct anchor.
	if d.Best.Pattern.PCs[1] == out.Failure.PC || d.Best.Pattern.PCs[1] == d.AnchorPC {
		t.Error("pattern anchored at the faulting chain, not the racy read")
	}
}

// TestLostWakeupDiagnosis covers the condition-variable extension: a
// hang at a wait is diagnosed as the order violation "notify executed
// before wait" on the condition variable.
func TestLostWakeupDiagnosis(t *testing.T) {
	b := corpus.ExtensionByID("log4j-notify1")
	failInst := b.Build(corpus.Variant{Failing: true})
	okInst := b.Build(corpus.Variant{Failing: false})
	sess := core.NewSession(failInst.Mod, okInst.Mod)
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	d := out.Diagnosis
	if d.Best.Pattern == nil {
		t.Fatal("no pattern")
	}
	truth := core.Truth{Kind: failInst.TruthKind, Sub: failInst.TruthSub,
		PCs: failInst.TruthPCs}
	if !core.MatchesTruth(d.Best.Pattern, truth) {
		t.Fatalf("diagnosed %s, truth WR(notify,wait) %v; all: %v",
			d.Best.Pattern.Key(), truth.PCs, d.Scores)
	}
	if d.Best.F1 != 1.0 || !d.Unique {
		t.Errorf("F1 = %f unique = %v; scores: %v", d.Best.F1, d.Unique, d.Scores)
	}
	// The formatted report points at the notify and the wait.
	text := core.Format(failInst.Mod, d)
	if !strings.Contains(text, "notify") || !strings.Contains(text, "wait") {
		t.Errorf("report does not name the condition operations:\n%s", text)
	}
}
