package core

import (
	"fmt"
	"runtime"
	"sync"

	"snorlax/internal/pattern"
	"snorlax/internal/pt"
	"snorlax/internal/statdiag"
	"snorlax/internal/traceproc"
)

// workerCount resolves the effective success-trace pool size.
func (s *Server) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// observeSuccesses decodes, trace-processes and observes up to limit
// successful traces (the fan-out half of step 7). Each upload is
// independent — one trace never informs another's decode — so the
// work spreads across a bounded worker pool; results are committed in
// upload order, which keeps diagnoses bit-identical to the serial
// path regardless of pool size. Errors also mirror the serial path:
// the first eligible trace (in upload order) that fails to decode
// determines the returned error.
func (s *Server) observeSuccesses(pats []*pattern.Pattern, successes []*RunReport, limit int) ([]statdiag.Observation, error) {
	selected := make([]*RunReport, 0, limit)
	for _, ok := range successes {
		if len(selected) >= limit {
			break
		}
		if ok.Snapshot == nil {
			continue
		}
		selected = append(selected, ok)
	}
	obs := make([]statdiag.Observation, len(selected))
	errs := make([]error, len(selected))
	process := func(i int) {
		okTraces, err := pt.DecodeSnapshot(s.Mod, selected[i].Snapshot, s.PT, nil)
		if err != nil {
			errs[i] = fmt.Errorf("core: decoding success trace: %w", err)
			return
		}
		_, tr := traceproc.Process(okTraces)
		obs[i] = s.observe(pats, tr, false)
	}

	if workers := min(s.workerCount(), len(selected)); workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					process(i)
				}
			}()
		}
		for i := range selected {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for i := range selected {
			process(i)
		}
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return obs, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
