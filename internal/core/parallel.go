package core

import (
	"fmt"
	"runtime"
	"sync"

	"snorlax/internal/pattern"
	"snorlax/internal/pt"
	"snorlax/internal/statdiag"
	"snorlax/internal/traceproc"
)

// workerCount resolves the effective success-trace pool size.
func (s *Server) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// observeSuccesses decodes, trace-processes and observes successful
// traces (the fan-out half of step 7) until limit observations are
// gathered or the uploads run out.
//
// In-production trace collection is lossy: a snapshot whose ring
// bytes were corrupted on the client, in flight, or in storage fails
// to decode, and a server that aborted the whole diagnosis on the
// first such trace would let one poisoned upload mask a diagnosable
// failure. Undecodable (or decode-panicking) traces are instead
// dropped and counted, later uploads take their place, and the F1
// statistic (§4.7) is computed over the surviving observations.
//
// Each upload is independent — one trace never informs another's
// decode — so each wave spreads across a bounded worker pool; results
// commit in upload order, which keeps diagnoses bit-identical to the
// serial path regardless of pool size, and the wave structure means a
// clean corpus never decodes more than limit snapshots.
func (s *Server) observeSuccesses(pats []*pattern.Pattern, successes []*RunReport, limit int) (obs []statdiag.Observation, dropped int) {
	eligible := make([]*RunReport, 0, len(successes))
	for _, ok := range successes {
		if ok.Snapshot != nil {
			eligible = append(eligible, ok)
		}
	}

	type result struct {
		obs statdiag.Observation
		err error
	}
	m := s.metrics()
	process := func(rep *RunReport) (res result) {
		// Queue-pressure accounting: the trace left the wave's queue
		// and is in flight on a worker.
		m.observeQueue.Dec()
		m.inflight.Inc()
		defer m.inflight.Dec()
		// A corrupt snapshot can do worse than return an error: ring
		// bytes that decode into out-of-range PCs panic deep in the
		// CFG walk. Degraded mode treats both the same way: drop the
		// trace, keep the diagnosis.
		defer func() {
			if r := recover(); r != nil {
				res.err = fmt.Errorf("core: success trace decode panicked: %v", r)
			}
		}()
		okTraces, err := pt.DecodeSnapshot(s.Mod, rep.Snapshot, s.PT, nil)
		if err != nil {
			res.err = fmt.Errorf("core: decoding success trace: %w", err)
			return res
		}
		_, tr := traceproc.Process(okTraces)
		res.obs = s.observe(pats, tr, false)
		return res
	}

	next := 0
	for len(obs) < limit && next < len(eligible) {
		batch := eligible[next:min(next+limit-len(obs), len(eligible))]
		next += len(batch)
		m.observeQueue.Add(int64(len(batch)))
		results := make([]result, len(batch))
		if workers := min(s.workerCount(), len(batch)); workers > 1 {
			var wg sync.WaitGroup
			idx := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idx {
						results[i] = process(batch[i])
					}
				}()
			}
			for i := range batch {
				idx <- i
			}
			close(idx)
			wg.Wait()
		} else {
			for i := range batch {
				results[i] = process(batch[i])
			}
		}
		for _, r := range results {
			if r.err != nil {
				dropped++
			} else {
				obs = append(obs, r.obs)
			}
		}
	}
	return obs, dropped
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
