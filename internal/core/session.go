package core

import (
	"fmt"

	"snorlax/internal/ir"
)

// Session drives the deployed-system loop of Figure 2 for one
// program: run until a failure occurs (step 1), then collect traces
// from successful executions at the failure PC (step 8), then
// diagnose (steps 2–7).
//
// In production the same binary both fails (rarely) and succeeds
// (usually). The corpus builds those as two delay variants with
// identical instruction layout, so a Session takes both: FailMod is
// executed until a failure is observed, OkMod supplies the successful
// executions. Passing the same module for both also works for
// programs that fail nondeterministically under scheduler seeds.
type Session struct {
	Server  *Server
	FailMod *ir.Module
	OkMod   *ir.Module
	// Seeds are tried in order for the failing run (default 1..20).
	Seeds []int64
	// SuccessRuns is how many successful traces to gather (default:
	// Server.MaxSuccessTraces).
	SuccessRuns int
}

// NewSession builds a session with the paper's defaults.
func NewSession(failMod, okMod *ir.Module) *Session {
	return &Session{
		Server:  NewServer(failMod),
		FailMod: failMod,
		OkMod:   okMod,
	}
}

// Outcome bundles a session's diagnosis with its reproduction cost.
type Outcome struct {
	Diagnosis *Diagnosis
	// FailuresNeeded counts failing executions consumed before the
	// diagnosis — always 1 for Snorlax (§6.3: no sampling, so a
	// single failure suffices).
	FailuresNeeded int
	// RunsToFailure counts executions until the first failure.
	RunsToFailure int
	// Failure is the observed failure.
	Failure *FailureReport
	// TriggerPC is where successful executions were traced; it may
	// be a predecessor of the failure PC when the failure lies in
	// error-handling code the successful runs never reach (§4.1).
	TriggerPC ir.PC
}

// Run executes the full loop.
func (s *Session) Run() (*Outcome, error) {
	seeds := s.Seeds
	if len(seeds) == 0 {
		for i := int64(1); i <= 20; i++ {
			seeds = append(seeds, i)
		}
	}
	failClient := &Client{Mod: s.FailMod, PT: s.Server.PT}
	var failing *RunReport
	runs := 0
	for _, seed := range seeds {
		runs++
		rep := failClient.Run(seed, ir.NoPC)
		if rep.Failed() {
			failing = rep
			break
		}
	}
	if failing == nil {
		return nil, fmt.Errorf("core: no failure within %d runs", runs)
	}

	want := s.SuccessRuns
	if want <= 0 {
		want = s.Server.MaxSuccessTraces
		if want <= 0 {
			want = 10
		}
	}
	okClient := &Client{Mod: s.OkMod, PT: s.Server.PT}
	trigger := failing.Failure.PC
	var successes []*RunReport
	for seed := int64(1); len(successes) < want && seed <= int64(want*4); seed++ {
		rep := okClient.Run(seed+1000, trigger)
		if rep.Failed() {
			continue // production mix: skip failing runs here
		}
		if !rep.Triggered {
			// The failure PC may be unreachable in successful runs
			// (error-handling code): fall back to predecessor blocks
			// until a trigger fires (§4.1).
			if pred := predecessorTrigger(s.OkMod, trigger); pred != ir.NoPC {
				trigger = pred
				continue
			}
			continue
		}
		successes = append(successes, rep)
	}

	d, err := s.Server.Diagnose(failing, successes)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Diagnosis:      d,
		FailuresNeeded: 1,
		RunsToFailure:  runs,
		Failure:        failing.Failure,
		TriggerPC:      trigger,
	}, nil
}

// predecessorTrigger returns the first PC of a predecessor block of
// the block containing pc, or NoPC when there is none — the paper's
// fallback when the failure location is not reached by successful
// executions.
func predecessorTrigger(mod *ir.Module, pc ir.PC) ir.PC {
	if int(pc) < 0 || int(pc) >= mod.NumInstrs() {
		return ir.NoPC
	}
	block := mod.InstrAt(pc).Block()
	for _, b := range ir.NewCFG(block.Parent).Preds(block) {
		if b != block {
			return b.FirstPC()
		}
	}
	return ir.NoPC
}
