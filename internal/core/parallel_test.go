package core_test

import (
	"reflect"
	"sync"
	"testing"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/pointsto"
)

// gatherReports reproduces one failure of the bug and collects want
// successful triggered traces at the failure PC.
func gatherReports(t *testing.T, bugID string, want int) (*corpus.Instance, *core.RunReport, []*core.RunReport) {
	t.Helper()
	bug := corpus.ByID(bugID)
	if bug == nil {
		t.Fatalf("unknown bug %s", bugID)
	}
	failInst := bug.Build(corpus.Variant{Failing: true})
	okInst := bug.Build(corpus.Variant{Failing: false})
	rep := core.NewClient(failInst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatalf("%s: expected failure", bugID)
	}
	okClient := core.NewClient(okInst.Mod)
	var oks []*core.RunReport
	for seed := int64(1); len(oks) < want && seed < int64(want*8); seed++ {
		r := okClient.Run(seed, rep.Failure.PC)
		if !r.Failed() && r.Triggered {
			oks = append(oks, r)
		}
	}
	if len(oks) < want {
		t.Fatalf("%s: gathered %d/%d successful traces", bugID, len(oks), want)
	}
	return failInst, rep, oks
}

// verdict strips the timing and counter fields that legitimately vary
// between runs, leaving everything a diagnosis asserts about the bug.
type verdict struct {
	Best     interface{}
	Unique   bool
	Scores   interface{}
	AnchorPC ir.PC
	Counts   [6]int
}

func verdictOf(d *core.Diagnosis) verdict {
	return verdict{
		Best:     d.Best,
		Unique:   d.Unique,
		Scores:   d.Scores,
		AnchorPC: d.AnchorPC,
		Counts: [6]int{
			d.Stats.TotalInstrs, d.Stats.ExecutedInstrs, d.Stats.Candidates,
			d.Stats.Rank1Candidates, d.Stats.Patterns, d.Stats.SuccessTraces,
		},
	}
}

// TestParallelDiagnosisBitIdentical asserts the acceptance criterion:
// the fan-out pipeline produces the same diagnosis as the serial path
// for every pool size, with and without the analysis cache.
func TestParallelDiagnosisBitIdentical(t *testing.T) {
	failInst, rep, oks := gatherReports(t, "httpd-4", 12)

	serial := core.NewServer(failInst.Mod)
	serial.Workers = 1
	serial.DisableCache = true
	serial.MaxSuccessTraces = 12
	want, err := serial.Diagnose(rep, oks)
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.SuccessTraces != 12 {
		t.Fatalf("serial path used %d success traces, want 12", want.Stats.SuccessTraces)
	}

	for _, workers := range []int{0, 2, 4, 16} {
		srv := core.NewServer(failInst.Mod)
		srv.Workers = workers
		srv.MaxSuccessTraces = 12
		for pass := 0; pass < 2; pass++ { // second pass hits the cache
			got, err := srv.Diagnose(rep, oks)
			if err != nil {
				t.Fatalf("workers=%d pass=%d: %v", workers, pass, err)
			}
			if !reflect.DeepEqual(verdictOf(got), verdictOf(want)) {
				t.Errorf("workers=%d pass=%d: diagnosis diverged from serial path\ngot  %+v\nwant %+v",
					workers, pass, verdictOf(got), verdictOf(want))
			}
			if pass == 1 && !got.Stats.PointsToCacheHit {
				t.Errorf("workers=%d: second diagnosis missed the analysis cache", workers)
			}
		}
	}
}

// TestAnalysisCacheCounters checks hit/miss bookkeeping on the server
// and in StageStats.
func TestAnalysisCacheCounters(t *testing.T) {
	failInst, rep, oks := gatherReports(t, "aget-1", 3)
	srv := core.NewServer(failInst.Mod)

	d1, err := srv.Diagnose(rep, oks)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Stats.PointsToCacheHit {
		t.Error("first diagnosis reported a cache hit")
	}
	if hits, misses := srv.CacheStats(); hits != 0 || misses != 1 {
		t.Errorf("after first diagnosis: hits=%d misses=%d, want 0/1", hits, misses)
	}

	d2, err := srv.Diagnose(rep, oks)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Stats.PointsToCacheHit {
		t.Error("second diagnosis missed the cache")
	}
	if hits, misses := srv.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("after second diagnosis: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if d2.Stats.PointsToCacheHits != 1 || d2.Stats.PointsToCacheMisses != 1 {
		t.Errorf("StageStats counters = %d/%d, want 1/1",
			d2.Stats.PointsToCacheHits, d2.Stats.PointsToCacheMisses)
	}

	// A different failing run (different seed → possibly different
	// executed scope) must never be served a wrong cached analysis:
	// diagnoses still succeed and verdicts stay self-consistent.
	srv.DisableCache = false
	rep2 := core.NewClient(failInst.Mod).Run(2, ir.NoPC)
	if rep2.Failed() {
		if _, err := srv.Diagnose(rep2, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentDiagnoseSharedServer drives one core.Server from many
// goroutines at once — the network server's steady state. Run under
// -race this exercises the cache lock and the shared-analysis lock.
func TestConcurrentDiagnoseSharedServer(t *testing.T) {
	failInst, rep, oks := gatherReports(t, "pbzip2-1", 5)
	srv := core.NewServer(failInst.Mod)
	srv.MaxSuccessTraces = 5

	want, err := srv.Diagnose(rep, oks)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	results := make([]*core.Diagnosis, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = srv.Diagnose(rep, oks)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(verdictOf(results[g]), verdictOf(want)) {
			t.Errorf("goroutine %d: diagnosis diverged under concurrency", g)
		}
	}
	if hits, _ := srv.CacheStats(); hits == 0 {
		t.Error("no cache hits across concurrent diagnoses of one scope")
	}
}

// TestScopeHashDeterministic pins the cache key's fingerprint
// semantics: equality under reordering, inequality on any member
// change, and the reserved nil sentinel.
func TestScopeHashDeterministic(t *testing.T) {
	a := pointsto.Scope{1: true, 2: true, 99: true}
	b := pointsto.Scope{99: true, 2: true, 1: true}
	if a.Hash() != b.Hash() {
		t.Error("equal scopes hash differently")
	}
	c := pointsto.Scope{1: true, 2: true}
	if a.Hash() == c.Hash() {
		t.Error("subset scope collided (pathological for FNV mixing)")
	}
	if got := pointsto.Scope(nil).Hash(); got != 0 {
		t.Errorf("nil scope hash = %d, want reserved 0", got)
	}
	if (pointsto.Scope{}).Hash() == 0 {
		t.Error("empty scope collides with the nil sentinel")
	}
	// False entries are semantically absent (Scope.In ignores them).
	d := pointsto.Scope{1: true, 2: true, 7: false}
	if d.Hash() != c.Hash() {
		t.Error("false entry changed the hash")
	}
	if !pointsto.EqualPCs(a.SortedPCs(), b.SortedPCs()) {
		t.Error("EqualPCs rejects identical scopes")
	}
	if pointsto.EqualPCs(a.SortedPCs(), c.SortedPCs()) {
		t.Error("EqualPCs accepts different scopes")
	}
}
