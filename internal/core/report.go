package core

import (
	"fmt"
	"sort"
	"strings"

	"snorlax/internal/ir"
	"snorlax/internal/kendall"
	"snorlax/internal/pattern"
)

// Truth is the manually-verified root cause a diagnosis is checked
// against (§6.1 compares Snorlax's output with developers' fixes).
type Truth struct {
	Kind    pattern.Kind
	Sub     string
	PCs     []ir.PC
	Absence bool
}

// canonicalDeadlockPairs sorts a deadlock pattern's (held, attempt)
// pairs by held-then-attempt PC, making the cycle's discovery order
// irrelevant for comparison.
func canonicalDeadlockPairs(pcsList []ir.PC) []ir.PC {
	type pair struct{ held, attempt ir.PC }
	var pairs []pair
	for i := 0; i+1 < len(pcsList); i += 2 {
		pairs = append(pairs, pair{pcsList[i], pcsList[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].held != pairs[j].held {
			return pairs[i].held < pairs[j].held
		}
		return pairs[i].attempt < pairs[j].attempt
	})
	out := make([]ir.PC, 0, len(pcsList))
	for _, p := range pairs {
		out = append(out, p.held, p.attempt)
	}
	return out
}

// MatchesTruth reports whether a pattern is the ground-truth root
// cause. Deadlock cycles are compared as unordered sets of
// (held, attempt) pairs.
func MatchesTruth(p *pattern.Pattern, truth Truth) bool {
	if p == nil || p.Kind != truth.Kind {
		return false
	}
	got, want := p.PCs, truth.PCs
	if p.Kind == pattern.KindDeadlock {
		got = canonicalDeadlockPairs(got)
		want = canonicalDeadlockPairs(want)
	} else {
		if p.Sub != truth.Sub || p.Absence != truth.Absence {
			return false
		}
	}
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// OrderingAccuracy computes A_O (§6.1): the normalized Kendall tau
// agreement between the diagnosed event order and the ground truth,
// in percent. Deadlock orders are canonicalized first.
func OrderingAccuracy(p *pattern.Pattern, truth Truth) float64 {
	if p == nil {
		return 0
	}
	got, want := p.PCs, truth.PCs
	if p.Kind == pattern.KindDeadlock && truth.Kind == pattern.KindDeadlock {
		got = canonicalDeadlockPairs(got)
		want = canonicalDeadlockPairs(want)
	}
	return kendall.OrderingAccuracy(got, want)
}

// Format renders a diagnosis for humans: the verdict, the evidence,
// and where each event lives in the program.
func Format(mod *ir.Module, d *Diagnosis) string {
	var sb strings.Builder
	if d.Best.Pattern == nil {
		sb.WriteString("no candidate patterns\n")
		return sb.String()
	}
	p := d.Best.Pattern
	fmt.Fprintf(&sb, "root cause: %s", p.Kind)
	if p.Kind != pattern.KindDeadlock {
		fmt.Fprintf(&sb, " (%s", p.Sub)
		if p.Absence {
			sb.WriteString(", failing access first")
		}
		sb.WriteString(")")
	}
	fmt.Fprintf(&sb, "  F1=%.2f precision=%.2f recall=%.2f", d.Best.F1, d.Best.Precision, d.Best.Recall)
	if !d.Unique {
		sb.WriteString("  [tied — manual review needed]")
	}
	sb.WriteString("\n")
	for i, pc := range p.PCs {
		if pc == ir.NoPC {
			continue
		}
		in := mod.InstrAt(pc)
		fmt.Fprintf(&sb, "  event %d: pc=%-5d %-30s in %s\n", i+1, pc, in, in.Block())
	}
	fmt.Fprintf(&sb, "  analyzed %d/%d instructions (scope restriction %0.1fx), %d candidates, %d patterns\n",
		d.Stats.ExecutedInstrs, d.Stats.TotalInstrs,
		float64(d.Stats.TotalInstrs)/float64(max(1, d.Stats.ExecutedInstrs)),
		d.Stats.Candidates, d.Stats.Patterns)
	fmt.Fprintf(&sb, "  server-side analysis: %v (points-to %v)\n", d.Stats.TotalTime, d.Stats.PointsToTime)
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
