// Package faultnet injects deterministic network faults — dropped
// connections, stalls, partial writes, and byte corruption — into
// net.Conn traffic, for chaos-testing the diagnosis path end to end.
//
// Faults follow a seeded schedule: each wrapped connection draws from
// its own RNG, keyed by (Config.Seed, side, per-side connection
// sequence), and faults fire only on Write calls, whose count is a
// deterministic function of the bytes the protocol sends. The same
// seed therefore yields the same fault schedule on every run, which is
// what lets chaos tests assert exact outcomes instead of "mostly
// works".
//
// A global MaxFaults budget bounds the chaos: once spent, every
// connection behaves perfectly, so a client that retries its way
// through the schedule is guaranteed to converge.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// Drop closes the connection instead of writing.
	Drop Kind = iota
	// Stall sleeps for Config.Stall before writing.
	Stall
	// PartialWrite writes a prefix of the buffer, then closes.
	PartialWrite
	// Corrupt flips one byte of the buffer, writes it, then closes:
	// the peer sees garbage followed by EOF, never a clean resync.
	Corrupt
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Stall:
		return "stall"
	case PartialWrite:
		return "partial write"
	case Corrupt:
		return "corrupt"
	}
	return "unknown"
}

// ErrInjected marks errors produced by the injector rather than the
// real network.
var ErrInjected = errors.New("faultnet: injected fault")

// Config tunes an Injector.
type Config struct {
	// Seed keys the fault schedule. Equal seeds (and equal traffic)
	// produce identical fault sequences.
	Seed int64
	// FaultEvery is the mean number of Write calls between faults:
	// each write faults with probability 1/FaultEvery. 0 means 4.
	FaultEvery int
	// Stall is how long a Stall fault sleeps. 0 means 10ms.
	Stall time.Duration
	// MaxFaults is the global fault budget across all connections.
	// 0 means 8; negative means unlimited (convergence no longer
	// guaranteed — only for tests that want perpetual chaos).
	MaxFaults int
	// Kinds restricts which faults fire; nil or empty means all.
	Kinds []Kind
}

func (c Config) faultEvery() int {
	if c.FaultEvery <= 0 {
		return 4
	}
	return c.FaultEvery
}

func (c Config) stall() time.Duration {
	if c.Stall <= 0 {
		return 10 * time.Millisecond
	}
	return c.Stall
}

func (c Config) maxFaults() int {
	if c.MaxFaults == 0 {
		return 8
	}
	return c.MaxFaults
}

func (c Config) kinds() []Kind {
	if len(c.Kinds) == 0 {
		return []Kind{Drop, Stall, PartialWrite, Corrupt}
	}
	return c.Kinds
}

// Stats counts the faults an Injector has fired.
type Stats struct {
	Drops         int
	Stalls        int
	PartialWrites int
	Corruptions   int
}

// Total sums all fired faults.
func (s Stats) Total() int {
	return s.Drops + s.Stalls + s.PartialWrites + s.Corruptions
}

// Injector hands out fault-injecting wrappers around connections. One
// injector owns one seeded schedule and one fault budget; wrap every
// connection under test with the same injector.
type Injector struct {
	cfg Config

	mu        sync.Mutex
	remaining int
	unlimited bool
	stats     Stats
	dialSeq   int64 // client-side connections wrapped so far
	acceptSeq int64 // server-side connections wrapped so far
}

// New builds an injector with a fresh budget.
func New(cfg Config) *Injector {
	in := &Injector{cfg: cfg}
	if m := cfg.maxFaults(); m < 0 {
		in.unlimited = true
	} else {
		in.remaining = m
	}
	return in
}

// Stats returns the faults fired so far.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Exhausted reports whether the fault budget is spent — from here on
// every wrapped connection is transparent.
func (in *Injector) Exhausted() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return !in.unlimited && in.remaining == 0
}

// The two sides get disjoint RNG streams so the racy ordering of
// "dial returns" vs "accept returns" cannot perturb the schedule.
const (
	dialSalt   = 0x636c69656e74 // "client"
	acceptSalt = 0x736572766572 // "server"
)

// Conn wraps a client-side connection in the injector's schedule.
func (in *Injector) Conn(nc net.Conn) net.Conn {
	in.mu.Lock()
	seq := in.dialSeq
	in.dialSeq++
	in.mu.Unlock()
	return in.wrap(nc, dialSalt, seq)
}

// Dialer wraps a dial function so every connection it makes is
// fault-injected.
func (in *Injector) Dialer(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		nc, err := dial()
		if err != nil {
			return nil, err
		}
		return in.Conn(nc), nil
	}
}

// Listener wraps a listener so every accepted connection is
// fault-injected on the server side.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.in.mu.Lock()
	seq := l.in.acceptSeq
	l.in.acceptSeq++
	l.in.mu.Unlock()
	return l.in.wrap(nc, acceptSalt, seq), nil
}

func (in *Injector) wrap(nc net.Conn, salt, seq int64) net.Conn {
	return &conn{Conn: nc, in: in,
		rng: rand.New(rand.NewSource(in.cfg.Seed ^ salt ^ (seq+1)<<20))}
}

// draw decides whether this write faults, and with which kind. It
// consumes the per-conn RNG unconditionally (the schedule must not
// depend on the budget) but fires only while budget remains.
func (in *Injector) draw(rng *rand.Rand) (Kind, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	hit := rng.Intn(in.cfg.faultEvery()) == 0
	kinds := in.cfg.kinds()
	k := kinds[rng.Intn(len(kinds))]
	if !hit || (!in.unlimited && in.remaining == 0) {
		return 0, false
	}
	if !in.unlimited {
		in.remaining--
	}
	switch k {
	case Drop:
		in.stats.Drops++
	case Stall:
		in.stats.Stalls++
	case PartialWrite:
		in.stats.PartialWrites++
	case Corrupt:
		in.stats.Corruptions++
	}
	return k, true
}

// conn injects faults on the write path only: write counts are a
// deterministic function of protocol traffic, whereas read chunking is
// up to the kernel — injecting there would unseed the schedule.
type conn struct {
	net.Conn
	in *Injector

	mu  sync.Mutex
	rng *rand.Rand
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	k, fire := c.in.draw(c.rng)
	var pos int
	if fire {
		pos = c.rng.Intn(len(p) + 1)
	}
	c.mu.Unlock()
	if !fire {
		return c.Conn.Write(p)
	}
	switch k {
	case Stall:
		time.Sleep(c.in.cfg.stall())
		return c.Conn.Write(p)
	case Drop:
		c.Conn.Close()
		return 0, ErrInjected
	case PartialWrite:
		n, _ := c.Conn.Write(p[:pos])
		c.Conn.Close()
		return n, ErrInjected
	case Corrupt:
		q := append([]byte(nil), p...)
		if len(q) > 0 {
			if pos == len(q) {
				pos--
			}
			q[pos] ^= 0xFF
		}
		n, err := c.Conn.Write(q)
		// The stream is poisoned; no peer can resync a corrupted gob
		// stream, so finish the job.
		c.Conn.Close()
		return n, err
	}
	return c.Conn.Write(p)
}
