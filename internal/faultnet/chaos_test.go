package faultnet_test

import (
	"fmt"
	"io"
	"net"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/faultnet"
	"snorlax/internal/ir"
	"snorlax/internal/proto"
	"snorlax/internal/pt"
)

// seedsUnderTest returns the chaos seed matrix: SNORLAX_FAULT_SEED
// pins a single seed (the CI matrix sets it), otherwise {1, 2, 3}.
func seedsUnderTest(t *testing.T) []int64 {
	if s := os.Getenv("SNORLAX_FAULT_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SNORLAX_FAULT_SEED=%q: %v", s, err)
		}
		return []int64{v}
	}
	return []int64{1, 2, 3}
}

// corruptRing fills every thread's ring with 0xFF: the snapshot still
// travels the wire as a perfectly valid message, but no packet decoder
// accepts it — core must drop it, on the clean path and the chaotic
// path alike.
func corruptRing(snap *pt.Snapshot) *pt.Snapshot {
	out := &pt.Snapshot{Threads: make(map[int]pt.SnapshotThread, len(snap.Threads)), Time: snap.Time}
	for tid, th := range snap.Threads {
		data := make([]byte, len(th.Data))
		for i := range data {
			data[i] = 0xFF
		}
		out.Threads[tid] = pt.SnapshotThread{Data: data, Wrapped: th.Wrapped}
	}
	return out
}

// TestChaosConvergesBitIdentical is the acceptance test for the whole
// robustness layer: a retrying client pushes a session through a
// network that drops, stalls, truncates, and corrupts on a seeded
// schedule — with one success snapshot ring-corrupted for good measure
// — and the diagnosis must come out bit-identical to a fault-free run
// of the same session, with the degradation visible in the counters.
func TestChaosConvergesBitIdentical(t *testing.T) {
	bug := corpus.ByID("pbzip2-1")
	failInst := bug.Build(corpus.Variant{Failing: true})
	rep := core.NewClient(failInst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		t.Fatal("expected failure")
	}
	okInst := bug.Build(corpus.Variant{Failing: false})
	okClient := core.NewClient(okInst.Mod)
	var uploads []*pt.Snapshot
	for seed := int64(1); len(uploads) < 6 && seed < 64; seed++ {
		r := okClient.Run(seed, rep.Failure.PC)
		if !r.Failed() && r.Triggered {
			uploads = append(uploads, r.Snapshot)
		}
	}
	if len(uploads) < 6 {
		t.Fatalf("gathered %d/6 success traces", len(uploads))
	}
	// Upload 3 is corrupt in BOTH runs, so DroppedSuccesses must be
	// nonzero and equal on both sides.
	uploads[3] = corruptRing(uploads[3])

	// Fault-free baseline against its own pristine server.
	cleanLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cleanLn.Close() })
	go proto.NewServer(core.NewServer(failInst.Mod)).Serve(cleanLn)
	cc, err := proto.Dial("tcp", cleanLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if _, err := cc.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
		t.Fatal(err)
	}
	for _, snap := range uploads {
		if err := cc.SendSuccess(snap); err != nil {
			t.Fatal(err)
		}
	}
	want, err := cc.RequestDiagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.DroppedSuccesses != 1 {
		t.Fatalf("clean run DroppedSuccesses = %d, want 1", want.Stats.DroppedSuccesses)
	}

	for _, seed := range seedsUnderTest(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { ln.Close() })
			inj := faultnet.New(faultnet.Config{
				Seed: seed, FaultEvery: 2, MaxFaults: 6, Stall: 5 * time.Millisecond})
			srv := proto.NewServer(core.NewServer(failInst.Mod))
			srv.IdleTimeout = 5 * time.Second
			srv.WriteTimeout = 5 * time.Second
			// Faults on both sides of the wire: the server's replies go
			// through the injector too.
			go srv.Serve(inj.Listener(ln))

			addr := ln.Addr().String()
			rc := proto.NewRetryClient(
				inj.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) }),
				proto.RetryConfig{MaxAttempts: 16, BaseDelay: time.Millisecond,
					MaxDelay: 20 * time.Millisecond, JitterSeed: seed})
			defer rc.Close()

			if _, err := rc.ReportFailure(rep.Failure, rep.Snapshot); err != nil {
				t.Fatalf("ReportFailure through chaos: %v", err)
			}
			for i, snap := range uploads {
				if err := rc.SendSuccess(snap); err != nil {
					t.Fatalf("SendSuccess %d through chaos: %v", i, err)
				}
			}
			got, err := rc.RequestDiagnosis()
			if err != nil {
				t.Fatalf("RequestDiagnosis through chaos: %v", err)
			}

			if !reflect.DeepEqual(got.Scores, want.Scores) || !reflect.DeepEqual(got.Best, want.Best) {
				t.Errorf("chaotic diagnosis diverged from the fault-free run\ngot best  %+v\nwant best %+v",
					got.Best, want.Best)
			}
			if got.Stats.SuccessTraces != want.Stats.SuccessTraces {
				t.Errorf("SuccessTraces = %d, want %d", got.Stats.SuccessTraces, want.Stats.SuccessTraces)
			}
			if got.Stats.DroppedSuccesses != 1 {
				t.Errorf("DroppedSuccesses = %d, want 1", got.Stats.DroppedSuccesses)
			}
			st := inj.Stats()
			if st.Total() == 0 {
				t.Error("the fault schedule never fired; the test proved nothing")
			}
			if rc.Retries() == 0 && st.Total() > st.Stalls {
				t.Errorf("destructive faults fired (%+v) but the client reports zero retries", st)
			}
			t.Logf("faults %+v, client retries %d", st, rc.Retries())
		})
	}
}

// TestScheduleIsDeterministic replays the same write sequence under
// the same seed twice: the per-op outcomes and the fault totals must
// match exactly, or seeded chaos runs are not reproducible.
func TestScheduleIsDeterministic(t *testing.T) {
	run := func() (faultnet.Stats, []string) {
		inj := faultnet.New(faultnet.Config{
			Seed: 7, FaultEvery: 3, MaxFaults: -1, Stall: time.Microsecond})
		var outcomes []string
		for c := 0; c < 3; c++ {
			a, b := net.Pipe()
			go io.Copy(io.Discard, b)
			fc := inj.Conn(a)
			for i := 0; i < 40; i++ {
				n, err := fc.Write(make([]byte, 32))
				outcomes = append(outcomes, fmt.Sprintf("%d:%d/%v", c, n, err != nil))
			}
			a.Close()
			b.Close()
		}
		return inj.Stats(), outcomes
	}
	s1, o1 := run()
	s2, o2 := run()
	if s1 != s2 {
		t.Errorf("stats diverged across identical runs: %+v vs %+v", s1, s2)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Error("per-op outcomes diverged across identical runs")
	}
	if s1.Total() == 0 {
		t.Error("schedule fired no faults at all")
	}
}

// TestBudgetBoundsChaos: once MaxFaults is spent, wrapped connections
// are transparent — the property that guarantees retry convergence.
func TestBudgetBoundsChaos(t *testing.T) {
	inj := faultnet.New(faultnet.Config{
		Seed: 1, FaultEvery: 1, MaxFaults: 2, Kinds: []faultnet.Kind{faultnet.Drop}})
	injected := 0
	for i := 0; i < 5; i++ {
		a, b := net.Pipe()
		go io.Copy(io.Discard, b)
		fc := inj.Conn(a)
		if _, err := fc.Write(make([]byte, 8)); err != nil {
			injected++
		}
		a.Close()
		b.Close()
	}
	if injected != 2 {
		t.Errorf("injected %d faults, want exactly the budget of 2", injected)
	}
	if !inj.Exhausted() {
		t.Error("budget spent but Exhausted() = false")
	}
	if got := (faultnet.Stats{Drops: 2}); inj.Stats() != got {
		t.Errorf("Stats = %+v, want %+v", inj.Stats(), got)
	}
}
