package corpus

import (
	"sort"

	"snorlax/internal/ir"
	"snorlax/internal/pattern"
)

// Extension bugs exercise capabilities beyond the paper's evaluation —
// currently the §7 future-work item this reproduction implements:
// multi-variable atomicity violations. They live in a separate
// registry so the 54-bug census of the hypothesis study stays exactly
// the paper's.
var extensions []*Bug

func registerExt(b *Bug) {
	for _, old := range extensions {
		if old.ID == b.ID {
			panic("corpus: duplicate extension bug id " + b.ID)
		}
	}
	extensions = append(extensions, b)
}

// Extensions returns the extension bugs, ordered by id.
func Extensions() []*Bug {
	out := append([]*Bug(nil), extensions...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ExtensionByID returns the named extension bug, or nil.
func ExtensionByID(id string) *Bug {
	for _, b := range extensions {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// genMultiVar builds a multi-variable atomicity violation: an auditor
// thread reads two locations bound by an invariant (bytes == items ×
// unit) non-atomically; an updater bumps the second location between
// the two reads, so the auditor's snapshot is torn and its invariant
// check trips. The paper's single-variable patterns cannot express
// this; the diagnosis must produce the MV-RWR triple
// (read-x, write-y, read-y).
func genMultiVar(sh shape, gap1, gap2 int64, id string) func(Variant) *Instance {
	return func(v Variant) *Instance {
		b := ir.NewBuilder(id)
		bytesG := b.GlobalInit(sh.Global+"_bytes", ir.Int, 10)
		itemsG := b.GlobalInit(sh.Global+"_items", ir.Int, 1)
		busy := addBusy(b)

		auditorB := scale(130_000, v)
		updaterA := auditorB + scale(gap1, v)
		if !v.Failing {
			updaterA = auditorB + scale(gap1, v) + scale(gap2, v) + scale(200_000, v)
		}

		aud := b.Func(sh.Workers[0], ir.Void)
		ae := aud.Block("entry")
		ae.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		ae.SleepNS(auditorB)
		x := ae.Load(bytesG)
		readX := lastInstr(ae)
		ae.SleepNS(scale(gap1, v) + scale(gap2, v))
		y := ae.Load(itemsG)
		readY := lastInstr(ae)
		expect := ae.Mul(y, ir.ConstInt(10))
		ae.Assert(ae.Eq(x, expect), "accounting invariant torn: bytes != items*10")
		ae.RetVoid()

		m := b.Func("main", ir.Void)
		me := m.Block("entry")
		tid := me.Spawn(aud.Ref())
		me.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		me.SleepNS(updaterA)
		// The pair update: items first, bytes later. Only the items
		// write lands between the auditor's two reads.
		me.Store(ir.ConstInt(2), itemsG)
		writeY := lastInstr(me)
		// The bytes write lands only after the auditor's second read
		// (and in the failing run, after its crash).
		me.SleepNS(scale(gap2, v) + scale(120_000, v))
		me.Store(ir.ConstInt(20), bytesG)
		me.Join(tid)
		me.RetVoid()

		addCold(b, sh, sh.Cold)
		mod := mustBuild(b, id)
		return &Instance{
			Mod:       mod,
			TruthKind: pattern.KindMultiVarAtomicity,
			TruthSub:  "MV-RWR",
			TruthPCs:  pcs(readX, writeY, readY),
			WatchPCs:  pcs(readX, writeY, readY),
		}
	}
}

// genPropagation builds the §7 "failing instruction not in the bug
// pattern" case: the worker reads the racy shared pointer, parks it in
// a cache slot, and only crashes much later when it reloads the slot
// and dereferences. Neither the faulting instruction nor its direct
// anchor (the cache reload) is part of the root-cause pattern — the
// diagnosis must chase the corrupt value's provenance through the
// store into the cache back to the racy shared read.
func genPropagation(sh shape, gap int64, id string) func(Variant) *Instance {
	return func(v Variant) *Instance {
		b := ir.NewBuilder(id)
		st := b.Struct(sh.Struct, ir.Field{Name: sh.Field, Type: ir.Int})
		shared := b.Global(sh.Global, ir.PtrTo(st))
		cache := b.Global(sh.Global+"_cached", ir.PtrTo(st))
		busy := addBusy(b)

		baseA := scale(140_000, v)
		workerB := baseA + scale(gap, v)
		if !v.Failing {
			workerB = scale(40_000, v)
		}

		w := b.Func(sh.Workers[0], ir.Void)
		we := w.Block("entry")
		we.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		we.SleepNS(workerB)
		p := we.Load(shared)
		racyLoad := lastInstr(we)
		we.Store(p, cache)
		we.SleepNS(scale(120_000, v))
		q := we.Load(cache)
		fa := we.FieldAddr(q, sh.Field)
		we.Load(fa)
		we.RetVoid()

		m := b.Func("main", ir.Void)
		me := m.Block("entry")
		me.Store(me.New(st), shared)
		tid := me.Spawn(w.Ref())
		me.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		me.SleepNS(baseA)
		me.Store(ir.Null(ir.PtrTo(st)), shared)
		nullStore := lastInstr(me)
		me.Join(tid)
		me.RetVoid()

		addCold(b, sh, sh.Cold)
		mod := mustBuild(b, id)
		return &Instance{
			Mod:       mod,
			TruthKind: pattern.KindOrderViolation,
			TruthSub:  "WR",
			TruthPCs:  pcs(nullStore, racyLoad),
			WatchPCs:  pcs(nullStore, racyLoad),
		}
	}
}

// genLostWakeup builds the condition-variable order violation: the
// producer signals work-available before the flusher starts waiting,
// so the notify is lost and the flusher hangs forever. The hang
// anchors at the wait; the diagnosis must report the WR order
// violation "notify executed before wait" on the condition variable.
func genLostWakeup(sh shape, gap int64, id string) func(Variant) *Instance {
	return func(v Variant) *Instance {
		b := ir.NewBuilder(id)
		qmu := b.Global(sh.Global+"_qmu", ir.Mutex)
		qcv := b.Global(sh.Global+"_qcv", ir.Cond)
		pending := b.Global(sh.Global+"_pending", ir.Int)
		busy := addBusy(b)

		notifyA := scale(120_000, v)
		waiterB := notifyA + scale(gap, v)
		if !v.Failing {
			waiterB = scale(30_000, v)
		}

		w := b.Func(sh.Workers[0], ir.Void)
		we := w.Block("entry")
		we.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		we.SleepNS(waiterB)
		we.Lock(qmu)
		we.Wait(qmu, qcv)
		waitInstr := lastInstr(we)
		p := we.Load(pending)
		we.Store(we.Sub(p, ir.ConstInt(1)), pending)
		we.Unlock(qmu)
		we.RetVoid()

		m := b.Func("main", ir.Void)
		me := m.Block("entry")
		tid := me.Spawn(w.Ref())
		me.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		me.SleepNS(notifyA)
		me.Lock(qmu)
		me.Store(ir.ConstInt(1), pending)
		me.Notify(qcv)
		notifyInstr := lastInstr(me)
		me.Unlock(qmu)
		me.Join(tid)
		me.RetVoid()

		addCold(b, sh, sh.Cold)
		mod := mustBuild(b, id)
		return &Instance{
			Mod:       mod,
			TruthKind: pattern.KindOrderViolation,
			TruthSub:  "WR",
			TruthPCs:  pcs(notifyInstr, waitInstr),
			WatchPCs:  pcs(notifyInstr, waitInstr),
		}
	}
}

func init() {
	registerExt(&Bug{
		System: "log4j", ID: "log4j-notify1", Kind: pattern.KindOrderViolation,
		Lang: LangJava, GapNS: 180_000,
		Description: "flush thread's condition wait races with the producer's notify; the signal fires first and is lost (hang)",
		build:       genLostWakeup(shLog4j, 180_000, "log4j-notify1"),
	})
	registerExt(&Bug{
		System: "httpd", ID: "httpd-prop1", Kind: pattern.KindOrderViolation,
		Lang: LangC, GapNS: 200_000,
		Description: "connection record freed under a worker that cached the pointer; the crash fires two hops downstream of the race",
		build:       genPropagation(shHTTPD, 200_000, "httpd-prop1"),
	})
	registerExt(&Bug{
		System: "mysql", ID: "mysql-mv1", Kind: pattern.KindMultiVarAtomicity,
		Lang: LangC, GapNS: 160_000, GapNS2: 180_000,
		Description: "table stats reader sees row count updated but byte count stale (multi-variable invariant torn)",
		build:       genMultiVar(shMySQL, 160_000, 180_000, "mysql-mv1"),
	})
	registerExt(&Bug{
		System: "memcached", ID: "memcached-mv1", Kind: pattern.KindMultiVarAtomicity,
		Lang: LangC, GapNS: 120_000, GapNS2: 140_000,
		Description: "stats snapshot reads curr_items and total_bytes non-atomically across an eviction",
		build:       genMultiVar(shMemcached, 120_000, 140_000, "memcached-mv1"),
	})
}
