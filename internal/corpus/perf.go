package corpus

import (
	"fmt"
	"sort"

	"snorlax/internal/ir"
)

// perfProfile shapes a system's throughput workload for the overhead
// experiments (Figures 8 and 9): compute-bound systems (pbzip2) run
// long branchy bursts between rare waits; I/O-bound servers (httpd,
// memcached) alternate short bursts with longer waits. Branch density
// is what drives control-flow-tracing overhead, so the profile
// determines where each system lands in Figure 8.
type perfProfile struct {
	shape shape
	// BusyPerOp is the busy() iteration count per operation.
	BusyPerOp int64
	// WaitNS is the simulated I/O wait per operation.
	WaitNS int64
	// LockEvery takes the stats lock once per this many operations.
	LockEvery int64
}

var perfProfiles = map[string]perfProfile{
	"mysql":        {shape: shMySQL, BusyPerOp: 260, WaitNS: 60_000, LockEvery: 2},
	"httpd":        {shape: shHTTPD, BusyPerOp: 180, WaitNS: 80_000, LockEvery: 3},
	"memcached":    {shape: shMemcached, BusyPerOp: 140, WaitNS: 40_000, LockEvery: 1},
	"sqlite":       {shape: shSQLite, BusyPerOp: 240, WaitNS: 70_000, LockEvery: 2},
	"transmission": {shape: shTransmission, BusyPerOp: 200, WaitNS: 90_000, LockEvery: 4},
	"pbzip2":       {shape: shPbzip2, BusyPerOp: 900, WaitNS: 8_000, LockEvery: 8},
	"aget":         {shape: shAget, BusyPerOp: 160, WaitNS: 100_000, LockEvery: 4},
}

// PerfSystems returns the C/C++ systems with throughput workloads
// (the Figure 8 benchmark set), sorted.
func PerfSystems() []string {
	out := make([]string, 0, len(perfProfiles))
	for name := range perfProfiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Perf builds the throughput workload of one system: `threads` worker
// threads each performing `ops` operations (busy compute + simulated
// I/O wait + occasional shared-stats locking). The module is
// bug-free; it exists to measure tracing overhead.
func Perf(system string, threads, ops int) *ir.Module {
	prof, ok := perfProfiles[system]
	if !ok {
		panic("corpus: no perf profile for " + system)
	}
	sh := prof.shape
	id := fmt.Sprintf("%s-perf-t%d", system, threads)
	b := ir.NewBuilder(id)
	statsMu := b.Global("stats_lock", ir.Mutex)
	opsDone := b.Global("ops_done", ir.Int)
	busy := addBusy(b)

	w := b.Func("op_worker", ir.Void)
	n := w.Param("n", ir.Int)
	entry := w.Block("entry")
	loop := w.Block("loop")
	body := w.Block("body")
	stats := w.Block("stats")
	skip := w.Block("skip")
	done := w.Block("done")

	i := entry.Alloca(ir.Int)
	entry.Store(ir.ConstInt(0), i)
	entry.Br(loop)

	iv := loop.Load(i)
	loop.CondBr(loop.Lt(iv, n), body, done)

	body.Call(busy.Ref(), ir.ConstInt(prof.BusyPerOp))
	body.SleepNS(prof.WaitNS)
	rem := body.Bin(ir.Rem, body.Load(i), ir.ConstInt(prof.LockEvery))
	body.CondBr(body.Eq(rem, ir.ConstInt(0)), stats, skip)

	stats.Lock(statsMu)
	stats.Store(stats.Add(stats.Load(opsDone), ir.ConstInt(1)), opsDone)
	stats.Unlock(statsMu)
	stats.Br(skip)

	skip.Store(skip.Add(skip.Load(i), ir.ConstInt(1)), i)
	skip.Br(loop)

	done.RetVoid()

	m := b.Func("main", ir.Void)
	me := m.Block("entry")
	tids := make([]*ir.Reg, threads)
	for t := 0; t < threads; t++ {
		tids[t] = me.Spawn(w.Ref(), ir.ConstInt(int64(ops)))
	}
	for _, tid := range tids {
		me.Join(tid)
	}
	me.RetVoid()

	addCold(b, sh, sh.Cold/4)
	mod, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("corpus: perf module %s does not verify: %v", id, err))
	}
	return mod
}
