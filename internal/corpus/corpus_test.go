package corpus

import (
	"testing"

	"snorlax/internal/ir"
	"snorlax/internal/pattern"
	"snorlax/internal/vm"
)

func TestCorpusCensus(t *testing.T) {
	all := All()
	if len(all) != 54 {
		t.Fatalf("corpus has %d bugs, want 54 (the paper's study size)", len(all))
	}
	if got := len(Systems()); got != 13 {
		t.Errorf("systems = %d, want 13", got)
	}
	kinds := map[pattern.Kind]int{}
	langs := map[Lang]int{}
	for _, b := range all {
		kinds[b.Kind]++
		langs[b.Lang]++
	}
	if kinds[pattern.KindDeadlock] != 14 ||
		kinds[pattern.KindOrderViolation] != 18 ||
		kinds[pattern.KindAtomicityViolation] != 22 {
		t.Errorf("kind distribution = %v", kinds)
	}
	if langs[LangC] != 29 || langs[LangJava] != 25 {
		t.Errorf("lang distribution = %v", langs)
	}
	if got := len(EvalSet()); got != 11 {
		t.Errorf("eval set = %d bugs, want 11 (the paper's §6 set)", got)
	}
	for _, b := range EvalSet() {
		if b.Lang != LangC {
			t.Errorf("%s: eval bug must be C/C++ (Snorlax analyzes clang builds)", b.ID)
		}
	}
}

func TestLookups(t *testing.T) {
	if ByID("pbzip2-1") == nil {
		t.Error("ByID(pbzip2-1) missing")
	}
	if ByID("nope-0") != nil {
		t.Error("ByID(nope-0) should be nil")
	}
	if got := len(BySystem("mysql")); got != 6 {
		t.Errorf("mysql bugs = %d, want 6", got)
	}
	if got := len(ByKind(pattern.KindDeadlock)); got != 14 {
		t.Errorf("deadlocks = %d, want 14", got)
	}
}

func TestAllBugsReproduceAndVerify(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			inst := b.Build(Variant{Failing: true})
			if inst.Mod == nil || !inst.Mod.Finalized() {
				t.Fatal("module not built/finalized")
			}
			res := vm.Run(inst.Mod, vm.Config{Seed: 1})
			if !res.Failed() {
				t.Fatal("failing variant did not fail")
			}
			wantKind := vm.FailCrash
			if b.Kind == pattern.KindDeadlock {
				wantKind = vm.FailDeadlock
			}
			if res.Failure.Kind != wantKind {
				t.Fatalf("failure kind = %v, want %v (%s)", res.Failure.Kind, wantKind, res.Failure.Msg)
			}
			if b.Kind == pattern.KindDeadlock && len(res.Failure.DeadlockPCs) == 0 {
				t.Error("deadlock without cycle PCs")
			}
		})
	}
}

func TestAllBugsSuccessVariantsSucceed(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			inst := b.Build(Variant{Failing: false})
			for seed := int64(1); seed <= 2; seed++ {
				res := vm.Run(inst.Mod, vm.Config{Seed: seed})
				if res.Failed() {
					t.Fatalf("seed %d: success variant failed: %v", seed, res.Failure)
				}
			}
		})
	}
}

func TestVariantLayoutInvariance(t *testing.T) {
	for _, b := range All() {
		fail := b.Build(Variant{Failing: true})
		ok := b.Build(Variant{Failing: false, JitterPct: 10})
		if fail.Mod.NumInstrs() != ok.Mod.NumInstrs() {
			t.Errorf("%s: instruction count differs across variants: %d vs %d",
				b.ID, fail.Mod.NumInstrs(), ok.Mod.NumInstrs())
		}
		if len(fail.TruthPCs) != len(ok.TruthPCs) {
			t.Errorf("%s: truth PC count differs", b.ID)
			continue
		}
		for i := range fail.TruthPCs {
			if fail.TruthPCs[i] != ok.TruthPCs[i] {
				t.Errorf("%s: truth PC %d differs across variants: %d vs %d",
					b.ID, i, fail.TruthPCs[i], ok.TruthPCs[i])
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	b := ByID("mysql-3")
	m1 := ir.Print(b.Build(Variant{Failing: true}).Mod)
	m2 := ir.Print(b.Build(Variant{Failing: true}).Mod)
	if m1 != m2 {
		t.Error("Build is not deterministic")
	}
}

func TestGapCalibration(t *testing.T) {
	// Every bug's measured inter-event gap must be within 40% of its
	// designed gap, and never below the paper's 91 µs floor minus
	// jitter headroom.
	for _, b := range All() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			inst := b.Build(Variant{Failing: true})
			gaps, res := Gaps(inst, 1)
			if gaps == nil {
				t.Fatalf("incomplete watch events (failure: %v)", res.Failure)
			}
			targets := []int64{b.GapNS}
			if b.GapNS2 > 0 {
				targets = append(targets, b.GapNS2)
			}
			if len(gaps) < len(targets) {
				t.Fatalf("measured %d gaps, want >= %d", len(gaps), len(targets))
			}
			for i, want := range targets {
				got := gaps[i]
				lo, hi := want*6/10, want*14/10
				if got < lo || got > hi {
					t.Errorf("gap %d = %dns, want within [%d, %d] (designed %d)",
						i, got, lo, hi, want)
				}
			}
		})
	}
}

func TestMeasureBugStats(t *testing.T) {
	b := ByID("pbzip2-1")
	st := MeasureBug(b, 10)
	if st.Runs < 8 {
		t.Fatalf("only %d/10 runs measured", st.Runs)
	}
	if len(st.Mean) != 1 {
		t.Fatalf("mean gaps = %v", st.Mean)
	}
	if st.Mean[0] < 80_000 || st.Mean[0] > 250_000 {
		t.Errorf("pbzip2-1 mean gap = %.0fns, designed 140000", st.Mean[0])
	}
	if st.Min <= 0 {
		t.Error("min gap not recorded")
	}
	if st.Std[0] < 0 {
		t.Error("negative std")
	}
}

func TestTruthPCsPointAtRightOpcodes(t *testing.T) {
	for _, b := range All() {
		inst := b.Build(Variant{Failing: true})
		for i, pc := range inst.TruthPCs {
			in := inst.Mod.InstrAt(pc)
			var okOp bool
			switch b.Kind {
			case pattern.KindDeadlock:
				okOp = in.Op() == ir.OpLock
			default:
				okOp = in.Op() == ir.OpLoad || in.Op() == ir.OpStore
			}
			if !okOp {
				t.Errorf("%s: truth PC %d is %s", b.ID, i, in)
			}
		}
		wantLen := map[pattern.Kind]int{
			pattern.KindOrderViolation:     2,
			pattern.KindAtomicityViolation: 3,
		}
		if b.Kind != pattern.KindDeadlock && len(inst.TruthPCs) != wantLen[b.Kind] {
			t.Errorf("%s: truth PCs = %d", b.ID, len(inst.TruthPCs))
		}
	}
}

func TestColdCodeDominatesModuleSize(t *testing.T) {
	// MySQL's module must be much larger than aget's, mirroring the
	// real systems' size gap that drives the Table 4 speedups.
	big := ByID("mysql-3").Build(Variant{Failing: true}).Mod.NumInstrs()
	small := ByID("aget-1").Build(Variant{Failing: true}).Mod.NumInstrs()
	if big < small*10 {
		t.Errorf("mysql module (%d instrs) not ≫ aget module (%d instrs)", big, small)
	}
}

func TestPerfModulesRun(t *testing.T) {
	for _, sys := range PerfSystems() {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			mod := Perf(sys, 2, 10)
			res := vm.Run(mod, vm.Config{Seed: 1})
			if res.Failed() {
				t.Fatalf("perf workload failed: %v", res.Failure)
			}
			if res.MaxThreads != 3 {
				t.Errorf("MaxThreads = %d, want 3", res.MaxThreads)
			}
		})
	}
	if len(PerfSystems()) != 7 {
		t.Errorf("perf systems = %d, want 7", len(PerfSystems()))
	}
}

func TestPerfScalesThreads(t *testing.T) {
	mod := Perf("memcached", 8, 4)
	res := vm.Run(mod, vm.Config{Seed: 2})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	if res.MaxThreads != 9 {
		t.Errorf("MaxThreads = %d, want 9", res.MaxThreads)
	}
}
