package corpus

import (
	"math"

	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

// Gaps executes an instance while timestamping its target
// instructions (the §3.2 methodology: timestamps injected as
// immediate predecessors of target instructions) and returns the time
// elapsed between consecutive target events, in watch order.
//
// The first watch event per PC is used: for a blocked lock attempt
// the first execution is the attempt that blocked; loads and stores
// in the corpus execute their target instance exactly once.
//
// For deadlocks the returned slice holds ΔT between successive lock
// attempts (Figure 1.a); for order violations one ΔT (Figure 1.b);
// for atomicity violations ΔT1 and ΔT2 (Figure 1.c). The vm.Result is
// returned so callers can check the failure outcome.
func Gaps(inst *Instance, seed int64) ([]int64, *vm.Result) {
	watch := make(map[ir.PC]bool, len(inst.WatchPCs))
	for _, pc := range inst.WatchPCs {
		watch[pc] = true
	}
	res := vm.Run(inst.Mod, vm.Config{Seed: seed, WatchPCs: watch})

	// First occurrence per (PC, thread): a watch PC may be the same
	// static instruction executed by several threads (e.g. both sides
	// of a deadlock blocking in one shared routine).
	type key struct {
		pc  ir.PC
		tid int
	}
	seen := make(map[key]bool)
	perPC := make(map[ir.PC][]int64)
	for _, ev := range res.Watch {
		k := key{ev.PC, ev.Thread}
		if seen[k] {
			continue
		}
		seen[k] = true
		perPC[ev.PC] = append(perPC[ev.PC], ev.Time)
	}
	cursor := make(map[ir.PC]int)
	var times []int64
	for _, pc := range inst.WatchPCs {
		evs := perPC[pc]
		i := cursor[pc]
		if i >= len(evs) {
			return nil, res
		}
		cursor[pc] = i + 1
		times = append(times, evs[i])
	}
	gaps := make([]int64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		d := times[i] - times[i-1]
		if d < 0 {
			d = -d
		}
		gaps = append(gaps, d)
	}
	return gaps, res
}

// GapStats aggregates Gaps over several runs with per-run jitter,
// mirroring the paper's 10-run averages with standard deviations.
type GapStats struct {
	// Mean and Std are per gap position (ΔT, or ΔT1/ΔT2).
	Mean []float64
	Std  []float64
	// Min is the smallest single gap observed anywhere.
	Min int64
	// Runs is the number of successful measurements.
	Runs int
}

// MeasureBug reproduces a bug `runs` times with varying jitter and
// returns gap statistics. Runs whose watch events are incomplete
// (the failure preempted a target instruction) are skipped.
func MeasureBug(b *Bug, runs int) GapStats {
	jitters := []int64{0, 8, -7, 15, -12, 21, -18, 5, -3, 12, -9, 18}
	var all [][]int64
	min := int64(0)
	for r := 0; r < runs; r++ {
		inst := b.Build(Variant{Failing: true, JitterPct: jitters[r%len(jitters)]})
		gaps, _ := Gaps(inst, int64(r)+1)
		if gaps == nil {
			continue
		}
		all = append(all, gaps)
		for _, g := range gaps {
			if min == 0 || g < min {
				min = g
			}
		}
	}
	st := GapStats{Min: min, Runs: len(all)}
	if len(all) == 0 {
		return st
	}
	nGaps := len(all[0])
	st.Mean = make([]float64, nGaps)
	st.Std = make([]float64, nGaps)
	for i := 0; i < nGaps; i++ {
		var sum float64
		for _, gaps := range all {
			sum += float64(gaps[i])
		}
		mean := sum / float64(len(all))
		var varSum float64
		for _, gaps := range all {
			d := float64(gaps[i]) - mean
			varSum += d * d
		}
		st.Mean[i] = mean
		if len(all) > 1 {
			st.Std[i] = math.Sqrt(varSum / float64(len(all)-1))
		}
	}
	return st
}
