// Package corpus provides the 54 reproducible concurrency bugs in 13
// synthetic systems used to evaluate the coarse interleaving
// hypothesis (§3, Tables 1–3) and the Snorlax pipeline (§6).
//
// The paper's study reproduces real bugs in MySQL, Apache httpd,
// memcached, SQLite, Transmission, pbzip2, aget, the JDK, Derby,
// Groovy, DBCP, Log4j and Lucene. Those systems and their production
// traces are not available here, so each bug is a synthetic program
// (DESIGN.md §2) built from the bug's published archetype — ABBA and
// ring deadlocks, use-after-free and read-before-init order
// violations, and RWR/WWR/RWW single-variable atomicity violations —
// dressed in the host system's domain (connection pools, request
// workers, cache eviction, …) with inter-event gaps calibrated to the
// ranges the paper measured (91 µs – 3.5 ms).
//
// Every bug builds in two variants with identical instruction layout:
// a failing variant whose delays force the buggy interleaving and a
// successful variant whose delays avoid it. Identical layout means
// identical PCs, so pattern keys carry across variants — exactly the
// property Snorlax relies on when it collects traces from successful
// production executions at a previous failure's PC (step 8).
package corpus

import (
	"fmt"
	"sort"

	"snorlax/internal/ir"
	"snorlax/internal/pattern"
)

// Lang tags the implementation language of the original system; the
// Snorlax prototype (§6) evaluates only the C/C++ systems, while the
// hypothesis study (§3) covers both.
type Lang int

// The corpus languages.
const (
	LangC Lang = iota
	LangJava
)

func (l Lang) String() string {
	if l == LangJava {
		return "Java"
	}
	return "C/C++"
}

// Variant selects which interleaving a build produces.
type Variant struct {
	// Failing selects the delays that force the buggy interleaving.
	Failing bool
	// JitterPct scales every designed delay by (100+JitterPct)%,
	// modeling run-to-run variance; the hypothesis study uses a
	// different jitter per run to obtain realistic standard
	// deviations. Range: roughly ±25.
	JitterPct int64
}

// Instance is one built bug program plus its ground truth.
type Instance struct {
	Mod *ir.Module
	// TruthKind/TruthSub/TruthPCs describe the manually-verified root
	// cause: the pattern a correct diagnosis must report.
	TruthKind pattern.Kind
	TruthSub  string
	TruthPCs  []ir.PC
	// TruthAbsence marks reversed order violations (failing access
	// first).
	TruthAbsence bool
	// WatchPCs are the target instructions instrumented for the ΔT
	// measurements of Tables 1–3, in pattern order.
	WatchPCs []ir.PC
}

// Bug is one corpus entry.
type Bug struct {
	// System is the host system's name (lowercase, e.g. "mysql").
	System string
	// ID is the synthetic bug-tracker id, e.g. "mysql-1".
	ID   string
	Kind pattern.Kind
	Lang Lang
	// Eval marks the 11 C/C++ bugs in the Snorlax evaluation set
	// (§6.1); the remaining bugs participate only in the hypothesis
	// study.
	Eval bool
	// GapNS is the designed inter-event gap (ΔT in Figure 1); for
	// atomicity violations it is ΔT1, and GapNS2 is ΔT2.
	GapNS  int64
	GapNS2 int64
	// Description explains the injected bug in the host's domain.
	Description string

	build func(v Variant) *Instance
}

// Build constructs the bug's program for the given variant.
func (b *Bug) Build(v Variant) *Instance { return b.build(v) }

func (b *Bug) String() string { return b.ID }

var registry []*Bug

func register(b *Bug) *Bug {
	for _, old := range registry {
		if old.ID == b.ID {
			panic("corpus: duplicate bug id " + b.ID)
		}
	}
	registry = append(registry, b)
	return b
}

// All returns every corpus bug, ordered by system then id.
func All() []*Bug {
	out := append([]*Bug(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].System != out[j].System {
			return out[i].System < out[j].System
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// EvalSet returns the bugs in the Snorlax evaluation set (§6).
func EvalSet() []*Bug {
	var out []*Bug
	for _, b := range All() {
		if b.Eval {
			out = append(out, b)
		}
	}
	return out
}

// ByID returns the named bug, or nil.
func ByID(id string) *Bug {
	for _, b := range registry {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// BySystem returns the bugs of one system.
func BySystem(system string) []*Bug {
	var out []*Bug
	for _, b := range All() {
		if b.System == system {
			out = append(out, b)
		}
	}
	return out
}

// ByKind returns the bugs of one kind, ordered.
func ByKind(kind pattern.Kind) []*Bug {
	var out []*Bug
	for _, b := range All() {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

// Systems returns the distinct system names, sorted.
func Systems() []string {
	seen := map[string]bool{}
	var out []string
	for _, b := range registry {
		if !seen[b.System] {
			seen[b.System] = true
			out = append(out, b.System)
		}
	}
	sort.Strings(out)
	return out
}

// scale applies the variant's jitter to a designed delay.
func scale(ns int64, v Variant) int64 {
	out := ns * (100 + v.JitterPct) / 100
	if out < 1 {
		out = 1
	}
	return out
}

// lastInstr returns the most recently emitted instruction of a block
// builder — how generators capture the PCs of target instructions.
func lastInstr(bb *ir.BlockBuilder) ir.Instr {
	ins := bb.Block().Instrs
	return ins[len(ins)-1]
}

// pcs resolves captured instructions to their PCs after Finalize.
func pcs(ins ...ir.Instr) []ir.PC {
	out := make([]ir.PC, len(ins))
	for i, in := range ins {
		out[i] = in.PC()
	}
	return out
}

func mustBuild(b *ir.Builder, id string) *ir.Module {
	m, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("corpus: bug %s does not verify: %v", id, err))
	}
	return m
}
