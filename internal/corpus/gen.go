package corpus

import (
	"fmt"

	"snorlax/internal/ir"
	"snorlax/internal/pattern"
)

// shape carries the domain dressing and size of a host system: the
// names give the synthetic bug the vocabulary of the real system
// (queues, connections, caches, …) and Cold controls how much
// never-executed library code the module carries — the mass that
// makes scope restriction (§4.2) and the Table 4 speedups meaningful.
type shape struct {
	System string
	// Struct/Field/Global name the shared state in domain terms.
	Struct string
	Field  string
	Global string
	// Workers name the racing thread functions.
	Workers [3]string
	// Cold is the number of never-executed library functions.
	Cold int
	// Busy is the iteration count of the busy() calls threads run
	// between protocol steps, generating realistic trace traffic.
	Busy int64
}

// addBusy defines the busy(n) helper: a branchy compute loop standing
// in for real per-request work (parsing, hashing, compression).
func addBusy(b *ir.Builder) *ir.FuncBuilder {
	f := b.Func("busy", ir.Int)
	n := f.Param("n", ir.Int)
	entry := f.Block("entry")
	loop := f.Block("loop")
	body := f.Block("body")
	odd := f.Block("odd")
	even := f.Block("even")
	next := f.Block("next")
	done := f.Block("done")

	acc := entry.Alloca(ir.Int)
	i := entry.Alloca(ir.Int)
	entry.Store(ir.ConstInt(0), acc)
	entry.Store(ir.ConstInt(0), i)
	entry.Br(loop)

	iv := loop.Load(i)
	loop.CondBr(loop.Lt(iv, n), body, done)

	r := body.Bin(ir.Rem, body.Load(i), ir.ConstInt(2))
	body.CondBr(body.Eq(r, ir.ConstInt(1)), odd, even)

	odd.Store(odd.Add(odd.Load(acc), odd.Mul(odd.Load(i), ir.ConstInt(3))), acc)
	odd.Br(next)
	even.Store(even.Add(even.Load(acc), ir.ConstInt(7)), acc)
	even.Br(next)

	next.Store(next.Add(next.Load(i), ir.ConstInt(1)), i)
	next.Br(loop)

	done.Ret(done.Load(acc))
	return f
}

// addCold appends n never-executed library functions plus the cold
// state they manipulate. They form a call chain with loops, loads and
// stores so whole-program pointer analysis has real work to do on
// them — work the hybrid analysis skips.
func addCold(b *ir.Builder, sh shape, n int) {
	if n <= 0 {
		return
	}
	st := b.Struct(sh.Struct+"Meta", ir.Field{Name: "refs", Type: ir.Int},
		ir.Field{Name: "next", Type: ir.PtrTo(ir.Int)})
	// One pool global per 8 library functions: real libraries have
	// clustered, not global, aliasing.
	var pool *ir.GlobalRef
	var prev *ir.FuncBuilder
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			pool = b.Global(fmt.Sprintf("%s_meta_pool_%d", sh.System, i/8), ir.PtrTo(st))
		}
		f := b.Func(fmt.Sprintf("%s_lib_%d", sh.System, i), ir.Int)
		x := f.Param("x", ir.Int)
		entry := f.Block("entry")
		hot := f.Block("work")
		done := f.Block("done")

		m := entry.New(st)
		entry.Store(m, pool)
		myRefs := entry.FieldAddr(m, "refs")
		entry.CondBr(entry.Lt(x, ir.ConstInt(100)), hot, done)

		p := hot.Load(pool)
		refs := hot.FieldAddr(p, "refs")
		hot.Store(hot.Add(hot.Load(refs), x), refs)
		if prev != nil {
			r := hot.Call(prev.Ref(), hot.Add(x, ir.ConstInt(1)))
			hot.Store(r, refs)
		}
		hot.Br(done)

		done.Ret(done.Load(myRefs))
		prev = f
	}
}

// addProbe defines and returns a metrics/debug thread that reads the
// shared slot through a C-style cast — the type punning of the
// paper's Figure 4. Its accesses alias the slot in the points-to
// analysis but operate on a mismatched type, so type-based ranking
// demotes them to rank 2: exactly the candidates ranking exists to
// deprioritize.
func addProbe(b *ir.Builder, busy *ir.FuncBuilder, slot *ir.GlobalRef, iters int64) *ir.FuncBuilder {
	f := b.Func("metrics_probe", ir.Void)
	entry := f.Block("entry")
	loop := f.Block("loop")
	body := f.Block("body")
	done := f.Block("done")

	i := entry.Alloca(ir.Int)
	entry.Store(ir.ConstInt(0), i)
	raw := entry.Cast(slot, ir.PtrTo(ir.Bool))
	entry.Br(loop)

	iv := loop.Load(i)
	loop.CondBr(loop.Lt(iv, ir.ConstInt(iters)), body, done)

	v := body.Load(raw)
	body.Store(v, raw) // benign rewrite: checksum bookkeeping
	body.Call(busy.Ref(), ir.ConstInt(20))
	body.SleepNS(40_000)
	body.Store(body.Add(body.Load(i), ir.ConstInt(1)), i)
	body.Br(loop)

	done.RetVoid()
	return f
}

// genOrderUAF builds a use-after-free order violation (Figure 1.b,
// write first): the main thread frees/nulls the shared object while a
// worker still dereferences it. The pbzip2 archetype.
func genOrderUAF(sh shape, gap int64, id string) func(Variant) *Instance {
	return func(v Variant) *Instance {
		b := ir.NewBuilder(id)
		st := b.Struct(sh.Struct, ir.Field{Name: sh.Field, Type: ir.Int})
		g := b.Global(sh.Global, ir.PtrTo(st))
		busy := addBusy(b)

		baseA := scale(150_000, v)
		workerB := baseA + scale(gap, v)
		if !v.Failing {
			workerB = scale(30_000, v)
		}

		w := b.Func(sh.Workers[0], ir.Void)
		we := w.Block("entry")
		we.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		we.SleepNS(workerB)
		p := we.Load(g)
		loadInstr := lastInstr(we)
		fa := we.FieldAddr(p, sh.Field)
		we.Load(fa)
		we.RetVoid()

		probe := addProbe(b, busy, g, 2)
		m := b.Func("main", ir.Void)
		me := m.Block("entry")
		obj := me.New(st)
		me.Store(me.Add(ir.ConstInt(0), ir.ConstInt(1)), me.FieldAddr(obj, sh.Field))
		me.Store(obj, g)
		tid := me.Spawn(w.Ref())
		ptid := me.Spawn(probe.Ref())
		me.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		me.SleepNS(baseA)
		me.Store(ir.Null(ir.PtrTo(st)), g)
		nullStore := lastInstr(me)
		me.Join(tid)
		me.Join(ptid)
		me.RetVoid()

		addCold(b, sh, sh.Cold)
		mod := mustBuild(b, id)
		return &Instance{
			Mod:       mod,
			TruthKind: pattern.KindOrderViolation,
			TruthSub:  "WR",
			TruthPCs:  pcs(nullStore, loadInstr),
			WatchPCs:  pcs(nullStore, loadInstr),
		}
	}
}

// genOrderInit builds a read-before-init order violation (Figure 1.b,
// read first): a worker consumes a shared pointer before the main
// thread has published it. The crash surfaces at a later dereference,
// after the write has also executed, so both target events appear in
// the failing trace.
func genOrderInit(sh shape, gap int64, id string) func(Variant) *Instance {
	return func(v Variant) *Instance {
		b := ir.NewBuilder(id)
		st := b.Struct(sh.Struct, ir.Field{Name: sh.Field, Type: ir.Int})
		g := b.Global(sh.Global, ir.PtrTo(st))
		busy := addBusy(b)

		baseA := scale(gap, v) + scale(120_000, v)
		workerB := baseA - scale(gap, v)
		if !v.Failing {
			workerB = baseA + scale(gap, v)
		}
		deferNS := scale(gap, v)*2 + scale(100_000, v)

		w := b.Func(sh.Workers[0], ir.Void)
		we := w.Block("entry")
		we.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		we.SleepNS(workerB)
		p := we.Load(g)
		loadInstr := lastInstr(we)
		we.SleepNS(deferNS)
		fa := we.FieldAddr(p, sh.Field)
		we.Load(fa)
		we.RetVoid()

		m := b.Func("main", ir.Void)
		me := m.Block("entry")
		tid := me.Spawn(w.Ref())
		me.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		me.SleepNS(baseA)
		obj := me.New(st)
		me.Store(obj, g)
		initStore := lastInstr(me)
		me.Join(tid)
		me.RetVoid()

		addCold(b, sh, sh.Cold)
		mod := mustBuild(b, id)
		return &Instance{
			Mod:          mod,
			TruthKind:    pattern.KindOrderViolation,
			TruthSub:     "RW",
			TruthPCs:     pcs(loadInstr, initStore),
			TruthAbsence: true,
			WatchPCs:     pcs(loadInstr, initStore),
		}
	}
}

// genDeadlockABBA builds the two-lock two-thread deadlock of
// Figure 1.a on two global locks.
func genDeadlockABBA(sh shape, gap int64, id string) func(Variant) *Instance {
	return func(v Variant) *Instance {
		b := ir.NewBuilder(id)
		l1 := b.Global(sh.Global+"_lock", ir.Mutex)
		l2 := b.Global(sh.Global+"_log_lock", ir.Mutex)
		busy := addBusy(b)

		hold1 := scale(250_000, v)
		stagger := scale(30_000, v)
		hold2 := hold1 + scale(gap, v) - stagger
		if !v.Failing {
			// The second worker starts only after the first has fully
			// released both locks (generously past its busy phase).
			hold1, hold2 = 1, 1
			stagger = scale(500_000, v)
		}

		mkWorker := func(name string, first, second *ir.GlobalRef, start, hold int64) (*ir.FuncBuilder, ir.Instr, ir.Instr) {
			f := b.Func(name, ir.Void)
			e := f.Block("entry")
			e.SleepNS(start)
			e.Lock(first)
			held := lastInstr(e)
			e.Call(busy.Ref(), ir.ConstInt(sh.Busy))
			e.SleepNS(hold)
			e.Lock(second)
			attempt := lastInstr(e)
			e.Unlock(second)
			e.Unlock(first)
			e.RetVoid()
			return f, held, attempt
		}
		w1, held1, att1 := mkWorker(sh.Workers[0], l1, l2, 1, hold1)
		w2, held2, att2 := mkWorker(sh.Workers[1], l2, l1, stagger, hold2)

		m := b.Func("main", ir.Void)
		me := m.Block("entry")
		t1 := me.Spawn(w1.Ref())
		t2 := me.Spawn(w2.Ref())
		me.Join(t1)
		me.Join(t2)
		me.RetVoid()

		addCold(b, sh, sh.Cold)
		mod := mustBuild(b, id)
		return &Instance{
			Mod:       mod,
			TruthKind: pattern.KindDeadlock,
			TruthSub:  "DL2",
			TruthPCs:  pcs(held1, att1, held2, att2),
			WatchPCs:  pcs(att1, att2),
		}
	}
}

// genDeadlockStruct builds the ABBA deadlock through a shared
// transfer(from, to) routine locking mutexes embedded in heap
// objects — both threads block at the same static lock instruction,
// exercising the points-to analysis across call sites.
func genDeadlockStruct(sh shape, gap int64, id string) func(Variant) *Instance {
	return func(v Variant) *Instance {
		b := ir.NewBuilder(id)
		st := b.Struct(sh.Struct,
			ir.Field{Name: "guard", Type: ir.Mutex},
			ir.Field{Name: sh.Field, Type: ir.Int})
		ga := b.Global(sh.Global+"_a", ir.PtrTo(st))
		gb := b.Global(sh.Global+"_b", ir.PtrTo(st))
		busy := addBusy(b)

		hold1 := scale(300_000, v)
		stagger := scale(40_000, v)
		hold2 := hold1 + scale(gap, v) - stagger
		if !v.Failing {
			hold1, hold2 = 1, 1
			stagger = scale(500_000, v)
		}

		tr := b.Func("transfer", ir.Void)
		from := tr.Param("from", ir.PtrTo(st))
		to := tr.Param("to", ir.PtrTo(st))
		hold := tr.Param("hold", ir.Int)
		te := tr.Block("entry")
		fm := te.FieldAddr(from, "guard")
		te.Lock(fm)
		held := lastInstr(te)
		te.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		te.Sleep(hold)
		tm := te.FieldAddr(to, "guard")
		te.Lock(tm)
		attempt := lastInstr(te)
		bal := te.FieldAddr(to, sh.Field)
		te.Store(te.Add(te.Load(bal), ir.ConstInt(10)), bal)
		te.Unlock(tm)
		te.Unlock(fm)
		te.RetVoid()

		mkWorker := func(name string, x, y *ir.GlobalRef, start, holdNS int64) *ir.FuncBuilder {
			f := b.Func(name, ir.Void)
			e := f.Block("entry")
			e.SleepNS(start)
			px := e.Load(x)
			py := e.Load(y)
			e.Call(tr.Ref(), px, py, ir.ConstInt(holdNS))
			e.RetVoid()
			return f
		}
		w1 := mkWorker(sh.Workers[0], ga, gb, 1, hold1)
		w2 := mkWorker(sh.Workers[1], gb, ga, stagger, hold2)

		m := b.Func("main", ir.Void)
		me := m.Block("entry")
		me.Store(me.New(st), ga)
		me.Store(me.New(st), gb)
		t1 := me.Spawn(w1.Ref())
		t2 := me.Spawn(w2.Ref())
		me.Join(t1)
		me.Join(t2)
		me.RetVoid()

		addCold(b, sh, sh.Cold)
		mod := mustBuild(b, id)
		return &Instance{
			Mod:       mod,
			TruthKind: pattern.KindDeadlock,
			TruthSub:  "DL2",
			TruthPCs:  pcs(held, attempt, held, attempt),
			WatchPCs:  pcs(attempt, attempt),
		}
	}
}

// genDeadlockRing builds a three-thread circular deadlock: worker i
// holds lock i and wants lock (i+1) mod 3.
func genDeadlockRing(sh shape, gap int64, id string) func(Variant) *Instance {
	return func(v Variant) *Instance {
		b := ir.NewBuilder(id)
		locks := []*ir.GlobalRef{
			b.Global(sh.Global+"_l0", ir.Mutex),
			b.Global(sh.Global+"_l1", ir.Mutex),
			b.Global(sh.Global+"_l2", ir.Mutex),
		}
		busy := addBusy(b)

		base := scale(300_000, v)
		var helds, attempts [3]ir.Instr
		var workers [3]*ir.FuncBuilder
		for i := 0; i < 3; i++ {
			start := int64(1) + int64(i)*scale(25_000, v)
			hold := base + int64(i)*scale(gap, v) - start
			if !v.Failing {
				hold = 1
				start = int64(1) + int64(i)*scale(600_000, v)
			}
			f := b.Func(sh.Workers[i], ir.Void)
			e := f.Block("entry")
			e.SleepNS(start)
			e.Lock(locks[i])
			helds[i] = lastInstr(e)
			e.Call(busy.Ref(), ir.ConstInt(sh.Busy))
			e.SleepNS(hold)
			e.Lock(locks[(i+1)%3])
			attempts[i] = lastInstr(e)
			e.Unlock(locks[(i+1)%3])
			e.Unlock(locks[i])
			e.RetVoid()
			workers[i] = f
		}

		m := b.Func("main", ir.Void)
		me := m.Block("entry")
		var tids [3]*ir.Reg
		for i := 0; i < 3; i++ {
			tids[i] = me.Spawn(workers[i].Ref())
		}
		for i := 0; i < 3; i++ {
			me.Join(tids[i])
		}
		me.RetVoid()

		addCold(b, sh, sh.Cold)
		mod := mustBuild(b, id)
		return &Instance{
			Mod:       mod,
			TruthKind: pattern.KindDeadlock,
			TruthSub:  "DL3",
			TruthPCs: pcs(helds[0], attempts[0], helds[1], attempts[1],
				helds[2], attempts[2]),
			WatchPCs: pcs(attempts[0], attempts[1], attempts[2]),
		}
	}
}

// genAtomRWR builds a check-then-use atomicity violation: the worker
// validates the shared pointer, another thread nulls it, the worker
// uses it.
func genAtomRWR(sh shape, gap1, gap2 int64, id string) func(Variant) *Instance {
	return func(v Variant) *Instance {
		b := ir.NewBuilder(id)
		st := b.Struct(sh.Struct, ir.Field{Name: sh.Field, Type: ir.Int})
		g := b.Global(sh.Global, ir.PtrTo(st))
		busy := addBusy(b)

		workerB := scale(120_000, v)
		mainA := workerB + scale(gap1, v)
		if !v.Failing {
			mainA = workerB + scale(gap1, v) + scale(gap2, v) + scale(150_000, v)
		}

		w := b.Func(sh.Workers[0], ir.Void)
		we := w.Block("entry")
		cont := w.Block("use")
		skip := w.Block("empty")
		we.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		we.SleepNS(workerB)
		p1 := we.Load(g)
		checkLoad := lastInstr(we)
		we.CondBr(we.Eq(p1, ir.ConstInt(0)), skip, cont)
		skip.RetVoid()
		cont.SleepNS(scale(gap1, v) + scale(gap2, v))
		p2 := cont.Load(g)
		useLoad := lastInstr(cont)
		fa := cont.FieldAddr(p2, sh.Field)
		cont.Load(fa)
		cont.RetVoid()

		probe := addProbe(b, busy, g, 2)
		m := b.Func("main", ir.Void)
		me := m.Block("entry")
		me.Store(me.New(st), g)
		tid := me.Spawn(w.Ref())
		ptid := me.Spawn(probe.Ref())
		me.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		me.SleepNS(mainA)
		me.Store(ir.Null(ir.PtrTo(st)), g)
		nullStore := lastInstr(me)
		me.Join(tid)
		me.Join(ptid)
		me.RetVoid()

		addCold(b, sh, sh.Cold)
		mod := mustBuild(b, id)
		return &Instance{
			Mod:       mod,
			TruthKind: pattern.KindAtomicityViolation,
			TruthSub:  "RWR",
			TruthPCs:  pcs(checkLoad, nullStore, useLoad),
			WatchPCs:  pcs(checkLoad, nullStore, useLoad),
		}
	}
}

// genAtomWWR builds a lost-reservation atomicity violation: the
// worker writes its claim, another thread overwrites it, the worker
// rereads and asserts its claim survived.
func genAtomWWR(sh shape, gap1, gap2 int64, id string) func(Variant) *Instance {
	return func(v Variant) *Instance {
		b := ir.NewBuilder(id)
		slot := b.Global(sh.Global+"_owner", ir.Int)
		busy := addBusy(b)

		workerB := scale(100_000, v)
		mainA := workerB + scale(gap1, v)
		if !v.Failing {
			mainA = workerB + scale(gap1, v) + scale(gap2, v) + scale(200_000, v)
		}

		w := b.Func(sh.Workers[0], ir.Void)
		we := w.Block("entry")
		we.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		we.SleepNS(workerB)
		we.Store(ir.ConstInt(7), slot)
		claim := lastInstr(we)
		we.SleepNS(scale(gap1, v) + scale(gap2, v))
		got := we.Load(slot)
		reread := lastInstr(we)
		we.Assert(we.Eq(got, ir.ConstInt(7)), "claim overwritten")
		we.RetVoid()

		probe := addProbe(b, busy, slot, 2)
		m := b.Func("main", ir.Void)
		me := m.Block("entry")
		tid := me.Spawn(w.Ref())
		ptid := me.Spawn(probe.Ref())
		me.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		me.SleepNS(mainA)
		me.Store(ir.ConstInt(99), slot)
		steal := lastInstr(me)
		me.Join(tid)
		me.Join(ptid)
		me.RetVoid()

		addCold(b, sh, sh.Cold)
		mod := mustBuild(b, id)
		return &Instance{
			Mod:       mod,
			TruthKind: pattern.KindAtomicityViolation,
			TruthSub:  "WWR",
			TruthPCs:  pcs(claim, steal, reread),
			WatchPCs:  pcs(claim, steal, reread),
		}
	}
}

// genAtomStaleWrite builds an atomicity violation whose failure is a
// store through a stale pointer: the worker reads the shared cell,
// another thread nulls it, the worker reloads and writes through the
// now-null pointer. The crash is at the store, but its corrupt
// pointer's provenance anchors the diagnosis at the reload — so the
// ground-truth pattern is the RWR triple on the cell, exactly as the
// paper's Figure 6 reasons about read-anchored failures.
func genAtomStaleWrite(sh shape, gap1, gap2 int64, id string) func(Variant) *Instance {
	return func(v Variant) *Instance {
		b := ir.NewBuilder(id)
		cell := b.Global(sh.Global+"_cell", ir.PtrTo(ir.Int))
		busy := addBusy(b)

		workerB := scale(110_000, v)
		mainA := workerB + scale(gap1, v)
		if !v.Failing {
			mainA = workerB + scale(gap1, v) + scale(gap2, v) + scale(180_000, v)
		}

		w := b.Func(sh.Workers[0], ir.Void)
		we := w.Block("entry")
		cont := w.Block("flush")
		skip := w.Block("empty")
		we.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		we.SleepNS(workerB)
		p1 := we.Load(cell)
		firstLoad := lastInstr(we)
		we.CondBr(we.Eq(p1, ir.ConstInt(0)), skip, cont)
		skip.RetVoid()
		cont.SleepNS(scale(gap1, v) + scale(gap2, v))
		p2 := cont.Load(cell)
		reload := lastInstr(cont)
		cont.Store(ir.ConstInt(7), p2)
		cont.RetVoid()

		m := b.Func("main", ir.Void)
		me := m.Block("entry")
		me.Store(me.New(ir.Int), cell)
		tid := me.Spawn(w.Ref())
		me.Call(busy.Ref(), ir.ConstInt(sh.Busy))
		me.SleepNS(mainA)
		me.Store(ir.Null(ir.PtrTo(ir.Int)), cell)
		nullStore := lastInstr(me)
		me.Join(tid)
		me.RetVoid()

		addCold(b, sh, sh.Cold)
		mod := mustBuild(b, id)
		return &Instance{
			Mod:       mod,
			TruthKind: pattern.KindAtomicityViolation,
			TruthSub:  "RWR",
			TruthPCs:  pcs(firstLoad, nullStore, reload),
			WatchPCs:  pcs(firstLoad, nullStore, reload),
		}
	}
}
