package corpus

import "snorlax/internal/pattern"

// The 13 host systems of the paper's study (§3.2), with domain
// vocabulary for the synthetic bugs and a cold-code mass proportional
// to the real system's size (MySQL 650 KLOC … aget 842 LOC).
var (
	shMySQL = shape{System: "mysql", Struct: "TableCache", Field: "rows",
		Global: "open_tables", Workers: [3]string{"insert_worker", "purge_worker", "repl_worker"},
		Cold: 320, Busy: 60}
	shHTTPD = shape{System: "httpd", Struct: "ConnRec", Field: "reqs",
		Global: "active_conns", Workers: [3]string{"worker_thread", "listener_thread", "cleanup_thread"},
		Cold: 150, Busy: 60}
	shMemcached = shape{System: "memcached", Struct: "ItemCache", Field: "hits",
		Global: "lru_head", Workers: [3]string{"get_worker", "evict_worker", "flush_worker"},
		Cold: 25, Busy: 60}
	shSQLite = shape{System: "sqlite", Struct: "BtCursor", Field: "page",
		Global: "shared_cache", Workers: [3]string{"reader_thread", "writer_thread", "checkpoint_thread"},
		Cold: 90, Busy: 60}
	shTransmission = shape{System: "transmission", Struct: "Torrent", Field: "pieces",
		Global: "active_torrent", Workers: [3]string{"peer_worker", "tracker_worker", "verify_worker"},
		Cold: 60, Busy: 60}
	shPbzip2 = shape{System: "pbzip2", Struct: "BlockQueue", Field: "size",
		Global: "fifo", Workers: [3]string{"consumer_thread", "producer_thread", "writer_thread"},
		Cold: 10, Busy: 60}
	shAget = shape{System: "aget", Struct: "Segment", Field: "offset",
		Global: "download_state", Workers: [3]string{"http_worker", "resume_worker", "signal_worker"},
		Cold: 6, Busy: 60}
	shJDK = shape{System: "jdk", Struct: "BufferState", Field: "pos",
		Global: "shared_buffer", Workers: [3]string{"io_thread", "gc_thread", "finalizer_thread"},
		Cold: 200, Busy: 60}
	shDerby = shape{System: "derby", Struct: "TxnTable", Field: "xid",
		Global: "txn_registry", Workers: [3]string{"commit_thread", "abort_thread", "lock_manager"},
		Cold: 120, Busy: 60}
	shGroovy = shape{System: "groovy", Struct: "ClassInfo", Field: "version",
		Global: "class_registry", Workers: [3]string{"compile_thread", "reload_thread", "meta_thread"},
		Cold: 80, Busy: 60}
	shDBCP = shape{System: "dbcp", Struct: "PooledConn", Field: "uses",
		Global: "conn_pool", Workers: [3]string{"borrow_thread", "return_thread", "evictor_thread"},
		Cold: 40, Busy: 60}
	shLog4j = shape{System: "log4j", Struct: "Appender", Field: "events",
		Global: "root_logger", Workers: [3]string{"append_thread", "config_thread", "flush_thread"},
		Cold: 50, Busy: 60}
	shLucene = shape{System: "lucene", Struct: "IndexReader", Field: "docs",
		Global: "segment_infos", Workers: [3]string{"search_thread", "merge_thread", "commit_thread"},
		Cold: 70, Busy: 60}
)

func reg(sh shape, n int, kind pattern.Kind, lang Lang, eval bool,
	gap, gap2 int64, desc string, build func(Variant) *Instance) {
	register(&Bug{
		System:      sh.System,
		ID:          sh.System + "-" + itoa(n),
		Kind:        kind,
		Lang:        lang,
		Eval:        eval,
		GapNS:       gap,
		GapNS2:      gap2,
		Description: desc,
		build:       build,
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

const (
	dl = pattern.KindDeadlock
	ov = pattern.KindOrderViolation
	av = pattern.KindAtomicityViolation
)

func init() {
	// MySQL — 6 bugs (650 KLOC host; biggest cold mass).
	reg(shMySQL, 1, dl, LangC, true, 480_000, 0,
		"lock-order inversion between table-cache and binlog mutexes during concurrent INSERT and replication flush",
		genDeadlockStruct(shMySQL, 480_000, "mysql-1"))
	reg(shMySQL, 2, dl, LangC, false, 900_000, 0,
		"three-way cycle among purge, insert and replication threads over dictionary locks",
		genDeadlockRing(shMySQL, 900_000, "mysql-2"))
	reg(shMySQL, 3, ov, LangC, true, 350_000, 0,
		"purge thread frees a table-cache entry still referenced by an in-flight query",
		genOrderUAF(shMySQL, 350_000, "mysql-3"))
	reg(shMySQL, 4, ov, LangC, false, 260_000, 0,
		"replication worker consumes the relay-log descriptor before the coordinator publishes it",
		genOrderInit(shMySQL, 260_000, "mysql-4"))
	reg(shMySQL, 5, av, LangC, false, 180_000, 200_000,
		"query cache validity check races with invalidation between check and use",
		genAtomRWR(shMySQL, 180_000, 200_000, "mysql-5"))
	reg(shMySQL, 6, av, LangC, false, 240_000, 300_000,
		"thread registers itself in the processlist, a concurrent KILL overwrites the slot before the self-check",
		genAtomWWR(shMySQL, 240_000, 300_000, "mysql-6"))

	// Apache httpd — 5 bugs.
	reg(shHTTPD, 1, dl, LangC, false, 420_000, 0,
		"ABBA inversion between the scoreboard mutex and the accept mutex at graceful restart",
		genDeadlockABBA(shHTTPD, 420_000, "httpd-1"))
	reg(shHTTPD, 2, ov, LangC, false, 550_000, 0,
		"cleanup thread tears down a connection record a worker is still serving",
		genOrderUAF(shHTTPD, 550_000, "httpd-2"))
	reg(shHTTPD, 3, ov, LangC, true, 200_000, 0,
		"worker reads the per-child config pointer before the listener finishes initialization",
		genOrderInit(shHTTPD, 200_000, "httpd-3"))
	reg(shHTTPD, 4, av, LangC, true, 150_000, 160_000,
		"keep-alive check races with connection close between the check and the reuse",
		genAtomRWR(shHTTPD, 150_000, 160_000, "httpd-4"))
	reg(shHTTPD, 5, av, LangC, false, 300_000, 250_000,
		"two workers race to claim the same scoreboard slot and the self-check trips",
		genAtomWWR(shHTTPD, 300_000, 250_000, "httpd-5"))

	// memcached — 4 bugs.
	reg(shMemcached, 1, dl, LangC, false, 380_000, 0,
		"item-lock vs LRU-lock inversion between a get and a concurrent eviction",
		genDeadlockStruct(shMemcached, 380_000, "memcached-1"))
	reg(shMemcached, 2, ov, LangC, true, 300_000, 0,
		"flush_all frees the LRU head while a get worker dereferences it",
		genOrderUAF(shMemcached, 300_000, "memcached-2"))
	reg(shMemcached, 3, av, LangC, false, 120_000, 140_000,
		"item refcount check races with eviction between check and fetch",
		genAtomRWR(shMemcached, 120_000, 140_000, "memcached-3"))
	reg(shMemcached, 4, av, LangC, false, 160_000, 220_000,
		"slab rebalancer nulls the item cell between a worker's validation and write-back",
		genAtomStaleWrite(shMemcached, 160_000, 220_000, "memcached-4"))

	// SQLite — 4 bugs.
	reg(shSQLite, 1, dl, LangC, true, 650_000, 0,
		"shared-cache ABBA inversion between reader and checkpoint over schema and WAL locks",
		genDeadlockABBA(shSQLite, 650_000, "sqlite-1"))
	reg(shSQLite, 2, ov, LangC, false, 450_000, 0,
		"reader uses the shared-cache page pointer before the writer publishes the loaded page",
		genOrderInit(shSQLite, 450_000, "sqlite-2"))
	reg(shSQLite, 3, av, LangC, true, 110_000, 130_000,
		"two connections race on the schema cookie and the staleness self-check trips",
		genAtomWWR(shSQLite, 110_000, 130_000, "sqlite-3"))
	reg(shSQLite, 4, av, LangC, false, 210_000, 260_000,
		"checkpoint nulls the page-cache cell between a cursor's validation and its write-back",
		genAtomStaleWrite(shSQLite, 210_000, 260_000, "sqlite-4"))

	// Transmission — 4 bugs.
	reg(shTransmission, 1, dl, LangC, false, 1_200_000, 0,
		"three-way cycle among peer, tracker and verify threads over torrent locks",
		genDeadlockRing(shTransmission, 1_200_000, "transmission-1"))
	reg(shTransmission, 2, ov, LangC, false, 800_000, 0,
		"torrent removal frees the piece table while a peer worker reads it",
		genOrderUAF(shTransmission, 800_000, "transmission-2"))
	reg(shTransmission, 3, ov, LangC, false, 380_000, 0,
		"verify worker reads the torrent handle before the session thread publishes it (tr-1818 archetype)",
		genOrderInit(shTransmission, 380_000, "transmission-3"))
	reg(shTransmission, 4, av, LangC, true, 170_000, 190_000,
		"bandwidth-group check races with group teardown between check and use",
		genAtomRWR(shTransmission, 170_000, 190_000, "transmission-4"))

	// pbzip2 — 3 bugs.
	reg(shPbzip2, 1, ov, LangC, true, 140_000, 0,
		"main frees the block FIFO while a consumer still dequeues (the classic pbzip2 crash)",
		genOrderUAF(shPbzip2, 140_000, "pbzip2-1"))
	reg(shPbzip2, 2, av, LangC, true, 110_000, 120_000,
		"queue-empty check races with the producer's final block between check and dequeue",
		genAtomRWR(shPbzip2, 110_000, 120_000, "pbzip2-2"))
	reg(shPbzip2, 3, av, LangC, false, 130_000, 150_000,
		"two consumers race to claim the same output slot and the ownership check trips",
		genAtomWWR(shPbzip2, 130_000, 150_000, "pbzip2-3"))

	// aget — 3 bugs.
	reg(shAget, 1, ov, LangC, true, 110_000, 0,
		"signal handler frees the download state while an http worker updates its segment",
		genOrderUAF(shAget, 110_000, "aget-1"))
	reg(shAget, 2, ov, LangC, false, 150_000, 0,
		"resume worker reads the segment table before main finishes parsing the state file",
		genOrderInit(shAget, 150_000, "aget-2"))
	reg(shAget, 3, av, LangC, false, 120_000, 110_000,
		"SIGINT handler nulls the state cell between a worker's validation and offset write-back",
		genAtomStaleWrite(shAget, 120_000, 110_000, "aget-3"))

	// JDK — 5 bugs (Java side of the hypothesis study).
	reg(shJDK, 1, dl, LangJava, false, 700_000, 0,
		"ABBA inversion between a direct-buffer lock and the cleaner lock (JDK-6822370 archetype)",
		genDeadlockABBA(shJDK, 700_000, "jdk-1"))
	reg(shJDK, 2, dl, LangJava, false, 1_600_000, 0,
		"io and finalizer threads invert stream-header locks during concurrent close",
		genDeadlockStruct(shJDK, 1_600_000, "jdk-2"))
	reg(shJDK, 3, ov, LangJava, false, 520_000, 0,
		"gc thread clears the buffer cache entry an io thread still drains",
		genOrderUAF(shJDK, 520_000, "jdk-3"))
	reg(shJDK, 4, av, LangJava, false, 260_000, 280_000,
		"buffer position check races with an async reset between check and read",
		genAtomRWR(shJDK, 260_000, 280_000, "jdk-4"))
	reg(shJDK, 5, av, LangJava, false, 3_000_000, 3_300_000,
		"two threads race to install the same charset decoder and the identity check trips",
		genAtomWWR(shJDK, 3_000_000, 3_300_000, "jdk-5"))

	// Apache Derby — 4 bugs.
	reg(shDerby, 1, dl, LangJava, false, 2_000_000, 0,
		"three-way cycle among commit, abort and lock-manager threads (DERBY-5447 archetype)",
		genDeadlockRing(shDerby, 2_000_000, "derby-1"))
	reg(shDerby, 2, ov, LangJava, false, 600_000, 0,
		"lock manager reads the transaction table entry before the committer publishes it",
		genOrderInit(shDerby, 600_000, "derby-2"))
	reg(shDerby, 3, av, LangJava, false, 310_000, 330_000,
		"transaction-state check races with abort between check and log write",
		genAtomRWR(shDerby, 310_000, 330_000, "derby-3"))
	reg(shDerby, 4, av, LangJava, false, 420_000, 380_000,
		"two transactions race on the XID slot and the ownership check trips",
		genAtomWWR(shDerby, 420_000, 380_000, "derby-4"))

	// Apache Groovy — 4 bugs.
	reg(shGroovy, 1, dl, LangJava, false, 520_000, 0,
		"class-registry vs metaclass lock inversion during concurrent compilation and reload",
		genDeadlockABBA(shGroovy, 520_000, "groovy-1"))
	reg(shGroovy, 2, ov, LangJava, false, 700_000, 0,
		"reload thread evicts a ClassInfo a compile thread still resolves (GROOVY-6152 archetype)",
		genOrderUAF(shGroovy, 700_000, "groovy-2"))
	reg(shGroovy, 3, ov, LangJava, false, 330_000, 0,
		"meta thread reads the class registry before the compiler publishes the class entry",
		genOrderInit(shGroovy, 330_000, "groovy-3"))
	reg(shGroovy, 4, av, LangJava, false, 280_000, 240_000,
		"reload nulls the registry cell between version validation and write-back",
		genAtomStaleWrite(shGroovy, 280_000, 240_000, "groovy-4"))

	// Apache Commons DBCP — 4 bugs.
	reg(shDBCP, 1, dl, LangJava, false, 850_000, 0,
		"pool lock vs connection lock inversion between borrow and evictor (DBCP-44 archetype)",
		genDeadlockStruct(shDBCP, 850_000, "dbcp-1"))
	reg(shDBCP, 2, dl, LangJava, false, 1_100_000, 0,
		"ABBA inversion between the idle list lock and the factory lock at pool close",
		genDeadlockABBA(shDBCP, 1_100_000, "dbcp-2"))
	reg(shDBCP, 3, av, LangJava, false, 230_000, 210_000,
		"connection liveness check races with eviction between validate and use",
		genAtomRWR(shDBCP, 230_000, 210_000, "dbcp-3"))
	reg(shDBCP, 4, av, LangJava, false, 350_000, 290_000,
		"two borrowers race on the same pooled slot and the claim check trips",
		genAtomWWR(shDBCP, 350_000, 290_000, "dbcp-4"))

	// Apache Log4j — 4 bugs.
	reg(shLog4j, 1, dl, LangJava, false, 460_000, 0,
		"logger hierarchy lock vs appender lock inversion at reconfiguration (LOG4J2-1420 archetype)",
		genDeadlockABBA(shLog4j, 460_000, "log4j-1"))
	reg(shLog4j, 2, ov, LangJava, false, 240_000, 0,
		"reconfiguration closes an appender a logging thread still appends to",
		genOrderUAF(shLog4j, 240_000, "log4j-2"))
	reg(shLog4j, 3, ov, LangJava, false, 420_000, 0,
		"append thread reads the root logger before configuration publishes it",
		genOrderInit(shLog4j, 420_000, "log4j-3"))
	reg(shLog4j, 4, av, LangJava, false, 190_000, 170_000,
		"two configurators race on the appender slot and the identity check trips",
		genAtomWWR(shLog4j, 190_000, 170_000, "log4j-4"))

	// Apache Lucene — 4 bugs.
	reg(shLucene, 1, dl, LangJava, false, 950_000, 0,
		"index-writer lock vs segment lock inversion between merge and commit (LUCENE-2509 archetype)",
		genDeadlockStruct(shLucene, 950_000, "lucene-1"))
	reg(shLucene, 2, ov, LangJava, false, 500_000, 0,
		"search thread reads segment infos before the committer publishes them",
		genOrderInit(shLucene, 500_000, "lucene-2"))
	reg(shLucene, 3, av, LangJava, false, 270_000, 250_000,
		"reader refcount check races with close between check and doc fetch",
		genAtomRWR(shLucene, 270_000, 250_000, "lucene-3"))
	reg(shLucene, 4, av, LangJava, false, 320_000, 300_000,
		"merge nulls the segment cell between a reader's validation and write-back",
		genAtomStaleWrite(shLucene, 320_000, 300_000, "lucene-4"))
}
