package shard_test

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"

	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/proto"
	"snorlax/internal/pt"
	"snorlax/internal/shard"
	"snorlax/internal/wire"
)

func dialConnWire(t *testing.T, addr string, v proto.WireVersion) *proto.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := proto.NewConnWire(nc, v)
	t.Cleanup(func() { c.Close() })
	return c
}

func paddedSnapshot(n int) *pt.Snapshot {
	return &pt.Snapshot{Threads: map[int]pt.SnapshotThread{0: {Data: make([]byte, n)}}}
}

// TestRouterOversizeSemanticsPerCodec holds the router to the exact
// oversize semantics of the analysis server, on both codecs: a
// snapshot at the cap routes through and is admitted, one byte over
// draws the shard's deterministic rejection with the client connection
// surviving the hop, a frame-limit breach draws the router's own
// "error" reply and then the connection closes, and a torn frame is a
// silent transport failure that leaves the router serving.
func TestRouterOversizeSemanticsPerCodec(t *testing.T) {
	const cap = 8 << 10
	shards := startShards(t, 2)
	for i := range shards {
		shards[i].srv.MaxSnapshotBytes = cap
	}
	_, addr := startRouter(t, shard.RouterConfig{
		Members:    members(shards),
		FrameLimit: wire.Limits{MaxSnapshotBytes: cap}.FrameLimit(),
	})
	bug := corpus.ByID("httpd-4")
	failInst := bug.Build(corpus.Variant{Failing: true})
	rep := reproduce(t, failInst.Mod)
	pc := rep.Failure.PC

	for _, v := range []proto.WireVersion{proto.WireBinary, proto.WireGob} {
		t.Run(v.String(), func(t *testing.T) {
			c := dialConnWire(t, addr, v)
			tenant, err := c.Register(ir.Print(failInst.Mod))
			if err != nil {
				t.Fatal(err)
			}
			caseID, _, _, err := c.ReportFleetFailure(tenant, rep.Failure, rep.Snapshot)
			if err != nil {
				t.Fatal(err)
			}
			agent := "agent-" + v.String()

			// At the cap: routed to the owner and admitted.
			accepted, _, err := c.UploadBatch(tenant, caseID, pc, agent, 1, []*pt.Snapshot{paddedSnapshot(cap)})
			if err != nil || accepted != 1 {
				t.Fatalf("at-cap batch = (%d, %v), want (1, nil)", accepted, err)
			}
			// One byte over: the shard's semantic rejection crosses the
			// hop and the connection stays usable.
			if _, _, err := c.UploadBatch(tenant, caseID, pc, agent, 2, []*pt.Snapshot{paddedSnapshot(cap + 1)}); err == nil ||
				!strings.Contains(err.Error(), "cap") {
				t.Fatalf("cap+1 batch: err = %v, want the shard's cap rejection", err)
			}
			if _, err := c.Directives(tenant); err != nil {
				t.Fatalf("connection did not survive a semantic oversize reject: %v", err)
			}
			// Frame-limit breach: the router itself replies and closes,
			// exactly like the server (the reply can race the close).
			if _, _, err := c.UploadBatch(tenant, caseID, pc, agent, 3, []*pt.Snapshot{paddedSnapshot(1 << 20)}); err == nil {
				t.Fatal("frame-limit breach accepted through the router")
			}
			if _, err := c.Directives(tenant); err == nil {
				t.Fatal("connection survived a frame-limit breach")
			}

			// Torn frame: transport-class, no reply, router keeps serving.
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			if v == proto.WireBinary {
				var torn bytes.Buffer
				w := wire.NewWriter(&torn)
				w.Preamble(wire.Version1)
				w.Frame(wire.FrameRequest, make([]byte, 100))
				w.Flush()
				nc.Write(torn.Bytes()[:torn.Len()-40])
			} else {
				nc.Write([]byte{0x2c, 0xff})
			}
			nc.(*net.TCPConn).CloseWrite()
			if got, _ := io.ReadAll(nc); len(got) != 0 {
				t.Fatalf("torn frame drew a %d-byte reply from the router, want silence", len(got))
			}
			nc.Close()
			if _, err := dialConnWire(t, addr, v).Directives(tenant); err != nil {
				t.Fatalf("router unusable after a torn frame: %v", err)
			}
		})
	}
}
