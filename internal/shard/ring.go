// Package shard turns the single-process fleet tier into a sharded
// deployment: N analysis-server shards, each owning its own WAL, with
// diagnosis cases placed on shards by a consistent hash of the routing
// key (module fingerprint, failure PC), and a thin stateless router in
// front that speaks the existing fleet wire protocol to clients and
// forwards every request to the owning shard.
//
// Placement is deterministic — any router (or any replica of the
// router) computes the same owner for a key from nothing but the
// member list — and movement on membership change is minimal: adding
// or removing one shard reassigns only the keys adjacent to its
// points on the ring, roughly 1/N of the keyspace, never the whole
// map. A shard that crashes and restarts keeps its identity and its
// WAL, so its keys never move at all; recovery is the shard's own
// Restore path, and the router simply resumes forwarding.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"

	"snorlax/internal/ir"
	"snorlax/internal/proto"
)

// DefaultVnodes is how many points each member projects onto the
// ring. More points smooth the distribution (the per-member share
// concentrates around 1/N) at the cost of a larger sorted table;
// 128 keeps 2–16 member rings within a few percent of even.
const DefaultVnodes = 128

// Key is a case routing key: the pair the paper's fleet tier shards
// on. Every request that names a case carries enough to rebuild it —
// fleet-failure from the failure report itself, batch and report from
// the directive's trigger PC.
type Key struct {
	Tenant proto.TenantID
	PC     ir.PC
}

// String renders the key in the canonical hashed form.
func (k Key) String() string { return fmt.Sprintf("%s/%d", k.Tenant, k.PC) }

// Ring is a consistent-hash ring over named shard members. The zero
// value is not usable; construct with NewRing. A Ring is immutable —
// With and Without return rebuilt rings — so a reader never observes
// a half-updated table and membership changes are explicit events.
type Ring struct {
	vnodes  int
	members []string
	points  []point
}

type point struct {
	hash   uint64
	member string
}

// NewRing builds a ring over the given member names with vnodes
// points per member (0 means DefaultVnodes). Member order does not
// matter: rings over permutations of the same set place every key
// identically. Duplicate names collapse to one member.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(members))
	var uniq []string
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit hash collision between two members' points is
		// vanishingly rare but must still break deterministically.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member names, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Size reports how many members the ring has.
func (r *Ring) Size() int { return len(r.members) }

// With returns a new ring with m added (a no-op copy if present).
func (r *Ring) With(m string) *Ring {
	return NewRing(append(r.Members(), m), r.vnodes)
}

// Without returns a new ring with m removed (a no-op copy if absent).
func (r *Ring) Without(m string) *Ring {
	var keep []string
	for _, x := range r.members {
		if x != m {
			keep = append(keep, x)
		}
	}
	return NewRing(keep, r.vnodes)
}

// Owner returns the member owning key: the first ring point at or
// after the key's hash, wrapping at the top. An empty ring owns
// nothing and returns "".
func (r *Ring) Owner(key Key) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key.String())
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// hash64 is FNV-1a with a splitmix64 finalizer: dependency-free and
// stable across processes and Go releases — the property that lets
// every router compute identical placement without coordination. Raw
// FNV of short, similar strings ("shard-3#17") clusters noticeably;
// the finalizer's avalanche spreads the points evenly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
