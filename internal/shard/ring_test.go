package shard

import (
	"fmt"
	"testing"

	"snorlax/internal/ir"
	"snorlax/internal/proto"
)

// testKeys fabricates a corpus-shaped key population: a handful of
// tenants (distinct fingerprints) times many failure PCs.
func testKeys(tenants, pcs int) []Key {
	var keys []Key
	for t := 0; t < tenants; t++ {
		id := proto.TenantID(fmt.Sprintf("%064x", t+1))
		for pc := 0; pc < pcs; pc++ {
			keys = append(keys, Key{Tenant: id, PC: ir.PC(pc)})
		}
	}
	return keys
}

func members(n int) []string {
	var ms []string
	for i := 0; i < n; i++ {
		ms = append(ms, fmt.Sprintf("shard-%d", i))
	}
	return ms
}

func TestRingPlacementDeterministic(t *testing.T) {
	keys := testKeys(8, 64)
	tests := []struct {
		name    string
		mk      func() *Ring
		against func() *Ring
	}{
		{"same members, fresh ring", func() *Ring { return NewRing(members(4), 0) },
			func() *Ring { return NewRing(members(4), 0) }},
		{"permuted member order", func() *Ring { return NewRing(members(5), 0) },
			func() *Ring {
				ms := members(5)
				ms[0], ms[4], ms[2], ms[1] = ms[4], ms[0], ms[1], ms[2]
				return NewRing(ms, 0)
			}},
		{"duplicate members collapse", func() *Ring { return NewRing(members(3), 0) },
			func() *Ring { return NewRing(append(members(3), members(3)...), 0) }},
		{"add then remove is identity", func() *Ring { return NewRing(members(6), 0) },
			func() *Ring { return NewRing(members(6), 0).With("extra").Without("extra") }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.mk(), tc.against()
			for _, k := range keys {
				if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
					t.Fatalf("key %s placed on %q vs %q", k, ao, bo)
				}
			}
		})
	}
}

// Distribution: with vnode smoothing, every member's share of a large
// key population stays within a loose band around the fair share.
// The band is deliberately wide (±60% relative) — consistent hashing
// trades perfect balance for minimal movement — but it catches the
// failure mode that matters: a member owning almost nothing or almost
// everything.
func TestRingDistributionBounds(t *testing.T) {
	keys := testKeys(16, 256) // 4096 keys
	for n := 2; n <= 16; n++ {
		n := n
		t.Run(fmt.Sprintf("%d shards", n), func(t *testing.T) {
			r := NewRing(members(n), 0)
			counts := make(map[string]int)
			for _, k := range keys {
				counts[r.Owner(k)]++
			}
			if len(counts) != n {
				t.Fatalf("keys landed on %d of %d members", len(counts), n)
			}
			fair := float64(len(keys)) / float64(n)
			for m, c := range counts {
				if ratio := float64(c) / fair; ratio < 0.4 || ratio > 1.6 {
					t.Errorf("%s owns %d keys (%.2fx fair share %.0f), outside [0.4, 1.6]",
						m, c, ratio, fair)
				}
			}
		})
	}
}

// Minimal movement: a membership change may move only the keys whose
// owner changed to/from the changed member — no key may move between
// two members that were present before and after.
func TestRingMinimalMovement(t *testing.T) {
	keys := testKeys(16, 256)
	tests := []struct {
		name string
		from int
		with string // "" means remove tests[0] member instead
	}{
		{"join 4->5", 4, "shard-new"},
		{"join 8->9", 8, "shard-new"},
		{"leave 5->4", 5, ""},
		{"leave 16->15", 16, ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			before := NewRing(members(tc.from), 0)
			var after *Ring
			changed := tc.with
			if tc.with != "" {
				after = before.With(tc.with)
			} else {
				changed = "shard-0"
				after = before.Without(changed)
			}
			moved, toOrFromChanged := 0, 0
			for _, k := range keys {
				a, b := before.Owner(k), after.Owner(k)
				if a == b {
					continue
				}
				moved++
				if a == changed || b == changed {
					toOrFromChanged++
				} else {
					t.Errorf("key %s moved %q -> %q, neither of which is the changed member %q",
						k, a, b, changed)
				}
			}
			if moved == 0 {
				t.Fatal("membership change moved no keys at all")
			}
			// The moved fraction should be about 1/N of the keyspace —
			// never a wholesale reshuffle. Allow 3x slack over fair.
			fairFrac := 1.0 / float64(after.Size()+1)
			if frac := float64(moved) / float64(len(keys)); frac > 3*fairFrac {
				t.Errorf("membership change moved %.1f%% of keys, want about %.1f%%",
					100*frac, 100*fairFrac)
			}
		})
	}
}

func TestRingEdgeCases(t *testing.T) {
	if o := NewRing(nil, 0).Owner(Key{Tenant: "t", PC: 1}); o != "" {
		t.Errorf("empty ring owner = %q, want \"\"", o)
	}
	one := NewRing([]string{"only"}, 0)
	for _, k := range testKeys(4, 16) {
		if o := one.Owner(k); o != "only" {
			t.Fatalf("single-member ring placed %s on %q", k, o)
		}
	}
	if got := NewRing([]string{"b", "", "a", "b"}, 0).Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Members() = %v, want [a b]", got)
	}
}
