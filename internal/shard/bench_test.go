package shard_test

import (
	"context"
	"net"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/proto"
	"snorlax/internal/pt"
	"snorlax/internal/shard"
)

// BenchmarkWireUpload measures sustained fleet batch upload throughput
// through the production topology — agent → router → owning shard —
// on both codecs, with real traced snapshots. The binary path relays
// raw frames at the router and stream-decodes at the shard; the gob
// path must fully decode and re-encode the batch at the hop. Each
// timed iteration uploads the batch to a case that has already met its
// quota and closed, so the shard does the complete wire-decode work
// and then rejects cheaply — the steady state of a fleet at quota,
// with no memory growth across b.N. The perf lane gates binary at
// >=2x gob bytes/op-throughput (scripts/bench.sh, scripts/benchgate).
func BenchmarkWireUpload(b *testing.B) {
	bug := corpus.ByID("pbzip2-1")
	failInst := bug.Build(corpus.Variant{Failing: true})
	rep := core.NewClient(failInst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		b.Fatal("pbzip2-1 failing variant did not fail")
	}
	okClient := core.NewClient(bug.Build(corpus.Variant{Failing: false}).Mod)
	var uniq []*pt.Snapshot
	for seed := int64(1); len(uniq) < 16 && seed < 4096; seed++ {
		if r := okClient.Run(seed, rep.Failure.PC); !r.Failed() && r.Triggered {
			uniq = append(uniq, r.Snapshot)
		}
	}
	if len(uniq) < 4 {
		b.Fatalf("gathered only %d triggered snapshots", len(uniq))
	}
	// A 64-snapshot batch: the shape a fleet's flush-and-retry cycle
	// presents to the router. Snapshots repeat (ring bytes are
	// read-only on the encode side), decoupling the batch size from
	// how many seeds happen to trigger.
	batch := make([]*pt.Snapshot, 64)
	var batchBytes int64
	for i := range batch {
		batch[i] = uniq[i%len(uniq)]
		for _, th := range batch[i].Threads {
			batchBytes += int64(len(th.Data))
		}
	}

	for _, v := range []proto.WireVersion{proto.WireGob, proto.WireBinary} {
		b.Run(v.String(), func(b *testing.B) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := proto.NewServer(core.NewServer(failInst.Mod))
			go srv.Serve(ln)
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()
			router, err := shard.NewRouter(shard.RouterConfig{
				Members: []shard.Member{{Name: "shard-0", Addr: ln.Addr().String()}},
				Retry:   proto.RetryConfig{Wire: v},
			})
			if err != nil {
				b.Fatal(err)
			}
			rln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go router.Serve(rln)
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				router.Shutdown(ctx)
			}()
			nc, err := net.Dial("tcp", rln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			c := proto.NewConnWire(nc, v)
			defer c.Close()
			tenant, err := c.Register(ir.Print(failInst.Mod))
			if err != nil {
				b.Fatal(err)
			}
			caseID, _, _, err := c.ReportFleetFailure(tenant, rep.Failure, rep.Snapshot)
			if err != nil {
				b.Fatal(err)
			}
			// Drive the case to quota and through publication so the
			// timed loop measures pure wire ingest, not diagnosis.
			seq := uint64(1)
			for done := false; !done; seq++ {
				if seq > 64 {
					b.Fatal("case did not close after 64 batches")
				}
				if _, done, err = c.UploadBatch(tenant, caseID, rep.Failure.PC, "bench", seq, batch); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(batchBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.UploadBatch(tenant, caseID, rep.Failure.PC, "bench", seq+uint64(i), batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
