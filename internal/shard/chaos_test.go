package shard_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/faultnet"
	"snorlax/internal/fleet"
	"snorlax/internal/ir"
	"snorlax/internal/obs"
	"snorlax/internal/proto"
	"snorlax/internal/shard"
	"snorlax/internal/store"
)

// The chaos test runs each shard as a real OS process — re-executing
// this test binary in child mode — so a crash is a genuine SIGKILL
// with no deferred cleanup, and recovery is a genuine fresh process
// replaying a WAL. The child protocol is one stdout line:
//
//	READY <serve-addr> <debug-addr> <restored-reports> <restored-diagnoses>
//
// printed after the WAL is restored and before serving, where
// restored-reports is how many published case reports the WAL carried
// across the crash and restored-diagnoses how many diagnoses Restore
// itself had to run (quota met pre-crash, verdict not yet logged).
const (
	chaosChildEnv = "SNORLAX_SHARD_CHILD"
	chaosAddrEnv  = "SNORLAX_SHARD_ADDR"
	chaosDebugEnv = "SNORLAX_SHARD_DEBUG"
	chaosStateEnv = "SNORLAX_SHARD_STATE"
	chaosBaseEnv  = "SNORLAX_SHARD_CASEBASE"
)

func TestMain(m *testing.M) {
	if os.Getenv(chaosChildEnv) == "1" {
		runShardChild()
		return
	}
	os.Exit(m.Run())
}

func childFatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "shard child: "+format+"\n", args...)
	os.Exit(1)
}

// bindRetry listens on addr, retrying for a while: a restarted shard
// reclaims the exact address its dead predecessor held, and the
// kernel may briefly refuse the rebind.
func bindRetry(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func counterValue(reg *obs.Registry, name string) uint64 {
	if m := reg.Find(name); m != nil && m.Counter != nil {
		return m.Counter.Value()
	}
	return 0
}

// runShardChild is the child-mode main: one durable fleet shard.
func runShardChild() {
	mod, err := ir.Parse("module fleet\n\nfunc main() {\nentry:\n  ret\n}\n")
	if err != nil {
		childFatal("parse: %v", err)
	}
	base, err := strconv.ParseUint(os.Getenv(chaosBaseEnv), 10, 64)
	if err != nil {
		childFatal("case base: %v", err)
	}
	ln, err := bindRetry(os.Getenv(chaosAddrEnv))
	if err != nil {
		childFatal("bind serve: %v", err)
	}
	debugLn, err := bindRetry(os.Getenv(chaosDebugEnv))
	if err != nil {
		childFatal("bind debug: %v", err)
	}
	w, err := store.Open(os.Getenv(chaosStateEnv), store.Options{SyncPolicy: store.SyncAlways})
	if err != nil {
		childFatal("open store: %v", err)
	}
	srv := proto.NewServer(core.NewServer(mod))
	srv.IdleTimeout = 30 * time.Second
	srv.WriteTimeout = 30 * time.Second
	srv.CaseBase = base
	srv.Store = w
	if err := srv.Restore(w.RecoveredState()); err != nil {
		childFatal("restore: %v", err)
	}
	reg := srv.Metrics()
	go http.Serve(debugLn, obs.DebugMux(reg, srv.Ready))
	fmt.Printf("READY %s %s %d %d\n", ln.Addr(), debugLn.Addr(),
		counterValue(reg, proto.MetricFleetReports),
		counterValue(reg, proto.MetricDiagnosesCompleted))
	if err := srv.Serve(ln); err != nil {
		childFatal("serve: %v", err)
	}
}

// chaosShard is the parent's handle on one shard child process. addr
// and debug are pinned after the first start so a restart reclaims
// the same endpoints (the router's member table is static).
type chaosShard struct {
	name     string
	addr     string
	debug    string
	stateDir string
	base     uint64
	cmd      *exec.Cmd
	// restoredReports / restoredDiagnoses are from the child's READY
	// line: publishes carried in the WAL and diagnoses Restore ran.
	restoredReports   uint64
	restoredDiagnoses uint64
}

func startChaosShard(t *testing.T, s *chaosShard) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		chaosChildEnv+"=1",
		chaosAddrEnv+"="+s.addr,
		chaosDebugEnv+"="+s.debug,
		chaosStateEnv+"="+s.stateDir,
		fmt.Sprintf("%s=%d", chaosBaseEnv, s.base))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
		io.Copy(io.Discard, stdout)
	}()
	select {
	case line, ok := <-lineCh:
		if !ok {
			cmd.Process.Kill()
			t.Fatalf("%s: child exited before READY", s.name)
		}
		f := strings.Fields(line)
		if len(f) != 5 || f[0] != "READY" {
			t.Fatalf("%s: bad READY line %q", s.name, line)
		}
		s.addr, s.debug = f[1], f[2]
		s.restoredReports, _ = strconv.ParseUint(f[3], 10, 64)
		s.restoredDiagnoses, _ = strconv.ParseUint(f[4], 10, 64)
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("%s: no READY within 60s", s.name)
	}
	s.cmd = cmd
}

// killShard SIGKILLs the child — no flush, no shutdown; only what the
// WAL fsynced survives.
func killShard(s *chaosShard) {
	if s.cmd == nil {
		return
	}
	s.cmd.Process.Kill()
	s.cmd.Wait()
	s.cmd = nil
}

// scrapeCounter reads one unlabeled metric off a shard's /metrics.
func scrapeCounter(t *testing.T, debugAddr, name string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + debugAddr + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", debugAddr, err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sum, found := 0.0, false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		f := strings.Fields(line)
		v, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			t.Fatalf("scrape %s: bad sample %q", name, line)
		}
		sum += v
		found = true
	}
	if !found {
		return 0
	}
	return sum
}

// assertChaosDiagnosis checks verdict bit-identity, timing stats
// excluded.
func assertChaosDiagnosis(t *testing.T, label string, got, want *core.Diagnosis) {
	t.Helper()
	if !reflect.DeepEqual(got.Scores, want.Scores) {
		t.Errorf("%s: scores diverge:\n got %v\nwant %v", label, got.Scores, want.Scores)
	}
	if !reflect.DeepEqual(got.Best, want.Best) || got.Unique != want.Unique {
		t.Errorf("%s: best = %v (unique=%v), want %v (unique=%v)",
			label, got.Best, got.Unique, want.Best, want.Unique)
	}
	if got.AnchorPC != want.AnchorPC {
		t.Errorf("%s: anchor = %d, want %d", label, got.AnchorPC, want.AnchorPC)
	}
}

// TestChaosShardedFleet is the headline robustness run: 4 durable
// shard processes behind the router, 1000 agents across 6 programs in
// staggered waves under seeded connection chaos. Once the first wave's
// case publishes, its owning shard is SIGKILLed mid-collection and
// restarted on the same address and state dir. Afterwards, every case
// must have stopped at exactly the 10× quota, every published report
// must be bit-identical to a direct Diagnose on the traces its shard's
// WAL logged, and the restarted shard must not have re-diagnosed any
// report published before the crash.
func TestChaosShardedFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a while")
	}
	const nShards = 4
	const nAgents = 1000
	bugIDs := []string{"dbcp-1", "httpd-4", "derby-3", "groovy-2", "jdk-4", "aget-1"}

	shards := make([]*chaosShard, nShards)
	for i := range shards {
		shards[i] = &chaosShard{
			name:     fmt.Sprintf("shard-%d", i),
			stateDir: t.TempDir(),
			base:     uint64(i) << 32,
		}
		startChaosShard(t, shards[i])
	}
	t.Cleanup(func() {
		for _, s := range shards {
			killShard(s)
		}
	})

	ms := make([]shard.Member, nShards)
	for i, s := range shards {
		ms[i] = shard.Member{Name: s.name, Addr: s.addr,
			HealthURL: "http://" + s.debug + "/readyz"}
	}
	// The router keeps its own retry budget small: after it gives up it
	// drops the agent's connection, and the agent's far larger budget
	// carries the wait across the restart gap.
	router, routerAddr := startRouter(t, shard.RouterConfig{
		Members: ms,
		Retry:   proto.RetryConfig{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond},
	})

	// Seeded connection chaos between the agents and the router.
	seed := int64(1)
	if s := os.Getenv("SNORLAX_FAULT_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SNORLAX_FAULT_SEED=%q: %v", s, err)
		}
		seed = v
	}
	// All fault kinds except Corrupt: the fleet protocol has no payload
	// checksums, so a byte flipped inside an opaque snapshot buffer
	// passes gob intact and poisons the case's trace of record — a
	// transport-integrity problem, not the crash-tolerance under test.
	inj := faultnet.New(faultnet.Config{Seed: seed, FaultEvery: 40, MaxFaults: 300,
		Kinds: []faultnet.Kind{faultnet.Drop, faultnet.Stall, faultnet.PartialWrite}})
	dial := inj.Dialer(func() (net.Conn, error) { return net.Dial("tcp", routerAddr) })

	// Register every program up front (idempotent — the swarm will do
	// it again) so case ownership is known before any agent runs.
	programs := make([]fleet.Program, len(bugIDs))
	owners := make([]string, len(bugIDs))
	c := dialConn(t, routerAddr)
	for i, id := range bugIDs {
		bug := corpus.ByID(id)
		if bug == nil {
			t.Fatalf("unknown corpus bug %q", id)
		}
		programs[i] = fleet.Program{
			Fail: bug.Build(corpus.Variant{Failing: true}).Mod,
			OK:   bug.Build(corpus.Variant{Failing: false}).Mod,
		}
		tenant, err := c.Register(ir.Print(programs[i].Fail))
		if err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
		rep := reproduce(t, programs[i].Fail)
		owners[i] = router.Owner(shard.Key{Tenant: tenant, PC: rep.Failure.PC}).Name
	}
	c.Close()

	// The victim owns the first wave's case, so it is guaranteed to
	// hold a published report when the kill lands. If it also owns a
	// later program, push that one to the final wave so the kill lands
	// mid-collection for it.
	var victim *chaosShard
	for _, s := range shards {
		if s.name == owners[0] {
			victim = s
		}
	}
	last := len(bugIDs) - 1
	for i := 1; i < last; i++ {
		if owners[i] == victim.name {
			programs[i], programs[last] = programs[last], programs[i]
			owners[i], owners[last] = owners[last], owners[i]
			bugIDs[i], bugIDs[last] = bugIDs[last], bugIDs[i]
			break
		}
	}
	victimOwned := 0
	for _, o := range owners {
		if o == victim.name {
			victimOwned++
		}
	}
	t.Logf("victim %s owns %d/%d cases (owners %v)", victim.name, victimOwned, len(owners), owners)

	resCh := make(chan *fleet.LoadResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := fleet.RunLoad(fleet.LoadConfig{
			Dial:         dial,
			Agents:       nAgents,
			Programs:     programs,
			Concurrency:  64,
			MaxAttempts:  30,
			OpTimeout:    120 * time.Second,
			PollInterval: 2 * time.Millisecond,
			Stagger:      300 * time.Millisecond,
		})
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	// Wait for the victim's first published report, then pull the rug:
	// SIGKILL, a beat of real downtime, restart on the same address and
	// state dir. Later waves are mid-collection throughout.
	killDeadline := time.Now().Add(90 * time.Second)
	var preReports float64
	for {
		preReports = scrapeCounter(t, victim.debug, proto.MetricFleetReports)
		if preReports >= 1 {
			break
		}
		select {
		case err := <-errCh:
			t.Fatalf("fleet load failed before the kill: %v", err)
		default:
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("victim %s never published a report", victim.name)
		}
		time.Sleep(25 * time.Millisecond)
	}
	killShard(victim)
	time.Sleep(150 * time.Millisecond)
	startChaosShard(t, victim)

	// Rebalance-on-restart: every report the victim published before
	// the crash came back from its WAL.
	if victim.restoredReports < uint64(preReports) {
		t.Errorf("restart restored %d published reports, %d were published pre-crash",
			victim.restoredReports, uint64(preReports))
	}

	var res *fleet.LoadResult
	select {
	case res = <-resCh:
	case err := <-errCh:
		t.Fatalf("fleet load: %v", err)
	case <-time.After(10 * time.Minute):
		t.Fatal("fleet load did not finish")
	}
	t.Logf("load: %d agents, %d reports, %d/%d snapshots accepted, directive p50=%v p99=%v, %d retries, %v",
		res.Stats.Agents, res.Stats.Reports, res.Stats.Accepted, res.Stats.Uploaded,
		res.Stats.DirectiveP50, res.Stats.DirectiveP99, res.Stats.Retried, res.Stats.Duration)

	// Every case stopped at exactly the 10× quota and published.
	if len(res.Cases) != len(programs) {
		t.Fatalf("got %d cases, want %d", len(res.Cases), len(programs))
	}
	byOwner := map[string]int{}
	for i, cse := range res.Cases {
		if cse.Diagnosis == nil {
			t.Fatalf("case %s has no diagnosis", bugIDs[i])
		}
		if cse.Accepted != proto.DefaultFleetQuota {
			t.Errorf("case %s accepted %d snapshots, want exactly %d",
				bugIDs[i], cse.Accepted, proto.DefaultFleetQuota)
		}
		owner := router.Owner(shard.Key{Tenant: cse.Tenant, PC: cse.TriggerPC}).Name
		if owner != owners[i] {
			t.Errorf("case %s moved from %s to %s", bugIDs[i], owners[i], owner)
		}
		byOwner[owner]++
	}
	if len(byOwner) < 2 {
		t.Errorf("all cases landed on one shard: %v", byOwner)
	}

	// Zero re-diagnoses: post-restart, the victim ran one diagnosis per
	// report published after the crash (Restore's own deferred publishes
	// included) and none for reports the WAL already carried.
	reportsEnd := scrapeCounter(t, victim.debug, proto.MetricFleetReports)
	diagEnd := scrapeCounter(t, victim.debug, proto.MetricDiagnosesCompleted)
	newPublishes := reportsEnd - float64(victim.restoredReports)
	if diagEnd != newPublishes {
		t.Errorf("victim ran %v diagnoses after restart for %v new publishes — pre-crash reports were re-diagnosed",
			diagEnd, newPublishes)
	}
	if uint64(reportsEnd) != uint64(byOwner[victim.name]) {
		t.Errorf("victim reports %v != %d owned cases", reportsEnd, byOwner[victim.name])
	}

	// Bit-identity against the durable record: kill everything, open
	// each shard's WAL cold, and re-run Diagnose on exactly the logged
	// traces. Each case must live on its ring owner — and only there —
	// with the quota's worth of successes and the verdict the agents
	// fetched.
	for _, s := range shards {
		killShard(s)
	}
	states := make(map[string]*store.State, nShards)
	for _, s := range shards {
		w, err := store.Open(s.stateDir, store.Options{SyncPolicy: store.SyncAlways})
		if err != nil {
			t.Fatalf("reopen %s: %v", s.name, err)
		}
		states[s.name] = w.RecoveredState()
		w.Close()
	}
	for i, cse := range res.Cases {
		var cs *store.CaseState
		for name, st := range states {
			var ps *store.ProgramState
			if st != nil {
				for _, p := range st.Programs {
					if p.Tenant == string(cse.Tenant) {
						ps = p
					}
				}
			}
			if ps == nil {
				continue
			}
			rec, ok := ps.Cases[uint64(cse.Case)]
			if !ok {
				continue
			}
			if name != owners[i] {
				t.Errorf("case %s logged on %s, ring owner is %s", bugIDs[i], name, owners[i])
				continue
			}
			cs = rec
		}
		if cs == nil {
			t.Errorf("case %s is in no shard's WAL", bugIDs[i])
			continue
		}
		if len(cs.Successes) != proto.DefaultFleetQuota {
			t.Errorf("case %s WAL holds %d successes, want %d",
				bugIDs[i], len(cs.Successes), proto.DefaultFleetQuota)
		}
		if !cs.Done || cs.Diagnosis == nil {
			t.Errorf("case %s WAL not closed with a verdict (done=%v)", bugIDs[i], cs.Done)
			continue
		}
		failing := &core.RunReport{Failure: cs.Failure, Snapshot: cs.FailSnapshot}
		successes := make([]*core.RunReport, 0, len(cs.Successes))
		for _, snap := range cs.Successes {
			successes = append(successes, &core.RunReport{Snapshot: snap})
		}
		want, err := core.NewServer(programs[i].Fail).Diagnose(failing, successes)
		if err != nil {
			t.Fatalf("direct diagnose %s: %v", bugIDs[i], err)
		}
		assertChaosDiagnosis(t, bugIDs[i]+" (fetched)", cse.Diagnosis, want)
		assertChaosDiagnosis(t, bugIDs[i]+" (logged)", cs.Diagnosis, want)
	}
}
