package shard_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/faultnet"
	"snorlax/internal/fleet"
	"snorlax/internal/ir"
	"snorlax/internal/obs"
	"snorlax/internal/proto"
	"snorlax/internal/pt"
	"snorlax/internal/shard"
)

// testShard is one in-process shard: an analysis server with its own
// case-id namespace, listening on a loopback port.
type testShard struct {
	member shard.Member
	srv    *proto.Server
	ln     net.Listener
}

// placeholderMod is the fleet-only base module (every diagnosed
// program arrives by registration), same as cmd/snorlax -fleet.
func placeholderMod(t *testing.T) *ir.Module {
	t.Helper()
	mod, err := ir.Parse("module fleet\n\nfunc main() {\nentry:\n  ret\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// startShards brings up n in-process shards with disjoint CaseBase
// namespaces (shard i gets i<<32).
func startShards(t *testing.T, n int) []testShard {
	t.Helper()
	mod := placeholderMod(t)
	shards := make([]testShard, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := proto.NewServer(core.NewServer(mod))
		srv.IdleTimeout = 10 * time.Second
		srv.WriteTimeout = 10 * time.Second
		srv.CaseBase = uint64(i) << 32
		go srv.Serve(ln)
		shards[i] = testShard{
			member: shard.Member{Name: fmt.Sprintf("shard-%d", i), Addr: ln.Addr().String()},
			srv:    srv,
			ln:     ln,
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	return shards
}

func members(shards []testShard) []shard.Member {
	ms := make([]shard.Member, len(shards))
	for i, s := range shards {
		ms[i] = s.member
	}
	return ms
}

// startRouter serves a router over the shards and returns its address.
func startRouter(t *testing.T, cfg shard.RouterConfig) (*shard.Router, string) {
	t.Helper()
	r, err := shard.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		r.Shutdown(ctx)
	})
	return r, ln.Addr().String()
}

// shardByName finds the test shard backing a ring member name.
func shardByName(t *testing.T, shards []testShard, name string) *testShard {
	t.Helper()
	for i := range shards {
		if shards[i].member.Name == name {
			return &shards[i]
		}
	}
	t.Fatalf("no shard named %q", name)
	return nil
}

// TestRouterEndToEnd runs the full fleet flow for two corpus bugs
// through a 3-shard router and verifies the sharded deployment is
// observationally identical to a single server: exact quota, reports
// bit-identical to a direct diagnosis of the owning shard's accepted
// traces, registration broadcast to every shard, and each case living
// on exactly the shard the ring names as owner.
func TestRouterEndToEnd(t *testing.T) {
	shards := startShards(t, 3)
	router, addr := startRouter(t, shard.RouterConfig{Members: members(shards)})

	for _, bugID := range []string{"dbcp-1", "httpd-4"} {
		t.Run(bugID, func(t *testing.T) {
			bug := corpus.ByID(bugID)
			failInst := bug.Build(corpus.Variant{Failing: true})
			okInst := bug.Build(corpus.Variant{Failing: false})

			res, err := fleet.Run(
				fleet.Program{Fail: failInst.Mod, OK: okInst.Mod},
				fleet.Config{
					Dial:    func() (net.Conn, error) { return net.Dial("tcp", addr) },
					Clients: 4,
				})
			if err != nil {
				t.Fatal(err)
			}
			if res.Diagnosis == nil {
				t.Fatal("fleet returned no diagnosis")
			}

			// Every shard must know the tenant (registration broadcast) —
			// a later failure at any PC may hash anywhere.
			tenant := res.Tenant
			for _, s := range shards {
				if _, err := dialConn(t, s.member.Addr).Directives(tenant); err != nil {
					t.Errorf("%s does not know tenant: %v", s.member.Name, err)
				}
			}

			// The case must live on exactly the ring's owner, under that
			// shard's case-id namespace.
			owner := router.Ring().Owner(shard.Key{Tenant: tenant, PC: res.Failure.PC})
			os := shardByName(t, shards, owner)
			failing, successes, ok := os.srv.FleetCaseTraces(tenant, res.Case)
			if !ok {
				t.Fatalf("owner %s has no case %d", owner, res.Case)
			}
			if len(successes) != proto.DefaultFleetQuota {
				t.Fatalf("owner accepted %d traces, want exactly %d", len(successes), proto.DefaultFleetQuota)
			}
			for _, s := range shards {
				if s.member.Name == owner {
					continue
				}
				if _, _, ok := s.srv.FleetCaseTraces(tenant, res.Case); ok {
					t.Errorf("case %d leaked onto non-owner %s", res.Case, s.member.Name)
				}
			}

			// Bit-identity against a direct diagnosis of the same traces.
			want, err := core.NewServer(failInst.Mod).Diagnose(failing, successes)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Diagnosis
			if !reflect.DeepEqual(got.Scores, want.Scores) ||
				!reflect.DeepEqual(got.Best, want.Best) || got.AnchorPC != want.AnchorPC {
				t.Errorf("routed diagnosis diverges from direct:\n got %v\nwant %v", got.Best, want.Best)
			}
		})
	}

	// Aggregated status sums the shards.
	c := dialConn(t, addr)
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.CompletedDiagnoses < 2 {
		t.Errorf("aggregated CompletedDiagnoses = %d, want >= 2", st.CompletedDiagnoses)
	}
}

func dialConn(t *testing.T, addr string) *proto.Conn {
	t.Helper()
	c, err := proto.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestRouterCaseIDsAreNamespaced checks that cases opened on
// different shards never share an id: the shard's CaseBase keeps the
// merged directive listing unambiguous.
func TestRouterCaseIDsAreNamespaced(t *testing.T) {
	shards := startShards(t, 4)
	router, addr := startRouter(t, shard.RouterConfig{Members: members(shards)})

	bug := corpus.ByID("httpd-4")
	failInst := bug.Build(corpus.Variant{Failing: true})
	rep := reproduce(t, failInst.Mod)

	c := dialConn(t, addr)
	tenant, err := c.Register(ir.Print(failInst.Mod))
	if err != nil {
		t.Fatal(err)
	}
	caseID, _, _, err := c.ReportFleetFailure(tenant, rep.Failure, rep.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	owner := router.Ring().Owner(shard.Key{Tenant: tenant, PC: rep.Failure.PC})
	os := shardByName(t, shards, owner)
	base := os.srv.CaseBase
	if uint64(caseID) <= base {
		t.Errorf("case id %d not namespaced above owner base %d", caseID, base)
	}
	if uint64(caseID)>>32 != base>>32 {
		t.Errorf("case id %d carries wrong shard namespace (owner base %d)", caseID, base)
	}
}

func reproduce(t *testing.T, mod *ir.Module) *core.RunReport {
	t.Helper()
	client := core.NewClient(mod)
	for seed := int64(1); seed <= 64; seed++ {
		if rep := client.Run(seed, ir.NoPC); rep.Failed() {
			return rep
		}
	}
	t.Fatal("could not reproduce the failure")
	return nil
}

// TestRouterUnroutedFallbackScan serves batch and report requests
// that carry no routing hint (a client predating the hint): the
// router's ordered scan, keyed off the shards' machine-readable
// "unknown case" rejection, must still find the owner.
func TestRouterUnroutedFallbackScan(t *testing.T) {
	shards := startShards(t, 3)
	_, addr := startRouter(t, shard.RouterConfig{Members: members(shards)})

	bug := corpus.ByID("httpd-4")
	failInst := bug.Build(corpus.Variant{Failing: true})
	okInst := bug.Build(corpus.Variant{Failing: false})
	rep := reproduce(t, failInst.Mod)

	c := dialConn(t, addr)
	tenant, err := c.Register(ir.Print(failInst.Mod))
	if err != nil {
		t.Fatal(err)
	}
	caseID, directive, _, err := c.ReportFleetFailure(tenant, rep.Failure, rep.Snapshot)
	if err != nil {
		t.Fatal(err)
	}

	// Collect the quota's worth of triggered snapshots locally.
	okClient := core.NewClient(okInst.Mod)
	var uploads int
	seq := uint64(1)
	for seed := int64(1); uploads < proto.DefaultFleetQuota && seed < 4096; seed++ {
		okRep := okClient.Run(seed, directive.TriggerPC)
		if okRep.Failed() || !okRep.Triggered || okRep.Snapshot == nil {
			continue
		}
		// Raw unrouted request: Routed deliberately left false.
		resp, err := c.RoundTrip(proto.Request{Kind: "batch", Tenant: tenant, Case: caseID,
			Client: "legacy-agent", Seq: seq, Snapshots: []*pt.Snapshot{okRep.Snapshot}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind != "batch" {
			t.Fatalf("unrouted batch reply = %q (%s)", resp.Kind, resp.Err)
		}
		seq++
		uploads += resp.Accepted
		if resp.Done {
			break
		}
	}
	resp, err := c.RoundTrip(proto.Request{Kind: "report", Tenant: tenant, Case: caseID})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "report" || !resp.Done || resp.Diagnosis == nil {
		t.Fatalf("unrouted report reply = %q done=%v (%s)", resp.Kind, resp.Done, resp.Err)
	}

	// A genuinely unknown case scans every shard and relays the
	// machine-readable rejection.
	resp, err = c.RoundTrip(proto.Request{Kind: "report", Tenant: tenant, Case: 99999})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "error" || resp.Code != proto.CodeUnknownCase {
		t.Fatalf("unknown case reply = %q code=%q, want error/%s", resp.Kind, resp.Code, proto.CodeUnknownCase)
	}
}

// TestRouterFailoverRetries pushes every router→shard connection
// through a seeded fault injector: forwarding must absorb the faults
// within its retry budget and the fleet flow still complete, with the
// router's retry counter showing it happened.
func TestRouterFailoverRetries(t *testing.T) {
	shards := startShards(t, 2)
	inj := faultnet.New(faultnet.Config{
		Seed: 7, FaultEvery: 4, MaxFaults: 12, Stall: 2 * time.Millisecond})
	reg := obs.NewRegistry()
	_, addr := startRouter(t, shard.RouterConfig{
		Members: members(shards),
		Dial: func(addr string) (net.Conn, error) {
			return inj.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) })()
		},
		Retry:    proto.RetryConfig{MaxAttempts: 20, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
		Registry: reg,
	})

	bug := corpus.ByID("httpd-4")
	failInst := bug.Build(corpus.Variant{Failing: true})
	okInst := bug.Build(corpus.Variant{Failing: false})
	res, err := fleet.Run(
		fleet.Program{Fail: failInst.Mod, OK: okInst.Mod},
		fleet.Config{
			Dial:        func() (net.Conn, error) { return net.Dial("tcp", addr) },
			Clients:     4,
			MaxAttempts: 40,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnosis == nil {
		t.Fatal("fleet returned no diagnosis")
	}
	if inj.Stats().Total() == 0 {
		t.Error("chaos run fired no faults; the schedule is miswired")
	}
}

// TestRouterDownShardDropsConn kills one shard for good and checks
// the router's contract: requests owned by the dead shard drop the
// client's connection (a retryable transport fault, never a
// deterministic "error" reply), requests owned by live shards keep
// working, and the drop counter records it.
func TestRouterDownShardDropsConn(t *testing.T) {
	shards := startShards(t, 2)
	reg := obs.NewRegistry()
	router, addr := startRouter(t, shard.RouterConfig{
		Members:  members(shards),
		Retry:    proto.RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Registry: reg,
	})

	bug := corpus.ByID("httpd-4")
	failInst := bug.Build(corpus.Variant{Failing: true})
	rep := reproduce(t, failInst.Mod)

	c := dialConn(t, addr)
	tenant, err := c.Register(ir.Print(failInst.Mod))
	if err != nil {
		t.Fatal(err)
	}

	// Kill the shard that owns this failure's case.
	ownerName := router.Ring().Owner(shard.Key{Tenant: tenant, PC: rep.Failure.PC})
	victim := shardByName(t, shards, ownerName)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := victim.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The failure report routes to the dead owner: the connection must
	// drop with a transport error, not an "error" reply.
	_, _, _, err = c.ReportFleetFailure(tenant, rep.Failure, rep.Snapshot)
	var se *proto.ServerError
	if err == nil || errors.As(err, &se) {
		t.Fatalf("request for dead shard returned %v, want a transport error", err)
	}
	if v := reg.Find(shard.MetricRouterDroppedConns).Counter.Value(); v != 1 {
		t.Errorf("dropped-conns counter = %d, want 1", v)
	}

	// A fresh connection still serves keys owned by the live shard.
	c2 := dialConn(t, addr)
	if _, err := c2.Directives(tenant); err == nil {
		// directives fan out to all shards, so with one dead it must
		// NOT succeed — it should drop too (transport), keeping the
		// degradation visible to pollers.
		t.Error("directives fan-out succeeded with a dead shard")
	}
}

// TestRouterDrain checks the graceful half of the router's lifecycle:
// Shutdown with only idle connections returns promptly, closes them,
// and further dials are refused.
func TestRouterDrain(t *testing.T) {
	shards := startShards(t, 2)
	r, err := shard.NewRouter(shard.RouterConfig{Members: members(shards)})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- r.Serve(ln) }()

	c := dialConn(t, ln.Addr().String())
	if err := r.Ready(); err != nil {
		t.Fatalf("router not ready before drain: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := r.Ready(); err == nil {
		t.Error("router still ready after drain")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	// The idle client connection was closed under us.
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Directives("whatever"); err == nil {
		t.Error("drained router still serving")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Error("drained router still accepting")
	}
}

// TestRouterDebugMux pins the router's operational HTTP surface: the
// supervisor probes /healthz and /readyz, and the scrape target is
// /metrics with the router's forward/health counters on it.
func TestRouterDebugMux(t *testing.T) {
	shards := startShards(t, 2)
	r, _ := startRouter(t, shard.RouterConfig{
		Members:        members(shards),
		HealthInterval: 20 * time.Millisecond,
	})
	if r.Metrics() == nil {
		t.Fatal("router has no metrics registry")
	}
	srv := httptest.NewServer(r.DebugMux())
	defer srv.Close()

	// Readiness needs at least one successful probe; give the prober
	// a few intervals.
	deadline := time.Now().Add(5 * time.Second)
	for r.Ready() != nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if err := r.Ready(); err != nil {
		t.Fatalf("router never became ready: %v", err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d, want 200", code)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	for _, name := range []string{shard.MetricRouterShardUp, shard.MetricRouterForwards} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}
