package shard

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snorlax/internal/obs"
	"snorlax/internal/proto"
	"snorlax/internal/wire"
)

// Router metric names (Prometheus conventions: _total for counters).
const (
	// MetricRouterRequests counts client requests by kind.
	MetricRouterRequests = "snorlax_router_requests_total"
	// MetricRouterForwards counts requests forwarded per shard.
	MetricRouterForwards = "snorlax_router_forwards_total"
	// MetricRouterRetries counts forwarding retries per shard — the
	// router-side degradation counter; zero means no shard ever made
	// the router ask twice.
	MetricRouterRetries = "snorlax_router_forward_retries_total"
	// MetricRouterDroppedConns counts client connections the router
	// dropped because a shard stayed unreachable through the whole
	// retry budget. Dropping the transport (rather than replying
	// "error") keeps the client's own reconnect-and-retry loop alive:
	// fleet clients treat error replies as deterministic rejections.
	MetricRouterDroppedConns = "snorlax_router_dropped_conns_total"
	// MetricRouterShardUp is 1 while the shard's last health probe
	// succeeded, 0 after it failed.
	MetricRouterShardUp = "snorlax_router_shard_up"
	// MetricRouterHealthFails counts failed health probes per shard.
	MetricRouterHealthFails = "snorlax_router_health_check_failures_total"
)

// Member is one shard behind the router.
type Member struct {
	// Name is the shard's stable ring identity. It must survive
	// crashes and restarts — placement hashes the name, so a renamed
	// shard is a different shard and its keys move.
	Name string
	// Addr is the shard's fleet wire address (host:port).
	Addr string
	// HealthURL, when set, is the shard's readiness probe (the
	// /readyz endpoint of its debug mux); the router polls it and
	// exports the result. "" falls back to a plain dial probe.
	HealthURL string
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Members are the shards. Placement is a pure function of their
	// names, so every router replica configured with the same set
	// routes identically.
	Members []Member
	// Vnodes is the ring's points-per-member (0 = DefaultVnodes).
	Vnodes int
	// Dial opens a connection to a shard address. nil means net.Dial
	// ("tcp"); tests inject fault-wrapped dialers here.
	Dial func(addr string) (net.Conn, error)
	// Retry tunes per-request forwarding: attempts, jittered
	// exponential backoff between them, and the per-round-trip
	// deadline — the same knobs (and defaults) as the retrying
	// session client. Retry.Wire also selects the upstream codec the
	// router dials shards with (default: binary).
	Retry proto.RetryConfig
	// HealthInterval is the shard health probe period (0 = 500ms).
	HealthInterval time.Duration
	// IdleTimeout bounds how long the router waits for a client's
	// next request; 0 means wait forever.
	IdleTimeout time.Duration
	// FrameLimit caps one client message's decode-layer bytes (0 =
	// wire.Limits' default: twice the snapshot cap plus slack — the
	// same two-tier rule the analysis server enforces, so a message
	// the server would kill never gets past the router either).
	FrameLimit int64
	// Registry receives the router's metrics (nil = a fresh one).
	Registry *obs.Registry
}

// Router is the thin, stateless front of a sharded fleet deployment.
// It speaks the fleet wire protocol to clients and forwards every
// request to the owning shard: registrations broadcast to all shards
// (they are idempotent, and any shard may later own a case for the
// tenant), failure reports route by the consistent hash of (tenant,
// failure PC), directive listings fan out and merge, and batch and
// report requests follow the routing hint stamped by the client — or,
// for old clients that do not stamp one, an ordered scan keyed off
// the shards' machine-readable "unknown case" rejection.
//
// The router holds no durable state: every case lives in exactly one
// shard's WAL. A router restart loses nothing; a shard restart is
// invisible (same name, same keys, recovery via the shard's own
// Restore), surfacing only as retried forwards while it was down.
type Router struct {
	cfg     RouterConfig
	ring    *Ring
	members []Member // sorted by name; fallback-scan order
	dial    func(addr string) (net.Conn, error)

	reg      *obs.Registry
	requests map[string]*obs.Counter // by request kind
	forwards map[string]*obs.Counter // by shard name
	retries  map[string]*obs.Counter
	up       map[string]*obs.Gauge
	hcFails  map[string]*obs.Counter
	dropped  *obs.Counter

	rngMu sync.Mutex
	rng   *rand.Rand

	shutdown   atomic.Bool
	healthOnce sync.Once
	healthStop chan struct{}
	healthDone chan struct{}

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*routerConn]struct{}
}

// routerConn tracks one client connection for drain: busy is set
// while a request is in flight, so Shutdown closes idle connections
// and lets forwarded requests finish.
type routerConn struct {
	conn net.Conn
	busy atomic.Bool
}

// routedKinds lists the fleet request kinds the router understands.
var routedKinds = []string{"register", "fleet-failure", "directives", "batch", "report", "status"}

// NewRouter builds a router over the given shards.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one member")
	}
	seen := make(map[string]bool, len(cfg.Members))
	members := append([]Member(nil), cfg.Members...)
	var names []string
	for _, m := range members {
		if m.Name == "" || m.Addr == "" {
			return nil, fmt.Errorf("shard: member needs a name and an address (got %q, %q)", m.Name, m.Addr)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("shard: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
		names = append(names, m.Name)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })
	r := &Router{
		cfg:        cfg,
		ring:       NewRing(names, cfg.Vnodes),
		members:    members,
		dial:       cfg.Dial,
		reg:        cfg.Registry,
		healthStop: make(chan struct{}),
		healthDone: make(chan struct{}),
		listeners:  make(map[net.Listener]struct{}),
		conns:      make(map[*routerConn]struct{}),
	}
	if r.dial == nil {
		r.dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if r.reg == nil {
		r.reg = obs.NewRegistry()
	}
	seed := cfg.Retry.JitterSeed
	if seed == 0 {
		// Derived per-router entropy, like the retrying client: router
		// replicas restarted together must not retry a recovering
		// shard in lockstep.
		seed = proto.DeriveJitterSeed()
	}
	r.rng = rand.New(rand.NewSource(seed))
	r.requests = make(map[string]*obs.Counter, len(routedKinds))
	for _, kind := range routedKinds {
		r.requests[kind] = r.reg.Counter(MetricRouterRequests,
			"Client requests received by the shard router.", obs.L("kind", kind))
	}
	r.forwards = make(map[string]*obs.Counter, len(members))
	r.retries = make(map[string]*obs.Counter, len(members))
	r.up = make(map[string]*obs.Gauge, len(members))
	r.hcFails = make(map[string]*obs.Counter, len(members))
	for _, m := range members {
		l := obs.L("shard", m.Name)
		r.forwards[m.Name] = r.reg.Counter(MetricRouterForwards, "Requests forwarded per shard.", l)
		r.retries[m.Name] = r.reg.Counter(MetricRouterRetries, "Forwarding retries per shard.", l)
		r.up[m.Name] = r.reg.Gauge(MetricRouterShardUp, "1 while the shard's last health probe succeeded.", l)
		r.up[m.Name].Set(1) // optimistic until the first probe says otherwise
		r.hcFails[m.Name] = r.reg.Counter(MetricRouterHealthFails, "Failed health probes per shard.", l)
	}
	r.dropped = r.reg.Counter(MetricRouterDroppedConns,
		"Client connections dropped because a shard stayed unreachable.")
	return r, nil
}

// Ring exposes the router's placement ring (for tests and tooling
// that predict ownership).
func (r *Router) Ring() *Ring { return r.ring }

// Metrics returns the router's metrics registry.
func (r *Router) Metrics() *obs.Registry { return r.reg }

// Owner returns the member owning the routing key.
func (r *Router) Owner(key Key) Member {
	name := r.ring.Owner(key)
	for _, m := range r.members {
		if m.Name == name {
			return m
		}
	}
	return Member{}
}

// Ready reports whether the router can usefully forward: it is not
// draining and at least one shard's last health probe succeeded. A
// single down shard degrades (its keys stall and retry) but does not
// flip the router unready — the other shards' cases still flow.
func (r *Router) Ready() error {
	if r.shutdown.Load() {
		return errors.New("shard: router is draining")
	}
	for _, m := range r.members {
		if r.up[m.Name].Value() == 1 {
			return nil
		}
	}
	return errors.New("shard: no shard is healthy")
}

// DebugMux returns the router's operational HTTP surface: /metrics,
// /healthz, /readyz and /debug/pprof/*.
func (r *Router) DebugMux() *http.ServeMux { return obs.DebugMux(r.reg, r.Ready) }

func (r *Router) healthInterval() time.Duration {
	if r.cfg.HealthInterval <= 0 {
		return 500 * time.Millisecond
	}
	return r.cfg.HealthInterval
}

// probe runs one health check against a member: its readiness
// endpoint when configured, otherwise a plain dial.
func (r *Router) probe(m Member) error {
	if m.HealthURL != "" {
		client := &http.Client{Timeout: 2 * time.Second}
		resp, err := client.Get(m.HealthURL)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("shard %s: readyz returned %s", m.Name, resp.Status)
		}
		return nil
	}
	c, err := r.dial(m.Addr)
	if err != nil {
		return err
	}
	return c.Close()
}

// healthLoop polls every member until Shutdown.
func (r *Router) healthLoop() {
	defer close(r.healthDone)
	ticker := time.NewTicker(r.healthInterval())
	defer ticker.Stop()
	for {
		for _, m := range r.members {
			if err := r.probe(m); err != nil {
				r.up[m.Name].Set(0)
				r.hcFails[m.Name].Inc()
			} else {
				r.up[m.Name].Set(1)
			}
		}
		select {
		case <-r.healthStop:
			return
		case <-ticker.C:
		}
	}
}

// Serve accepts client connections until the listener closes or
// Shutdown is called, mirroring the analysis server's accept loop
// (transient-error backoff included). The health prober starts with
// the first Serve call.
func (r *Router) Serve(ln net.Listener) error {
	if !r.trackListener(ln) {
		ln.Close()
		return nil
	}
	defer r.untrackListener(ln)
	r.healthOnce.Do(func() { go r.healthLoop() })
	var delay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if r.shutdown.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() {
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else {
					delay *= 2
				}
				if delay > time.Second {
					delay = time.Second
				}
				time.Sleep(delay)
				continue
			}
			return err
		}
		delay = 0
		go r.handle(conn)
	}
}

// Shutdown drains the router: listeners close, idle client
// connections close immediately, in-flight forwards finish (up to
// ctx), and the health prober stops. The router has no durable state
// to flush, so a drained router can simply be replaced.
func (r *Router) Shutdown(ctx context.Context) error {
	r.shutdown.Store(true)
	r.mu.Lock()
	for ln := range r.listeners {
		ln.Close()
	}
	r.mu.Unlock()
	r.healthOnce.Do(func() { close(r.healthDone) }) // never served: nothing to stop
	select {
	case <-r.healthDone:
	default:
		close(r.healthStop)
		<-r.healthDone
	}

	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		if r.closeIdleConns() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			r.mu.Lock()
			for st := range r.conns {
				st.conn.Close()
			}
			r.mu.Unlock()
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

func (r *Router) closeIdleConns() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for st := range r.conns {
		if !st.busy.Load() {
			st.conn.Close()
		}
	}
	return len(r.conns)
}

func (r *Router) trackListener(ln net.Listener) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shutdown.Load() {
		return false
	}
	r.listeners[ln] = struct{}{}
	return true
}

func (r *Router) untrackListener(ln net.Listener) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.listeners, ln)
}

func (r *Router) trackConn(st *routerConn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shutdown.Load() {
		return false
	}
	r.conns[st] = struct{}{}
	return true
}

func (r *Router) untrackConn(st *routerConn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.conns, st)
}

// frameLimit is the router's decode-layer cap on one client message.
// The rule is encoded once, in wire.Limits, and shared verbatim with
// the analysis server: same default, same breach semantics (reply
// "message exceeds frame limit", then close), so a client cannot
// observe whether the cap tripped at the router or the shard.
func (r *Router) frameLimit() int64 {
	if r.cfg.FrameLimit > 0 {
		return r.cfg.FrameLimit
	}
	return wire.Limits{}.FrameLimit()
}

// upstreams is one client connection's cached shard connections: the
// router keeps one upstream per shard per client, so a chatty agent
// reuses its forwarding path instead of dialing per request.
type upstreams struct {
	r     *Router
	conns map[string]*proto.Conn
}

func (u *upstreams) get(m Member) (*proto.Conn, error) {
	if c := u.conns[m.Name]; c != nil {
		return c, nil
	}
	nc, err := u.r.dial(m.Addr)
	if err != nil {
		return nil, err
	}
	c := proto.NewConnWire(nc, u.r.cfg.Retry.Wire)
	u.conns[m.Name] = c
	return c, nil
}

func (u *upstreams) drop(m Member) {
	if c := u.conns[m.Name]; c != nil {
		c.Close()
		delete(u.conns, m.Name)
	}
}

func (u *upstreams) closeAll() {
	for _, c := range u.conns {
		c.Close()
	}
}

func (r *Router) retryAttempts() int {
	if r.cfg.Retry.MaxAttempts <= 0 {
		return 8
	}
	return r.cfg.Retry.MaxAttempts
}

// backoff sleeps the a-th retry's exponential delay with ±50% jitter
// (RetryConfig semantics: BaseDelay doubling up to MaxDelay).
func (r *Router) backoff(a int) {
	base := r.cfg.Retry.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := r.cfg.Retry.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(a-1)
	if d > max || d <= 0 {
		d = max
	}
	r.rngMu.Lock()
	f := r.rng.Float64()
	r.rngMu.Unlock()
	time.Sleep(time.Duration(float64(d) * (0.5 + f)))
}

// forward sends req to member m, retrying transport failures on fresh
// connections with jittered backoff. A server "error" reply is a
// success at this layer (it is relayed, not retried). The returned
// error means the shard stayed unreachable through the whole budget.
func (r *Router) forward(u *upstreams, m Member, req proto.Request) (proto.Response, error) {
	var lastErr error
	attempts := r.retryAttempts()
	for a := 0; a < attempts; a++ {
		if a > 0 {
			r.retries[m.Name].Inc()
			r.backoff(a)
		}
		c, err := u.get(m)
		if err != nil {
			lastErr = err
			continue
		}
		if t := r.cfg.Retry.OpTimeout; t > 0 {
			c.SetDeadline(time.Now().Add(t))
		}
		resp, err := c.RoundTrip(req)
		if t := r.cfg.Retry.OpTimeout; t > 0 {
			c.SetDeadline(time.Time{})
		}
		if err != nil {
			lastErr = err
			u.drop(m)
			continue
		}
		r.forwards[m.Name].Inc()
		return resp, nil
	}
	return proto.Response{}, fmt.Errorf("shard %s (%s): unreachable after %d attempts: %w",
		m.Name, m.Addr, attempts, lastErr)
}

// handle serves one client connection: negotiate the codec off the
// preamble, then decode a request, route it, encode the reply. A
// shard that stays unreachable drops the client connection (a
// transport fault the client's retry loop absorbs) rather than
// sending an "error" reply clients would treat as a deterministic
// rejection.
func (r *Router) handle(nc net.Conn) {
	st := &routerConn{conn: nc}
	if !r.trackConn(st) {
		nc.Close()
		return
	}
	defer r.untrackConn(st)
	defer nc.Close()
	u := &upstreams{r: r, conns: make(map[string]*proto.Conn)}
	defer u.closeAll()
	br := bufio.NewReaderSize(nc, 32<<10)
	if r.cfg.IdleTimeout > 0 {
		nc.SetReadDeadline(time.Now().Add(r.cfg.IdleTimeout))
	}
	version, binary, err := wire.ReadPreamble(br)
	if err != nil {
		return
	}
	if binary {
		r.handleBinary(st, nc, br, u, version)
	} else {
		r.handleGob(st, nc, br, u)
	}
}

// handleGob serves a legacy gob client. The decode-layer frame cap is
// the analysis server's, verbatim: the shared limited reader meters
// bytes into gob, and a tripped limit earns the same "message exceeds
// frame limit" reply before the close.
func (r *Router) handleGob(st *routerConn, nc net.Conn, br *bufio.Reader, u *upstreams) {
	lim := &wire.LimitedReader{R: br, Limit: r.frameLimit()}
	dec := gob.NewDecoder(lim)
	enc := gob.NewEncoder(nc)
	for {
		if r.shutdown.Load() {
			return
		}
		if r.cfg.IdleTimeout > 0 {
			nc.SetReadDeadline(time.Now().Add(r.cfg.IdleTimeout))
		}
		lim.Reset()
		var req proto.Request
		if err := dec.Decode(&req); err != nil {
			if lim.Tripped() {
				enc.Encode(proto.Response{Kind: "error", Err: "message exceeds frame limit"})
			}
			return
		}
		st.busy.Store(true)
		resp, ok := r.route(u, req)
		st.busy.Store(false)
		if !ok {
			r.dropped.Inc()
			return
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// relayPool recycles the relay path's raw-frame buffers.
var relayPool = sync.Pool{New: func() any { return new([]byte) }}

// handleBinary serves a binary-framed client. The envelope frame is
// captured raw and parsed just enough to route; requests with a
// single owning shard then take the zero-copy relay path — the
// envelope and chunk frames cross the hop byte-identical, checksums
// and all, without snapshot reassembly or re-encoding — while fan-out
// kinds (register, directives, status) and unrouted requests fall back
// to the same full decode the analysis server runs. Oversize semantics
// cannot drift either way: the declared-size budget is checked against
// the identical wire.Limits rule before a ring byte is buffered, and a
// budget breach replies "message exceeds frame limit" then closes,
// exactly like the server.
func (r *Router) handleBinary(st *routerConn, nc net.Conn, br *bufio.Reader, u *upstreams, version byte) {
	wr := wire.NewReader(br, r.frameLimit())
	defer wr.Release()
	ww := wire.NewWriter(nc)
	defer ww.Release()
	reply := func(resp proto.Response) bool {
		return proto.WriteBinaryResponse(ww, &resp) == nil
	}
	if version != wire.Version1 {
		reply(proto.Response{Kind: "error", Err: fmt.Sprintf("unsupported wire version 0x%02x", version)})
		return
	}
	// The relay path requires the upstream hop to speak the same frame
	// format; with a gob upstream every request is decoded and
	// re-encoded at the hop.
	relayable := r.cfg.Retry.Wire.String() == "binary"
	for {
		if r.shutdown.Load() {
			return
		}
		if r.cfg.IdleTimeout > 0 {
			nc.SetReadDeadline(time.Now().Add(r.cfg.IdleTimeout))
		}
		typ, hdr, body, err := wr.NextRaw()
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				reply(proto.Response{Kind: "error", Err: "message exceeds frame limit"})
			}
			return
		}
		if typ != wire.FrameRequest {
			return
		}
		env, err := proto.ParseRequestEnvelope(body[1:])
		if err != nil {
			return
		}
		// The identical budget formula to the server's decode entry
		// (envelope payload + declared ring bytes), so the breach is
		// observed at the same byte on both ends of the hop.
		if lim := r.frameLimit(); lim > 0 && int64(len(body)-1)+env.DeclaredBytes() > lim {
			reply(proto.Response{Kind: "error", Err: "message exceeds frame limit"})
			return
		}
		if m, ok := r.relayOwner(env); relayable && ok {
			st.busy.Store(true)
			keep := r.relay(u, wr, ww, reply, env, m, hdr, body)
			st.busy.Store(false)
			if !keep {
				return
			}
			continue
		}
		if _, _, err := env.Assemble(wr); err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				reply(proto.Response{Kind: "error", Err: "message exceeds frame limit"})
			}
			return
		}
		st.busy.Store(true)
		resp, ok := r.route(u, env.Req)
		st.busy.Store(false)
		if !ok {
			r.dropped.Inc()
			return
		}
		if !reply(resp) {
			return
		}
	}
}

// relayOwner reports whether the request is a single-owner forward the
// relay path can carry, and which shard owns it. Fan-out kinds, hints
// old clients did not stamp, and malformed fleet-failures (the nil
// check must reply before any shard is dialed) all fall back to the
// decode path.
func (r *Router) relayOwner(env *proto.RequestEnvelope) (Member, bool) {
	req := &env.Req
	switch req.Kind {
	case "fleet-failure":
		if req.Failure == nil {
			return Member{}, false
		}
		return r.Owner(Key{Tenant: req.Tenant, PC: req.Failure.PC}), true
	case "batch", "report":
		if !req.Routed {
			return Member{}, false
		}
		return r.Owner(Key{Tenant: req.Tenant, PC: req.RoutePC}), true
	}
	return Member{}, false
}

// relay carries one request across the hop raw: the already-read
// envelope frame plus its chunk frames accumulate verbatim (headers,
// checksums and all) in a pooled buffer, go to the owning shard via
// RelayRaw — which retries transport failures by resending the same
// bytes — and the shard's reply payload is relayed back untouched.
// The buffer is bounded by the frame-limit check the caller already
// performed on the declared sizes. Returns false when the client
// connection must close.
func (r *Router) relay(u *upstreams, wr *wire.Reader, ww *wire.Writer, reply func(proto.Response) bool,
	env *proto.RequestEnvelope, m Member, hdr, body []byte) bool {
	bufp := relayPool.Get().(*[]byte)
	defer relayPool.Put(bufp)
	raw := append((*bufp)[:0], hdr...)
	raw = append(raw, body...)
	for remaining := env.DeclaredBytes(); remaining > 0; {
		typ, h, b, err := wr.NextRaw()
		if err != nil {
			*bufp = raw[:0]
			if errors.Is(err, wire.ErrFrameTooLarge) {
				reply(proto.Response{Kind: "error", Err: "message exceeds frame limit"})
			}
			return false
		}
		n := int64(len(b) - 1)
		if typ != wire.FrameChunk || n == 0 || n > remaining {
			*bufp = raw[:0]
			return false
		}
		raw = append(raw, h...)
		raw = append(raw, b...)
		remaining -= n
	}
	*bufp = raw
	if ctr := r.requests[env.Req.Kind]; ctr != nil {
		ctr.Inc()
	}
	payload, err := r.forwardRaw(u, m, raw)
	if err != nil {
		r.dropped.Inc()
		return false
	}
	return ww.Frame(wire.FrameResponse, payload) == nil && ww.Flush() == nil
}

// forwardRaw is forward for the relay path: same retry budget, same
// jittered backoff, same per-attempt deadline, resending the captured
// frames instead of re-encoding a request. It returns the shard's raw
// response payload (valid until the upstream's next read — i.e. until
// the next request relayed to the same shard).
func (r *Router) forwardRaw(u *upstreams, m Member, raw []byte) ([]byte, error) {
	var lastErr error
	attempts := r.retryAttempts()
	for a := 0; a < attempts; a++ {
		if a > 0 {
			r.retries[m.Name].Inc()
			r.backoff(a)
		}
		c, err := u.get(m)
		if err != nil {
			lastErr = err
			continue
		}
		if t := r.cfg.Retry.OpTimeout; t > 0 {
			c.SetDeadline(time.Now().Add(t))
		}
		_, payload, err := c.RelayRaw(raw)
		if t := r.cfg.Retry.OpTimeout; t > 0 {
			c.SetDeadline(time.Time{})
		}
		if err != nil {
			lastErr = err
			u.drop(m)
			continue
		}
		r.forwards[m.Name].Inc()
		return payload, nil
	}
	return nil, fmt.Errorf("shard %s (%s): unreachable after %d attempts: %w",
		m.Name, m.Addr, attempts, lastErr)
}

// route dispatches one request. ok=false means a shard the request
// needed stayed unreachable and the client connection must drop.
func (r *Router) route(u *upstreams, req proto.Request) (proto.Response, bool) {
	if ctr := r.requests[req.Kind]; ctr != nil {
		ctr.Inc()
	}
	switch req.Kind {
	case "register":
		return r.broadcastRegister(u, req)
	case "fleet-failure":
		if req.Failure == nil {
			return proto.Response{Kind: "error", Err: "fleet-failure request missing report"}, true
		}
		resp, err := r.forward(u, r.Owner(Key{Tenant: req.Tenant, PC: req.Failure.PC}), req)
		return resp, err == nil
	case "directives":
		return r.mergeDirectives(u, req)
	case "batch", "report":
		if req.Routed {
			resp, err := r.forward(u, r.Owner(Key{Tenant: req.Tenant, PC: req.RoutePC}), req)
			return resp, err == nil
		}
		return r.scanForCase(u, req)
	case "status":
		return r.sumStatus(u, req)
	default:
		// The session protocol (failure/success/diagnose) binds state
		// to one server connection; it has no routing key and is not
		// served through the router.
		return proto.Response{Kind: "error",
			Err: fmt.Sprintf("router: unsupported request kind %q (fleet protocol only)", req.Kind)}, true
	}
}

// broadcastRegister registers the tenant on every shard. Registration
// is idempotent and any shard may later own one of the tenant's
// cases, so all shards must ack before the client is told "registered"
// — a shard that stayed unreachable drops the connection and the
// client's retry re-broadcasts.
func (r *Router) broadcastRegister(u *upstreams, req proto.Request) (proto.Response, bool) {
	var out proto.Response
	for _, m := range r.members {
		resp, err := r.forward(u, m, req)
		if err != nil {
			return proto.Response{}, false
		}
		if resp.Kind == "error" {
			// Deterministic rejection (bad module text): every shard
			// would say the same; relay the first.
			return resp, true
		}
		out = resp
	}
	return out, true
}

// mergeDirectives fans the listing out to every shard and merges the
// armed directives, sorted by case id (globally unique via the
// shards' disjoint CaseBase namespaces).
func (r *Router) mergeDirectives(u *upstreams, req proto.Request) (proto.Response, bool) {
	var ds []proto.Directive
	for _, m := range r.members {
		resp, err := r.forward(u, m, req)
		if err != nil {
			return proto.Response{}, false
		}
		if resp.Kind == "error" {
			// unknown tenant: registration has not reached every shard
			// yet, so the fleet-wide listing is not answerable.
			return resp, true
		}
		ds = append(ds, resp.Directives...)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Case < ds[j].Case })
	return proto.Response{Kind: "directives", Tenant: req.Tenant, Directives: ds}, true
}

// scanForCase serves unrouted batch/report requests from clients that
// predate routing hints: shards are tried in name order, and the
// machine-readable "unknown case" rejection means "not mine, ask the
// next". Hinted requests never pay this cost.
func (r *Router) scanForCase(u *upstreams, req proto.Request) (proto.Response, bool) {
	var last proto.Response
	for _, m := range r.members {
		resp, err := r.forward(u, m, req)
		if err != nil {
			return proto.Response{}, false
		}
		if resp.Kind == "error" && resp.Code == proto.CodeUnknownCase {
			last = resp
			continue
		}
		return resp, true
	}
	return last, true
}

// sumStatus aggregates every shard's status reply into one fleet-wide
// view: cumulative counters and live gauges sum; capacity fields
// (MaxConcurrent, Workers) sum too, reading as total fleet capacity.
func (r *Router) sumStatus(u *upstreams, req proto.Request) (proto.Response, bool) {
	var sum proto.ServerStatus
	for _, m := range r.members {
		resp, err := r.forward(u, m, req)
		if err != nil {
			return proto.Response{}, false
		}
		if resp.Kind == "error" {
			return resp, true
		}
		if resp.Status == nil {
			continue
		}
		st := resp.Status
		sum.OpenConns += st.OpenConns
		sum.ActiveDiagnoses += st.ActiveDiagnoses
		sum.QueuedDiagnoses += st.QueuedDiagnoses
		sum.CompletedDiagnoses += st.CompletedDiagnoses
		sum.FailedDiagnoses += st.FailedDiagnoses
		sum.MaxConcurrent += st.MaxConcurrent
		sum.Workers += st.Workers
		sum.CacheHits += st.CacheHits
		sum.CacheMisses += st.CacheMisses
		sum.DiagnoseTime += st.DiagnoseTime
		sum.DroppedSuccesses += st.DroppedSuccesses
		sum.DeadlineDrops += st.DeadlineDrops
		sum.OversizeRejects += st.OversizeRejects
		sum.PanicsRecovered += st.PanicsRecovered
	}
	return proto.Response{Kind: "status", Status: &sum}, true
}
