package gist

import "math/rand"

// LatencyModel captures the §6.3 diagnosis-latency comparison.
//
// Snorlax is always-on: it diagnoses after the first failure, so its
// latency is 1 observed failure regardless of how many bugs are being
// diagnosed.
//
// Gist samples in space: each production execution monitors one bug.
// A failure only advances a bug's diagnosis when (a) that bug is the
// one being monitored and (b) the failure is a recurrence of it. With
// nBugs open bugs and r recurrences needed, the expected number of
// failures before one specific bug is diagnosed is r × nBugs.
type LatencyModel struct {
	// RecurrencesNeeded is Gist's average slice-refinement count
	// (the paper reports 3.7).
	RecurrencesNeeded float64
	// Bugs is the number of concurrency bugs being diagnosed at once
	// (the paper's Chromium example uses 684 open race reports).
	Bugs int
}

// ExpectedGistFailures returns the expected failures until Gist
// diagnoses one target bug.
func (m LatencyModel) ExpectedGistFailures() float64 {
	bugs := m.Bugs
	if bugs < 1 {
		bugs = 1
	}
	return m.RecurrencesNeeded * float64(bugs)
}

// SnorlaxFailures is the constant 1: no sampling, always-on tracing.
func (m LatencyModel) SnorlaxFailures() float64 { return 1 }

// SpeedupOverGist returns the latency ratio (the paper's "at least
// 3.7×", and 2523× for Chromium's 684 open bugs).
func (m LatencyModel) SpeedupOverGist() float64 {
	return m.ExpectedGistFailures() / m.SnorlaxFailures()
}

// Simulate draws one diagnosis episode and returns the number of
// recurrences of the target bug observed before its diagnosis
// completes: each recurrence advances the diagnosis only when the
// target happens to be the bug monitored during that execution
// (probability 1/Bugs under space sampling), and
// ceil(RecurrencesNeeded) monitored recurrences are required.
func (m LatencyModel) Simulate(rng *rand.Rand) int {
	bugs := m.Bugs
	if bugs < 1 {
		bugs = 1
	}
	needed := int(m.RecurrencesNeeded)
	if float64(needed) < m.RecurrencesNeeded {
		needed++
	}
	failures := 0
	captured := 0
	for captured < needed {
		failures++
		if rng.Intn(bugs) == 0 {
			captured++
		}
	}
	return failures
}

// SimulateMean averages Simulate over n episodes.
func (m LatencyModel) SimulateMean(n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for i := 0; i < n; i++ {
		total += m.Simulate(rng)
	}
	return float64(total) / float64(n)
}
