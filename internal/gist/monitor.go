package gist

import (
	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

// Monitor is Gist's in-production instrumentation: it watches the
// sliced program points and records the order of shared accesses.
// Ordering across threads requires blocking synchronization on shared
// instrumentation state (the paper's explanation for Gist's poor
// scalability), modeled as a per-access cost that grows with the
// number of live threads — cache-line ping-pong on the shared log.
//
// Monitor implements vm.InstrHook.
type Monitor struct {
	// PCs is the instrumented slice.
	PCs map[ir.PC]bool
	// BaseCostNS is the per-access instrumentation cost at one
	// thread (default 120ns: a logging call plus a CAS).
	BaseCostNS int64
	// ContentionCostNS is the additional per-access cost per live
	// thread (default 90ns), modeling serialization on the shared
	// access log.
	ContentionCostNS int64
	// Events records the observed accesses in order.
	Events []AccessEvent
	// RecordLimit bounds the log (default 1<<20).
	RecordLimit int
}

// AccessEvent is one instrumented access observation.
type AccessEvent struct {
	Tid  int
	PC   ir.PC
	Time int64
}

// NewMonitor returns a Monitor over the given slice.
func NewMonitor(slice map[ir.PC]bool) *Monitor {
	return &Monitor{
		PCs:              slice,
		BaseCostNS:       120,
		ContentionCostNS: 90,
		RecordLimit:      1 << 20,
	}
}

// Before implements vm.InstrHook.
func (m *Monitor) Before(tid int, in ir.Instr, live int, time int64) int64 {
	if !m.PCs[in.PC()] {
		return 0
	}
	// Only memory and synchronization operations are logged; other
	// sliced instructions are tracked via cheap path profiling,
	// which we fold into the base cost of the accesses.
	if !ir.IsMemAccess(in) && !ir.IsSyncOp(in) {
		return 0
	}
	if len(m.Events) < m.RecordLimit {
		m.Events = append(m.Events, AccessEvent{Tid: tid, PC: in.PC(), Time: time})
	}
	return m.BaseCostNS + m.ContentionCostNS*int64(live)
}

// Observed reports whether every given PC appears in the access log.
func (m *Monitor) Observed(pcs []ir.PC) bool {
	seen := map[ir.PC]bool{}
	for _, ev := range m.Events {
		seen[ev.PC] = true
	}
	for _, pc := range pcs {
		if pc != ir.NoPC && !seen[pc] {
			return false
		}
	}
	return true
}

// SharedAccessPCs returns the memory and synchronization instructions
// of the named functions that touch module globals (directly or
// through pointers) — the accesses Gist instruments when monitoring a
// bug in that code. Passing no function names selects the whole
// module.
func SharedAccessPCs(mod *ir.Module, funcs ...string) map[ir.PC]bool {
	want := map[string]bool{}
	for _, f := range funcs {
		want[f] = true
	}
	out := map[ir.PC]bool{}
	mod.Instrs(func(in ir.Instr) {
		if len(want) > 0 && !want[in.Block().Parent.Name] {
			return
		}
		if ir.IsMemAccess(in) || ir.IsSyncOp(in) {
			out[in.PC()] = true
		}
	})
	return out
}

var _ vm.InstrHook = (*Monitor)(nil)
