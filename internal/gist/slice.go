// Package gist implements the baseline Snorlax is compared against in
// §6.3 of the paper: Gist (SOSP'15 "failure sketching"), a
// concurrency-bug diagnosis tool that
//
//   - computes a static backward slice from the failing instruction,
//   - instruments the sliced program points in production (sampling
//     in space: one monitored bug per execution), tracking the order
//     of shared accesses with blocking synchronization, and
//   - iteratively broadens the slice on every recurrence of the
//     failure until the root cause is captured.
//
// The properties the comparison measures all emerge from this
// construction: per-access instrumentation with shared state makes
// overhead grow with thread count (Figure 9), and needing several
// recurrences — multiplied by the number of bugs being diagnosed —
// makes diagnosis latency far higher than Snorlax's single failure
// (§6.3).
package gist

import (
	"snorlax/internal/ir"
	"snorlax/internal/pointsto"
)

// Slicer computes static backward slices over a module's dependence
// graph: use-def edges, may-alias store→load edges (via whole-program
// inclusion-based points-to analysis), control edges from block
// predecessors' terminators, and call-boundary edges.
type Slicer struct {
	mod *ir.Module
	// deps maps each instruction to its immediate dependencies.
	deps map[ir.PC][]ir.PC
}

// NewSlicer builds the dependence graph; construction runs the
// whole-program points-to analysis (Gist has no execution trace to
// restrict it with).
func NewSlicer(mod *ir.Module) *Slicer {
	s := &Slicer{mod: mod, deps: make(map[ir.PC][]ir.PC, mod.NumInstrs())}
	pts := pointsto.NewAndersen(mod, nil)

	// defsOf: register -> defining instructions, per function.
	defs := map[*ir.Reg][]ir.PC{}
	mod.Instrs(func(in ir.Instr) {
		if d := in.Def(); d != nil {
			defs[d] = append(defs[d], in.PC())
		}
	})
	// callersOf: function -> call sites; argsOf: param -> value PCs.
	callSites := map[*ir.Func][]ir.PC{}
	mod.Instrs(func(in ir.Instr) {
		switch c := in.(type) {
		case *ir.CallInstr:
			if f := c.StaticCallee(); f != nil {
				callSites[f] = append(callSites[f], in.PC())
			}
		case *ir.SpawnInstr:
			if f := c.StaticCallee(); f != nil {
				callSites[f] = append(callSites[f], in.PC())
			}
		}
	})
	// stores grouped for alias queries.
	var stores []*ir.StoreInstr
	mod.Instrs(func(in ir.Instr) {
		if st, ok := in.(*ir.StoreInstr); ok {
			stores = append(stores, st)
		}
	})

	cfgs := map[*ir.Func]*ir.CFG{}
	cfgOf := func(f *ir.Func) *ir.CFG {
		c, ok := cfgs[f]
		if !ok {
			c = ir.NewCFG(f)
			cfgs[f] = c
		}
		return c
	}

	mod.Instrs(func(in ir.Instr) {
		pc := in.PC()
		add := func(dep ir.PC) { s.deps[pc] = append(s.deps[pc], dep) }

		// Data: defs of used registers; parameters pull in call sites.
		for _, u := range in.Uses() {
			if r, ok := u.(*ir.Reg); ok {
				if ds := defs[r]; len(ds) > 0 {
					for _, d := range ds {
						add(d)
					}
				} else {
					// Likely a parameter: depend on the call sites.
					for _, cs := range callSites[in.Block().Parent] {
						add(cs)
					}
				}
			}
		}
		// Memory: loads depend on may-aliased stores.
		if ld, ok := in.(*ir.LoadInstr); ok {
			for _, st := range stores {
				if pts.MayAlias(ld.Addr, st.Addr) {
					add(st.PC())
				}
			}
		}
		// Control: depend on the terminators of predecessor blocks.
		blk := in.Block()
		for _, b := range cfgOf(blk.Parent).Preds(blk) {
			if t := b.Terminator(); t != nil {
				add(t.PC())
			}
		}
		// Returns feed call results.
		if c, ok := in.(*ir.CallInstr); ok && c.Dst != nil {
			if f := c.StaticCallee(); f != nil {
				for _, b := range f.Blocks {
					if t := b.Terminator(); t != nil && t.Op() == ir.OpRet {
						add(t.PC())
					}
				}
			}
		}
	})
	return s
}

// Slice returns the PCs within `depth` backward-dependence steps of
// the failing instruction. Depth models Gist's iterative refinement:
// each recurrence of the failure lets Gist widen the slice by one
// level.
func (s *Slicer) Slice(failing ir.PC, depth int) map[ir.PC]bool {
	out := map[ir.PC]bool{failing: true}
	frontier := []ir.PC{failing}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []ir.PC
		for _, pc := range frontier {
			for _, dep := range s.deps[pc] {
				if !out[dep] {
					out[dep] = true
					next = append(next, dep)
				}
			}
		}
		frontier = next
	}
	return out
}

// RecurrencesToCapture returns how many failure recurrences Gist
// needs before its slice contains every ground-truth event: the slice
// starts at depth 1 and widens by one level per recurrence. Returns
// (n, true) on success or (maxDepth, false) if the slice never covers
// the truth.
func (s *Slicer) RecurrencesToCapture(failing ir.PC, truth []ir.PC, maxDepth int) (int, bool) {
	for depth := 1; depth <= maxDepth; depth++ {
		slice := s.Slice(failing, depth)
		all := true
		for _, pc := range truth {
			if pc != ir.NoPC && !slice[pc] {
				all = false
				break
			}
		}
		if all {
			return depth, true
		}
	}
	return maxDepth, false
}
