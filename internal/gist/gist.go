package gist

import (
	"fmt"

	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

// DiagnoseResult is the outcome of Gist's iterative refinement on one
// bug.
type DiagnoseResult struct {
	// Recurrences is how many failure recurrences Gist consumed: one
	// per refinement round, widening the slice each time.
	Recurrences int
	// Captured reports whether the final slice's instrumentation
	// observed every ground-truth event.
	Captured bool
	// SliceSizes records the instrumented slice size per round.
	SliceSizes []int
	// OverheadPct is the instrumentation overhead of the final
	// (widest) monitored round, in percent of uninstrumented time.
	OverheadPct float64
}

// Diagnose runs Gist's refinement loop against a failing program:
// round k re-runs the failure with the depth-k slice instrumented,
// and stops once every ground-truth event was observed by the
// instrumentation. This is the per-bug "recurrences needed" number
// behind the paper's 3.7× average (§6.3).
func Diagnose(mod *ir.Module, failingPC ir.PC, truth []ir.PC, runSeed int64, maxRounds int) (*DiagnoseResult, error) {
	slicer := NewSlicer(mod)
	baseline := vm.Run(mod, vm.Config{Seed: runSeed})
	if !baseline.Failed() {
		return nil, fmt.Errorf("gist: program did not fail under seed %d", runSeed)
	}
	res := &DiagnoseResult{}
	for depth := 1; depth <= maxRounds; depth++ {
		slice := slicer.Slice(failingPC, depth)
		mon := NewMonitor(slice)
		run := vm.Run(mod, vm.Config{Seed: runSeed, Hook: mon})
		if !run.Failed() {
			// Heisenbug: instrumentation perturbed the schedule and
			// masked the failure — count the recurrence and retry
			// deeper, as Gist must wait for another recurrence.
			res.Recurrences++
			res.SliceSizes = append(res.SliceSizes, len(slice))
			continue
		}
		res.Recurrences++
		res.SliceSizes = append(res.SliceSizes, len(slice))
		if mon.Observed(truth) {
			res.Captured = true
			res.OverheadPct = 100 * float64(run.Time-baseline.Time) / float64(baseline.Time)
			return res, nil
		}
	}
	return res, nil
}
