package gist

import (
	"math"
	"testing"

	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

func TestSliceGrowsMonotonically(t *testing.T) {
	inst := corpus.ByID("pbzip2-1").Build(corpus.Variant{Failing: true})
	res := vm.Run(inst.Mod, vm.Config{Seed: 1})
	if !res.Failed() {
		t.Fatal("expected failure")
	}
	s := NewSlicer(inst.Mod)
	prev := 0
	for depth := 1; depth <= 6; depth++ {
		size := len(s.Slice(res.Failure.PC, depth))
		if size < prev {
			t.Fatalf("slice shrank at depth %d: %d < %d", depth, size, prev)
		}
		prev = size
	}
	if prev <= 1 {
		t.Fatal("slice never grew beyond the failing instruction")
	}
}

func TestSliceEventuallyCoversTruth(t *testing.T) {
	for _, id := range []string{"pbzip2-1", "httpd-4", "aget-1", "sqlite-3"} {
		inst := corpus.ByID(id).Build(corpus.Variant{Failing: true})
		res := vm.Run(inst.Mod, vm.Config{Seed: 1})
		if !res.Failed() {
			t.Fatalf("%s: expected failure", id)
		}
		s := NewSlicer(inst.Mod)
		n, ok := s.RecurrencesToCapture(res.Failure.PC, inst.TruthPCs, 12)
		if !ok {
			t.Errorf("%s: slice never covered truth within 12 rounds", id)
			continue
		}
		if n < 2 {
			t.Logf("%s: captured in %d rounds (root cause adjacent to failure)", id, n)
		}
	}
}

func TestDiagnoseNeedsMultipleRecurrences(t *testing.T) {
	// Across eval bugs, Gist must need >1 recurrence on average —
	// the structural reason Snorlax's single-failure diagnosis wins.
	total, count := 0, 0
	for _, b := range corpus.EvalSet() {
		if b.Kind == 0 { // deadlocks excluded: Gist's slice starts at a lock
			continue
		}
		inst := b.Build(corpus.Variant{Failing: true})
		res := vm.Run(inst.Mod, vm.Config{Seed: 1})
		if !res.Failed() {
			t.Fatalf("%s: expected failure", b.ID)
		}
		out, err := Diagnose(inst.Mod, res.Failure.PC, inst.TruthPCs, 1, 12)
		if err != nil {
			t.Fatalf("%s: %v", b.ID, err)
		}
		if !out.Captured {
			t.Errorf("%s: Gist never captured the root cause", b.ID)
			continue
		}
		total += out.Recurrences
		count++
		if len(out.SliceSizes) != out.Recurrences {
			t.Errorf("%s: slice size log mismatch", b.ID)
		}
	}
	if count == 0 {
		t.Fatal("no bugs diagnosed")
	}
	avg := float64(total) / float64(count)
	if avg < 1.5 {
		t.Errorf("average recurrences = %.1f, expected > 1.5 (paper: 3.7)", avg)
	}
	t.Logf("average recurrences to diagnosis: %.2f over %d bugs (paper: 3.7)", avg, count)
}

func TestMonitorCostGrowsWithThreads(t *testing.T) {
	mod := corpus.Perf("memcached", 2, 6)
	slice := SharedAccessPCs(mod, "op_worker")
	if len(slice) == 0 {
		t.Fatal("no shared accesses found")
	}
	base := vm.Run(mod, vm.Config{Seed: 3})
	monitored := vm.Run(mod, vm.Config{Seed: 3, Hook: NewMonitor(slice)})
	if base.Failed() || monitored.Failed() {
		t.Fatal("perf run failed")
	}
	overhead2 := float64(monitored.Time-base.Time) / float64(base.Time)

	mod16 := corpus.Perf("memcached", 16, 6)
	slice16 := SharedAccessPCs(mod16, "op_worker")
	base16 := vm.Run(mod16, vm.Config{Seed: 3})
	monitored16 := vm.Run(mod16, vm.Config{Seed: 3, Hook: NewMonitor(slice16)})
	overhead16 := float64(monitored16.Time-base16.Time) / float64(base16.Time)

	if overhead2 <= 0 {
		t.Errorf("2-thread overhead = %f, want > 0", overhead2)
	}
	if overhead16 <= overhead2 {
		t.Errorf("overhead did not grow with threads: %.4f (2t) vs %.4f (16t)", overhead2, overhead16)
	}
}

func TestMonitorRecordsEvents(t *testing.T) {
	// Instrumentation perturbs timing (a heisenbug risk the paper
	// ascribes to Gist), so probe a few seeds for a failing run.
	inst := corpus.ByID("aget-1").Build(corpus.Variant{Failing: true})
	var mon *Monitor
	var res *vm.Result
	for seed := int64(1); seed <= 10; seed++ {
		mon = NewMonitor(SharedAccessPCs(inst.Mod))
		res = vm.Run(inst.Mod, vm.Config{Seed: seed, Hook: mon})
		if res.Failed() {
			break
		}
	}
	if !res.Failed() {
		t.Fatal("no seed failed under instrumentation")
	}
	if len(mon.Events) == 0 {
		t.Fatal("no events recorded")
	}
	last := int64(-1)
	for _, ev := range mon.Events {
		if ev.Time < last {
			t.Fatal("events out of order")
		}
		last = ev.Time
	}
	if !mon.Observed([]ir.PC{mon.Events[0].PC}) {
		t.Error("Observed() misses a recorded PC")
	}
	if mon.Observed([]ir.PC{ir.PC(inst.Mod.NumInstrs() - 1), mon.Events[0].PC}) &&
		!mon.PCs[ir.PC(inst.Mod.NumInstrs()-1)] {
		// Only a problem if the last instruction never executed; this
		// is a soft check that Observed can return false.
		t.Log("observed unexpectedly broad")
	}
}

func TestLatencyModel(t *testing.T) {
	m := LatencyModel{RecurrencesNeeded: 3.7, Bugs: 1}
	if got := m.SpeedupOverGist(); got != 3.7 {
		t.Errorf("speedup with 1 bug = %f, want 3.7", got)
	}
	chromium := LatencyModel{RecurrencesNeeded: 3.7, Bugs: 684}
	if got := chromium.SpeedupOverGist(); math.Abs(got-2530.8) > 0.1 {
		t.Errorf("chromium speedup = %f, want ~2530.8", got)
	}
	// Monte-Carlo agreement with the closed form, within 10%.
	mc := LatencyModel{RecurrencesNeeded: 3.7, Bugs: 50}
	sim := mc.SimulateMean(2000, 7)
	want := mc.ExpectedGistFailures()
	if math.Abs(sim-want)/want > 0.10 {
		t.Errorf("simulated mean %f too far from expectation %f", sim, want)
	}
	if m.SnorlaxFailures() != 1 {
		t.Error("snorlax latency must be 1 failure")
	}
}
