package vm

import (
	"reflect"
	"testing"

	"snorlax/internal/ir"
)

// TestConfigWithDefaults pins every documented default in one table,
// so the Config doc comments, withDefaults and this test must agree.
// Both engines read the exact same resolved Config, which is what
// makes every knob engine-independent.
func TestConfigWithDefaults(t *testing.T) {
	tests := []struct {
		name string
		in   Config
		want Config
	}{
		{
			name: "zero value resolves to documented defaults",
			in:   Config{},
			want: Config{
				Engine:        EngineBytecode,
				MaxSteps:      20_000_000,
				InstrCost:     10,
				QuantumMin:    20_000,
				QuantumMax:    100_000,
				CtxSwitchCost: 1000,
				MaxThreads:    4096,
				GateBackoffNS: 500,
			},
		},
		{
			name: "explicit engines survive",
			in:   Config{Engine: EngineTreeWalk},
			want: Config{
				Engine:        EngineTreeWalk,
				MaxSteps:      20_000_000,
				InstrCost:     10,
				QuantumMin:    20_000,
				QuantumMax:    100_000,
				CtxSwitchCost: 1000,
				MaxThreads:    4096,
				GateBackoffNS: 500,
			},
		},
		{
			name: "quantum max clamps up to min",
			in:   Config{QuantumMin: 50_000, QuantumMax: 30_000},
			want: Config{
				Engine:        EngineBytecode,
				MaxSteps:      20_000_000,
				InstrCost:     10,
				QuantumMin:    50_000,
				QuantumMax:    50_000,
				CtxSwitchCost: 1000,
				MaxThreads:    4096,
				GateBackoffNS: 500,
			},
		},
		{
			name: "set fields pass through",
			in: Config{Seed: 9, MaxSteps: 5, InstrCost: 2, QuantumMin: 3,
				QuantumMax: 4, CtxSwitchCost: 6, MaxThreads: 7, GateBackoffNS: 8,
				Engine: EngineBytecode},
			want: Config{Seed: 9, MaxSteps: 5, InstrCost: 2, QuantumMin: 3,
				QuantumMax: 4, CtxSwitchCost: 6, MaxThreads: 7, GateBackoffNS: 8,
				Engine: EngineBytecode},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.in.withDefaults()
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("withDefaults() = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func parseMod(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return mod
}

const cacheSrc = `module cachetest
func main() {
entry:
  %x = add 1, 2
  print %x
  ret
}
`

// TestCompiledProgramCache: the compiled program is cached on the
// module keyed by its Finalize version — two VMs over the same module
// share one program, and re-finalizing invalidates the cache.
func TestCompiledProgramCache(t *testing.T) {
	mod := parseMod(t, cacheSrc)
	p1, err := compiledProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := compiledProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second compiledProgram call missed the cache")
	}
	mod.Finalize() // version bump
	p3, err := compiledProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("cache survived a re-finalize; stale code could run")
	}
}

// TestEngineFallback: a module the compiler rejects (here: an array
// whose length overflows the int32 operand word) must still run,
// silently, on the tree-walker — the compile error never surfaces to
// the caller.
func TestEngineFallback(t *testing.T) {
	b := ir.NewBuilder("uncompilable")
	f := b.Func("main", ir.Void)
	e := f.Block("entry")
	arr := e.Alloca(ir.ArrayOf(ir.Int, int64(1)<<33))
	p := e.IndexAddr(arr, ir.ConstInt(0))
	e.Store(ir.ConstInt(42), p)
	e.Print(e.Load(p))
	e.RetVoid()
	mod := b.MustBuild()

	v := New(mod, Config{Seed: 1}) // zero Engine requests bytecode
	if v.Engine() != EngineTreeWalk {
		t.Fatalf("engine = %v, want fallback to %v", v.Engine(), EngineTreeWalk)
	}
	res := v.Run()
	if res.Failed() {
		t.Fatalf("fallback run failed: %v", res.Failure)
	}
	if len(res.Output) != 1 || res.Output[0] != "42" {
		t.Fatalf("output = %v, want [42]", res.Output)
	}
}
