package vm_test

// BenchmarkVMExecute compares the two execution engines on identical
// workloads: a compute-bound loop (the engine's dispatch overhead
// dominates) and a real corpus bug (scheduling, locks and spawns in
// the mix). scripts/bench.sh records these under -count to feed the
// benchstat-gated CI lane; BENCH_vm.json archives the headline
// numbers.

import (
	"testing"

	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

const benchLoopSrc = `module bench
global acc: int
func work(n: int) int {
entry:
  %i = alloca int
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = lt %iv, %n
  condbr %c, body, done
body:
  %v = load @acc
  %x = mul %iv, 3
  %y = add %x, %v
  %r = rem %y, 1000003
  store %r, @acc
  %iv2 = add %iv, 1
  store %iv2, %i
  br loop
done:
  %out = load @acc
  ret %out
}
func main() {
entry:
  %a = call work(4000)
  %b = call work(4000)
  %s = add %a, %b
  print %s
  ret
}
`

func benchEngines(b *testing.B, mod *ir.Module) {
	for _, eng := range []struct {
		name string
		e    vm.Engine
	}{{"treewalk", vm.EngineTreeWalk}, {"bytecode", vm.EngineBytecode}} {
		b.Run(eng.name, func(b *testing.B) {
			cfg := vm.Config{Seed: 1, Engine: eng.e}
			// Prime: compile cache warm, and capture the per-run step
			// count for the instrs-per-second metric.
			probe := vm.Run(mod, cfg)
			if probe.Failure != nil && probe.Failure.Kind == vm.FailStep {
				b.Fatalf("workload hit the step limit: %v", probe.Failure)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vm.Run(mod, cfg)
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(probe.Steps)*float64(b.N)/secs/1e6, "Minstr/s")
			}
		})
	}
}

func BenchmarkVMExecute(b *testing.B) {
	loop, err := ir.Parse(benchLoopSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("loop", func(b *testing.B) { benchEngines(b, loop) })

	bug := corpus.ByID("mysql-1")
	if bug == nil {
		b.Fatal("corpus bug mysql-1 not found")
	}
	inst := bug.Build(corpus.Variant{Failing: true})
	b.Run("mysql-1", func(b *testing.B) { benchEngines(b, inst.Mod) })
}
