package vm

import (
	"strings"
	"testing"

	"snorlax/internal/ir"
)

// buildLockedCounter returns a module where two threads each add n to
// a shared counter under a lock; the final value must be 2n.
func buildLockedCounter(t testing.TB, n int64, locked bool) *ir.Module {
	t.Helper()
	b := ir.NewBuilder("counter")
	mu := b.Global("mu", ir.Mutex)
	ctr := b.Global("count", ir.Int)

	inc := b.Func("inc", ir.Void)
	limit := inc.Param("n", ir.Int)
	entry := inc.Block("entry")
	loop := inc.Block("loop")
	body := inc.Block("body")
	done := inc.Block("done")

	iAddr := entry.Alloca(ir.Int)
	entry.Store(ir.ConstInt(0), iAddr)
	entry.Br(loop)
	i := loop.Load(iAddr)
	loop.CondBr(loop.Lt(i, limit), body, done)
	if locked {
		body.Lock(mu)
	}
	c := body.Load(ctr)
	body.Store(body.Add(c, ir.ConstInt(1)), ctr)
	if locked {
		body.Unlock(mu)
	}
	body.Store(body.Add(body.Load(iAddr), ir.ConstInt(1)), iAddr)
	body.Br(loop)
	done.RetVoid()

	main := b.Func("main", ir.Void)
	me := main.Block("entry")
	t1 := me.Spawn(inc.Ref(), ir.ConstInt(n))
	t2 := me.Spawn(inc.Ref(), ir.ConstInt(n))
	me.Join(t1)
	me.Join(t2)
	me.RetVoid()
	return b.MustBuild()
}

func TestLockedCounterIsExact(t *testing.T) {
	m := buildLockedCounter(t, 200, true)
	for seed := int64(0); seed < 5; seed++ {
		v := New(m, Config{Seed: seed, QuantumMin: 100, QuantumMax: 500})
		res := v.Run()
		if res.Failed() {
			t.Fatalf("seed %d: unexpected failure: %v", seed, res.Failure)
		}
		got := v.LoadWord(v.GlobalAddr("count"))
		if got != 400 {
			t.Errorf("seed %d: count = %d, want 400", seed, got)
		}
	}
}

func TestUnlockedCounterLosesUpdates(t *testing.T) {
	// With tiny quanta the unsynchronized read-modify-write loses
	// updates under at least one seed; this proves the scheduler
	// actually interleaves threads mid-critical-section.
	m := buildLockedCounter(t, 300, false)
	lost := false
	for seed := int64(0); seed < 20; seed++ {
		v := New(m, Config{Seed: seed, QuantumMin: 50, QuantumMax: 200})
		res := v.Run()
		if res.Failed() {
			t.Fatalf("seed %d: unexpected failure: %v", seed, res.Failure)
		}
		if v.LoadWord(v.GlobalAddr("count")) < 600 {
			lost = true
			break
		}
	}
	if !lost {
		t.Error("no seed lost updates; scheduler may not be preempting")
	}
}

func TestDeterminism(t *testing.T) {
	m := buildLockedCounter(t, 100, true)
	r1 := Run(m, Config{Seed: 42})
	r2 := Run(m, Config{Seed: 42})
	if r1.Steps != r2.Steps || r1.Time != r2.Time || r1.Branches != r2.Branches {
		t.Errorf("same seed diverged: steps %d/%d time %d/%d branches %d/%d",
			r1.Steps, r2.Steps, r1.Time, r2.Time, r1.Branches, r2.Branches)
	}
}

func TestSeedsProduceDifferentSchedules(t *testing.T) {
	m := buildLockedCounter(t, 100, true)
	r1 := Run(m, Config{Seed: 1})
	r2 := Run(m, Config{Seed: 2})
	// Virtual end times depend on context-switch patterns; two seeds
	// matching exactly would suggest the seed is ignored.
	if r1.Time == r2.Time && r1.Steps == r2.Steps {
		t.Logf("warning: seeds 1 and 2 gave identical executions (time=%d steps=%d)", r1.Time, r1.Steps)
	}
}

func buildDeadlock(t testing.TB) *ir.Module {
	t.Helper()
	b := ir.NewBuilder("dl")
	muA := b.Global("A", ir.Mutex)
	muB := b.Global("B", ir.Mutex)

	mk := func(name string, first, second *ir.GlobalRef) *ir.FuncBuilder {
		f := b.Func(name, ir.Void)
		e := f.Block("entry")
		e.Lock(first)
		e.SleepNS(200_000)
		e.Lock(second)
		e.Unlock(second)
		e.Unlock(first)
		e.RetVoid()
		return f
	}
	t1 := mk("left", muA, muB)
	t2 := mk("right", muB, muA)

	main := b.Func("main", ir.Void)
	me := main.Block("entry")
	a := me.Spawn(t1.Ref())
	c := me.Spawn(t2.Ref())
	me.Join(a)
	me.Join(c)
	me.RetVoid()
	return b.MustBuild()
}

func TestDeadlockDetection(t *testing.T) {
	m := buildDeadlock(t)
	for seed := int64(0); seed < 5; seed++ {
		res := Run(m, Config{Seed: seed})
		if !res.Failed() || res.Failure.Kind != FailDeadlock {
			t.Fatalf("seed %d: want deadlock, got %v", seed, res.Failure)
		}
		if len(res.Failure.DeadlockPCs) != 2 {
			t.Errorf("seed %d: cycle has %d PCs, want 2", seed, len(res.Failure.DeadlockPCs))
		}
		// The failing PC must be a lock instruction.
		in := m.InstrAt(res.Failure.PC)
		if in.Op() != ir.OpLock {
			t.Errorf("seed %d: failing instruction is %s, want lock", seed, in)
		}
	}
}

func TestSelfDeadlock(t *testing.T) {
	b := ir.NewBuilder("self")
	mu := b.Global("mu", ir.Mutex)
	main := b.Func("main", ir.Void)
	e := main.Block("entry")
	e.Lock(mu)
	e.Lock(mu)
	e.Unlock(mu)
	e.RetVoid()
	res := Run(b.MustBuild(), Config{})
	if !res.Failed() || res.Failure.Kind != FailDeadlock {
		t.Fatalf("want self-deadlock, got %v", res.Failure)
	}
}

func TestJoinSelfDeadlock(t *testing.T) {
	src := `
module js
func main() {
entry:
  %x = alloca int
  store 0, %x
  %tid = load %x
  join %tid
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if !res.Failed() || res.Failure.Kind != FailDeadlock {
		t.Fatalf("want join-self deadlock, got %v", res.Failure)
	}
}

func TestNullDerefCrash(t *testing.T) {
	src := `
module nd
struct S {
  x: int
}
global p: *S
func main() {
entry:
  %s = load @p
  %xa = fieldaddr %s, x
  %v = load %xa
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if !res.Failed() || res.Failure.Kind != FailCrash {
		t.Fatalf("want crash, got %v", res.Failure)
	}
	in := m.InstrAt(res.Failure.PC)
	if in.Op() != ir.OpFieldAddr {
		t.Errorf("failing instruction = %s, want fieldaddr", in)
	}
}

func TestAssertionFailure(t *testing.T) {
	src := `
module af
func main() {
entry:
  %c = eq 1, 2
  assert %c, "one is not two"
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if !res.Failed() || res.Failure.Kind != FailCrash {
		t.Fatalf("want crash, got %v", res.Failure)
	}
	if want := "one is not two"; !contains(res.Failure.Msg, want) {
		t.Errorf("failure msg %q missing %q", res.Failure.Msg, want)
	}
}

func TestDivisionByZero(t *testing.T) {
	src := `
module dz
func main() {
entry:
  %z = sub 1, 1
  %q = div 10, %z
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if !res.Failed() || !contains(res.Failure.Msg, "division by zero") {
		t.Fatalf("want division by zero, got %v", res.Failure)
	}
}

func TestUnlockNotHeld(t *testing.T) {
	src := `
module unh
global mu: mutex
func main() {
entry:
  unlock @mu
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if !res.Failed() || !contains(res.Failure.Msg, "not held") {
		t.Fatalf("want unlock-not-held crash, got %v", res.Failure)
	}
}

func TestIndexOutOfRange(t *testing.T) {
	src := `
module ioor
global tab: [3]int
func main() {
entry:
  %e = indexaddr @tab, 7
  store 1, %e
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if !res.Failed() || !contains(res.Failure.Msg, "out of range") {
		t.Fatalf("want out-of-range crash, got %v", res.Failure)
	}
}

func TestStepLimit(t *testing.T) {
	src := `
module spin
func main() {
entry:
  br entry
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{MaxSteps: 1000})
	if !res.Failed() || res.Failure.Kind != FailStep {
		t.Fatalf("want step-limit failure, got %v", res.Failure)
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	src := `
module sl
func main() {
entry:
  sleep 5000000
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	if res.Time < 5_000_000 {
		t.Errorf("final time %d < sleep duration", res.Time)
	}
}

func TestPrintOutput(t *testing.T) {
	src := `
module po
func main() {
entry:
  %x = add 40, 2
  print %x
  print 1, 2, 3
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	if len(res.Output) != 2 || res.Output[0] != "42" || res.Output[1] != "1 2 3" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestCallReturnValues(t *testing.T) {
	src := `
module crv
func fib(n: int) int {
entry:
  %c = lt %n, 2
  condbr %c, base, rec
base:
  ret %n
rec:
  %n1 = sub %n, 1
  %n2 = sub %n, 2
  %a = call fib(%n1)
  %b = call fib(%n2)
  %r = add %a, %b
  ret %r
}
func main() {
entry:
  %r = call fib(12)
  print %r
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	if len(res.Output) != 1 || res.Output[0] != "144" {
		t.Errorf("fib(12) output = %q, want 144", res.Output)
	}
}

func TestIndirectCallExecution(t *testing.T) {
	src := `
module ice
global fp: func(int) int
func triple(x: int) int {
entry:
  %r = mul %x, 3
  ret %r
}
func main() {
entry:
  store triple, @fp
  %f = load @fp
  %r = call %f(14)
  print %r
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	if res.Output[0] != "42" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestWatchEventsRecordTimes(t *testing.T) {
	m := buildDeadlock(t)
	// Watch the two second-lock attempts.
	var watch []ir.PC
	m.Instrs(func(in ir.Instr) {
		if in.Op() == ir.OpLock {
			watch = append(watch, in.PC())
		}
	})
	wp := map[ir.PC]bool{}
	for _, pc := range watch {
		wp[pc] = true
	}
	res := Run(m, Config{Seed: 3, WatchPCs: wp})
	if !res.Failed() {
		t.Fatal("expected deadlock")
	}
	if len(res.Watch) < 3 {
		t.Fatalf("watch events = %d, want >= 3", len(res.Watch))
	}
	last := int64(-1)
	for _, ev := range res.Watch {
		if ev.Time < last {
			t.Errorf("watch events out of order: %d after %d", ev.Time, last)
		}
		last = ev.Time
	}
}

func TestGlobalInitialValue(t *testing.T) {
	src := `
module gi
global start: int = 99
func main() {
entry:
  %v = load @start
  print %v
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if res.Output[0] != "99" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestBranchesCounted(t *testing.T) {
	m := buildLockedCounter(t, 50, true)
	res := Run(m, Config{Seed: 0})
	if res.Branches == 0 {
		t.Error("no branches counted")
	}
	if res.MaxThreads != 3 {
		t.Errorf("MaxThreads = %d, want 3", res.MaxThreads)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
