package vm

import (
	"fmt"
	"strings"

	"snorlax/internal/ir"
)

// step executes exactly one instruction of thread t.
func (v *VM) step(t *thread) {
	fr := t.top()
	in := fr.block.Instrs[fr.idx]
	pc := in.PC()

	if v.cfg.Gate != nil && !v.cfg.Gate.Allow(t.id, in, v.clock) {
		// Replay fence: back off and retry; the scheduler runs other
		// threads meanwhile. The retry consumes step budget so an
		// unenforceable order terminates with FailStep instead of
		// spinning forever.
		v.steps++
		t.state = tSleeping
		t.wakeAt = v.clock + v.cfg.GateBackoffNS
		v.nSleeping++
		return
	}
	if v.cfg.WatchPCs[pc] {
		v.watch = append(v.watch, WatchEvent{PC: pc, Thread: t.id, Time: v.clock})
	}
	if v.cfg.Hook != nil {
		if cost := v.cfg.Hook.Before(t.id, in, v.liveCount(), v.clock); cost > 0 {
			v.clock += cost
		}
	}
	v.steps++
	v.clock += v.cfg.InstrCost

	switch i := in.(type) {
	case *ir.AllocaInstr:
		fr.regs[i.Dst.Index] = v.mem.alloc(wordsOf(i.Elem))
		fr.idx++
	case *ir.NewInstr:
		fr.regs[i.Dst.Index] = v.mem.alloc(wordsOf(i.Elem))
		fr.idx++
	case *ir.LoadInstr:
		addr := v.eval(fr, i.Addr)
		if !v.checkAddr(addr, pc, t.id, "load") {
			return
		}
		if v.cfg.Access != nil {
			v.cfg.Access.OnAccess(t.id, in, addr, false, v.clock)
		}
		fr.regs[i.Dst.Index] = v.mem.load(addr)
		fr.idx++
	case *ir.StoreInstr:
		addr := v.eval(fr, i.Addr)
		if !v.checkAddr(addr, pc, t.id, "store") {
			return
		}
		if v.cfg.Access != nil {
			v.cfg.Access.OnAccess(t.id, in, addr, true, v.clock)
		}
		v.mem.store(addr, v.eval(fr, i.Val))
		fr.idx++
	case *ir.FieldAddrInstr:
		base := v.eval(fr, i.Base)
		if !v.checkAddr(base, pc, t.id, "fieldaddr") {
			return
		}
		st := i.StructType()
		fr.regs[i.Dst.Index] = base + st.FieldOffset(i.Field)
		fr.idx++
	case *ir.IndexAddrInstr:
		base := v.eval(fr, i.Base)
		if !v.checkAddr(base, pc, t.id, "indexaddr") {
			return
		}
		at := ir.Deref(i.Base.Type()).(*ir.ArrayType)
		idx := v.eval(fr, i.Index)
		if idx < 0 || idx >= at.Len {
			v.fail(FailCrash, pc, t.id, "index %d out of range [0,%d)", idx, at.Len)
			return
		}
		fr.regs[i.Dst.Index] = base + idx*wordsOf(at.Elem)
		fr.idx++
	case *ir.BinInstr:
		x, y := v.eval(fr, i.X), v.eval(fr, i.Y)
		res, err := evalBin(i.BOp, x, y)
		if err != "" {
			v.fail(FailCrash, pc, t.id, "%s", err)
			return
		}
		fr.regs[i.Dst.Index] = res
		fr.idx++
	case *ir.CastInstr:
		fr.regs[i.Dst.Index] = v.eval(fr, i.Val)
		fr.idx++
	case *ir.BrInstr:
		v.emit(TraceEvent{Kind: EvUncondBranch, Tid: t.id, Time: v.clock,
			From: pc, To: i.Target.FirstPC(), Live: v.liveCount()})
		fr.block = i.Target
		fr.idx = 0
	case *ir.CondBrInstr:
		taken := v.eval(fr, i.Cond) != 0
		target := i.Else
		if taken {
			target = i.Then
		}
		v.emit(TraceEvent{Kind: EvCondBranch, Tid: t.id, Time: v.clock,
			From: pc, To: target.FirstPC(), Taken: taken, Live: v.liveCount()})
		fr.block = target
		fr.idx = 0
	case *ir.CallInstr:
		fn, indirect, ok := v.resolveCallee(fr, i.Callee, pc, t.id)
		if !ok {
			return
		}
		kind := EvCall
		if indirect {
			kind = EvIndirectCall
		}
		v.emit(TraceEvent{Kind: kind, Tid: t.id, Time: v.clock,
			From: pc, To: fn.Entry().FirstPC(), Live: v.liveCount()})
		args := make([]int64, len(i.Args))
		for j, a := range i.Args {
			args[j] = v.eval(fr, a)
		}
		nf := &frame{fn: fn, block: fn.Entry(), regs: make([]int64, len(fn.Regs)), retDst: i.Dst}
		for j, a := range args {
			nf.regs[fn.Params[j].Index] = a
		}
		fr.idx++ // resume after the call upon return
		t.stack = append(t.stack, nf)
	case *ir.RetInstr:
		var ret int64
		if i.Val != nil {
			ret = v.eval(fr, i.Val)
		}
		retDst := fr.retDst
		t.stack = t.stack[:len(t.stack)-1]
		if len(t.stack) == 0 {
			t.state = tExited
			v.nLive--
			v.emit(TraceEvent{Kind: EvThreadEnd, Tid: t.id, Time: v.clock,
				From: pc, To: ir.NoPC, Live: v.liveCount()})
			v.wakeJoiners(t.id)
			return
		}
		caller := t.top()
		if retDst != nil {
			caller.regs[retDst.Index] = ret
		}
		// The return site is the instruction the caller resumes at.
		to := ir.NoPC
		if caller.idx < len(caller.block.Instrs) {
			to = caller.block.Instrs[caller.idx].PC()
		}
		v.emit(TraceEvent{Kind: EvRet, Tid: t.id, Time: v.clock,
			From: pc, To: to, Live: v.liveCount()})
	case *ir.SpawnInstr:
		fn, _, ok := v.resolveCallee(fr, i.Callee, pc, t.id)
		if !ok {
			return
		}
		if v.liveCount() >= v.cfg.MaxThreads {
			v.fail(FailCrash, pc, t.id, "thread limit %d exceeded", v.cfg.MaxThreads)
			return
		}
		args := make([]int64, len(i.Args))
		for j, a := range i.Args {
			args[j] = v.eval(fr, a)
		}
		tid := v.spawnThread(fn, args)
		fr.regs[i.Dst.Index] = int64(tid)
		fr.idx++
	case *ir.JoinInstr:
		tid := v.eval(fr, i.Tid)
		if tid < 0 || tid >= int64(len(v.threads)) {
			v.fail(FailCrash, pc, t.id, "join of invalid thread %d", tid)
			return
		}
		if tid == int64(t.id) {
			v.fail(FailDeadlock, pc, t.id, "thread joins itself")
			v.failure.DeadlockPCs = []ir.PC{pc}
			v.failure.DeadlockTids = []int{t.id}
			return
		}
		if v.threads[tid].state != tExited {
			t.state = tBlockedJoin
			t.waitTid = int(tid)
			v.pauseThread(t)
			return // re-execute join when woken
		}
		fr.idx++
	case *ir.LockInstr:
		addr := v.eval(fr, i.Addr)
		if !v.checkAddr(addr, pc, t.id, "lock") {
			return
		}
		owner, held := v.lockOwner[addr]
		if !held {
			v.lockOwner[addr] = t.id
			v.mem.store(addr, int64(t.id)+1)
			if v.cfg.Access != nil {
				v.cfg.Access.OnLock(t.id, in, addr, true, v.clock)
			}
			fr.idx++
			return
		}
		if owner == t.id {
			v.fail(FailDeadlock, pc, t.id, "thread %d re-locks a mutex it holds", t.id)
			v.failure.DeadlockPCs = []ir.PC{pc}
			v.failure.DeadlockTids = []int{t.id}
			return
		}
		t.state = tBlockedLock
		t.waitLock = addr
		v.lockWaiters[addr] = append(v.lockWaiters[addr], t.id)
		v.pauseThread(t)
		v.checkDeadlockFrom(t.id)
	case *ir.UnlockInstr:
		addr := v.eval(fr, i.Addr)
		if !v.checkAddr(addr, pc, t.id, "unlock") {
			return
		}
		owner, held := v.lockOwner[addr]
		if !held || owner != t.id {
			v.fail(FailCrash, pc, t.id, "unlock of mutex not held by thread %d", t.id)
			return
		}
		delete(v.lockOwner, addr)
		v.mem.store(addr, 0)
		if v.cfg.Access != nil {
			v.cfg.Access.OnLock(t.id, in, addr, false, v.clock)
		}
		// Wake all waiters; they retry the lock instruction and all
		// but one re-block, modeling contention.
		for _, wid := range v.lockWaiters[addr] {
			w := v.threads[wid]
			if w.state == tBlockedLock && w.waitLock == addr {
				w.state = tRunnable
				v.emit(TraceEvent{Kind: EvContextSwitch, Tid: w.id, Time: v.clock,
					From: ir.NoPC, To: w.curPC(), Live: v.liveCount()})
			}
		}
		delete(v.lockWaiters, addr)
		fr.idx++
	case *ir.WaitInstr:
		muAddr := v.eval(fr, i.Mu)
		cvAddr := v.eval(fr, i.Cv)
		if !v.checkAddr(muAddr, pc, t.id, "wait") || !v.checkAddr(cvAddr, pc, t.id, "wait") {
			return
		}
		switch t.condPhase {
		case 0:
			// Release the mutex and start waiting.
			owner, held := v.lockOwner[muAddr]
			if !held || owner != t.id {
				v.fail(FailCrash, pc, t.id, "wait on mutex not held by thread %d", t.id)
				return
			}
			delete(v.lockOwner, muAddr)
			v.mem.store(muAddr, 0)
			for _, wid := range v.lockWaiters[muAddr] {
				w := v.threads[wid]
				if w.state == tBlockedLock && w.waitLock == muAddr {
					w.state = tRunnable
				}
			}
			delete(v.lockWaiters, muAddr)
			t.condPhase = 1
			t.waitCond = cvAddr
			t.state = tBlockedCond
			v.condWaiters[cvAddr] = append(v.condWaiters[cvAddr], t.id)
			v.pauseThread(t)
		case 2:
			// Notified: reacquire the mutex, then continue.
			owner, held := v.lockOwner[muAddr]
			if !held {
				v.lockOwner[muAddr] = t.id
				v.mem.store(muAddr, int64(t.id)+1)
				t.condPhase = 0
				fr.idx++
				return
			}
			if owner == t.id {
				v.fail(FailDeadlock, pc, t.id, "thread %d re-locks a mutex it holds", t.id)
				v.failure.DeadlockPCs = []ir.PC{pc}
				v.failure.DeadlockTids = []int{t.id}
				return
			}
			t.state = tBlockedLock
			t.waitLock = muAddr
			v.lockWaiters[muAddr] = append(v.lockWaiters[muAddr], t.id)
			v.pauseThread(t)
			v.checkDeadlockFrom(t.id)
		}
	case *ir.NotifyInstr:
		cvAddr := v.eval(fr, i.Cv)
		if !v.checkAddr(cvAddr, pc, t.id, "notify") {
			return
		}
		// Broadcast: wake every waiter; a notify with no waiters is
		// lost, exactly like pthread_cond_broadcast.
		for _, wid := range v.condWaiters[cvAddr] {
			w := v.threads[wid]
			if w.state == tBlockedCond && w.waitCond == cvAddr {
				w.condPhase = 2
				w.state = tRunnable
				v.emit(TraceEvent{Kind: EvContextSwitch, Tid: w.id, Time: v.clock,
					From: ir.NoPC, To: w.curPC(), Live: v.liveCount()})
			}
		}
		delete(v.condWaiters, cvAddr)
		fr.idx++
	case *ir.SleepInstr:
		dur := v.eval(fr, i.Dur)
		if dur < 0 {
			dur = 0
		}
		t.state = tSleeping
		t.wakeAt = v.clock + dur
		v.nSleeping++
		fr.idx++
		v.pauseThread(t)
	case *ir.AssertInstr:
		if v.eval(fr, i.Cond) == 0 {
			v.fail(FailCrash, pc, t.id, "assertion failed: %s", i.Msg)
			return
		}
		fr.idx++
	case *ir.PrintInstr:
		parts := make([]string, len(i.Args))
		for j, a := range i.Args {
			parts[j] = fmt.Sprintf("%d", v.eval(fr, a))
		}
		v.output = append(v.output, strings.Join(parts, " "))
		fr.idx++
	default:
		v.fail(FailCrash, pc, t.id, "unimplemented instruction %s", in)
	}
}

// eval computes the runtime value of an operand in frame fr.
func (v *VM) eval(fr *frame, val ir.Value) int64 {
	switch x := val.(type) {
	case *ir.Const:
		return x.Val
	case *ir.Reg:
		return fr.regs[x.Index]
	case *ir.GlobalRef:
		return v.globalAddr[x.Global]
	case *ir.FuncRef:
		return v.encodeFunc(x.Func)
	}
	panic(fmt.Sprintf("vm: unknown value %T", val))
}

// encodeFunc represents a function value as a negative integer so it
// cannot collide with memory addresses.
func (v *VM) encodeFunc(fn *ir.Func) int64 {
	for i, f := range v.mod.Funcs {
		if f == fn {
			return -int64(i) - 1
		}
	}
	panic("vm: function not in module")
}

func (v *VM) decodeFunc(val int64) *ir.Func {
	idx := -val - 1
	if idx < 0 || idx >= int64(len(v.mod.Funcs)) {
		return nil
	}
	return v.mod.Funcs[idx]
}

func (v *VM) resolveCallee(fr *frame, callee ir.Value, pc ir.PC, tid int) (fn *ir.Func, indirect bool, ok bool) {
	if fref, direct := callee.(*ir.FuncRef); direct {
		return fref.Func, false, true
	}
	fn = v.decodeFunc(v.eval(fr, callee))
	if fn == nil {
		v.fail(FailCrash, pc, tid, "call through invalid function value")
		return nil, true, false
	}
	return fn, true, true
}

// checkAddr validates a pointer dereference, reporting a crash for
// null or out-of-bounds addresses.
func (v *VM) checkAddr(addr int64, pc ir.PC, tid int, op string) bool {
	if addr == 0 {
		v.fail(FailCrash, pc, tid, "%s of null pointer", op)
		return false
	}
	if !v.mem.valid(addr) {
		v.fail(FailCrash, pc, tid, "%s of invalid address %d", op, addr)
		return false
	}
	return true
}

// evalBin computes a binary operation; err is non-empty on faults.
func evalBin(op ir.BinOp, x, y int64) (res int64, err string) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ir.Add:
		return x + y, ""
	case ir.Sub:
		return x - y, ""
	case ir.Mul:
		return x * y, ""
	case ir.Div:
		if y == 0 {
			return 0, "division by zero"
		}
		return x / y, ""
	case ir.Rem:
		if y == 0 {
			return 0, "remainder by zero"
		}
		return x % y, ""
	case ir.And:
		return x & y, ""
	case ir.Or:
		return x | y, ""
	case ir.Xor:
		return x ^ y, ""
	case ir.Shl:
		return x << (uint64(y) & 63), ""
	case ir.Shr:
		return x >> (uint64(y) & 63), ""
	case ir.Eq:
		return b2i(x == y), ""
	case ir.Ne:
		return b2i(x != y), ""
	case ir.Lt:
		return b2i(x < y), ""
	case ir.Le:
		return b2i(x <= y), ""
	case ir.Gt:
		return b2i(x > y), ""
	case ir.Ge:
		return b2i(x >= y), ""
	}
	return 0, fmt.Sprintf("unknown binary op %d", op)
}

// wakeJoiners resumes threads blocked joining tid.
func (v *VM) wakeJoiners(tid int) {
	for _, t := range v.threads {
		if t.state == tBlockedJoin && t.waitTid == tid {
			t.state = tRunnable
			v.emit(TraceEvent{Kind: EvContextSwitch, Tid: t.id, Time: v.clock,
				From: ir.NoPC, To: t.curPC(), Live: v.liveCount()})
		}
	}
}
