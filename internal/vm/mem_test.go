package vm

import (
	"testing"
	"testing/quick"
)

func TestMemoryBasics(t *testing.T) {
	m := newMemory()
	if m.valid(0) {
		t.Error("null address valid")
	}
	a := m.alloc(4)
	b := m.alloc(1)
	if a == 0 || b == 0 || a == b {
		t.Fatalf("alloc returned %d, %d", a, b)
	}
	if b != a+4 {
		t.Errorf("bump allocation gap: %d then %d", a, b)
	}
	m.store(a+3, 77)
	if got := m.load(a + 3); got != 77 {
		t.Errorf("load = %d", got)
	}
	if got := m.load(a); got != 0 {
		t.Errorf("fresh word = %d, want 0", got)
	}
	if !m.valid(a) || !m.valid(b) || m.valid(b+1) {
		t.Error("validity bounds wrong")
	}
}

func TestMemoryZeroSizeAlloc(t *testing.T) {
	m := newMemory()
	a := m.alloc(0)
	bAddr := m.alloc(-3)
	if a == bAddr {
		t.Error("degenerate allocations must still get distinct words")
	}
	if !m.valid(a) || !m.valid(bAddr) {
		t.Error("degenerate allocations must be valid")
	}
}

func TestMemoryPageBoundaries(t *testing.T) {
	m := newMemory()
	base := m.alloc(3 * pageWords)
	// Write across page boundaries and read back.
	for _, off := range []int64{0, pageWords - 1, pageWords, 2*pageWords - 1, 2 * pageWords, 3*pageWords - 1} {
		m.store(base+off, off*7+1)
	}
	for _, off := range []int64{0, pageWords - 1, pageWords, 2*pageWords - 1, 2 * pageWords, 3*pageWords - 1} {
		if got := m.load(base + off); got != off*7+1 {
			t.Errorf("offset %d: load = %d, want %d", off, got, off*7+1)
		}
	}
}

func TestMemoryStoreLoadProperty(t *testing.T) {
	// Property: after a sequence of stores, every address holds its
	// most recent value and untouched addresses hold zero.
	check := func(writes []uint16, vals []int64) bool {
		m := newMemory()
		base := m.alloc(1 << 16)
		want := map[int64]int64{}
		for i, w := range writes {
			if i >= len(vals) {
				break
			}
			addr := base + int64(w)
			m.store(addr, vals[i])
			want[addr] = vals[i]
		}
		for addr, v := range want {
			if m.load(addr) != v {
				return false
			}
		}
		// Spot-check some untouched addresses.
		for probe := int64(0); probe < 1<<16; probe += 4099 {
			addr := base + probe
			if _, written := want[addr]; !written && m.load(addr) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
