// Package vm executes IR modules on a simulated multithreaded machine.
//
// The VM stands in for the production hardware in the Snorlax paper:
// it provides threads, a preemptive scheduler with seeded randomness,
// a virtual nanosecond clock (the invariant-TSC analogue), mutexes
// with waits-for deadlock detection, fail-stop crash semantics, and
// hook points where the simulated processor-trace encoder
// (internal/pt) and the Gist baseline's instrumentation attach.
//
// Virtual time is the foundation of the coarse interleaving study
// (§3 of the paper): every instruction costs a configurable number of
// nanoseconds, sleeps model I/O and computation, and the clock is
// global across threads, so the time elapsed between two events in
// different threads is well defined exactly like the paper's
// cross-core invariant TSC.
package vm

import (
	"fmt"

	"snorlax/internal/ir"
)

// FailureKind classifies how an execution failed.
type FailureKind int

// The failure kinds the VM can report.
const (
	// FailNone means the execution completed without failure.
	FailNone FailureKind = iota
	// FailCrash is a fail-stop fault: null/invalid dereference,
	// division by zero, or an explicit assertion failure.
	FailCrash
	// FailDeadlock means every live thread is blocked and at least
	// one waits-for cycle exists among lock waiters.
	FailDeadlock
	// FailStep means the execution exceeded Config.MaxSteps; it
	// usually indicates a livelock or a runaway corpus program.
	FailStep
)

func (k FailureKind) String() string {
	switch k {
	case FailNone:
		return "none"
	case FailCrash:
		return "crash"
	case FailDeadlock:
		return "deadlock"
	case FailStep:
		return "step-limit"
	}
	return fmt.Sprintf("failure(%d)", int(k))
}

// Failure describes a failed execution. It is the analogue of the
// crash report Snorlax clients obtain from the OS error tracker: it
// carries the failure kind and the failing program counter, which seed
// the server-side analysis.
type Failure struct {
	Kind FailureKind
	// PC is the program counter of the failing instruction: the
	// faulting access for a crash, or the lock attempt that closed
	// the waits-for cycle for a deadlock.
	PC ir.PC
	// Thread is the id of the failing thread.
	Thread int
	// Time is the virtual time of the failure in nanoseconds.
	Time int64
	// Msg is a human-readable description.
	Msg string
	// DeadlockPCs holds, for deadlocks, the lock-attempt PC of every
	// thread participating in the cycle (including PC itself).
	DeadlockPCs []ir.PC
	// DeadlockTids holds the thread ids parallel to DeadlockPCs.
	DeadlockTids []int
}

func (f *Failure) Error() string {
	return fmt.Sprintf("%s at pc=%d thread=%d t=%dns: %s", f.Kind, f.PC, f.Thread, f.Time, f.Msg)
}

// WatchEvent records one execution of a watched instruction. Watch
// events implement the paper's §3.2 methodology: timestamps taken
// immediately before target instructions to measure the time elapsed
// between the events leading to a concurrency bug.
type WatchEvent struct {
	PC     ir.PC
	Thread int
	Time   int64
}

// Result summarizes one execution.
type Result struct {
	// Failure is nil for successful executions.
	Failure *Failure
	// Output collects the operands of print instructions, in order.
	Output []string
	// Time is the final virtual time in nanoseconds.
	Time int64
	// Steps is the number of instructions executed.
	Steps int64
	// Watch holds events for PCs registered in Config.WatchPCs, in
	// execution order.
	Watch []WatchEvent
	// Branches counts taken control-flow edges (the events a
	// processor-trace encoder sees).
	Branches int64
	// MaxThreads is the peak number of live threads.
	MaxThreads int
}

// Failed reports whether the execution failed.
func (r *Result) Failed() bool { return r.Failure != nil }
