package vm

import (
	"fmt"
	"strings"

	"snorlax/internal/ir"
	"snorlax/internal/vm/bytecode"
)

// This file is the bytecode execution engine: a tight dispatch loop
// over the flat 32-bit word code built by internal/vm/bytecode. It is
// a statement-for-statement port of the tree-walking interpreter in
// exec.go — same evaluation order, same hook points, same failure
// messages, same virtual-time accounting — so executions are
// bit-identical between the two engines. The differential suite and
// the fuzz target enforce that invariant over the whole corpus; any
// behavioral change here must land in exec.go too, and vice versa.

// runBytecode is the bytecode engine's run loop. It is semantically
// identical to the tree-walker's Run loop but avoids the per-step
// runnable-list allocation: when the current thread is runnable and
// inside its quantum (the overwhelmingly common case), the scheduler
// would keep it running without consulting the RNG, so the list is
// only materialized — into a reused buffer — when a real scheduling
// decision is due.
func (v *VM) runBytecode() *Result {
	for v.failure == nil {
		if v.steps >= v.cfg.MaxSteps {
			pc := ir.NoPC
			if t := v.threads[v.cur]; t.state == tRunnable {
				pc = t.curPC()
			}
			v.fail(FailStep, pc, v.cur, "exceeded %d steps", v.cfg.MaxSteps)
			break
		}
		v.wakeSleepers()
		cur := v.threads[v.cur]
		if cur.state == tRunnable && v.clock < cur.quantumEnd {
			v.runQuantum(cur)
			continue
		}
		runnable := v.runnableInto()
		if len(runnable) == 0 {
			if wake, ok := v.earliestWake(); ok {
				v.clock = wake
				continue
			}
			if v.liveCount() == 0 {
				break // clean exit
			}
			v.reportHang()
			break
		}
		v.schedule(runnable)
		v.runQuantum(v.threads[v.cur])
	}
	return &Result{
		Failure:    v.failure,
		Output:     v.output,
		Time:       v.clock,
		Steps:      v.steps,
		Watch:      v.watch,
		Branches:   v.branches,
		MaxThreads: v.maxLive,
	}
}

// runnableInto is runnableIDs into a reused scratch buffer.
func (v *VM) runnableInto() []int {
	ids := v.runnableBuf[:0]
	for _, t := range v.threads {
		if t.state == tRunnable {
			ids = append(ids, t.id)
		}
	}
	v.runnableBuf = ids
	return ids
}

// bval resolves a value operand: a non-negative word is a register of
// fr, a negative word names a constant-pool slot.
func (v *VM) bval(fr *frame, w int32) int64 {
	if w >= 0 {
		return fr.regs[w]
	}
	return v.prog.Pool[^w]
}

// emitBranch reports a control-transfer event. Branch-kind events
// only count v.branches when no sink is attached, so the hot path
// skips constructing the TraceEvent; with a sink attached it defers
// to emit, which performs the identical accounting.
func (v *VM) emitBranch(kind EventKind, tid int, from, to ir.PC, taken bool) {
	if v.cfg.Sink == nil {
		v.branches++
		return
	}
	v.emit(TraceEvent{Kind: kind, Tid: tid, Time: v.clock,
		From: from, To: to, Taken: taken, Live: v.liveCount()})
}

// runQuantum executes compiled instructions of thread t until it
// blocks, exits, faults, exhausts its timeslice or the step budget.
// The per-instruction preamble replicates the run loop's checks in
// the tree-walker's order (sleeper wakeup before the step; budget and
// quantum before the next), so the sequence of observable actions is
// identical to stepping one instruction at a time — the loop only
// exists to keep the frame's code array and the dispatch hot without
// a function call per instruction. The switch mirrors (*VM).step case
// by case; cases `return` wherever the tree-walker stops stepping.
func (v *VM) runQuantum(t *thread) {
	fr := t.top()
	code := fr.code
	for {
		cip := fr.cip
		pc := ir.PC(code[cip+1])

		if v.cfg.Gate != nil && !v.cfg.Gate.Allow(t.id, v.mod.InstrAt(pc), v.clock) {
			// Replay fence: back off and retry; the scheduler runs other
			// threads meanwhile. The retry consumes step budget so an
			// unenforceable order terminates with FailStep instead of
			// spinning forever.
			v.steps++
			t.state = tSleeping
			t.wakeAt = v.clock + v.cfg.GateBackoffNS
			v.nSleeping++
			return
		}
		if v.watchDense != nil && v.watchDense[pc] {
			v.watch = append(v.watch, WatchEvent{PC: pc, Thread: t.id, Time: v.clock})
		}
		if v.cfg.Hook != nil {
			if cost := v.cfg.Hook.Before(t.id, v.mod.InstrAt(pc), v.liveCount(), v.clock); cost > 0 {
				v.clock += cost
			}
		}
		v.steps++
		v.clock += v.cfg.InstrCost

		switch bytecode.Opcode(code[cip]) {
		case bytecode.Alloca, bytecode.New:
			fr.regs[code[cip+2]] = v.mem.alloc(int64(code[cip+3]))
			fr.cip = cip + 4
		case bytecode.Load:
			addr := v.bval(fr, code[cip+3])
			if !v.checkAddr(addr, pc, t.id, "load") {
				return
			}
			if v.cfg.Access != nil {
				v.cfg.Access.OnAccess(t.id, v.mod.InstrAt(pc), addr, false, v.clock)
			}
			fr.regs[code[cip+2]] = v.mem.load(addr)
			fr.cip = cip + 4
		case bytecode.Store:
			addr := v.bval(fr, code[cip+3])
			if !v.checkAddr(addr, pc, t.id, "store") {
				return
			}
			if v.cfg.Access != nil {
				v.cfg.Access.OnAccess(t.id, v.mod.InstrAt(pc), addr, true, v.clock)
			}
			v.mem.store(addr, v.bval(fr, code[cip+2]))
			fr.cip = cip + 4
		case bytecode.FieldAddr:
			base := v.bval(fr, code[cip+3])
			if !v.checkAddr(base, pc, t.id, "fieldaddr") {
				return
			}
			fr.regs[code[cip+2]] = base + int64(code[cip+4])
			fr.cip = cip + 5
		case bytecode.IndexAddr:
			base := v.bval(fr, code[cip+3])
			if !v.checkAddr(base, pc, t.id, "indexaddr") {
				return
			}
			idx := v.bval(fr, code[cip+4])
			if idx < 0 || idx >= int64(code[cip+5]) {
				v.fail(FailCrash, pc, t.id, "index %d out of range [0,%d)", idx, int64(code[cip+5]))
				return
			}
			fr.regs[code[cip+2]] = base + idx*int64(code[cip+6])
			fr.cip = cip + 7

		case bytecode.Add:
			fr.regs[code[cip+2]] = v.bval(fr, code[cip+3]) + v.bval(fr, code[cip+4])
			fr.cip = cip + 5
		case bytecode.Sub:
			fr.regs[code[cip+2]] = v.bval(fr, code[cip+3]) - v.bval(fr, code[cip+4])
			fr.cip = cip + 5
		case bytecode.Mul:
			fr.regs[code[cip+2]] = v.bval(fr, code[cip+3]) * v.bval(fr, code[cip+4])
			fr.cip = cip + 5
		case bytecode.Div:
			y := v.bval(fr, code[cip+4])
			if y == 0 {
				v.fail(FailCrash, pc, t.id, "division by zero")
				return
			}
			fr.regs[code[cip+2]] = v.bval(fr, code[cip+3]) / y
			fr.cip = cip + 5
		case bytecode.Rem:
			y := v.bval(fr, code[cip+4])
			if y == 0 {
				v.fail(FailCrash, pc, t.id, "remainder by zero")
				return
			}
			fr.regs[code[cip+2]] = v.bval(fr, code[cip+3]) % y
			fr.cip = cip + 5
		case bytecode.And:
			fr.regs[code[cip+2]] = v.bval(fr, code[cip+3]) & v.bval(fr, code[cip+4])
			fr.cip = cip + 5
		case bytecode.Or:
			fr.regs[code[cip+2]] = v.bval(fr, code[cip+3]) | v.bval(fr, code[cip+4])
			fr.cip = cip + 5
		case bytecode.Xor:
			fr.regs[code[cip+2]] = v.bval(fr, code[cip+3]) ^ v.bval(fr, code[cip+4])
			fr.cip = cip + 5
		case bytecode.Shl:
			fr.regs[code[cip+2]] = v.bval(fr, code[cip+3]) << (uint64(v.bval(fr, code[cip+4])) & 63)
			fr.cip = cip + 5
		case bytecode.Shr:
			fr.regs[code[cip+2]] = v.bval(fr, code[cip+3]) >> (uint64(v.bval(fr, code[cip+4])) & 63)
			fr.cip = cip + 5
		case bytecode.Eq:
			fr.regs[code[cip+2]] = b2i(v.bval(fr, code[cip+3]) == v.bval(fr, code[cip+4]))
			fr.cip = cip + 5
		case bytecode.Ne:
			fr.regs[code[cip+2]] = b2i(v.bval(fr, code[cip+3]) != v.bval(fr, code[cip+4]))
			fr.cip = cip + 5
		case bytecode.Lt:
			fr.regs[code[cip+2]] = b2i(v.bval(fr, code[cip+3]) < v.bval(fr, code[cip+4]))
			fr.cip = cip + 5
		case bytecode.Le:
			fr.regs[code[cip+2]] = b2i(v.bval(fr, code[cip+3]) <= v.bval(fr, code[cip+4]))
			fr.cip = cip + 5
		case bytecode.Gt:
			fr.regs[code[cip+2]] = b2i(v.bval(fr, code[cip+3]) > v.bval(fr, code[cip+4]))
			fr.cip = cip + 5
		case bytecode.Ge:
			fr.regs[code[cip+2]] = b2i(v.bval(fr, code[cip+3]) >= v.bval(fr, code[cip+4]))
			fr.cip = cip + 5

		case bytecode.Cast:
			fr.regs[code[cip+2]] = v.bval(fr, code[cip+3])
			fr.cip = cip + 4
		case bytecode.Jump:
			v.emitBranch(EvUncondBranch, t.id, pc, ir.PC(code[cip+3]), false)
			fr.cip = code[cip+2]
		case bytecode.JumpIf:
			taken := v.bval(fr, code[cip+2]) != 0
			tgt, toPC := code[cip+5], code[cip+6]
			if taken {
				tgt, toPC = code[cip+3], code[cip+4]
			}
			v.emitBranch(EvCondBranch, t.id, pc, ir.PC(toPC), taken)
			fr.cip = tgt
		case bytecode.Call:
			fnIdx := code[cip+3]
			info := &v.prog.Funcs[fnIdx]
			v.emitBranch(EvCall, t.id, pc, info.EntryPC, false)
			v.pushCallBC(t, fr, cip, fnIdx, info)
		case bytecode.CallInd:
			fnIdx, ok := v.decodeFuncIdx(v.bval(fr, code[cip+3]))
			if !ok {
				v.fail(FailCrash, pc, t.id, "call through invalid function value")
				return
			}
			info := &v.prog.Funcs[fnIdx]
			v.emitBranch(EvIndirectCall, t.id, pc, info.EntryPC, false)
			v.pushCallBC(t, fr, cip, fnIdx, info)
		case bytecode.Return, bytecode.ReturnVal:
			var ret int64
			if bytecode.Opcode(code[cip]) == bytecode.ReturnVal {
				ret = v.bval(fr, code[cip+2])
			}
			retReg := fr.retReg
			t.stack = t.stack[:len(t.stack)-1]
			if len(t.stack) == 0 {
				t.state = tExited
				v.nLive--
				v.emit(TraceEvent{Kind: EvThreadEnd, Tid: t.id, Time: v.clock,
					From: pc, To: ir.NoPC, Live: v.liveCount()})
				v.wakeJoiners(t.id)
				return
			}
			caller := t.top()
			if retReg >= 0 {
				caller.regs[retReg] = ret
			}
			// The return site is the instruction the caller resumes at.
			to := ir.NoPC
			if int(caller.cip) < len(code) {
				to = ir.PC(code[caller.cip+1])
			}
			v.emitBranch(EvRet, t.id, pc, to, false)
		case bytecode.Spawn:
			if v.liveCount() >= v.cfg.MaxThreads {
				v.fail(FailCrash, pc, t.id, "thread limit %d exceeded", v.cfg.MaxThreads)
				return
			}
			v.doSpawnBC(t, fr, cip, code[cip+3])
		case bytecode.SpawnInd:
			fnIdx, ok := v.decodeFuncIdx(v.bval(fr, code[cip+3]))
			if !ok {
				v.fail(FailCrash, pc, t.id, "call through invalid function value")
				return
			}
			if v.liveCount() >= v.cfg.MaxThreads {
				v.fail(FailCrash, pc, t.id, "thread limit %d exceeded", v.cfg.MaxThreads)
				return
			}
			v.doSpawnBC(t, fr, cip, fnIdx)
		case bytecode.Join:
			tid := v.bval(fr, code[cip+2])
			if tid < 0 || tid >= int64(len(v.threads)) {
				v.fail(FailCrash, pc, t.id, "join of invalid thread %d", tid)
				return
			}
			if tid == int64(t.id) {
				v.fail(FailDeadlock, pc, t.id, "thread joins itself")
				v.failure.DeadlockPCs = []ir.PC{pc}
				v.failure.DeadlockTids = []int{t.id}
				return
			}
			if v.threads[tid].state != tExited {
				t.state = tBlockedJoin
				t.waitTid = int(tid)
				v.pauseThread(t)
				return // re-execute join when woken
			}
			fr.cip = cip + 3
		case bytecode.Lock:
			addr := v.bval(fr, code[cip+2])
			if !v.checkAddr(addr, pc, t.id, "lock") {
				return
			}
			owner, held := v.lockOwner[addr]
			if !held {
				v.lockOwner[addr] = t.id
				v.mem.store(addr, int64(t.id)+1)
				if v.cfg.Access != nil {
					v.cfg.Access.OnLock(t.id, v.mod.InstrAt(pc), addr, true, v.clock)
				}
				fr.cip = cip + 3
				return
			}
			if owner == t.id {
				v.fail(FailDeadlock, pc, t.id, "thread %d re-locks a mutex it holds", t.id)
				v.failure.DeadlockPCs = []ir.PC{pc}
				v.failure.DeadlockTids = []int{t.id}
				return
			}
			t.state = tBlockedLock
			t.waitLock = addr
			v.lockWaiters[addr] = append(v.lockWaiters[addr], t.id)
			v.pauseThread(t)
			v.checkDeadlockFrom(t.id)
		case bytecode.Unlock:
			addr := v.bval(fr, code[cip+2])
			if !v.checkAddr(addr, pc, t.id, "unlock") {
				return
			}
			owner, held := v.lockOwner[addr]
			if !held || owner != t.id {
				v.fail(FailCrash, pc, t.id, "unlock of mutex not held by thread %d", t.id)
				return
			}
			delete(v.lockOwner, addr)
			v.mem.store(addr, 0)
			if v.cfg.Access != nil {
				v.cfg.Access.OnLock(t.id, v.mod.InstrAt(pc), addr, false, v.clock)
			}
			// Wake all waiters; they retry the lock instruction and all
			// but one re-block, modeling contention.
			for _, wid := range v.lockWaiters[addr] {
				w := v.threads[wid]
				if w.state == tBlockedLock && w.waitLock == addr {
					w.state = tRunnable
					v.emit(TraceEvent{Kind: EvContextSwitch, Tid: w.id, Time: v.clock,
						From: ir.NoPC, To: w.curPC(), Live: v.liveCount()})
				}
			}
			delete(v.lockWaiters, addr)
			fr.cip = cip + 3
		case bytecode.Wait:
			muAddr := v.bval(fr, code[cip+2])
			cvAddr := v.bval(fr, code[cip+3])
			if !v.checkAddr(muAddr, pc, t.id, "wait") || !v.checkAddr(cvAddr, pc, t.id, "wait") {
				return
			}
			switch t.condPhase {
			case 0:
				// Release the mutex and start waiting.
				owner, held := v.lockOwner[muAddr]
				if !held || owner != t.id {
					v.fail(FailCrash, pc, t.id, "wait on mutex not held by thread %d", t.id)
					return
				}
				delete(v.lockOwner, muAddr)
				v.mem.store(muAddr, 0)
				for _, wid := range v.lockWaiters[muAddr] {
					w := v.threads[wid]
					if w.state == tBlockedLock && w.waitLock == muAddr {
						w.state = tRunnable
					}
				}
				delete(v.lockWaiters, muAddr)
				t.condPhase = 1
				t.waitCond = cvAddr
				t.state = tBlockedCond
				v.condWaiters[cvAddr] = append(v.condWaiters[cvAddr], t.id)
				v.pauseThread(t)
			case 2:
				// Notified: reacquire the mutex, then continue.
				owner, held := v.lockOwner[muAddr]
				if !held {
					v.lockOwner[muAddr] = t.id
					v.mem.store(muAddr, int64(t.id)+1)
					t.condPhase = 0
					fr.cip = cip + 4
					return
				}
				if owner == t.id {
					v.fail(FailDeadlock, pc, t.id, "thread %d re-locks a mutex it holds", t.id)
					v.failure.DeadlockPCs = []ir.PC{pc}
					v.failure.DeadlockTids = []int{t.id}
					return
				}
				t.state = tBlockedLock
				t.waitLock = muAddr
				v.lockWaiters[muAddr] = append(v.lockWaiters[muAddr], t.id)
				v.pauseThread(t)
				v.checkDeadlockFrom(t.id)
			}
		case bytecode.Notify:
			cvAddr := v.bval(fr, code[cip+2])
			if !v.checkAddr(cvAddr, pc, t.id, "notify") {
				return
			}
			// Broadcast: wake every waiter; a notify with no waiters is
			// lost, exactly like pthread_cond_broadcast.
			for _, wid := range v.condWaiters[cvAddr] {
				w := v.threads[wid]
				if w.state == tBlockedCond && w.waitCond == cvAddr {
					w.condPhase = 2
					w.state = tRunnable
					v.emit(TraceEvent{Kind: EvContextSwitch, Tid: w.id, Time: v.clock,
						From: ir.NoPC, To: w.curPC(), Live: v.liveCount()})
				}
			}
			delete(v.condWaiters, cvAddr)
			fr.cip = cip + 3
		case bytecode.Sleep:
			dur := v.bval(fr, code[cip+2])
			if dur < 0 {
				dur = 0
			}
			t.state = tSleeping
			t.wakeAt = v.clock + dur
			v.nSleeping++
			fr.cip = cip + 3
			v.pauseThread(t)
		case bytecode.Assert:
			if v.bval(fr, code[cip+2]) == 0 {
				v.fail(FailCrash, pc, t.id, "assertion failed: %s", v.prog.Strings[code[cip+3]])
				return
			}
			fr.cip = cip + 4
		case bytecode.Print:
			argc := code[cip+2]
			parts := make([]string, argc)
			for j := int32(0); j < argc; j++ {
				parts[j] = fmt.Sprintf("%d", v.bval(fr, code[cip+3+j]))
			}
			v.output = append(v.output, strings.Join(parts, " "))
			fr.cip = cip + 3 + argc
		default:
			v.fail(FailCrash, pc, t.id, "unimplemented instruction %s", v.mod.InstrAt(pc))
		}

		// Post-step, in the run loop's exact order: stop on failure,
		// block or exit; then the step-budget check, then sleeper
		// wakeup (whose trace events may charge sink cost *before*
		// the quantum comparison sees the clock), then quantum
		// expiry. A frame change (call/ret) just refreshes the
		// cached code pointer.
		if v.failure != nil || t.state != tRunnable {
			return
		}
		if top := t.top(); top != fr {
			fr = top
			code = fr.code
		}
		if v.steps >= v.cfg.MaxSteps {
			return
		}
		if v.nSleeping > 0 {
			v.wakeSleepers()
		}
		if v.clock >= t.quantumEnd {
			return
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// decodeFuncIdx decodes a function value (-index-1) into a function
// index, reporting validity.
func (v *VM) decodeFuncIdx(val int64) (int32, bool) {
	idx := -val - 1
	if idx < 0 || idx >= int64(len(v.prog.Funcs)) {
		return 0, false
	}
	return int32(idx), true
}

// pushCallBC evaluates the call's inline arguments directly into the
// callee frame's parameter registers (argument evaluation is pure, so
// skipping the intermediate slice the tree-walker builds is
// unobservable) and pushes the frame.
func (v *VM) pushCallBC(t *thread, fr *frame, cip, fnIdx int32, info *bytecode.FuncInfo) {
	code := fr.code
	argc := code[cip+4]
	nf := &frame{fn: v.mod.Funcs[fnIdx], code: code, cip: info.Start,
		regs: make([]int64, info.NumRegs), retReg: code[cip+2]}
	for j := int32(0); j < argc; j++ {
		nf.regs[info.Params[j]] = v.bval(fr, code[cip+5+j])
	}
	fr.cip = cip + 5 + argc // resume after the call upon return
	t.stack = append(t.stack, nf)
}

// doSpawnBC evaluates spawn arguments and starts the thread; the
// caller has already performed callee resolution and the live-thread
// limit check in the tree-walker's order.
func (v *VM) doSpawnBC(t *thread, fr *frame, cip, fnIdx int32) {
	code := fr.code
	argc := code[cip+4]
	args := make([]int64, argc)
	for j := int32(0); j < argc; j++ {
		args[j] = v.bval(fr, code[cip+5+j])
	}
	tid := v.spawnThread(v.mod.Funcs[fnIdx], args)
	fr.regs[code[cip+2]] = int64(tid)
	fr.cip = cip + 5 + argc
}
