package vm

import (
	"fmt"
	"math/rand"

	"snorlax/internal/ir"
	"snorlax/internal/vm/bytecode"
)

// Engine selects the execution engine.
type Engine int

// The available engines. Both engines honor every Config knob and
// produce bit-identical results — the differential suite and fuzz
// target in this package enforce that across the whole corpus.
const (
	// EngineDefault resolves to EngineBytecode (the production
	// engine) unless the module cannot be compiled, in which case the
	// VM falls back to the tree-walking interpreter.
	EngineDefault Engine = iota
	// EngineBytecode compiles the module to flat 32-bit word code
	// (internal/vm/bytecode) and runs a tight dispatch loop.
	EngineBytecode
	// EngineTreeWalk interprets ir structures directly. It is kept as
	// the differential-testing oracle; traces are bit-identical to
	// the bytecode engine.
	EngineTreeWalk
)

func (e Engine) String() string {
	switch e {
	case EngineBytecode:
		return "bytecode"
	case EngineTreeWalk:
		return "treewalk"
	}
	return "default"
}

// Config controls one execution.
type Config struct {
	// Seed drives every scheduling decision; the same seed, module
	// and config produce a bit-identical execution.
	Seed int64
	// MaxSteps bounds the number of executed instructions
	// (default 20e6). Exceeding it reports a FailStep failure.
	MaxSteps int64
	// InstrCost is the virtual time per instruction in nanoseconds
	// (default 10).
	InstrCost int64
	// QuantumMin/QuantumMax bound the scheduler timeslice in
	// nanoseconds (defaults 20_000 and 100_000). A thread runs until
	// it blocks, sleeps, or its quantum expires.
	QuantumMin, QuantumMax int64
	// CtxSwitchCost is the virtual time per context switch in
	// nanoseconds (default 1000).
	CtxSwitchCost int64
	// MaxThreads bounds concurrently live threads (default 4096).
	MaxThreads int
	// WatchPCs registers instructions whose executions are recorded
	// as WatchEvents with pre-execution timestamps (the paper's §3.2
	// clock_gettime instrumentation).
	WatchPCs map[ir.PC]bool
	// Sink, when non-nil, receives control-flow trace events.
	Sink TraceSink
	// Hook, when non-nil, observes every instruction.
	Hook InstrHook
	// Gate, when non-nil, may defer instructions (replay enforcement).
	Gate GateHook
	// Access, when non-nil, observes memory and lock operations with
	// resolved addresses.
	Access AccessHook
	// GateBackoffNS is how long a vetoed thread sleeps before
	// retrying (default 500).
	GateBackoffNS int64
	// Engine selects the execution engine (default: bytecode, with
	// automatic fallback to the tree-walker when compilation fails).
	// Every other Config field is engine-independent: both engines
	// honor Seed, MaxSteps, InstrCost, QuantumMin/Max, CtxSwitchCost,
	// MaxThreads, WatchPCs, Sink, Hook, Gate, Access and
	// GateBackoffNS identically.
	Engine Engine
}

func (c Config) withDefaults() Config {
	if c.Engine == EngineDefault {
		c.Engine = EngineBytecode
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 20_000_000
	}
	if c.InstrCost == 0 {
		c.InstrCost = 10
	}
	if c.QuantumMin == 0 {
		c.QuantumMin = 20_000
	}
	if c.QuantumMax == 0 {
		c.QuantumMax = 100_000
	}
	if c.QuantumMax < c.QuantumMin {
		c.QuantumMax = c.QuantumMin
	}
	if c.CtxSwitchCost == 0 {
		c.CtxSwitchCost = 1000
	}
	if c.MaxThreads == 0 {
		c.MaxThreads = 4096
	}
	if c.GateBackoffNS == 0 {
		c.GateBackoffNS = 500
	}
	return c
}

type tstate int

const (
	tRunnable tstate = iota
	tSleeping
	tBlockedLock
	tBlockedJoin
	tBlockedCond
	tExited
)

// frame is one function activation. The tree-walking interpreter
// positions it with (block, idx); the bytecode engine positions it
// with (code, cip) where cip indexes the program's flat code array.
// Exactly one of the two position encodings is active per execution.
type frame struct {
	fn    *ir.Func
	block *ir.Block
	idx   int
	regs  []int64
	// retDst is the caller-frame register receiving the return
	// value, or nil (tree-walk encoding).
	retDst *ir.Reg
	// code/cip position the frame for the bytecode engine; code is
	// nil under the tree-walker.
	code []int32
	cip  int32
	// retReg is the caller-frame register index receiving the return
	// value, or -1 (bytecode encoding).
	retReg int32
}

type thread struct {
	id         int
	stack      []*frame
	state      tstate
	wakeAt     int64
	waitLock   int64
	waitTid    int
	quantumEnd int64
	// condPhase tracks a wait instruction's progress: 0 = not
	// waiting, 1 = released the mutex and waiting for a notify,
	// 2 = notified, reacquiring the mutex.
	condPhase int
	waitCond  int64
}

func (t *thread) top() *frame { return t.stack[len(t.stack)-1] }

// curPC returns the PC of the instruction the thread will execute
// next, under either engine. Every compiled instruction carries its
// PC in the word after the opcode, so the bytecode path is one load.
func (t *thread) curPC() ir.PC {
	f := t.top()
	if f.code != nil {
		return ir.PC(f.code[f.cip+1])
	}
	return f.block.Instrs[f.idx].PC()
}

// VM executes one module once. Create a fresh VM (or call Run) per
// execution.
type VM struct {
	mod     *ir.Module
	cfg     Config
	mem     *memory
	clock   int64
	rng     *rand.Rand
	threads []*thread
	// globalAddr maps each global to its allocated address.
	globalAddr map[*ir.Global]int64
	// lockWaiters maps mutex address to blocked thread ids.
	lockWaiters map[int64][]int
	// condWaiters maps condition-variable address to waiting threads.
	condWaiters map[int64][]int
	// lockOwner maps mutex address to owning thread id.
	lockOwner map[int64]int
	cur       int
	steps     int64
	branches  int64
	maxLive   int
	output    []string
	watch     []WatchEvent
	failure   *Failure

	// prog is the compiled program when the bytecode engine is
	// active; nil selects the tree-walking interpreter.
	prog *bytecode.Program
	// nLive and nSleeping maintain the live and sleeping thread
	// counts incrementally so the hot loop never scans all threads.
	nLive     int
	nSleeping int
	// watchDense is WatchPCs as a dense PC-indexed slice (bytecode
	// engine fast path); nil when no PCs are watched.
	watchDense []bool
	// runnableBuf is scratch storage for the bytecode run loop's
	// runnable-thread list.
	runnableBuf []int
}

// New prepares a VM for one execution of mod. The module must be
// finalized and have a main function.
func New(mod *ir.Module, cfg Config) *VM {
	if !mod.Finalized() {
		mod.Finalize()
	}
	cfg = cfg.withDefaults()
	v := &VM{
		mod:         mod,
		cfg:         cfg,
		mem:         newMemory(),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		globalAddr:  make(map[*ir.Global]int64),
		lockWaiters: make(map[int64][]int),
		condWaiters: make(map[int64][]int),
		lockOwner:   make(map[int64]int),
	}
	for _, g := range mod.Globals {
		addr := v.mem.alloc(wordsOf(g.Typ))
		v.globalAddr[g] = addr
		if g.Init != nil {
			v.mem.store(addr, g.Init.Val)
		}
	}
	if cfg.Engine == EngineBytecode {
		if prog, err := compiledProgram(mod); err == nil && v.globalsMatch(prog) {
			v.prog = prog
		}
	}
	if len(cfg.WatchPCs) > 0 && v.prog != nil {
		v.watchDense = make([]bool, mod.NumInstrs())
		for pc, on := range cfg.WatchPCs {
			if on && int(pc) >= 0 && int(pc) < len(v.watchDense) {
				v.watchDense[pc] = true
			}
		}
	}
	main := mod.FuncByName("main")
	if main == nil {
		panic("vm: module has no main")
	}
	v.spawnThread(main, nil)
	return v
}

// Engine reports the engine this VM actually uses, after default
// resolution and compile fallback.
func (v *VM) Engine() Engine {
	if v.prog != nil {
		return EngineBytecode
	}
	return EngineTreeWalk
}

// globalsMatch asserts that the compiler's precomputed global
// addresses agree with the VM's allocator — the invariant that lets
// compiled code resolve @global operands to pool constants. The two
// derivations share one formula, so a mismatch is a bug; refusing the
// program falls back to the tree-walker rather than corrupting memory.
func (v *VM) globalsMatch(prog *bytecode.Program) bool {
	if len(prog.GlobalAddrs) != len(v.mod.Globals) {
		return false
	}
	for i, g := range v.mod.Globals {
		if v.globalAddr[g] != prog.GlobalAddrs[i] {
			return false
		}
	}
	return true
}

// compiledProgram returns the module's compiled bytecode, building
// and caching it on the module on first use. The cache is keyed by
// module version, so re-finalizing invalidates it; a compile error is
// cached too, keeping the fallback decision O(1) on every Run.
func compiledProgram(mod *ir.Module) (*bytecode.Program, error) {
	type entry struct {
		prog *bytecode.Program
		err  error
	}
	ver := mod.Version()
	if e, ok := mod.Compiled(ver).(*entry); ok {
		return e.prog, e.err
	}
	prog, err := bytecode.Compile(mod)
	mod.SetCompiled(ver, &entry{prog: prog, err: err})
	return prog, err
}

// Run executes mod to completion under cfg and returns the result.
func Run(mod *ir.Module, cfg Config) *Result {
	return New(mod, cfg).Run()
}

func wordsOf(t ir.Type) int64 {
	w := t.Size() / 8
	if w <= 0 {
		w = 1
	}
	return w
}

// GlobalAddr returns the address of a global; it exists for tests.
func (v *VM) GlobalAddr(name string) int64 {
	g := v.mod.GlobalByName(name)
	if g == nil {
		return 0
	}
	return v.globalAddr[g]
}

// LoadWord reads a word of VM memory; it exists for tests.
func (v *VM) LoadWord(addr int64) int64 { return v.mem.load(addr) }

func (v *VM) spawnThread(fn *ir.Func, args []int64) int {
	id := len(v.threads)
	var fr *frame
	if v.prog != nil {
		fi := v.mod.FuncIndex(fn)
		info := &v.prog.Funcs[fi]
		fr = &frame{fn: fn, code: v.prog.Code, cip: info.Start,
			regs: make([]int64, info.NumRegs), retReg: -1}
		for i, a := range args {
			fr.regs[info.Params[i]] = a
		}
	} else {
		fr = &frame{fn: fn, block: fn.Entry(), regs: make([]int64, len(fn.Regs)), retReg: -1}
		for i, a := range args {
			fr.regs[fn.Params[i].Index] = a
		}
	}
	t := &thread{id: id, stack: []*frame{fr}, state: tRunnable}
	v.threads = append(v.threads, t)
	v.nLive++
	if v.nLive > v.maxLive {
		v.maxLive = v.nLive
	}
	v.emit(TraceEvent{Kind: EvThreadStart, Tid: id, Time: v.clock,
		From: ir.NoPC, To: fn.Entry().FirstPC(), Live: v.liveCount()})
	return id
}

// liveCount returns the number of live (non-exited) threads. It is
// maintained incrementally — spawn increments, thread exit decrements
// — so trace-event construction stays O(1).
func (v *VM) liveCount() int { return v.nLive }

func (v *VM) emit(ev TraceEvent) {
	if v.cfg.Sink != nil {
		if cost := v.cfg.Sink.Event(ev); cost > 0 {
			v.clock += cost
		}
	}
	switch ev.Kind {
	case EvCondBranch, EvUncondBranch, EvCall, EvIndirectCall, EvRet:
		v.branches++
	}
}

func (v *VM) fail(kind FailureKind, pc ir.PC, tid int, format string, args ...any) {
	if v.failure != nil {
		return
	}
	v.failure = &Failure{
		Kind:   kind,
		PC:     pc,
		Thread: tid,
		Time:   v.clock,
		Msg:    fmt.Sprintf(format, args...),
	}
}

// Run executes the program until completion, failure, or step limit.
func (v *VM) Run() *Result {
	if v.prog != nil {
		return v.runBytecode()
	}
	for v.failure == nil {
		if v.steps >= v.cfg.MaxSteps {
			pc := ir.NoPC
			if t := v.threads[v.cur]; t.state == tRunnable {
				pc = t.curPC()
			}
			v.fail(FailStep, pc, v.cur, "exceeded %d steps", v.cfg.MaxSteps)
			break
		}
		v.wakeSleepers()
		runnable := v.runnableIDs()
		if len(runnable) == 0 {
			if wake, ok := v.earliestWake(); ok {
				v.clock = wake
				continue
			}
			if v.liveCount() == 0 {
				break // clean exit
			}
			v.reportHang()
			break
		}
		v.schedule(runnable)
		v.step(v.threads[v.cur])
	}
	return &Result{
		Failure:    v.failure,
		Output:     v.output,
		Time:       v.clock,
		Steps:      v.steps,
		Watch:      v.watch,
		Branches:   v.branches,
		MaxThreads: v.maxLive,
	}
}

func (v *VM) wakeSleepers() {
	if v.nSleeping == 0 {
		return
	}
	for _, t := range v.threads {
		if t.state == tSleeping && t.wakeAt <= v.clock {
			t.state = tRunnable
			v.nSleeping--
			// A wake is a resume point even when no thread switch
			// happens (the sleeper may be the only runnable thread),
			// so tracers sync here too.
			v.emit(TraceEvent{Kind: EvContextSwitch, Tid: t.id, Time: t.wakeAt,
				From: ir.NoPC, To: t.curPC(), Switched: false, Live: v.liveCount()})
		}
	}
}

func (v *VM) runnableIDs() []int {
	ids := make([]int, 0, len(v.threads))
	for _, t := range v.threads {
		if t.state == tRunnable {
			ids = append(ids, t.id)
		}
	}
	return ids
}

func (v *VM) earliestWake() (int64, bool) {
	var best int64
	found := false
	for _, t := range v.threads {
		if t.state == tSleeping && (!found || t.wakeAt < best) {
			best = t.wakeAt
			found = true
		}
	}
	return best, found
}

// schedule decides which thread executes the next instruction,
// preempting at quantum expiry.
func (v *VM) schedule(runnable []int) {
	curT := v.threads[v.cur]
	if curT.state == tRunnable && v.clock < curT.quantumEnd {
		return
	}
	next := runnable[v.rng.Intn(len(runnable))]
	t := v.threads[next]
	span := v.cfg.QuantumMax - v.cfg.QuantumMin
	q := v.cfg.QuantumMin
	if span > 0 {
		q += v.rng.Int63n(span + 1)
	}
	t.quantumEnd = v.clock + q
	switched := next != v.cur
	if switched {
		// A preempted (still-runnable) thread is descheduled here;
		// blocking and sleeping threads were paused in step().
		if prev := v.threads[v.cur]; prev.state == tRunnable {
			v.pauseThread(prev)
		}
		v.clock += v.cfg.CtxSwitchCost
	}
	// Every scheduling decision is a resume point: tracers sync the
	// resumed thread's stream here (PC + timestamp), matching the
	// PGE packets hardware tracers emit when tracing resumes.
	v.emit(TraceEvent{Kind: EvContextSwitch, Tid: next, Time: v.clock,
		From: ir.NoPC, To: t.curPC(), Switched: switched, Live: v.liveCount()})
	v.cur = next
}

// pauseThread closes a thread's trace timing window at the moment it
// stops executing (block, sleep, or preemption) — the PGD analogue.
func (v *VM) pauseThread(t *thread) {
	if t.state == tExited || len(t.stack) == 0 {
		return
	}
	v.emit(TraceEvent{Kind: EvPause, Tid: t.id, Time: v.clock,
		From: ir.NoPC, To: t.curPC(), Live: v.liveCount()})
}

// reportHang fires when no thread can make progress. If a waits-for
// cycle among lock waiters exists, the failure is reported as a
// deadlock anchored at a lock attempt inside the cycle.
func (v *VM) reportHang() {
	// Build waits-for edges: blocked thread -> thread it waits on.
	// Threads waiting on a condition variable wait on no specific
	// thread, so they form no edge; a hang dominated by them is a
	// lost wakeup, not a lock cycle.
	waitsFor := make(map[int]int)
	for _, t := range v.threads {
		switch t.state {
		case tBlockedLock:
			if owner, ok := v.lockOwner[t.waitLock]; ok {
				waitsFor[t.id] = owner
			}
		case tBlockedJoin:
			waitsFor[t.id] = t.waitTid
		}
	}
	if cycle := findCycle(waitsFor); len(cycle) > 0 {
		pcs := make([]ir.PC, 0, len(cycle))
		for _, tid := range cycle {
			pcs = append(pcs, v.threads[tid].curPC())
		}
		head := cycle[0]
		v.fail(FailDeadlock, v.threads[head].curPC(), head,
			"deadlock among %d threads", len(cycle))
		v.failure.DeadlockPCs = pcs
		v.failure.DeadlockTids = append([]int(nil), cycle...)
		return
	}
	// A thread stuck in a condition wait with no lock cycle is the
	// classic lost wakeup: anchor the failure at the wait so the
	// diagnosis can find the mis-ordered notify.
	for _, t := range v.threads {
		if t.state == tBlockedCond {
			v.fail(FailDeadlock, t.curPC(), t.id,
				"hang: thread %d waits on a condition that is never notified", t.id)
			return
		}
	}
	// Hang without a lock cycle (e.g. join on a blocked thread or a
	// lock whose owner exited).
	for _, t := range v.threads {
		if t.state == tBlockedLock || t.state == tBlockedJoin {
			v.fail(FailDeadlock, t.curPC(), t.id, "hang: no runnable threads")
			return
		}
	}
	v.fail(FailDeadlock, ir.NoPC, 0, "hang: no runnable threads")
}

// findCycle returns the thread ids along one cycle of the waits-for
// graph, or nil.
func findCycle(waitsFor map[int]int) []int {
	for start := range waitsFor {
		seen := map[int]int{start: 0}
		path := []int{start}
		cur := start
		for {
			next, ok := waitsFor[cur]
			if !ok {
				break
			}
			if at, visited := seen[next]; visited {
				return path[at:]
			}
			seen[next] = len(path)
			path = append(path, next)
			cur = next
		}
	}
	return nil
}

// checkDeadlockFrom detects a waits-for cycle as soon as a thread
// blocks on a lock, mirroring an OS deadlock detector; the failing PC
// is the lock attempt that closed the cycle.
func (v *VM) checkDeadlockFrom(tid int) {
	waitsFor := make(map[int]int)
	for _, t := range v.threads {
		if t.state == tBlockedLock {
			if owner, ok := v.lockOwner[t.waitLock]; ok {
				waitsFor[t.id] = owner
			}
		}
	}
	seen := map[int]bool{tid: true}
	path := []int{tid}
	cur := tid
	for {
		next, ok := waitsFor[cur]
		if !ok {
			return
		}
		if next == tid {
			pcs := make([]ir.PC, 0, len(path))
			for _, id := range path {
				pcs = append(pcs, v.threads[id].curPC())
			}
			v.fail(FailDeadlock, v.threads[tid].curPC(), tid,
				"deadlock among %d threads", len(path))
			v.failure.DeadlockPCs = pcs
			v.failure.DeadlockTids = append([]int(nil), path...)
			return
		}
		if seen[next] || v.threads[next].state != tBlockedLock {
			return
		}
		seen[next] = true
		path = append(path, next)
		cur = next
	}
}
