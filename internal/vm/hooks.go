package vm

import "snorlax/internal/ir"

// EventKind classifies the control-flow events the VM reports to a
// TraceSink. These are exactly the events a hardware control-flow
// tracer observes.
type EventKind int

// The trace event kinds.
const (
	// EvCondBranch is an executed conditional branch; Taken reports
	// its direction (a TNT bit in Intel PT terms).
	EvCondBranch EventKind = iota
	// EvUncondBranch is an executed unconditional branch. Hardware
	// tracers emit nothing for these (the decoder infers the target
	// statically), but the VM still reports them so sinks can count
	// control transfers.
	EvUncondBranch
	// EvCall is a direct call; the target is static.
	EvCall
	// EvIndirectCall is a call through a function pointer; the target
	// is dynamic (a TIP packet in Intel PT terms).
	EvIndirectCall
	// EvRet is a function return; the target is the return site.
	EvRet
	// EvThreadStart is the first event of a thread; To is the entry
	// PC of the spawned function (a PSB sync point).
	EvThreadStart
	// EvThreadEnd marks thread exit.
	EvThreadEnd
	// EvContextSwitch is a scheduler decision resuming this thread
	// (To carries the PC it resumes at). Tracers treat it as a
	// timestamped sync point — the Intel PT PGE analogue — and pay
	// per-thread buffer management costs here.
	EvContextSwitch
	// EvPause announces that this thread was descheduled (To carries
	// the PC it will resume at). Tracers write a timestamped sync —
	// the Intel PT PGD analogue — which closes the timing window of
	// the thread's packet-free trailing instructions.
	EvPause
)

func (k EventKind) String() string {
	switch k {
	case EvCondBranch:
		return "condbr"
	case EvUncondBranch:
		return "br"
	case EvCall:
		return "call"
	case EvIndirectCall:
		return "icall"
	case EvRet:
		return "ret"
	case EvThreadStart:
		return "thread-start"
	case EvThreadEnd:
		return "thread-end"
	case EvContextSwitch:
		return "ctxswitch"
	case EvPause:
		return "pause"
	}
	return "event(?)"
}

// TraceEvent is one control-flow event observed by the VM.
type TraceEvent struct {
	Kind EventKind
	// Tid is the executing thread.
	Tid int
	// Time is the virtual time of the event in nanoseconds.
	Time int64
	// From is the PC of the transferring instruction (NoPC for
	// thread start).
	From ir.PC
	// To is the destination PC: branch target, callee entry, or
	// return site. NoPC for thread end.
	To ir.PC
	// Taken is the direction of a conditional branch.
	Taken bool
	// Switched reports, for EvContextSwitch, that a different thread
	// was running before (quantum renewals of the same thread emit
	// the event with Switched false — tracers still use it as a
	// timing sync point, like Intel PT's PGE packets).
	Switched bool
	// Live is the number of live (non-exited) threads at the event.
	Live int
}

// TraceSink receives control-flow events. The returned value is the
// extra virtual time in nanoseconds the event costs the executing
// thread; this is how tracing overhead (Figure 8/9 of the paper)
// emerges in measurements rather than being asserted.
type TraceSink interface {
	Event(ev TraceEvent) int64
}

// InstrHook observes every instruction before it executes. The Gist
// baseline attaches its instrumentation here. The returned value is
// extra virtual time charged to the executing thread.
type InstrHook interface {
	Before(tid int, in ir.Instr, live int, time int64) int64
}

// AccessHook observes memory and synchronization operations with
// their resolved runtime addresses — the information an
// instrumentation-based dynamic analysis (e.g. a lockset race
// detector) needs. It is called after address evaluation and before
// the operation takes effect.
type AccessHook interface {
	// OnAccess reports a load (write=false) or store (write=true) to
	// addr by tid.
	OnAccess(tid int, in ir.Instr, addr int64, write bool, time int64)
	// OnLock reports a completed lock acquisition (acquired=true) or
	// a release (acquired=false) of the mutex at addr.
	OnLock(tid int, in ir.Instr, addr int64, acquired bool, time int64)
}

// GateHook may veto an instruction's execution: when Allow returns
// false the thread backs off (a short virtual sleep) and retries.
// Replay engines use this to enforce a recorded cross-thread order of
// shared accesses.
type GateHook interface {
	Allow(tid int, in ir.Instr, time int64) bool
}
