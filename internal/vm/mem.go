package vm

// memory is a word-addressed flat address space backed by sparse
// pages. Addresses are in words (one word = one IR scalar slot);
// address 0 is the null pointer and is never allocated.
//
// Allocation is bump-only: objects are never freed during an
// execution, so an address is valid iff it lies inside [1, next).
// This matches what the analyses need — a stable address per
// allocation for the whole execution — and makes invalid-pointer
// detection trivial.
type memory struct {
	pages map[int64]*page
	next  int64 // next free word address
}

const pageWords = 1024

type page [pageWords]int64

func newMemory() *memory {
	return &memory{pages: make(map[int64]*page), next: 1}
}

// alloc reserves n words and returns the address of the first.
func (m *memory) alloc(n int64) int64 {
	if n <= 0 {
		n = 1
	}
	addr := m.next
	m.next += n
	return addr
}

// valid reports whether addr points into allocated storage.
func (m *memory) valid(addr int64) bool {
	return addr > 0 && addr < m.next
}

// load reads the word at addr. The caller must have checked validity.
func (m *memory) load(addr int64) int64 {
	p, ok := m.pages[addr/pageWords]
	if !ok {
		return 0
	}
	return p[addr%pageWords]
}

// store writes the word at addr. The caller must have checked validity.
func (m *memory) store(addr, val int64) {
	idx := addr / pageWords
	p, ok := m.pages[idx]
	if !ok {
		p = new(page)
		m.pages[idx] = p
	}
	p[addr%pageWords] = val
}
