package vm_test

// Differential tests: the bytecode engine must be bit-identical to
// the tree-walking interpreter. Every corpus bug is executed by both
// engines under a maximally observant configuration — trace sink,
// instruction hook, access hook, watchpoints and a stateful replay
// gate, all of which feed a running hash — and the final Results plus
// the hook-interaction hashes must match exactly. The external test
// package breaks the vm <- corpus import cycle.

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

// chronicle hashes every observable hook interaction instead of
// storing it: corpus runs make millions of calls, and only equality
// between engines matters. It deliberately returns nonzero virtual
// time from Event and Before so the engines' cost-accounting paths
// are compared too, not just the happy path.
type chronicle struct {
	h   *[8]byte // scratch
	sum uint64
	n   int64
}

func newChronicle() *chronicle {
	return &chronicle{h: new([8]byte), sum: 14695981039346656037} // FNV-64a offset basis
}

func (c *chronicle) add(tag byte, vals ...int64) {
	c.n++
	c.mix(uint64(tag))
	for _, v := range vals {
		c.mix(uint64(v))
	}
}

func (c *chronicle) mix(v uint64) {
	binary.LittleEndian.PutUint64(c.h[:], v)
	for _, b := range c.h {
		c.sum ^= uint64(b)
		c.sum *= 1099511628211 // FNV-64 prime
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (c *chronicle) Event(ev vm.TraceEvent) int64 {
	c.add('e', int64(ev.Kind), int64(ev.Tid), ev.Time, int64(ev.From),
		int64(ev.To), b2i(ev.Taken), b2i(ev.Switched), int64(ev.Live))
	return int64(ev.Kind) & 1 // deterministic pure-function cost
}

func (c *chronicle) Before(tid int, in ir.Instr, live int, time int64) int64 {
	c.add('b', int64(tid), int64(in.PC()), int64(live), time)
	return int64(in.PC()) & 3
}

func (c *chronicle) OnAccess(tid int, in ir.Instr, addr int64, write bool, time int64) {
	c.add('a', int64(tid), int64(in.PC()), addr, b2i(write), time)
}

func (c *chronicle) OnLock(tid int, in ir.Instr, addr int64, acquired bool, time int64) {
	c.add('l', int64(tid), int64(in.PC()), addr, b2i(acquired), time)
}

// orderGate vetoes the first few arrivals at selected PCs, like a
// replay engine enforcing a recorded order. Vetoes are consumed in
// arrival order, so two bit-identical executions see identical veto
// decisions.
type orderGate struct {
	veto map[ir.PC]int
	ch   *chronicle
}

func (g *orderGate) Allow(tid int, in ir.Instr, time int64) bool {
	if g.veto[in.PC()] > 0 {
		g.veto[in.PC()]--
		g.ch.add('g', int64(tid), int64(in.PC()), time, 0)
		return false
	}
	g.ch.add('g', int64(tid), int64(in.PC()), time, 1)
	return true
}

// runLeg executes mod once on the given engine with full observation
// and returns the Result plus the interaction hash/count.
func runLeg(tb testing.TB, mod *ir.Module, watch []ir.PC, seed int64, eng vm.Engine, gated bool) (*vm.Result, uint64, int64) {
	tb.Helper()
	ch := newChronicle()
	cfg := vm.Config{Seed: seed, Engine: eng, Sink: ch, Hook: ch, Access: ch}
	if len(watch) > 0 {
		cfg.WatchPCs = map[ir.PC]bool{}
		for _, pc := range watch {
			cfg.WatchPCs[pc] = true
		}
	}
	if gated {
		veto := map[ir.PC]int{}
		for _, pc := range watch {
			veto[pc] = 2
		}
		cfg.Gate = &orderGate{veto: veto, ch: ch}
	}
	v := vm.New(mod, cfg)
	if eng == vm.EngineBytecode && v.Engine() != vm.EngineBytecode {
		tb.Fatalf("bytecode engine unavailable: compile fell back to %v", v.Engine())
	}
	return v.Run(), ch.sum, ch.n
}

// runBare executes without any hooks attached, covering the engines'
// sink-free fast paths (branch counting without event construction).
func runBare(mod *ir.Module, watch []ir.PC, seed int64, eng vm.Engine) *vm.Result {
	cfg := vm.Config{Seed: seed, Engine: eng}
	if len(watch) > 0 {
		cfg.WatchPCs = map[ir.PC]bool{}
		for _, pc := range watch {
			cfg.WatchPCs[pc] = true
		}
	}
	return vm.Run(mod, cfg)
}

// diffSeeds returns the scheduler seeds to sweep; CI pins one seed
// per matrix job via SNORLAX_VM_SEED.
func diffSeeds(tb testing.TB) []int64 {
	if s := os.Getenv("SNORLAX_VM_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			tb.Fatalf("bad SNORLAX_VM_SEED %q: %v", s, err)
		}
		return []int64{n}
	}
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 2, 3}
}

func assertSameRun(t *testing.T, label string, resT, resB *vm.Result, hashT, hashB uint64, nT, nB int64) {
	t.Helper()
	if !reflect.DeepEqual(resT, resB) {
		t.Errorf("%s: results diverge\n treewalk: %+v\n bytecode: %+v", label, resT, resB)
		if resT.Failure != nil || resB.Failure != nil {
			t.Errorf("%s: failures\n treewalk: %+v\n bytecode: %+v", label, resT.Failure, resB.Failure)
		}
	}
	if nT != nB {
		t.Errorf("%s: hook call counts diverge: treewalk %d, bytecode %d", label, nT, nB)
	} else if hashT != hashB {
		t.Errorf("%s: hook streams diverge after %d identical-length calls (hash %x vs %x)",
			label, nT, hashT, hashB)
	}
}

// TestEngineDifferentialCorpus runs every corpus bug, failing and
// success variants, under both engines and requires bit-identical
// observable behavior.
func TestEngineDifferentialCorpus(t *testing.T) {
	seeds := diffSeeds(t)
	for _, bug := range append(corpus.All(), corpus.Extensions()...) {
		bug := bug
		t.Run(bug.ID, func(t *testing.T) {
			t.Parallel()
			for _, failing := range []bool{true, false} {
				inst := bug.Build(corpus.Variant{Failing: failing})
				variant := "success"
				if failing {
					variant = "failing"
				}
				for _, seed := range seeds {
					label := variant + "/seed=" + strconv.FormatInt(seed, 10)

					resT, hashT, nT := runLeg(t, inst.Mod, inst.WatchPCs, seed, vm.EngineTreeWalk, true)
					resB, hashB, nB := runLeg(t, inst.Mod, inst.WatchPCs, seed, vm.EngineBytecode, true)
					assertSameRun(t, label+"/hooked", resT, resB, hashT, hashB, nT, nB)

					bareT := runBare(inst.Mod, inst.WatchPCs, seed, vm.EngineTreeWalk)
					bareB := runBare(inst.Mod, inst.WatchPCs, seed, vm.EngineBytecode)
					if !reflect.DeepEqual(bareT, bareB) {
						t.Errorf("%s/bare: results diverge\n treewalk: %+v\n bytecode: %+v",
							label, bareT, bareB)
					}
				}
			}
		})
	}
}

// TestEngineReportsBytecode pins the default-engine resolution: a
// zero-value Config must run corpus programs on the bytecode engine.
func TestEngineReportsBytecode(t *testing.T) {
	inst := corpus.All()[0].Build(corpus.Variant{})
	v := vm.New(inst.Mod, vm.Config{})
	if v.Engine() != vm.EngineBytecode {
		t.Fatalf("default engine = %v, want %v", v.Engine(), vm.EngineBytecode)
	}
	v = vm.New(inst.Mod, vm.Config{Engine: vm.EngineTreeWalk})
	if v.Engine() != vm.EngineTreeWalk {
		t.Fatalf("explicit treewalk engine = %v, want %v", v.Engine(), vm.EngineTreeWalk)
	}
}

// FuzzBytecodeDifferential feeds arbitrary textual IR to both engines
// and requires identical behavior; the seed corpus is the checked-in
// example programs.
func FuzzBytecodeDifferential(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.ir"))
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src), int64(1))
	}
	f.Add(`module tiny
func main() {
entry:
  %x = mul 6, 7
  print %x
  ret
}
`, int64(7))
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		mod, err := ir.Parse(src)
		if err != nil {
			t.Skip()
		}
		// Cap the budget so adversarial programs terminate quickly;
		// both engines get the identical config.
		run := func(eng vm.Engine) (*vm.Result, uint64, int64) {
			ch := newChronicle()
			cfg := vm.Config{Seed: seed, Engine: eng, MaxSteps: 50_000,
				Sink: ch, Hook: ch, Access: ch}
			return vm.Run(mod, cfg), ch.sum, ch.n
		}
		resT, hashT, nT := run(vm.EngineTreeWalk)
		resB, hashB, nB := run(vm.EngineBytecode)
		if !reflect.DeepEqual(resT, resB) {
			t.Errorf("results diverge\n treewalk: %+v\n bytecode: %+v", resT, resB)
		}
		if nT != nB || hashT != hashB {
			t.Errorf("hook streams diverge: %d/%x vs %d/%x", nT, hashT, nB, hashB)
		}
	})
}
