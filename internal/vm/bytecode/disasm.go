package bytecode

import (
	"fmt"
	"strings"
)

// Disasm renders the whole program as a deterministic, human-readable
// listing: one section per function, one line per instruction with
// its code offset, source PC, stringer-generated opcode name and
// decoded operands. Value operands render registers as %rN and pool
// references as $<value>; branch targets render as @<code offset>.
func (p *Program) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s (%d words, %d pool, %d strings)\n",
		p.Mod.Name, len(p.Code), len(p.Pool), len(p.Strings))
	for fi, fn := range p.Funcs {
		end := int32(len(p.Code))
		if fi+1 < len(p.Funcs) {
			end = p.Funcs[fi+1].Start
		}
		fmt.Fprintf(&b, "\nfunc %s (regs=%d params=%d entry-pc=%d)\n",
			fn.Name, fn.NumRegs, len(fn.Params), fn.EntryPC)
		for off := fn.Start; off < end; {
			off = p.disasmInstr(&b, off)
		}
	}
	return b.String()
}

// DisasmAt renders the single instruction starting at code offset off
// and returns the offset of the next instruction.
func (p *Program) DisasmAt(off int32) (string, int32) {
	var b strings.Builder
	next := p.disasmInstr(&b, off)
	return strings.TrimSuffix(b.String(), "\n"), next
}

func (p *Program) disasmInstr(b *strings.Builder, off int32) int32 {
	op := Opcode(p.Code[off])
	pc := p.Code[off+1]
	args := p.Code[off+2:]

	val := func(w int32) string {
		if w >= 0 {
			return fmt.Sprintf("%%r%d", w)
		}
		return fmt.Sprintf("$%d", p.Pool[^w])
	}
	reg := func(w int32) string {
		if w < 0 {
			return "_"
		}
		return fmt.Sprintf("%%r%d", w)
	}

	var ops []string
	n := int32(2)
	switch op {
	case Alloca, New:
		ops = []string{reg(args[0]), fmt.Sprintf("words=%d", args[1])}
		n += 2
	case Load:
		ops = []string{reg(args[0]), val(args[1])}
		n += 2
	case Store:
		ops = []string{val(args[0]), val(args[1])}
		n += 2
	case FieldAddr:
		ops = []string{reg(args[0]), val(args[1]), fmt.Sprintf("+%d", args[2])}
		n += 3
	case IndexAddr:
		ops = []string{reg(args[0]), val(args[1]), val(args[2]),
			fmt.Sprintf("len=%d", args[3]), fmt.Sprintf("elem=%d", args[4])}
		n += 5
	case Cast:
		ops = []string{reg(args[0]), val(args[1])}
		n += 2
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Eq, Ne, Lt, Le, Gt, Ge:
		ops = []string{reg(args[0]), val(args[1]), val(args[2])}
		n += 3
	case Jump:
		ops = []string{fmt.Sprintf("@%04d", args[0]), fmt.Sprintf("pc=%d", args[1])}
		n += 2
	case JumpIf:
		ops = []string{val(args[0]),
			fmt.Sprintf("then=@%04d(pc=%d)", args[1], args[2]),
			fmt.Sprintf("else=@%04d(pc=%d)", args[3], args[4])}
		n += 5
	case Call, Spawn:
		ops = []string{reg(args[0]), p.Funcs[args[1]].Name}
		for j := int32(0); j < args[2]; j++ {
			ops = append(ops, val(args[3+j]))
		}
		n += 3 + args[2]
	case CallInd, SpawnInd:
		ops = []string{reg(args[0]), "(" + val(args[1]) + ")"}
		for j := int32(0); j < args[2]; j++ {
			ops = append(ops, val(args[3+j]))
		}
		n += 3 + args[2]
	case Return:
	case ReturnVal:
		ops = []string{val(args[0])}
		n++
	case Join, Lock, Unlock, Notify, Sleep:
		ops = []string{val(args[0])}
		n++
	case Wait:
		ops = []string{val(args[0]), val(args[1])}
		n += 2
	case Assert:
		ops = []string{val(args[0]), fmt.Sprintf("%q", p.Strings[args[1]])}
		n += 2
	case Print:
		for j := int32(0); j < args[0]; j++ {
			ops = append(ops, val(args[1+j]))
		}
		n += 1 + args[0]
	default:
		ops = []string{"???"}
	}
	fmt.Fprintf(b, "  %04d  pc=%-4d %-10s %s\n", off, pc, op, strings.Join(ops, ", "))
	return off + n
}
