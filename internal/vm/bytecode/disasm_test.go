package bytecode_test

// Golden-file tests pin the bytecode layout of three representative
// corpus bugs: the full disassembly (opcodes, offsets, pool values,
// embedded PCs) must match the checked-in listing byte for byte, so
// any compiler change that moves a word shows up in review. Refresh
// with:
//
//	go test ./internal/vm/bytecode -run TestDisasmGolden -update
//
// The test package is external so it can import the corpus (which
// imports vm, which imports this package).

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"snorlax/internal/corpus"
	"snorlax/internal/vm/bytecode"
)

var update = flag.Bool("update", false, "rewrite golden disassembly files")

// One deadlock, one use-after-free order violation, one lost-wakeup
// extension bug — together they cover every opcode family.
var goldenBugs = []string{"mysql-1", "mysql-3", "log4j-notify1"}

func lookupBug(id string) *corpus.Bug {
	if b := corpus.ByID(id); b != nil {
		return b
	}
	return corpus.ExtensionByID(id)
}

func TestDisasmGolden(t *testing.T) {
	for _, id := range goldenBugs {
		t.Run(id, func(t *testing.T) {
			bug := lookupBug(id)
			if bug == nil {
				t.Fatalf("corpus bug %q not found", id)
			}
			prog, err := bytecode.Compile(bug.Build(corpus.Variant{}).Mod)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			got := prog.Disasm()
			path := filepath.Join("testdata", id+".disasm")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("disassembly differs from %s (run with -update after reviewing)\n--- got ---\n%s", path, got)
			}
		})
	}
}

// TestDisasmCoversAllCode walks every corpus program instruction by
// instruction via DisasmAt and requires the widths to tile the code
// array exactly — no gaps, no overruns, no unknown opcodes.
func TestDisasmCoversAllCode(t *testing.T) {
	for _, bug := range append(corpus.All(), corpus.Extensions()...) {
		prog, err := bytecode.Compile(bug.Build(corpus.Variant{}).Mod)
		if err != nil {
			t.Fatalf("%s: compile: %v", bug.ID, err)
		}
		seen := 0
		for off := int32(0); off < int32(len(prog.Code)); {
			line, next := prog.DisasmAt(off)
			if next <= off {
				t.Fatalf("%s: DisasmAt(%d) did not advance: %q", bug.ID, off, line)
			}
			off = next
			seen++
		}
		if seen == 0 {
			t.Errorf("%s: empty program", bug.ID)
		}
	}
}
