// Package bytecode compiles finalized IR modules to a flat 32-bit
// word code array with a constant pool, and disassembles the result.
//
// The architecture follows goawk's compiler (see SNIPPETS.md): every
// opcode is one int32 word and its operands follow inline as further
// int32 words, so the execution engine in internal/vm dispatches with
// a slice index and an integer switch instead of walking structured
// ir values through interface type switches.
//
// Word layout of one compiled instruction:
//
//	[opcode] [pc] [operand...]
//
// The second word is always the instruction's ir.PC, which keeps the
// engine's trace events, watchpoints and failure reports bit-identical
// to the tree-walking interpreter without a side table on the hot
// path. Value operands use a sign-split encoding: a non-negative word
// is a register index into the executing frame; a negative word w is
// the constant-pool slot ^w. The pool holds every constant resolved
// at compile time — IR literals, global addresses (the VM's global
// layout is deterministic, so addresses are known before execution),
// and encoded function values.
package bytecode

//go:generate go run golang.org/x/tools/cmd/stringer@latest -type=Opcode

// Opcode identifies one compiled VM instruction. The comment beside
// each opcode lists the operand words it consumes (after the pc word
// every instruction carries). "val" operands use the sign-split
// register/pool encoding; all other operands are plain indices or
// counts.
type Opcode int32

const (
	// Nop exists so the zero word is never a valid instruction.
	Nop Opcode = iota

	// Memory allocation
	Alloca // dst elemWords
	New    // dst elemWords

	// Memory access
	Load      // dst addrVal
	Store     // val addrVal
	FieldAddr // dst baseVal offsetWords
	IndexAddr // dst baseVal indexVal arrayLen elemWords

	// Value plumbing
	Cast // dst val

	// Binary operators (dst xVal yVal); one opcode per ir.BinOp so
	// the engine dispatches once instead of switching twice.
	Add
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge

	// Control flow. Branch operands carry both the target code index
	// and the target's first PC (the trace event destination).
	Jump      // target toPC
	JumpIf    // condVal thenTarget thenPC elseTarget elsePC
	Call      // dst funcIndex argc argVal...   (dst -1 = discard)
	CallInd   // dst calleeVal argc argVal...
	Return    //
	ReturnVal // val

	// Threading
	Spawn    // dst funcIndex argc argVal...
	SpawnInd // dst calleeVal argc argVal...
	Join     // tidVal

	// Synchronization
	Lock   // addrVal
	Unlock // addrVal
	Wait   // muVal cvVal
	Notify // cvVal

	// Time, checks, output
	Sleep  // durVal
	Assert // condVal msgIndex
	Print  // argc argVal...
)
