package bytecode_test

import (
	"reflect"
	"testing"

	"snorlax/internal/ir"
	"snorlax/internal/vm/bytecode"
)

func mustParse(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return mod
}

const poolSrc = `module pooltest
global counter: int
func main() {
entry:
  %a = add 7, 7
  %b = mul 7, %a
  store %b, @counter
  %c = load @counter
  print %c
  ret
}
`

// TestCompilePoolInterning pins the constant pool's dedup: the value
// 7 appears three times in the source but must occupy one slot.
func TestCompilePoolInterning(t *testing.T) {
	prog, err := bytecode.Compile(mustParse(t, poolSrc))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]int{}
	for _, v := range prog.Pool {
		seen[v]++
		if seen[v] > 1 {
			t.Errorf("pool value %d interned %d times; pool=%v", v, seen[v], prog.Pool)
		}
	}
}

// TestCompileGlobalLayout pins the compile-time global allocator: it
// must replicate the VM's bump allocation (start at word 1,
// declaration order) exactly, since compiled code embeds the
// addresses as pool constants.
func TestCompileGlobalLayout(t *testing.T) {
	mod := mustParse(t, `module globals
global a: int
global b: [4]int
global c: int
func main() {
entry:
  store 1, @a
  store 2, @c
  ret
}
`)
	prog, err := bytecode.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	// a at 1 (1 word), b at 2 (4 words), c at 6.
	want := []int64{1, 2, 6}
	if !reflect.DeepEqual(prog.GlobalAddrs, want) {
		t.Errorf("GlobalAddrs = %v, want %v", prog.GlobalAddrs, want)
	}
}

// TestCompileDeterministic: compiling the same module twice yields
// identical words, pools and function tables.
func TestCompileDeterministic(t *testing.T) {
	mod := mustParse(t, poolSrc)
	p1, err := bytecode.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := bytecode.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Code, p2.Code) || !reflect.DeepEqual(p1.Pool, p2.Pool) ||
		!reflect.DeepEqual(p1.Funcs, p2.Funcs) {
		t.Error("recompilation is not deterministic")
	}
}

// TestCompilePCMapping: every compiled instruction's embedded PC word
// round-trips through IdxOfPC, so the engine can map code offsets
// back to ir.PCs (and vice versa) without search.
func TestCompilePCMapping(t *testing.T) {
	prog, err := bytecode.Compile(mustParse(t, poolSrc))
	if err != nil {
		t.Fatal(err)
	}
	for off := int32(0); off < int32(len(prog.Code)); {
		pc := prog.Code[off+1]
		if got := prog.IdxOfPC[pc]; got != off {
			t.Errorf("IdxOfPC[%d] = %d, want %d", pc, got, off)
		}
		_, off = prog.DisasmAt(off)
	}
}

// TestCompileVersioned: the Program records the module version it was
// compiled against, which is what the vm-side cache keys on.
func TestCompileVersioned(t *testing.T) {
	mod := mustParse(t, poolSrc)
	prog, err := bytecode.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Version != mod.Version() {
		t.Errorf("prog.Version = %d, module version = %d", prog.Version, mod.Version())
	}
}
