package bytecode

import (
	"fmt"
	"math"

	"snorlax/internal/ir"
)

// FuncInfo is the compiled metadata of one IR function.
type FuncInfo struct {
	Name string
	// Start is the code index of the function's first instruction.
	Start int32
	// NumRegs is the frame size in registers.
	NumRegs int32
	// Params holds the register index of each parameter in order.
	Params []int32
	// EntryPC is the PC of the function's first instruction (the
	// destination of call and thread-start trace events).
	EntryPC ir.PC
}

// Program is one module compiled to flat 32-bit word code.
type Program struct {
	// Mod is the source module; PCs in Code index into it.
	Mod *ir.Module
	// Version is the module version the program was compiled against.
	Version uint64
	// Code is the flat instruction stream: [opcode pc operand...]*.
	Code []int32
	// Pool holds every compile-time-resolved constant: IR literals,
	// global addresses, and encoded function values. Operand word w<0
	// names Pool[^w].
	Pool []int64
	// Strings holds assertion messages; Assert's msgIndex names one.
	Strings []string
	// Funcs is indexed like Mod.Funcs.
	Funcs []FuncInfo
	// IdxOfPC maps each ir.PC to the code index of its compiled
	// instruction — the PC↔bytecode mapping used by disassembly and
	// by engines that must materialize a frame at a given PC.
	IdxOfPC []int32
	// GlobalAddrs holds the word address of each module global in
	// declaration order; the compiler derives them from the VM's
	// deterministic bump allocator, and the engine asserts they match
	// its own allocation before trusting pool-resolved addresses.
	GlobalAddrs []int64
}

// compiler accumulates one Program.
type compiler struct {
	mod      *ir.Module
	p        *Program
	poolIdx  map[int64]int32
	strIdx   map[string]int32
	blockOff map[*ir.Block]int32
	gaddr    map[*ir.Global]int64
}

// Compile translates a module to bytecode. The module is finalized if
// it is not already. Compile never panics on structurally valid
// (ir.Verify-clean) modules; for modules that would make any engine
// misbehave — empty or unterminated blocks, aggregates too large for
// 32-bit operands — it returns an error so callers can fall back to
// the tree-walking interpreter.
func Compile(mod *ir.Module) (*Program, error) {
	if !mod.Finalized() {
		mod.Finalize()
	}
	c := &compiler{
		mod: mod,
		p: &Program{
			Mod:     mod,
			Version: mod.Version(),
			IdxOfPC: make([]int32, mod.NumInstrs()),
		},
		poolIdx:  make(map[int64]int32),
		strIdx:   make(map[string]int32),
		blockOff: make(map[*ir.Block]int32),
		gaddr:    make(map[*ir.Global]int64),
	}
	// Global addresses replicate the VM's startup allocation: a bump
	// allocator starting at word 1, one allocation per global in
	// declaration order.
	next := int64(1)
	for _, g := range mod.Globals {
		c.gaddr[g] = next
		c.p.GlobalAddrs = append(c.p.GlobalAddrs, next)
		next += wordsOf(g.Typ)
	}
	// Pass 1: lay out code offsets so branches can refer forward.
	off := int64(0)
	for _, f := range mod.Funcs {
		if len(f.Blocks) == 0 {
			return nil, fmt.Errorf("bytecode: function %s has no blocks", f.Name)
		}
		info := FuncInfo{
			Name:    f.Name,
			Start:   int32(off),
			NumRegs: int32(len(f.Regs)),
			EntryPC: f.Blocks[0].FirstPC(),
		}
		for _, p := range f.Params {
			info.Params = append(info.Params, int32(p.Index))
		}
		c.p.Funcs = append(c.p.Funcs, info)
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				return nil, fmt.Errorf("bytecode: empty block %s", b)
			}
			if b.Terminator() == nil {
				return nil, fmt.Errorf("bytecode: block %s does not end in a terminator", b)
			}
			c.blockOff[b] = int32(off)
			for _, in := range b.Instrs {
				w, err := width(in)
				if err != nil {
					return nil, err
				}
				off += int64(w)
				if off > math.MaxInt32 {
					return nil, fmt.Errorf("bytecode: module %s exceeds 2^31 code words", mod.Name)
				}
			}
		}
	}
	// Pass 2: emit.
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if err := c.emit(in); err != nil {
					return nil, err
				}
			}
		}
	}
	return c.p, nil
}

// wordsOf mirrors the VM's slot count for a type.
func wordsOf(t ir.Type) int64 {
	w := t.Size() / 8
	if w <= 0 {
		w = 1
	}
	return w
}

// width returns the number of code words instruction in compiles to.
func width(in ir.Instr) (int32, error) {
	n := 0
	switch i := in.(type) {
	case *ir.AllocaInstr, *ir.NewInstr:
		n = 4
	case *ir.LoadInstr, *ir.StoreInstr, *ir.CastInstr:
		n = 4
	case *ir.FieldAddrInstr:
		n = 5
	case *ir.IndexAddrInstr:
		n = 7
	case *ir.BinInstr:
		n = 5
	case *ir.BrInstr:
		n = 4
	case *ir.CondBrInstr:
		n = 7
	case *ir.CallInstr:
		n = 5 + len(i.Args)
	case *ir.SpawnInstr:
		n = 5 + len(i.Args)
	case *ir.RetInstr:
		if i.Val == nil {
			n = 2
		} else {
			n = 3
		}
	case *ir.JoinInstr, *ir.LockInstr, *ir.UnlockInstr, *ir.NotifyInstr, *ir.SleepInstr:
		n = 3
	case *ir.WaitInstr:
		n = 4
	case *ir.AssertInstr:
		n = 4
	case *ir.PrintInstr:
		n = 3 + len(i.Args)
	default:
		return 0, fmt.Errorf("bytecode: unsupported instruction %s", in)
	}
	return int32(n), nil
}

// pool interns v in the constant pool and returns its operand word
// (the ^index encoding, always negative).
func (c *compiler) pool(v int64) (int32, error) {
	if idx, ok := c.poolIdx[v]; ok {
		return ^idx, nil
	}
	if len(c.p.Pool) > math.MaxInt32/2 {
		return 0, fmt.Errorf("bytecode: constant pool overflow")
	}
	idx := int32(len(c.p.Pool))
	c.p.Pool = append(c.p.Pool, v)
	c.poolIdx[v] = idx
	return ^idx, nil
}

// operand encodes a value operand: register index when non-negative,
// pool reference when negative.
func (c *compiler) operand(v ir.Value) (int32, error) {
	switch x := v.(type) {
	case *ir.Reg:
		return int32(x.Index), nil
	case *ir.Const:
		return c.pool(x.Val)
	case *ir.GlobalRef:
		addr, ok := c.gaddr[x.Global]
		if !ok {
			return 0, fmt.Errorf("bytecode: reference to global %s not in module", x.Global.Name)
		}
		return c.pool(addr)
	case *ir.FuncRef:
		idx := c.mod.FuncIndex(x.Func)
		if idx < 0 {
			return 0, fmt.Errorf("bytecode: reference to function %s not in module", x.Func.Name)
		}
		// Function values use the VM's encoding: -index-1, disjoint
		// from memory addresses.
		return c.pool(-int64(idx) - 1)
	}
	return 0, fmt.Errorf("bytecode: unknown value %T", v)
}

func (c *compiler) str(s string) int32 {
	if idx, ok := c.strIdx[s]; ok {
		return idx
	}
	idx := int32(len(c.p.Strings))
	c.p.Strings = append(c.p.Strings, s)
	c.strIdx[s] = idx
	return idx
}

// words appends raw code words.
func (c *compiler) words(ws ...int32) { c.p.Code = append(c.p.Code, ws...) }

// fit converts a compile-time count to an operand word, rejecting
// values a 32-bit word cannot carry.
func fit(what string, v int64) (int32, error) {
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("bytecode: %s %d exceeds 32-bit operand range", what, v)
	}
	return int32(v), nil
}

func (c *compiler) emit(in ir.Instr) error {
	pc := in.PC()
	if int(pc) < 0 || int(pc) >= len(c.p.IdxOfPC) {
		return fmt.Errorf("bytecode: instruction %s has unfinalized PC", in)
	}
	c.p.IdxOfPC[pc] = int32(len(c.p.Code))
	p := int32(pc)

	vals := func(ops ...ir.Value) ([]int32, error) {
		out := make([]int32, len(ops))
		for j, o := range ops {
			w, err := c.operand(o)
			if err != nil {
				return nil, err
			}
			out[j] = w
		}
		return out, nil
	}

	switch i := in.(type) {
	case *ir.AllocaInstr:
		w, err := fit("alloca size", wordsOf(i.Elem))
		if err != nil {
			return err
		}
		c.words(int32(Alloca), p, int32(i.Dst.Index), w)
	case *ir.NewInstr:
		w, err := fit("new size", wordsOf(i.Elem))
		if err != nil {
			return err
		}
		c.words(int32(New), p, int32(i.Dst.Index), w)
	case *ir.LoadInstr:
		ops, err := vals(i.Addr)
		if err != nil {
			return err
		}
		c.words(int32(Load), p, int32(i.Dst.Index), ops[0])
	case *ir.StoreInstr:
		ops, err := vals(i.Val, i.Addr)
		if err != nil {
			return err
		}
		c.words(int32(Store), p, ops[0], ops[1])
	case *ir.FieldAddrInstr:
		st := i.StructType()
		if st == nil {
			return fmt.Errorf("bytecode: fieldaddr through non-struct pointer at pc %d", pc)
		}
		if i.Field < 0 || i.Field >= len(st.Fields) {
			return fmt.Errorf("bytecode: fieldaddr index %d out of range for %s", i.Field, st.Name)
		}
		off, err := fit("field offset", st.FieldOffset(i.Field))
		if err != nil {
			return err
		}
		ops, err := vals(i.Base)
		if err != nil {
			return err
		}
		c.words(int32(FieldAddr), p, int32(i.Dst.Index), ops[0], off)
	case *ir.IndexAddrInstr:
		at, ok := ir.Deref(i.Base.Type()).(*ir.ArrayType)
		if !ok {
			return fmt.Errorf("bytecode: indexaddr through non-array pointer at pc %d", pc)
		}
		alen, err := fit("array length", at.Len)
		if err != nil {
			return err
		}
		ew, err := fit("element size", wordsOf(at.Elem))
		if err != nil {
			return err
		}
		ops, err := vals(i.Base, i.Index)
		if err != nil {
			return err
		}
		c.words(int32(IndexAddr), p, int32(i.Dst.Index), ops[0], ops[1], alen, ew)
	case *ir.BinInstr:
		op, ok := binOpcode[i.BOp]
		if !ok {
			return fmt.Errorf("bytecode: unknown binary op %d", i.BOp)
		}
		ops, err := vals(i.X, i.Y)
		if err != nil {
			return err
		}
		c.words(int32(op), p, int32(i.Dst.Index), ops[0], ops[1])
	case *ir.CastInstr:
		ops, err := vals(i.Val)
		if err != nil {
			return err
		}
		c.words(int32(Cast), p, int32(i.Dst.Index), ops[0])
	case *ir.BrInstr:
		tgt, ok := c.blockOff[i.Target]
		if !ok {
			return fmt.Errorf("bytecode: branch to foreign block %s", i.Target)
		}
		c.words(int32(Jump), p, tgt, int32(i.Target.FirstPC()))
	case *ir.CondBrInstr:
		then, ok1 := c.blockOff[i.Then]
		els, ok2 := c.blockOff[i.Else]
		if !ok1 || !ok2 {
			return fmt.Errorf("bytecode: condbr to foreign block at pc %d", pc)
		}
		ops, err := vals(i.Cond)
		if err != nil {
			return err
		}
		c.words(int32(JumpIf), p, ops[0], then, int32(i.Then.FirstPC()), els, int32(i.Else.FirstPC()))
	case *ir.CallInstr:
		return c.emitCallLike(p, Call, CallInd, i.Dst, i.Callee, i.Args)
	case *ir.SpawnInstr:
		return c.emitCallLike(p, Spawn, SpawnInd, i.Dst, i.Callee, i.Args)
	case *ir.RetInstr:
		if i.Val == nil {
			c.words(int32(Return), p)
			return nil
		}
		ops, err := vals(i.Val)
		if err != nil {
			return err
		}
		c.words(int32(ReturnVal), p, ops[0])
	case *ir.JoinInstr:
		ops, err := vals(i.Tid)
		if err != nil {
			return err
		}
		c.words(int32(Join), p, ops[0])
	case *ir.LockInstr:
		ops, err := vals(i.Addr)
		if err != nil {
			return err
		}
		c.words(int32(Lock), p, ops[0])
	case *ir.UnlockInstr:
		ops, err := vals(i.Addr)
		if err != nil {
			return err
		}
		c.words(int32(Unlock), p, ops[0])
	case *ir.WaitInstr:
		ops, err := vals(i.Mu, i.Cv)
		if err != nil {
			return err
		}
		c.words(int32(Wait), p, ops[0], ops[1])
	case *ir.NotifyInstr:
		ops, err := vals(i.Cv)
		if err != nil {
			return err
		}
		c.words(int32(Notify), p, ops[0])
	case *ir.SleepInstr:
		ops, err := vals(i.Dur)
		if err != nil {
			return err
		}
		c.words(int32(Sleep), p, ops[0])
	case *ir.AssertInstr:
		ops, err := vals(i.Cond)
		if err != nil {
			return err
		}
		c.words(int32(Assert), p, ops[0], c.str(i.Msg))
	case *ir.PrintInstr:
		ops, err := vals(i.Args...)
		if err != nil {
			return err
		}
		c.words(int32(Print), p, int32(len(ops)))
		c.words(ops...)
	default:
		return fmt.Errorf("bytecode: unsupported instruction %s", in)
	}
	return nil
}

// emitCallLike compiles call and spawn, which share the
// direct/indirect split and the inline argument list.
func (c *compiler) emitCallLike(p int32, direct, indirect Opcode, dst *ir.Reg, callee ir.Value, args []ir.Value) error {
	d := int32(-1)
	if dst != nil {
		d = int32(dst.Index)
	}
	argWords := make([]int32, len(args))
	for j, a := range args {
		w, err := c.operand(a)
		if err != nil {
			return err
		}
		argWords[j] = w
	}
	if fr, ok := callee.(*ir.FuncRef); ok {
		idx := c.mod.FuncIndex(fr.Func)
		if idx < 0 {
			return fmt.Errorf("bytecode: call of function %s not in module", fr.Func.Name)
		}
		c.words(int32(direct), p, d, int32(idx), int32(len(args)))
	} else {
		cv, err := c.operand(callee)
		if err != nil {
			return err
		}
		c.words(int32(indirect), p, d, cv, int32(len(args)))
	}
	c.words(argWords...)
	return nil
}

// binOpcode maps IR binary operators to their specialized opcodes.
var binOpcode = map[ir.BinOp]Opcode{
	ir.Add: Add, ir.Sub: Sub, ir.Mul: Mul, ir.Div: Div, ir.Rem: Rem,
	ir.And: And, ir.Or: Or, ir.Xor: Xor, ir.Shl: Shl, ir.Shr: Shr,
	ir.Eq: Eq, ir.Ne: Ne, ir.Lt: Lt, ir.Le: Le, ir.Gt: Gt, ir.Ge: Ge,
}
