package vm

import (
	"testing"

	"snorlax/internal/ir"
)

const condSrc = `
module cv
global mu: mutex
global work: cond
global pending: int
global consumed: int

func producer() {
entry:
  sleep 50000
  lock @mu
  store 1, @pending
  notify @work
  unlock @mu
  ret
}

func consumer() {
entry:
  lock @mu
  wait @mu, @work
  %p = load @pending
  store %p, @consumed
  unlock @mu
  ret
}

func main() {
entry:
  %c = spawn consumer()
  %p = spawn producer()
  join %c
  join %p
  ret
}
`

func TestCondWaitNotify(t *testing.T) {
	m, err := ir.Parse(condSrc)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		v := New(m, Config{Seed: seed})
		res := v.Run()
		if res.Failed() {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
		if got := v.LoadWord(v.GlobalAddr("consumed")); got != 1 {
			t.Errorf("seed %d: consumed = %d, want 1 (wait must see the store)", seed, got)
		}
	}
}

func TestCondLostWakeupHangs(t *testing.T) {
	// Producer notifies long before the consumer waits: the signal is
	// lost and the program hangs at the wait.
	src := `
module lost
global mu: mutex
global work: cond

func consumer() {
entry:
  sleep 300000
  lock @mu
  wait @mu, @work
  unlock @mu
  ret
}

func main() {
entry:
  %c = spawn consumer()
  sleep 50000
  notify @work
  join %c
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{Seed: 1})
	if !res.Failed() || res.Failure.Kind != FailDeadlock {
		t.Fatalf("want hang, got %v", res.Failure)
	}
	if m.InstrAt(res.Failure.PC).Op() != ir.OpWait {
		t.Errorf("hang anchored at %s, want the wait", m.InstrAt(res.Failure.PC))
	}
}

func TestWaitWithoutMutexHeldCrashes(t *testing.T) {
	src := `
module bad
global mu: mutex
global cv: cond
func main() {
entry:
  wait @mu, @cv
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, Config{})
	if !res.Failed() || res.Failure.Kind != FailCrash {
		t.Fatalf("want crash, got %v", res.Failure)
	}
	if !contains(res.Failure.Msg, "not held") {
		t.Errorf("msg = %q", res.Failure.Msg)
	}
}

func TestNotifyWithoutWaitersIsLost(t *testing.T) {
	src := `
module noop
global cv: cond
func main() {
entry:
  notify @cv
  notify @cv
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if res := Run(m, Config{}); res.Failed() {
		t.Fatalf("notify without waiters must be a no-op: %v", res.Failure)
	}
}

func TestBroadcastWakesAllWaiters(t *testing.T) {
	src := `
module bc
global mu: mutex
global cv: cond
global woken: int

func waiter() {
entry:
  lock @mu
  wait @mu, @cv
  %w = load @woken
  %w2 = add %w, 1
  store %w2, @woken
  unlock @mu
  ret
}

func main() {
entry:
  %a = spawn waiter()
  %b = spawn waiter()
  %c = spawn waiter()
  sleep 400000
  notify @cv
  join %a
  join %b
  join %c
  %final = load @woken
  print %final
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		res := Run(m, Config{Seed: seed})
		if res.Failed() {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
		if len(res.Output) != 1 || res.Output[0] != "3" {
			t.Errorf("seed %d: woken = %v, want 3", seed, res.Output)
		}
	}
}

func TestWaitReacquiresMutex(t *testing.T) {
	// After a notify, the waiter must hold the mutex again: the
	// notifier's post-notify critical section and the waiter's
	// post-wait section must not interleave on @shared.
	src := `
module reacq
global mu: mutex
global cv: cond
global shared: int

func waiter() {
entry:
  lock @mu
  wait @mu, @cv
  %v = load @shared
  %ok = eq %v, 42
  assert %ok, "post-wait read interleaved with notifier critical section"
  unlock @mu
  ret
}

func main() {
entry:
  %w = spawn waiter()
  sleep 300000
  lock @mu
  notify @cv
  store 41, @shared
  sleep 50000
  store 42, @shared
  unlock @mu
  join %w
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		res := Run(m, Config{Seed: seed})
		if res.Failed() {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}
