package pattern

import (
	"snorlax/internal/ir"
	"snorlax/internal/ranking"
	"snorlax/internal/traceproc"
)

// Multi-variable atomicity violations are the paper's §7 future work:
// an invariant spanning several memory locations (bytes vs item
// count, length vs capacity) is read non-atomically by one thread
// while another thread updates one of the locations in between. The
// single-variable patterns of Figure 1 cannot express this — the
// first and third access touch *different* locations — so we extend
// the pattern language with KindMultiVarAtomicity:
//
//	T1: R(x)   …   T2: W(x or y)   …   T1: R(y), invariant check fails
//
// Anchoring comes from the violated assertion: its condition's data
// provenance names the reads of every involved location
// (ranking.AssertedLoads), and each read's points-to set selects that
// location's candidate writers.

// MVAnchor is one location involved in a violated multi-location
// invariant: the anchored read plus the candidate accesses that may
// alias it.
type MVAnchor struct {
	// PC is the anchored load.
	PC ir.PC
	// Cands are the in-scope accesses that may alias the load's
	// operand (from ranking.Rank on this anchor).
	Cands []ranking.Candidate
}

// ComputeMultiVar enumerates multi-variable atomicity patterns for a
// failure whose assertion anchored at several loads. For every
// ordered pair of anchored reads executed by the failing thread, a
// cross-thread write to either location that lands between them forms
// a candidate pattern.
func ComputeMultiVar(mod *ir.Module, fi FailureInfo, anchors []MVAnchor, tr *traceproc.Trace, cfg Config) []*Pattern {
	cfg = cfg.withDefaults()
	if len(anchors) < 2 {
		return nil
	}
	seen := map[string]*Pattern{}
	add := func(p *Pattern) {
		if prev, ok := seen[p.Key()]; ok {
			if p.Rank < prev.Rank {
				prev.Rank = p.Rank
			}
			return
		}
		seen[p.Key()] = p
	}

	for i, first := range anchors {
		ri, ok := tr.LastInstanceOfIn(first.PC, fi.Tid)
		if !ok {
			continue
		}
		for j, second := range anchors {
			if i == j || first.PC == second.PC {
				continue
			}
			rj, ok := tr.LastInstanceOfIn(second.PC, fi.Tid)
			if !ok || !traceproc.Before(ri, rj) {
				continue
			}
			// Candidate middle writes: writers of either location.
			for _, cand := range append(append([]ranking.Candidate(nil), first.Cands...), second.Cands...) {
				if AccessKind(cand.Instr) != 'W' {
					continue
				}
				cpc := cand.Instr.PC()
				for _, b := range tr.InstancesOf(cpc) {
					if b.Tid == fi.Tid {
						continue
					}
					if !traceproc.Before(ri, b) || !traceproc.Before(b, rj) {
						continue
					}
					add(&Pattern{
						Kind: KindMultiVarAtomicity,
						Sub:  "MV-RWR",
						PCs:  []ir.PC{first.PC, cpc, second.PC},
						Events: []Event{
							{PC: ri.PC, Tid: ri.Tid, Time: ri.Time},
							{PC: b.PC, Tid: b.Tid, Time: b.Time},
							{PC: rj.PC, Tid: rj.Tid, Time: rj.Time},
						},
						Rank: cand.Rank,
					})
					break // one witness per (pair, writer) suffices
				}
			}
		}
	}
	out := make([]*Pattern, 0, len(seen))
	for _, p := range seen {
		out = append(out, p)
	}
	sortPatterns(out)
	return out
}
