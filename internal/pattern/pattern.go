// Package pattern implements bug-pattern computation — step 6 of Lazy
// Diagnosis (§4.4 of the Snorlax paper).
//
// It takes the type-ranked candidate instructions and the
// partially-ordered dynamic instruction trace, and enumerates the
// concurrency-bug patterns of the paper's Figure 1 that are
// consistent with the observed partial order:
//
//   - deadlocks: cyclic lock-acquisition among threads;
//   - order violations: two accesses to the same location from
//     different threads, at least one a write, in the observed order;
//   - single-variable atomicity violations: RWR, WWR, RWW, WRW
//     triples where the first and third access share a thread and the
//     middle access comes from another thread.
//
// Partial flow sensitivity (Figure 5) enters exactly here: the
// flow-insensitive points-to analysis proposes the candidates, and
// the coarse timestamps order their dynamic instances.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"snorlax/internal/ir"
	"snorlax/internal/ranking"
	"snorlax/internal/traceproc"
)

// Kind classifies a pattern.
type Kind int

// The pattern kinds.
const (
	KindDeadlock Kind = iota
	KindOrderViolation
	KindAtomicityViolation
	// KindMultiVarAtomicity extends the paper's Figure 1 with
	// multi-location invariants (§7 future work): the first and third
	// access read different locations bound by one invariant.
	KindMultiVarAtomicity
)

func (k Kind) String() string {
	switch k {
	case KindDeadlock:
		return "deadlock"
	case KindOrderViolation:
		return "order-violation"
	case KindAtomicityViolation:
		return "atomicity-violation"
	case KindMultiVarAtomicity:
		return "multivar-atomicity"
	}
	return "pattern(?)"
}

// Event is one dynamic event participating in a pattern witness.
type Event struct {
	PC   ir.PC
	Tid  int
	Time int64
}

// Pattern is one candidate root cause: a static event signature (the
// PCs and their required ordering/thread structure) plus the dynamic
// witness found in the failing trace.
type Pattern struct {
	Kind Kind
	// Sub is the access-kind signature: "WR", "RW", "WW" for order
	// violations; "RWR", "WWR", "RWW", "WRW" for atomicity
	// violations; "DL<n>" for deadlocks over n threads.
	Sub string
	// PCs is the static signature in pattern order. For deadlocks it
	// is flattened (held, attempt) pairs, one pair per thread.
	PCs []ir.PC
	// Events is the witness from the failing execution.
	Events []Event
	// Rank is the best (lowest) type rank among the non-failing
	// instructions in the pattern; patterns from rank-1 candidates
	// are examined first (§4.3).
	Rank int
	// Absence marks the reversed order-violation direction of
	// Figure 1(b): the failing access (PCs[0]) executed before the
	// candidate access (PCs[1]) ever did — e.g. a read that beat its
	// initializing write. Such a pattern is matched by the absence of
	// the candidate before the failing access, since the candidate
	// never gets to execute in the failing run.
	Absence bool
}

// Key returns the canonical identity used to match the pattern across
// executions for statistical diagnosis.
func (p *Pattern) Key() string {
	parts := make([]string, len(p.PCs))
	for i, pc := range p.PCs {
		parts[i] = fmt.Sprintf("%d", pc)
	}
	key := fmt.Sprintf("%s:%s:%s", p.Kind, p.Sub, strings.Join(parts, ","))
	if p.Absence {
		key += ":first"
	}
	return key
}

func (p *Pattern) String() string { return p.Key() }

// FailureInfo is the slice of the client's failure report that
// pattern computation needs.
type FailureInfo struct {
	Deadlock bool
	// PC and Tid locate the failing instruction.
	PC   ir.PC
	Tid  int
	Time int64
	// DeadlockPCs/DeadlockTids describe the waits-for cycle, one
	// blocked lock attempt per participating thread.
	DeadlockPCs  []ir.PC
	DeadlockTids []int
}

// Config bounds the pattern search.
type Config struct {
	// MaxInstances caps how many dynamic instances per (candidate PC,
	// thread) are considered, newest first (default 3).
	MaxInstances int
}

func (c Config) withDefaults() Config {
	if c.MaxInstances == 0 {
		c.MaxInstances = 3
	}
	return c
}

// AccessKind returns 'R' for reads, 'W' for writes, 'L' for lock
// attempts, 'U' for unlocks and 0 for other instructions. Failing
// address computations (fieldaddr on a corrupt base) count as reads.
// Condition-variable operations map onto the read/write duality:
// a wait consumes the condition ('R'), a notify produces it ('W') —
// which is exactly why a lost wakeup is an order violation.
func AccessKind(in ir.Instr) byte {
	switch in.Op() {
	case ir.OpLoad, ir.OpFieldAddr, ir.OpIndexAddr, ir.OpWait:
		return 'R'
	case ir.OpStore, ir.OpNotify:
		return 'W'
	case ir.OpLock:
		return 'L'
	case ir.OpUnlock:
		return 'U'
	}
	return 0
}

// Compute enumerates the candidate bug patterns for a failure.
//
// For deadlocks it builds the cyclic acquisition pattern from the
// waits-for cycle and the lock events in the trace. For crashes it
// pairs/triples candidate instances with the failing instruction's
// final dynamic instance, honoring the partial order.
func Compute(mod *ir.Module, fi FailureInfo, cands []ranking.Candidate, tr *traceproc.Trace, cfg Config) []*Pattern {
	cfg = cfg.withDefaults()
	if fi.Deadlock {
		return computeDeadlock(mod, fi, tr)
	}
	return computeViolations(mod, fi, cands, tr, cfg)
}

// computeDeadlock reconstructs the deadlock pattern of Figure 1(a):
// for each thread in the waits-for cycle, the lock it already held
// and the acquisition it blocked on.
func computeDeadlock(mod *ir.Module, fi FailureInfo, tr *traceproc.Trace) []*Pattern {
	p := &Pattern{Kind: KindDeadlock, Sub: fmt.Sprintf("DL%d", len(fi.DeadlockPCs)), Rank: 1}
	for i, attemptPC := range fi.DeadlockPCs {
		tid := fi.DeadlockTids[i]
		attempt, ok := tr.LastInstanceOfIn(attemptPC, tid)
		if !ok {
			attempt = traceproc.DynEvent{Tid: tid, PC: attemptPC, Time: fi.Time}
		}
		// The lock this thread still holds: its latest earlier lock
		// event with no intervening unlock by the same thread.
		if held, ok := heldLockBefore(mod, tr, tid, attempt); ok {
			p.PCs = append(p.PCs, held.PC, attemptPC)
			p.Events = append(p.Events,
				Event{PC: held.PC, Tid: tid, Time: held.Time},
				Event{PC: attemptPC, Tid: tid, Time: attempt.Time})
		} else {
			p.PCs = append(p.PCs, ir.NoPC, attemptPC)
			p.Events = append(p.Events, Event{PC: attemptPC, Tid: tid, Time: attempt.Time})
		}
	}
	return []*Pattern{p}
}

// heldLockBefore finds tid's most recent lock event before attempt
// with no later unlock by tid before attempt.
func heldLockBefore(mod *ir.Module, tr *traceproc.Trace, tid int, attempt traceproc.DynEvent) (traceproc.DynEvent, bool) {
	var held traceproc.DynEvent
	found := false
	for _, ev := range tr.Events {
		if ev.Tid != tid || ev.Seq >= attempt.Seq {
			continue
		}
		switch AccessKind(mod.InstrAt(ev.PC)) {
		case 'L':
			if ev.PC != attempt.PC {
				held = ev
				found = true
			}
		case 'U':
			found = false
		}
	}
	return held, found
}

// computeViolations enumerates order- and atomicity-violation
// patterns ending at the failing access (the paper's §7 assumption:
// the failing instruction is part of the pattern).
func computeViolations(mod *ir.Module, fi FailureInfo, cands []ranking.Candidate, tr *traceproc.Trace, cfg Config) []*Pattern {
	failInstr := mod.InstrAt(fi.PC)
	fKind := AccessKind(failInstr)
	if fKind != 'R' && fKind != 'W' {
		return nil
	}
	fEv, ok := tr.LastInstanceOfIn(fi.PC, fi.Tid)
	if !ok {
		fEv = traceproc.DynEvent{Tid: fi.Tid, PC: fi.PC, Time: fi.Time}
	}

	rankOf := make(map[ir.PC]int, len(cands))
	for _, c := range cands {
		rankOf[c.Instr.PC()] = c.Rank
	}

	// Collect the latest MaxInstances instances per (candidate, tid)
	// that precede the failing event in the partial order.
	type inst struct {
		ev   traceproc.DynEvent
		kind byte
		rank int
	}
	var before []inst
	perKey := map[[2]int64]int{}
	for i := len(tr.Events) - 1; i >= 0; i-- {
		ev := tr.Events[i]
		rank, isCand := rankOf[ev.PC]
		if !isCand {
			continue
		}
		if !traceproc.Before(ev, fEv) {
			continue
		}
		key := [2]int64{int64(ev.PC), int64(ev.Tid)}
		if perKey[key] >= cfg.MaxInstances {
			continue
		}
		perKey[key]++
		k := AccessKind(mod.InstrAt(ev.PC))
		before = append(before, inst{ev: ev, kind: k, rank: rank})
	}

	seen := map[string]*Pattern{}
	add := func(p *Pattern) {
		if prev, ok := seen[p.Key()]; ok {
			if p.Rank < prev.Rank {
				prev.Rank = p.Rank
			}
			return
		}
		seen[p.Key()] = p
	}

	// Order violations: X (other thread) before F, at least one write.
	for _, x := range before {
		if x.ev.Tid == fEv.Tid {
			continue
		}
		if x.kind != 'W' && fKind != 'W' {
			continue // R-R is not a violation
		}
		add(&Pattern{
			Kind: KindOrderViolation,
			Sub:  string([]byte{x.kind, fKind}),
			PCs:  []ir.PC{x.ev.PC, fi.PC},
			Events: []Event{
				{PC: x.ev.PC, Tid: x.ev.Tid, Time: x.ev.Time},
				{PC: fEv.PC, Tid: fEv.Tid, Time: fEv.Time},
			},
			Rank: x.rank,
		})
	}

	// Reversed order violations (Figure 1.b, failing access first):
	// the failing access executed before a conflicting candidate ever
	// did. Witnessed by the candidate's absence before F in the
	// failing trace — the read beat its initializing write.
	for _, c := range cands {
		cKind := AccessKind(c.Instr)
		if cKind != 'W' && fKind != 'W' {
			continue
		}
		cpc := c.Instr.PC()
		anyBefore := false
		for _, ev := range tr.Events {
			if ev.PC == cpc && ev.Tid != fEv.Tid && traceproc.Before(ev, fEv) {
				anyBefore = true
				break
			}
		}
		if anyBefore {
			continue
		}
		add(&Pattern{
			Kind:    KindOrderViolation,
			Sub:     string([]byte{fKind, cKind}),
			PCs:     []ir.PC{fi.PC, cpc},
			Events:  []Event{{PC: fEv.PC, Tid: fEv.Tid, Time: fEv.Time}},
			Rank:    c.Rank,
			Absence: true,
		})
	}

	// Atomicity violations: A (failing thread) … B (other thread) … F,
	// restricted to the four single-variable patterns (Figure 1.c).
	valid := map[string]bool{"RWR": true, "WWR": true, "RWW": true, "WRW": true}
	for _, a := range before {
		if a.ev.Tid != fEv.Tid {
			continue
		}
		for _, b := range before {
			if b.ev.Tid == fEv.Tid {
				continue
			}
			if !traceproc.Before(a.ev, b.ev) {
				continue
			}
			sub := string([]byte{a.kind, b.kind, fKind})
			if !valid[sub] {
				continue
			}
			rank := a.rank
			if b.rank > rank {
				rank = b.rank
			}
			add(&Pattern{
				Kind: KindAtomicityViolation,
				Sub:  sub,
				PCs:  []ir.PC{a.ev.PC, b.ev.PC, fi.PC},
				Events: []Event{
					{PC: a.ev.PC, Tid: a.ev.Tid, Time: a.ev.Time},
					{PC: b.ev.PC, Tid: b.ev.Tid, Time: b.ev.Time},
					{PC: fEv.PC, Tid: fEv.Tid, Time: fEv.Time},
				},
				Rank: rank,
			})
		}
	}

	out := make([]*Pattern, 0, len(seen))
	for _, p := range seen {
		out = append(out, p)
	}
	sortPatterns(out)
	return out
}

// sortPatterns orders patterns by rank then key, for determinism.
func sortPatterns(out []*Pattern) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Key() < out[j].Key()
	})
}
