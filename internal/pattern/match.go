package pattern

import (
	"snorlax/internal/ir"
	"snorlax/internal/traceproc"
)

// Present reports whether the pattern's static event signature occurs
// in the given execution trace with the required ordering and thread
// structure. Statistical diagnosis (§4.5) evaluates Present on every
// collected trace — failing and successful — to compute each
// pattern's precision and recall.
func Present(mod *ir.Module, p *Pattern, tr *traceproc.Trace) bool {
	switch p.Kind {
	case KindOrderViolation:
		return presentOrder(p, tr)
	case KindAtomicityViolation, KindMultiVarAtomicity:
		// Multi-variable patterns share the triple structure: first
		// and third event in one thread, middle in another, ordered.
		return presentAtomicity(p, tr)
	case KindDeadlock:
		return presentDeadlock(mod, p, tr)
	}
	return false
}

// presentOrder: for the forward direction, exists instances x of
// PCs[0] and f of PCs[1] on different threads with x before f. For an
// absence pattern, the last instance of PCs[0] (the failing access)
// has no cross-thread PCs[1] instance before it.
func presentOrder(p *Pattern, tr *traceproc.Trace) bool {
	if p.Absence {
		f, ok := tr.LastInstanceOf(p.PCs[0])
		if !ok {
			return false
		}
		for _, x := range tr.InstancesOf(p.PCs[1]) {
			if x.Tid != f.Tid && traceproc.Before(x, f) {
				return false
			}
		}
		return true
	}
	xs := tr.InstancesOf(p.PCs[0])
	fs := tr.InstancesOf(p.PCs[1])
	for _, f := range fs {
		for _, x := range xs {
			if x.Tid != f.Tid && traceproc.Before(x, f) {
				return true
			}
		}
	}
	return false
}

// presentAtomicity: exists a of PCs[0], b of PCs[1], f of PCs[2] with
// a.tid == f.tid != b.tid and a < b < f.
func presentAtomicity(p *Pattern, tr *traceproc.Trace) bool {
	as := tr.InstancesOf(p.PCs[0])
	bs := tr.InstancesOf(p.PCs[1])
	fs := tr.InstancesOf(p.PCs[2])
	for _, f := range fs {
		for _, b := range bs {
			if b.Tid == f.Tid || !traceproc.Before(b, f) {
				continue
			}
			for _, a := range as {
				if a.Tid == f.Tid && traceproc.Before(a, b) {
					return true
				}
			}
		}
	}
	return false
}

// presentDeadlock checks for the cyclic acquisition structure: an
// assignment of distinct threads to the pattern's (held, attempt)
// pairs such that each thread performs its pair in order with no
// intervening unlock, and every hold precedes every attempt (so all
// threads were inside the window simultaneously).
func presentDeadlock(mod *ir.Module, p *Pattern, tr *traceproc.Trace) bool {
	n := len(p.PCs) / 2
	if n == 0 {
		return false
	}
	type window struct {
		tid           int
		hold, attempt traceproc.DynEvent
	}
	// For each pair, find candidate windows per thread.
	perPair := make([][]window, n)
	for i := 0; i < n; i++ {
		heldPC, attemptPC := p.PCs[2*i], p.PCs[2*i+1]
		for _, tid := range tr.Threads() {
			attempts := tr.Filter(func(ev traceproc.DynEvent) bool {
				return ev.Tid == tid && ev.PC == attemptPC
			})
			for _, att := range attempts {
				if heldPC == ir.NoPC {
					perPair[i] = append(perPair[i], window{tid: tid, hold: att, attempt: att})
					continue
				}
				if held, ok := heldLockBefore(mod, tr, tid, att); ok && held.PC == heldPC {
					perPair[i] = append(perPair[i], window{tid: tid, hold: held, attempt: att})
				}
			}
		}
		if len(perPair[i]) == 0 {
			return false
		}
	}
	// Search for a consistent assignment (n is tiny: 2 or 3).
	var pick func(i int, used map[int]bool, chosen []window) bool
	pick = func(i int, used map[int]bool, chosen []window) bool {
		if i == n {
			// Cross constraint: every hold precedes every other
			// thread's attempt — all threads held their first lock
			// before any second acquisition attempt completed.
			for _, w1 := range chosen {
				for _, w2 := range chosen {
					if w1.tid == w2.tid {
						continue
					}
					if !traceproc.Before(w1.hold, w2.attempt) {
						return false
					}
				}
			}
			return true
		}
		for _, w := range perPair[i] {
			if used[w.tid] {
				continue
			}
			used[w.tid] = true
			if pick(i+1, used, append(chosen, w)) {
				return true
			}
			delete(used, w.tid)
		}
		return false
	}
	return pick(0, map[int]bool{}, nil)
}
