package pattern_test

import (
	"fmt"
	"testing"

	"snorlax/internal/ir"
	"snorlax/internal/pattern"
	"snorlax/internal/pointsto"
	"snorlax/internal/pt"
	"snorlax/internal/ranking"
	"snorlax/internal/statdiag"
	"snorlax/internal/traceproc"
	"snorlax/internal/vm"
)

// buildUseAfterFree models the pbzip2-style order violation: main
// nulls the shared queue pointer while the consumer still uses it.
// consumerDelay > mainDelay makes the run crash; smaller makes it
// succeed. The instruction layout is identical either way, so PCs —
// and therefore pattern keys — are stable across both variants.
func buildUseAfterFree(t testing.TB, consumerDelay, mainDelay int64) *ir.Module {
	t.Helper()
	src := fmt.Sprintf(`
module uaf
struct Queue {
  size: int
}
global fifo: *Queue

func consumer() {
entry:
  sleep %d
  %%q = load @fifo
  %%sz = fieldaddr %%q, size
  %%v = load %%sz
  ret
}

func main() {
entry:
  %%q = new Queue
  store %%q, @fifo
  %%t = spawn consumer()
  sleep %d
  store null:*Queue, @fifo
  join %%t
  ret
}
`, consumerDelay, mainDelay)
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runTraced executes mod under the PT driver and returns the result
// plus the snapshot taken at failure (or at the trigger PC for
// successful executions).
func runTraced(t testing.TB, mod *ir.Module, seed int64, trigger ir.PC) (*vm.Result, *pt.Snapshot) {
	t.Helper()
	d := pt.NewDriver(pt.Config{})
	d.TriggerPC = trigger
	res := vm.Run(mod, vm.Config{Seed: seed, Sink: d, Hook: d})
	if res.Failed() {
		return res, d.FailureSnapshot(res.Time)
	}
	if trigger != ir.NoPC && !d.Triggered() {
		t.Fatalf("successful run did not reach trigger PC %d", trigger)
	}
	snap := d.TriggerSnapshot()
	if snap == nil {
		snap = d.FailureSnapshot(res.Time)
	}
	return res, snap
}

// diagnose runs steps 2-6 on a failing snapshot.
func diagnose(t testing.TB, mod *ir.Module, fail *vm.Failure, snap *pt.Snapshot) ([]*pattern.Pattern, *traceproc.Trace) {
	t.Helper()
	stop := map[int]ir.PC{fail.Thread: fail.PC}
	traces, err := pt.DecodeSnapshot(mod, snap, pt.Config{}, stop)
	if err != nil {
		t.Fatal(err)
	}
	scope, tr := traceproc.Process(traces)
	analysis := pointsto.NewAndersen(mod, scope)

	failInstr := mod.InstrAt(fail.PC)
	class := ranking.MemAccesses
	fi := pattern.FailureInfo{PC: fail.PC, Tid: fail.Thread, Time: fail.Time}
	if fail.Kind == vm.FailDeadlock {
		class = ranking.SyncOps
		fi.Deadlock = true
		fi.DeadlockPCs = fail.DeadlockPCs
		fi.DeadlockTids = fail.DeadlockTids
	} else {
		anchor, _ := ranking.Anchor(failInstr)
		fi.PC = anchor.PC()
	}
	cands := ranking.Rank(mod, failInstr, class, analysis, scope)
	return pattern.Compute(mod, fi, cands, tr, pattern.Config{}), tr
}

func processSnapshot(t testing.TB, mod *ir.Module, snap *pt.Snapshot) *traceproc.Trace {
	t.Helper()
	traces, err := pt.DecodeSnapshot(mod, snap, pt.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, tr := traceproc.Process(traces)
	return tr
}

// pcOf finds the nth instruction matching pred.
func pcOf(m *ir.Module, n int, pred func(ir.Instr) bool) ir.PC {
	found := ir.NoPC
	count := 0
	m.Instrs(func(in ir.Instr) {
		if found == ir.NoPC && pred(in) {
			if count == n {
				found = in.PC()
			}
			count++
		}
	})
	return found
}

func TestOrderViolationPatternComputed(t *testing.T) {
	mod := buildUseAfterFree(t, 300_000, 100_000)
	res, snap := runTraced(t, mod, 1, ir.NoPC)
	if !res.Failed() || res.Failure.Kind != vm.FailCrash {
		t.Fatalf("expected crash, got %v", res.Failure)
	}
	pats, _ := diagnose(t, mod, res.Failure, snap)
	if len(pats) == 0 {
		t.Fatal("no patterns computed")
	}
	// The null store → consumer load WR order violation must be
	// among the patterns.
	nullStore := pcOf(mod, 0, func(in ir.Instr) bool {
		s, ok := in.(*ir.StoreInstr)
		if !ok {
			return false
		}
		c, isConst := s.Val.(*ir.Const)
		return isConst && c.Val == 0 && c.Typ.Kind() == ir.KindPtr
	})
	anchorLoad := pcOf(mod, 0, func(in ir.Instr) bool {
		l, ok := in.(*ir.LoadInstr)
		return ok && l.Block().Parent.Name == "consumer" && fmt.Sprint(l.Addr) == "@fifo"
	})
	want := fmt.Sprintf("order-violation:WR:%d,%d", nullStore, anchorLoad)
	var found *pattern.Pattern
	for _, p := range pats {
		if p.Key() == want {
			found = p
		}
	}
	if found == nil {
		keys := make([]string, len(pats))
		for i, p := range pats {
			keys[i] = p.Key()
		}
		t.Fatalf("missing pattern %s; got %v", want, keys)
	}
	// The witness events must come from different threads, ordered.
	if len(found.Events) != 2 || found.Events[0].Tid == found.Events[1].Tid {
		t.Errorf("witness = %+v", found.Events)
	}
	if found.Events[0].Time >= found.Events[1].Time {
		t.Errorf("witness not time ordered: %+v", found.Events)
	}
}

func TestStatisticalDiagnosisPicksRootCause(t *testing.T) {
	failMod := buildUseAfterFree(t, 300_000, 100_000)
	okMod := buildUseAfterFree(t, 50_000, 400_000)

	res, snap := runTraced(t, failMod, 1, ir.NoPC)
	if !res.Failed() {
		t.Fatal("expected failure")
	}
	pats, failTrace := diagnose(t, failMod, res.Failure, snap)

	obs := []statdiag.Observation{presence(failMod, pats, failTrace, true)}
	// Ten successful executions, traced at the failure PC (step 8).
	for seed := int64(0); seed < 10; seed++ {
		okRes, okSnap := runTraced(t, okMod, seed, res.Failure.PC)
		if okRes.Failed() {
			t.Fatalf("seed %d: success variant failed: %v", seed, okRes.Failure)
		}
		tr := processSnapshot(t, okMod, okSnap)
		obs = append(obs, presence(okMod, pats, tr, false))
	}

	scores := statdiag.Rank(pats, obs)
	best, unique := statdiag.Best(scores)
	if !unique {
		t.Fatalf("no unique best pattern: %v vs %v", scores[0], scores[1])
	}
	if best.F1 != 1.0 {
		t.Errorf("best F1 = %f, want 1.0", best.F1)
	}
	// The winner must be the WR order violation whose write is the
	// null store.
	if best.Pattern.Kind != pattern.KindOrderViolation || best.Pattern.Sub != "WR" {
		t.Errorf("best pattern = %s", best.Pattern.Key())
	}
	nullStore := pcOf(failMod, 0, func(in ir.Instr) bool {
		s, ok := in.(*ir.StoreInstr)
		if !ok {
			return false
		}
		c, isConst := s.Val.(*ir.Const)
		return isConst && c.Val == 0 && c.Typ.Kind() == ir.KindPtr
	})
	if best.Pattern.PCs[0] != nullStore {
		t.Errorf("best pattern write PC = %d, want null store %d", best.Pattern.PCs[0], nullStore)
	}
	// The benign init-store pattern must score below 1.
	for _, s := range scores[1:] {
		if s.F1 >= best.F1 {
			t.Errorf("runner-up %s ties the root cause", s.Pattern.Key())
		}
	}
}

func presence(mod *ir.Module, pats []*pattern.Pattern, tr *traceproc.Trace, failed bool) statdiag.Observation {
	o := statdiag.Observation{Failed: failed, Present: map[string]bool{}}
	for _, p := range pats {
		o.Present[p.Key()] = pattern.Present(mod, p, tr)
	}
	return o
}

// buildABBADeadlock returns the classic two-lock deadlock; holdDelay
// controls whether both threads grab their first lock before either
// grabs its second (deadlock) or the first thread finishes quickly
// (success).
func buildABBADeadlock(t testing.TB, holdDelay int64) *ir.Module {
	t.Helper()
	src := fmt.Sprintf(`
module abba
global A: mutex
global B: mutex

func left() {
entry:
  lock @A
  sleep %d
  lock @B
  unlock @B
  unlock @A
  ret
}

func right() {
entry:
  sleep 20000
  lock @B
  sleep %d
  lock @A
  unlock @A
  unlock @B
  ret
}

func main() {
entry:
  %%l = spawn left()
  %%r = spawn right()
  join %%l
  join %%r
  ret
}
`, holdDelay, holdDelay)
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeadlockPatternComputedAndMatched(t *testing.T) {
	failMod := buildABBADeadlock(t, 400_000)
	okMod := buildABBADeadlock(t, 1)

	res, snap := runTraced(t, failMod, 3, ir.NoPC)
	if !res.Failed() || res.Failure.Kind != vm.FailDeadlock {
		t.Fatalf("expected deadlock, got %v", res.Failure)
	}
	pats, failTrace := diagnose(t, failMod, res.Failure, snap)
	if len(pats) != 1 {
		t.Fatalf("deadlock patterns = %d, want 1", len(pats))
	}
	p := pats[0]
	if p.Kind != pattern.KindDeadlock || p.Sub != "DL2" {
		t.Fatalf("pattern = %s", p.Key())
	}
	if len(p.PCs) != 4 {
		t.Fatalf("deadlock PCs = %v", p.PCs)
	}
	// Every (held, attempt) pair must be a lock instruction.
	for _, pc := range p.PCs {
		if pc == ir.NoPC {
			t.Fatal("missing held lock in pattern")
		}
		if failMod.InstrAt(pc).Op() != ir.OpLock {
			t.Errorf("pattern PC %d is %s, want lock", pc, failMod.InstrAt(pc))
		}
	}
	// pattern.Present in the failing trace.
	if !pattern.Present(failMod, p, failTrace) {
		t.Error("deadlock pattern not matched in its own failing trace")
	}
	// Absent in successful traces.
	for seed := int64(0); seed < 5; seed++ {
		okRes, okSnap := runTraced(t, okMod, seed, res.Failure.PC)
		if okRes.Failed() {
			t.Fatalf("seed %d: success variant deadlocked", seed)
		}
		tr := processSnapshot(t, okMod, okSnap)
		if pattern.Present(okMod, p, tr) {
			t.Errorf("seed %d: deadlock pattern matched a successful run", seed)
		}
	}
}

func TestAtomicityViolationPattern(t *testing.T) {
	// Classic lost-check: worker reads a pointer, yields, reads it
	// again through an assertion after another thread nulled it.
	src := `
module atom
struct Box {
  val: int
}
global shared: *Box

func worker() {
entry:
  sleep 100000
  %p1 = load @shared
  %c1 = ne %p1, 0
  assert %c1, "first check"
  sleep 300000
  %p2 = load @shared
  %sz = fieldaddr %p2, val
  %v = load %sz
  ret
}

func main() {
entry:
  %b = new Box
  store %b, @shared
  %t = spawn worker()
  sleep 250000
  store null:*Box, @shared
  join %t
  ret
}
`
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, snap := runTraced(t, mod, 2, ir.NoPC)
	if !res.Failed() {
		t.Fatal("expected crash")
	}
	pats, _ := diagnose(t, mod, res.Failure, snap)
	var atom *pattern.Pattern
	for _, p := range pats {
		if p.Kind == pattern.KindAtomicityViolation && p.Sub == "RWR" {
			atom = p
		}
	}
	if atom == nil {
		keys := make([]string, len(pats))
		for i, p := range pats {
			keys[i] = p.Key()
		}
		t.Fatalf("no RWR atomicity pattern; got %v", keys)
	}
	if len(atom.Events) != 3 {
		t.Fatalf("witness = %+v", atom.Events)
	}
	if atom.Events[0].Tid != atom.Events[2].Tid || atom.Events[1].Tid == atom.Events[0].Tid {
		t.Errorf("thread structure wrong: %+v", atom.Events)
	}
}

func TestPatternKeyStable(t *testing.T) {
	p := &pattern.Pattern{Kind: pattern.KindOrderViolation, Sub: "WR", PCs: []ir.PC{10, 20}}
	if p.Key() != "order-violation:WR:10,20" {
		t.Errorf("key = %s", p.Key())
	}
	d := &pattern.Pattern{Kind: pattern.KindDeadlock, Sub: "DL2", PCs: []ir.PC{1, 2, 3, 4}}
	if d.Key() != "deadlock:DL2:1,2,3,4" {
		t.Errorf("key = %s", d.Key())
	}
}

func TestAccessKind(t *testing.T) {
	mod := buildUseAfterFree(t, 1, 1)
	var kinds []byte
	mod.Instrs(func(in ir.Instr) {
		if k := pattern.AccessKind(in); k != 0 {
			kinds = append(kinds, k)
		}
	})
	var r, w int
	for _, k := range kinds {
		switch k {
		case 'R':
			r++
		case 'W':
			w++
		}
	}
	if r == 0 || w == 0 {
		t.Errorf("reads = %d writes = %d", r, w)
	}
}
