package pointsto

import (
	"testing"

	"snorlax/internal/ir"
)

// parse builds a module for analysis tests.
func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// findInstr returns the nth instruction satisfying pred.
func findInstr(m *ir.Module, n int, pred func(ir.Instr) bool) ir.Instr {
	var found ir.Instr
	count := 0
	m.Instrs(func(in ir.Instr) {
		if found == nil && pred(in) {
			if count == n {
				found = in
			}
			count++
		}
	})
	return found
}

const aliasSrc = `
module alias
struct Node {
  val: int
  next: *Node
}
global head: *Node
global other: *Node

func main() {
entry:
  %n1 = new Node
  %n2 = new Node
  store %n1, @head
  store %n2, @other
  %h = load @head
  %va = fieldaddr %h, val
  store 7, %va
  %o = load @other
  %vb = fieldaddr %o, val
  store 9, %vb
  ret
}
`

func TestAndersenDistinguishesAllocSites(t *testing.T) {
	m := parse(t, aliasSrc)
	a := NewAndersen(m, nil)

	// The two stores through field pointers must not alias: they
	// derive from distinct allocation sites.
	var stores []*ir.StoreInstr
	m.Instrs(func(in ir.Instr) {
		if s, ok := in.(*ir.StoreInstr); ok {
			if c, isConst := s.Val.(*ir.Const); isConst && (c.Val == 7 || c.Val == 9) {
				stores = append(stores, s)
			}
		}
	})
	if len(stores) != 2 {
		t.Fatalf("found %d tagged stores", len(stores))
	}
	if a.MayAlias(stores[0].Addr, stores[1].Addr) {
		t.Error("inclusion-based analysis merged distinct allocation sites")
	}
	// Each must alias itself and have a non-empty points-to set.
	for _, s := range stores {
		pts := a.PointsTo(s.Addr)
		if len(pts) != 1 {
			t.Errorf("store %s: points-to size %d, want 1", s, len(pts))
		}
	}
}

func TestAndersenLoadsSeeStores(t *testing.T) {
	m := parse(t, aliasSrc)
	a := NewAndersen(m, nil)
	// %h (loaded from @head) must point to the first Node allocation.
	load := findInstr(m, 0, func(in ir.Instr) bool { return in.Op() == ir.OpLoad }).(*ir.LoadInstr)
	pts := a.PointsTo(load.Dst)
	if len(pts) != 1 {
		t.Fatalf("pts(%%h) size = %d, want 1", len(pts))
	}
	for id := range pts {
		obj := a.Objects()[id]
		if obj.Kind != ObjAlloc {
			t.Errorf("pts(%%h) holds %v, want an allocation", obj)
		}
	}
}

func TestSteensgaardMergesViaSharedStorage(t *testing.T) {
	// Both nodes flow through the SAME global, so unification must
	// merge them; Andersen keeps them apart. This is the precision
	// gap the paper cites for preferring inclusion-based analysis.
	src := `
module merge
struct Node {
  val: int
}
global slot: *Node

func main() {
entry:
  %n1 = new Node
  %n2 = new Node
  store %n1, @slot
  %a = load @slot
  store %n2, @slot
  %b = load @slot
  %va = fieldaddr %a, val
  %vb = fieldaddr %b, val
  store 1, %va
  store 2, %vb
  ret
}
`
	m := parse(t, src)
	a := NewAndersen(m, nil)
	s := NewSteensgaard(m, nil)

	loadA := findInstr(m, 0, func(in ir.Instr) bool { return in.Op() == ir.OpLoad }).(*ir.LoadInstr)
	loadB := findInstr(m, 1, func(in ir.Instr) bool { return in.Op() == ir.OpLoad }).(*ir.LoadInstr)

	// Both analyses: %a and %b alias (both loaded from @slot).
	if !a.MayAlias(loadA.Dst, loadB.Dst) {
		t.Error("andersen: loads from same slot must alias")
	}
	if !s.MayAlias(loadA.Dst, loadB.Dst) {
		t.Error("steensgaard: loads from same slot must alias")
	}
	// Andersen: pts sets contain both allocs (flow-insensitive), and
	// Steensgaard must be at least as coarse.
	pa := a.PointsTo(loadA.Dst)
	ps := s.PointsTo(loadA.Dst)
	if len(pa) != 2 {
		t.Errorf("andersen pts size = %d, want 2", len(pa))
	}
	if len(ps) < 2 {
		t.Errorf("steensgaard pts size = %d, want >= 2", len(ps))
	}
}

func TestSteensgaardCoarserThanAndersen(t *testing.T) {
	// p and q point to different allocations but q is copied from p
	// in one branch; Andersen keeps r (never aliased) separate, while
	// Steensgaard's unification of p/q is coarser or equal.
	src := `
module coarse
global gp: *int
global gq: *int
global gr: *int

func main() {
entry:
  %p = new int
  %q = new int
  %r = new int
  store %p, @gp
  store %q, @gq
  store %r, @gr
  %c = eq 1, 1
  condbr %c, move, done
move:
  store %p, @gq
  br done
done:
  ret
}
`
	m := parse(t, src)
	a := NewAndersen(m, nil)
	s := NewSteensgaard(m, nil)
	gp := &ir.GlobalRef{Global: m.GlobalByName("gp")}
	if !a.MayAlias(gp, gp) {
		t.Error("gp must alias itself")
	}
	// Precision comparison: for every operand pair, an Andersen alias
	// implies a Steensgaard alias (Steensgaard over-approximates).
	var ptrs []ir.Value
	m.Instrs(func(in ir.Instr) {
		if p := ir.AccessedPointer(in); p != nil {
			ptrs = append(ptrs, p)
		}
	})
	for _, p := range ptrs {
		for _, q := range ptrs {
			if a.MayAlias(p, q) && !s.MayAlias(p, q) {
				t.Errorf("andersen aliases %s/%s but steensgaard does not (unsound baseline)", p, q)
			}
		}
	}
}

func TestScopeRestrictionShrinksAnalysis(t *testing.T) {
	// Build a module with a large never-executed function; restrict
	// scope to main only and verify the constraint count drops.
	src := `
module scoped
global g: *int

func cold() {
entry:
  %a = new int
  %b = new int
  %c = new int
  store %a, @g
  store %b, @g
  store %c, @g
  %x = load @g
  %y = load @g
  %z = load @g
  ret
}

func main() {
entry:
  %p = new int
  store %p, @g
  %v = load @g
  ret
}
`
	m := parse(t, src)
	whole := NewAndersen(m, nil)

	scope := make(Scope)
	mainFn := m.FuncByName("main")
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			scope[in.PC()] = true
		}
	}
	hybrid := NewAndersen(m, scope)

	if hybrid.Constraints() >= whole.Constraints() {
		t.Errorf("scope restriction did not reduce constraints: hybrid %d, whole %d",
			hybrid.Constraints(), whole.Constraints())
	}
	// The hybrid result must still resolve main's pointers.
	load := findInstr(m, 3, func(in ir.Instr) bool { return in.Op() == ir.OpLoad })
	if load == nil {
		load = findInstr(m, 0, func(in ir.Instr) bool {
			return in.Op() == ir.OpLoad && in.Block().Parent.Name == "main"
		})
	}
	pts := hybrid.PointsTo(load.(*ir.LoadInstr).Dst)
	if len(pts) != 1 {
		t.Errorf("hybrid pts size = %d, want 1 (only main's alloc)", len(pts))
	}
	// Whole-program analysis sees cold()'s allocations flow into @g.
	ptsWhole := whole.PointsTo(load.(*ir.LoadInstr).Dst)
	if len(ptsWhole) != 4 {
		t.Errorf("whole pts size = %d, want 4", len(ptsWhole))
	}
}

func TestIndirectCallResolution(t *testing.T) {
	src := `
module icall
global fp: func() *int
global sink: *int

func make() *int {
entry:
  %p = new int
  ret %p
}

func main() {
entry:
  store make, @fp
  %f = load @fp
  %r = call %f()
  store %r, @sink
  ret
}
`
	m := parse(t, src)
	a := NewAndersen(m, nil)
	// %r must point to the allocation inside make().
	call := findInstr(m, 0, func(in ir.Instr) bool {
		c, ok := in.(*ir.CallInstr)
		return ok && c.StaticCallee() == nil
	}).(*ir.CallInstr)
	pts := a.PointsTo(call.Dst)
	if len(pts) != 1 {
		t.Fatalf("pts(%%r) size = %d, want 1", len(pts))
	}
	for id := range pts {
		if a.Objects()[id].Kind != ObjAlloc {
			t.Errorf("indirect call result points to %v", a.Objects()[id])
		}
	}
}

func TestFieldSensitivity(t *testing.T) {
	src := `
module fields
struct Pair {
  a: *int
  b: *int
}

func main() {
entry:
  %p = new Pair
  %x = new int
  %y = new int
  %fa = fieldaddr %p, a
  %fb = fieldaddr %p, b
  store %x, %fa
  store %y, %fb
  %la = load %fa
  %lb = load %fb
  ret
}
`
	m := parse(t, src)
	a := NewAndersen(m, nil)
	loadA := findInstr(m, 0, func(in ir.Instr) bool { return in.Op() == ir.OpLoad }).(*ir.LoadInstr)
	loadB := findInstr(m, 1, func(in ir.Instr) bool { return in.Op() == ir.OpLoad }).(*ir.LoadInstr)
	if a.MayAlias(loadA.Dst, loadB.Dst) {
		t.Error("field-sensitive analysis merged distinct fields")
	}
	// The field pointers themselves must not alias either.
	faddrA := findInstr(m, 0, func(in ir.Instr) bool { return in.Op() == ir.OpFieldAddr }).(*ir.FieldAddrInstr)
	faddrB := findInstr(m, 1, func(in ir.Instr) bool { return in.Op() == ir.OpFieldAddr }).(*ir.FieldAddrInstr)
	if a.MayAlias(faddrA.Dst, faddrB.Dst) {
		t.Error("field addresses of distinct fields alias")
	}
}

func TestParameterPassing(t *testing.T) {
	src := `
module params
global sink: *int

func keep(p: *int) {
entry:
  store %p, @sink
  ret
}

func main() {
entry:
  %x = new int
  call keep(%x)
  %v = load @sink
  ret
}
`
	m := parse(t, src)
	a := NewAndersen(m, nil)
	load := findInstr(m, 0, func(in ir.Instr) bool { return in.Op() == ir.OpLoad }).(*ir.LoadInstr)
	pts := a.PointsTo(load.Dst)
	if len(pts) != 1 {
		t.Fatalf("pts through parameter = %d objs, want 1", len(pts))
	}
}

func TestMutexPointsToForDeadlockOperands(t *testing.T) {
	// Lock operands reached through pointers must resolve to the
	// global mutex objects — deadlock diagnosis depends on this.
	src := `
module locks
struct Account {
  mu: mutex
  bal: int
}
global acctA: *Account
global acctB: *Account

func transfer(from: *Account, to: *Account) {
entry:
  %fm = fieldaddr %from, mu
  lock %fm
  %tm = fieldaddr %to, mu
  lock %tm
  unlock %tm
  unlock %fm
  ret
}

func main() {
entry:
  %a = new Account
  %b = new Account
  store %a, @acctA
  store %b, @acctB
  %pa = load @acctA
  %pb = load @acctB
  call transfer(%pa, %pb)
  call transfer(%pb, %pa)
  ret
}
`
	m := parse(t, src)
	a := NewAndersen(m, nil)
	lock1 := findInstr(m, 0, func(in ir.Instr) bool { return in.Op() == ir.OpLock }).(*ir.LockInstr)
	lock2 := findInstr(m, 1, func(in ir.Instr) bool { return in.Op() == ir.OpLock }).(*ir.LockInstr)
	p1 := a.PointsTo(lock1.Addr)
	p2 := a.PointsTo(lock2.Addr)
	// Context-insensitive analysis: both locks may guard either
	// account (transfer is called with both orders).
	if len(p1) != 2 || len(p2) != 2 {
		t.Errorf("lock pts sizes = %d, %d; want 2, 2", len(p1), len(p2))
	}
	if !a.MayAlias(lock1.Addr, lock2.Addr) {
		t.Error("lock operands must may-alias across call sites")
	}
}

func TestObjSetOps(t *testing.T) {
	s := NewObjSet(1, 2, 3)
	if !s.Has(2) || s.Has(9) {
		t.Error("Has broken")
	}
	if s.Add(2) {
		t.Error("Add of existing returned true")
	}
	if !s.Add(9) {
		t.Error("Add of new returned false")
	}
	other := NewObjSet(9, 10)
	added := s.Union(other)
	if len(added) != 1 || added[0] != 10 {
		t.Errorf("Union added %v", added)
	}
	if !s.Intersects(other) {
		t.Error("Intersects broken")
	}
	if s.Intersects(NewObjSet(42)) {
		t.Error("Intersects false positive")
	}
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Errorf("Sorted not sorted: %v", sorted)
		}
	}
}

func TestNullPointsToNothing(t *testing.T) {
	src := `
module nul
struct S {
  x: int
}
global g: *S
func main() {
entry:
  store null:*S, @g
  ret
}
`
	m := parse(t, src)
	a := NewAndersen(m, nil)
	store := findInstr(m, 0, func(in ir.Instr) bool { return in.Op() == ir.OpStore }).(*ir.StoreInstr)
	if pts := a.PointsTo(store.Val); len(pts) != 0 {
		t.Errorf("null points to %d objects", len(pts))
	}
}
